//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation studies beyond the paper's tables (the design choices called
/// out in DESIGN.md):
///
///  (a) k x theta interaction grid on a mid-size workload — how the two
///      thresholds trade the top-down against the bottom-up cost.
///  (b) Observation-manifest cost: our summaries carry entry-to-internal-
///      point "error manifest" relations so SWIFT reports exactly the
///      error sites TD reports. Disabling the manifest uses the paper's
///      plain exit summaries (weaker guard, no manifest application);
///      this measures what the exact-error-reporting extension costs and
///      whether it changes reported errors on these workloads.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "framework/Tabulation.h"
#include "typestate/TsAnalysis.h"

#include <cstdio>

using namespace swift;
using namespace swift::bench;

namespace {

struct AblationResult {
  bool Timeout;
  double Seconds;
  uint64_t TdSummaries;
  uint64_t Served;
  size_t ErrorSites;
};

AblationResult runVariant(const TsContext &Ctx, uint64_t K, uint64_t Theta,
                          bool Manifest, const RunLimits &L) {
  Budget Bud(L.MaxSteps, L.MaxSeconds);
  Stats Stat;
  TabulationSolver<TsAnalysis>::Config Cfg;
  Cfg.K = K;
  Cfg.Theta = Theta;
  Cfg.ObservationManifest = Manifest;
  TabulationSolver<TsAnalysis> Solver(Ctx, Ctx.program(), Ctx.callGraph(),
                                      Cfg, Bud, Stat);
  bool Finished = Solver.run();

  std::set<SiteId> Errors;
  TState Err = Ctx.spec().errorState();
  Solver.forEachFact([&](ProcId, NodeId, const TsAbstractState &,
                         const TsAbstractState &Cur) {
    if (!Cur.isLambda() && Cur.tstate() == Err)
      Errors.insert(Cur.site());
  });
  Solver.forEachObserved(
      [&](ProcId, NodeId, const TsAbstractState &S) {
        Errors.insert(S.site());
      });

  return AblationResult{!Finished, Bud.seconds(),
                        Solver.totalTdSummaries(),
                        Stat.get("td.bu_served_calls"), Errors.size()};
}

} // namespace

int main(int Argc, char **Argv) {
  Options O = parseOptions(Argc, Argv);
  RunLimits L = limits(O);
  const char *Name = O.Only.empty() ? "luindex" : O.Only.c_str();

  const NamedWorkload *W = findWorkload(Name);
  if (!W) {
    std::printf("unknown workload '%s'\n", Name);
    return 1;
  }
  std::unique_ptr<Program> Prog = generateWorkload(W->Config);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));
  Reporter Rep(O, "bench_ablation");

  auto Record = [&](const std::string &Config, const AblationResult &R) {
    auto &Row = Rep.addRow(Name, Config);
    Row.Timeout = R.Timeout;
    Row.set("seconds", R.Seconds);
    Row.set("td_summaries", double(R.TdSummaries));
    Row.set("bu_served", double(R.Served));
    Row.set("error_sites", double(R.ErrorSites));
  };

  std::printf("Ablation (a): k x theta grid on %s (time; td-summaries)\n\n",
              Name);
  std::printf("%8s |", "k\\theta");
  for (uint64_t Theta : {1, 2, 4, 8})
    std::printf(" %18llu", static_cast<unsigned long long>(Theta));
  std::printf("\n%.88s\n",
              "----------------------------------------------------------"
              "------------------------------");
  for (uint64_t K : {2, 5, 20, 100}) {
    std::printf("%8llu |", static_cast<unsigned long long>(K));
    for (uint64_t Theta : {1, 2, 4, 8}) {
      AblationResult R = runVariant(Ctx, K, Theta, true, L);
      Record("swift_k" + std::to_string(K) + "_th" + std::to_string(Theta),
             R);
      char Cell[40];
      if (R.Timeout)
        std::snprintf(Cell, sizeof(Cell), "timeout");
      else
        std::snprintf(Cell, sizeof(Cell), "%s; %s",
                      formatSeconds(R.Seconds).c_str(),
                      Stats::formatThousands(R.TdSummaries).c_str());
      std::printf(" %18s", Cell);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nAblation (b): observation manifest on vs off "
              "(k=5, theta=2)\n\n");
  std::printf("%-10s %10s %12s %10s %8s\n", "variant", "time",
              "td-summaries", "bu-served", "errors");
  for (bool Manifest : {true, false}) {
    AblationResult R = runVariant(Ctx, 5, 2, Manifest, L);
    Record(Manifest ? "manifest_on" : "manifest_off", R);
    std::printf("%-10s %10s %12s %10s %8zu\n",
                Manifest ? "manifest" : "plain",
                R.Timeout ? "timeout" : formatSeconds(R.Seconds).c_str(),
                Stats::formatThousands(R.TdSummaries).c_str(),
                Stats::formatThousands(R.Served).c_str(), R.ErrorSites);
  }
  std::printf("\nThe plain variant may serve more calls (weaker guard) "
              "but can miss error sites that only manifest on diverging "
              "paths inside served callees.\n");

  std::printf("\nAblation (c): synchronous vs asynchronous bottom-up "
              "runs (the paper's Section 7 parallelization sketch), "
              "k=5, theta=2\n\n");
  std::printf("%-10s %10s %12s %10s\n", "variant", "time",
              "td-summaries", "triggers");
  for (bool Async : {false, true}) {
    TsRunResult R = runTypestateSwift(Ctx, 5, 2, limits(O), Async, O.Threads);
    Rep.add(Name, Async ? "swift_k5_th2_async" : "swift_k5_th2_sync", R);
    std::printf("%-10s %10s %12s %10llu\n", Async ? "async" : "sync",
                R.Timeout ? "timeout" : formatSeconds(R.Seconds).c_str(),
                Stats::formatThousands(R.TdSummaries).c_str(),
                static_cast<unsigned long long>(
                    R.Stat.get("swift.bu_triggers")));
  }
  std::printf("\nAsync overlaps summary computation with top-down "
              "analysis; while a run is in flight, arriving contexts are "
              "analyzed top-down (more summaries, same results).\n");
  return Rep.flush() ? 0 : 1;
}
