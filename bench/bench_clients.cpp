//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client-domain generality bench: every registered analysis domain
/// (the three IFDS-shaped clients and the relational interval domain) on
/// the shared benchmark workloads, TD vs BU vs SWIFT. Rows keep the
/// swift-bench v1 schema (seconds/steps/td_summaries/bu_relations per
/// (workload, config) row), so swift-benchdiff and the CI perf gate
/// consume them unchanged; configs are namespaced by domain
/// ("taint/td", "interval/swift_k5_th4", ...).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "clients/Registry.h"

#include <cstdio>

using namespace swift;
using namespace swift::bench;
using namespace swift::clients;

int main(int Argc, char **Argv) {
  Options O = parseOptions(Argc, Argv);
  Reporter Rep(O, "bench_clients");
  DomainRunLimits L;
  L.MaxSeconds = O.BudgetSeconds;
  L.MaxSteps = O.BudgetSteps;

  std::printf("Client domains on the shared workloads: TD vs BU vs SWIFT "
              "(k=5, theta=4), budget %.0fs\n\n",
              O.BudgetSeconds);
  std::printf("%-10s %-10s | %9s %9s %9s | %8s %8s | %7s\n", "name",
              "domain", "TD", "BU", "SWIFT", "td-sums", "sw-rels",
              "reports");
  std::printf("%.86s\n",
              "----------------------------------------------------------"
              "----------------------------");

  for (const NamedWorkload &W : benchmarkWorkloads()) {
    if (!matchesOnly(O, W.Name))
      continue;
    std::unique_ptr<Program> Prog = generateWorkload(W.Config);

    for (const std::string &Domain : clientDomainNames()) {
      DomainRunResult Td = runClientDomain(Domain, *Prog, DomainMode::Td,
                                           5, 4, O.Threads, L);
      DomainRunResult Bu = runClientDomain(Domain, *Prog, DomainMode::Bu,
                                           5, 4, O.Threads, L);
      DomainRunResult Sw = runClientDomain(
          Domain, *Prog, DomainMode::Swift, 5, 4, O.Threads, L);

      auto Record = [&](const std::string &Config,
                        const DomainRunResult &R) {
        auto &Row = Rep.addRow(W.Name, Domain + "/" + Config);
        Row.Timeout = R.Timeout;
        Row.set("seconds", R.Seconds);
        Row.set("steps", double(R.Steps));
        Row.set("td_summaries", double(R.TdSummaries));
        Row.set("bu_relations", double(R.BuRelations));
      };
      Record("td", Td);
      Record("bu", Bu);
      Record("swift_k5_th4", Sw);

      auto Cell = [](const DomainRunResult &R) {
        return R.Timeout ? std::string("timeout")
                         : formatSeconds(R.Seconds);
      };
      std::printf("%-10s %-10s | %9s %9s %9s | %8s %8s | %7zu\n",
                  W.Name.c_str(), Domain.c_str(), Cell(Td).c_str(),
                  Cell(Bu).c_str(), Cell(Sw).c_str(),
                  Stats::formatThousands(Sw.TdSummaries).c_str(),
                  Stats::formatThousands(Sw.BuRelations).c_str(),
                  Sw.Reports.size());
      std::fflush(stdout);
    }
  }
  return Rep.flush() ? 0 : 1;
}
