//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graceful-degradation sweep: runs SWIFT (k=5, theta=2) under the
/// resource governor on each workload, first uncapped to learn the full
/// step count, then at 1/8, 1/4, and 1/2 of that budget. Each row reports
/// how much of the verdict vector a partial run resolves (resolved =
/// proved or error-reported; the partial-soundness oracle guarantees the
/// resolved verdicts agree with the full run's), the peak pressure level
/// reached, and the budget's phase attribution (TD vs sync-BU vs
/// async-BU steps). The expected shape: resolved fraction grows
/// monotonically with budget and reaches 1.0 at the full budget, while
/// the Yellow/Red ladder shifts steps from BU minting back to TD.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace swift;
using namespace swift::bench;

namespace {

struct Row {
  TsGovernedResult G;
  uint64_t Resolved = 0;
};

Row runAt(const TsContext &Ctx, uint64_t MaxSteps, double MaxSeconds) {
  GovernedRunOptions GO;
  GO.Config.K = 5;
  GO.Config.Theta = 2;
  GO.Limits.MaxSteps = MaxSteps;
  GO.Limits.MaxSeconds = MaxSeconds;
  Row R;
  R.G = runTypestateGoverned(Ctx, GO);
  for (TsVerdict V : R.G.Verdicts)
    if (V != TsVerdict::Unresolved)
      ++R.Resolved;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O = parseOptions(Argc, Argv);
  Reporter Rep(O, "bench_degrade");

  std::printf("Degradation sweep: governed SWIFT (k=5, theta=2) at "
              "fractional step budgets, wall cap %.0fs per run\n\n",
              O.BudgetSeconds);
  std::printf("%-10s %-7s | %9s %9s %8s | %9s %9s %9s | %s\n", "name",
              "budget", "steps", "resolved", "pressure", "td", "sync-bu",
              "async-bu", "result");
  std::printf("%.110s\n",
              "----------------------------------------------------------"
              "----------------------------------------------------------");

  for (const NamedWorkload &W : benchmarkWorkloads()) {
    if (!matchesOnly(O, W.Name))
      continue;
    std::unique_ptr<Program> Prog = generateWorkload(W.Config);
    TsContext Ctx(*Prog, Prog->symbols().intern("File"));

    Row Full = runAt(Ctx, O.BudgetSteps, O.BudgetSeconds);
    uint64_t FullSteps = Full.G.Run.Steps;
    struct Tier {
      const char *Label;
      uint64_t Steps;
    };
    // At least 2 steps so the smallest tier still pops one edge.
    Tier Tiers[] = {{"1/8", std::max<uint64_t>(2, FullSteps / 8)},
                    {"1/4", std::max<uint64_t>(2, FullSteps / 4)},
                    {"1/2", std::max<uint64_t>(2, FullSteps / 2)},
                    {"full", 0}};

    for (const Tier &T : Tiers) {
      Row R = T.Steps == 0 ? Full : runAt(Ctx, T.Steps, O.BudgetSeconds);
      const Stats &S = R.G.Run.Stat;
      {
        // Row keys are "workload/config" strings; keep '/' out of the
        // config ("1/8" -> "1o8").
        std::string Cfg = "governed_";
        for (const char *P = T.Label; *P; ++P)
          Cfg += *P == '/' ? 'o' : *P;
        auto &JR = Rep.addRow(W.Name, Cfg);
        JR.Timeout = R.G.Partial;
        JR.set("seconds", R.G.Run.Seconds);
        JR.set("steps", double(R.G.Run.Steps));
        JR.set("unresolved",
               double(R.G.Verdicts.size() - size_t(R.Resolved)));
      }
      std::printf("%-10s %-7s | %9llu %5llu/%-3zu %8s | %9s %9s %9s | %s\n",
                  W.Name.c_str(), T.Label,
                  static_cast<unsigned long long>(R.G.Run.Steps),
                  static_cast<unsigned long long>(R.Resolved),
                  R.G.Verdicts.size(), pressureName(R.G.Peak),
                  Stats::formatThousands(S.get("budget.td_steps")).c_str(),
                  Stats::formatThousands(S.get("budget.sync_bu_steps"))
                      .c_str(),
                  Stats::formatThousands(S.get("budget.async_bu_steps"))
                      .c_str(),
                  R.G.Partial ? "partial" : "complete");
      std::fflush(stdout);
    }
  }

  std::printf("\nExpected shape: the resolved fraction grows with the "
              "budget and hits every site at the full budget; partial "
              "tiers end at red pressure with BU minting suppressed "
              "(sound by the Sigma fallback), so their resolved verdicts "
              "are a subset of the full run's.\n");
  return 0;
}
