//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 2: running time and total summary counts of the three
/// interprocedural typestate analyses — TD (conventional top-down), BU
/// (conventional bottom-up, no pruning), and SWIFT — on the 12 workloads.
/// SWIFT runs with k = 5 and theta = 2, the overall-optimal setting for
/// our relation domain (the paper's domain case-splits two ways per
/// tested expression where ours splits three ways plus a may-alias case,
/// which shifts the optimal theta from 1 to 2; see EXPERIMENTS.md).
///
/// "timeout" means the per-run budget (--budget, default 15 s; the
/// stand-in for the paper's 24 h / 16 GB) was exhausted.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace swift;
using namespace swift::bench;

int main(int Argc, char **Argv) {
  Options O = parseOptions(Argc, Argv);
  RunLimits L = limits(O);
  Reporter Rep(O, "bench_table2");

  std::printf("Table 2: TD vs BU vs SWIFT (k=5, theta=2), budget %.0fs "
              "per run\n\n",
              O.BudgetSeconds);
  std::printf("%-10s | %8s %8s %8s | %7s %7s | %8s %8s %5s | %8s %8s %5s\n",
              "name", "TD", "BU", "SWIFT", "spd/TD", "spd/BU", "td-sums",
              "sw-sums", "drop", "bu-rels", "sw-rels", "drop");
  std::printf("%.130s\n",
              "----------------------------------------------------------"
              "----------------------------------------------------------"
              "----------");

  for (const NamedWorkload &W : benchmarkWorkloads()) {
    if (!matchesOnly(O, W.Name))
      continue;
    std::unique_ptr<Program> Prog = generateWorkload(W.Config);
    TsContext Ctx(*Prog, Prog->symbols().intern("File"));

    TsRunResult Td = runTypestateTd(Ctx, L);
    TsRunResult Bu = runTypestateBu(Ctx, L, O.Threads);
    TsRunResult Sw =
        runTypestateSwift(Ctx, 5, 2, L, /*AsyncBu=*/false, O.Threads);
    Rep.add(W.Name, "td", Td);
    Rep.add(W.Name, "bu", Bu);
    Rep.add(W.Name, "swift_k5_th2", Sw);

    auto Drop = [](const TsRunResult &Base, uint64_t BaseN,
                   const TsRunResult &Subj, uint64_t SubjN) -> std::string {
      if (Base.Timeout || Subj.Timeout || BaseN == 0)
        return "-";
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "%llu%%",
                    static_cast<unsigned long long>(
                        100 - (100 * SubjN) / BaseN));
      return Buf;
    };

    std::printf(
        "%-10s | %8s %8s %8s | %7s %7s | %8s %8s %5s | %8s %8s %5s\n",
        W.Name.c_str(), timeCell(Td).c_str(), timeCell(Bu).c_str(),
        timeCell(Sw).c_str(),
        speedupCell(Td, Sw, O.BudgetSeconds).c_str(),
        speedupCell(Bu, Sw, O.BudgetSeconds).c_str(),
        countCell(Td, Td.TdSummaries).c_str(),
        countCell(Sw, Sw.TdSummaries).c_str(),
        Drop(Td, Td.TdSummaries, Sw, Sw.TdSummaries).c_str(),
        countCell(Bu, Bu.BuRelations).c_str(),
        countCell(Sw, Sw.BuRelations).c_str(),
        Drop(Bu, Bu.BuRelations, Sw, Sw.BuRelations).c_str());
    std::fflush(stdout);
  }

  std::printf("\nExpected shape (paper's Table 2): SWIFT finishes on all "
              "12; TD times out on the largest three; BU finishes only on "
              "the two smallest; SWIFT computes a small fraction of both "
              "baselines' summaries.\n");
  return Rep.flush() ? 0 : 1;
}
