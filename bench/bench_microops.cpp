//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the relation-domain operators the
/// paper's cost model rests on: trans, rtrans, rcomp, wp, predicate
/// evaluation, the call mappings, and the whole-run building blocks
/// (alias analysis, tabulation on a small workload).
///
//===----------------------------------------------------------------------===//

#include "genprog/Generator.h"
#include "genprog/Workloads.h"
#include "obs/BenchResult.h"
#include "support/CliParse.h"
#include "typestate/Relation.h"
#include "typestate/Runner.h"
#include "typestate/Transfer.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

using namespace swift;

namespace {

/// Shared fixture: the jpat-p workload plus a representative state and
/// relations.
struct Fixture {
  Fixture() {
    const NamedWorkload *W = findWorkload("jpat-p");
    Prog = generateWorkload(W->Config);
    Ctx = std::make_unique<TsContext>(*Prog, Prog->symbols().intern("File"));

    // A worker procedure with a typestate call and a representative
    // incoming state.
    for (ProcId P = 0; P != Prog->numProcs() && Proc == InvalidProc; ++P)
      for (const CfgNode &Node : Prog->proc(P).nodes())
        if (Node.Cmd.Kind == CmdKind::TsCall) {
          Proc = P;
          TsCallCmd = &Node.Cmd;
          break;
        }

    ApSet Must, MustNot;
    Must.insert(AccessPath(TsCallCmd->Src));
    State = TsAbstractState(0, Ctx->spec().initState(), std::move(Must),
                            std::move(MustNot));

    Prims = tsPrimRels(*Ctx, Proc, *TsCallCmd);
  }

  std::unique_ptr<Program> Prog;
  std::unique_ptr<TsContext> Ctx;
  ProcId Proc = InvalidProc;
  const Command *TsCallCmd = nullptr;
  TsAbstractState State;
  std::vector<TsRelation> Prims;
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_Trans_TsCall(benchmark::State &S) {
  Fixture &F = fixture();
  for (auto _ : S) {
    auto Out = tsTransfer(*F.Ctx, F.Proc, *F.TsCallCmd, F.State);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_Trans_TsCall);

void BM_Rtrans_TsCall(benchmark::State &S) {
  Fixture &F = fixture();
  TsRelation Id = TsRelation::makeIdentity(F.Ctx->spec().numStates());
  for (auto _ : S) {
    auto Out = tsRtrans(*F.Ctx, F.Proc, *F.TsCallCmd, Id);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_Rtrans_TsCall);

void BM_Rcomp(benchmark::State &S) {
  Fixture &F = fixture();
  const TsRelation &A = F.Prims[0];
  const TsRelation &B = F.Prims.back();
  for (auto _ : S) {
    auto Out = tsRcomp(*F.Ctx, A, B);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_Rcomp);

void BM_WpPred(benchmark::State &S) {
  Fixture &F = fixture();
  const TsRelation &A = F.Prims[0];
  const TsPred &Post = F.Prims.back().phi();
  for (auto _ : S) {
    auto Out = tsWpPred(A, Post);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_WpPred);

void BM_PredSatisfiedBy(benchmark::State &S) {
  Fixture &F = fixture();
  const TsPred &Phi = F.Prims[0].phi();
  for (auto _ : S) {
    bool Out = Phi.satisfiedBy(*F.Ctx, F.State);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_PredSatisfiedBy);

void BM_RelationApply(benchmark::State &S) {
  Fixture &F = fixture();
  const TsRelation &A = F.Prims[0];
  for (auto _ : S) {
    auto Out = A.apply(*F.Ctx, F.State);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_RelationApply);

void BM_AliasAnalysis_Midsize(benchmark::State &S) {
  const NamedWorkload *W = findWorkload("toba-s");
  std::unique_ptr<Program> Prog = generateWorkload(W->Config);
  for (auto _ : S) {
    AliasAnalysis A(*Prog);
    benchmark::DoNotOptimize(A.totalPtsSize());
  }
}
BENCHMARK(BM_AliasAnalysis_Midsize);

void BM_GenerateWorkload_Midsize(benchmark::State &S) {
  const NamedWorkload *W = findWorkload("toba-s");
  for (auto _ : S) {
    auto Prog = generateWorkload(W->Config);
    benchmark::DoNotOptimize(Prog->numCommands());
  }
}
BENCHMARK(BM_GenerateWorkload_Midsize);

void BM_SwiftEndToEnd_Small(benchmark::State &S) {
  Fixture &F = fixture();
  for (auto _ : S) {
    TsRunResult R = runTypestateSwift(*F.Ctx, 5, 2);
    benchmark::DoNotOptimize(R.TdSummaries);
  }
}
BENCHMARK(BM_SwiftEndToEnd_Small);

void BM_TopDownEndToEnd_Small(benchmark::State &S) {
  Fixture &F = fixture();
  for (auto _ : S) {
    TsRunResult R = runTypestateTd(*F.Ctx);
    benchmark::DoNotOptimize(R.TdSummaries);
  }
}
BENCHMARK(BM_TopDownEndToEnd_Small);

/// Console output as usual, plus a swift-bench v1 row per finished
/// benchmark so --json-out feeds the same perf trajectory as the table
/// benches (config = benchmark name, per-iteration times in seconds).
class JsonCapturingReporter : public benchmark::ConsoleReporter {
public:
  explicit JsonCapturingReporter(obs::benchjson::Report &R) : R(R) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &Ru : Runs) {
      if (Ru.run_type != Run::RT_Iteration || Ru.error_occurred ||
          Ru.iterations == 0)
        continue;
      obs::benchjson::Row &Row = R.newRow("microop", Ru.benchmark_name());
      Row.set("seconds",
              Ru.real_accumulated_time / double(Ru.iterations));
      Row.set("cpu_seconds",
              Ru.cpu_accumulated_time / double(Ru.iterations));
    }
    ConsoleReporter::ReportRuns(Runs);
  }

private:
  obs::benchjson::Report &R;
};

} // namespace

// Hand-rolled BENCHMARK_MAIN: peels off our --json-out= flag, leaves
// every --benchmark_* flag to google-benchmark's parser (which rejects
// anything else), and runs with the row-capturing reporter.
int main(int Argc, char **Argv) {
  std::string JsonOut;
  std::vector<char *> Args;
  for (int I = 0; I != Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view V;
    if (cli::matchValueFlag(A, "--json-out=", V)) {
      if (V.empty()) {
        std::fprintf(stderr, "%s: --json-out needs a file path\n", Argv[0]);
        return 2;
      }
      JsonOut = V;
      continue;
    }
    Args.push_back(Argv[I]);
  }
  int Remaining = static_cast<int>(Args.size());
  benchmark::Initialize(&Remaining, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Remaining, Args.data()))
    return 1;

  obs::benchjson::Report R;
  R.Bench = "bench_microops";
  JsonCapturingReporter Reporter(R);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  if (!JsonOut.empty()) {
    std::string Err;
    if (R.Rows.empty()) {
      std::fprintf(stderr,
                   "error: no benchmark ran; refusing to write an empty "
                   "%s\n",
                   JsonOut.c_str());
      return 1;
    }
    if (!obs::benchjson::writeReport(R, JsonOut, &Err)) {
      std::fprintf(stderr, "error: bench result write failed: %s\n",
                   Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu rows)\n", JsonOut.c_str(),
                 R.Rows.size());
  }
  return 0;
}
