//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second framework instantiation on the same workloads: the
/// kill/gen taint analysis of the paper's Section 5.2 (bottom-up side
/// synthesized from the top-down transfer). For this analysis family the
/// bottom-up analysis does not case-split, so — as the paper argues — the
/// conventional bottom-up approach is already cheap and SWIFT's benefit
/// over TD is modest; the point of this table is framework generality,
/// not a performance win.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "killgen/KgRunner.h"

#include <cstdio>

using namespace swift;
using namespace swift::bench;

int main(int Argc, char **Argv) {
  Options O = parseOptions(Argc, Argv);
  Reporter Rep(O, "bench_killgen");
  KgRunLimits L;
  L.MaxSeconds = O.BudgetSeconds;
  L.MaxSteps = O.BudgetSteps;

  std::printf("Kill/gen (taint) instantiation: TD vs BU vs SWIFT "
              "(k=5, theta=4), budget %.0fs\n\n",
              O.BudgetSeconds);
  std::printf("%-10s | %9s %9s %9s | %8s %8s | %6s\n", "name", "TD", "BU",
              "SWIFT", "td-sums", "sw-sums", "leaks");
  std::printf("%.78s\n",
              "----------------------------------------------------------"
              "--------------------");

  for (const NamedWorkload &W : benchmarkWorkloads()) {
    if (!matchesOnly(O, W.Name))
      continue;
    std::unique_ptr<Program> Prog = generateWorkload(W.Config);
    KgContext Ctx(*Prog, {Prog->symbols().intern("File")},
                  {Prog->symbols().intern("open")});

    KgRunResult Td = runTaintTd(Ctx, L);
    KgRunResult Bu = runTaintBu(Ctx, L);
    KgRunResult Sw = runTaintSwift(Ctx, 5, 4, L);

    auto Record = [&](const char *Config, const KgRunResult &R) {
      auto &Row = Rep.addRow(W.Name, Config);
      Row.Timeout = R.Timeout;
      Row.set("seconds", R.Seconds);
      Row.set("steps", double(R.Steps));
      Row.set("td_summaries", double(R.TdSummaries));
      Row.set("bu_relations", double(R.BuRelations));
    };
    Record("td", Td);
    Record("bu", Bu);
    Record("swift_k5_th4", Sw);

    auto Cell = [](const KgRunResult &R) {
      return R.Timeout ? std::string("timeout") : formatSeconds(R.Seconds);
    };
    std::printf("%-10s | %9s %9s %9s | %8s %8s | %6zu\n", W.Name.c_str(),
                Cell(Td).c_str(), Cell(Bu).c_str(), Cell(Sw).c_str(),
                Stats::formatThousands(Td.TdSummaries).c_str(),
                Stats::formatThousands(Sw.TdSummaries).c_str(),
                Sw.Leaks.size());
    std::fflush(stdout);
  }
  return Rep.flush() ? 0 : 1;
}
