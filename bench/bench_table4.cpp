//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 4: the effect of theta (the number of cases the
/// pruned bottom-up analysis keeps per point) with k = 5, on the ten
/// workloads the paper uses for this table (toba-s .. sablecc-j). The
/// paper compares theta = 1 vs 2; because our relation domain case-splits
/// more finely (three-way must / must-not / neither plus a may-alias
/// split), we sweep theta over {1, 2, 4}.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace swift;
using namespace swift::bench;

int main(int Argc, char **Argv) {
  Options O = parseOptions(Argc, Argv);
  RunLimits L = limits(O);
  Reporter Rep(O, "bench_table4");

  std::printf("Table 4: varying theta with k=5, budget %.0fs\n\n",
              O.BudgetSeconds);
  std::printf("%-10s | %10s %10s %10s | %10s %10s %10s\n", "name",
              "t(th=1)", "t(th=2)", "t(th=4)", "sums(1)", "sums(2)",
              "sums(4)");
  std::printf("%.86s\n",
              "----------------------------------------------------------"
              "----------------------------");

  for (const NamedWorkload &W : benchmarkWorkloads()) {
    if (W.Name == "jpat-p" || W.Name == "elevator")
      continue; // The paper's Table 4 starts at toba-s.
    if (!matchesOnly(O, W.Name))
      continue;
    std::unique_ptr<Program> Prog = generateWorkload(W.Config);
    TsContext Ctx(*Prog, Prog->symbols().intern("File"));

    TsRunResult R1 = runTypestateSwift(Ctx, 5, 1, L);
    TsRunResult R2 = runTypestateSwift(Ctx, 5, 2, L);
    TsRunResult R4 = runTypestateSwift(Ctx, 5, 4, L);
    Rep.add(W.Name, "swift_k5_th1", R1);
    Rep.add(W.Name, "swift_k5_th2", R2);
    Rep.add(W.Name, "swift_k5_th4", R4);
    std::printf("%-10s | %10s %10s %10s | %10s %10s %10s\n",
                W.Name.c_str(), timeCell(R1).c_str(), timeCell(R2).c_str(),
                timeCell(R4).c_str(),
                countCell(R1, R1.TdSummaries).c_str(),
                countCell(R2, R2.TdSummaries).c_str(),
                countCell(R4, R4.TdSummaries).c_str());
    std::fflush(stdout);
  }

  std::printf("\nExpected shape (paper's Table 4): larger theta always "
              "reduces the top-down summary count; it usually costs "
              "bottom-up time, paying off only on the largest "
              "workloads.\n");
  return Rep.flush() ? 0 : 1;
}
