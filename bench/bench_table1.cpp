//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 1 (benchmark characteristics). The paper reports
/// classes / methods / bytecode / KLOC of its 12 Java benchmarks; the
/// corresponding structural measures of our synthetic workloads are
/// procedures, primitive commands, call sites, allocation sites, and
/// generated TSL source lines (see DESIGN.md for the substitution).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "alias/AliasAnalysis.h"
#include "ir/CallGraph.h"

#include <cstdio>

using namespace swift;
using namespace swift::bench;

int main(int Argc, char **Argv) {
  Options O = parseOptions(Argc, Argv);
  Reporter Rep(O, "bench_table1");

  std::printf("Table 1: workload characteristics (stand-ins for the "
              "paper's 12 Java benchmarks)\n\n");
  std::printf("%-10s %-38s %7s %9s %7s %7s %7s %9s\n", "name",
              "description", "procs", "commands", "calls", "sites",
              "lines", "pts-size");
  std::printf("%.120s\n",
              "----------------------------------------------------------"
              "----------------------------------------------------------");

  for (const NamedWorkload &W : benchmarkWorkloads()) {
    if (!matchesOnly(O, W.Name))
      continue;
    GenStats GS;
    std::unique_ptr<Program> Prog = generateWorkload(W.Config, &GS);
    AliasAnalysis Aliases(*Prog);
    std::printf("%-10s %-38s %7zu %9zu %7zu %7zu %7zu %9zu\n",
                W.Name.c_str(), W.Description.c_str(), GS.Procs,
                GS.Commands, GS.Calls, GS.Sites, GS.SourceLines,
                Aliases.totalPtsSize());
    auto &Row = Rep.addRow(W.Name, "characteristics");
    Row.set("procs", double(GS.Procs));
    Row.set("commands", double(GS.Commands));
    Row.set("calls", double(GS.Calls));
    Row.set("sites", double(GS.Sites));
    Row.set("lines", double(GS.SourceLines));
    Row.set("pts_size", double(Aliases.totalPtsSize()));
  }
  return Rep.flush() ? 0 : 1;
}
