//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure reproduction binaries: budget
/// parsing, run helpers, and the paper-style cell formatting. Every
/// binary accepts:
///
///   --budget=SECONDS   per-run analysis budget (default 15; the stand-in
///                      for the paper's 24 h / 16 GB limit)
///   --bench=NAME       restrict to one workload
///   --threads=N        worker threads per bottom-up solve (default 1)
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_BENCH_BENCHCOMMON_H
#define SWIFT_BENCH_BENCHCOMMON_H

#include "genprog/Generator.h"
#include "genprog/Workloads.h"
#include "support/Stats.h"
#include "support/Timer.h"
#include "typestate/Runner.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace swift {
namespace bench {

struct Options {
  double BudgetSeconds = 15.0;
  uint64_t BudgetSteps = 200'000'000;
  std::string Only;     ///< Restrict to one workload name.
  unsigned Threads = 1; ///< Worker threads per bottom-up solve.
};

inline Options parseOptions(int Argc, char **Argv) {
  Options O;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--budget=", 9) == 0)
      O.BudgetSeconds = std::atof(A + 9);
    else if (std::strncmp(A, "--bench=", 8) == 0)
      O.Only = A + 8;
    else if (std::strncmp(A, "--threads=", 10) == 0)
      O.Threads = static_cast<unsigned>(std::atoi(A + 10));
    else if (std::strcmp(A, "--help") == 0) {
      std::printf("usage: %s [--budget=SECONDS] [--bench=NAME] "
                  "[--threads=N]\n",
                  Argv[0]);
      std::exit(0);
    }
  }
  if (O.Threads == 0)
    O.Threads = 1;
  return O;
}

inline RunLimits limits(const Options &O) {
  RunLimits L;
  L.MaxSeconds = O.BudgetSeconds;
  L.MaxSteps = O.BudgetSteps;
  return L;
}

/// "timeout" or a paper-style time like "4m44s" / "0.91s".
inline std::string timeCell(const TsRunResult &R) {
  return R.Timeout ? "timeout" : formatSeconds(R.Seconds);
}

/// "-" on timeout, else a thousands-style count ("6.5k").
inline std::string countCell(const TsRunResult &R, uint64_t N) {
  return R.Timeout ? "-" : Stats::formatThousands(N);
}

/// Speedup cell: "3.5X", ">3.5X" when the baseline timed out, "-" when
/// the subject timed out.
inline std::string speedupCell(const TsRunResult &Base,
                               const TsRunResult &Subject,
                               double BudgetSeconds) {
  if (Subject.Timeout)
    return "-";
  double BaseTime = Base.Timeout ? BudgetSeconds : Base.Seconds;
  double Ratio = BaseTime / std::max(Subject.Seconds, 1e-9);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%s%.1fX", Base.Timeout ? ">" : "",
                Ratio);
  return Buf;
}

} // namespace bench
} // namespace swift

#endif // SWIFT_BENCH_BENCHCOMMON_H
