//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure reproduction binaries: budget
/// parsing, run helpers, and the paper-style cell formatting. Every
/// binary accepts:
///
///   --budget=SECONDS   per-run analysis budget (default 15; the stand-in
///                      for the paper's 24 h / 16 GB limit)
///   --bench=NAMES      restrict to the comma-separated workload names
///   --threads=N        worker threads per bottom-up solve (default 1)
///   --trace-out=F      write a Chrome/Perfetto trace of the whole bench
///                      run to F (flushed at exit; MANUAL section 9)
///   --metrics-out=F    write a swift-metrics JSON snapshot to F
///   --json-out=F       write a machine-readable "swift-bench" v1 result
///                      (obs/BenchResult.h) to F; the perf-trajectory
///                      input of tools/swift-benchdiff (MANUAL section 10)
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_BENCH_BENCHCOMMON_H
#define SWIFT_BENCH_BENCHCOMMON_H

#include "genprog/Generator.h"
#include "genprog/Workloads.h"
#include "obs/BenchResult.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/CliParse.h"
#include "support/Stats.h"
#include "support/Timer.h"
#include "typestate/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

namespace swift {
namespace bench {

struct Options {
  double BudgetSeconds = 15.0;
  uint64_t BudgetSteps = 200'000'000;
  std::string Only;     ///< Workload filter: comma-separated exact names.
  unsigned Threads = 1; ///< Worker threads per bottom-up solve.
  std::string TraceOut;   ///< Chrome trace output path (empty = off).
  std::string MetricsOut; ///< swift-metrics snapshot path (empty = off).
  std::string JsonOut;    ///< swift-bench result path (empty = off).
  bool ShowHelp = false;
};

inline const char *optionsUsage() {
  return "[--budget=SECONDS] [--bench=NAME[,NAME...]] [--threads=N] "
         "[--trace-out=F] [--metrics-out=F] [--json-out=F]";
}

/// True when \p Name passes the --bench filter: no filter, or an exact
/// match of one of its comma-separated entries (the CI perf gate runs a
/// fixed subset of workloads in one invocation this way).
inline bool matchesOnly(const Options &O, std::string_view Name) {
  if (O.Only.empty())
    return true;
  std::string_view Rest = O.Only;
  while (!Rest.empty()) {
    size_t Comma = Rest.find(',');
    std::string_view Entry = Rest.substr(0, Comma);
    if (Entry == Name)
      return true;
    if (Comma == std::string_view::npos)
      break;
    Rest.remove_prefix(Comma + 1);
  }
  return false;
}

/// Strict flag parsing: numeric values are validated (no atoi — "-1" or
/// "abc" is an error, not 4294967295 workers or a 0-second budget) and
/// unknown flags are rejected. Returns false with a message in \p Err.
inline bool parseOptionsInto(int Argc, char **Argv, Options &O,
                             std::string &Err) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view V;
    if (cli::matchValueFlag(A, "--budget=", V)) {
      if (!cli::parseNonNegDouble(V, O.BudgetSeconds)) {
        Err = "invalid --budget value '" + std::string(V) +
              "' (want a non-negative number of seconds)";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--bench=", V)) {
      O.Only = V;
    } else if (cli::matchValueFlag(A, "--threads=", V)) {
      if (!cli::parseUnsigned(V, O.Threads, 1, 1024)) {
        Err = "invalid --threads value '" + std::string(V) +
              "' (want an integer in [1, 1024])";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--trace-out=", V)) {
      if (V.empty()) {
        Err = "--trace-out needs a file path";
        return false;
      }
      O.TraceOut = V;
    } else if (cli::matchValueFlag(A, "--metrics-out=", V)) {
      if (V.empty()) {
        Err = "--metrics-out needs a file path";
        return false;
      }
      O.MetricsOut = V;
    } else if (cli::matchValueFlag(A, "--json-out=", V)) {
      if (V.empty()) {
        Err = "--json-out needs a file path";
        return false;
      }
      O.JsonOut = V;
    } else if (A == "--help") {
      O.ShowHelp = true;
    } else {
      Err = "unknown flag '" + std::string(A) + "'";
      return false;
    }
  }
  return true;
}

/// Enables tracing/metrics per \p O and registers an atexit flusher, so
/// every bench binary gets --trace-out/--metrics-out without per-main
/// plumbing. An observability write failure warns on stderr only.
inline void initObservability(const Options &O) {
  static std::string TracePath;   // Read by the atexit handler.
  static std::string MetricsPath; // Read by the atexit handler.
  if (O.TraceOut.empty() && O.MetricsOut.empty())
    return;
  TracePath = O.TraceOut;
  MetricsPath = O.MetricsOut;
  if (!TracePath.empty())
    obs::TraceRecorder::instance().start();
  if (!MetricsPath.empty())
    obs::MetricsRegistry::instance().enable();
  std::atexit(+[] {
    std::string Err;
    if (!TracePath.empty()) {
      obs::TraceRecorder::instance().stop();
      if (!obs::TraceRecorder::instance().flushToFile(TracePath, &Err))
        std::fprintf(stderr, "warning: trace write failed: %s\n",
                     Err.c_str());
    }
    if (!MetricsPath.empty() &&
        !obs::MetricsRegistry::instance().writeSnapshot(MetricsPath,
                                                        nullptr, &Err))
      std::fprintf(stderr, "warning: metrics write failed: %s\n",
                   Err.c_str());
  });
}

/// parseOptionsInto with the standard CLI behavior: prints usage and exits
/// 0 on --help, prints the error and exits 2 on a bad flag. Also arms
/// tracing/metrics when the flags ask for them.
inline Options parseOptions(int Argc, char **Argv) {
  Options O;
  std::string Err;
  if (!parseOptionsInto(Argc, Argv, O, Err)) {
    std::fprintf(stderr, "%s: %s\nusage: %s %s\n", Argv[0], Err.c_str(),
                 Argv[0], optionsUsage());
    std::exit(2);
  }
  if (O.ShowHelp) {
    std::printf("usage: %s %s\n", Argv[0], optionsUsage());
    std::exit(0);
  }
  initObservability(O);
  return O;
}

/// Collects swift-bench v1 rows during a bench run and writes them to
/// --json-out at the end. Construct after parseOptions, call add()/
/// addRow() per run, and make main return `Rep.flush() ? 0 : 1` so a
/// failed result write fails the (CI) invocation instead of passing
/// silently with a table on stdout and no JSON on disk.
class Reporter {
public:
  Reporter(const Options &O, std::string BenchName) : Path(O.JsonOut) {
    R.Bench = std::move(BenchName);
    R.Context.emplace_back("budget_seconds", O.BudgetSeconds);
    R.Context.emplace_back("budget_steps", double(O.BudgetSteps));
    R.Context.emplace_back("threads", double(O.Threads));
  }

  /// Records a solver run: wall time, budget steps, and the two headline
  /// result sizes. Timeout rows keep their (budget-truncated) numbers
  /// for the record; swift-benchdiff skips them.
  void add(const std::string &Workload, const std::string &Config,
           const TsRunResult &Res) {
    obs::benchjson::Row &W = R.newRow(Workload, Config);
    W.Timeout = Res.Timeout;
    W.set("seconds", Res.Seconds);
    W.set("steps", double(Res.Steps));
    W.set("td_summaries", double(Res.TdSummaries));
    W.set("bu_relations", double(Res.BuRelations));
  }

  /// Records a custom row (static characteristics, micro-op timings...).
  /// Metrics must be lower-is-better by the swift-bench convention.
  obs::benchjson::Row &addRow(const std::string &Workload,
                              const std::string &Config) {
    return R.newRow(Workload, Config);
  }

  /// Writes the result if --json-out was given. True when disabled or
  /// the write succeeded; on failure warns on stderr and returns false.
  bool flush() const {
    if (Path.empty())
      return true;
    std::string Err;
    if (obs::benchjson::writeReport(R, Path, &Err)) {
      std::fprintf(stderr, "wrote %s (%zu rows)\n", Path.c_str(),
                   R.Rows.size());
      return true;
    }
    std::fprintf(stderr, "error: bench result write failed: %s\n",
                 Err.c_str());
    return false;
  }

private:
  std::string Path;
  obs::benchjson::Report R;
};

inline RunLimits limits(const Options &O) {
  RunLimits L;
  L.MaxSeconds = O.BudgetSeconds;
  L.MaxSteps = O.BudgetSteps;
  return L;
}

/// "timeout" or a paper-style time like "4m44s" / "0.91s".
inline std::string timeCell(const TsRunResult &R) {
  return R.Timeout ? "timeout" : formatSeconds(R.Seconds);
}

/// "-" on timeout, else a thousands-style count ("6.5k").
inline std::string countCell(const TsRunResult &R, uint64_t N) {
  return R.Timeout ? "-" : Stats::formatThousands(N);
}

/// Speedup cell: "3.5X", ">3.5X" when the baseline timed out, "-" when
/// the subject timed out.
inline std::string speedupCell(const TsRunResult &Base,
                               const TsRunResult &Subject,
                               double BudgetSeconds) {
  if (Subject.Timeout)
    return "-";
  double BaseTime = Base.Timeout ? BudgetSeconds : Base.Seconds;
  double Ratio = BaseTime / std::max(Subject.Seconds, 1e-9);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%s%.1fX", Base.Timeout ? ">" : "",
                Ratio);
  return Buf;
}

} // namespace bench
} // namespace swift

#endif // SWIFT_BENCH_BENCHCOMMON_H
