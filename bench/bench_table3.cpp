//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 3: the effect of the trigger threshold k on the
/// avrora workload (theta fixed). The paper sweeps k over
/// {2, 5, 10, 50, 100, 200, 500} and observes a U-shape in running time:
/// very small k triggers the bottom-up analysis before enough frequency
/// data exists to predict the dominating case, very large k delays
/// generalization until most of the top-down blow-up has already
/// happened.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace swift;
using namespace swift::bench;

int main(int Argc, char **Argv) {
  Options O = parseOptions(Argc, Argv);
  RunLimits L = limits(O);
  const char *Name = O.Only.empty() ? "avrora" : O.Only.c_str();

  const NamedWorkload *W = findWorkload(Name);
  if (!W) {
    std::printf("unknown workload '%s'\n", Name);
    return 1;
  }
  std::unique_ptr<Program> Prog = generateWorkload(W->Config);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));
  Reporter Rep(O, "bench_table3");

  std::printf("Table 3: varying k on %s (theta=2), budget %.0fs\n\n", Name,
              O.BudgetSeconds);
  std::printf("%6s %10s %12s %12s %10s\n", "k", "time", "td-summaries",
              "bu-served", "triggers");
  std::printf("%.56s\n",
              "--------------------------------------------------------");

  for (uint64_t K : {2, 5, 10, 50, 100, 200, 500}) {
    TsRunResult R = runTypestateSwift(Ctx, K, 2, L);
    Rep.add(Name, "swift_k" + std::to_string(K) + "_th2", R);
    std::printf("%6llu %10s %12s %12s %10llu\n",
                static_cast<unsigned long long>(K), timeCell(R).c_str(),
                countCell(R, R.TdSummaries).c_str(),
                countCell(R, R.Stat.get("td.bu_served_calls")).c_str(),
                static_cast<unsigned long long>(
                    R.Stat.get("swift.bu_triggers")));
    std::fflush(stdout);
  }

  std::printf("\nExpected shape (paper's Table 3): running time is "
              "U-shaped in k; the summary count is minimized at a small "
              "but not minimal k.\n");
  return Rep.flush() ? 0 : 1;
}
