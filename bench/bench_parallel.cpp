//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-count sweep of the parallel bottom-up solver: runs SWIFT
/// (k=5, theta=2) on three mid-size configs with 1/2/4/8 workers per
/// bottom-up solve (the SCC-DAG wavefront of RelationalSolver) and
/// reports the total bottom-up solve time, its speedup over the 1-thread
/// run, and the summary counts — which must be identical across thread
/// counts (the wavefront is deterministic).
///
/// Speedup tops out at the hardware's core count and at the available
/// SCC-DAG width of the workload's call graph; on a single-core host the
/// sweep degenerates to measuring scheduler overhead.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <cstdio>
#include <thread>

using namespace swift;
using namespace swift::bench;

int main(int Argc, char **Argv) {
  Options O = parseOptions(Argc, Argv);
  RunLimits L = limits(O);
  Reporter Rep(O, "bench_parallel");

  const char *Configs[] = {"toba-s", "javasrc-p", "antlr"};

  std::printf("Parallel bottom-up sweep: SWIFT (k=5, theta=2), "
              "budget %.0fs per run, %u hardware threads\n\n",
              O.BudgetSeconds, std::thread::hardware_concurrency());
  std::printf("%-10s %8s | %10s %10s %8s | %10s %8s\n", "name", "threads",
              "total", "bu-time", "bu-spd", "td-sums", "bu-rels");
  std::printf("%.78s\n",
              "----------------------------------------------------------"
              "--------------------");

  for (const char *Name : Configs) {
    if (!matchesOnly(O, Name))
      continue;
    const NamedWorkload *W = findWorkload(Name);
    if (!W) {
      std::printf("unknown workload '%s'\n", Name);
      return 1;
    }
    std::unique_ptr<Program> Prog = generateWorkload(W->Config);
    TsContext Ctx(*Prog, Prog->symbols().intern("File"));

    double BuBase = 0;
    uint64_t TdSumsBase = 0, BuRelsBase = 0;
    for (unsigned T : {1u, 2u, 4u, 8u}) {
      TsRunResult R =
          runTypestateSwift(Ctx, 5, 2, L, /*AsyncBu=*/false, T);
      double BuSecs =
          static_cast<double>(R.Stat.get("swift.bu_time_us")) / 1e6;
      Rep.add(Name, "swift_k5_th2_t" + std::to_string(T), R);
      char Spd[16];
      if (T == 1) {
        BuBase = BuSecs;
        TdSumsBase = R.TdSummaries;
        BuRelsBase = R.BuRelations;
        std::snprintf(Spd, sizeof(Spd), "1.0X");
      } else {
        std::snprintf(Spd, sizeof(Spd), "%.1fX",
                      BuBase / std::max(BuSecs, 1e-9));
      }
      std::printf("%-10s %8u | %10s %10s %8s | %10s %8s%s\n", Name, T,
                  R.Timeout ? "timeout" : formatSeconds(R.Seconds).c_str(),
                  formatSeconds(BuSecs).c_str(), R.Timeout ? "-" : Spd,
                  Stats::formatThousands(R.TdSummaries).c_str(),
                  Stats::formatThousands(R.BuRelations).c_str(),
                  !R.Timeout && T != 1 &&
                          (R.TdSummaries != TdSumsBase ||
                           R.BuRelations != BuRelsBase)
                      ? "  <-- NONDETERMINISTIC"
                      : "");
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("bu-time is the summed wall time of all triggered bottom-up "
              "solves (swift.bu_time_us); bu-spd is its speedup over the "
              "1-thread row. Summary counts must match across rows.\n");
  return Rep.flush() ? 0 : 1;
}
