//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 5: the number of top-down summaries computed for
/// each method by TD and by SWIFT, for three mid-size workloads (the
/// paper uses toba-s, javasrc-p, antlr). Methods are sorted by summary
/// count per approach (the paper's x-axis); we print the two sorted
/// series plus a coarse log-scale ASCII rendering, and summary quantiles.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace swift;
using namespace swift::bench;

namespace {

void plotSeries(const char *Name, std::vector<uint64_t> Td,
                std::vector<uint64_t> Sw) {
  std::sort(Td.rbegin(), Td.rend());
  std::sort(Sw.rbegin(), Sw.rend());

  std::printf("\n%s: per-method top-down summary counts (sorted "
              "descending)\n",
              Name);
  auto Row = [](const char *Label, const std::vector<uint64_t> &V) {
    std::printf("  %-6s", Label);
    size_t Shown = std::min<size_t>(V.size(), 20);
    for (size_t I = 0; I != Shown; ++I)
      std::printf(" %llu", static_cast<unsigned long long>(V[I]));
    if (V.size() > Shown)
      std::printf(" ... (%zu methods)", V.size());
    std::printf("\n");
  };
  Row("TD", Td);
  Row("SWIFT", Sw);

  // Log-scale ASCII plot: 10 columns of method-index deciles, height =
  // log10 of the summary count at that decile.
  auto Decile = [](const std::vector<uint64_t> &V, size_t D) -> uint64_t {
    if (V.empty())
      return 0;
    return V[std::min(V.size() - 1, D * V.size() / 10)];
  };
  std::printf("  log10(count) by method-index decile:\n");
  for (int Level = 5; Level >= 0; --Level) {
    std::printf("  %d |", Level);
    for (size_t D = 0; D != 10; ++D) {
      uint64_t T = Decile(Td, D), S = Decile(Sw, D);
      bool Tb = T > 0 && std::log10(static_cast<double>(T)) >= Level;
      bool Sb = S > 0 && std::log10(static_cast<double>(S)) >= Level;
      std::printf(" %c%c", Tb ? 'T' : ' ', Sb ? 's' : ' ');
    }
    std::printf("\n");
  }
  std::printf("     +--------------------------------  (T = TD, s = "
              "SWIFT)\n");

  auto Total = [](const std::vector<uint64_t> &V) {
    uint64_t N = 0;
    for (uint64_t X : V)
      N += X;
    return N;
  };
  std::printf("  totals: TD=%llu SWIFT=%llu  max: TD=%llu SWIFT=%llu\n",
              static_cast<unsigned long long>(Total(Td)),
              static_cast<unsigned long long>(Total(Sw)),
              static_cast<unsigned long long>(Td.empty() ? 0 : Td[0]),
              static_cast<unsigned long long>(Sw.empty() ? 0 : Sw[0]));
}

} // namespace

int main(int Argc, char **Argv) {
  Options O = parseOptions(Argc, Argv);
  RunLimits L = limits(O);
  Reporter Rep(O, "bench_fig5");

  std::printf("Figure 5: number of top-down summaries per method, TD vs "
              "SWIFT (k=5, theta=2)\n");

  for (const char *Name : {"toba-s", "javasrc-p", "antlr"}) {
    if (!matchesOnly(O, Name))
      continue;
    const NamedWorkload *W = findWorkload(Name);
    std::unique_ptr<Program> Prog = generateWorkload(W->Config);
    TsContext Ctx(*Prog, Prog->symbols().intern("File"));

    TsRunResult Td = runTypestateTd(Ctx, L);
    TsRunResult Sw = runTypestateSwift(Ctx, 5, 2, L);
    Rep.add(Name, "td", Td);
    Rep.add(Name, "swift_k5_th2", Sw);
    if (Td.Timeout || Sw.Timeout) {
      std::printf("\n%s: timeout (increase --budget)\n", Name);
      continue;
    }
    plotSeries(Name, Td.TdSummariesPerProc, Sw.TdSummariesPerProc);
    std::fflush(stdout);
  }

  std::printf("\nExpected shape (paper's Figure 5): SWIFT's per-method "
              "counts collapse towards the trigger threshold k while TD's "
              "head methods carry orders of magnitude more summaries.\n");
  return Rep.flush() ? 0 : 1;
}
