//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The other classic typestate property: iterator invalidation. An
/// Iterator must be revalidated (`sync`) after its collection is
/// structurally modified; we model the collection's mutation state and
/// the iterator's validity as *one* combined protocol on the iterator
/// object (typestate properties over object pairs are encoded this way
/// in single-object typestate systems).
///
/// The example also shows per-class analysis: the same program is
/// checked against two independent protocols (Iterator and Log), and
/// demonstrates summary reuse numbers on a program whose helper is
/// called under many contexts.
///
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"
#include "typestate/Runner.h"

#include <cstdio>

using namespace swift;

static const char *SourceText = R"(
  // valid -next-> valid, invalidated by -mutate->, repaired by -sync->.
  typestate Iter {
    start valid;
    error broken;
    valid -next-> valid;
    valid -mutate-> stale;
    stale -sync-> valid;
    stale -mutate-> stale;
  }
  typestate Log {
    start ready;
    error lerr;
    ready -append-> ready;
  }

  proc main() {
    log = new Log;

    // A well-behaved scan: next() only while valid.
    it1 = new Iter;
    scan(it1, log);

    // A scan interrupted by a mutation, then repaired.
    it2 = new Iter;
    scan(it2, log);
    it2.mutate();
    it2.sync();
    scan(it2, log);

    // BUG: mutation mid-scan without a sync.
    it3 = new Iter;
    it3.mutate();
    scan(it3, log);      // next() on a stale iterator: broken

    // Helper called under many distinct contexts: SWIFT summarizes it.
    it4 = new Iter; scan(it4, log);
    it5 = new Iter; scan(it5, log);
    it6 = new Iter; scan(it6, log);
  }

  proc scan(it, log) {
    while (*) {
      it.next();
      log.append();
    }
  }
)";

int main() {
  std::unique_ptr<Program> Prog = parseProgram(SourceText);

  bool Ok = true;
  for (size_t I = 0; I != Prog->numSpecs(); ++I) {
    Symbol Class = Prog->spec(I).name();
    TsContext Ctx(*Prog, Class);
    TsRunResult Td = runTypestateTd(Ctx);
    TsRunResult Sw = runTypestateSwift(Ctx, 2, 2);

    std::printf("protocol %-6s: %zu violating site(s); SWIFT summaries "
                "%llu vs TD %llu (agree: %s)\n",
                Prog->symbols().text(Class).c_str(), Sw.ErrorSites.size(),
                static_cast<unsigned long long>(Sw.TdSummaries),
                static_cast<unsigned long long>(Td.TdSummaries),
                Sw.ErrorSites == Td.ErrorSites ? "yes" : "NO");
    for (SiteId H : Sw.ErrorSites)
      std::printf("  iterator allocated at h%u may be used while "
                  "stale\n",
                  H);
    Ok = Ok && Sw.ErrorSites == Td.ErrorSites;
    // Exactly one iterator (it3) is misused; the Log protocol verifies.
    if (Prog->symbols().text(Class) == "Iter")
      Ok = Ok && Sw.ErrorSites.size() == 1;
    else
      Ok = Ok && Sw.ErrorSites.empty();
  }
  return Ok ? 0 : 1;
}
