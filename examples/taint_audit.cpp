//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second framework instantiation in action: an interprocedural
/// taint audit (the kill/gen analysis family of the paper's Section 5.2).
/// Values originating from `Request` allocations are tainted; passing a
/// tainted value to the `exec` sink is a leak unless it went through the
/// sanitizer (which rebinds the variable to a fresh `Clean` value).
///
//===----------------------------------------------------------------------===//

#include "killgen/KgRunner.h"
#include "lang/Lower.h"

#include <cstdio>

using namespace swift;

static const char *AuditProgram = R"(
  typestate Request { start raw; error e1; raw -exec-> raw; }
  typestate Clean   { start ok;  error e2; ok -exec-> ok; }
  typestate Db      { start d;   error e3; }

  proc main() {
    r = new Request;       // taint source
    q = handle(r);
    q.exec();              // leak: q is the raw request, reached a sink

    s = new Request;
    t = sanitize(s);
    t.exec();              // safe: t is a fresh Clean value

    db = new Db;
    db.cache = r;          // taint escapes into the heap...
    u = db.cache;
    audit(u);              // ...and leaks through a load in a callee
  }

  proc handle(req) {
    logRequest(req);
    return req;
  }

  proc logRequest(x) {
    y = x;                 // copies keep the taint
  }

  proc sanitize(x) {
    c = new Clean;
    return c;              // the tainted input does not flow out
  }

  proc audit(v) {
    v.exec();
  }
)";

int main() {
  std::unique_ptr<Program> Prog = parseProgram(AuditProgram);
  KgContext Ctx(*Prog, {Prog->symbols().intern("Request")},
                {Prog->symbols().intern("exec")});

  std::printf("Taint audit: sources = new Request, sinks = .exec()\n\n");

  KgRunResult Td = runTaintTd(Ctx);
  KgRunResult Sw = runTaintSwift(Ctx, 2, 4);
  KgRunResult Bu = runTaintBu(Ctx);

  std::printf("leaks found (TD): %zu, (SWIFT): %zu, (BU): %zu — "
              "analyses agree: %s\n\n",
              Td.Leaks.size(), Sw.Leaks.size(), Bu.Leaks.size(),
              (Td.Leaks == Sw.Leaks && Td.Leaks == Bu.Leaks) ? "yes"
                                                             : "NO");

  for (const auto &[P, N] : Td.Leaks)
    std::printf("  tainted value reaches the sink in %s (node %u): %s\n",
                Prog->symbols().text(Prog->proc(P).name()).c_str(), N,
                Prog->proc(P).node(N).Cmd.str(*Prog).c_str());

  std::printf("\nExpected: two leaks (the raw request in main, and the "
              "heap-laundered one in audit); the sanitized flow is "
              "clean.\n");
  return Td.Leaks.size() == 2 && Td.Leaks == Sw.Leaks ? 0 : 1;
}
