//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line typestate checker for TSL programs — what a downstream
/// user of this library would actually run:
///
///   file_checker PROGRAM.tsl [--class=NAME] [--analysis=swift|td|bu]
///                [--k=N] [--theta=N] [--budget=SECONDS] [--verbose]
///
/// Parses the program, runs the selected interprocedural typestate
/// analysis for every typestate class (or just --class), and reports the
/// allocation sites that may reach the error state, with the program
/// points where the analysis observed them. Exits 1 if any error is
/// reported, 2 on parse/usage errors.
///
/// Try it on the shipped sample:
///   ./build/examples/file_checker examples/data/leaky.tsl
///
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"
#include "lang/Parser.h"
#include "typestate/Runner.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace swift;

namespace {

struct Cli {
  std::string Path;
  std::string Class;            ///< Empty: all classes.
  std::string Analysis = "swift";
  uint64_t K = 5;
  uint64_t Theta = 2;
  double Budget = 60.0;
  bool Verbose = false;
};

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s PROGRAM.tsl [--class=NAME] "
               "[--analysis=swift|td|bu] [--k=N] [--theta=N] "
               "[--budget=SECONDS] [--verbose]\n",
               Prog);
  return 2;
}

bool parseCli(int Argc, char **Argv, Cli &C) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--class=", 8) == 0)
      C.Class = A + 8;
    else if (std::strncmp(A, "--analysis=", 11) == 0)
      C.Analysis = A + 11;
    else if (std::strncmp(A, "--k=", 4) == 0)
      C.K = std::strtoull(A + 4, nullptr, 10);
    else if (std::strncmp(A, "--theta=", 8) == 0)
      C.Theta = std::strtoull(A + 8, nullptr, 10);
    else if (std::strncmp(A, "--budget=", 9) == 0)
      C.Budget = std::atof(A + 9);
    else if (std::strcmp(A, "--verbose") == 0)
      C.Verbose = true;
    else if (A[0] == '-')
      return false;
    else if (C.Path.empty())
      C.Path = A;
    else
      return false;
  }
  return !C.Path.empty() &&
         (C.Analysis == "swift" || C.Analysis == "td" || C.Analysis == "bu");
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C;
  if (!parseCli(Argc, Argv, C))
    return usage(Argv[0]);

  std::ifstream In(C.Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", C.Path.c_str());
    return 2;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  std::unique_ptr<Program> Prog;
  try {
    Prog = parseProgram(Buf.str());
  } catch (const SyntaxError &E) {
    std::fprintf(stderr, "%s:%s\n", C.Path.c_str(), E.what());
    return 2;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "%s: error: %s\n", C.Path.c_str(), E.what());
    return 2;
  }

  RunLimits L;
  L.MaxSeconds = C.Budget;
  bool AnyError = false;
  bool AnyTimeout = false;

  for (size_t I = 0; I != Prog->numSpecs(); ++I) {
    const TypestateSpec &Spec = Prog->spec(I);
    std::string Name = Prog->symbols().text(Spec.name());
    if (!C.Class.empty() && Name != C.Class)
      continue;

    TsContext Ctx(*Prog, Spec.name());
    TsRunResult R;
    if (C.Analysis == "td")
      R = runTypestateTd(Ctx, L);
    else if (C.Analysis == "bu")
      R = runTypestateBu(Ctx, L);
    else
      R = runTypestateSwift(Ctx, C.K, C.Theta, L);

    std::printf("class %s: ", Name.c_str());
    if (R.Timeout) {
      std::printf("analysis budget exhausted after %s\n",
                  formatSeconds(R.Seconds).c_str());
      AnyTimeout = true;
      continue;
    }
    if (R.ErrorSites.empty()) {
      std::printf("verified, no protocol violations (%s)\n",
                  formatSeconds(R.Seconds).c_str());
      continue;
    }
    AnyError = true;
    std::printf("%zu allocation site(s) may violate the protocol (%s)\n",
                R.ErrorSites.size(), formatSeconds(R.Seconds).c_str());
    for (SiteId H : R.ErrorSites) {
      const AllocSite &Site = Prog->site(H);
      std::printf("  object allocated at h%u in %s may reach state '%s'\n",
                  H, Prog->symbols().text(Prog->proc(Site.Proc).name()).c_str(),
                  Prog->symbols().text(Spec.stateName(Spec.errorState()))
                      .c_str());
      if (C.Verbose)
        for (const TsError &E : R.ErrorPoints)
          if (E.Site == H)
            std::printf("    observed in %s at node %u\n",
                        Prog->symbols()
                            .text(Prog->proc(E.Proc).name())
                            .c_str(),
                        E.Node);
    }
    if (C.Verbose) {
      std::printf("  stats:\n");
      for (const auto &[Key, Value] : R.Stat.all())
        std::printf("    %s = %llu\n", Key.c_str(),
                    static_cast<unsigned long long>(Value));
    }
  }

  if (AnyTimeout && !AnyError)
    return 2;
  return AnyError ? 1 : 0;
}
