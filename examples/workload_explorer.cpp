//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates one of the named benchmark workloads (or a custom-seeded
/// one), optionally writes it out as TSL source, and prints its
/// structural statistics — useful for inspecting what the benchmark
/// harness actually analyzes.
///
///   workload_explorer [NAME] [--seed=N] [--out=FILE.tsl] [--list]
///
//===----------------------------------------------------------------------===//

#include "genprog/Generator.h"
#include "genprog/Workloads.h"
#include "ir/Dumper.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

using namespace swift;

int main(int Argc, char **Argv) {
  std::string Name = "toba-s";
  std::string OutPath;
  uint64_t SeedOverride = 0;
  bool List = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--out=", 6) == 0)
      OutPath = A + 6;
    else if (std::strncmp(A, "--seed=", 7) == 0)
      SeedOverride = std::strtoull(A + 7, nullptr, 10);
    else if (std::strcmp(A, "--list") == 0)
      List = true;
    else
      Name = A;
  }

  if (List) {
    std::printf("available workloads:\n");
    for (const NamedWorkload &W : benchmarkWorkloads())
      std::printf("  %-10s %s\n", W.Name.c_str(), W.Description.c_str());
    return 0;
  }

  const NamedWorkload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                 Name.c_str());
    return 2;
  }

  GenConfig Cfg = W->Config;
  if (SeedOverride)
    Cfg.Seed = SeedOverride;

  GenStats GS;
  std::unique_ptr<Program> Prog = generateWorkload(Cfg, &GS);
  std::printf("%s (%s), seed %llu\n", W->Name.c_str(),
              W->Description.c_str(),
              static_cast<unsigned long long>(Cfg.Seed));
  std::printf("  procedures:       %zu\n", GS.Procs);
  std::printf("  commands:         %zu\n", GS.Commands);
  std::printf("  call sites:       %zu\n", GS.Calls);
  std::printf("  allocation sites: %zu\n", GS.Sites);
  std::printf("  source lines:     %zu\n", GS.SourceLines);

  if (!OutPath.empty()) {
    std::string Tsl = generateWorkloadTsl(Cfg);
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
      return 2;
    }
    Out << Tsl;
    std::printf("  wrote TSL source to %s (%zu bytes)\n", OutPath.c_str(),
                Tsl.size());
  }
  return 0;
}
