//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A domain-specific scenario: verifying a connection pool against a
/// Socket protocol (idle -connect-> ready -send*-> ready -disconnect->
/// idle), cross-checked against the concrete interpreter. The pool stores
/// sockets in object fields, hands them out through helper procedures,
/// and one maintenance path reconnects a socket that may already be
/// connected — a genuine protocol bug the static analysis must find and
/// the interpreter confirms on some schedule.
///
//===----------------------------------------------------------------------===//

#include "concrete/Interpreter.h"
#include "lang/Lower.h"
#include "typestate/Runner.h"

#include <cstdio>

using namespace swift;

static const char *PoolProgram = R"(
  typestate Socket {
    start idle;
    error serr;
    idle -connect-> ready;
    ready -send-> ready;
    ready -disconnect-> idle;
  }
  typestate Pool { start p; error perr; }

  proc main() {
    pool = new Pool;
    a = new Socket;
    b = new Socket;
    pool.primary = a;
    pool.backup = b;

    checkout(pool);
    while (*) {
      roundtrip(a);
    }
    maintain(pool);
    teardown(pool);
  }

  // Connects both pooled sockets.
  proc checkout(p) {
    s = p.primary;
    s.connect();
    t = p.backup;
    t.connect();
  }

  // One request/response on a connected socket.
  proc roundtrip(s) {
    s.send();
    return s;
  }

  // BUG: reconnects the primary socket without disconnecting first; it
  // may still be ready from checkout.
  proc maintain(p) {
    s = p.primary;
    if (*) {
      s.disconnect();
    }
    s.connect();
  }

  proc teardown(p) {
    s = p.primary;
    s.disconnect();
    t = p.backup;
    t.disconnect();
  }
)";

int main() {
  std::unique_ptr<Program> Prog = parseProgram(PoolProgram);
  TsContext Ctx(*Prog, Prog->symbols().intern("Socket"));

  std::printf("Verifying the connection pool against the Socket "
              "protocol...\n\n");
  TsRunResult R = runTypestateSwift(Ctx, 5, 2);
  if (R.Timeout) {
    std::printf("analysis budget exhausted\n");
    return 2;
  }

  if (R.ErrorSites.empty()) {
    std::printf("verified: no socket can violate the protocol\n");
  } else {
    std::printf("the analysis found %zu suspicious allocation site(s):\n",
                R.ErrorSites.size());
    for (SiteId H : R.ErrorSites)
      std::printf("  socket allocated at h%u (in %s) may reach 'serr'\n",
                  H,
                  Prog->symbols()
                      .text(Prog->proc(Prog->site(H).Proc).name())
                      .c_str());
  }

  // Cross-check with the concrete interpreter over many schedules: the
  // static report must cover everything that concretely happens.
  std::printf("\nCross-checking with the concrete interpreter (200 "
              "schedules)...\n");
  std::set<SiteId> Concrete;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    InterpConfig IC;
    IC.Seed = Seed;
    InterpResult IR = interpret(*Prog, IC);
    if (IR.Completed)
      Concrete.insert(IR.ErrorSites.begin(), IR.ErrorSites.end());
  }
  if (Concrete.empty()) {
    std::printf("no schedule hit the bug (it needs the maintenance branch "
                "to skip the disconnect)\n");
  } else {
    for (SiteId H : Concrete)
      std::printf("  schedule hit a concrete protocol violation at h%u "
                  "- %s\n",
                  H,
                  R.ErrorSites.count(H)
                      ? "reported by the static analysis"
                      : "MISSED by the static analysis (soundness bug!)");
  }

  bool Sound = true;
  for (SiteId H : Concrete)
    Sound = Sound && R.ErrorSites.count(H);
  std::printf("\nsummary: static reports %zu site(s), concrete hits %zu "
              "site(s), soundness holds: %s\n",
              R.ErrorSites.size(), Concrete.size(), Sound ? "yes" : "NO");
  return Sound ? 0 : 1;
}
