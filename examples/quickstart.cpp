//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: the paper's running example (Section 2, Figure 1) end to
/// end. Builds the program from TSL source, runs the conventional
/// top-down and bottom-up analyses and the SWIFT hybrid, prints the
/// computed summaries, and checks they agree (Theorem 3.1).
///
/// Build and run:   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "framework/Tabulation.h"
#include "lang/Lower.h"
#include "typestate/Runner.h"
#include "typestate/TsAnalysis.h"

#include <cstdio>

using namespace swift;

static const char *PaperExample = R"(
  // The paper's Figure 1: three files opened and closed through a shared
  // procedure.
  typestate File {
    start closed;
    error err;
    closed -open-> opened;
    opened -close-> closed;
  }
  proc main() {
    v1 = new File; foo(v1);
    v2 = new File; foo(v2);
    v3 = new File; foo(v3);
  }
  proc foo(f) { f.open(); f.close(); }
)";

int main() {
  std::unique_ptr<Program> Prog = parseProgram(PaperExample);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  std::printf("== The program (paper Figure 1) ==\n%s\n", PaperExample);

  // 1. Conventional top-down analysis: summaries per calling context.
  TsRunResult Td = runTypestateTd(Ctx);
  std::printf("== Top-down analysis ==\n");
  std::printf("errors: %zu, top-down summaries: %llu (the paper's T1-T5 "
              "for foo)\n",
              Td.ErrorSites.size(),
              static_cast<unsigned long long>(Td.TdSummaries));

  // 2. Conventional bottom-up analysis: relations over all inputs.
  TsRunResult Bu = runTypestateBu(Ctx);
  std::printf("\n== Bottom-up analysis ==\n");
  std::printf("errors: %zu, bottom-up relations: %llu (the paper's B1-B4 "
              "for foo, plus main's)\n",
              Bu.ErrorSites.size(),
              static_cast<unsigned long long>(Bu.BuRelations));

  // 3. SWIFT with the walkthrough's thresholds k=2, theta=2: the third
  // distinct incoming state of foo triggers the pruned bottom-up
  // analysis; the remaining call sites are served from its two cases.
  TsRunResult Sw = runTypestateSwift(Ctx, 2, 2);
  std::printf("\n== SWIFT (k=2, theta=2, the Section 2.3 walkthrough) ==\n");
  std::printf("errors: %zu, top-down summaries: %llu, bottom-up "
              "triggers: %llu, calls served from summaries: %llu\n",
              Sw.ErrorSites.size(),
              static_cast<unsigned long long>(Sw.TdSummaries),
              static_cast<unsigned long long>(
                  Sw.Stat.get("swift.bu_triggers")),
              static_cast<unsigned long long>(
                  Sw.Stat.get("td.bu_served_calls")));

  // Show foo's pruned bottom-up summary: the paper's B1 and B2.
  {
    Budget Bud;
    Stats Stat;
    TabulationSolver<TsAnalysis>::Config Cfg;
    Cfg.K = 2;
    Cfg.Theta = 2;
    TabulationSolver<TsAnalysis> Solver(Ctx, *Prog, Ctx.callGraph(), Cfg,
                                        Bud, Stat);
    Solver.run();
    ProcId Foo = Prog->procId(Prog->symbols().intern("foo"));
    if (Solver.buDefined(Foo)) {
      std::printf("\nfoo's pruned bottom-up summary (the paper's B1/B2):\n");
      for (const TsRelation &R : Solver.buSummary(Foo).Rels)
        std::printf("  %s\n", R.str(*Prog).c_str());
    }
  }

  // 4. Coincidence (Theorem 3.1): all three agree on main's exit states.
  bool Agree = Td.MainExit == Sw.MainExit && Td.MainExit == Bu.MainExit &&
               Td.ErrorSites == Sw.ErrorSites &&
               Td.ErrorSites == Bu.ErrorSites;
  std::printf("\n== Coincidence (Theorem 3.1) ==\n");
  std::printf("TD, BU, and SWIFT agree on main's exit states and error "
              "sites: %s\n",
              Agree ? "yes" : "NO (bug!)");
  std::printf("\nmain's exit states:\n");
  for (const TsAbstractState &S : Td.MainExit)
    if (!S.isLambda())
      std::printf("  %s\n", S.str(*Prog).c_str());

  return Agree ? 0 : 1;
}
