//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A serializable snapshot of a TabulationSolver's mutable state: interned
/// states, the path-edge table, the worklist (exact order), top-down
/// summaries, caller-dependency lists, incoming-state counts, and the
/// observation set. Captured when a budget-limited run exhausts its
/// budget, written out as a checkpoint (src/govern/Checkpoint.h), and
/// restored into a fresh solver to resume.
///
/// What is *not* here, and why that is sound:
///  * Bottom-up summary caches — dropped. Resumed runs re-trigger the
///    bottom-up analysis as needed; every serving decision is guarded by
///    Sigma, so error sites and main-exit states at completion still
///    coincide with the top-down analysis (Theorem 3.1).
///  * The binding cache and Stats counters — derived/diagnostic, rebuilt.
///
/// For a *pure top-down* run the snapshot is exact: the tabulation loop is
/// deterministic and the budget check sits between worklist pops, so the
/// state at exhaustion equals the uninterrupted run's intermediate state,
/// and a resumed run's final results are bit-identical to an uninterrupted
/// run's (the checkpoint-resume oracle in src/difftest enforces this).
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_FRAMEWORK_TABSNAPSHOT_H
#define SWIFT_FRAMEWORK_TABSNAPSHOT_H

#include "ir/Command.h"

#include <cstdint>
#include <vector>

namespace swift {

template <typename State> struct TabSnapshot {
  /// One path edge (or worklist entry): fact (Entry, Cur) at Node of
  /// Proc. Entry/Cur index into States.
  struct SnapEdge {
    ProcId Proc;
    NodeId Node;
    uint32_t Entry;
    uint32_t Cur;
    friend bool operator<(const SnapEdge &A, const SnapEdge &B) {
      if (A.Proc != B.Proc)
        return A.Proc < B.Proc;
      if (A.Node != B.Node)
        return A.Node < B.Node;
      if (A.Entry != B.Entry)
        return A.Entry < B.Entry;
      return A.Cur < B.Cur;
    }
    friend bool operator==(const SnapEdge &A, const SnapEdge &B) {
      return A.Proc == B.Proc && A.Node == B.Node && A.Entry == B.Entry &&
             A.Cur == B.Cur;
    }
  };

  struct SummaryRow {
    ProcId Proc;
    uint32_t Entry;
    std::vector<uint32_t> Exits; ///< Discovery order (resumption order).
  };

  /// One waiting caller of (Callee, Entry): rows with the same key keep
  /// their registration order — recordSummary resumes them in order, so
  /// the order is part of the deterministic-replay state.
  struct DependentRow {
    ProcId Callee;
    uint32_t Entry;
    ProcId CallerProc;
    NodeId CallNode;
    uint32_t CallerEntry;
    uint32_t Frame;
  };

  struct IncomingRow {
    ProcId Proc;
    uint32_t Entry;
    uint64_t Count;
  };

  struct ObservedRow {
    ProcId Proc;
    NodeId Node;
    uint32_t StateId;
  };

  std::vector<State> States; ///< Id order: States[i] has interned id i.
  std::vector<SnapEdge> Edges; ///< Sorted (set semantics).
  std::vector<SnapEdge> Work;  ///< Exact worklist order (back = next pop).
  std::vector<SummaryRow> Summaries;
  std::vector<DependentRow> Dependents;
  std::vector<IncomingRow> Incoming;
  std::vector<uint8_t> EverCalled; ///< Indexed by ProcId.
  std::vector<ObservedRow> Observed;
  /// Budget steps the checkpointed run had consumed; reporting only (the
  /// resumed run's own budget starts fresh).
  uint64_t StepsConsumed = 0;
};

} // namespace swift

#endif // SWIFT_FRAMEWORK_TABSNAPSHOT_H
