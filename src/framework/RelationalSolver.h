//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bottom-up relational solver with pruning: the abstract semantics
/// [[.]]^r of the paper's Sections 3.4-3.5. It computes, per procedure, a
/// summary (R, Sigma): a set of abstract relations from procedure entry to
/// exit plus the set of entry states the summary ignores because pruning
/// dropped the relations covering them.
///
/// Procedures are processed in callee-first SCC order; each SCC iterates
/// until its summaries stabilize (the fix_eta0 computation of Section 3.5,
/// restricted to the requested procedures). Within a procedure, a worklist
/// runs over the CFG; prune-and-clean is applied to every computed node
/// value, so the number of case-split relations per point stays bounded by
/// theta.
///
/// With NumThreads > 1 the callee-first sweep becomes an SCC-DAG wavefront:
/// a thread pool dispatches any SCC whose callee SCCs have completed, so
/// independent subtrees of the call graph are summarized concurrently (the
/// embarrassingly parallel structure compositional analyses exploit).
/// Results are deterministic — identical summaries for every thread count —
/// because iteration inside an SCC stays sequential, an SCC reads only the
/// *final* summaries of its callee SCCs, and each summary is written to its
/// own per-procedure slot. Each worker charges a local Stats merged on
/// completion; the Budget is shared and thread-safe.
///
/// The prune operator follows Section 3.4: case-split relations are ranked
/// by the frequency with which the top-down analysis has seen entry states
/// in their domains (the multiset M), the top theta survive, and the
/// domains of the rest are added to Sigma. Relations that never case-split
/// (concrete fresh-object relations) are exempt: they are bounded by the
/// number of allocation sites and carry no generalization risk.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_FRAMEWORK_RELATIONALSOLVER_H
#define SWIFT_FRAMEWORK_RELATIONALSOLVER_H

#include "govern/Governor.h"
#include "ir/CallGraph.h"
#include "ir/Program.h"
#include "obs/Trace.h"
#include "support/Cancellation.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

namespace swift {

inline constexpr uint64_t NoPruning = UINT64_MAX;

/// Cap on the relation count at a single program point; exceeding it
/// aborts the run, modelling the paper's out-of-memory timeouts of the
/// unpruned bottom-up analysis (16 GB / 24 h in their setup).
inline constexpr uint64_t DefaultMaxRelsPerPoint = 1 << 17;

/// Convergence guards for the *pruned* analysis: a recursive SCC whose
/// summaries keep refining past this many iterations, or a procedure
/// whose ignore set exceeds this many disjuncts, has its summary soundly
/// degraded to "ignore every input" — callers then always fall back to
/// the top-down analysis for it, which preserves coincidence.
inline constexpr uint64_t MaxSccIterations = 16;
inline constexpr uint64_t MaxSigmaDisjuncts = 256;

template <typename AN> class RelationalSolver {
public:
  using Context = typename AN::Context;
  using State = typename AN::State;
  using Rel = typename AN::Rel;
  using Ignore = typename AN::Ignore;
  using Binding = typename AN::Binding;
  using SummaryView = typename AN::SummaryView;

  struct Summary {
    std::vector<Rel> Rels; ///< Sorted, unique.
    Ignore Sigma;
    /// Whether the implicit Lambda identity reaches the exit: false when
    /// every path to the exit passes a never-returning call, in which case
    /// a Lambda input produces no output at all.
    bool LambdaExit = false;

    /// The observation manifest: relations from procedure entry to *any*
    /// (transitively) reachable program point whose output can be an
    /// observable (error) state. Needed because an error on a diverging
    /// path never reaches the exit relations; with the manifest, serving a
    /// call from this summary reports exactly the error sites a top-down
    /// re-analysis would. This goes beyond the paper's formalism, which
    /// only relates input/output behaviour (Theorem 3.1).
    std::vector<Rel> ObsRels;
    /// Union of the ignore sets of every program point (not just the
    /// exit); the sound guard for using Rels *and* ObsRels.
    Ignore SigmaAll;
  };

  /// Per-procedure entry-state frequencies (the multiset M) observed by
  /// the top-down analysis; used to rank relations during pruning. May
  /// return nullptr when no data exists for a procedure. Must be safe to
  /// call from worker threads (the providers used here read an immutable
  /// snapshot).
  using FreqProvider = std::function<
      const std::unordered_map<State, uint64_t> *(ProcId)>;

  /// \p Gov, when given, supplies the cooperative CancelToken (a
  /// cancelled run aborts between node visits, exactly like a budget
  /// exhaustion) and receives memory charges for in-flight relation
  /// stores. The governor's Budget should be \p B.
  RelationalSolver(const Context &Ctx, const Program &Prog,
                   const CallGraph &CG, uint64_t Theta, FreqProvider Freq,
                   Budget &B, Stats &S,
                   uint64_t MaxRelsPerPoint = DefaultMaxRelsPerPoint,
                   bool CollectObservations = true, unsigned NumThreads = 1,
                   ResourceGovernor *Gov = nullptr)
      : Ctx(Ctx), Prog(Prog), CG(CG), Theta(Theta), Freq(std::move(Freq)),
        Bud(B), Stat(S), MaxRels(MaxRelsPerPoint),
        CollectObs(CollectObservations), Threads(NumThreads), Gov(Gov),
        Cancel(Gov ? &Gov->cancelToken() : nullptr) {
    Summaries.resize(Prog.numProcs());
    HasSummary.assign(Prog.numProcs(), 0);
    Bindings.resize(Prog.numProcs());
  }

  /// Computes summaries for \p Procs, which must be closed under calls
  /// (every callee of a member is a member). Returns false if the budget
  /// ran out; summaries are then incomplete and must not be used.
  bool run(const std::vector<ProcId> &Procs) {
    std::vector<std::vector<ProcId>> Groups = sccGroups(Procs);
    if (Threads <= 1 || Groups.size() <= 1) {
      for (const std::vector<ProcId> &G : Groups)
        if (!solveScc(G, Stat))
          return false;
      return !cancelled();
    }
    return runWavefront(Groups);
  }

  /// Soundly gives up on \p P: its summary ignores every input, so every
  /// call to it falls back to the top-down analysis. Returns true if the
  /// stored summary changed.
  bool degrade(ProcId P) {
    Summary S;
    AN::ignoreAll(S.Sigma);
    AN::ignoreAll(S.SigmaAll);
    S.LambdaExit = false;
    if (HasSummary[P] && equal(S, Summaries[P]))
      return false;
    Summaries[P] = std::move(S);
    HasSummary[P] = 1;
    return true;
  }

  bool hasSummary(ProcId P) const { return HasSummary[P] != 0; }
  const Summary &summary(ProcId P) const { return Summaries[P]; }

  /// Installs \p S as the final summary of \p P without analyzing it.
  /// This is the warm-start / incremental path: a subsequent run() over a
  /// set excluding \p P reads it for calls to \p P exactly as if this
  /// solver had computed it, so run()'s call-closure precondition weakens
  /// to "every callee is a member or has an installed summary". Must not
  /// be called while run() is in flight.
  void installSummary(ProcId P, Summary S) {
    Summaries[P] = std::move(S);
    HasSummary[P] = 1;
  }

  /// Observer of summary reads: invoked (possibly repeatedly) for every
  /// Call command processed during run(), with the procedure under
  /// analysis and the callee whose summary — installed, in-flight, or the
  /// empty eta_0 start — it consults. The serve engine records these
  /// edges to invalidate exactly the dependent summaries on a program
  /// edit. With NumThreads > 1 the callback fires on worker threads and
  /// must be thread-safe.
  using DepRecorder = std::function<void(ProcId Caller, ProcId Callee)>;
  void setDepRecorder(DepRecorder R) { Deps = std::move(R); }

  /// Observer of SCC completion: invoked once per SCC group at the end of
  /// a successful solveScc, after every member's summary is final (sorted
  /// members). Sharded workers publish each completed SCC's summaries to
  /// the spool from here, so a crash loses at most the in-flight SCC.
  /// With NumThreads > 1 the callback fires on worker threads and must be
  /// thread-safe. An exception thrown from the callback propagates out of
  /// run().
  using SccObserver = std::function<void(const std::vector<ProcId> &)>;
  void setSccObserver(SccObserver O) { SccDone = std::move(O); }

  /// Total number of bottom-up summaries: one per (relation, procedure)
  /// pair, matching the paper's counting of (r, phi) pairs.
  uint64_t totalRelations() const {
    uint64_t N = 0;
    for (size_t P = 0; P != Summaries.size(); ++P)
      if (HasSummary[P])
        N += Summaries[P].Rels.size();
    return N;
  }

private:
  struct NodeVal {
    std::vector<Rel> Rels; ///< Sorted, unique.
    Ignore Sigma;
    bool HasLambda = false; ///< Does the Lambda identity reach this node?
  };

  bool cancelled() const { return Cancel && Cancel->requested(); }

  /// Per-relation footprint for the governor's memory estimate; analyses
  /// with out-of-line storage provide AN::relBytes, others fall back to
  /// the object size.
  static uint64_t approxRelBytes(const Rel &R) {
    if constexpr (requires { AN::relBytes(R); })
      return AN::relBytes(R);
    else
      return sizeof(Rel);
  }

  /// RAII memory accounting for one analyzeProc invocation's in-flight
  /// relation stores: charges accumulate as node values grow and are
  /// released wholesale when the pass ends (its per-node vectors die with
  /// the frame; only the final Summary — charged by the tabulation solver
  /// on install — outlives it).
  struct GovCharge {
    ResourceGovernor *Gov;
    uint64_t Bytes = 0;
    explicit GovCharge(ResourceGovernor *G) : Gov(G) {}
    GovCharge(const GovCharge &) = delete;
    GovCharge &operator=(const GovCharge &) = delete;
    void add(uint64_t B) {
      if (!Gov)
        return;
      Gov->charge(B);
      Bytes += B;
    }
    ~GovCharge() {
      if (Gov)
        Gov->release(Bytes);
    }
  };

  static bool equal(const Summary &A, const Summary &B) {
    return A.Rels == B.Rels && A.Sigma == B.Sigma &&
           A.LambdaExit == B.LambdaExit && A.ObsRels == B.ObsRels &&
           A.SigmaAll == B.SigmaAll;
  }

  /// Buckets \p Procs into SCC groups in callee-first order (ascending
  /// SCC index); members within a group are sorted by ProcId so iteration
  /// order — and therefore every summary — is independent of the caller's
  /// ordering and of the thread count.
  std::vector<std::vector<ProcId>>
  sccGroups(const std::vector<ProcId> &Procs) const {
    std::vector<ProcId> Order = Procs;
    std::sort(Order.begin(), Order.end(), [this](ProcId A, ProcId B) {
      if (CG.scc(A) != CG.scc(B))
        return CG.scc(A) < CG.scc(B);
      return A < B;
    });
    std::vector<std::vector<ProcId>> Groups;
    size_t I = 0;
    while (I != Order.size()) {
      size_t J = I;
      while (J != Order.size() && CG.scc(Order[J]) == CG.scc(Order[I]))
        ++J;
      Groups.emplace_back(Order.begin() + I, Order.begin() + J);
      I = J;
    }
    return Groups;
  }

  /// Iterates one SCC's members until their summaries stabilize (charging
  /// \p S). Precondition: every callee SCC's summaries are final.
  bool solveScc(const std::vector<ProcId> &Members, Stats &S) {
    // One span per SCC: in the wavefront these land on the worker thread
    // that ran the group, so per-worker utilization reads directly off
    // the trace timeline.
    obs::TraceSpan SccSpan("bu", "bu.scc", {"proc", Members.front()},
                           {"members", Members.size()});
    bool Changed = true;
    uint64_t Iters = 0;
    while (Changed) {
      if (cancelled())
        return false;
      Changed = false;
      ++S.counter(CtrSccIterations);
      if (++Iters > MaxSccIterations) {
        for (ProcId P : Members)
          degrade(P);
        ++S.counter(CtrSccDegraded);
        break;
      }
      for (ProcId P : Members) {
        ++S.counter(CtrProcAnalyses);
        Summary New;
        if (!analyzeProc(P, New, S))
          return false;
        if (New.SigmaAll.size() > MaxSigmaDisjuncts) {
          if (degrade(P)) {
            ++S.counter(CtrSigmaDegraded);
            Changed = true;
          }
          continue;
        }
        if (!HasSummary[P] || !equal(New, Summaries[P])) {
          Summaries[P] = std::move(New);
          HasSummary[P] = 1;
          Changed = true;
        }
      }
    }
    if (SccDone)
      SccDone(Members);
    return true;
  }

  /// Dispatches the SCC groups as a wavefront over the SCC DAG: a group
  /// becomes ready when every callee group has completed. Workers charge
  /// local Stats merged under the scheduler lock (the lock also provides
  /// the happens-before edge from a callee group's summary writes to its
  /// dependents' reads).
  bool runWavefront(const std::vector<std::vector<ProcId>> &Groups) {
    obs::TraceSpan WaveSpan("bu", "bu.wavefront",
                            {"groups", Groups.size()},
                            {"threads", Threads});
    size_t N = Groups.size();
    std::unordered_map<size_t, size_t> GroupOf; // SCC index -> position.
    for (size_t I = 0; I != N; ++I)
      GroupOf.emplace(CG.scc(Groups[I].front()), I);

    std::vector<std::vector<size_t>> Dependents(N);
    std::vector<size_t> PendingDeps(N, 0);
    for (size_t I = 0; I != N; ++I) {
      std::set<size_t> CalleeGroups;
      for (ProcId P : Groups[I])
        for (ProcId Q : CG.callees(P)) {
          auto It = GroupOf.find(CG.scc(Q));
          if (It != GroupOf.end() && It->second != I)
            CalleeGroups.insert(It->second);
        }
      for (size_t C : CalleeGroups)
        Dependents[C].push_back(I);
      PendingDeps[I] = CalleeGroups.size();
    }

    // The pool observes the governor's CancelToken: tasks dequeued after
    // cancellation are dropped unexecuted. Dropped RunGroup bodies never
    // submit their dependents, so the cascade below keeps the Pending
    // count honest and wait() still returns; the cancel check in the
    // return value (not Failed alone) is what keeps the result honest —
    // a drained-but-cancelled wavefront has incomplete summaries.
    ThreadPool Pool(Threads, Cancel);
    std::mutex M;
    // Relaxed suffices for Failed: it makes a single false -> true
    // transition, the loads are only an early-out hint, and the
    // authoritative final load below is ordered after every worker's
    // store by Pool.wait()'s mutex (task completion happens-before
    // wait() returning). No data is published through Failed itself —
    // summary visibility comes from the scheduler mutex M.
    std::atomic<bool> Failed{false};

    // On failure (budget / relation cap) the cascade still runs so every
    // group is accounted for; the work itself is skipped.
    std::function<void(size_t)> RunGroup = [&](size_t I) {
      if (!Failed.load(std::memory_order_relaxed) && !cancelled()) {
        Stats Local;
        if (!solveScc(Groups[I], Local))
          Failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> L(M);
        Stat.merge(Local);
      }
      std::vector<size_t> Ready;
      {
        std::lock_guard<std::mutex> L(M);
        for (size_t D : Dependents[I])
          if (--PendingDeps[D] == 0)
            Ready.push_back(D);
      }
      for (size_t D : Ready)
        Pool.submit([&RunGroup, D] { RunGroup(D); });
    };

    // Snapshot the roots before the first submit: once a worker runs, it
    // decrements PendingDeps under M, which this loop must not read.
    std::vector<size_t> Initial;
    for (size_t I = 0; I != N; ++I)
      if (PendingDeps[I] == 0)
        Initial.push_back(I);
    for (size_t I : Initial)
      Pool.submit([&RunGroup, I] { RunGroup(I); });

    // Pending counts queued plus running tasks, so wait() returns only
    // after the last RunGroup invocation has fully returned; nothing
    // touches RunGroup, the pool, or this frame afterwards.
    Pool.wait();
    return !Failed.load(std::memory_order_relaxed) && !cancelled();
  }

  /// Sorts, dedupes, drops relations covered by Sigma (excl), and applies
  /// bestTheta pruning ranked by the procedure's entry-state frequencies.
  void pruneAndClean(ProcId P, std::vector<Rel> &Rels, Ignore &Sigma,
                     Stats &S) {
    std::sort(Rels.begin(), Rels.end());
    Rels.erase(std::unique(Rels.begin(), Rels.end()), Rels.end());
    Rels.erase(std::remove_if(Rels.begin(), Rels.end(),
                              [&Sigma](const Rel &R) {
                                return AN::ignoreCoversDom(Sigma, R);
                              }),
               Rels.end());
    if (Theta == NoPruning)
      return;

    size_t NumPrunable = 0;
    for (const Rel &R : Rels)
      if (AN::relIsPrunable(R))
        ++NumPrunable;
    if (NumPrunable <= Theta)
      return;

    // Without frequency data the ranking would be blind and could prune
    // the dominating case (the paper's first problematic scenario in
    // Section 4); keep everything for such procedures.
    const std::unordered_map<State, uint64_t> *M = Freq(P);
    if (!M || M->empty())
      return;

    // Rank prunable relations by observed entry-state frequency (Section
    // 3.4's rank operator), keep the top theta. Ties prefer more general
    // relations (fewer domain constraints).
    std::vector<std::pair<uint64_t, size_t>> Ranked;
    for (size_t I = 0; I != Rels.size(); ++I) {
      if (!AN::relIsPrunable(Rels[I]))
        continue;
      uint64_t Rank = 0;
      for (const auto &[St, Count] : *M)
        if (AN::domContains(Ctx, Rels[I], St))
          Rank += Count;
      Ranked.push_back({Rank, I});
    }
    std::sort(Ranked.begin(), Ranked.end(),
              [&Rels](const auto &A, const auto &B) {
                if (A.first != B.first)
                  return A.first > B.first;
                size_t GA = AN::relGenerality(Rels[A.second]);
                size_t GB = AN::relGenerality(Rels[B.second]);
                if (GA != GB)
                  return GA < GB;
                return Rels[A.second] < Rels[B.second];
              });

    std::vector<bool> Drop(Rels.size(), false);
    for (size_t I = Theta; I < Ranked.size(); ++I) {
      size_t Idx = Ranked[I].second;
      Drop[Idx] = true;
      AN::addDomToIgnore(Rels[Idx], Sigma);
      ++S.counter(CtrPrunedRelations);
    }
    std::vector<Rel> Kept;
    Kept.reserve(Rels.size());
    for (size_t I = 0; I != Rels.size(); ++I)
      if (!Drop[I])
        Kept.push_back(std::move(Rels[I]));
    // excl: dropping domains may make retained relations redundant.
    Kept.erase(std::remove_if(Kept.begin(), Kept.end(),
                              [&Sigma](const Rel &R) {
                                return AN::ignoreCoversDom(Sigma, R);
                              }),
               Kept.end());
    Rels = std::move(Kept);
  }

  /// One full intraprocedural pass over \p P's CFG with the current
  /// summary map. Returns false on budget exhaustion.
  bool analyzeProc(ProcId P, Summary &Out, Stats &S) {
    const Procedure &Proc = Prog.proc(P);
    std::vector<NodeVal> Vals(Proc.numNodes());
    std::vector<bool> InList(Proc.numNodes(), false);
    GovCharge Charge(Gov);

    // RPO position for worklist ordering.
    std::vector<uint32_t> RpoPos(Proc.numNodes(), UINT32_MAX);
    for (uint32_t I = 0; I != Proc.reachableRpo().size(); ++I)
      RpoPos[Proc.reachableRpo()[I]] = I;

    Vals[Proc.entry()].Rels.push_back(AN::identityRel(Ctx));
    Vals[Proc.entry()].HasLambda = true;
    std::vector<Rel> Obs;
    size_t ObsCompactAt = 1024;
    Ignore SigAll;
    std::vector<NodeId> Work{Proc.entry()};
    InList[Proc.entry()] = true;

    while (!Work.empty()) {
      if (cancelled())
        return false;
      if (!Bud.step())
        return false;
      ++S.counter(CtrBuSteps);
      // Pop the node earliest in RPO for fast convergence.
      size_t Best = 0;
      for (size_t I = 1; I != Work.size(); ++I)
        if (RpoPos[Work[I]] < RpoPos[Work[Best]])
          Best = I;
      NodeId N = Work[Best];
      Work[Best] = Work.back();
      Work.pop_back();
      InList[N] = false;
      ++S.counter(CtrNodeVisits);

      // Charge the budget per input relation so huge relation sets at one
      // point cannot stall the wall-clock poll.
      for (size_t I = 0; I != Vals[N].Rels.size(); ++I) {
        if (!Bud.step())
          return false;
        ++S.counter(CtrBuSteps);
      }

      const CfgNode &Node = Proc.node(N);
      NodeVal OutVal;
      OutVal.Sigma = Vals[N].Sigma;

      if (Node.Cmd.Kind == CmdKind::Call) {
        ProcId G = Node.Cmd.Callee;
        if (Deps)
          Deps(P, G);
        SummaryView SV;
        static const std::vector<Rel> EmptyRels;
        static const Ignore EmptySigma;
        bool CalleeLambdaExit = false;
        if (HasSummary[G]) {
          SV.Rels = &Summaries[G].Rels;
          SV.Sigma = &Summaries[G].Sigma;
          CalleeLambdaExit = Summaries[G].LambdaExit;
        } else {
          // In-flight recursion: the empty summary is the eta_0 start of
          // the fixpoint iteration.
          SV.Rels = &EmptyRels;
          SV.Sigma = &EmptySigma;
        }
        const Binding &Bind = binding(P, N, Node.Cmd);
        for (const Rel &R : Vals[N].Rels) {
          AN::composeCall(Ctx, Bind, R, SV, OutVal.Rels, OutVal.Sigma);
          if (OutVal.Rels.size() > MaxRels) {
            ++S.counter(CtrRelCapHits);
            return false; // Models running out of memory.
          }
        }
        if (Vals[N].HasLambda) {
          AN::composeCallLambda(Ctx, Bind, SV, OutVal.Rels, OutVal.Sigma);
          // Lambda survives the call only if it reaches the callee's exit
          // and the callee's summary does not ignore it.
          OutVal.HasLambda =
              CalleeLambdaExit && !OutVal.Sigma.containsLambda();
        }

        // Lift the callee's observation manifest (errors at its internal
        // points) into this procedure's entry vocabulary.
        if (CollectObs) {
        SummaryView ObsSV;
        ObsSV.Rels = HasSummary[G] ? &Summaries[G].ObsRels : &EmptyRels;
        ObsSV.Sigma = HasSummary[G] ? &Summaries[G].SigmaAll : &EmptySigma;
        std::vector<Rel> LiftedObs;
        for (const Rel &R : Vals[N].Rels) {
          AN::composeCall(Ctx, Bind, R, ObsSV, LiftedObs, SigAll);
          if (LiftedObs.size() > MaxRels) {
            ++S.counter(CtrRelCapHits);
            return false;
          }
        }
        if (Vals[N].HasLambda)
          AN::composeCallLambda(Ctx, Bind, ObsSV, LiftedObs, SigAll);
        for (Rel &R : LiftedObs)
          if (AN::relMayObserve(Ctx, R))
            Obs.push_back(std::move(R));
        }
      } else {
        OutVal.HasLambda = Vals[N].HasLambda;
        for (const Rel &R : Vals[N].Rels) {
          for (Rel &R2 : AN::rtrans(Ctx, P, Node.Cmd, R))
            OutVal.Rels.push_back(std::move(R2));
          if (OutVal.Rels.size() > MaxRels) {
            ++S.counter(CtrRelCapHits);
            return false;
          }
        }
        if (Vals[N].HasLambda)
          for (Rel &R2 : AN::lambdaEmits(Ctx, Node.Cmd))
            OutVal.Rels.push_back(std::move(R2));
      }

      if (OutVal.Rels.size() > MaxRels) {
        ++S.counter(CtrRelCapHits);
        return false; // Models running out of memory.
      }
      pruneAndClean(P, OutVal.Rels, OutVal.Sigma, S);

      // Record observable relations at this point and fold this point's
      // ignore set into the whole-procedure guard.
      SigAll.unionWith(OutVal.Sigma);
      if (CollectObs)
        for (const Rel &R : OutVal.Rels)
          if (AN::relMayObserve(Ctx, R))
            Obs.push_back(R);
      if (Obs.size() > ObsCompactAt) {
        std::sort(Obs.begin(), Obs.end());
        Obs.erase(std::unique(Obs.begin(), Obs.end()), Obs.end());
        if (Obs.size() > MaxRels) {
          ++S.counter(CtrRelCapHits);
          return false;
        }
        ObsCompactAt = std::max<size_t>(1024, Obs.size() * 2);
      }

      for (NodeId Succ : Node.Succs) {
        bool Grew = Vals[Succ].Sigma.unionWith(OutVal.Sigma);
        if (OutVal.HasLambda && !Vals[Succ].HasLambda) {
          Vals[Succ].HasLambda = true;
          Grew = true;
        }
        for (const Rel &R : OutVal.Rels) {
          // A relation whose domain the successor already ignores was
          // pruned there before; re-inserting it would oscillate with
          // pruning and the loop fixpoint would never converge.
          if (AN::ignoreCoversDom(Vals[Succ].Sigma, R))
            continue;
          auto It = std::lower_bound(Vals[Succ].Rels.begin(),
                                     Vals[Succ].Rels.end(), R);
          if (It == Vals[Succ].Rels.end() || !(*It == R)) {
            Vals[Succ].Rels.insert(It, R);
            Charge.add(approxRelBytes(R));
            Grew = true;
          }
        }
        if (Grew) {
          // Joins and loop heads re-prune the accumulated value (the
          // prune-on-join and prune-on-iterate of Section 3.4).
          pruneAndClean(P, Vals[Succ].Rels, Vals[Succ].Sigma, S);
          if (!InList[Succ]) {
            InList[Succ] = true;
            Work.push_back(Succ);
          }
        }
      }
    }

    Out.Rels = std::move(Vals[Proc.exit()].Rels);
    Out.Sigma = std::move(Vals[Proc.exit()].Sigma);
    Out.LambdaExit = Vals[Proc.exit()].HasLambda;
    SigAll.unionWith(Out.Sigma);
    std::sort(Obs.begin(), Obs.end());
    Obs.erase(std::unique(Obs.begin(), Obs.end()), Obs.end());
    Out.ObsRels = std::move(Obs);
    Out.SigmaAll = std::move(SigAll);
    return true;
  }

  /// Per-procedure binding cache. Partitioned by procedure so concurrent
  /// SCC groups (which never share a procedure) never share a map.
  const Binding &binding(ProcId P, NodeId N, const Command &Cmd) {
    auto &Map = Bindings[P];
    auto It = Map.find(N);
    if (It == Map.end())
      It = Map.emplace(N, AN::makeBinding(Ctx, P, Cmd)).first;
    return It->second;
  }

  const Context &Ctx;
  const Program &Prog;
  const CallGraph &CG;
  uint64_t Theta;
  FreqProvider Freq;
  Budget &Bud;
  Stats &Stat;
  uint64_t MaxRels;
  bool CollectObs;
  unsigned Threads;
  ResourceGovernor *Gov;      ///< Optional; see constructor.
  const CancelToken *Cancel;  ///< From Gov; null when ungoverned.
  DepRecorder Deps;           ///< Optional; see setDepRecorder.
  SccObserver SccDone;        ///< Optional; see setSccObserver.
  std::vector<Summary> Summaries;
  /// Byte-sized (not vector<bool>) so concurrent SCC groups writing
  /// distinct procedures never touch the same object.
  std::vector<uint8_t> HasSummary;
  std::vector<std::unordered_map<NodeId, Binding>> Bindings;

  // Interned counter handles: resolved once here, bumped per event at
  // vector-index cost (also what makes per-worker stats mergeable).
  Stats::Counter CtrSccIterations = Stats::id("bu.scc_iterations");
  Stats::Counter CtrSccDegraded = Stats::id("bu.scc_degraded");
  Stats::Counter CtrSigmaDegraded = Stats::id("bu.sigma_degraded");
  Stats::Counter CtrProcAnalyses = Stats::id("bu.proc_analyses");
  Stats::Counter CtrNodeVisits = Stats::id("bu.node_visits");
  Stats::Counter CtrRelCapHits = Stats::id("bu.rel_cap_hits");
  Stats::Counter CtrPrunedRelations = Stats::id("bu.pruned_relations");
  /// Budget steps this bottom-up run consumed; the tabulation solver
  /// re-attributes it to budget.sync_bu_steps / budget.async_bu_steps.
  Stats::Counter CtrBuSteps = Stats::id("bu.steps");
};

} // namespace swift

#endif // SWIFT_FRAMEWORK_RELATIONALSOLVER_H
