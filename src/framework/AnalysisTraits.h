//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-time interface between the generic SWIFT framework and a
/// concrete analysis pair (a top-down analysis A and a bottom-up analysis
/// B satisfying conditions C1-C3 of the paper). An analysis plugs in by
/// providing a traits class with the following members; see
/// typestate/TsAnalysis.h for the flagship instantiation and
/// killgen/KgAnalysis.h for a second, IFDS-style one.
///
/// \code
///   struct MyAnalysis {
///     using Context = ...;   // immutable analysis environment
///     using State   = ...;   // abstract state; hashable, ==, <
///     using Rel     = ...;   // abstract relation; ==, <
///     using Ignore  = ...;   // ignored-input set (Sigma); ==, unionWith,
///                            // contains(Context, State), containsLambda
///     using Binding = ...;   // per-call-site binding info
///
///     // -- Top-down analysis (paper Section 3.1) --
///     static State lambda();               // the "no fact yet" state
///     static bool isLambda(const State &);
///     static std::vector<State> transfer(const Context &, ProcId,
///                                        const Command &, const State &);
///     static Binding makeBinding(const Context &, ProcId,
///                                const Command &);
///     // Call boundary: facts entering the callee, facts bypassing it
///     // (call-to-return flow), and the return mapping pairing the
///     // caller's state at the call (the frame) with callee exits.
///     static std::vector<State> enter(const Binding &, const State &);
///     static std::vector<State> callLocal(const Binding &, const State &);
///     static std::vector<State> combine(const Binding &,
///                                       const State &Frame,
///                                       const State &Exit);
///     static std::vector<State> combineFresh(const Binding &,
///                                            const State &Exit);
///
///     // -- Bottom-up analysis (paper Sections 3.2, 3.5) --
///     struct SummaryView { const std::vector<Rel> *Rels;
///                          const Ignore *Sigma; };
///     static Rel identityRel(const Context &);           // id#
///     static std::vector<Rel> rtrans(const Context &, ProcId,
///                                    const Command &, const Rel &);
///     // Relations spawned from the implicit Lambda identity (fresh
///     // facts created by a command).
///     static std::vector<Rel> lambdaEmits(const Context &,
///                                         const Command &);
///     // [[g()]]^r: compose one caller relation (or the Lambda route)
///     // with a callee summary; Sigma pullbacks go to SigmaOut.
///     static void composeCall(const Context &, const Binding &,
///                             const Rel &, const SummaryView &,
///                             std::vector<Rel> &Out, Ignore &SigmaOut);
///     static void composeCallLambda(const Context &, const Binding &,
///                                   const SummaryView &,
///                                   std::vector<Rel> &Out,
///                                   Ignore &SigmaOut);
///     static std::optional<State> applyRel(const Context &, const Rel &,
///                                          const State &);
///
///     // -- Observations (error reporting through summaries) --
///     static bool relMayObserve(const Context &, const Rel &);
///     static bool stateObservable(const Context &, const State &);
///
///     // -- Pruning support (paper Section 3.4) --
///     static bool relIsPrunable(const Rel &); // case-split relations
///     static size_t relGenerality(const Rel &); // tie-break: lower keeps
///     static bool domContains(const Context &, const Rel &,
///                             const State &); // for the rank operator
///     static void addDomToIgnore(const Rel &, Ignore &);
///     static bool ignoreCoversDom(const Ignore &, const Rel &); // excl
///     static void ignoreAll(Ignore &); // degraded "fall back always"
///   };
/// \endcode
///
/// Correctness obligations mirror the paper's Figure 4: transfer and
/// rtrans must be equally precise (C1), composeCall must model the call
/// composition of relations exactly against enter/callLocal/combine (C2
/// at call boundaries), and Sigma pullbacks must over-approximate the
/// inputs whose intermediate states a callee ignores (C3). The test
/// suite checks all three exhaustively for the bundled instantiations.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_FRAMEWORK_ANALYSISTRAITS_H
#define SWIFT_FRAMEWORK_ANALYSISTRAITS_H

namespace swift {
// The interface is duck-typed; this header only documents it.
} // namespace swift

#endif // SWIFT_FRAMEWORK_ANALYSISTRAITS_H
