//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SWIFT algorithm (the paper's Algorithm 1): a summary-based top-down
/// tabulation solver (Reps-Horwitz-Sagiv style) that, when the number of
/// distinct incoming abstract states of a procedure exceeds the threshold
/// k, triggers the pruned bottom-up analysis on every procedure reachable
/// from it and thereafter serves call sites from bottom-up summaries
/// whenever the incoming state is not in the summary's ignore set.
///
/// With k = infinity this is exactly the conventional top-down analysis
/// (the TD baseline).
///
/// Facts are pairs (entry state, current state) per program point — the
/// paper's td map. A "top-down summary" is an (entry, exit) pair of a
/// procedure, matching the paper's counting.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_FRAMEWORK_TABULATION_H
#define SWIFT_FRAMEWORK_TABULATION_H

#include "framework/RelationalSolver.h"
#include "ir/CallGraph.h"
#include "ir/Program.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace swift {

inline constexpr uint64_t NoBuTrigger = UINT64_MAX;

template <typename AN> class TabulationSolver {
public:
  using Context = typename AN::Context;
  using State = typename AN::State;
  using Rel = typename AN::Rel;
  using Ignore = typename AN::Ignore;
  using Binding = typename AN::Binding;
  using SummaryView = typename AN::SummaryView;
  using BuSummary = typename RelationalSolver<AN>::Summary;

  struct Config {
    uint64_t K = NoBuTrigger; ///< Trigger threshold; NoBuTrigger = pure TD.
    uint64_t Theta = 1;       ///< Cases kept by the pruned bottom-up run.
    /// Collect and serve the observation manifest (errors at callee-
    /// internal points; see RelationalSolver::Summary). Disabling it is
    /// an ablation knob: value results stay coincident, but errors on
    /// paths that diverge inside served callees can be missed.
    bool ObservationManifest = true;
    /// Run triggered bottom-up analyses on a worker thread while the
    /// top-down analysis continues (the parallelization sketched in the
    /// paper's Section 7). Summaries are installed when the worker
    /// finishes; calls arriving in between are simply analyzed top-down,
    /// which preserves coincidence — the install point is immaterial.
    bool AsyncBu = false;
  };

  TabulationSolver(const Context &Ctx, const Program &Prog,
                   const CallGraph &CG, Config Cfg, Budget &B, Stats &S)
      : Ctx(Ctx), Prog(Prog), CG(CG), Cfg(Cfg), Bud(B), Stat(S) {
    size_t N = Prog.numProcs();
    Edges.resize(N);
    Summaries.resize(N);
    Dependents.resize(N);
    Incoming.resize(N);
    EverCalled.assign(N, false);
    Bu.resize(N);
  }

  /// Runs to fixpoint from the root procedure's Lambda fact. Returns false
  /// if the budget was exhausted (results are then partial).
  bool run() {
    ProcId Main = Prog.mainProc();
    EverCalled[Main] = true;
    propagate(Main, Prog.proc(Main).entry(), intern(AN::lambda()),
              intern(AN::lambda()));

    while (!Work.empty()) {
      if (Async && Async->Done.load(std::memory_order_acquire))
        installAsync();
      if (!Bud.step()) {
        joinAsync();
        return false;
      }
      auto [P, E] = Work.back();
      Work.pop_back();
      process(P, E);

      // The worklist may drain while a background bottom-up run is still
      // in flight; its summaries can unlock nothing new (the top-down
      // fixpoint is already complete), but join for cleanliness.
      if (Work.empty() && Async)
        joinAsync();
    }
    joinAsync();
    return true;
  }

  //===--------------------------------------------------------------------===
  // Results
  //===--------------------------------------------------------------------===

  const State &state(uint32_t Id) const { return States[Id]; }

  /// Number of (entry, exit) top-down summary pairs of procedure \p P.
  /// The trivial Lambda -> Lambda pair every procedure has is excluded so
  /// counts line up with the paper's (which has no Lambda fact).
  uint64_t numTdSummaries(ProcId P) const {
    uint64_t N = 0;
    for (const auto &[E, Exits] : Summaries[P]) {
      (void)E;
      for (uint32_t X : Exits)
        if (!AN::isLambda(States[X]))
          ++N;
    }
    return N;
  }

  uint64_t totalTdSummaries() const {
    uint64_t N = 0;
    for (ProcId P = 0; P != Prog.numProcs(); ++P)
      N += numTdSummaries(P);
    return N;
  }

  /// Number of distinct non-Lambda incoming abstract states of \p P.
  uint64_t numIncoming(ProcId P) const { return Incoming[P].size(); }

  uint64_t totalBuRelations() const {
    uint64_t N = 0;
    for (const auto &B : Bu)
      if (B)
        N += B->Rels.size();
    return N;
  }

  bool buDefined(ProcId P) const { return Bu[P].has_value(); }
  const BuSummary &buSummary(ProcId P) const { return *Bu[P]; }

  /// Visits every computed fact (td map entry): (proc, node, entry state,
  /// current state).
  template <typename Fn> void forEachFact(Fn F) const {
    for (ProcId P = 0; P != Prog.numProcs(); ++P)
      for (const Edge &E : Edges[P].Set)
        F(P, E.Node, States[E.Entry], States[E.Cur]);
  }

  /// Visits every (entry, exit) summary pair of \p P.
  template <typename Fn> void forEachSummary(ProcId P, Fn F) const {
    for (const auto &[E, Exits] : Summaries[P])
      for (uint32_t X : Exits)
        F(States[E], States[X]);
  }

  /// Visits every observable state reported through a bottom-up summary's
  /// observation manifest: (caller proc, call node, state).
  template <typename Fn> void forEachObserved(Fn F) const {
    for (const auto &[P, N, S] : Observed)
      F(P, N, States[S]);
  }

private:
  struct Edge {
    NodeId Node;
    uint32_t Entry;
    uint32_t Cur;
    friend bool operator==(const Edge &A, const Edge &B) {
      return A.Node == B.Node && A.Entry == B.Entry && A.Cur == B.Cur;
    }
  };
  struct EdgeHash {
    size_t operator()(const Edge &E) const noexcept {
      uint64_t X = (static_cast<uint64_t>(E.Node) << 40) ^
                   (static_cast<uint64_t>(E.Entry) << 20) ^ E.Cur;
      X ^= X >> 33;
      X *= 0xff51afd7ed558ccdULL;
      X ^= X >> 33;
      return static_cast<size_t>(X);
    }
  };
  struct EdgeSet {
    std::unordered_set<Edge, EdgeHash> Set;
  };
  struct Caller {
    ProcId P;
    NodeId Node;
    uint32_t Entry; ///< Caller's own entry-state id.
    uint32_t Frame; ///< Caller's state at the call site.
  };

  uint32_t intern(const State &S) {
    auto It = StateIds.find(S);
    if (It != StateIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(States.size());
    States.push_back(S);
    StateIds.emplace(States.back(), Id);
    return Id;
  }

  void propagate(ProcId P, NodeId N, uint32_t Entry, uint32_t Cur) {
    Edge E{N, Entry, Cur};
    if (!Edges[P].Set.insert(E).second)
      return;
    ++Stat.counter("td.path_edges");
    Work.push_back({P, E});
  }

  const Binding &binding(ProcId P, NodeId N, const Command &Cmd) {
    uint64_t Key = (static_cast<uint64_t>(P) << 32) | N;
    auto It = Bindings.find(Key);
    if (It == Bindings.end())
      It = Bindings.emplace(Key, AN::makeBinding(Ctx, P, Cmd)).first;
    return It->second;
  }

  std::vector<State> combineDispatch(const Binding &B, const State &Frame,
                                     const State &Exit) {
    if (AN::isLambda(Frame)) {
      if (AN::isLambda(Exit))
        return {Exit};
      return AN::combineFresh(B, Exit);
    }
    assert(!AN::isLambda(Exit) &&
           "non-Lambda entries never reach a Lambda exit");
    return AN::combine(B, Frame, Exit);
  }

  void process(ProcId P, const Edge &E) {
    const Procedure &Proc = Prog.proc(P);

    if (E.Node == Proc.exit()) {
      recordSummary(P, E.Entry, E.Cur);
      return;
    }

    const CfgNode &Node = Proc.node(E.Node);
    if (Node.Cmd.Kind == CmdKind::Call) {
      processCall(P, E, Node);
      return;
    }

    for (const State &S2 :
         AN::transfer(Ctx, P, Node.Cmd, States[E.Cur])) {
      uint32_t Id = intern(S2);
      for (NodeId Succ : Node.Succs)
        propagate(P, Succ, E.Entry, Id);
    }
  }

  void processCall(ProcId P, const Edge &E, const CfgNode &Node) {
    ProcId G = Node.Cmd.Callee;
    const Binding &B = binding(P, E.Node, Node.Cmd);
    EverCalled[G] = true;

    // Call-to-return flow that bypasses the callee (empty for analyses
    // whose facts all travel through the callee, like the typestate one).
    for (const State &S : AN::callLocal(B, States[E.Cur])) {
      uint32_t Id = intern(S);
      for (NodeId Succ : Node.Succs)
        propagate(P, Succ, E.Entry, Id);
    }

    std::vector<State> Entries = AN::enter(B, States[E.Cur]);
    std::sort(Entries.begin(), Entries.end());
    Entries.erase(std::unique(Entries.begin(), Entries.end()),
                  Entries.end());
    for (const State &EntryState : Entries) {
      uint32_t EntryId = intern(EntryState);
      if (!AN::isLambda(EntryState))
        ++Incoming[G][EntryId];

      // Serve from the bottom-up summary when one covers this entry
      // state. The guard uses SigmaAll (every point's ignore set), which
      // also validates the observation manifest.
      if (Bu[G] &&
          !(Cfg.ObservationManifest ? Bu[G]->SigmaAll : Bu[G]->Sigma)
               .contains(Ctx, EntryState)) {
        ++Stat.counter("td.bu_served_calls");
        if (AN::isLambda(EntryState) && Bu[G]->LambdaExit)
          applyAfter(P, E, Node, B, States[E.Cur], EntryState);
        for (const Rel &R : Bu[G]->Rels)
          if (std::optional<State> Out = AN::applyRel(Ctx, R, EntryState))
            applyAfter(P, E, Node, B, States[E.Cur], *Out);
        // Errors at the callee's internal points, reported at this call.
        for (const Rel &R : Bu[G]->ObsRels)
          if (std::optional<State> Out = AN::applyRel(Ctx, R, EntryState))
            if (AN::stateObservable(Ctx, *Out))
              Observed.insert({P, E.Node, intern(*Out)});
        continue;
      }

      if (Bu[G])
        ++Stat.counter("td.bu_fallback_calls");

      // Top-down route: register for resumption and seed the callee.
      Dependents[G][EntryId].push_back(Caller{P, E.Node, E.Entry, E.Cur});
      propagate(G, Prog.proc(G).entry(), EntryId, EntryId);
      auto SumIt = Summaries[G].find(EntryId);
      if (SumIt != Summaries[G].end())
        for (uint32_t ExitId : SumIt->second)
          applyAfter(P, E, Node, B, States[E.Cur], States[ExitId]);

      // The SWIFT trigger (Algorithm 1, line 17).
      if (Cfg.K != NoBuTrigger && !Bu[G] && Incoming[G].size() > Cfg.K)
        tryRunBu(G);
    }
  }

  void applyAfter(ProcId P, const Edge &E, const CfgNode &Node,
                  const Binding &B, const State &Frame, const State &Exit) {
    std::vector<State> Afters = combineDispatch(B, Frame, Exit);
    for (const State &After : Afters) {
      uint32_t Id = intern(After);
      for (NodeId Succ : Node.Succs)
        propagate(P, Succ, E.Entry, Id);
    }
  }

  void recordSummary(ProcId P, uint32_t Entry, uint32_t Exit) {
    std::vector<uint32_t> &Exits = Summaries[P][Entry];
    for (uint32_t X : Exits)
      if (X == Exit)
        return;
    Exits.push_back(Exit);
    ++Stat.counter("td.summaries");

    // Resume callers waiting on this (callee, entry) pair.
    auto DepIt = Dependents[P].find(Entry);
    if (DepIt == Dependents[P].end())
      return;
    // Copy: applyAfter may grow the dependents map.
    std::vector<Caller> Waiting = DepIt->second;
    for (const Caller &C : Waiting) {
      const CfgNode &Node = Prog.proc(C.P).node(C.Node);
      const Binding &B = binding(C.P, C.Node, Node.Cmd);
      Edge CallerEdge{C.Node, C.Entry, C.Frame};
      applyAfter(C.P, CallerEdge, Node, B, States[C.Frame],
                 States[Exit]);
    }
  }

  /// Runs the pruned bottom-up analysis on every procedure reachable from
  /// \p G (Algorithm 1's run_bu), unless some reachable procedure has not
  /// been seen by the top-down analysis yet (the paper's postponement for
  /// its first problematic scenario in Section 4). With Config::AsyncBu
  /// the run happens on a worker thread (one at a time) and the top-down
  /// analysis keeps going.
  void tryRunBu(ProcId G) {
    if (Async) {
      if (Async->Done.load(std::memory_order_acquire))
        installAsync();
      if (Async) {
        ++Stat.counter("swift.bu_busy_skips");
        return; // A bottom-up run is already in flight.
      }
    }

    std::vector<ProcId> F = CG.reachableFrom(G);
    for (ProcId Q : F)
      if (!EverCalled[Q]) {
        ++Stat.counter("swift.bu_postponed");
        return;
      }

    // Materialize the frequency multisets M for the pruning ranking.
    auto Freq = std::make_shared<
        std::vector<std::unordered_map<State, uint64_t>>>();
    Freq->resize(Prog.numProcs());
    for (ProcId Q : F)
      for (const auto &[StateId, Count] : Incoming[Q])
        (*Freq)[Q].emplace(States[StateId], Count);

    if (!Cfg.AsyncBu) {
      Timer BuTimer;
      RelationalSolver<AN> Solver(
          Ctx, Prog, CG, Cfg.Theta,
          [Freq](ProcId Q) { return &(*Freq)[Q]; }, Bud, Stat,
          DefaultMaxRelsPerPoint, Cfg.ObservationManifest);
      bool Ok = Solver.run(F);
      Stat.counter("swift.bu_time_us") +=
          static_cast<uint64_t>(BuTimer.seconds() * 1e6);
      if (!Ok)
        return; // Budget exhausted; leave summaries uninstalled.
      for (ProcId Q : F)
        install(Q, Solver.summary(Q));
      ++Stat.counter("swift.bu_triggers");
      return;
    }

    // Asynchronous run: the worker owns a snapshot of the frequency data
    // and its own budget (same caps as the main one) and touches only
    // immutable analysis state (context, program, call graph).
    Async = std::make_unique<AsyncJob>();
    Async->F = F;
    AsyncJob *Job = Async.get();
    const Context *CtxPtr = &Ctx;
    const Program *ProgPtr = &Prog;
    const CallGraph *CGPtr = &CG;
    uint64_t Theta = Cfg.Theta;
    bool Manifest = Cfg.ObservationManifest;
    uint64_t MaxSteps = Bud.maxSteps();
    double MaxSeconds = Bud.maxSeconds();
    Async->Worker = std::thread([Job, Freq, CtxPtr, ProgPtr, CGPtr, Theta,
                                 Manifest, MaxSteps, MaxSeconds]() {
      Budget OwnBudget(MaxSteps, MaxSeconds);
      RelationalSolver<AN> Solver(
          *CtxPtr, *ProgPtr, *CGPtr, Theta,
          [Freq](ProcId Q) { return &(*Freq)[Q]; }, OwnBudget,
          Job->WorkerStats, DefaultMaxRelsPerPoint, Manifest);
      Job->Ok = Solver.run(Job->F);
      if (Job->Ok)
        for (ProcId Q : Job->F)
          Job->Results.push_back(Solver.summary(Q));
      Job->WorkerStats.counter("swift.bu_time_us") +=
          static_cast<uint64_t>(OwnBudget.seconds() * 1e6);
      Job->Done.store(true, std::memory_order_release);
    });
  }

  void install(ProcId Q, BuSummary Summary) {
    Bu[Q] = std::move(Summary);
    Stat.counter("swift.bu_summary_rels") += Bu[Q]->Rels.size();
    Stat.counter("swift.bu_summary_sigma") += Bu[Q]->SigmaAll.size();
  }

  /// Installs a finished asynchronous run's summaries and merges its
  /// stats.
  void installAsync() {
    assert(Async && Async->Done.load());
    Async->Worker.join();
    if (Async->Ok) {
      for (size_t I = 0; I != Async->F.size(); ++I)
        install(Async->F[I], std::move(Async->Results[I]));
      ++Stat.counter("swift.bu_triggers");
    }
    for (const auto &[Key, Value] : Async->WorkerStats.all())
      Stat.counter(Key) += Value;
    Async.reset();
  }

  /// Blocks on an in-flight asynchronous run, installing its results.
  void joinAsync() {
    if (!Async)
      return;
    while (!Async->Done.load(std::memory_order_acquire))
      std::this_thread::yield();
    installAsync();
  }

  const Context &Ctx;
  const Program &Prog;
  const CallGraph &CG;
  Config Cfg;
  Budget &Bud;
  Stats &Stat;

  std::vector<State> States;
  std::unordered_map<State, uint32_t> StateIds;
  std::vector<EdgeSet> Edges;
  std::vector<std::pair<ProcId, Edge>> Work;
  std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>> Summaries;
  std::vector<std::unordered_map<uint32_t, std::vector<Caller>>> Dependents;
  std::vector<std::unordered_map<uint32_t, uint64_t>> Incoming;
  std::vector<bool> EverCalled;
  std::vector<std::optional<BuSummary>> Bu;
  std::unordered_map<uint64_t, Binding> Bindings;
  std::set<std::tuple<ProcId, NodeId, uint32_t>> Observed;

  struct AsyncJob {
    std::thread Worker;
    std::atomic<bool> Done{false};
    bool Ok = false;
    std::vector<ProcId> F;
    std::vector<BuSummary> Results;
    Stats WorkerStats;
  };
  std::unique_ptr<AsyncJob> Async;
};

} // namespace swift

#endif // SWIFT_FRAMEWORK_TABULATION_H
