//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SWIFT algorithm (the paper's Algorithm 1): a summary-based top-down
/// tabulation solver (Reps-Horwitz-Sagiv style) that, when the number of
/// distinct incoming abstract states of a procedure exceeds the threshold
/// k, triggers the pruned bottom-up analysis on every procedure reachable
/// from it and thereafter serves call sites from bottom-up summaries
/// whenever the incoming state is not in the summary's ignore set.
///
/// With k = infinity this is exactly the conventional top-down analysis
/// (the TD baseline).
///
/// Facts are pairs (entry state, current state) per program point — the
/// paper's td map. A "top-down summary" is an (entry, exit) pair of a
/// procedure, matching the paper's counting.
///
/// Data layout (the hot-path rewrite): every abstract state is interned
/// once into a dense-id arena (States) indexed by an open-addressing
/// HashIndex keyed on a cached 64-bit state hash; all solver tables key
/// on the 32-bit ids, never on state values. Path-edge sets, summaries,
/// dependents, incoming multisets, and the observation set are flat
/// open-addressing tables (support/FlatHash.h) over contiguous row
/// vectors — no per-entry node allocations, and snapshot/iteration walk
/// the rows linearly. EverCalled is a packed bit vector.
///
/// On top of the id layout the solver memoizes the pure per-call-site
/// analysis functions, which the tabulation loop otherwise re-evaluates
/// once per path edge sharing the same current state:
///   * transfer outs per (proc, node, cur-state id),
///   * enter results per (call site, cur-state id),
///   * combine results per (call site, frame id, exit id),
///   * bottom-up serve decisions and outputs per (callee, entry id) —
///     this batches the Sigma guard and the applyRel sweep that every
///     wavefront of callers to the same callee entry would repeat; the
///     cache carries a generation stamp and is invalidated wholesale when
///     a summary is installed or shed.
/// All memo hits replay the exact id sequence the first evaluation
/// produced, so worklist order, budget step counts, and every reported
/// fact are identical to the unmemoized solver's.
///
/// Concurrency (the paper's Section 7 sketch, generalized): with
/// Config::AsyncBu, triggered bottom-up runs execute on worker threads
/// while the top-down analysis continues. Up to Config::MaxAsyncJobs runs
/// with pairwise-disjoint trigger frontiers may be in flight at once;
/// every run draws steps from the *shared* budget, so the total cost of a
/// hybrid run stays bounded by the same cap as the synchronous baselines.
/// Each bottom-up solve itself parallelizes over the call-graph SCC DAG
/// with Config::BuThreads workers (see RelationalSolver). Workers touch
/// only immutable analysis state plus a materialized frequency snapshot;
/// the interner and memo tables are top-down-thread-only.
///
/// Resource governance (Config::Gov): an attached ResourceGovernor turns
/// the binary run/abort model into staged degradation. The top-down loop
/// polls the governor between worklist pops and charges it for every
/// interned state and path edge; under Yellow pressure newly triggered
/// synchronous bottom-up runs halve theta and no new asynchronous jobs
/// are minted, under Red no bottom-up runs start, installed summary
/// caches are shed, and in-flight asynchronous jobs are cancelled through
/// the governor's CancelToken. All of it is sound: serving is always
/// guarded by Sigma, and the top-down route is always available
/// (Theorem 3.1). Budget consumption is attributed per phase in Stats
/// (budget.td_steps / budget.sync_bu_steps / budget.async_bu_steps) so a
/// timeout report says where the budget went; steps burned by an
/// asynchronous run that was cancelled mid-flight (Red latch or budget
/// exhaustion) and installed nothing are shed work, recorded under
/// gov.cancelled_bu_steps / gov.bu_cancelled instead of the productive
/// async-BU phase.
///
/// Observability (src/obs): when tracing is enabled the solver emits a
/// "td.run" span, "bu.sync"/"bu.async" spans per bottom-up run,
/// per-procedure "bu.serve"/"bu.fallback"/"bu.install" instants,
/// "swift.k_trip" trigger instants, "gov.shed" instants, and a periodic
/// "td.path_edges" counter track. Every site is a single relaxed atomic
/// load when tracing is off.
///
/// snapshot()/restore() capture and re-seed the solver's mutable state
/// for checkpoint/resume of budget-limited runs; see TabSnapshot.h for
/// the exactness guarantees. Memo tables are pure caches and are
/// intentionally not part of the snapshot: a resumed run refills them.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_FRAMEWORK_TABULATION_H
#define SWIFT_FRAMEWORK_TABULATION_H

#include "framework/RelationalSolver.h"
#include "framework/TabSnapshot.h"
#include "govern/Governor.h"
#include "ir/CallGraph.h"
#include "ir/Program.h"
#include "obs/Trace.h"
#include "support/FlatHash.h"
#include "support/Hashing.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace swift {

inline constexpr uint64_t NoBuTrigger = UINT64_MAX;

template <typename AN> class TabulationSolver {
public:
  using Context = typename AN::Context;
  using State = typename AN::State;
  using Rel = typename AN::Rel;
  using Ignore = typename AN::Ignore;
  using Binding = typename AN::Binding;
  using SummaryView = typename AN::SummaryView;
  using BuSummary = typename RelationalSolver<AN>::Summary;
  using Snapshot = TabSnapshot<State>;

  struct Config {
    uint64_t K = NoBuTrigger; ///< Trigger threshold; NoBuTrigger = pure TD.
    uint64_t Theta = 1;       ///< Cases kept by the pruned bottom-up run.
    /// Collect and serve the observation manifest (errors at callee-
    /// internal points; see RelationalSolver::Summary). Disabling it is
    /// an ablation knob: value results stay coincident, but errors on
    /// paths that diverge inside served callees can be missed.
    bool ObservationManifest = true;
    /// Run triggered bottom-up analyses on worker threads while the
    /// top-down analysis continues (the parallelization sketched in the
    /// paper's Section 7). Summaries are installed when a worker
    /// finishes; calls arriving in between are simply analyzed top-down,
    /// which preserves coincidence — the install point is immaterial.
    bool AsyncBu = false;
    /// Worker threads inside each bottom-up solve (SCC-DAG wavefront);
    /// 1 = the sequential callee-first sweep. Summaries are identical for
    /// every value.
    unsigned BuThreads = 1;
    /// With AsyncBu: bound on concurrently in-flight bottom-up runs.
    /// Triggers whose frontier overlaps an in-flight run's frontier are
    /// skipped (they would duplicate its work); disjoint frontiers
    /// proceed in parallel up to this bound.
    unsigned MaxAsyncJobs = 2;
    /// Optional resource governor (see file comment). Must outlive the
    /// solver; its Budget should be the one passed to the constructor so
    /// pressure fractions describe the budget actually being consumed.
    ResourceGovernor *Gov = nullptr;
  };

  TabulationSolver(const Context &Ctx, const Program &Prog,
                   const CallGraph &CG, Config Cfg, Budget &B, Stats &S)
      : Ctx(Ctx), Prog(Prog), CG(CG), Cfg(Cfg), Bud(B), Stat(S) {
    size_t N = Prog.numProcs();
    Edges.resize(N);
    Summaries.resize(N);
    Dependents.resize(N);
    Incoming.resize(N);
    EverCalled.assign(N, false);
    Bu.resize(N);
  }

  /// Runs to fixpoint from the root procedure's Lambda fact. Returns false
  /// if the budget was exhausted (results are then partial). Partial
  /// facts are sound: tabulation only accumulates, so every path edge,
  /// summary, and observation present at exhaustion is present in the
  /// full fixpoint too.
  bool run() {
    obs::TraceSpan RunSpan("td", "td.run");
    ProcId Main = Prog.mainProc();
    EverCalled.set(Main);
    propagate(Main, Prog.proc(Main).entry(), intern(AN::lambda()),
              intern(AN::lambda()));

    while (!Work.empty()) {
      if (!AsyncJobs.empty())
        pollAsync();
      if (!Bud.step()) {
        joinAsync();
        return false;
      }
      ++Stat.counter(CtrTdSteps);
      if (Cfg.Gov)
        governPoll();
      auto [P, E] = Work.back();
      Work.pop_back();
      process(P, E);

      // The worklist may drain while background bottom-up runs are still
      // in flight; their summaries can unlock nothing new (the top-down
      // fixpoint is already complete), but join for cleanliness.
      if (Work.empty() && !AsyncJobs.empty())
        joinAsync();
    }
    joinAsync();
    return true;
  }

  //===--------------------------------------------------------------------===
  // Checkpoint / resume
  //===--------------------------------------------------------------------===

  /// Captures the solver's mutable state. Callable once run() has
  /// returned (asynchronous jobs are then joined); bottom-up caches and
  /// memo tables are intentionally dropped (see TabSnapshot.h).
  Snapshot snapshot() const {
    assert(AsyncJobs.empty() && "join asynchronous jobs before snapshot");
    Snapshot S;
    S.States = States;

    for (ProcId P = 0; P != Prog.numProcs(); ++P)
      for (const Edge &E : Edges[P].Rows)
        S.Edges.push_back({P, E.Node, E.Entry, E.Cur});
    std::sort(S.Edges.begin(), S.Edges.end());

    S.Work.reserve(Work.size());
    for (const auto &[P, E] : Work)
      S.Work.push_back({P, E.Node, E.Entry, E.Cur});

    for (ProcId P = 0; P != Prog.numProcs(); ++P) {
      std::vector<typename Snapshot::SummaryRow> Rows;
      Summaries[P].forEach(
          [&](uint32_t Entry, const std::vector<uint32_t> &Exits) {
            Rows.push_back({P, Entry, Exits});
          });
      std::sort(Rows.begin(), Rows.end(),
                [](const auto &A, const auto &B) {
                  return A.Entry < B.Entry;
                });
      for (auto &R : Rows)
        S.Summaries.push_back(std::move(R));
    }

    // Rows with the same (callee, entry) key keep their registration
    // order — recordSummary resumes waiting callers in that order.
    for (ProcId G = 0; G != Prog.numProcs(); ++G) {
      std::vector<uint32_t> Keys = Dependents[G].keys();
      std::sort(Keys.begin(), Keys.end());
      for (uint32_t Entry : Keys)
        for (const Caller &C : *Dependents[G].find(Entry))
          S.Dependents.push_back({G, Entry, C.P, C.Node, C.Entry, C.Frame});
    }

    for (ProcId P = 0; P != Prog.numProcs(); ++P) {
      std::vector<typename Snapshot::IncomingRow> Rows;
      Incoming[P].forEach([&](uint32_t Entry, uint64_t Count) {
        Rows.push_back({P, Entry, Count});
      });
      std::sort(Rows.begin(), Rows.end(),
                [](const auto &A, const auto &B) {
                  return A.Entry < B.Entry;
                });
      for (auto &R : Rows)
        S.Incoming.push_back(std::move(R));
    }

    S.EverCalled.reserve(EverCalled.size());
    for (size_t P = 0; P != EverCalled.size(); ++P)
      S.EverCalled.push_back(EverCalled.get(P) ? 1 : 0);

    // The flat observation table keeps insertion order; checkpoints store
    // the rows sorted (the historical std::set iteration order), so a
    // resumed run snapshots byte-identically to an uninterrupted one.
    for (const ObsRow &O : ObservedRows)
      S.Observed.push_back({O.P, O.Node, O.StateId});
    std::sort(S.Observed.begin(), S.Observed.end(),
              [](const auto &A, const auto &B) {
                if (A.Proc != B.Proc)
                  return A.Proc < B.Proc;
                if (A.Node != B.Node)
                  return A.Node < B.Node;
                return A.StateId < B.StateId;
              });
    return S;
  }

  /// Re-seeds a *fresh* solver (same program, same analysis) from \p S.
  /// Call before run(); run() then continues exactly where the
  /// checkpointed run stopped (its initial Lambda propagation dedups
  /// against the restored path-edge table).
  void restore(const Snapshot &S) {
    assert(States.empty() && Work.empty() && "restore into a fresh solver");
    States = S.States;
    StateIndex.clear();
    StateIndex.reserve(States.size());
    for (uint32_t I = 0; I != States.size(); ++I)
      StateIndex.insert(stateHash(States[I]), I);
    for (const auto &E : S.Edges) {
      assert(E.Proc < Edges.size());
      insertEdge(E.Proc, Edge{E.Node, E.Entry, E.Cur});
    }
    for (const auto &W : S.Work)
      Work.push_back({W.Proc, Edge{W.Node, W.Entry, W.Cur}});
    for (const auto &Row : S.Summaries)
      Summaries[Row.Proc].getOrCreate(Row.Entry) = Row.Exits;
    for (const auto &D : S.Dependents)
      Dependents[D.Callee].getOrCreate(D.Entry).push_back(
          Caller{D.CallerProc, D.CallNode, D.CallerEntry, D.Frame});
    for (const auto &I : S.Incoming)
      Incoming[I.Proc].getOrCreate(I.Entry) = I.Count;
    for (size_t P = 0; P != EverCalled.size() && P != S.EverCalled.size();
         ++P)
      if (S.EverCalled[P] != 0)
        EverCalled.set(P);
    for (const auto &O : S.Observed)
      observedInsert(O.Proc, O.Node, O.StateId);
  }

  //===--------------------------------------------------------------------===
  // Results
  //===--------------------------------------------------------------------===

  const State &state(uint32_t Id) const { return States[Id]; }

  /// Number of (entry, exit) top-down summary pairs of procedure \p P.
  /// The trivial Lambda -> Lambda pair every procedure has is excluded so
  /// counts line up with the paper's (which has no Lambda fact).
  uint64_t numTdSummaries(ProcId P) const {
    uint64_t N = 0;
    Summaries[P].forEach(
        [&](uint32_t, const std::vector<uint32_t> &Exits) {
          for (uint32_t X : Exits)
            if (!AN::isLambda(States[X]))
              ++N;
        });
    return N;
  }

  uint64_t totalTdSummaries() const {
    uint64_t N = 0;
    for (ProcId P = 0; P != Prog.numProcs(); ++P)
      N += numTdSummaries(P);
    return N;
  }

  /// Number of distinct non-Lambda incoming abstract states of \p P.
  uint64_t numIncoming(ProcId P) const { return Incoming[P].size(); }

  uint64_t totalBuRelations() const {
    uint64_t N = 0;
    for (const auto &B : Bu)
      if (B)
        N += B->Rels.size();
    return N;
  }

  bool buDefined(ProcId P) const { return Bu[P].has_value(); }
  const BuSummary &buSummary(ProcId P) const { return *Bu[P]; }

  /// Visits every computed fact (td map entry): (proc, node, entry state,
  /// current state).
  template <typename Fn> void forEachFact(Fn F) const {
    for (ProcId P = 0; P != Prog.numProcs(); ++P)
      for (const Edge &E : Edges[P].Rows)
        F(P, E.Node, States[E.Entry], States[E.Cur]);
  }

  /// Visits every (entry, exit) summary pair of \p P.
  template <typename Fn> void forEachSummary(ProcId P, Fn F) const {
    Summaries[P].forEach(
        [&](uint32_t E, const std::vector<uint32_t> &Exits) {
          for (uint32_t X : Exits)
            F(States[E], States[X]);
        });
  }

  /// Visits every observable state reported through a bottom-up summary's
  /// observation manifest: (caller proc, call node, state).
  template <typename Fn> void forEachObserved(Fn F) const {
    for (const ObsRow &O : ObservedRows)
      F(O.P, O.Node, States[O.StateId]);
  }

private:
  struct Edge {
    NodeId Node;
    uint32_t Entry;
    uint32_t Cur;
    friend bool operator==(const Edge &A, const Edge &B) {
      return A.Node == B.Node && A.Entry == B.Entry && A.Cur == B.Cur;
    }
  };
  /// Full-width mixing of all three fields. Shift-xor packing (the
  /// previous scheme) aliased once state ids passed 2^20, collapsing the
  /// path-edge set to near-linear probing on large configs.
  static uint64_t edgeHash(const Edge &E) {
    return hashCombine(hashCombine(mix64(E.Node), E.Entry), E.Cur);
  }
  /// Path edges of one procedure: dense insertion-order rows plus an
  /// open-addressing dedup index over them.
  struct EdgeTab {
    std::vector<Edge> Rows;
    HashIndex Idx;
  };
  struct Caller {
    ProcId P;
    NodeId Node;
    uint32_t Entry; ///< Caller's own entry-state id.
    uint32_t Frame; ///< Caller's state at the call site.
  };
  struct ObsRow {
    ProcId P;
    NodeId Node;
    uint32_t StateId;
  };

  /// Per-state footprint for the governor's memory estimate; analyses
  /// with out-of-line storage provide AN::stateBytes, others fall back to
  /// the object size.
  static uint64_t approxStateBytes(const State &S) {
    if constexpr (requires { AN::stateBytes(S); })
      return AN::stateBytes(S);
    else
      return sizeof(State);
  }

  /// 64-bit hash of a state; analyses that cache a hash at construction
  /// expose it through AN::stateHash, others pay the std::hash walk.
  static uint64_t stateHash(const State &S) {
    if constexpr (requires { AN::stateHash(S); })
      return AN::stateHash(S);
    else
      return static_cast<uint64_t>(std::hash<State>{}(S));
  }

  uint32_t intern(const State &S) {
    uint64_t H = stateHash(S);
    auto [Id, Inserted] = StateIndex.findOrInsert(
        H, static_cast<uint32_t>(States.size()),
        [&](uint32_t I) { return States[I] == S; });
    if (Inserted) {
      States.push_back(S);
      if (Cfg.Gov)
        Cfg.Gov->charge(approxStateBytes(S) + 4 * sizeof(void *));
    }
    return Id;
  }

  /// Dedups \p E into \p P's path-edge table; true when newly inserted.
  bool insertEdge(ProcId P, const Edge &E) {
    EdgeTab &T = Edges[P];
    auto [Row, Inserted] = T.Idx.findOrInsert(
        edgeHash(E), static_cast<uint32_t>(T.Rows.size()),
        [&](uint32_t I) { return T.Rows[I] == E; });
    (void)Row;
    if (Inserted)
      T.Rows.push_back(E);
    return Inserted;
  }

  void propagate(ProcId P, NodeId N, uint32_t Entry, uint32_t Cur) {
    Edge E{N, Entry, Cur};
    if (!insertEdge(P, E))
      return;
    uint64_t NEdges = ++Stat.counter(CtrPathEdges);
    // Path-edge growth curve, sampled sparsely to keep the innermost
    // propagation free of per-edge trace events.
    if (obs::tracingEnabled() && (NEdges & 1023) == 0)
      obs::counterEvent("td.path_edges", "edges", NEdges);
    // Hash-set node plus the worklist entry, roughly.
    if (Cfg.Gov)
      Cfg.Gov->charge(3 * sizeof(Edge));
    Work.push_back({P, E});
  }

  /// A call-site binding plus its dense site id (the memo key for the
  /// per-site enter/combine caches).
  struct BoundSite {
    const Binding &B;
    uint32_t Site;
  };

  BoundSite binding(ProcId P, NodeId N, const Command &Cmd) {
    uint64_t Key = (static_cast<uint64_t>(P) << 32) | N;
    uint64_t H = mix64(Key);
    uint32_t Id = BindingIdx.find(
        H, [&](uint32_t I) { return BindingKeys[I] == Key; });
    if (Id == HashIndex::Npos) {
      Id = static_cast<uint32_t>(BindingKeys.size());
      BindingIdx.insert(H, Id);
      BindingKeys.push_back(Key);
      // Deque: stable references while new sites are bound.
      BindingArena.emplace_back(AN::makeBinding(Ctx, P, Cmd));
    }
    return {BindingArena[Id], Id};
  }

  std::vector<State> combineDispatch(const Binding &B, const State &Frame,
                                     const State &Exit) {
    if (AN::isLambda(Frame)) {
      if (AN::isLambda(Exit))
        return {Exit};
      return AN::combineFresh(B, Exit);
    }
    assert(!AN::isLambda(Exit) &&
           "non-Lambda entries never reach a Lambda exit");
    return AN::combine(B, Frame, Exit);
  }

  //===--------------------------------------------------------------------===
  // Memo tables (pure caches over interned ids; never snapshotted)
  //===--------------------------------------------------------------------===

  struct MemoKey {
    uint32_t A, B, C;
  };
  /// Key triple -> (begin, count) slice into MemoPool.
  struct MemoTab {
    HashIndex Idx;
    std::vector<MemoKey> Keys;
    std::vector<std::pair<uint32_t, uint32_t>> Slices;
  };

  static uint64_t memoHash(MemoKey K) {
    return hashCombine(hashCombine(mix64(K.A), K.B), K.C);
  }

  uint32_t memoFind(const MemoTab &T, MemoKey K) const {
    return T.Idx.find(memoHash(K), [&](uint32_t I) {
      return T.Keys[I].A == K.A && T.Keys[I].B == K.B && T.Keys[I].C == K.C;
    });
  }

  uint32_t memoAdd(MemoTab &T, MemoKey K, const std::vector<uint32_t> &Ids) {
    uint32_t Row = static_cast<uint32_t>(T.Keys.size());
    T.Idx.insert(memoHash(K), Row);
    T.Keys.push_back(K);
    T.Slices.push_back({static_cast<uint32_t>(MemoPool.size()),
                        static_cast<uint32_t>(Ids.size())});
    MemoPool.insert(MemoPool.end(), Ids.begin(), Ids.end());
    return Row;
  }

  void process(ProcId P, const Edge &E) {
    const Procedure &Proc = Prog.proc(P);

    if (E.Node == Proc.exit()) {
      recordSummary(P, E.Entry, E.Cur);
      return;
    }

    const CfgNode &Node = Proc.node(E.Node);
    if (Node.Cmd.Kind == CmdKind::Call) {
      processCall(P, E, Node);
      return;
    }

    // Transfer depends only on (node, current state); path edges that
    // share both replay the interned out ids without re-running it.
    MemoKey K{P, E.Node, E.Cur};
    uint32_t Row = memoFind(TransferMemo, K);
    if (Row == HashIndex::Npos) {
      std::vector<uint32_t> Out;
      // Most commands are the identity on most states; the arena is
      // injective, so out == in short-circuits to the input's own id
      // (the cached-hash compare rejects non-identity outs in one load)
      // without touching the interner.
      for (const State &S2 :
           AN::transfer(Ctx, P, Node.Cmd, States[E.Cur]))
        Out.push_back(S2 == States[E.Cur] ? E.Cur : intern(S2));
      Row = memoAdd(TransferMemo, K, Out);
    }
    auto [Begin, Count] = TransferMemo.Slices[Row];
    for (uint32_t I = 0; I != Count; ++I) {
      uint32_t Id = MemoPool[Begin + I];
      for (NodeId Succ : Node.Succs)
        propagate(P, Succ, E.Entry, Id);
    }
  }

  void processCall(ProcId P, const Edge &E, const CfgNode &Node) {
    ProcId G = Node.Cmd.Callee;
    BoundSite BS = binding(P, E.Node, Node.Cmd);
    EverCalled.set(G);

    // Call-to-return flow that bypasses the callee (empty for analyses
    // whose facts all travel through the callee, like the typestate one).
    for (const State &S : AN::callLocal(BS.B, States[E.Cur])) {
      uint32_t Id = intern(S);
      for (NodeId Succ : Node.Succs)
        propagate(P, Succ, E.Entry, Id);
    }

    // Enter depends only on (site, current state); the sorted-unique
    // entry ids are memoized across all path edges through this site.
    MemoKey EK{BS.Site, E.Cur, 0};
    uint32_t ERow = memoFind(EnterMemo, EK);
    if (ERow == HashIndex::Npos) {
      std::vector<State> Entries = AN::enter(BS.B, States[E.Cur]);
      std::sort(Entries.begin(), Entries.end());
      Entries.erase(std::unique(Entries.begin(), Entries.end()),
                    Entries.end());
      std::vector<uint32_t> Ids;
      Ids.reserve(Entries.size());
      for (const State &EntryState : Entries)
        Ids.push_back(intern(EntryState));
      ERow = memoAdd(EnterMemo, EK, Ids);
    }
    auto [EBegin, ECount] = EnterMemo.Slices[ERow];
    for (uint32_t EI = 0; EI != ECount; ++EI) {
      uint32_t EntryId = MemoPool[EBegin + EI];
      if (!AN::isLambda(States[EntryId]))
        ++Incoming[G].getOrCreate(EntryId);

      // Serve from the bottom-up summary when one covers this entry
      // state. The guard uses SigmaAll (every point's ignore set), which
      // also validates the observation manifest. The decision and the
      // summary's outputs for this entry are cached per (callee, entry)
      // until the next install/shed bumps the generation; without an
      // installed summary the check stays the original single branch.
      if (Bu[G]) {
        uint32_t SRow = serveLookup(G, EntryId);
        if (ServeRows[SRow].Served) {
          uint64_t Served = ++Stat.counter(CtrBuServedCalls);
          obs::instant("td", "bu.serve", {"callee", G}, {"caller", P});
          if (obs::tracingEnabled() && (Served & 63) == 0)
            obs::counterEvent("bu.served_calls", "calls", Served);
          // Copy the slice header: applyAfter can grow the pool.
          ServeRow SR = ServeRows[SRow];
          if (SR.LambdaServe)
            applyAfter(P, E, Node, BS, E.Cur, EntryId);
          for (uint32_t I = 0; I != SR.OutsCount; ++I)
            applyAfter(P, E, Node, BS, E.Cur, MemoPool[SR.OutsBegin + I]);
          // Errors at the callee's internal points, reported at this
          // call.
          for (uint32_t I = 0; I != SR.ObsCount; ++I)
            observedInsert(P, E.Node, MemoPool[SR.ObsBegin + I]);
          continue;
        }
        // A Sigma hit: the summary exists but its ignore set covers this
        // entry state, so the call takes the top-down route.
        ++Stat.counter(CtrBuFallbackCalls);
        obs::instant("td", "bu.fallback", {"callee", G}, {"caller", P});
      }

      // Top-down route: register for resumption and seed the callee.
      Dependents[G].getOrCreate(EntryId).push_back(
          Caller{P, E.Node, E.Entry, E.Cur});
      propagate(G, Prog.proc(G).entry(), EntryId, EntryId);
      if (const std::vector<uint32_t> *Exits = Summaries[G].find(EntryId))
        for (uint32_t ExitId : *Exits)
          applyAfter(P, E, Node, BS, E.Cur, ExitId);

      // The SWIFT trigger (Algorithm 1, line 17).
      if (Cfg.K != NoBuTrigger && !Bu[G] && Incoming[G].size() > Cfg.K) {
        obs::instant("td", "swift.k_trip", {"proc", G},
                     {"incoming", Incoming[G].size()});
        tryRunBu(G);
      }
    }
  }

  /// (Re)computes the cached serve decision for entry \p EntryId of
  /// callee \p G; returns the ServeRows index. Rows whose generation
  /// predates the last install/shed are recomputed in place.
  uint32_t serveLookup(ProcId G, uint32_t EntryId) {
    uint64_t H = hashCombine(mix64(G), EntryId);
    uint32_t Row = ServeIdx.find(H, [&](uint32_t I) {
      return ServeKeys[I].first == G && ServeKeys[I].second == EntryId;
    });
    if (Row != HashIndex::Npos && ServeRows[Row].Gen == ServeGen)
      return Row;

    // Copy: interning the outputs below can reallocate the arena.
    State EntryState = States[EntryId];
    ServeRow R{};
    R.Gen = ServeGen;
    if (Bu[G] &&
        !(Cfg.ObservationManifest ? Bu[G]->SigmaAll : Bu[G]->Sigma)
             .contains(Ctx, EntryState)) {
      R.Served = 1;
      R.LambdaServe = AN::isLambda(EntryState) && Bu[G]->LambdaExit;
      std::vector<uint32_t> Outs, Obs;
      for (const Rel &Rl : Bu[G]->Rels)
        if (std::optional<State> Out = AN::applyRel(Ctx, Rl, EntryState))
          Outs.push_back(*Out == EntryState ? EntryId : intern(*Out));
      for (const Rel &Rl : Bu[G]->ObsRels)
        if (std::optional<State> Out = AN::applyRel(Ctx, Rl, EntryState))
          if (AN::stateObservable(Ctx, *Out))
            Obs.push_back(intern(*Out));
      R.OutsBegin = static_cast<uint32_t>(MemoPool.size());
      R.OutsCount = static_cast<uint32_t>(Outs.size());
      MemoPool.insert(MemoPool.end(), Outs.begin(), Outs.end());
      R.ObsBegin = static_cast<uint32_t>(MemoPool.size());
      R.ObsCount = static_cast<uint32_t>(Obs.size());
      MemoPool.insert(MemoPool.end(), Obs.begin(), Obs.end());
    }
    if (Row == HashIndex::Npos) {
      Row = static_cast<uint32_t>(ServeRows.size());
      ServeIdx.insert(H, Row);
      ServeKeys.push_back({G, EntryId});
      ServeRows.push_back(R);
    } else {
      ServeRows[Row] = R;
    }
    return Row;
  }

  /// Dedups an observation row; insertion order is kept for iteration,
  /// snapshot() sorts.
  void observedInsert(ProcId P, NodeId N, uint32_t StateId) {
    uint64_t H = hashCombine(hashCombine(mix64(P), N), StateId);
    auto [Row, Inserted] = ObservedIdx.findOrInsert(
        H, static_cast<uint32_t>(ObservedRows.size()), [&](uint32_t I) {
          return ObservedRows[I].P == P && ObservedRows[I].Node == N &&
                 ObservedRows[I].StateId == StateId;
        });
    (void)Row;
    if (Inserted)
      ObservedRows.push_back(ObsRow{P, N, StateId});
  }

  /// Combines exit \p ExitId into the caller across call site \p BS and
  /// propagates the results to the call's successors. The combined out
  /// ids are memoized per (site, frame, exit) — resumption replays the
  /// same exit against every waiting caller sharing the frame.
  void applyAfter(ProcId P, const Edge &E, const CfgNode &Node,
                  const BoundSite &BS, uint32_t FrameId, uint32_t ExitId) {
    MemoKey K{BS.Site, FrameId, ExitId};
    uint32_t Row = memoFind(CombineMemo, K);
    if (Row == HashIndex::Npos) {
      std::vector<State> Afters =
          combineDispatch(BS.B, States[FrameId], States[ExitId]);
      std::vector<uint32_t> Ids;
      Ids.reserve(Afters.size());
      // A callee that leaves the caller-visible part alone combines back
      // to the frame state itself; resolve that to FrameId by one
      // cached-hash compare instead of an interner probe.
      for (const State &After : Afters)
        Ids.push_back(After == States[FrameId] ? FrameId : intern(After));
      Row = memoAdd(CombineMemo, K, Ids);
    }
    auto [Begin, Count] = CombineMemo.Slices[Row];
    for (uint32_t I = 0; I != Count; ++I) {
      uint32_t Id = MemoPool[Begin + I];
      for (NodeId Succ : Node.Succs)
        propagate(P, Succ, E.Entry, Id);
    }
  }

  void recordSummary(ProcId P, uint32_t Entry, uint32_t Exit) {
    std::vector<uint32_t> &Exits = Summaries[P].getOrCreate(Entry);
    for (uint32_t X : Exits)
      if (X == Exit)
        return;
    Exits.push_back(Exit);
    ++Stat.counter(CtrTdSummaries);

    // Resume callers waiting on this (callee, entry) pair.
    std::vector<Caller> *DepIt = Dependents[P].find(Entry);
    if (!DepIt)
      return;
    // Copy: applyAfter may grow the dependents map.
    std::vector<Caller> Waiting = *DepIt;
    for (const Caller &C : Waiting) {
      const CfgNode &Node = Prog.proc(C.P).node(C.Node);
      BoundSite BS = binding(C.P, C.Node, Node.Cmd);
      Edge CallerEdge{C.Node, C.Entry, C.Frame};
      applyAfter(C.P, CallerEdge, Node, BS, C.Frame, Exit);
    }
  }

  /// Governed degradation, checked between worklist pops. Shedding runs
  /// once: installed bottom-up caches are dropped (callers fall back to
  /// the always-sound top-down route) and their memory charge released.
  /// In-flight asynchronous jobs observe the governor's CancelToken —
  /// requested when Red latched — and abort without installing.
  void governPoll() {
    Pressure L = Cfg.Gov->poll();
    if (L == Pressure::Red && !GovShedDone) {
      GovShedDone = true;
      obs::instant("gov", "gov.shed");
      for (auto &B : Bu)
        if (B) {
          B.reset();
          ++Stat.counter(CtrGovShedSummaries);
        }
      ++ServeGen; // Cached serve decisions refer to shed summaries.
      Cfg.Gov->release(GovBuBytes);
      GovBuBytes = 0;
    }
  }

  /// Runs the pruned bottom-up analysis on every procedure reachable from
  /// \p G (Algorithm 1's run_bu), unless some reachable procedure has not
  /// been seen by the top-down analysis yet (the paper's postponement for
  /// its first problematic scenario in Section 4). With Config::AsyncBu
  /// the run happens on a worker thread and the top-down analysis keeps
  /// going; runs with disjoint frontiers may overlap, all drawing from
  /// the one shared budget.
  void tryRunBu(ProcId G) {
    // Degradation ladder: Red mints no bottom-up summaries at all;
    // Yellow stops minting *asynchronous* (speculative) ones and, below,
    // halves theta for synchronous runs.
    uint64_t EffTheta = Cfg.Theta;
    if (Cfg.Gov) {
      Pressure L = Cfg.Gov->level();
      if (pressureAtLeast(L, Pressure::Red) ||
          (Cfg.AsyncBu && pressureAtLeast(L, Pressure::Yellow))) {
        ++Stat.counter(CtrGovBuSuppressed);
        return;
      }
      if (pressureAtLeast(L, Pressure::Yellow) && Cfg.Theta != NoPruning &&
          Cfg.Theta > 1) {
        EffTheta = std::max<uint64_t>(1, Cfg.Theta / 2);
        ++Stat.counter(CtrGovThetaShrunk);
      }
    }

    if (Cfg.AsyncBu)
      pollAsync(); // Reap finished jobs first — frees slots.

    std::vector<ProcId> F = CG.reachableFrom(G);
    for (ProcId Q : F)
      if (!EverCalled.get(Q)) {
        ++Stat.counter(CtrBuPostponed);
        return;
      }

    if (Cfg.AsyncBu) {
      if (AsyncJobs.size() >= Cfg.MaxAsyncJobs) {
        ++Stat.counter(CtrBuBusySkips);
        return;
      }
      // A frontier overlapping an in-flight run would recompute (some of)
      // the same summaries; only disjoint frontiers proceed, so a trigger
      // on an unrelated subtree is no longer dropped just because another
      // run is in flight.
      for (const std::unique_ptr<AsyncJob> &Job : AsyncJobs)
        for (ProcId Q : F)
          if (Job->FSet.count(Q)) {
            ++Stat.counter(CtrBuBusySkips);
            return;
          }
    }

    // Materialize the frequency multisets M for the pruning ranking.
    // Workers only ever read this immutable snapshot — never the
    // interner or the memo tables, which stay top-down-thread-only.
    auto Freq = std::make_shared<
        std::vector<std::unordered_map<State, uint64_t>>>();
    Freq->resize(Prog.numProcs());
    for (ProcId Q : F)
      Incoming[Q].forEach([&](uint32_t StateId, uint64_t Count) {
        (*Freq)[Q].emplace(States[StateId], Count);
      });

    if (!Cfg.AsyncBu) {
      obs::TraceSpan BuSpan("bu", "bu.sync", {"root", G},
                            {"frontier", F.size()});
      Timer BuTimer;
      // Local stats: the run's bu.steps are re-attributed to the
      // synchronous-phase budget counter before merging.
      Stats BuStats;
      RelationalSolver<AN> Solver(
          Ctx, Prog, CG, EffTheta,
          [Freq](ProcId Q) { return &(*Freq)[Q]; }, Bud, BuStats,
          DefaultMaxRelsPerPoint, Cfg.ObservationManifest, Cfg.BuThreads,
          Cfg.Gov);
      bool Ok = Solver.run(F);
      BuStats.counter(CtrBuTimeUs) +=
          static_cast<uint64_t>(BuTimer.seconds() * 1e6);
      Stat.counter(CtrSyncBuSteps) += BuStats.get("bu.steps");
      Stat.merge(BuStats);
      if (!Ok)
        return; // Budget exhausted or cancelled; leave uninstalled.
      for (ProcId Q : F)
        install(Q, Solver.summary(Q));
      ++Stat.counter(CtrBuTriggers);
      return;
    }

    // Asynchronous run: the worker owns a snapshot of the frequency data,
    // touches only immutable analysis state (context, program, call
    // graph), and charges the *shared* budget — an async hybrid run costs
    // at most the same cap as the synchronous baselines it is compared
    // against.
    auto Job = std::make_unique<AsyncJob>();
    Job->F = std::move(F);
    Job->FSet.insert(Job->F.begin(), Job->F.end());
    AsyncJob *J = Job.get();
    const Context *CtxPtr = &Ctx;
    const Program *ProgPtr = &Prog;
    const CallGraph *CGPtr = &CG;
    Budget *BudPtr = &Bud;
    uint64_t Theta = EffTheta;
    bool Manifest = Cfg.ObservationManifest;
    unsigned BuThreads = Cfg.BuThreads;
    ResourceGovernor *Gov = Cfg.Gov;
    uint64_t Root = G;
    J->Worker = std::thread([J, Freq, CtxPtr, ProgPtr, CGPtr, BudPtr,
                             Theta, Manifest, BuThreads, Gov, Root]() {
      obs::TraceSpan BuSpan("bu", "bu.async", {"root", Root},
                            {"frontier", J->F.size()});
      Timer BuTimer;
      RelationalSolver<AN> Solver(
          *CtxPtr, *ProgPtr, *CGPtr, Theta,
          [Freq](ProcId Q) { return &(*Freq)[Q]; }, *BudPtr,
          J->WorkerStats, DefaultMaxRelsPerPoint, Manifest, BuThreads,
          Gov);
      J->Ok = Solver.run(J->F);
      if (J->Ok)
        for (ProcId Q : J->F)
          J->Results.push_back(Solver.summary(Q));
      J->WorkerStats.counter("swift.bu_time_us") +=
          static_cast<uint64_t>(BuTimer.seconds() * 1e6);
      // Release ordering: publishes Ok/Results/WorkerStats to the
      // acquire load in pollAsync (see AsyncJob::Done below).
      J->Done.store(true, std::memory_order_release);
    });
    AsyncJobs.push_back(std::move(Job));
  }

  void install(ProcId Q, BuSummary Summary) {
    Bu[Q] = std::move(Summary);
    ++ServeGen; // Cached serve decisions for Q are stale now.
    obs::instant("td", "bu.install", {"proc", Q},
                 {"rels", Bu[Q]->Rels.size()});
    Stat.counter(CtrBuSummaryRels) += Bu[Q]->Rels.size();
    Stat.counter(CtrBuSummarySigma) += Bu[Q]->SigmaAll.size();
    if (Cfg.Gov) {
      uint64_t Bytes =
          (Bu[Q]->Rels.size() + Bu[Q]->ObsRels.size() + 1) *
          (sizeof(Rel) + 16);
      Cfg.Gov->charge(Bytes);
      GovBuBytes += Bytes;
    }
  }

  /// Installs finished asynchronous runs' summaries and merges their
  /// stats; leaves still-running jobs in flight.
  void pollAsync() {
    for (size_t I = 0; I != AsyncJobs.size();) {
      if (AsyncJobs[I]->Done.load(std::memory_order_acquire))
        finishJob(I);
      else
        ++I;
    }
  }

  /// Joins job \p I (blocking if still running), installs its results,
  /// and drops it.
  void finishJob(size_t I) {
    AsyncJob &Job = *AsyncJobs[I];
    Job.Worker.join();
    if (Job.Ok) {
      for (size_t K = 0; K != Job.F.size(); ++K)
        install(Job.F[K], std::move(Job.Results[K]));
      ++Stat.counter(CtrBuTriggers);
      Stat.counter(CtrAsyncBuSteps) += Job.WorkerStats.get("bu.steps");
    } else {
      // Cancelled mid-flight (Red latch) or budget-exhausted: nothing was
      // installed, and the top-down analysis re-spends budget on the very
      // calls this run was meant to serve. Attributing the partial steps
      // to budget.async_bu_steps would double-count them against the
      // productive async phase; they are shed work, recorded under gov.*.
      Stat.counter(CtrGovCancelledSteps) += Job.WorkerStats.get("bu.steps");
      ++Stat.counter(CtrGovBuCancelled);
      obs::instant("gov", "gov.bu_cancelled",
                   {"steps", Job.WorkerStats.get("bu.steps")});
    }
    Stat.merge(Job.WorkerStats);
    AsyncJobs.erase(AsyncJobs.begin() + I);
  }

  /// Blocks on every in-flight asynchronous run, installing results.
  /// join() already blocks until the worker completes — no spinning.
  void joinAsync() {
    while (!AsyncJobs.empty())
      finishJob(0);
  }

  const Context &Ctx;
  const Program &Prog;
  const CallGraph &CG;
  Config Cfg;
  Budget &Bud;
  Stats &Stat;

  // State interner: dense-id arena plus an open-addressing index over
  // cached hashes. Ids are assigned in first-intern order, which every
  // deterministic replay (memo hit or checkpoint resume) reproduces.
  std::vector<State> States;
  HashIndex StateIndex;

  std::vector<EdgeTab> Edges;
  std::vector<std::pair<ProcId, Edge>> Work;
  std::vector<FlatMap32<std::vector<uint32_t>>> Summaries;
  std::vector<FlatMap32<std::vector<Caller>>> Dependents;
  std::vector<FlatMap32<uint64_t>> Incoming;
  BitVec EverCalled;
  std::vector<std::optional<BuSummary>> Bu;

  // Call-site binding arena: dense site ids double as memo keys.
  HashIndex BindingIdx;
  std::vector<uint64_t> BindingKeys; ///< (proc << 32) | node.
  std::deque<Binding> BindingArena;

  // Observation set: insertion-order rows plus a dedup index.
  std::vector<ObsRow> ObservedRows;
  HashIndex ObservedIdx;

  // Memo tables; all slices live in the shared id pool (index-addressed —
  // the pool reallocates while slices are being replayed).
  std::vector<uint32_t> MemoPool;
  MemoTab TransferMemo; ///< (proc, node, cur) -> transfer out ids.
  MemoTab EnterMemo;    ///< (site, cur, 0) -> sorted-unique entry ids.
  MemoTab CombineMemo;  ///< (site, frame, exit) -> combined out ids.

  /// Cached bottom-up serve decision for one (callee, entry id), valid
  /// while Gen == ServeGen. Served == 0 also caches the negative case
  /// (no summary, or its ignore set covers the entry).
  struct ServeRow {
    uint32_t Gen = 0;
    uint32_t OutsBegin = 0, OutsCount = 0;
    uint32_t ObsBegin = 0, ObsCount = 0;
    uint8_t Served = 0;
    uint8_t LambdaServe = 0;
  };
  HashIndex ServeIdx;
  std::vector<std::pair<ProcId, uint32_t>> ServeKeys;
  std::vector<ServeRow> ServeRows;
  uint32_t ServeGen = 0; ///< Bumped on every install and shed.

  bool GovShedDone = false;   ///< Red-pressure cache shed ran.
  uint64_t GovBuBytes = 0;    ///< Memory charged for installed summaries.

  struct AsyncJob {
    std::thread Worker;
    /// Done's release store in the worker pairs with the acquire load in
    /// pollAsync: observing Done == true guarantees Ok, Results, and
    /// WorkerStats are fully written. finishJob additionally join()s,
    /// which synchronizes-with thread exit — so the blocking path needs
    /// no ordering from Done at all.
    std::atomic<bool> Done{false};
    bool Ok = false;
    std::vector<ProcId> F;
    std::unordered_set<ProcId> FSet; ///< For frontier-disjointness tests.
    std::vector<BuSummary> Results;
    Stats WorkerStats;
  };
  /// In-flight asynchronous bottom-up runs; pairwise-disjoint frontiers,
  /// at most Config::MaxAsyncJobs.
  std::vector<std::unique_ptr<AsyncJob>> AsyncJobs;

  // Interned counter handles (resolved once; bumped per event).
  Stats::Counter CtrPathEdges = Stats::id("td.path_edges");
  Stats::Counter CtrTdSummaries = Stats::id("td.summaries");
  Stats::Counter CtrBuServedCalls = Stats::id("td.bu_served_calls");
  Stats::Counter CtrBuFallbackCalls = Stats::id("td.bu_fallback_calls");
  Stats::Counter CtrBuTriggers = Stats::id("swift.bu_triggers");
  Stats::Counter CtrBuPostponed = Stats::id("swift.bu_postponed");
  Stats::Counter CtrBuBusySkips = Stats::id("swift.bu_busy_skips");
  Stats::Counter CtrBuTimeUs = Stats::id("swift.bu_time_us");
  Stats::Counter CtrBuSummaryRels = Stats::id("swift.bu_summary_rels");
  Stats::Counter CtrBuSummarySigma = Stats::id("swift.bu_summary_sigma");
  // Budget phase attribution and governor events.
  Stats::Counter CtrTdSteps = Stats::id("budget.td_steps");
  Stats::Counter CtrSyncBuSteps = Stats::id("budget.sync_bu_steps");
  Stats::Counter CtrAsyncBuSteps = Stats::id("budget.async_bu_steps");
  Stats::Counter CtrGovBuSuppressed = Stats::id("gov.bu_suppressed");
  Stats::Counter CtrGovThetaShrunk = Stats::id("gov.theta_shrunk");
  Stats::Counter CtrGovShedSummaries = Stats::id("gov.shed_summaries");
  // Shed async work: cancelled runs' step spend is *not* part of the
  // budget.* phase partition (those counters cover work that produced
  // installed summaries or top-down facts).
  Stats::Counter CtrGovBuCancelled = Stats::id("gov.bu_cancelled");
  Stats::Counter CtrGovCancelledSteps = Stats::id("gov.cancelled_bu_steps");
};

} // namespace swift

#endif // SWIFT_FRAMEWORK_TABULATION_H
