//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SWIFT algorithm (the paper's Algorithm 1): a summary-based top-down
/// tabulation solver (Reps-Horwitz-Sagiv style) that, when the number of
/// distinct incoming abstract states of a procedure exceeds the threshold
/// k, triggers the pruned bottom-up analysis on every procedure reachable
/// from it and thereafter serves call sites from bottom-up summaries
/// whenever the incoming state is not in the summary's ignore set.
///
/// With k = infinity this is exactly the conventional top-down analysis
/// (the TD baseline).
///
/// Facts are pairs (entry state, current state) per program point — the
/// paper's td map. A "top-down summary" is an (entry, exit) pair of a
/// procedure, matching the paper's counting.
///
/// Concurrency (the paper's Section 7 sketch, generalized): with
/// Config::AsyncBu, triggered bottom-up runs execute on worker threads
/// while the top-down analysis continues. Up to Config::MaxAsyncJobs runs
/// with pairwise-disjoint trigger frontiers may be in flight at once;
/// every run draws steps from the *shared* budget, so the total cost of a
/// hybrid run stays bounded by the same cap as the synchronous baselines.
/// Each bottom-up solve itself parallelizes over the call-graph SCC DAG
/// with Config::BuThreads workers (see RelationalSolver).
///
/// Resource governance (Config::Gov): an attached ResourceGovernor turns
/// the binary run/abort model into staged degradation. The top-down loop
/// polls the governor between worklist pops and charges it for every
/// interned state and path edge; under Yellow pressure newly triggered
/// synchronous bottom-up runs halve theta and no new asynchronous jobs
/// are minted, under Red no bottom-up runs start, installed summary
/// caches are shed, and in-flight asynchronous jobs are cancelled through
/// the governor's CancelToken. All of it is sound: serving is always
/// guarded by Sigma, and the top-down route is always available
/// (Theorem 3.1). Budget consumption is attributed per phase in Stats
/// (budget.td_steps / budget.sync_bu_steps / budget.async_bu_steps) so a
/// timeout report says where the budget went; steps burned by an
/// asynchronous run that was cancelled mid-flight (Red latch or budget
/// exhaustion) and installed nothing are shed work, recorded under
/// gov.cancelled_bu_steps / gov.bu_cancelled instead of the productive
/// async-BU phase.
///
/// Observability (src/obs): when tracing is enabled the solver emits a
/// "td.run" span, "bu.sync"/"bu.async" spans per bottom-up run,
/// per-procedure "bu.serve"/"bu.fallback"/"bu.install" instants,
/// "swift.k_trip" trigger instants, "gov.shed" instants, and a periodic
/// "td.path_edges" counter track. Every site is a single relaxed atomic
/// load when tracing is off.
///
/// snapshot()/restore() capture and re-seed the solver's mutable state
/// for checkpoint/resume of budget-limited runs; see TabSnapshot.h for
/// the exactness guarantees.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_FRAMEWORK_TABULATION_H
#define SWIFT_FRAMEWORK_TABULATION_H

#include "framework/RelationalSolver.h"
#include "framework/TabSnapshot.h"
#include "govern/Governor.h"
#include "ir/CallGraph.h"
#include "ir/Program.h"
#include "obs/Trace.h"
#include "support/Hashing.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace swift {

inline constexpr uint64_t NoBuTrigger = UINT64_MAX;

template <typename AN> class TabulationSolver {
public:
  using Context = typename AN::Context;
  using State = typename AN::State;
  using Rel = typename AN::Rel;
  using Ignore = typename AN::Ignore;
  using Binding = typename AN::Binding;
  using SummaryView = typename AN::SummaryView;
  using BuSummary = typename RelationalSolver<AN>::Summary;
  using Snapshot = TabSnapshot<State>;

  struct Config {
    uint64_t K = NoBuTrigger; ///< Trigger threshold; NoBuTrigger = pure TD.
    uint64_t Theta = 1;       ///< Cases kept by the pruned bottom-up run.
    /// Collect and serve the observation manifest (errors at callee-
    /// internal points; see RelationalSolver::Summary). Disabling it is
    /// an ablation knob: value results stay coincident, but errors on
    /// paths that diverge inside served callees can be missed.
    bool ObservationManifest = true;
    /// Run triggered bottom-up analyses on worker threads while the
    /// top-down analysis continues (the parallelization sketched in the
    /// paper's Section 7). Summaries are installed when a worker
    /// finishes; calls arriving in between are simply analyzed top-down,
    /// which preserves coincidence — the install point is immaterial.
    bool AsyncBu = false;
    /// Worker threads inside each bottom-up solve (SCC-DAG wavefront);
    /// 1 = the sequential callee-first sweep. Summaries are identical for
    /// every value.
    unsigned BuThreads = 1;
    /// With AsyncBu: bound on concurrently in-flight bottom-up runs.
    /// Triggers whose frontier overlaps an in-flight run's frontier are
    /// skipped (they would duplicate its work); disjoint frontiers
    /// proceed in parallel up to this bound.
    unsigned MaxAsyncJobs = 2;
    /// Optional resource governor (see file comment). Must outlive the
    /// solver; its Budget should be the one passed to the constructor so
    /// pressure fractions describe the budget actually being consumed.
    ResourceGovernor *Gov = nullptr;
  };

  TabulationSolver(const Context &Ctx, const Program &Prog,
                   const CallGraph &CG, Config Cfg, Budget &B, Stats &S)
      : Ctx(Ctx), Prog(Prog), CG(CG), Cfg(Cfg), Bud(B), Stat(S) {
    size_t N = Prog.numProcs();
    Edges.resize(N);
    Summaries.resize(N);
    Dependents.resize(N);
    Incoming.resize(N);
    EverCalled.assign(N, false);
    Bu.resize(N);
  }

  /// Runs to fixpoint from the root procedure's Lambda fact. Returns false
  /// if the budget was exhausted (results are then partial). Partial
  /// facts are sound: tabulation only accumulates, so every path edge,
  /// summary, and observation present at exhaustion is present in the
  /// full fixpoint too.
  bool run() {
    obs::TraceSpan RunSpan("td", "td.run");
    ProcId Main = Prog.mainProc();
    EverCalled[Main] = true;
    propagate(Main, Prog.proc(Main).entry(), intern(AN::lambda()),
              intern(AN::lambda()));

    while (!Work.empty()) {
      if (!AsyncJobs.empty())
        pollAsync();
      if (!Bud.step()) {
        joinAsync();
        return false;
      }
      ++Stat.counter(CtrTdSteps);
      if (Cfg.Gov)
        governPoll();
      auto [P, E] = Work.back();
      Work.pop_back();
      process(P, E);

      // The worklist may drain while background bottom-up runs are still
      // in flight; their summaries can unlock nothing new (the top-down
      // fixpoint is already complete), but join for cleanliness.
      if (Work.empty() && !AsyncJobs.empty())
        joinAsync();
    }
    joinAsync();
    return true;
  }

  //===--------------------------------------------------------------------===
  // Checkpoint / resume
  //===--------------------------------------------------------------------===

  /// Captures the solver's mutable state. Callable once run() has
  /// returned (asynchronous jobs are then joined); bottom-up caches are
  /// intentionally dropped (see TabSnapshot.h).
  Snapshot snapshot() const {
    assert(AsyncJobs.empty() && "join asynchronous jobs before snapshot");
    Snapshot S;
    S.States = States;

    for (ProcId P = 0; P != Prog.numProcs(); ++P)
      for (const Edge &E : Edges[P].Set)
        S.Edges.push_back({P, E.Node, E.Entry, E.Cur});
    std::sort(S.Edges.begin(), S.Edges.end());

    S.Work.reserve(Work.size());
    for (const auto &[P, E] : Work)
      S.Work.push_back({P, E.Node, E.Entry, E.Cur});

    for (ProcId P = 0; P != Prog.numProcs(); ++P) {
      std::vector<typename Snapshot::SummaryRow> Rows;
      for (const auto &[Entry, Exits] : Summaries[P])
        Rows.push_back({P, Entry, Exits});
      std::sort(Rows.begin(), Rows.end(),
                [](const auto &A, const auto &B) {
                  return A.Entry < B.Entry;
                });
      for (auto &R : Rows)
        S.Summaries.push_back(std::move(R));
    }

    // Rows with the same (callee, entry) key keep their registration
    // order — recordSummary resumes waiting callers in that order.
    for (ProcId G = 0; G != Prog.numProcs(); ++G) {
      std::vector<uint32_t> Keys;
      for (const auto &[Entry, Callers] : Dependents[G]) {
        (void)Callers;
        Keys.push_back(Entry);
      }
      std::sort(Keys.begin(), Keys.end());
      for (uint32_t Entry : Keys)
        for (const Caller &C : Dependents[G].at(Entry))
          S.Dependents.push_back({G, Entry, C.P, C.Node, C.Entry, C.Frame});
    }

    for (ProcId P = 0; P != Prog.numProcs(); ++P) {
      std::vector<typename Snapshot::IncomingRow> Rows;
      for (const auto &[Entry, Count] : Incoming[P])
        Rows.push_back({P, Entry, Count});
      std::sort(Rows.begin(), Rows.end(),
                [](const auto &A, const auto &B) {
                  return A.Entry < B.Entry;
                });
      for (auto &R : Rows)
        S.Incoming.push_back(std::move(R));
    }

    S.EverCalled.reserve(EverCalled.size());
    for (bool B : EverCalled)
      S.EverCalled.push_back(B ? 1 : 0);

    for (const auto &[P, N, StId] : Observed)
      S.Observed.push_back({P, N, StId});
    return S;
  }

  /// Re-seeds a *fresh* solver (same program, same analysis) from \p S.
  /// Call before run(); run() then continues exactly where the
  /// checkpointed run stopped (its initial Lambda propagation dedups
  /// against the restored path-edge table).
  void restore(const Snapshot &S) {
    assert(States.empty() && Work.empty() && "restore into a fresh solver");
    States = S.States;
    StateIds.clear();
    for (uint32_t I = 0; I != States.size(); ++I)
      StateIds.emplace(States[I], I);
    for (const auto &E : S.Edges) {
      assert(E.Proc < Edges.size());
      Edges[E.Proc].Set.insert(Edge{E.Node, E.Entry, E.Cur});
    }
    for (const auto &W : S.Work)
      Work.push_back({W.Proc, Edge{W.Node, W.Entry, W.Cur}});
    for (const auto &Row : S.Summaries)
      Summaries[Row.Proc][Row.Entry] = Row.Exits;
    for (const auto &D : S.Dependents)
      Dependents[D.Callee][D.Entry].push_back(
          Caller{D.CallerProc, D.CallNode, D.CallerEntry, D.Frame});
    for (const auto &I : S.Incoming)
      Incoming[I.Proc][I.Entry] = I.Count;
    for (size_t P = 0; P != EverCalled.size() && P != S.EverCalled.size();
         ++P)
      EverCalled[P] = S.EverCalled[P] != 0;
    for (const auto &O : S.Observed)
      Observed.insert({O.Proc, O.Node, O.StateId});
  }

  //===--------------------------------------------------------------------===
  // Results
  //===--------------------------------------------------------------------===

  const State &state(uint32_t Id) const { return States[Id]; }

  /// Number of (entry, exit) top-down summary pairs of procedure \p P.
  /// The trivial Lambda -> Lambda pair every procedure has is excluded so
  /// counts line up with the paper's (which has no Lambda fact).
  uint64_t numTdSummaries(ProcId P) const {
    uint64_t N = 0;
    for (const auto &[E, Exits] : Summaries[P]) {
      (void)E;
      for (uint32_t X : Exits)
        if (!AN::isLambda(States[X]))
          ++N;
    }
    return N;
  }

  uint64_t totalTdSummaries() const {
    uint64_t N = 0;
    for (ProcId P = 0; P != Prog.numProcs(); ++P)
      N += numTdSummaries(P);
    return N;
  }

  /// Number of distinct non-Lambda incoming abstract states of \p P.
  uint64_t numIncoming(ProcId P) const { return Incoming[P].size(); }

  uint64_t totalBuRelations() const {
    uint64_t N = 0;
    for (const auto &B : Bu)
      if (B)
        N += B->Rels.size();
    return N;
  }

  bool buDefined(ProcId P) const { return Bu[P].has_value(); }
  const BuSummary &buSummary(ProcId P) const { return *Bu[P]; }

  /// Visits every computed fact (td map entry): (proc, node, entry state,
  /// current state).
  template <typename Fn> void forEachFact(Fn F) const {
    for (ProcId P = 0; P != Prog.numProcs(); ++P)
      for (const Edge &E : Edges[P].Set)
        F(P, E.Node, States[E.Entry], States[E.Cur]);
  }

  /// Visits every (entry, exit) summary pair of \p P.
  template <typename Fn> void forEachSummary(ProcId P, Fn F) const {
    for (const auto &[E, Exits] : Summaries[P])
      for (uint32_t X : Exits)
        F(States[E], States[X]);
  }

  /// Visits every observable state reported through a bottom-up summary's
  /// observation manifest: (caller proc, call node, state).
  template <typename Fn> void forEachObserved(Fn F) const {
    for (const auto &[P, N, S] : Observed)
      F(P, N, States[S]);
  }

private:
  struct Edge {
    NodeId Node;
    uint32_t Entry;
    uint32_t Cur;
    friend bool operator==(const Edge &A, const Edge &B) {
      return A.Node == B.Node && A.Entry == B.Entry && A.Cur == B.Cur;
    }
  };
  /// Full-width mixing of all three fields. Shift-xor packing (the
  /// previous scheme) aliased once state ids passed 2^20, collapsing the
  /// path-edge set to near-linear probing on large configs.
  struct EdgeHash {
    size_t operator()(const Edge &E) const noexcept {
      uint64_t H = hashCombine(hashCombine(mix64(E.Node), E.Entry), E.Cur);
      return static_cast<size_t>(H);
    }
  };
  struct EdgeSet {
    std::unordered_set<Edge, EdgeHash> Set;
  };
  struct Caller {
    ProcId P;
    NodeId Node;
    uint32_t Entry; ///< Caller's own entry-state id.
    uint32_t Frame; ///< Caller's state at the call site.
  };

  /// Per-state footprint for the governor's memory estimate; analyses
  /// with out-of-line storage provide AN::stateBytes, others fall back to
  /// the object size.
  static uint64_t approxStateBytes(const State &S) {
    if constexpr (requires { AN::stateBytes(S); })
      return AN::stateBytes(S);
    else
      return sizeof(State);
  }

  uint32_t intern(const State &S) {
    auto It = StateIds.find(S);
    if (It != StateIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(States.size());
    States.push_back(S);
    StateIds.emplace(States.back(), Id);
    if (Cfg.Gov)
      Cfg.Gov->charge(approxStateBytes(S) + 4 * sizeof(void *));
    return Id;
  }

  void propagate(ProcId P, NodeId N, uint32_t Entry, uint32_t Cur) {
    Edge E{N, Entry, Cur};
    if (!Edges[P].Set.insert(E).second)
      return;
    uint64_t NEdges = ++Stat.counter(CtrPathEdges);
    // Path-edge growth curve, sampled sparsely to keep the innermost
    // propagation free of per-edge trace events.
    if (obs::tracingEnabled() && (NEdges & 1023) == 0)
      obs::counterEvent("td.path_edges", "edges", NEdges);
    // Hash-set node plus the worklist entry, roughly.
    if (Cfg.Gov)
      Cfg.Gov->charge(3 * sizeof(Edge));
    Work.push_back({P, E});
  }

  const Binding &binding(ProcId P, NodeId N, const Command &Cmd) {
    uint64_t Key = (static_cast<uint64_t>(P) << 32) | N;
    auto It = Bindings.find(Key);
    if (It == Bindings.end())
      It = Bindings.emplace(Key, AN::makeBinding(Ctx, P, Cmd)).first;
    return It->second;
  }

  std::vector<State> combineDispatch(const Binding &B, const State &Frame,
                                     const State &Exit) {
    if (AN::isLambda(Frame)) {
      if (AN::isLambda(Exit))
        return {Exit};
      return AN::combineFresh(B, Exit);
    }
    assert(!AN::isLambda(Exit) &&
           "non-Lambda entries never reach a Lambda exit");
    return AN::combine(B, Frame, Exit);
  }

  void process(ProcId P, const Edge &E) {
    const Procedure &Proc = Prog.proc(P);

    if (E.Node == Proc.exit()) {
      recordSummary(P, E.Entry, E.Cur);
      return;
    }

    const CfgNode &Node = Proc.node(E.Node);
    if (Node.Cmd.Kind == CmdKind::Call) {
      processCall(P, E, Node);
      return;
    }

    for (const State &S2 :
         AN::transfer(Ctx, P, Node.Cmd, States[E.Cur])) {
      uint32_t Id = intern(S2);
      for (NodeId Succ : Node.Succs)
        propagate(P, Succ, E.Entry, Id);
    }
  }

  void processCall(ProcId P, const Edge &E, const CfgNode &Node) {
    ProcId G = Node.Cmd.Callee;
    const Binding &B = binding(P, E.Node, Node.Cmd);
    EverCalled[G] = true;

    // Call-to-return flow that bypasses the callee (empty for analyses
    // whose facts all travel through the callee, like the typestate one).
    for (const State &S : AN::callLocal(B, States[E.Cur])) {
      uint32_t Id = intern(S);
      for (NodeId Succ : Node.Succs)
        propagate(P, Succ, E.Entry, Id);
    }

    std::vector<State> Entries = AN::enter(B, States[E.Cur]);
    std::sort(Entries.begin(), Entries.end());
    Entries.erase(std::unique(Entries.begin(), Entries.end()),
                  Entries.end());
    for (const State &EntryState : Entries) {
      uint32_t EntryId = intern(EntryState);
      if (!AN::isLambda(EntryState))
        ++Incoming[G][EntryId];

      // Serve from the bottom-up summary when one covers this entry
      // state. The guard uses SigmaAll (every point's ignore set), which
      // also validates the observation manifest.
      if (Bu[G] &&
          !(Cfg.ObservationManifest ? Bu[G]->SigmaAll : Bu[G]->Sigma)
               .contains(Ctx, EntryState)) {
        uint64_t Served = ++Stat.counter(CtrBuServedCalls);
        obs::instant("td", "bu.serve", {"callee", G}, {"caller", P});
        if (obs::tracingEnabled() && (Served & 63) == 0)
          obs::counterEvent("bu.served_calls", "calls", Served);
        if (AN::isLambda(EntryState) && Bu[G]->LambdaExit)
          applyAfter(P, E, Node, B, States[E.Cur], EntryState);
        for (const Rel &R : Bu[G]->Rels)
          if (std::optional<State> Out = AN::applyRel(Ctx, R, EntryState))
            applyAfter(P, E, Node, B, States[E.Cur], *Out);
        // Errors at the callee's internal points, reported at this call.
        for (const Rel &R : Bu[G]->ObsRels)
          if (std::optional<State> Out = AN::applyRel(Ctx, R, EntryState))
            if (AN::stateObservable(Ctx, *Out))
              Observed.insert({P, E.Node, intern(*Out)});
        continue;
      }

      if (Bu[G]) {
        // A Sigma hit: the summary exists but its ignore set covers this
        // entry state, so the call takes the top-down route.
        ++Stat.counter(CtrBuFallbackCalls);
        obs::instant("td", "bu.fallback", {"callee", G}, {"caller", P});
      }

      // Top-down route: register for resumption and seed the callee.
      Dependents[G][EntryId].push_back(Caller{P, E.Node, E.Entry, E.Cur});
      propagate(G, Prog.proc(G).entry(), EntryId, EntryId);
      auto SumIt = Summaries[G].find(EntryId);
      if (SumIt != Summaries[G].end())
        for (uint32_t ExitId : SumIt->second)
          applyAfter(P, E, Node, B, States[E.Cur], States[ExitId]);

      // The SWIFT trigger (Algorithm 1, line 17).
      if (Cfg.K != NoBuTrigger && !Bu[G] && Incoming[G].size() > Cfg.K) {
        obs::instant("td", "swift.k_trip", {"proc", G},
                     {"incoming", Incoming[G].size()});
        tryRunBu(G);
      }
    }
  }

  void applyAfter(ProcId P, const Edge &E, const CfgNode &Node,
                  const Binding &B, const State &Frame, const State &Exit) {
    std::vector<State> Afters = combineDispatch(B, Frame, Exit);
    for (const State &After : Afters) {
      uint32_t Id = intern(After);
      for (NodeId Succ : Node.Succs)
        propagate(P, Succ, E.Entry, Id);
    }
  }

  void recordSummary(ProcId P, uint32_t Entry, uint32_t Exit) {
    std::vector<uint32_t> &Exits = Summaries[P][Entry];
    for (uint32_t X : Exits)
      if (X == Exit)
        return;
    Exits.push_back(Exit);
    ++Stat.counter(CtrTdSummaries);

    // Resume callers waiting on this (callee, entry) pair.
    auto DepIt = Dependents[P].find(Entry);
    if (DepIt == Dependents[P].end())
      return;
    // Copy: applyAfter may grow the dependents map.
    std::vector<Caller> Waiting = DepIt->second;
    for (const Caller &C : Waiting) {
      const CfgNode &Node = Prog.proc(C.P).node(C.Node);
      const Binding &B = binding(C.P, C.Node, Node.Cmd);
      Edge CallerEdge{C.Node, C.Entry, C.Frame};
      applyAfter(C.P, CallerEdge, Node, B, States[C.Frame],
                 States[Exit]);
    }
  }

  /// Governed degradation, checked between worklist pops. Shedding runs
  /// once: installed bottom-up caches are dropped (callers fall back to
  /// the always-sound top-down route) and their memory charge released.
  /// In-flight asynchronous jobs observe the governor's CancelToken —
  /// requested when Red latched — and abort without installing.
  void governPoll() {
    Pressure L = Cfg.Gov->poll();
    if (L == Pressure::Red && !GovShedDone) {
      GovShedDone = true;
      obs::instant("gov", "gov.shed");
      for (auto &B : Bu)
        if (B) {
          B.reset();
          ++Stat.counter(CtrGovShedSummaries);
        }
      Cfg.Gov->release(GovBuBytes);
      GovBuBytes = 0;
    }
  }

  /// Runs the pruned bottom-up analysis on every procedure reachable from
  /// \p G (Algorithm 1's run_bu), unless some reachable procedure has not
  /// been seen by the top-down analysis yet (the paper's postponement for
  /// its first problematic scenario in Section 4). With Config::AsyncBu
  /// the run happens on a worker thread and the top-down analysis keeps
  /// going; runs with disjoint frontiers may overlap, all drawing from
  /// the one shared budget.
  void tryRunBu(ProcId G) {
    // Degradation ladder: Red mints no bottom-up summaries at all;
    // Yellow stops minting *asynchronous* (speculative) ones and, below,
    // halves theta for synchronous runs.
    uint64_t EffTheta = Cfg.Theta;
    if (Cfg.Gov) {
      Pressure L = Cfg.Gov->level();
      if (pressureAtLeast(L, Pressure::Red) ||
          (Cfg.AsyncBu && pressureAtLeast(L, Pressure::Yellow))) {
        ++Stat.counter(CtrGovBuSuppressed);
        return;
      }
      if (pressureAtLeast(L, Pressure::Yellow) && Cfg.Theta != NoPruning &&
          Cfg.Theta > 1) {
        EffTheta = std::max<uint64_t>(1, Cfg.Theta / 2);
        ++Stat.counter(CtrGovThetaShrunk);
      }
    }

    if (Cfg.AsyncBu)
      pollAsync(); // Reap finished jobs first — frees slots.

    std::vector<ProcId> F = CG.reachableFrom(G);
    for (ProcId Q : F)
      if (!EverCalled[Q]) {
        ++Stat.counter(CtrBuPostponed);
        return;
      }

    if (Cfg.AsyncBu) {
      if (AsyncJobs.size() >= Cfg.MaxAsyncJobs) {
        ++Stat.counter(CtrBuBusySkips);
        return;
      }
      // A frontier overlapping an in-flight run would recompute (some of)
      // the same summaries; only disjoint frontiers proceed, so a trigger
      // on an unrelated subtree is no longer dropped just because another
      // run is in flight.
      for (const std::unique_ptr<AsyncJob> &Job : AsyncJobs)
        for (ProcId Q : F)
          if (Job->FSet.count(Q)) {
            ++Stat.counter(CtrBuBusySkips);
            return;
          }
    }

    // Materialize the frequency multisets M for the pruning ranking.
    auto Freq = std::make_shared<
        std::vector<std::unordered_map<State, uint64_t>>>();
    Freq->resize(Prog.numProcs());
    for (ProcId Q : F)
      for (const auto &[StateId, Count] : Incoming[Q])
        (*Freq)[Q].emplace(States[StateId], Count);

    if (!Cfg.AsyncBu) {
      obs::TraceSpan BuSpan("bu", "bu.sync", {"root", G},
                            {"frontier", F.size()});
      Timer BuTimer;
      // Local stats: the run's bu.steps are re-attributed to the
      // synchronous-phase budget counter before merging.
      Stats BuStats;
      RelationalSolver<AN> Solver(
          Ctx, Prog, CG, EffTheta,
          [Freq](ProcId Q) { return &(*Freq)[Q]; }, Bud, BuStats,
          DefaultMaxRelsPerPoint, Cfg.ObservationManifest, Cfg.BuThreads,
          Cfg.Gov);
      bool Ok = Solver.run(F);
      BuStats.counter(CtrBuTimeUs) +=
          static_cast<uint64_t>(BuTimer.seconds() * 1e6);
      Stat.counter(CtrSyncBuSteps) += BuStats.get("bu.steps");
      Stat.merge(BuStats);
      if (!Ok)
        return; // Budget exhausted or cancelled; leave uninstalled.
      for (ProcId Q : F)
        install(Q, Solver.summary(Q));
      ++Stat.counter(CtrBuTriggers);
      return;
    }

    // Asynchronous run: the worker owns a snapshot of the frequency data,
    // touches only immutable analysis state (context, program, call
    // graph), and charges the *shared* budget — an async hybrid run costs
    // at most the same cap as the synchronous baselines it is compared
    // against.
    auto Job = std::make_unique<AsyncJob>();
    Job->F = std::move(F);
    Job->FSet.insert(Job->F.begin(), Job->F.end());
    AsyncJob *J = Job.get();
    const Context *CtxPtr = &Ctx;
    const Program *ProgPtr = &Prog;
    const CallGraph *CGPtr = &CG;
    Budget *BudPtr = &Bud;
    uint64_t Theta = EffTheta;
    bool Manifest = Cfg.ObservationManifest;
    unsigned BuThreads = Cfg.BuThreads;
    ResourceGovernor *Gov = Cfg.Gov;
    uint64_t Root = G;
    J->Worker = std::thread([J, Freq, CtxPtr, ProgPtr, CGPtr, BudPtr,
                             Theta, Manifest, BuThreads, Gov, Root]() {
      obs::TraceSpan BuSpan("bu", "bu.async", {"root", Root},
                            {"frontier", J->F.size()});
      Timer BuTimer;
      RelationalSolver<AN> Solver(
          *CtxPtr, *ProgPtr, *CGPtr, Theta,
          [Freq](ProcId Q) { return &(*Freq)[Q]; }, *BudPtr,
          J->WorkerStats, DefaultMaxRelsPerPoint, Manifest, BuThreads,
          Gov);
      J->Ok = Solver.run(J->F);
      if (J->Ok)
        for (ProcId Q : J->F)
          J->Results.push_back(Solver.summary(Q));
      J->WorkerStats.counter("swift.bu_time_us") +=
          static_cast<uint64_t>(BuTimer.seconds() * 1e6);
      // Release ordering: publishes Ok/Results/WorkerStats to the
      // acquire load in pollAsync (see AsyncJob::Done below).
      J->Done.store(true, std::memory_order_release);
    });
    AsyncJobs.push_back(std::move(Job));
  }

  void install(ProcId Q, BuSummary Summary) {
    Bu[Q] = std::move(Summary);
    obs::instant("td", "bu.install", {"proc", Q},
                 {"rels", Bu[Q]->Rels.size()});
    Stat.counter(CtrBuSummaryRels) += Bu[Q]->Rels.size();
    Stat.counter(CtrBuSummarySigma) += Bu[Q]->SigmaAll.size();
    if (Cfg.Gov) {
      uint64_t Bytes =
          (Bu[Q]->Rels.size() + Bu[Q]->ObsRels.size() + 1) *
          (sizeof(Rel) + 16);
      Cfg.Gov->charge(Bytes);
      GovBuBytes += Bytes;
    }
  }

  /// Installs finished asynchronous runs' summaries and merges their
  /// stats; leaves still-running jobs in flight.
  void pollAsync() {
    for (size_t I = 0; I != AsyncJobs.size();) {
      if (AsyncJobs[I]->Done.load(std::memory_order_acquire))
        finishJob(I);
      else
        ++I;
    }
  }

  /// Joins job \p I (blocking if still running), installs its results,
  /// and drops it.
  void finishJob(size_t I) {
    AsyncJob &Job = *AsyncJobs[I];
    Job.Worker.join();
    if (Job.Ok) {
      for (size_t K = 0; K != Job.F.size(); ++K)
        install(Job.F[K], std::move(Job.Results[K]));
      ++Stat.counter(CtrBuTriggers);
      Stat.counter(CtrAsyncBuSteps) += Job.WorkerStats.get("bu.steps");
    } else {
      // Cancelled mid-flight (Red latch) or budget-exhausted: nothing was
      // installed, and the top-down analysis re-spends budget on the very
      // calls this run was meant to serve. Attributing the partial steps
      // to budget.async_bu_steps would double-count them against the
      // productive async phase; they are shed work, recorded under gov.*.
      Stat.counter(CtrGovCancelledSteps) += Job.WorkerStats.get("bu.steps");
      ++Stat.counter(CtrGovBuCancelled);
      obs::instant("gov", "gov.bu_cancelled",
                   {"steps", Job.WorkerStats.get("bu.steps")});
    }
    Stat.merge(Job.WorkerStats);
    AsyncJobs.erase(AsyncJobs.begin() + I);
  }

  /// Blocks on every in-flight asynchronous run, installing results.
  /// join() already blocks until the worker completes — no spinning.
  void joinAsync() {
    while (!AsyncJobs.empty())
      finishJob(0);
  }

  const Context &Ctx;
  const Program &Prog;
  const CallGraph &CG;
  Config Cfg;
  Budget &Bud;
  Stats &Stat;

  std::vector<State> States;
  std::unordered_map<State, uint32_t> StateIds;
  std::vector<EdgeSet> Edges;
  std::vector<std::pair<ProcId, Edge>> Work;
  std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>> Summaries;
  std::vector<std::unordered_map<uint32_t, std::vector<Caller>>> Dependents;
  std::vector<std::unordered_map<uint32_t, uint64_t>> Incoming;
  std::vector<bool> EverCalled;
  std::vector<std::optional<BuSummary>> Bu;
  std::unordered_map<uint64_t, Binding> Bindings;
  std::set<std::tuple<ProcId, NodeId, uint32_t>> Observed;
  bool GovShedDone = false;   ///< Red-pressure cache shed ran.
  uint64_t GovBuBytes = 0;    ///< Memory charged for installed summaries.

  struct AsyncJob {
    std::thread Worker;
    /// Done's release store in the worker pairs with the acquire load in
    /// pollAsync: observing Done == true guarantees Ok, Results, and
    /// WorkerStats are fully written. finishJob additionally join()s,
    /// which synchronizes-with thread exit — so the blocking path needs
    /// no ordering from Done at all.
    std::atomic<bool> Done{false};
    bool Ok = false;
    std::vector<ProcId> F;
    std::unordered_set<ProcId> FSet; ///< For frontier-disjointness tests.
    std::vector<BuSummary> Results;
    Stats WorkerStats;
  };
  /// In-flight asynchronous bottom-up runs; pairwise-disjoint frontiers,
  /// at most Config::MaxAsyncJobs.
  std::vector<std::unique_ptr<AsyncJob>> AsyncJobs;

  // Interned counter handles (resolved once; bumped per event).
  Stats::Counter CtrPathEdges = Stats::id("td.path_edges");
  Stats::Counter CtrTdSummaries = Stats::id("td.summaries");
  Stats::Counter CtrBuServedCalls = Stats::id("td.bu_served_calls");
  Stats::Counter CtrBuFallbackCalls = Stats::id("td.bu_fallback_calls");
  Stats::Counter CtrBuTriggers = Stats::id("swift.bu_triggers");
  Stats::Counter CtrBuPostponed = Stats::id("swift.bu_postponed");
  Stats::Counter CtrBuBusySkips = Stats::id("swift.bu_busy_skips");
  Stats::Counter CtrBuTimeUs = Stats::id("swift.bu_time_us");
  Stats::Counter CtrBuSummaryRels = Stats::id("swift.bu_summary_rels");
  Stats::Counter CtrBuSummarySigma = Stats::id("swift.bu_summary_sigma");
  // Budget phase attribution and governor events.
  Stats::Counter CtrTdSteps = Stats::id("budget.td_steps");
  Stats::Counter CtrSyncBuSteps = Stats::id("budget.sync_bu_steps");
  Stats::Counter CtrAsyncBuSteps = Stats::id("budget.async_bu_steps");
  Stats::Counter CtrGovBuSuppressed = Stats::id("gov.bu_suppressed");
  Stats::Counter CtrGovThetaShrunk = Stats::id("gov.theta_shrunk");
  Stats::Counter CtrGovShedSummaries = Stats::id("gov.shed_summaries");
  // Shed async work: cancelled runs' step spend is *not* part of the
  // budget.* phase partition (those counters cover work that produced
  // installed summaries or top-down facts).
  Stats::Counter CtrGovBuCancelled = Stats::id("gov.bu_cancelled");
  Stats::Counter CtrGovCancelledSteps = Stats::id("gov.cancelled_bu_steps");
};

} // namespace swift

#endif // SWIFT_FRAMEWORK_TABULATION_H
