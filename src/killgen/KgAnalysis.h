//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Framework traits for the kill/gen (taint) analysis. The bottom-up side
/// is synthesized from the fact-level transfer exactly as the paper's
/// Section 5.2 describes for kill/gen analyses: relations are either
/// single summary edges (d1, d2) over atomic facts, or the identity on all
/// facts minus an explicit exclusion set — and rtrans extends them by
/// composing with the command's kill/gen footprint (kgAffected /
/// kgTransfer). There is no case splitting, so the bottom-up analysis for
/// this family is cheap, which is the paper's point about the class.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_KILLGEN_KGANALYSIS_H
#define SWIFT_KILLGEN_KGANALYSIS_H

#include "killgen/KgDomain.h"

#include <algorithm>
#include <optional>

namespace swift {

/// A bottom-up relation of the kill/gen family.
struct KgRel {
  enum class Kind : uint8_t {
    IdentityExcept, ///< {(d, d) | d not in Excl, d != Lambda}
    Edge,           ///< {(From, To)}; From may be Lambda.
  };

  Kind K = Kind::IdentityExcept;
  std::vector<KgFact> Excl; ///< Sorted, unique (IdentityExcept).
  KgFact From, To;          ///< Edge.

  static KgRel identity() { return KgRel(); }
  static KgRel identityExcept(std::vector<KgFact> X) {
    KgRel R;
    std::sort(X.begin(), X.end());
    X.erase(std::unique(X.begin(), X.end()), X.end());
    R.Excl = std::move(X);
    return R;
  }
  static KgRel edge(KgFact From, KgFact To) {
    KgRel R;
    R.K = Kind::Edge;
    R.From = From;
    R.To = To;
    return R;
  }

  bool excludes(const KgFact &F) const {
    return std::binary_search(Excl.begin(), Excl.end(), F);
  }

  friend bool operator==(const KgRel &A, const KgRel &B) {
    return A.K == B.K && A.Excl == B.Excl && A.From == B.From &&
           A.To == B.To;
  }
  friend bool operator<(const KgRel &A, const KgRel &B) {
    if (A.K != B.K)
      return A.K < B.K;
    if (A.K == Kind::IdentityExcept)
      return A.Excl < B.Excl;
    if (A.From != B.From)
      return A.From < B.From;
    return A.To < B.To;
  }
};

/// Ignored inputs: an explicit fact set (domains are singletons).
class KgIgnore {
public:
  bool containsLambda() const { return Lambda || All; }
  bool containsFact(const KgFact &F) const {
    if (All)
      return true;
    if (F.isLambda())
      return Lambda;
    return Facts.count(F) != 0;
  }
  void makeAll() {
    All = true;
    Lambda = true;
    Facts.clear();
  }
  bool contains(const KgContext &Ctx, const KgFact &F) const {
    (void)Ctx;
    return containsFact(F);
  }
  bool addLambda() {
    bool Grew = !Lambda;
    Lambda = true;
    return Grew;
  }
  bool add(const KgFact &F) {
    if (F.isLambda())
      return addLambda();
    return Facts.insert(F).second;
  }
  bool unionWith(const KgIgnore &Other) {
    if (All)
      return false;
    if (Other.All) {
      makeAll();
      return true;
    }
    bool Grew = false;
    if (Other.Lambda)
      Grew |= addLambda();
    for (const KgFact &F : Other.Facts)
      Grew |= Facts.insert(F).second;
    return Grew;
  }
  friend bool operator==(const KgIgnore &A, const KgIgnore &B) {
    return A.All == B.All && A.Lambda == B.Lambda && A.Facts == B.Facts;
  }
  friend bool operator!=(const KgIgnore &A, const KgIgnore &B) {
    return !(A == B);
  }
  const std::set<KgFact> &facts() const { return Facts; }
  size_t size() const { return Facts.size() + (Lambda ? 1 : 0); }

private:
  bool All = false;
  bool Lambda = false;
  std::set<KgFact> Facts;
};

struct KgAnalysis {
  using Context = KgContext;
  using State = KgFact;
  using Rel = KgRel;
  using Ignore = KgIgnore;
  using Binding = KgBinding;

  // -- Top-down analysis --
  static State lambda() { return KgFact::lambda(); }
  static bool isLambda(const State &S) { return S.isLambda(); }
  static std::vector<State> transfer(const Context &Ctx, ProcId P,
                                     const Command &Cmd, const State &S) {
    return kgTransfer(Ctx, P, Cmd, S);
  }
  static Binding makeBinding(const Context &Ctx, ProcId P,
                             const Command &Cmd) {
    return KgBinding(Ctx, P, Cmd);
  }
  static std::vector<State> enter(const Binding &B, const State &S) {
    return kgEnter(B, S);
  }
  static std::vector<State> callLocal(const Binding &B, const State &S) {
    return kgCallLocal(B, S);
  }
  static std::vector<State> combine(const Binding &B, const State &Frame,
                                    const State &Exit) {
    (void)Frame; // Atomic may-facts need no frame merge.
    return kgCombine(B, Exit);
  }
  static std::vector<State> combineFresh(const Binding &B,
                                         const State &Exit) {
    return kgCombine(B, Exit);
  }

  // -- Bottom-up analysis (synthesized from the fact-level transfer) --
  struct SummaryView {
    const std::vector<Rel> *Rels = nullptr;
    const Ignore *Sigma = nullptr;
  };

  static Rel identityRel(const Context &Ctx) {
    (void)Ctx;
    return KgRel::identity();
  }

  static std::vector<Rel> rtrans(const Context &Ctx, ProcId P,
                                 const Command &Cmd, const Rel &R) {
    std::vector<Rel> Out;
    if (R.K == KgRel::Kind::Edge) {
      if (R.To.isLambda()) {
        // Lambda-to-Lambda edges are implicit; edges never target Lambda.
        Out.push_back(R);
        return Out;
      }
      for (const KgFact &Next : kgTransfer(Ctx, P, Cmd, R.To))
        Out.push_back(KgRel::edge(R.From, Next));
      return Out;
    }
    // Identity-except: facts in the command's footprint peel off into
    // explicit edges; the rest stay in the identity.
    std::vector<KgFact> Affected = kgAffected(Ctx, Cmd);
    std::vector<KgFact> NewExcl = R.Excl;
    for (const KgFact &D : Affected) {
      if (R.excludes(D))
        continue;
      NewExcl.push_back(D);
      for (const KgFact &Next : kgTransfer(Ctx, P, Cmd, D))
        Out.push_back(KgRel::edge(D, Next));
    }
    Out.push_back(KgRel::identityExcept(std::move(NewExcl)));
    return Out;
  }

  static std::vector<Rel> lambdaEmits(const Context &Ctx,
                                      const Command &Cmd) {
    std::vector<Rel> Out;
    if (Cmd.Kind == CmdKind::Alloc && Ctx.isSource(Cmd.Class))
      Out.push_back(KgRel::edge(KgFact::lambda(), KgFact::var(Cmd.Dst)));
    return Out;
  }

  /// Composes one output fact of a caller relation through the call.
  static void composeFactThroughCall(const Context &Ctx, const Binding &B,
                                     const KgFact &From, const KgFact &Mid,
                                     const SummaryView &Callee,
                                     std::vector<Rel> &Out,
                                     Ignore &SigmaOut) {
    (void)Ctx;
    for (const KgFact &Local : kgCallLocal(B, Mid))
      Out.push_back(KgRel::edge(From, Local));
    for (const KgFact &E : kgEnter(B, Mid)) {
      if (Callee.Sigma->contains(Ctx, E)) {
        SigmaOut.add(From);
        continue;
      }
      for (const Rel &CR : *Callee.Rels) {
        if (CR.K == KgRel::Kind::Edge) {
          if (CR.From != E)
            continue;
          for (const KgFact &C : kgCombine(B, CR.To))
            Out.push_back(KgRel::edge(From, C));
        } else if (!E.isLambda() && !CR.excludes(E)) {
          for (const KgFact &C : kgCombine(B, E))
            Out.push_back(KgRel::edge(From, C));
        }
      }
    }
  }

  static void composeCall(const Context &Ctx, const Binding &B, const Rel &R,
                          const SummaryView &Callee, std::vector<Rel> &Out,
                          Ignore &SigmaOut) {
    if (R.K == KgRel::Kind::Edge) {
      composeFactThroughCall(Ctx, B, R.From, R.To, Callee, Out, SigmaOut);
      return;
    }
    // Identity-except through a call: facts with a non-trivial call
    // transfer peel off; the rest stay identical. The footprint is the
    // result variable, the actuals, and every field fact.
    std::vector<KgFact> Footprint;
    if (B.resultVar().isValid())
      Footprint.push_back(KgFact::var(B.resultVar()));
    for (const auto &[Actual, Formals] : B.bindings()) {
      (void)Formals;
      Footprint.push_back(KgFact::var(Actual));
    }
    for (Symbol F : Ctx.allFields())
      Footprint.push_back(KgFact::field(F));
    std::sort(Footprint.begin(), Footprint.end());
    Footprint.erase(std::unique(Footprint.begin(), Footprint.end()),
                    Footprint.end());

    std::vector<KgFact> NewExcl = R.Excl;
    for (const KgFact &D : Footprint) {
      if (R.excludes(D))
        continue;
      NewExcl.push_back(D);
      composeFactThroughCall(Ctx, B, D, D, Callee, Out, SigmaOut);
    }
    Out.push_back(KgRel::identityExcept(std::move(NewExcl)));
  }

  static void composeCallLambda(const Context &Ctx, const Binding &B,
                                const SummaryView &Callee,
                                std::vector<Rel> &Out, Ignore &SigmaOut) {
    if (Callee.Sigma->containsLambda()) {
      SigmaOut.addLambda();
      return;
    }
    for (const Rel &CR : *Callee.Rels) {
      if (CR.K != KgRel::Kind::Edge || !CR.From.isLambda())
        continue;
      for (const KgFact &C : kgCombine(B, CR.To))
        Out.push_back(KgRel::edge(KgFact::lambda(), C));
    }
    (void)Ctx;
  }

  static std::optional<State> applyRel(const Context &Ctx, const Rel &R,
                                       const State &S) {
    (void)Ctx;
    if (R.K == KgRel::Kind::Edge)
      return R.From == S ? std::optional<State>(R.To) : std::nullopt;
    if (S.isLambda() || R.excludes(S))
      return std::nullopt;
    return S;
  }

  // -- Observation support --
  static bool relMayObserve(const Context &Ctx, const Rel &R) {
    (void)Ctx;
    return R.K == KgRel::Kind::Edge && R.To.K == KgFact::Kind::Leak;
  }
  static bool stateObservable(const Context &Ctx, const State &S) {
    (void)Ctx;
    return S.K == KgFact::Kind::Leak;
  }

  // -- Pruning support --
  static bool relIsPrunable(const Rel &R) {
    // Only edges from real facts are pruned; the identity is the
    // dominating general case and Lambda edges are bounded by sources.
    return R.K == KgRel::Kind::Edge && !R.From.isLambda();
  }
  static size_t relGenerality(const Rel &R) {
    return R.K == KgRel::Kind::IdentityExcept ? 0 : 1;
  }
  static bool domContains(const Context &Ctx, const Rel &R,
                          const State &S) {
    (void)Ctx;
    if (R.K == KgRel::Kind::Edge)
      return R.From == S;
    return !S.isLambda() && !R.excludes(S);
  }
  static void addDomToIgnore(const Rel &R, Ignore &Sigma) {
    assert(R.K == KgRel::Kind::Edge && "only edges are pruned");
    Sigma.add(R.From);
  }
  static bool ignoreCoversDom(const Ignore &Sigma, const Rel &R) {
    if (R.K == KgRel::Kind::Edge)
      return Sigma.containsFact(R.From);
    return false;
  }
  static void ignoreAll(Ignore &Sigma) { Sigma.makeAll(); }
};

} // namespace swift

#endif // SWIFT_KILLGEN_KGANALYSIS_H
