//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "killgen/KgRunner.h"

#include "framework/RelationalSolver.h"
#include "framework/Tabulation.h"

using namespace swift;

namespace {

KgRunResult runTabulating(const KgContext &Ctx, uint64_t K, uint64_t Theta,
                          KgRunLimits Limits, unsigned Threads = 1) {
  Budget Bud(Limits.MaxSteps, Limits.MaxSeconds);
  Stats Stat;
  TabulationSolver<KgAnalysis>::Config Cfg;
  Cfg.K = K;
  Cfg.Theta = Theta;
  Cfg.BuThreads = Threads;
  TabulationSolver<KgAnalysis> Solver(Ctx, Ctx.program(), Ctx.callGraph(),
                                      Cfg, Bud, Stat);
  bool Finished = Solver.run();

  KgRunResult R;
  R.Timeout = !Finished;
  R.Seconds = Bud.seconds();
  R.Steps = Bud.steps();
  R.Stat = std::move(Stat);
  R.TdSummaries = Solver.totalTdSummaries();
  R.BuRelations = Solver.totalBuRelations();
  Solver.forEachFact([&](ProcId P, NodeId N, const KgFact &Entry,
                         const KgFact &Cur) {
    (void)P;
    (void)N;
    (void)Entry;
    if (Cur.K == KgFact::Kind::Leak)
      R.Leaks.insert({Cur.Proc, Cur.Node});
  });
  Solver.forEachObserved([&](ProcId P, NodeId N, const KgFact &S) {
    (void)P;
    (void)N;
    if (S.K == KgFact::Kind::Leak)
      R.Leaks.insert({S.Proc, S.Node});
  });
  return R;
}

} // namespace

KgRunResult swift::runTaintTd(const KgContext &Ctx, KgRunLimits Limits) {
  return runTabulating(Ctx, NoBuTrigger, 1, Limits);
}

KgRunResult swift::runTaintSwift(const KgContext &Ctx, uint64_t K,
                                 uint64_t Theta, KgRunLimits Limits,
                                 unsigned Threads) {
  return runTabulating(Ctx, K, Theta, Limits, Threads);
}

KgRunResult swift::runTaintBu(const KgContext &Ctx, KgRunLimits Limits,
                              unsigned Threads) {
  const Program &Prog = Ctx.program();
  Budget Bud(Limits.MaxSteps, Limits.MaxSeconds);
  Stats Stat;
  RelationalSolver<KgAnalysis> Solver(
      Ctx, Prog, Ctx.callGraph(), NoPruning,
      [](ProcId) -> const std::unordered_map<KgFact, uint64_t> * {
        return nullptr;
      },
      Bud, Stat, DefaultMaxRelsPerPoint, /*CollectObservations=*/true,
      Threads);

  std::vector<ProcId> All = Ctx.callGraph().reachableFrom(Prog.mainProc());
  bool Finished = Solver.run(All);

  KgRunResult R;
  R.Timeout = !Finished;
  R.Seconds = Bud.seconds();
  R.Steps = Bud.steps();
  R.Stat = std::move(Stat);
  R.BuRelations = Solver.totalRelations();
  if (!Finished)
    return R;

  const auto &Main = Solver.summary(Prog.mainProc());
  auto Report = [&R](const KgFact &F) {
    if (F.K == KgFact::Kind::Leak)
      R.Leaks.insert({F.Proc, F.Node});
  };
  for (const KgRel &Rel : Main.Rels)
    if (std::optional<KgFact> Out =
            KgAnalysis::applyRel(Ctx, Rel, KgFact::lambda()))
      Report(*Out);
  for (const KgRel &Rel : Main.ObsRels)
    if (std::optional<KgFact> Out =
            KgAnalysis::applyRel(Ctx, Rel, KgFact::lambda()))
      Report(*Out);
  return R;
}
