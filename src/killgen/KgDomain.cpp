//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "killgen/KgDomain.h"

#include <algorithm>

using namespace swift;

std::string KgFact::str(const Program &Prog) const {
  const SymbolTable &Syms = Prog.symbols();
  switch (K) {
  case Kind::Lambda:
    return "(lambda)";
  case Kind::Var:
    return "taint(" + Syms.text(Sym) + ")";
  case Kind::Field:
    return "taint(*." + Syms.text(Sym) + ")";
  case Kind::Leak:
    return "leak@" + Syms.text(Prog.proc(Proc).name()) + ":" +
           std::to_string(Node);
  }
  return "<?>";
}

KgContext::KgContext(const Program &Prog, std::set<Symbol> SourceClasses,
                     std::set<Symbol> SinkMethods)
    : Prog(Prog), CG(std::make_unique<CallGraph>(Prog)),
      Sources(std::move(SourceClasses)), Sinks(std::move(SinkMethods)) {
  std::set<Symbol> FieldSet;
  for (ProcId P = 0; P != Prog.numProcs(); ++P)
    for (const CfgNode &Node : Prog.proc(P).nodes())
      if (Node.Cmd.Kind == CmdKind::Load || Node.Cmd.Kind == CmdKind::Store)
        FieldSet.insert(Node.Cmd.Field);
  Fields.assign(FieldSet.begin(), FieldSet.end());
}

KgBinding::KgBinding(const KgContext &Ctx, ProcId CallerProc,
                     const Command &Call)
    : Callee(Call.Callee), CalleeProc(&Ctx.program().proc(Call.Callee)),
      Result(Call.Dst), Ret(Ctx.program().retVar()) {
  (void)CallerProc;
  assert(Call.Kind == CmdKind::Call);
  for (size_t I = 0; I != Call.Args.size(); ++I) {
    Symbol Actual = Call.Args[I];
    Symbol Formal = CalleeProc->params()[I];
    bool Found = false;
    for (auto &[A, Fs] : ActualToFormals)
      if (A == Actual) {
        Fs.push_back(Formal);
        Found = true;
        break;
      }
    if (!Found)
      ActualToFormals.push_back({Actual, {Formal}});
  }
}

const std::vector<Symbol> &KgBinding::formalsOf(Symbol V) const {
  static const std::vector<Symbol> Empty;
  for (const auto &[A, Fs] : ActualToFormals)
    if (A == V)
      return Fs;
  return Empty;
}

Symbol KgBinding::actualOf(Symbol F) const {
  for (const auto &[A, Fs] : ActualToFormals)
    for (Symbol G : Fs)
      if (G == F)
        return A;
  return Symbol();
}

std::vector<KgFact> swift::kgTransfer(const KgContext &Ctx, ProcId Proc,
                                      const Command &Cmd, const KgFact &F) {
  assert(Cmd.Kind != CmdKind::Call && "calls are handled by the solver");

  if (F.isLambda()) {
    if (Cmd.Kind == CmdKind::Alloc && Ctx.isSource(Cmd.Class))
      return {KgFact::lambda(), KgFact::var(Cmd.Dst)};
    return {KgFact::lambda()};
  }

  switch (F.K) {
  case KgFact::Kind::Lambda:
    break;

  case KgFact::Kind::Var: {
    Symbol V = F.Sym;
    switch (Cmd.Kind) {
    case CmdKind::Nop:
      return {F};
    case CmdKind::Alloc:
    case CmdKind::AssignNull:
      return Cmd.Dst == V ? std::vector<KgFact>{} : std::vector<KgFact>{F};
    case CmdKind::Copy:
      if (Cmd.Src == V) {
        if (Cmd.Dst == V)
          return {F};
        return {F, KgFact::var(Cmd.Dst)};
      }
      return Cmd.Dst == V ? std::vector<KgFact>{} : std::vector<KgFact>{F};
    case CmdKind::Load:
      // The loaded value's taint comes from the Field fact; v's old taint
      // is overwritten.
      return Cmd.Dst == V ? std::vector<KgFact>{} : std::vector<KgFact>{F};
    case CmdKind::Store:
      if (Cmd.Src == V)
        return {F, KgFact::field(Cmd.Field)};
      return {F};
    case CmdKind::TsCall:
      if (Cmd.Src == V && Ctx.isSink(Cmd.Method))
        return {F, KgFact::leak(Proc, Cmd.Self)};
      return {F};
    case CmdKind::Call:
      break;
    }
    break;
  }

  case KgFact::Kind::Field:
    if (Cmd.Kind == CmdKind::Load && Cmd.Field == F.Sym)
      return {F, KgFact::var(Cmd.Dst)};
    return {F};

  case KgFact::Kind::Leak:
    return {F}; // Absorbing observation.
  }
  assert(false && "unhandled fact kind");
  return {F};
}

std::vector<KgFact> swift::kgAffected(const KgContext &Ctx,
                                      const Command &Cmd) {
  switch (Cmd.Kind) {
  case CmdKind::Nop:
    return {};
  case CmdKind::Alloc:
  case CmdKind::AssignNull:
    return {KgFact::var(Cmd.Dst)};
  case CmdKind::Copy:
    if (Cmd.Dst == Cmd.Src)
      return {};
    return {KgFact::var(Cmd.Dst), KgFact::var(Cmd.Src)};
  case CmdKind::Load:
    return {KgFact::var(Cmd.Dst), KgFact::field(Cmd.Field)};
  case CmdKind::Store:
    return {KgFact::var(Cmd.Src)};
  case CmdKind::TsCall:
    if (Ctx.isSink(Cmd.Method))
      return {KgFact::var(Cmd.Src)};
    return {};
  case CmdKind::Call:
    break;
  }
  assert(false && "calls have no kill/gen footprint");
  return {};
}

std::vector<KgFact> swift::kgEnter(const KgBinding &B, const KgFact &F) {
  switch (F.K) {
  case KgFact::Kind::Lambda:
    return {F};
  case KgFact::Kind::Var: {
    std::vector<KgFact> Out;
    for (Symbol Formal : B.formalsOf(F.Sym))
      Out.push_back(KgFact::var(Formal));
    return Out;
  }
  case KgFact::Kind::Field:
    return {F}; // Heap facts are global.
  case KgFact::Kind::Leak:
    return {}; // Observations stay in the frame (callLocal).
  }
  return {};
}

std::vector<KgFact> swift::kgCallLocal(const KgBinding &B, const KgFact &F) {
  switch (F.K) {
  case KgFact::Kind::Lambda:
    return {}; // Lambda travels through the callee.
  case KgFact::Kind::Var:
    if (F.Sym == B.resultVar() && B.resultVar().isValid())
      return {}; // The result variable is rebound by the call.
    return {F};
  case KgFact::Kind::Field:
    return {}; // Heap facts travel through the callee.
  case KgFact::Kind::Leak:
    return {F};
  }
  return {};
}

std::vector<KgFact> swift::kgCombine(const KgBinding &B,
                                     const KgFact &Exit) {
  switch (Exit.K) {
  case KgFact::Kind::Lambda:
    return {Exit};
  case KgFact::Kind::Var: {
    if (Exit.Sym == B.retVar()) {
      if (B.resultVar().isValid())
        return {KgFact::var(B.resultVar())};
      return {};
    }
    Symbol Actual = B.actualOf(Exit.Sym);
    // A tainted formal means the caller's actual holds a tainted value
    // only if the callee did not rebind the formal.
    if (Actual.isValid() && Actual != B.resultVar() &&
        B.isStableFormal(Exit.Sym))
      return {KgFact::var(Actual)};
    return {};
  }
  case KgFact::Kind::Field:
    return {Exit};
  case KgFact::Kind::Leak:
    return {Exit}; // Leak observations propagate to callers.
  }
  return {};
}
