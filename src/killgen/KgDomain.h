//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kill/gen analysis family of the paper's Section 5.2, instantiated
/// as a taint-reachability analysis: objects allocated at designated
/// "source" classes are tainted; taint propagates through copies, loads,
/// stores (field-insensitively through a global per-field fact), and
/// calls; invoking a designated "sink" method on a tainted receiver is a
/// leak, reported as an observation.
///
/// Facts are atomic (IFDS-style): Lambda (the zero fact), Var(v) "v may
/// hold a tainted value", Field(f) "some object's field f may be tainted",
/// and Leak(p, n) "a sink was reached at node n of procedure p" (absorbing,
/// like the typestate error state). Transfer functions are kill/gen per
/// fact, which is exactly the class for which the paper says a bottom-up
/// analysis can be synthesized automatically from the top-down one — the
/// relation domain here (identity-except sets and single summary edges) is
/// derived generically from the fact-level transfer.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_KILLGEN_KGDOMAIN_H
#define SWIFT_KILLGEN_KGDOMAIN_H

#include "ir/CallGraph.h"
#include "ir/Program.h"

#include <cassert>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace swift {

/// One atomic dataflow fact.
struct KgFact {
  enum class Kind : uint8_t { Lambda, Var, Field, Leak };

  Kind K = Kind::Lambda;
  Symbol Sym;            ///< Var / Field.
  ProcId Proc = InvalidProc; ///< Leak.
  NodeId Node = InvalidNode; ///< Leak.

  static KgFact lambda() { return KgFact(); }
  static KgFact var(Symbol V) {
    KgFact F;
    F.K = Kind::Var;
    F.Sym = V;
    return F;
  }
  static KgFact field(Symbol Fld) {
    KgFact F;
    F.K = Kind::Field;
    F.Sym = Fld;
    return F;
  }
  static KgFact leak(ProcId P, NodeId N) {
    KgFact F;
    F.K = Kind::Leak;
    F.Proc = P;
    F.Node = N;
    return F;
  }

  bool isLambda() const { return K == Kind::Lambda; }

  friend bool operator==(const KgFact &A, const KgFact &B) {
    return A.K == B.K && A.Sym == B.Sym && A.Proc == B.Proc &&
           A.Node == B.Node;
  }
  friend bool operator!=(const KgFact &A, const KgFact &B) {
    return !(A == B);
  }
  friend bool operator<(const KgFact &A, const KgFact &B) {
    if (A.K != B.K)
      return A.K < B.K;
    if (A.Sym != B.Sym)
      return A.Sym < B.Sym;
    if (A.Proc != B.Proc)
      return A.Proc < B.Proc;
    return A.Node < B.Node;
  }

  std::string str(const Program &Prog) const;
};

/// Environment of one taint-analysis run.
class KgContext {
public:
  KgContext(const Program &Prog, std::set<Symbol> SourceClasses,
            std::set<Symbol> SinkMethods);

  const Program &program() const { return Prog; }
  const CallGraph &callGraph() const { return *CG; }
  bool isSource(Symbol Class) const { return Sources.count(Class) != 0; }
  bool isSink(Symbol Method) const { return Sinks.count(Method) != 0; }
  /// Every field symbol occurring in the program (for symbolic call
  /// composition over the identity relation).
  const std::vector<Symbol> &allFields() const { return Fields; }

private:
  const Program &Prog;
  std::unique_ptr<CallGraph> CG;
  std::set<Symbol> Sources;
  std::set<Symbol> Sinks;
  std::vector<Symbol> Fields;
};

/// Per-call-site binding info (lightweight analogue of CallBinding).
class KgBinding {
public:
  KgBinding(const KgContext &Ctx, ProcId CallerProc, const Command &Call);

  ProcId callee() const { return Callee; }
  Symbol resultVar() const { return Result; }
  Symbol retVar() const { return Ret; }
  const std::vector<std::pair<Symbol, std::vector<Symbol>>> &
  bindings() const {
    return ActualToFormals;
  }
  const std::vector<Symbol> &formalsOf(Symbol V) const;
  Symbol actualOf(Symbol F) const;
  bool isStableFormal(Symbol F) const {
    return CalleeProc->isStableParam(F);
  }

private:
  ProcId Callee;
  const Procedure *CalleeProc;
  Symbol Result;
  Symbol Ret;
  std::vector<std::pair<Symbol, std::vector<Symbol>>> ActualToFormals;
};

//===----------------------------------------------------------------------===//
// Fact-level (top-down) transfer and call mappings
//===----------------------------------------------------------------------===//

/// trans(c)(fact). May return zero outputs (the fact is killed). Leak
/// facts are stamped with the command's own CFG node (Cmd.Self).
std::vector<KgFact> kgTransfer(const KgContext &Ctx, ProcId Proc,
                               const Command &Cmd, const KgFact &F);

/// The facts whose transfer under \p Cmd is not {self}: the kill/gen
/// footprint. Facts outside this set pass through unchanged.
std::vector<KgFact> kgAffected(const KgContext &Ctx, const Command &Cmd);

std::vector<KgFact> kgEnter(const KgBinding &B, const KgFact &F);
std::vector<KgFact> kgCallLocal(const KgBinding &B, const KgFact &F);
/// Return mapping of a callee exit fact (the caller frame is irrelevant
/// for atomic may-facts).
std::vector<KgFact> kgCombine(const KgBinding &B, const KgFact &Exit);

} // namespace swift

namespace std {
template <> struct hash<swift::KgFact> {
  size_t operator()(const swift::KgFact &F) const noexcept {
    uint64_t X = (static_cast<uint64_t>(F.K) << 56) ^
                 (static_cast<uint64_t>(F.Sym.id()) << 32) ^
                 (static_cast<uint64_t>(F.Proc) << 16) ^ F.Node;
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdULL;
    X ^= X >> 33;
    return static_cast<size_t>(X);
  }
};
} // namespace std

#endif // SWIFT_KILLGEN_KGDOMAIN_H
