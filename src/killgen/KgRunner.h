//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entry points for the taint (kill/gen family) analysis: TD, BU, and
/// SWIFT, mirroring typestate/Runner.h. A "leak" is a sink method invoked
/// on a possibly-tainted receiver.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_KILLGEN_KGRUNNER_H
#define SWIFT_KILLGEN_KGRUNNER_H

#include "killgen/KgAnalysis.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <set>
#include <utility>

namespace swift {

struct KgRunLimits {
  uint64_t MaxSteps = UINT64_MAX;
  double MaxSeconds = 1e18;
};

struct KgRunResult {
  bool Timeout = false;
  double Seconds = 0;
  uint64_t Steps = 0;
  uint64_t TdSummaries = 0;
  uint64_t BuRelations = 0;
  /// Sink call sites reachable by tainted receivers: (proc, node).
  std::set<std::pair<ProcId, NodeId>> Leaks;
  Stats Stat;
};

KgRunResult runTaintTd(const KgContext &Ctx, KgRunLimits Limits = {});
/// \p Threads is the worker count of each triggered bottom-up solve
/// (SCC-DAG wavefront); results are identical for every value.
KgRunResult runTaintSwift(const KgContext &Ctx, uint64_t K, uint64_t Theta,
                          KgRunLimits Limits = {}, unsigned Threads = 1);
KgRunResult runTaintBu(const KgContext &Ctx, KgRunLimits Limits = {},
                       unsigned Threads = 1);

} // namespace swift

#endif // SWIFT_KILLGEN_KGRUNNER_H
