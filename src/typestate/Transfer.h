//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Top-down transfer functions trans(c) : S -> 2^S of the full typestate
/// analysis (the 4-tuple extension of the paper's Figure 2):
///
///   v = new C@h  old tuple: drop v-based paths from A, add v to N (v now
///                points to a different, fresh object); Lambda additionally
///                spawns (h, init, {v}, {}) when C is the tracked class.
///   v = w        drop v-based paths, then v joins A if w in A, N if w in N.
///   v = null     drop v-based paths, add v to N.
///   v = w.f      drop v-based paths, then v joins A/N as w.f is in A/N.
///   v.f = w      drop every path using field f from both sets (any alias
///                of v may have been redirected), then v.f joins A if w in
///                A, N if w in N.
///   v.m()        strong update [m](t) if v in A; no-op if v in N;
///                otherwise error if mayalias(v, h) else no-op (paper's
///                B1-B4 case analysis). The error state is absorbing.
///
/// All transfer functions preserve disjointness of A and N and never
/// change a tuple's allocation site.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_TYPESTATE_TRANSFER_H
#define SWIFT_TYPESTATE_TRANSFER_H

#include "typestate/AbstractState.h"
#include "typestate/Context.h"

#include <atomic>
#include <vector>

namespace swift {

namespace test {
/// Test-only fault injection for the differential-testing oracle
/// (src/difftest): when set, tsTransfer silently skips the weak-update
/// error transition of TsCall (the paper's B3 case), making the top-down
/// transfer unsound while the bottom-up relation construction stays
/// correct. swift-difftest --inject-bug flips it to prove the oracle and
/// the reducer actually catch divergences. Never set in production code.
extern std::atomic<bool> InjectTsCallWeakUpdateBug;
} // namespace test

/// Applies method \p M of the tracked class in state \p T; error is
/// absorbing, foreign (undeclared) methods are the identity.
inline TState tsApplyMethod(const TypestateSpec &Spec, Symbol M, TState T) {
  if (T == Spec.errorState())
    return T;
  return Spec.apply(M, T);
}

/// trans(c)(S). \p Cmd must not be a procedure call — the solvers handle
/// calls via the call mapping. The result is never empty.
std::vector<TsAbstractState> tsTransfer(const TsContext &Ctx, ProcId Proc,
                                        const Command &Cmd,
                                        const TsAbstractState &S);

} // namespace swift

#endif // SWIFT_TYPESTATE_TRANSFER_H
