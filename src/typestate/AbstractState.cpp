//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "typestate/AbstractState.h"

#include "ir/Program.h"

using namespace swift;

std::string ApSet::str(const SymbolTable &Syms) const {
  std::string Out = "{";
  for (size_t I = 0; I != Paths.size(); ++I) {
    if (I)
      Out += ",";
    Out += Paths[I].str(Syms);
  }
  Out += "}";
  return Out;
}

std::string TsAbstractState::str(const Program &Prog) const {
  if (isLambda())
    return "(lambda)";
  const SymbolTable &Syms = Prog.symbols();
  const TypestateSpec *Spec = Prog.specFor(Prog.site(H).Class);
  std::string TName =
      Spec ? Syms.text(Spec->stateName(T)) : std::to_string(T);
  return "(h" + std::to_string(H) + ", " + TName + ", " + Must.str(Syms) +
         ", " + MustNot.str(Syms) + ")";
}
