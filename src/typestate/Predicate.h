//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Preconditions of bottom-up abstract relations (the phi component of the
/// paper's Figure 3, generalized to the 4-tuple analysis). A predicate is a
/// conjunction of literals over the relation's *input* abstract state:
///
///  * per access path: a 3-valued constraint on membership in the must set
///    and in the must-not set (have / notHave of the paper, refined so the
///    weakest-precondition operator stays closed), and
///  * per (procedure, variable): a may-alias constraint, satisfied when the
///    static may-alias oracle does / does not relate the variable to the
///    input state's allocation site. These arise from the B3/B4 weak-update
///    cases and are evaluated lazily because relations leave h symbolic.
///
/// Must- and must-not sets of well-formed states are disjoint, so
/// requiring membership in both is a contradiction and the predicate
/// becomes unsatisfiable (the relation is dropped).
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_TYPESTATE_PREDICATE_H
#define SWIFT_TYPESTATE_PREDICATE_H

#include "typestate/AbstractState.h"
#include "typestate/Context.h"

#include <functional>
#include <string>
#include <vector>

namespace swift {

enum class ThreeVal : uint8_t { Unk, Yes, No };

/// A conjunctive predicate over abstract states (never Lambda). The empty
/// predicate is `true`. All mutators return false when the conjunction
/// becomes unsatisfiable; the predicate must then be discarded.
class TsPred {
public:
  struct ApConstraint {
    AccessPath Path;
    ThreeVal InMust = ThreeVal::Unk;
    ThreeVal InNot = ThreeVal::Unk;

    friend bool operator==(const ApConstraint &A, const ApConstraint &B) {
      return A.Path == B.Path && A.InMust == B.InMust && A.InNot == B.InNot;
    }
    friend bool operator<(const ApConstraint &A, const ApConstraint &B) {
      if (A.Path != B.Path)
        return A.Path < B.Path;
      if (A.InMust != B.InMust)
        return A.InMust < B.InMust;
      return A.InNot < B.InNot;
    }
  };

  struct MayConstraint {
    ProcId Proc = InvalidProc;
    Symbol Var;
    bool Want = true; ///< true: mayalias(Var, h); false: not mayalias.

    friend bool operator==(const MayConstraint &A, const MayConstraint &B) {
      return A.Proc == B.Proc && A.Var == B.Var && A.Want == B.Want;
    }
    friend bool operator<(const MayConstraint &A, const MayConstraint &B) {
      if (A.Proc != B.Proc)
        return A.Proc < B.Proc;
      if (A.Var != B.Var)
        return A.Var < B.Var;
      return A.Want < B.Want;
    }
  };

  TsPred() = default;

  bool isTrue() const { return Aps.empty() && Mays.empty(); }

  /// Conjoins "Path in must set" (Yes) or "Path not in must set" (No).
  [[nodiscard]] bool requireMust(const AccessPath &P, bool Yes);
  /// Conjoins "Path in must-not set" (Yes) or "not in must-not set" (No).
  [[nodiscard]] bool requireNot(const AccessPath &P, bool Yes);
  /// Conjoins a may-alias constraint for variable \p V of procedure \p P.
  [[nodiscard]] bool requireMay(ProcId P, Symbol V, bool Want);
  /// Conjoins every literal of \p Other.
  [[nodiscard]] bool conjoin(const TsPred &Other);

  ThreeVal mustStatus(const AccessPath &P) const;
  ThreeVal notStatus(const AccessPath &P) const;

  /// Does the (non-Lambda) state \p S satisfy this predicate? May-alias
  /// literals are decided by the context's oracle against S's site.
  bool satisfiedBy(const TsContext &Ctx, const TsAbstractState &S) const;

  /// Syntactic entailment: every literal of \p Weaker is implied by this
  /// predicate. (this => Weaker)
  bool implies(const TsPred &Weaker) const;

  const std::vector<ApConstraint> &apConstraints() const { return Aps; }
  const std::vector<MayConstraint> &mayConstraints() const { return Mays; }

  friend bool operator==(const TsPred &A, const TsPred &B) {
    return A.Aps == B.Aps && A.Mays == B.Mays;
  }
  friend bool operator!=(const TsPred &A, const TsPred &B) {
    return !(A == B);
  }
  friend bool operator<(const TsPred &A, const TsPred &B) {
    if (A.Aps != B.Aps)
      return A.Aps < B.Aps;
    return A.Mays < B.Mays;
  }

  std::string str(const Program &Prog) const;

private:
  ApConstraint &apEntry(const AccessPath &P);

  std::vector<ApConstraint> Aps;   ///< Sorted by path; no all-Unk entries.
  std::vector<MayConstraint> Mays; ///< Sorted by (Proc, Var); unique keys.
};

} // namespace swift

namespace std {
template <> struct hash<swift::TsPred> {
  size_t operator()(const swift::TsPred &P) const noexcept {
    size_t H = 0x2545f4914f6cdd1dULL;
    std::hash<swift::AccessPath> PH;
    for (const auto &C : P.apConstraints()) {
      H = H * 31 + PH(C.Path);
      H = H * 31 + (static_cast<size_t>(C.InMust) * 3 +
                    static_cast<size_t>(C.InNot));
    }
    for (const auto &C : P.mayConstraints()) {
      H = H * 31 + C.Proc;
      H = H * 31 + C.Var.id() * 2 + (C.Want ? 1 : 0);
    }
    return H;
  }
};
} // namespace std

#endif // SWIFT_TYPESTATE_PREDICATE_H
