//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "typestate/Relation.h"

#include "ir/Program.h"
#include "typestate/Transfer.h"

#include <cassert>

using namespace swift;

TsRelation TsRelation::makeAlloc(TsAbstractState Out) {
  assert(!Out.isLambda());
  TsRelation R;
  R.K = Kind::Alloc;
  R.Out = std::move(Out);
  return R;
}

TsRelation TsRelation::makeIdentity(size_t NumStates) {
  TsRelation R;
  R.K = Kind::Trans;
  R.Iota.resize(NumStates);
  for (size_t I = 0; I != NumStates; ++I)
    R.Iota[I] = static_cast<TState>(I);
  return R;
}

TsRelation TsRelation::makeTrans(std::vector<TState> Iota, KillSpec KillA,
                                 ApSet GenA, KillSpec KillN, ApSet GenN,
                                 TsPred Phi) {
#ifndef NDEBUG
  for (const AccessPath &P : GenA)
    assert(KillN.kills(P) && "GenA path not protected by KillN");
  for (const AccessPath &P : GenN)
    assert(KillA.kills(P) && "GenN path not protected by KillA");
#endif
  TsRelation R;
  R.K = Kind::Trans;
  R.Iota = std::move(Iota);
  R.KillA = std::move(KillA);
  R.GenA = std::move(GenA);
  R.KillN = std::move(KillN);
  R.GenN = std::move(GenN);
  R.Phi = std::move(Phi);
  return R;
}

TsAbstractState TsRelation::transform(const TsAbstractState &S) const {
  assert(K == Kind::Trans && !S.isLambda());
  ApSet A = S.must();
  A.eraseIf([this](const AccessPath &P) { return KillA.kills(P); });
  for (const AccessPath &P : GenA)
    A.insert(P);
  ApSet N = S.mustNot();
  N.eraseIf([this](const AccessPath &P) { return KillN.kills(P); });
  for (const AccessPath &P : GenN)
    N.insert(P);
  return TsAbstractState(S.site(), Iota[S.tstate()], std::move(A),
                         std::move(N));
}

std::optional<TsAbstractState>
TsRelation::apply(const TsContext &Ctx, const TsAbstractState &S) const {
  if (isAlloc())
    return S.isLambda() ? std::optional<TsAbstractState>(Out) : std::nullopt;
  if (S.isLambda() || !Phi.satisfiedBy(Ctx, S))
    return std::nullopt;
  return transform(S);
}

bool swift::operator<(const TsRelation &A, const TsRelation &B) {
  if (A.K != B.K)
    return A.K < B.K;
  if (A.K == TsRelation::Kind::Alloc)
    return A.Out < B.Out;
  if (A.Iota != B.Iota)
    return A.Iota < B.Iota;
  if (A.KillA != B.KillA)
    return A.KillA < B.KillA;
  if (A.GenA != B.GenA)
    return A.GenA < B.GenA;
  if (A.KillN != B.KillN)
    return A.KillN < B.KillN;
  if (A.GenN != B.GenN)
    return A.GenN < B.GenN;
  return A.Phi < B.Phi;
}

std::string TsRelation::str(const Program &Prog) const {
  const SymbolTable &Syms = Prog.symbols();
  if (isAlloc())
    return "alloc -> " + Out.str(Prog);
  std::string S = "[phi: " + Phi.str(Prog) + "] t->";
  bool Identity = true;
  for (size_t I = 0; I != Iota.size(); ++I)
    if (Iota[I] != I)
      Identity = false;
  if (Identity) {
    S += "t";
  } else {
    S += "(";
    for (size_t I = 0; I != Iota.size(); ++I) {
      if (I)
        S += ",";
      S += std::to_string(Iota[I]);
    }
    S += ")";
  }
  S += " A:-" + KillA.str(Syms) + "+" + GenA.str(Syms);
  S += " N:-" + KillN.str(Syms) + "+" + GenN.str(Syms);
  return S;
}

std::string KillSpec::str(const SymbolTable &Syms) const {
  std::string S = "{";
  bool First = true;
  auto Sep = [&]() {
    if (!First)
      S += ",";
    First = false;
  };
  for (Symbol B : Bases) {
    Sep();
    S += Syms.text(B) + ".*";
  }
  for (Symbol F : Default) {
    Sep();
    S += "*." + Syms.text(F);
  }
  for (const auto &[B, Fs] : ByBase) {
    Sep();
    S += Syms.text(B) + ":(";
    for (size_t I = 0; I != Fs.size(); ++I) {
      if (I)
        S += ",";
      S += Syms.text(Fs[I]);
    }
    S += ")";
  }
  S += "}";
  return S;
}

//===----------------------------------------------------------------------===//
// wp
//===----------------------------------------------------------------------===//

std::optional<TsPred> swift::tsWpPred(const TsRelation &R,
                                      const TsPred &Post) {
  assert(!R.isAlloc() && "wp through Alloc relations is concrete evaluation");
  TsPred Pre;
  for (const TsPred::ApConstraint &C : Post.apConstraints()) {
    if (C.InMust == ThreeVal::Yes) {
      if (R.genA().contains(C.Path)) {
        // Always in the output must set.
      } else if (R.killA().kills(C.Path)) {
        return std::nullopt; // Never.
      } else if (!Pre.requireMust(C.Path, true)) {
        return std::nullopt;
      }
    } else if (C.InMust == ThreeVal::No) {
      if (R.genA().contains(C.Path))
        return std::nullopt;
      if (!R.killA().kills(C.Path) && !Pre.requireMust(C.Path, false))
        return std::nullopt;
    }
    if (C.InNot == ThreeVal::Yes) {
      if (R.genN().contains(C.Path)) {
      } else if (R.killN().kills(C.Path)) {
        return std::nullopt;
      } else if (!Pre.requireNot(C.Path, true)) {
        return std::nullopt;
      }
    } else if (C.InNot == ThreeVal::No) {
      if (R.genN().contains(C.Path))
        return std::nullopt;
      if (!R.killN().kills(C.Path) && !Pre.requireNot(C.Path, false))
        return std::nullopt;
    }
  }
  for (const TsPred::MayConstraint &C : Post.mayConstraints())
    if (!Pre.requireMay(C.Proc, C.Var, C.Want))
      return std::nullopt;
  return Pre;
}

//===----------------------------------------------------------------------===//
// rcomp
//===----------------------------------------------------------------------===//

std::optional<TsRelation> swift::tsRcomp(const TsContext &Ctx,
                                         const TsRelation &R1,
                                         const TsRelation &R2) {
  // Nothing outputs Lambda, so composing into an Alloc relation's domain
  // ({Lambda}) is empty.
  if (R2.isAlloc())
    return std::nullopt;

  if (R1.isAlloc()) {
    if (!R2.phi().satisfiedBy(Ctx, R1.out()))
      return std::nullopt;
    return TsRelation::makeAlloc(R2.transform(R1.out()));
  }

  TsPred Phi = R1.phi();
  std::optional<TsPred> Wp = tsWpPred(R1, R2.phi());
  if (!Wp || !Phi.conjoin(*Wp))
    return std::nullopt;

  std::vector<TState> Iota(R1.iota().size());
  for (size_t I = 0; I != Iota.size(); ++I)
    Iota[I] = R2.iota()[R1.iota()[I]];

  KillSpec KillA = R1.killA();
  KillA.unionWith(R2.killA());
  KillSpec KillN = R1.killN();
  KillN.unionWith(R2.killN());

  ApSet GenA;
  for (const AccessPath &P : R1.genA())
    if (!R2.killA().kills(P))
      GenA.insert(P);
  for (const AccessPath &P : R2.genA())
    GenA.insert(P);
  ApSet GenN;
  for (const AccessPath &P : R1.genN())
    if (!R2.killN().kills(P))
      GenN.insert(P);
  for (const AccessPath &P : R2.genN())
    GenN.insert(P);

  return TsRelation::makeTrans(std::move(Iota), std::move(KillA),
                               std::move(GenA), std::move(KillN),
                               std::move(GenN), std::move(Phi));
}

//===----------------------------------------------------------------------===//
// rtrans
//===----------------------------------------------------------------------===//

namespace {

/// Builds the iota vector of method \p M (error-absorbing).
std::vector<TState> methodIota(const TypestateSpec &Spec, Symbol M) {
  std::vector<TState> V(Spec.numStates());
  for (size_t T = 0; T != V.size(); ++T)
    V[T] = tsApplyMethod(Spec, M, static_cast<TState>(T));
  return V;
}

std::vector<TState> constIota(size_t NumStates, TState To) {
  return std::vector<TState>(NumStates, To);
}

std::vector<TState> identityIota(size_t NumStates) {
  std::vector<TState> V(NumStates);
  for (size_t I = 0; I != NumStates; ++I)
    V[I] = static_cast<TState>(I);
  return V;
}

/// The three relations of an assignment Dst = <source> where the source's
/// must / must-not membership is tested on the input: source in must,
/// source in must-not, source in neither. \p Kill is applied to both sets.
void assignCases(size_t NumStates, const AccessPath &Source, Symbol Dst,
                 KillSpec Kill, std::vector<TsRelation> &Out) {
  AccessPath DstPath((Dst));
  // Case 1: source in must set -> Dst joins the must set.
  {
    TsPred Phi;
    bool Ok = Phi.requireMust(Source, true);
    assert(Ok && "fresh literal cannot contradict");
    (void)Ok;
    ApSet GenA;
    GenA.insert(DstPath);
    Out.push_back(TsRelation::makeTrans(identityIota(NumStates), Kill,
                                        std::move(GenA), Kill, ApSet(),
                                        std::move(Phi)));
  }
  // Case 2: source in must-not set -> Dst joins the must-not set.
  {
    TsPred Phi;
    bool Ok = Phi.requireMust(Source, false) && Phi.requireNot(Source, true);
    assert(Ok);
    (void)Ok;
    ApSet GenN;
    GenN.insert(DstPath);
    Out.push_back(TsRelation::makeTrans(identityIota(NumStates), Kill,
                                        ApSet(), Kill, std::move(GenN),
                                        std::move(Phi)));
  }
  // Case 3: neither -> Dst joins neither.
  {
    TsPred Phi;
    bool Ok =
        Phi.requireMust(Source, false) && Phi.requireNot(Source, false);
    assert(Ok);
    (void)Ok;
    Out.push_back(TsRelation::makeTrans(identityIota(NumStates), Kill,
                                        ApSet(), Kill, ApSet(),
                                        std::move(Phi)));
  }
}

/// Like assignCases but the generated path is \p Target instead of the
/// destination variable (for stores).
void storeCases(size_t NumStates, const AccessPath &Source,
                const AccessPath &Target, KillSpec Kill,
                std::vector<TsRelation> &Out) {
  {
    TsPred Phi;
    bool Ok = Phi.requireMust(Source, true);
    assert(Ok);
    (void)Ok;
    ApSet GenA;
    GenA.insert(Target);
    Out.push_back(TsRelation::makeTrans(identityIota(NumStates), Kill,
                                        std::move(GenA), Kill, ApSet(),
                                        std::move(Phi)));
  }
  {
    TsPred Phi;
    bool Ok = Phi.requireMust(Source, false) && Phi.requireNot(Source, true);
    assert(Ok);
    (void)Ok;
    ApSet GenN;
    GenN.insert(Target);
    Out.push_back(TsRelation::makeTrans(identityIota(NumStates), Kill,
                                        ApSet(), Kill, std::move(GenN),
                                        std::move(Phi)));
  }
  {
    TsPred Phi;
    bool Ok =
        Phi.requireMust(Source, false) && Phi.requireNot(Source, false);
    assert(Ok);
    (void)Ok;
    Out.push_back(TsRelation::makeTrans(identityIota(NumStates), Kill,
                                        ApSet(), Kill, ApSet(),
                                        std::move(Phi)));
  }
}

} // namespace

std::vector<TsRelation> swift::tsPrimRels(const TsContext &Ctx, ProcId Proc,
                                          const Command &Cmd) {
  const TypestateSpec &Spec = Ctx.spec();
  size_t NS = Spec.numStates();
  std::vector<TsRelation> Out;

  switch (Cmd.Kind) {
  case CmdKind::Nop:
    Out.push_back(TsRelation::makeIdentity(NS));
    return Out;

  case CmdKind::Alloc:
  case CmdKind::AssignNull: {
    // The (old-object) effect of both commands: Dst now definitely points
    // elsewhere (a fresh object / null).
    KillSpec Kill;
    Kill.addBase(Cmd.Dst);
    ApSet GenN;
    GenN.insert(AccessPath(Cmd.Dst));
    Out.push_back(TsRelation::makeTrans(identityIota(NS), Kill, ApSet(),
                                        Kill, std::move(GenN), TsPred()));
    return Out;
  }

  case CmdKind::Copy: {
    if (Cmd.Dst == Cmd.Src) {
      Out.push_back(TsRelation::makeIdentity(NS));
      return Out;
    }
    KillSpec Kill;
    Kill.addBase(Cmd.Dst);
    assignCases(NS, AccessPath(Cmd.Src), Cmd.Dst, std::move(Kill), Out);
    return Out;
  }

  case CmdKind::Load: {
    KillSpec Kill;
    Kill.addBase(Cmd.Dst);
    assignCases(NS, AccessPath(Cmd.Src, Cmd.Field), Cmd.Dst, std::move(Kill),
                Out);
    return Out;
  }

  case CmdKind::Store: {
    KillSpec Kill;
    Kill.addFieldEverywhere(Cmd.Field);
    storeCases(NS, AccessPath(Cmd.Src), AccessPath(Cmd.Dst, Cmd.Field),
               std::move(Kill), Out);
    return Out;
  }

  case CmdKind::TsCall: {
    AccessPath Recv(Cmd.Src);
    // B2': receiver definitely this object -> strong update.
    {
      TsPred Phi;
      bool Ok = Phi.requireMust(Recv, true);
      assert(Ok);
      (void)Ok;
      Out.push_back(TsRelation::makeTrans(methodIota(Spec, Cmd.Method),
                                          KillSpec(), ApSet(), KillSpec(),
                                          ApSet(), std::move(Phi)));
    }
    // B1: receiver definitely another object -> identity.
    {
      TsPred Phi;
      bool Ok = Phi.requireMust(Recv, false) && Phi.requireNot(Recv, true);
      assert(Ok);
      (void)Ok;
      Out.push_back(TsRelation::makeIdentity(NS));
      // Attach the precondition (makeIdentity has true; rebuild).
      Out.back() = TsRelation::makeTrans(identityIota(NS), KillSpec(),
                                         ApSet(), KillSpec(), ApSet(),
                                         std::move(Phi));
    }
    // B3: unknown receiver that may alias -> weak update to error.
    {
      TsPred Phi;
      bool Ok = Phi.requireMust(Recv, false) && Phi.requireNot(Recv, false) &&
                Phi.requireMay(Proc, Cmd.Src, true);
      assert(Ok);
      (void)Ok;
      Out.push_back(TsRelation::makeTrans(constIota(NS, Spec.errorState()),
                                          KillSpec(), ApSet(), KillSpec(),
                                          ApSet(), std::move(Phi)));
    }
    // B4: unknown receiver that cannot alias -> identity.
    {
      TsPred Phi;
      bool Ok = Phi.requireMust(Recv, false) && Phi.requireNot(Recv, false) &&
                Phi.requireMay(Proc, Cmd.Src, false);
      assert(Ok);
      (void)Ok;
      Out.push_back(TsRelation::makeTrans(identityIota(NS), KillSpec(),
                                          ApSet(), KillSpec(), ApSet(),
                                          std::move(Phi)));
    }
    return Out;
  }

  case CmdKind::Call:
    break;
  }
  assert(false && "calls have no primitive relations");
  return Out;
}

std::vector<TsRelation> swift::tsRtrans(const TsContext &Ctx, ProcId Proc,
                                        const Command &Cmd,
                                        const TsRelation &R) {
  assert(Cmd.Kind != CmdKind::Call && "calls are composed via summaries");
  std::vector<TsRelation> Out;

  if (R.isAlloc()) {
    // Concrete route: exactly the top-down transfer on the carried state.
    std::vector<TsAbstractState> Next = tsTransfer(Ctx, Proc, Cmd, R.out());
    for (TsAbstractState &S : Next) {
      assert(!S.isLambda() && "non-Lambda inputs never produce Lambda");
      Out.push_back(TsRelation::makeAlloc(std::move(S)));
    }
    return Out;
  }

  if (Cmd.Kind == CmdKind::Nop) {
    Out.push_back(R);
    return Out;
  }
  for (const TsRelation &Prim : tsPrimRels(Ctx, Proc, Cmd))
    if (std::optional<TsRelation> C = tsRcomp(Ctx, R, Prim))
      Out.push_back(std::move(*C));
  return Out;
}

std::vector<TsRelation> swift::tsLambdaEmits(const TsContext &Ctx,
                                             const Command &Cmd) {
  std::vector<TsRelation> Out;
  if (Cmd.Kind == CmdKind::Alloc && Ctx.isTrackedSite(Cmd.Site)) {
    ApSet Must;
    Must.insert(AccessPath(Cmd.Dst));
    Out.push_back(TsRelation::makeAlloc(TsAbstractState(
        Cmd.Site, Ctx.spec().initState(), std::move(Must), ApSet())));
  }
  return Out;
}
