//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "typestate/RelCall.h"

#include <cassert>

using namespace swift;

std::optional<TsPred> swift::tsEnterPullback(const TsContext &Ctx,
                                             const CallBinding &B,
                                             const TsPred &Phi) {
  (void)Ctx;
  TsPred Out;
  for (const TsPred::ApConstraint &C : Phi.apConstraints()) {
    Symbol Actual = B.actualOf(C.Path.base());
    if (!Actual.isValid()) {
      // Callee locals and $ret are never in the entry must / must-not
      // sets: membership literals are statically false.
      if (C.InMust == ThreeVal::Yes || C.InNot == ThreeVal::Yes)
        return std::nullopt;
      continue;
    }
    AccessPath P = C.Path.withBase(Actual);
    if (C.InMust == ThreeVal::Yes && !Out.requireMust(P, true))
      return std::nullopt;
    if (C.InMust == ThreeVal::No && !Out.requireMust(P, false))
      return std::nullopt;
    if (C.InNot == ThreeVal::Yes && !Out.requireNot(P, true))
      return std::nullopt;
    if (C.InNot == ThreeVal::No && !Out.requireNot(P, false))
      return std::nullopt;
  }
  for (const TsPred::MayConstraint &C : Phi.mayConstraints())
    if (!Out.requireMay(C.Proc, C.Var, C.Want))
      return std::nullopt;
  return Out;
}

namespace {

/// Translates a callee relation's kill set into the caller vocabulary:
/// the call result is always clobbered, paths based at an actual follow
/// the callee's kills through the canonical formal, and everything else
/// follows the callee's mod-ref set.
KillSpec callKillSpec(const TsContext &Ctx, const CallBinding &B,
                      const KillSpec &CalleeKill) {
  KillSpec K;
  for (Symbol F : Ctx.modRef().modFields(B.callee()))
    K.addFieldEverywhere(F);
  if (B.resultVar().isValid())
    K.addBase(B.resultVar());
  for (const auto &[Actual, Formals] : B.bindings()) {
    (void)Formals;
    if (Actual == B.resultVar() && B.resultVar().isValid())
      continue; // Already killed wholesale.
    Symbol Canon = B.canonicalFormal(Actual);
    if (!Canon.isValid() ||
        std::binary_search(CalleeKill.bases().begin(),
                           CalleeKill.bases().end(), Canon)) {
      K.addBase(Actual);
      continue;
    }
    K.setBaseFields(Actual, CalleeKill.fieldsFor(Canon));
  }
  return K;
}

ApSet renameBackSet(const CallBinding &B, const ApSet &Gens) {
  ApSet Out;
  for (const AccessPath &Q : Gens) {
    AccessPath P = B.renameBack(Q);
    if (P.isValid())
      Out.insert(P);
  }
  return Out;
}

/// Builds the caller-vocabulary effect of callee Trans relation \p CalleeR.
/// nullopt when the callee precondition cannot be met by any entry state.
std::optional<TsRelation> callEffect(const TsContext &Ctx,
                                     const CallBinding &B,
                                     const TsRelation &CalleeR) {
  assert(!CalleeR.isAlloc());
  std::optional<TsPred> Phi = tsEnterPullback(Ctx, B, CalleeR.phi());
  if (!Phi)
    return std::nullopt;
  return TsRelation::makeTrans(
      CalleeR.iota(), callKillSpec(Ctx, B, CalleeR.killA()),
      renameBackSet(B, CalleeR.genA()),
      callKillSpec(Ctx, B, CalleeR.killN()),
      renameBackSet(B, CalleeR.genN()), std::move(*Phi));
}

} // namespace

void swift::tsComposeCall(const TsContext &Ctx, const CallBinding &B,
                          const TsRelation &R, const TsSummaryView &Callee,
                          std::vector<TsRelation> &Out,
                          TsIgnoreSet &SigmaOut) {
  if (R.isAlloc()) {
    TsAbstractState Entry = tsEnter(B, R.out());
    if (Callee.Sigma->contains(Ctx, Entry)) {
      // The callee summary ignores this entry state; the whole Lambda
      // route becomes unusable in the caller.
      SigmaOut.addLambda();
      return;
    }
    for (const TsRelation &CalleeR : *Callee.Rels) {
      if (CalleeR.isAlloc())
        continue;
      if (!CalleeR.phi().satisfiedBy(Ctx, Entry))
        continue;
      Out.push_back(TsRelation::makeAlloc(
          tsCombine(B, R.out(), CalleeR.transform(Entry))));
    }
    return;
  }

  // Backward-propagate the callee's pruning decisions: inputs of R whose
  // intermediate entry state the callee ignores become ignored here.
  for (const TsPred &Psi : Callee.Sigma->disjuncts()) {
    std::optional<TsPred> Pulled = tsEnterPullback(Ctx, B, Psi);
    if (!Pulled)
      continue;
    std::optional<TsPred> Wp = tsWpPred(R, *Pulled);
    if (!Wp)
      continue;
    TsPred Pre = R.phi();
    if (Pre.conjoin(*Wp))
      SigmaOut.addPred(Pre);
  }

  for (const TsRelation &CalleeR : *Callee.Rels) {
    if (CalleeR.isAlloc())
      continue; // Fresh callee objects travel the Lambda route.
    std::optional<TsRelation> Effect = callEffect(Ctx, B, CalleeR);
    if (!Effect)
      continue;
    if (std::optional<TsRelation> C = tsRcomp(Ctx, R, *Effect))
      Out.push_back(std::move(*C));
  }
}

void swift::tsComposeCallLambda(const TsContext &Ctx, const CallBinding &B,
                                const TsSummaryView &Callee,
                                std::vector<TsRelation> &Out,
                                TsIgnoreSet &SigmaOut) {
  if (Callee.Sigma->containsLambda()) {
    SigmaOut.addLambda();
    return;
  }
  for (const TsRelation &CalleeR : *Callee.Rels)
    if (CalleeR.isAlloc())
      Out.push_back(
          TsRelation::makeAlloc(tsCombineFresh(B, CalleeR.out())));
  (void)Ctx;
}
