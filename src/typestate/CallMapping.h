//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call-boundary mappings of abstract states. Both the top-down tabulation
/// and the bottom-up relation composition go through these definitions, so
/// the two analyses agree at call sites *by construction* (condition C1 at
/// call commands).
///
/// The vocabulary split is strict, which is what keeps the bottom-up
/// composite representable in kill/gen form:
///
/// * enter: every actual-based caller path is renamed to every formal it is
///   bound to; all other paths are dropped (the callee cannot name them).
/// * combine: paths based at a variable that is neither an actual nor the
///   call result survive from the caller frame iff they use no field the
///   callee may modify. Paths based at an actual or at the result variable
///   are owned by the callee route: a path based at actual `a` is renamed
///   back from `canonicalFormal(a)` (the first never-reassigned formal
///   bound to `a`), and $ret-based paths are renamed to the result
///   variable. The two routes cover disjoint bases, so the must / must-not
///   sets stay disjoint structurally.
/// * combineFresh: callee-allocated objects only get the renamed-back
///   paths; every caller path would be stale.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_TYPESTATE_CALLMAPPING_H
#define SWIFT_TYPESTATE_CALLMAPPING_H

#include "typestate/AbstractState.h"
#include "typestate/Context.h"

namespace swift {

/// Precomputed per-call-site binding information shared by the state-level
/// and relation-level call handling.
class CallBinding {
public:
  CallBinding(const TsContext &Ctx, ProcId CallerProc, const Command &Call);

  ProcId callee() const { return Callee; }
  Symbol resultVar() const { return Result; }
  /// The callee's return-value variable ($ret).
  Symbol retVar() const { return Ret; }

  /// Formals bound to actual \p V (several when the variable is passed
  /// more than once); empty if \p V is not an actual.
  const std::vector<Symbol> &formalsOf(Symbol V) const;

  /// The actual bound to formal \p F, or the invalid symbol.
  Symbol actualOf(Symbol F) const;

  bool isActual(Symbol V) const { return !formalsOf(V).empty(); }

  /// The representative formal through which paths based at actual \p V
  /// survive the call: the first formal bound to \p V that the callee never
  /// reassigns. Invalid if there is none (paths based at \p V then die).
  Symbol canonicalFormal(Symbol V) const;

  /// True if the callee may (transitively) store to field \p F.
  bool calleeMods(Symbol F) const;

  /// All (actual, bound formals) pairs in argument order of first
  /// occurrence.
  const std::vector<std::pair<Symbol, std::vector<Symbol>>> &
  bindings() const {
    return ActualToFormals;
  }

  /// Caller-frame survival: only paths whose base is neither an actual nor
  /// the result variable, and which use no callee-modified field.
  bool frameKeeps(const AccessPath &P) const {
    if (P.base() == Result && Result.isValid())
      return false;
    if (isActual(P.base()))
      return false;
    if (P.field1().isValid() && calleeMods(P.field1()))
      return false;
    if (P.field2().isValid() && calleeMods(P.field2()))
      return false;
    return true;
  }

  /// The caller-side path that callee-exit path \p Q renames back to, or an
  /// invalid path if \p Q does not survive into the caller. $ret-based
  /// paths map to the result variable; canonical-formal-based paths map to
  /// their actual (unless that actual is the result variable, which the
  /// call rebinds).
  AccessPath renameBack(const AccessPath &Q) const {
    if (Q.base() == Ret)
      return Result.isValid() ? Q.withBase(Result) : AccessPath();
    Symbol Actual = actualOf(Q.base());
    if (!Actual.isValid() || Actual == Result)
      return AccessPath();
    if (canonicalFormal(Actual) != Q.base())
      return AccessPath();
    return Q.withBase(Actual);
  }

private:
  const TsContext &Ctxt;
  ProcId Callee;
  Symbol Result;
  Symbol Ret;
  std::vector<std::pair<Symbol, std::vector<Symbol>>> ActualToFormals;
};

/// Maps caller state \p S to the callee entry state. Lambda maps to
/// Lambda.
TsAbstractState tsEnter(const CallBinding &B, const TsAbstractState &S);

/// Merges caller frame \p Frame (the caller's state at the call) with
/// callee exit state \p Exit for the same tracked object.
TsAbstractState tsCombine(const CallBinding &B, const TsAbstractState &Frame,
                          const TsAbstractState &Exit);

/// Lifts a callee-allocated object's exit state into the caller.
TsAbstractState tsCombineFresh(const CallBinding &B,
                               const TsAbstractState &Exit);

} // namespace swift

#endif // SWIFT_TYPESTATE_CALLMAPPING_H
