//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Procedure-call composition in the bottom-up relation domain: the
/// [[g()]]^r case of the paper's Section 3.5, specialized to the typestate
/// relation domain. A caller relation composed with a callee summary
/// (R', Sigma') yields caller relations, plus additions to the caller's
/// ignore set for inputs whose intermediate callee-entry state falls in
/// Sigma' (the backward wp-propagation of pruning decisions).
///
/// The composition mirrors the state-level call mapping (CallMapping.h)
/// exactly: the callee relation's kill/gen sets are translated through the
/// canonical formals, non-actual caller paths are killed according to the
/// callee's mod set, and the callee precondition is pulled back through
/// `enter` and then through the caller relation via wp.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_TYPESTATE_RELCALL_H
#define SWIFT_TYPESTATE_RELCALL_H

#include "typestate/CallMapping.h"
#include "typestate/IgnoreSet.h"
#include "typestate/Relation.h"

#include <vector>

namespace swift {

/// A view of a callee's bottom-up summary.
struct TsSummaryView {
  const std::vector<TsRelation> *Rels = nullptr;
  const TsIgnoreSet *Sigma = nullptr;
};

/// Pulls callee-entry predicate \p Phi back through `enter` at binding
/// \p B: formal-based paths become actual-based, paths the callee entry
/// can never contain (locals, $ret) evaluate statically. nullopt encodes
/// `false`.
std::optional<TsPred> tsEnterPullback(const TsContext &Ctx,
                                      const CallBinding &B,
                                      const TsPred &Phi);

/// Composes caller relation \p R with the callee summary at binding \p B.
/// Composite relations are appended to \p Out; predicates covering inputs
/// whose callee-entry state is ignored by the callee are added to
/// \p SigmaOut (Lambda if \p R is an Alloc relation).
void tsComposeCall(const TsContext &Ctx, const CallBinding &B,
                   const TsRelation &R, const TsSummaryView &Callee,
                   std::vector<TsRelation> &Out, TsIgnoreSet &SigmaOut);

/// The Lambda route through a call: lifts the callee's Alloc relations
/// (objects the callee allocates) into the caller, and marks Lambda
/// ignored if the callee's summary ignores Lambda.
void tsComposeCallLambda(const TsContext &Ctx, const CallBinding &B,
                         const TsSummaryView &Callee,
                         std::vector<TsRelation> &Out,
                         TsIgnoreSet &SigmaOut);

} // namespace swift

#endif // SWIFT_TYPESTATE_RELCALL_H
