//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// High-level entry points for the three interprocedural typestate
/// analyses compared in the paper's evaluation: TD (conventional
/// top-down), BU (conventional bottom-up, no pruning), and SWIFT (the
/// hybrid with thresholds k and theta). These are what the examples,
/// tests, and benchmark harness call.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_TYPESTATE_RUNNER_H
#define SWIFT_TYPESTATE_RUNNER_H

#include "framework/TabSnapshot.h"
#include "govern/Governor.h"
#include "support/Stats.h"
#include "support/Timer.h"
#include "typestate/Context.h"
#include "typestate/TsAnalysis.h"

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace swift {

/// Resource limits for one analysis run; default effectively unlimited.
struct RunLimits {
  uint64_t MaxSteps = UINT64_MAX;
  double MaxSeconds = 1e18;
};

/// A reported typestate error: an object of the tracked class allocated at
/// Site may be in the error state at node Node of procedure Proc.
struct TsError {
  SiteId Site;
  ProcId Proc;
  NodeId Node;
  friend bool operator<(const TsError &A, const TsError &B) {
    if (A.Site != B.Site)
      return A.Site < B.Site;
    if (A.Proc != B.Proc)
      return A.Proc < B.Proc;
    return A.Node < B.Node;
  }
  friend bool operator==(const TsError &A, const TsError &B) {
    return A.Site == B.Site && A.Proc == B.Proc && A.Node == B.Node;
  }
};

struct TsRunResult {
  bool Timeout = false;
  double Seconds = 0;
  uint64_t Steps = 0;
  uint64_t TdSummaries = 0; ///< Total (entry, exit) pairs.
  uint64_t BuRelations = 0; ///< Total (r, phi) relations.
  std::vector<uint64_t> TdSummariesPerProc;
  std::set<SiteId> ErrorSites;          ///< Sites that may reach error.
  std::set<TsError> ErrorPoints;        ///< Where error tuples were seen.
  std::set<TsAbstractState> MainExit;   ///< States at main's exit.
  Stats Stat;
};

/// Conventional top-down analysis (SWIFT with the trigger disabled).
TsRunResult runTypestateTd(const TsContext &Ctx, RunLimits Limits = {});

/// The SWIFT hybrid with thresholds \p K and \p Theta. \p AsyncBu runs
/// triggered bottom-up analyses on worker threads while the top-down
/// analysis continues (the paper's Section 7 parallelization sketch);
/// results are identical either way. \p Threads is the worker count of
/// each bottom-up solve (SCC-DAG wavefront; summaries are bit-identical
/// for every value).
TsRunResult runTypestateSwift(const TsContext &Ctx, uint64_t K,
                              uint64_t Theta, RunLimits Limits = {},
                              bool AsyncBu = false, unsigned Threads = 1);

/// Conventional bottom-up analysis: whole-program relational analysis
/// without pruning, then one application of main's summary to the initial
/// state. \p Threads parallelizes over the call-graph SCC DAG.
TsRunResult runTypestateBu(const TsContext &Ctx, RunLimits Limits = {},
                           unsigned Threads = 1);

/// One SWIFT configuration, with every solver knob exposed (the positional
/// runTypestateSwift overload covers the common ones).
struct SwiftRunConfig {
  uint64_t K = 5;
  uint64_t Theta = 2;
  bool AsyncBu = false;
  unsigned Threads = 1;
  /// Collect and serve the observation manifest (exact error reporting for
  /// summary-served callees). Disabling it is an ablation: value results
  /// stay coincident with TD, but error sites on paths that diverge inside
  /// served callees can be missed.
  bool ObservationManifest = true;
};

TsRunResult runTypestateSwift(const TsContext &Ctx,
                              const SwiftRunConfig &Cfg,
                              RunLimits Limits = {});

//===----------------------------------------------------------------------===//
// Governed (budget-limited, gracefully degrading) runs
//===----------------------------------------------------------------------===//

/// Per-allocation-site verdict of a governed run. The soundness contract
/// for partial results: a budget-exhausted run never claims Proved for a
/// tracked site (tracked sites without a reported error are Unresolved),
/// and every ErrorReported site of the partial run is ErrorReported in
/// the uninterrupted run too — partial verdicts are a sound subset.
enum class TsVerdict : uint8_t {
  Proved,        ///< No error reachable (complete runs / untracked sites).
  ErrorReported, ///< The site may reach the error state.
  Unresolved,    ///< Budget ran out before the site was resolved.
};

const char *tsVerdictName(TsVerdict V);

/// A checkpoint of a budget-exhausted typestate tabulation; see
/// framework/TabSnapshot.h for exactness guarantees and
/// govern/Checkpoint.h for (de)serialization.
using TsTabSnapshot = TabSnapshot<TsAbstractState>;

/// Result of a governed run: the ordinary run result plus partiality,
/// degradation telemetry, and the per-site verdict vector (indexed by
/// SiteId). When Partial, Run.Timeout is also true but — unlike the
/// ungoverned runners, which zero everything on timeout — Run carries the
/// partially computed (sound-subset) summaries, error sites, and stats.
struct TsGovernedResult {
  TsRunResult Run;
  bool Partial = false;              ///< Budget exhausted before fixpoint.
  Pressure Peak = Pressure::Green;   ///< Highest pressure level reached.
  uint64_t PeakMemoryBytes = 0;      ///< Governor's peak memory estimate.
  std::vector<TsVerdict> Verdicts;   ///< One per allocation site.
};

/// Options for one governed run. ResumeFrom, when set, re-seeds the
/// solver from a checkpoint before running (the snapshot must come from
/// the same program and an equivalent config); CheckpointOut, when set,
/// receives a snapshot if the run exhausts its budget (it is left
/// untouched on completion).
struct GovernedRunOptions {
  SwiftRunConfig Config;
  GovernorLimits Limits;
  const TsTabSnapshot *ResumeFrom = nullptr;
  TsTabSnapshot *CheckpointOut = nullptr;
  /// When set, runTypestateGoverned publishes its internally constructed
  /// governor here for the duration of the run (and clears it before
  /// returning). A signal handler can then call interruptFromSignal() on
  /// the loaded pointer to wind the run down to the partial-but-sound
  /// exit path; both sides are lock-free atomics.
  std::atomic<ResourceGovernor *> *GovSlot = nullptr;
};

/// Runs the tabulation (TD when Config.K == NoBuTrigger, hybrid
/// otherwise) under a resource governor: staged degradation under
/// pressure, and a partial-but-sound result instead of nothing when the
/// budget runs out. A pure-TD run checkpointed at exhaustion and resumed
/// with a larger budget produces results bit-identical to an
/// uninterrupted run (the checkpoint-resume oracle enforces this).
TsGovernedResult runTypestateGoverned(const TsContext &Ctx,
                                      const GovernedRunOptions &Opts);

/// One named analysis run of the differential-testing config matrix.
struct TsConfigRun {
  std::string Name; ///< e.g. "td", "bu/t2", "swift/k1/th2/async/t4".
  enum class Mode { Td, Bu, Swift } Kind;
  SwiftRunConfig Swift;     ///< Swift runs only.
  unsigned BuThreads = 1;   ///< Bu runs only.
  TsRunResult Result;
};

/// Which slice of the config matrix runAllConfigs covers.
struct AllConfigsOptions {
  bool IncludeBu = true;    ///< Pure BU can blow up; callers may skip it.
  bool IncludeAsync = true;
  bool IncludeManifestOff = true;
  /// Thread counts exercised for BU and for a subset of SWIFT configs.
  std::vector<unsigned> ThreadCounts = {1, 2, 4};
};

/// Runs the whole analysis-mode matrix on one program: TD (the ground
/// truth of Theorem 3.1), pure BU at each thread count, and SWIFT
/// sync/async at several (k, theta) x thread-count x manifest settings.
/// The TD run is always first. This is the engine of the differential
/// oracle (src/difftest) and of ad-hoc cross-checking in tools.
std::vector<TsConfigRun> runAllConfigs(const TsContext &Ctx,
                                       RunLimits Limits = {},
                                       const AllConfigsOptions &Opts = {});

} // namespace swift

#endif // SWIFT_TYPESTATE_RUNNER_H
