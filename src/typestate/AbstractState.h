//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract states of the "full" typestate analysis (paper Sections 2 and
/// 6.1): tuples (h, t, A, N) where h is an allocation site of the tracked
/// class, t a typestate, A the must-alias and N the must-not-alias set of
/// access paths (up to two fields). A and N are kept sorted, deduplicated,
/// and disjoint.
///
/// A distinguished Lambda state (h = LambdaSite) represents "no tracked
/// object yet". Fresh-object tuples are generated from Lambda at
/// allocation commands, which keeps procedure summaries for pre-existing
/// objects separate from summaries for objects the procedure itself
/// allocates — the key to sound call-return composition.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_TYPESTATE_ABSTRACTSTATE_H
#define SWIFT_TYPESTATE_ABSTRACTSTATE_H

#include "ir/AccessPath.h"
#include "ir/Command.h"
#include "ir/TypestateSpec.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

namespace swift {

class Program;

inline constexpr SiteId LambdaSite = static_cast<SiteId>(-1);

/// A sorted, deduplicated set of access paths with set-algebra helpers.
class ApSet {
public:
  ApSet() = default;
  explicit ApSet(std::vector<AccessPath> Paths) : Paths(std::move(Paths)) {
    normalize();
  }

  bool contains(const AccessPath &P) const {
    return std::binary_search(Paths.begin(), Paths.end(), P);
  }

  void insert(const AccessPath &P) {
    auto It = std::lower_bound(Paths.begin(), Paths.end(), P);
    if (It == Paths.end() || *It != P)
      Paths.insert(It, P);
  }

  void erase(const AccessPath &P) {
    auto It = std::lower_bound(Paths.begin(), Paths.end(), P);
    if (It != Paths.end() && *It == P)
      Paths.erase(It);
  }

  /// Removes every path whose base variable is \p V.
  void eraseBase(Symbol V) {
    Paths.erase(std::remove_if(Paths.begin(), Paths.end(),
                               [V](const AccessPath &P) {
                                 return P.base() == V;
                               }),
                Paths.end());
  }

  /// Removes every path that dereferences field \p F.
  void eraseField(Symbol F) {
    Paths.erase(std::remove_if(Paths.begin(), Paths.end(),
                               [F](const AccessPath &P) {
                                 return P.usesField(F);
                               }),
                Paths.end());
  }

  template <typename Pred> void eraseIf(Pred P) {
    Paths.erase(std::remove_if(Paths.begin(), Paths.end(), P), Paths.end());
  }

  bool empty() const { return Paths.empty(); }
  size_t size() const { return Paths.size(); }
  const std::vector<AccessPath> &paths() const { return Paths; }
  auto begin() const { return Paths.begin(); }
  auto end() const { return Paths.end(); }

  friend bool operator==(const ApSet &A, const ApSet &B) {
    return A.Paths == B.Paths;
  }
  friend bool operator!=(const ApSet &A, const ApSet &B) {
    return !(A == B);
  }
  friend bool operator<(const ApSet &A, const ApSet &B) {
    return A.Paths < B.Paths;
  }

  std::string str(const SymbolTable &Syms) const;

private:
  void normalize() {
    std::sort(Paths.begin(), Paths.end());
    Paths.erase(std::unique(Paths.begin(), Paths.end()), Paths.end());
  }

  std::vector<AccessPath> Paths;
};

/// One abstract state (h, t, A, N), or Lambda. States are immutable
/// after construction, so the 64-bit hash every interning table keys on
/// is computed once here and cached — hashing a state again is a single
/// load instead of a walk over both access-path sets.
class TsAbstractState {
public:
  /// The Lambda ("no tracked object") state.
  TsAbstractState() : H(LambdaSite), T(0), Hash(LambdaHash) {}

  TsAbstractState(SiteId H, TState T, ApSet Must, ApSet MustNot)
      : H(H), T(T), Must(std::move(Must)), MustNot(std::move(MustNot)) {
    assert(H != LambdaSite && "use the default constructor for Lambda");
#ifndef NDEBUG
    // Keep A and N disjoint: a path cannot both must- and must-not-alias.
    for (const AccessPath &P : this->Must)
      assert(!this->MustNot.contains(P) && "must/must-not sets overlap");
#endif
    Hash = computeHash();
  }

  static TsAbstractState lambda() { return TsAbstractState(); }

  bool isLambda() const { return H == LambdaSite; }
  SiteId site() const {
    assert(!isLambda());
    return H;
  }
  TState tstate() const {
    assert(!isLambda());
    return T;
  }
  const ApSet &must() const { return Must; }
  const ApSet &mustNot() const { return MustNot; }

  /// The hash cached at construction.
  uint64_t hashValue() const { return Hash; }

  friend bool operator==(const TsAbstractState &A, const TsAbstractState &B) {
    // Unequal cached hashes reject without touching the path sets.
    return A.Hash == B.Hash && A.H == B.H && A.T == B.T &&
           A.Must == B.Must && A.MustNot == B.MustNot;
  }
  friend bool operator!=(const TsAbstractState &A, const TsAbstractState &B) {
    return !(A == B);
  }
  friend bool operator<(const TsAbstractState &A, const TsAbstractState &B) {
    if (A.H != B.H)
      return A.H < B.H;
    if (A.T != B.T)
      return A.T < B.T;
    if (A.Must != B.Must)
      return A.Must < B.Must;
    return A.MustNot < B.MustNot;
  }

  std::string str(const Program &Prog) const;

private:
  static constexpr uint64_t LambdaHash = 0x5bd1e995;

  static uint64_t hashApSet(const ApSet &S) {
    uint64_t H = 0x9e3779b97f4a7c15ULL;
    std::hash<AccessPath> PH;
    for (const AccessPath &P : S)
      H = H * 0x100000001b3ULL + PH(P);
    return H;
  }

  uint64_t computeHash() const {
    uint64_t Hv = std::hash<uint64_t>()(
        (static_cast<uint64_t>(H) << 16) | T);
    Hv = Hv * 31 + hashApSet(Must);
    Hv = Hv * 31 + hashApSet(MustNot);
    return Hv;
  }

  SiteId H;
  TState T;
  ApSet Must;
  ApSet MustNot;
  uint64_t Hash; ///< Cached computeHash(); LambdaHash for Lambda.
};

} // namespace swift

namespace std {
template <> struct hash<swift::ApSet> {
  size_t operator()(const swift::ApSet &S) const noexcept {
    size_t H = 0x9e3779b97f4a7c15ULL;
    std::hash<swift::AccessPath> PH;
    for (const swift::AccessPath &P : S)
      H = H * 0x100000001b3ULL + PH(P);
    return H;
  }
};

template <> struct hash<swift::TsAbstractState> {
  size_t operator()(const swift::TsAbstractState &S) const noexcept {
    return static_cast<size_t>(S.hashValue());
  }
};
} // namespace std

#endif // SWIFT_TYPESTATE_ABSTRACTSTATE_H
