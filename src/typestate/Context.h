//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The immutable environment of one typestate-analysis run: the program,
/// the typestate class under verification (one property per run, as in the
/// paper's evaluation), and the oracles it consumes — may-alias for weak
/// updates, mod-ref for call-return framing, and the call graph for
/// bottom-up ordering.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_TYPESTATE_CONTEXT_H
#define SWIFT_TYPESTATE_CONTEXT_H

#include "alias/AliasAnalysis.h"
#include "ir/CallGraph.h"
#include "ir/ModRef.h"
#include "ir/Program.h"
#include "ir/TypestateSpec.h"

#include <cassert>
#include <memory>

namespace swift {

class TsContext {
public:
  /// Builds a context for verifying class \p TrackedClass of \p Prog,
  /// computing the alias/mod-ref/call-graph oracles.
  TsContext(const Program &Prog, Symbol TrackedClass)
      : Prog(Prog), Spec(Prog.specFor(TrackedClass)),
        CG(std::make_unique<CallGraph>(Prog)),
        Aliases(std::make_unique<AliasAnalysis>(Prog)),
        Mods(std::make_unique<ModRef>(Prog, *CG)) {
    assert(Spec && "tracked class has no typestate spec");
  }

  const Program &program() const { return Prog; }
  const TypestateSpec &spec() const { return *Spec; }
  const CallGraph &callGraph() const { return *CG; }
  const ModRef &modRef() const { return *Mods; }
  const AliasAnalysis &aliases() const { return *Aliases; }

  /// Does \p Site allocate objects of the tracked class?
  bool isTrackedSite(SiteId Site) const {
    return Prog.site(Site).Class == Spec->name();
  }

  /// The may-alias oracle: may \p V in \p P point to site \p H?
  bool mayAlias(ProcId P, Symbol V, SiteId H) const {
    return Aliases->mayPointTo(P, V, H);
  }

private:
  const Program &Prog;
  const TypestateSpec *Spec;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<AliasAnalysis> Aliases;
  std::unique_ptr<ModRef> Mods;
};

} // namespace swift

#endif // SWIFT_TYPESTATE_CONTEXT_H
