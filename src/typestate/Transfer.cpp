//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "typestate/Transfer.h"

#include <cassert>

using namespace swift;

std::atomic<bool> swift::test::InjectTsCallWeakUpdateBug{false};

std::vector<TsAbstractState> swift::tsTransfer(const TsContext &Ctx,
                                               ProcId Proc,
                                               const Command &Cmd,
                                               const TsAbstractState &S) {
  assert(Cmd.Kind != CmdKind::Call && "calls are handled by the solver");

  if (S.isLambda()) {
    // Lambda tracks "no object"; only a tracked-class allocation spawns a
    // tuple, and Lambda itself always survives.
    if (Cmd.Kind == CmdKind::Alloc && Ctx.isTrackedSite(Cmd.Site)) {
      ApSet Must;
      Must.insert(AccessPath(Cmd.Dst));
      return {TsAbstractState::lambda(),
              TsAbstractState(Cmd.Site, Ctx.spec().initState(),
                              std::move(Must), ApSet())};
    }
    return {TsAbstractState::lambda()};
  }

  SiteId H = S.site();
  TState T = S.tstate();
  ApSet A = S.must();
  ApSet N = S.mustNot();

  switch (Cmd.Kind) {
  case CmdKind::Nop:
    return {S};

  case CmdKind::Alloc:
    // The existing object is not the freshly allocated one: v definitely
    // does not point to it (even if the sites coincide in a loop).
    A.eraseBase(Cmd.Dst);
    N.eraseBase(Cmd.Dst);
    N.insert(AccessPath(Cmd.Dst));
    return {TsAbstractState(H, T, std::move(A), std::move(N))};

  case CmdKind::Copy: {
    if (Cmd.Dst == Cmd.Src)
      return {S};
    bool SrcMust = A.contains(AccessPath(Cmd.Src));
    bool SrcNot = N.contains(AccessPath(Cmd.Src));
    A.eraseBase(Cmd.Dst);
    N.eraseBase(Cmd.Dst);
    if (SrcMust)
      A.insert(AccessPath(Cmd.Dst));
    else if (SrcNot)
      N.insert(AccessPath(Cmd.Dst));
    return {TsAbstractState(H, T, std::move(A), std::move(N))};
  }

  case CmdKind::AssignNull:
    A.eraseBase(Cmd.Dst);
    N.eraseBase(Cmd.Dst);
    N.insert(AccessPath(Cmd.Dst));
    return {TsAbstractState(H, T, std::move(A), std::move(N))};

  case CmdKind::Load: {
    AccessPath SrcPath(Cmd.Src, Cmd.Field);
    bool SrcMust = A.contains(SrcPath);
    bool SrcNot = N.contains(SrcPath);
    // A self-load v = v.f first consults the old v.f fact, then rebinds v.
    A.eraseBase(Cmd.Dst);
    N.eraseBase(Cmd.Dst);
    if (SrcMust)
      A.insert(AccessPath(Cmd.Dst));
    else if (SrcNot)
      N.insert(AccessPath(Cmd.Dst));
    return {TsAbstractState(H, T, std::move(A), std::move(N))};
  }

  case CmdKind::Store: {
    bool SrcMust = A.contains(AccessPath(Cmd.Src));
    bool SrcNot = N.contains(AccessPath(Cmd.Src));
    // Any path using field f may have been redirected by this store.
    A.eraseField(Cmd.Field);
    N.eraseField(Cmd.Field);
    AccessPath Target(Cmd.Dst, Cmd.Field);
    if (SrcMust)
      A.insert(Target);
    else if (SrcNot)
      N.insert(Target);
    return {TsAbstractState(H, T, std::move(A), std::move(N))};
  }

  case CmdKind::TsCall: {
    AccessPath Recv(Cmd.Src);
    if (A.contains(Recv)) {
      // Strong update: the receiver definitely is this object.
      TState T2 = tsApplyMethod(Ctx.spec(), Cmd.Method, T);
      return {TsAbstractState(H, T2, std::move(A), std::move(N))};
    }
    if (N.contains(Recv))
      return {S}; // Definitely a different object.
    if (Ctx.mayAlias(Proc, Cmd.Src, H)) {
      if (test::InjectTsCallWeakUpdateBug.load(std::memory_order_relaxed))
        return {S}; // Injected fault: drop the weak-update error.
      // Weak update: the receiver may be this object; conservatively go to
      // error (the paper's B3 case).
      return {TsAbstractState(H, Ctx.spec().errorState(), std::move(A),
                              std::move(N))};
    }
    return {S}; // May-alias analysis proves it is a different object (B4).
  }

  case CmdKind::Call:
    break;
  }
  assert(false && "unhandled command kind");
  return {S};
}
