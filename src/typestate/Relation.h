//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract relations of the bottom-up typestate analysis (the paper's
/// Figure 3, generalized to the evaluated 4-tuple analysis). Two kinds:
///
///  * Alloc relations { (Lambda, Out) }: the procedure allocates a tracked
///    object whose state at the current point is the concrete tuple Out.
///    They are generated from the implicit Lambda identity at tracked
///    allocation commands and stay concrete, so they never case-split.
///
///  * Trans relations { (s, T(s)) | s satisfies Phi } where
///    T(h, t, A, N) = (h, Iota(t), (A \ KillA) U GenA, (N \ KillN) U GenN).
///    These generalize the paper's (iota, a0, a1, phi) form: the must and
///    must-not updates are kill/gen, the typestate update is a total
///    function on the tracked automaton's states.
///
/// Well-formedness invariant: every GenA path is killed by KillN and vice
/// versa, so applying a relation to a well-formed state yields a
/// well-formed (disjoint) state.
///
/// The implicit identity on Lambda { (Lambda, Lambda) } is part of every
/// relation set but never materialized; the solvers thread it explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_TYPESTATE_RELATION_H
#define SWIFT_TYPESTATE_RELATION_H

#include "typestate/AbstractState.h"
#include "typestate/Context.h"
#include "typestate/KillSpec.h"
#include "typestate/Predicate.h"

#include <optional>
#include <string>
#include <vector>

namespace swift {

class TsRelation {
public:
  enum class Kind : uint8_t { Alloc, Trans };

  /// The relation {(Lambda, Out)}.
  static TsRelation makeAlloc(TsAbstractState Out);

  /// The identity Trans relation over a \p NumStates automaton.
  static TsRelation makeIdentity(size_t NumStates);

  static TsRelation makeTrans(std::vector<TState> Iota, KillSpec KillA,
                              ApSet GenA, KillSpec KillN, ApSet GenN,
                              TsPred Phi);

  Kind kind() const { return K; }
  bool isAlloc() const { return K == Kind::Alloc; }

  const TsAbstractState &out() const {
    assert(isAlloc());
    return Out;
  }
  const std::vector<TState> &iota() const { return Iota; }
  const KillSpec &killA() const { return KillA; }
  const ApSet &genA() const { return GenA; }
  const KillSpec &killN() const { return KillN; }
  const ApSet &genN() const { return GenN; }
  const TsPred &phi() const { return Phi; }

  /// Is \p S in the relation's domain?
  bool domContains(const TsContext &Ctx, const TsAbstractState &S) const {
    if (isAlloc())
      return S.isLambda();
    return !S.isLambda() && Phi.satisfiedBy(Ctx, S);
  }

  /// Applies the relation; nullopt when \p S is outside the domain.
  std::optional<TsAbstractState> apply(const TsContext &Ctx,
                                       const TsAbstractState &S) const;

  /// Applies the Trans transform part to \p S unconditionally (Phi is not
  /// checked). \p S must not be Lambda.
  TsAbstractState transform(const TsAbstractState &S) const;

  friend bool operator==(const TsRelation &A, const TsRelation &B) {
    if (A.K != B.K)
      return false;
    if (A.K == Kind::Alloc)
      return A.Out == B.Out;
    return A.Iota == B.Iota && A.KillA == B.KillA && A.GenA == B.GenA &&
           A.KillN == B.KillN && A.GenN == B.GenN && A.Phi == B.Phi;
  }
  friend bool operator!=(const TsRelation &A, const TsRelation &B) {
    return !(A == B);
  }
  friend bool operator<(const TsRelation &A, const TsRelation &B);

  std::string str(const Program &Prog) const;

private:
  TsRelation() = default;

  Kind K = Kind::Trans;
  TsAbstractState Out; ///< Alloc only.
  std::vector<TState> Iota;
  KillSpec KillA, KillN;
  ApSet GenA, GenN;
  TsPred Phi;
};

bool operator<(const TsRelation &A, const TsRelation &B);

//===----------------------------------------------------------------------===//
// Relation-domain operators (rtrans / rcomp / wp of the paper's Figure 3)
//===----------------------------------------------------------------------===//

/// Weakest precondition of \p Post through Trans relation \p R: the
/// predicate holding of an input state iff \p Post holds of R's output.
/// nullopt encodes `false`.
std::optional<TsPred> tsWpPred(const TsRelation &R, const TsPred &Post);

/// Relation composition (rcomp). nullopt when the composition is empty.
std::optional<TsRelation> tsRcomp(const TsContext &Ctx, const TsRelation &R1,
                                  const TsRelation &R2);

/// rtrans(c)(id): the primitive command's own relations, one per input
/// case. Their domains partition the non-Lambda states.
std::vector<TsRelation> tsPrimRels(const TsContext &Ctx, ProcId Proc,
                                   const Command &Cmd);

/// rtrans(c)(R): extends \p R with the state change of \p Cmd (must not be
/// a call).
std::vector<TsRelation> tsRtrans(const TsContext &Ctx, ProcId Proc,
                                 const Command &Cmd, const TsRelation &R);

/// The relations \p Cmd spawns from the implicit Lambda identity (a fresh
/// Alloc relation at tracked allocation sites).
std::vector<TsRelation> tsLambdaEmits(const TsContext &Ctx,
                                      const Command &Cmd);

} // namespace swift

namespace std {
template <> struct hash<swift::TsRelation> {
  size_t operator()(const swift::TsRelation &R) const noexcept {
    if (R.isAlloc())
      return std::hash<swift::TsAbstractState>()(R.out()) * 2 + 1;
    size_t H = 0;
    for (swift::TState T : R.iota())
      H = H * 31 + T;
    H = H * 33 + std::hash<swift::KillSpec>()(R.killA());
    H = H * 33 + std::hash<swift::ApSet>()(R.genA());
    H = H * 33 + std::hash<swift::KillSpec>()(R.killN());
    H = H * 33 + std::hash<swift::ApSet>()(R.genN());
    H = H * 33 + std::hash<swift::TsPred>()(R.phi());
    return H * 2;
  }
};
} // namespace std

#endif // SWIFT_TYPESTATE_RELATION_H
