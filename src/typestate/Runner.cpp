//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "typestate/Runner.h"

#include "framework/RelationalSolver.h"
#include "framework/Tabulation.h"

using namespace swift;

namespace {

/// Collects errors and summary counts out of a finished tabulation.
/// \p HarvestPartial: governed runs harvest even on budget exhaustion —
/// tabulation only accumulates, so the partial facts are a sound subset
/// of the fixpoint's. Ungoverned runs keep the historical contract that a
/// timed-out run reports only the timeout.
TsRunResult harvest(const TsContext &Ctx,
                    TabulationSolver<TsAnalysis> &Solver, Budget &Bud,
                    bool Finished, Stats Stat, bool HarvestPartial = false) {
  const Program &Prog = Ctx.program();
  TsRunResult R;
  R.Timeout = !Finished;
  R.Seconds = Bud.seconds();
  R.Steps = Bud.steps();
  R.Stat = std::move(Stat);

  R.TdSummariesPerProc.resize(Prog.numProcs());
  // Same contract as the bottom-up runner: a timed-out run reports only
  // the timeout, never partially harvested summaries/errors/exit states.
  if (!Finished && !HarvestPartial)
    return R;
  for (ProcId P = 0; P != Prog.numProcs(); ++P)
    R.TdSummariesPerProc[P] = Solver.numTdSummaries(P);
  R.TdSummaries = Solver.totalTdSummaries();
  R.BuRelations = Solver.totalBuRelations();

  TState Error = Ctx.spec().errorState();
  Solver.forEachFact([&](ProcId P, NodeId N, const TsAbstractState &Entry,
                         const TsAbstractState &Cur) {
    (void)Entry;
    if (!Cur.isLambda() && Cur.tstate() == Error) {
      R.ErrorSites.insert(Cur.site());
      R.ErrorPoints.insert(TsError{Cur.site(), P, N});
    }
  });
  Solver.forEachObserved([&](ProcId P, NodeId N,
                             const TsAbstractState &S) {
    assert(!S.isLambda() && S.tstate() == Error);
    R.ErrorSites.insert(S.site());
    // The report point is the serving call site; the true point is inside
    // the (not re-analyzed) callee.
    R.ErrorPoints.insert(TsError{S.site(), P, N});
  });
  Solver.forEachSummary(Prog.mainProc(),
                        [&](const TsAbstractState &Entry,
                            const TsAbstractState &Exit) {
                          if (Entry.isLambda())
                            R.MainExit.insert(Exit);
                        });
  return R;
}

TsRunResult runTabulating(const TsContext &Ctx, const SwiftRunConfig &SC,
                          RunLimits Limits) {
  Budget Bud(Limits.MaxSteps, Limits.MaxSeconds);
  Stats Stat;
  TabulationSolver<TsAnalysis>::Config Cfg;
  Cfg.K = SC.K;
  Cfg.Theta = SC.Theta;
  Cfg.AsyncBu = SC.AsyncBu;
  Cfg.BuThreads = SC.Threads;
  Cfg.ObservationManifest = SC.ObservationManifest;
  TabulationSolver<TsAnalysis> Solver(Ctx, Ctx.program(), Ctx.callGraph(),
                                      Cfg, Bud, Stat);
  bool Finished = Solver.run();
  return harvest(Ctx, Solver, Bud, Finished, std::move(Stat));
}

} // namespace

TsRunResult swift::runTypestateTd(const TsContext &Ctx, RunLimits Limits) {
  SwiftRunConfig SC;
  SC.K = NoBuTrigger;
  SC.Theta = 1;
  return runTabulating(Ctx, SC, Limits);
}

TsRunResult swift::runTypestateSwift(const TsContext &Ctx, uint64_t K,
                                     uint64_t Theta, RunLimits Limits,
                                     bool AsyncBu, unsigned Threads) {
  SwiftRunConfig SC;
  SC.K = K;
  SC.Theta = Theta;
  SC.AsyncBu = AsyncBu;
  SC.Threads = Threads;
  return runTabulating(Ctx, SC, Limits);
}

TsRunResult swift::runTypestateSwift(const TsContext &Ctx,
                                     const SwiftRunConfig &Cfg,
                                     RunLimits Limits) {
  return runTabulating(Ctx, Cfg, Limits);
}

const char *swift::tsVerdictName(TsVerdict V) {
  switch (V) {
  case TsVerdict::Proved:
    return "proved";
  case TsVerdict::ErrorReported:
    return "error";
  case TsVerdict::Unresolved:
    return "unresolved";
  }
  return "?";
}

TsGovernedResult swift::runTypestateGoverned(const TsContext &Ctx,
                                             const GovernedRunOptions &Opts) {
  const Program &Prog = Ctx.program();
  ResourceGovernor Gov(Opts.Limits);
  // Publish the governor for signal handlers; cleared on every exit path
  // before Gov dies (the slot outlives the run, the governor does not).
  struct SlotGuard {
    std::atomic<ResourceGovernor *> *Slot;
    ~SlotGuard() {
      if (Slot)
        Slot->store(nullptr, std::memory_order_release);
    }
  } Guard{Opts.GovSlot};
  if (Opts.GovSlot)
    Opts.GovSlot->store(&Gov, std::memory_order_release);
  Stats Stat;
  TabulationSolver<TsAnalysis>::Config Cfg;
  Cfg.K = Opts.Config.K;
  Cfg.Theta = Opts.Config.Theta;
  Cfg.AsyncBu = Opts.Config.AsyncBu;
  Cfg.BuThreads = Opts.Config.Threads;
  Cfg.ObservationManifest = Opts.Config.ObservationManifest;
  Cfg.Gov = &Gov;
  TabulationSolver<TsAnalysis> Solver(Ctx, Prog, Ctx.callGraph(), Cfg,
                                      Gov.budget(), Stat);
  if (Opts.ResumeFrom)
    Solver.restore(*Opts.ResumeFrom);
  bool Finished = Solver.run();
  Gov.recompute(); // Final telemetry, past the poll throttle.

  TsGovernedResult G;
  G.Partial = !Finished;
  G.Peak = Gov.level();
  G.PeakMemoryBytes = Gov.peakMemoryBytes();

  // Checkpoint before harvesting: snapshot() wants the solver untouched,
  // and harvest only reads.
  if (Opts.CheckpointOut && !Finished) {
    *Opts.CheckpointOut = Solver.snapshot();
    Opts.CheckpointOut->StepsConsumed = Gov.budget().steps();
  }

  G.Run = harvest(Ctx, Solver, Gov.budget(), Finished, std::move(Stat),
                  /*HarvestPartial=*/true);

  // Per-site verdicts. Untracked sites are trivially Proved; a tracked
  // site without a reported error is Proved only when the run completed —
  // a partial run must not claim absence of errors it did not finish
  // looking for.
  G.Verdicts.assign(Prog.numSites(), TsVerdict::Proved);
  for (uint32_t S = 0; S != Prog.numSites(); ++S) {
    if (!Ctx.isTrackedSite(S))
      continue;
    if (G.Run.ErrorSites.count(S))
      G.Verdicts[S] = TsVerdict::ErrorReported;
    else if (G.Partial)
      G.Verdicts[S] = TsVerdict::Unresolved;
  }
  return G;
}

TsRunResult swift::runTypestateBu(const TsContext &Ctx, RunLimits Limits,
                                  unsigned Threads) {
  const Program &Prog = Ctx.program();
  Budget Bud(Limits.MaxSteps, Limits.MaxSeconds);
  Stats Stat;
  RelationalSolver<TsAnalysis> Solver(
      Ctx, Prog, Ctx.callGraph(), NoPruning,
      [](ProcId) -> const std::unordered_map<TsAbstractState, uint64_t> * {
        return nullptr;
      },
      Bud, Stat, DefaultMaxRelsPerPoint, /*CollectObservations=*/true,
      Threads);

  std::vector<ProcId> All = Ctx.callGraph().reachableFrom(Prog.mainProc());
  bool Finished = Solver.run(All);

  TsRunResult R;
  R.Timeout = !Finished;
  R.Seconds = Bud.seconds();
  R.Steps = Bud.steps();
  R.Stat = std::move(Stat);
  R.TdSummariesPerProc.resize(Prog.numProcs());
  // On timeout, report nothing but the timeout itself: a partially
  // populated relation count (or main-exit set) is indistinguishable from
  // a completed run's, and consumers must key off Timeout alone.
  if (!Finished)
    return R;
  R.BuRelations = Solver.totalRelations();

  // Instantiate main's summary on the initial (Lambda) state: the only
  // top-down work the bottom-up approach performs.
  const auto &Main = Solver.summary(Prog.mainProc());
  TState Error = Ctx.spec().errorState();
  if (Main.LambdaExit)
    R.MainExit.insert(TsAbstractState::lambda());
  for (const TsRelation &Rel : Main.Rels)
    if (std::optional<TsAbstractState> Out =
            Rel.apply(Ctx, TsAbstractState::lambda()))
      R.MainExit.insert(*Out);
  for (const TsAbstractState &S : R.MainExit)
    if (!S.isLambda() && S.tstate() == Error) {
      R.ErrorSites.insert(S.site());
      R.ErrorPoints.insert(
          TsError{S.site(), Prog.mainProc(), Prog.proc(Prog.mainProc()).exit()});
    }
  // Errors at internal points of any procedure, via the observation
  // manifest instantiated on the initial state.
  for (const TsRelation &Rel : Main.ObsRels)
    if (std::optional<TsAbstractState> Out =
            Rel.apply(Ctx, TsAbstractState::lambda()))
      if (!Out->isLambda() && Out->tstate() == Error) {
        R.ErrorSites.insert(Out->site());
        R.ErrorPoints.insert(TsError{Out->site(), Prog.mainProc(),
                                     Prog.proc(Prog.mainProc()).exit()});
      }
  return R;
}

std::vector<TsConfigRun> swift::runAllConfigs(const TsContext &Ctx,
                                              RunLimits Limits,
                                              const AllConfigsOptions &Opts) {
  std::vector<TsConfigRun> Runs;

  auto SwiftName = [](const SwiftRunConfig &SC) {
    std::string N = "swift/k" + std::to_string(SC.K) + "/th" +
                    std::to_string(SC.Theta);
    if (SC.AsyncBu)
      N += "/async";
    if (SC.Threads != 1)
      N += "/t" + std::to_string(SC.Threads);
    if (!SC.ObservationManifest)
      N += "/nomanifest";
    return N;
  };
  // Once a (k, theta) times out, skip its other thread/async/manifest
  // variants: the step budget bounds total work, so they would burn the
  // same wall budget just to time out again.
  std::set<std::pair<uint64_t, uint64_t>> TimedOutKT;
  auto AddSwift = [&](const SwiftRunConfig &SC) {
    if (TimedOutKT.count({SC.K, SC.Theta}))
      return;
    TsConfigRun R;
    R.Name = SwiftName(SC);
    R.Kind = TsConfigRun::Mode::Swift;
    R.Swift = SC;
    R.Result = runTypestateSwift(Ctx, SC, Limits);
    if (R.Result.Timeout)
      TimedOutKT.insert({SC.K, SC.Theta});
    Runs.push_back(std::move(R));
  };

  // TD first: it is the reference every coincidence check compares against.
  {
    TsConfigRun R;
    R.Name = "td";
    R.Kind = TsConfigRun::Mode::Td;
    R.Result = runTypestateTd(Ctx, Limits);
    Runs.push_back(std::move(R));
  }

  if (Opts.IncludeBu)
    for (unsigned T : Opts.ThreadCounts) {
      TsConfigRun R;
      R.Name = "bu/t" + std::to_string(T);
      R.Kind = TsConfigRun::Mode::Bu;
      R.BuThreads = T;
      R.Result = runTypestateBu(Ctx, Limits, T);
      bool TimedOut = R.Result.Timeout;
      Runs.push_back(std::move(R));
      if (TimedOut)
        break; // pure BU blow-up: higher thread counts do the same work
    }

  // SWIFT sync at several (k, theta): the trigger fires at different
  // times, so these cover very different mixes of analyzed vs served
  // calls. All must coincide with TD exactly (Theorem 3.1).
  const std::pair<uint64_t, uint64_t> KTheta[] = {{0, 1}, {1, 1}, {2, 1},
                                                  {1, 2}, {3, 2}, {5, 2}};
  for (auto [K, Theta] : KTheta) {
    SwiftRunConfig SC;
    SC.K = K;
    SC.Theta = Theta;
    AddSwift(SC);
  }

  // Bottom-up worker threads: results must be bit-identical at every
  // count, so two representative (k, theta) points suffice per count.
  for (unsigned T : Opts.ThreadCounts) {
    if (T == 1)
      continue; // covered above
    for (auto [K, Theta] :
         {std::pair<uint64_t, uint64_t>{2, 1}, {5, 2}}) {
      SwiftRunConfig SC;
      SC.K = K;
      SC.Theta = Theta;
      SC.Threads = T;
      AddSwift(SC);
    }
  }

  // The asynchronous trigger (Section 7): the summary install point moves,
  // the result must not.
  if (Opts.IncludeAsync)
    for (auto [K, Theta] :
         {std::pair<uint64_t, uint64_t>{1, 1}, {2, 2}}) {
      for (unsigned T : {1u, 4u}) {
        SwiftRunConfig SC;
        SC.K = K;
        SC.Theta = Theta;
        SC.AsyncBu = true;
        SC.Threads = T;
        AddSwift(SC);
      }
    }

  // Manifest off: value results must still coincide; error reporting is
  // allowed to under-approximate TD's (never over-approximate).
  if (Opts.IncludeManifestOff)
    for (auto [K, Theta] :
         {std::pair<uint64_t, uint64_t>{2, 1}, {5, 2}}) {
      SwiftRunConfig SC;
      SC.K = K;
      SC.Theta = Theta;
      SC.ObservationManifest = false;
      AddSwift(SC);
    }

  return Runs;
}
