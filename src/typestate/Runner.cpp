//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "typestate/Runner.h"

#include "framework/RelationalSolver.h"
#include "framework/Tabulation.h"

using namespace swift;

namespace {

/// Collects errors and summary counts out of a finished tabulation.
TsRunResult harvest(const TsContext &Ctx,
                    TabulationSolver<TsAnalysis> &Solver, Budget &Bud,
                    bool Finished, Stats Stat) {
  const Program &Prog = Ctx.program();
  TsRunResult R;
  R.Timeout = !Finished;
  R.Seconds = Bud.seconds();
  R.Steps = Bud.steps();
  R.Stat = std::move(Stat);

  R.TdSummariesPerProc.resize(Prog.numProcs());
  for (ProcId P = 0; P != Prog.numProcs(); ++P)
    R.TdSummariesPerProc[P] = Solver.numTdSummaries(P);
  R.TdSummaries = Solver.totalTdSummaries();
  R.BuRelations = Solver.totalBuRelations();

  TState Error = Ctx.spec().errorState();
  Solver.forEachFact([&](ProcId P, NodeId N, const TsAbstractState &Entry,
                         const TsAbstractState &Cur) {
    (void)Entry;
    if (!Cur.isLambda() && Cur.tstate() == Error) {
      R.ErrorSites.insert(Cur.site());
      R.ErrorPoints.insert(TsError{Cur.site(), P, N});
    }
  });
  Solver.forEachObserved([&](ProcId P, NodeId N,
                             const TsAbstractState &S) {
    assert(!S.isLambda() && S.tstate() == Error);
    R.ErrorSites.insert(S.site());
    // The report point is the serving call site; the true point is inside
    // the (not re-analyzed) callee.
    R.ErrorPoints.insert(TsError{S.site(), P, N});
  });
  Solver.forEachSummary(Prog.mainProc(),
                        [&](const TsAbstractState &Entry,
                            const TsAbstractState &Exit) {
                          if (Entry.isLambda())
                            R.MainExit.insert(Exit);
                        });
  return R;
}

TsRunResult runTabulating(const TsContext &Ctx, uint64_t K, uint64_t Theta,
                          RunLimits Limits, bool AsyncBu = false,
                          unsigned Threads = 1) {
  Budget Bud(Limits.MaxSteps, Limits.MaxSeconds);
  Stats Stat;
  TabulationSolver<TsAnalysis>::Config Cfg;
  Cfg.K = K;
  Cfg.Theta = Theta;
  Cfg.AsyncBu = AsyncBu;
  Cfg.BuThreads = Threads;
  TabulationSolver<TsAnalysis> Solver(Ctx, Ctx.program(), Ctx.callGraph(),
                                      Cfg, Bud, Stat);
  bool Finished = Solver.run();
  return harvest(Ctx, Solver, Bud, Finished, std::move(Stat));
}

} // namespace

TsRunResult swift::runTypestateTd(const TsContext &Ctx, RunLimits Limits) {
  return runTabulating(Ctx, NoBuTrigger, 1, Limits);
}

TsRunResult swift::runTypestateSwift(const TsContext &Ctx, uint64_t K,
                                     uint64_t Theta, RunLimits Limits,
                                     bool AsyncBu, unsigned Threads) {
  return runTabulating(Ctx, K, Theta, Limits, AsyncBu, Threads);
}

TsRunResult swift::runTypestateBu(const TsContext &Ctx, RunLimits Limits,
                                  unsigned Threads) {
  const Program &Prog = Ctx.program();
  Budget Bud(Limits.MaxSteps, Limits.MaxSeconds);
  Stats Stat;
  RelationalSolver<TsAnalysis> Solver(
      Ctx, Prog, Ctx.callGraph(), NoPruning,
      [](ProcId) -> const std::unordered_map<TsAbstractState, uint64_t> * {
        return nullptr;
      },
      Bud, Stat, DefaultMaxRelsPerPoint, /*CollectObservations=*/true,
      Threads);

  std::vector<ProcId> All = Ctx.callGraph().reachableFrom(Prog.mainProc());
  bool Finished = Solver.run(All);

  TsRunResult R;
  R.Timeout = !Finished;
  R.Seconds = Bud.seconds();
  R.Steps = Bud.steps();
  R.Stat = std::move(Stat);
  R.TdSummariesPerProc.resize(Prog.numProcs());
  R.BuRelations = Solver.totalRelations();
  if (!Finished)
    return R;

  // Instantiate main's summary on the initial (Lambda) state: the only
  // top-down work the bottom-up approach performs.
  const auto &Main = Solver.summary(Prog.mainProc());
  TState Error = Ctx.spec().errorState();
  if (Main.LambdaExit)
    R.MainExit.insert(TsAbstractState::lambda());
  for (const TsRelation &Rel : Main.Rels)
    if (std::optional<TsAbstractState> Out =
            Rel.apply(Ctx, TsAbstractState::lambda()))
      R.MainExit.insert(*Out);
  for (const TsAbstractState &S : R.MainExit)
    if (!S.isLambda() && S.tstate() == Error) {
      R.ErrorSites.insert(S.site());
      R.ErrorPoints.insert(
          TsError{S.site(), Prog.mainProc(), Prog.proc(Prog.mainProc()).exit()});
    }
  // Errors at internal points of any procedure, via the observation
  // manifest instantiated on the initial state.
  for (const TsRelation &Rel : Main.ObsRels)
    if (std::optional<TsAbstractState> Out =
            Rel.apply(Ctx, TsAbstractState::lambda()))
      if (!Out->isLambda() && Out->tstate() == Error) {
        R.ErrorSites.insert(Out->site());
        R.ErrorPoints.insert(TsError{Out->site(), Prog.mainProc(),
                                     Prog.proc(Prog.mainProc()).exit()});
      }
  return R;
}
