//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic kill sets of the bottom-up relation domain. A relation's
/// must / must-not update is A' = (A \ Kill) U Gen ("our kill/gen recipe",
/// paper Section 5.2); Gen is a small explicit path set while Kill is a
/// *pattern* over the unbounded path universe:
///
///   kills(p)  iff  base(p) in Bases
///              or  p uses a field in fieldsFor(base(p)),
///
/// where fieldsFor(b) is a per-base override (ByBase) falling back to
/// Default. The per-base override is what makes the domain closed under
/// call composition: paths based at an actual are killed according to the
/// *callee relation's* kill set (translated through the canonical formal),
/// while all other paths are killed according to the callee's mod-ref set.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_TYPESTATE_KILLSPEC_H
#define SWIFT_TYPESTATE_KILLSPEC_H

#include "ir/AccessPath.h"

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

namespace swift {

class KillSpec {
public:
  KillSpec() = default;

  bool kills(const AccessPath &P) const {
    if (std::binary_search(Bases.begin(), Bases.end(), P.base()))
      return true;
    const std::vector<Symbol> &Fields = fieldsFor(P.base());
    if (P.field1().isValid() &&
        std::binary_search(Fields.begin(), Fields.end(), P.field1()))
      return true;
    if (P.field2().isValid() &&
        std::binary_search(Fields.begin(), Fields.end(), P.field2()))
      return true;
    return false;
  }

  bool isEmpty() const {
    return Bases.empty() && Default.empty() && ByBase.empty();
  }

  /// Kills every path based at \p V.
  void addBase(Symbol V) {
    insertSorted(Bases, V);
    // A base kill subsumes any per-base field set.
    ByBase.erase(std::remove_if(ByBase.begin(), ByBase.end(),
                                [V](const auto &E) { return E.first == V; }),
                 ByBase.end());
  }

  /// Kills every path using field \p F, whatever its base.
  void addFieldEverywhere(Symbol F) {
    insertSorted(Default, F);
    for (auto &[B, Fields] : ByBase) {
      (void)B;
      insertSorted(Fields, F);
    }
    canonicalize();
  }

  /// Sets the field-kill set for base \p V (overriding Default).
  void setBaseFields(Symbol V, std::vector<Symbol> Fields) {
    if (std::binary_search(Bases.begin(), Bases.end(), V))
      return; // Already killed wholesale.
    std::sort(Fields.begin(), Fields.end());
    Fields.erase(std::unique(Fields.begin(), Fields.end()), Fields.end());
    auto It = std::lower_bound(
        ByBase.begin(), ByBase.end(), V,
        [](const auto &E, Symbol K) { return E.first < K; });
    if (It != ByBase.end() && It->first == V)
      It->second = std::move(Fields);
    else
      ByBase.insert(It, {V, std::move(Fields)});
    canonicalize();
  }

  /// Sequential composition: the result kills what either spec kills.
  void unionWith(const KillSpec &Other) {
    for (Symbol B : Other.Bases)
      addBase(B);

    // fieldsFor must become the pointwise union, so existing per-base
    // entries absorb Other's lookup and vice versa.
    std::vector<std::pair<Symbol, std::vector<Symbol>>> Merged;
    auto Keys = [](const KillSpec &S, std::vector<Symbol> &Out) {
      for (const auto &[B, Fs] : S.ByBase) {
        (void)Fs;
        Out.push_back(B);
      }
    };
    std::vector<Symbol> AllKeys;
    Keys(*this, AllKeys);
    Keys(Other, AllKeys);
    std::sort(AllKeys.begin(), AllKeys.end());
    AllKeys.erase(std::unique(AllKeys.begin(), AllKeys.end()),
                  AllKeys.end());
    for (Symbol B : AllKeys) {
      if (std::binary_search(Bases.begin(), Bases.end(), B))
        continue;
      std::vector<Symbol> U = fieldsFor(B);
      for (Symbol F : Other.fieldsFor(B))
        insertSorted(U, F);
      Merged.push_back({B, std::move(U)});
    }
    std::vector<Symbol> NewDefault = Default;
    for (Symbol F : Other.Default)
      insertSorted(NewDefault, F);
    Default = std::move(NewDefault);
    ByBase = std::move(Merged);
    canonicalize();
  }

  const std::vector<Symbol> &bases() const { return Bases; }
  const std::vector<Symbol> &defaultFields() const { return Default; }
  const std::vector<std::pair<Symbol, std::vector<Symbol>>> &
  byBase() const {
    return ByBase;
  }
  const std::vector<Symbol> &fieldsFor(Symbol Base) const {
    auto It = std::lower_bound(
        ByBase.begin(), ByBase.end(), Base,
        [](const auto &E, Symbol K) { return E.first < K; });
    if (It != ByBase.end() && It->first == Base)
      return It->second;
    return Default;
  }

  friend bool operator==(const KillSpec &A, const KillSpec &B) {
    return A.Bases == B.Bases && A.Default == B.Default &&
           A.ByBase == B.ByBase;
  }
  friend bool operator!=(const KillSpec &A, const KillSpec &B) {
    return !(A == B);
  }
  friend bool operator<(const KillSpec &A, const KillSpec &B) {
    if (A.Bases != B.Bases)
      return A.Bases < B.Bases;
    if (A.Default != B.Default)
      return A.Default < B.Default;
    return A.ByBase < B.ByBase;
  }

  std::string str(const SymbolTable &Syms) const;

private:
  static void insertSorted(std::vector<Symbol> &V, Symbol S) {
    auto It = std::lower_bound(V.begin(), V.end(), S);
    if (It == V.end() || *It != S)
      V.insert(It, S);
  }

  /// Drops ByBase entries that equal Default (so equal kill functions have
  /// equal representations).
  void canonicalize() {
    ByBase.erase(std::remove_if(ByBase.begin(), ByBase.end(),
                                [this](const auto &E) {
                                  return E.second == Default;
                                }),
                 ByBase.end());
  }

  std::vector<Symbol> Bases;   ///< Sorted.
  std::vector<Symbol> Default; ///< Sorted.
  std::vector<std::pair<Symbol, std::vector<Symbol>>> ByBase; ///< By key.
};

} // namespace swift

namespace std {
template <> struct hash<swift::KillSpec> {
  size_t operator()(const swift::KillSpec &K) const noexcept {
    size_t H = 0x9ddfea08eb382d69ULL;
    for (swift::Symbol B : K.bases())
      H = H * 31 + B.id();
    H = H * 131 + 7;
    for (swift::Symbol F : K.defaultFields())
      H = H * 31 + F.id();
    for (const auto &[B, Fs] : K.byBase()) {
      H = H * 131 + B.id();
      for (swift::Symbol F : Fs)
        H = H * 31 + F.id();
    }
    return H;
  }
};
} // namespace std

#endif // SWIFT_TYPESTATE_KILLSPEC_H
