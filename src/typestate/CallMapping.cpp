//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "typestate/CallMapping.h"

#include <cassert>

using namespace swift;

CallBinding::CallBinding(const TsContext &Ctx, ProcId CallerProc,
                         const Command &Call)
    : Ctxt(Ctx), Callee(Call.Callee), Result(Call.Dst),
      Ret(Ctx.program().retVar()) {
  (void)CallerProc;
  assert(Call.Kind == CmdKind::Call);
  const Procedure &CalleeProc = Ctx.program().proc(Callee);
  assert(Call.Args.size() == CalleeProc.params().size());
  for (size_t I = 0; I != Call.Args.size(); ++I) {
    Symbol Actual = Call.Args[I];
    Symbol Formal = CalleeProc.params()[I];
    bool Found = false;
    for (auto &[A, Fs] : ActualToFormals)
      if (A == Actual) {
        Fs.push_back(Formal);
        Found = true;
        break;
      }
    if (!Found)
      ActualToFormals.push_back({Actual, {Formal}});
  }
}

const std::vector<Symbol> &CallBinding::formalsOf(Symbol V) const {
  static const std::vector<Symbol> Empty;
  for (const auto &[A, Fs] : ActualToFormals)
    if (A == V)
      return Fs;
  return Empty;
}

Symbol CallBinding::actualOf(Symbol F) const {
  for (const auto &[A, Fs] : ActualToFormals)
    for (Symbol G : Fs)
      if (G == F)
        return A;
  return Symbol();
}

Symbol CallBinding::canonicalFormal(Symbol V) const {
  const Procedure &CalleeProc = Ctxt.program().proc(Callee);
  for (Symbol F : formalsOf(V))
    if (CalleeProc.isStableParam(F))
      return F;
  return Symbol();
}

bool CallBinding::calleeMods(Symbol F) const {
  return Ctxt.modRef().mayModField(Callee, F);
}

TsAbstractState swift::tsEnter(const CallBinding &B,
                               const TsAbstractState &S) {
  if (S.isLambda())
    return S;

  ApSet MustE, NotE;
  for (const AccessPath &P : S.must())
    for (Symbol F : B.formalsOf(P.base()))
      MustE.insert(P.withBase(F));
  for (const AccessPath &P : S.mustNot())
    for (Symbol F : B.formalsOf(P.base()))
      NotE.insert(P.withBase(F));
  return TsAbstractState(S.site(), S.tstate(), std::move(MustE),
                         std::move(NotE));
}

static void renameBackInto(const CallBinding &B, const ApSet &ExitSet,
                           ApSet &Out) {
  for (const AccessPath &Q : ExitSet) {
    AccessPath P = B.renameBack(Q);
    if (P.isValid())
      Out.insert(P);
  }
}

TsAbstractState swift::tsCombine(const CallBinding &B,
                                 const TsAbstractState &Frame,
                                 const TsAbstractState &Exit) {
  assert(!Frame.isLambda() && !Exit.isLambda());
  assert(Frame.site() == Exit.site() &&
         "frame/exit tuples describe different objects");

  ApSet A, N;
  for (const AccessPath &P : Frame.must())
    if (B.frameKeeps(P))
      A.insert(P);
  for (const AccessPath &P : Frame.mustNot())
    if (B.frameKeeps(P))
      N.insert(P);
  // The frame covers non-actual, non-result bases; renameBack only yields
  // actual- or result-based paths, so the two routes never clash and A / N
  // stay disjoint.
  renameBackInto(B, Exit.must(), A);
  renameBackInto(B, Exit.mustNot(), N);

  return TsAbstractState(Frame.site(), Exit.tstate(), std::move(A),
                         std::move(N));
}

TsAbstractState swift::tsCombineFresh(const CallBinding &B,
                                      const TsAbstractState &Exit) {
  assert(!Exit.isLambda());
  ApSet A, N;
  renameBackInto(B, Exit.must(), A);
  renameBackInto(B, Exit.mustNot(), N);
  return TsAbstractState(Exit.site(), Exit.tstate(), std::move(A),
                         std::move(N));
}
