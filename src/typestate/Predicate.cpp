//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "typestate/Predicate.h"

#include "ir/Program.h"

#include <algorithm>

using namespace swift;

TsPred::ApConstraint &TsPred::apEntry(const AccessPath &P) {
  auto It = std::lower_bound(Aps.begin(), Aps.end(), P,
                             [](const ApConstraint &C, const AccessPath &Q) {
                               return C.Path < Q;
                             });
  if (It == Aps.end() || It->Path != P)
    It = Aps.insert(It, ApConstraint{P, ThreeVal::Unk, ThreeVal::Unk});
  return *It;
}

bool TsPred::requireMust(const AccessPath &P, bool Yes) {
  ApConstraint &C = apEntry(P);
  ThreeVal Want = Yes ? ThreeVal::Yes : ThreeVal::No;
  if (C.InMust != ThreeVal::Unk && C.InMust != Want)
    return false;
  // Must and must-not sets are disjoint in well-formed states.
  if (Yes && C.InNot == ThreeVal::Yes)
    return false;
  C.InMust = Want;
  if (Yes && C.InNot == ThreeVal::Unk)
    C.InNot = ThreeVal::No;
  return true;
}

bool TsPred::requireNot(const AccessPath &P, bool Yes) {
  ApConstraint &C = apEntry(P);
  ThreeVal Want = Yes ? ThreeVal::Yes : ThreeVal::No;
  if (C.InNot != ThreeVal::Unk && C.InNot != Want)
    return false;
  if (Yes && C.InMust == ThreeVal::Yes)
    return false;
  C.InNot = Want;
  if (Yes && C.InMust == ThreeVal::Unk)
    C.InMust = ThreeVal::No;
  return true;
}

bool TsPred::requireMay(ProcId P, Symbol V, bool Want) {
  auto It = std::lower_bound(
      Mays.begin(), Mays.end(), std::make_pair(P, V),
      [](const MayConstraint &C, const std::pair<ProcId, Symbol> &K) {
        if (C.Proc != K.first)
          return C.Proc < K.first;
        return C.Var < K.second;
      });
  if (It != Mays.end() && It->Proc == P && It->Var == V)
    return It->Want == Want;
  Mays.insert(It, MayConstraint{P, V, Want});
  return true;
}

bool TsPred::conjoin(const TsPred &Other) {
  for (const ApConstraint &C : Other.Aps) {
    if (C.InMust != ThreeVal::Unk &&
        !requireMust(C.Path, C.InMust == ThreeVal::Yes))
      return false;
    if (C.InNot != ThreeVal::Unk &&
        !requireNot(C.Path, C.InNot == ThreeVal::Yes))
      return false;
  }
  for (const MayConstraint &C : Other.Mays)
    if (!requireMay(C.Proc, C.Var, C.Want))
      return false;
  return true;
}

ThreeVal TsPred::mustStatus(const AccessPath &P) const {
  auto It = std::lower_bound(Aps.begin(), Aps.end(), P,
                             [](const ApConstraint &C, const AccessPath &Q) {
                               return C.Path < Q;
                             });
  if (It == Aps.end() || It->Path != P)
    return ThreeVal::Unk;
  return It->InMust;
}

ThreeVal TsPred::notStatus(const AccessPath &P) const {
  auto It = std::lower_bound(Aps.begin(), Aps.end(), P,
                             [](const ApConstraint &C, const AccessPath &Q) {
                               return C.Path < Q;
                             });
  if (It == Aps.end() || It->Path != P)
    return ThreeVal::Unk;
  return It->InNot;
}

bool TsPred::satisfiedBy(const TsContext &Ctx,
                         const TsAbstractState &S) const {
  if (S.isLambda())
    return false;
  for (const ApConstraint &C : Aps) {
    if (C.InMust == ThreeVal::Yes && !S.must().contains(C.Path))
      return false;
    if (C.InMust == ThreeVal::No && S.must().contains(C.Path))
      return false;
    if (C.InNot == ThreeVal::Yes && !S.mustNot().contains(C.Path))
      return false;
    if (C.InNot == ThreeVal::No && S.mustNot().contains(C.Path))
      return false;
  }
  for (const MayConstraint &C : Mays)
    if (Ctx.mayAlias(C.Proc, C.Var, S.site()) != C.Want)
      return false;
  return true;
}

bool TsPred::implies(const TsPred &Weaker) const {
  for (const ApConstraint &C : Weaker.Aps) {
    if (C.InMust != ThreeVal::Unk && mustStatus(C.Path) != C.InMust)
      return false;
    if (C.InNot != ThreeVal::Unk && notStatus(C.Path) != C.InNot)
      return false;
  }
  for (const MayConstraint &C : Weaker.Mays) {
    bool Found = false;
    for (const MayConstraint &Mine : Mays)
      if (Mine.Proc == C.Proc && Mine.Var == C.Var) {
        Found = Mine.Want == C.Want;
        break;
      }
    if (!Found)
      return false;
  }
  return true;
}

std::string TsPred::str(const Program &Prog) const {
  const SymbolTable &Syms = Prog.symbols();
  if (isTrue())
    return "true";
  std::string Out;
  auto Add = [&Out](const std::string &Lit) {
    if (!Out.empty())
      Out += " & ";
    Out += Lit;
  };
  for (const ApConstraint &C : Aps) {
    std::string P = C.Path.str(Syms);
    if (C.InMust == ThreeVal::Yes)
      Add("have(" + P + ")");
    if (C.InMust == ThreeVal::No)
      Add("!have(" + P + ")");
    if (C.InNot == ThreeVal::Yes)
      Add("notHave(" + P + ")");
    if (C.InNot == ThreeVal::No)
      Add("!notHave(" + P + ")");
  }
  for (const MayConstraint &C : Mays)
    Add(std::string(C.Want ? "may(" : "!may(") + Syms.text(C.Var) + "@" +
        Syms.text(Prog.proc(C.Proc).name()) + ")");
  return Out;
}
