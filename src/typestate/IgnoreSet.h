//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ignored-input set Sigma of the pruned bottom-up analysis (paper
/// Section 3.4). Pruning a relation adds its domain predicate; a bottom-up
/// summary may only be applied to incoming states outside Sigma, everything
/// else falls back to the top-down analysis, which is what makes pruning
/// sound (Theorem 3.1).
///
/// Sigma is a disjunction of conjunctive predicates plus an optional
/// Lambda member (the "no tracked object" input, whose summary relations
/// are the Alloc relations).
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_TYPESTATE_IGNORESET_H
#define SWIFT_TYPESTATE_IGNORESET_H

#include "typestate/AbstractState.h"
#include "typestate/Context.h"
#include "typestate/Predicate.h"

#include <vector>

namespace swift {

class TsIgnoreSet {
public:
  bool containsLambda() const { return Lambda; }

  bool contains(const TsContext &Ctx, const TsAbstractState &S) const {
    if (S.isLambda())
      return Lambda;
    for (const TsPred &P : Disjuncts)
      if (P.satisfiedBy(Ctx, S))
        return true;
    return false;
  }

  /// Conservative syntactic test: is {s | s |= Phi} a subset of this set?
  /// Used by excl(); a false negative only retains a redundant relation.
  bool coversPred(const TsPred &Phi) const {
    for (const TsPred &P : Disjuncts)
      if (Phi.implies(P))
        return true;
    return false;
  }

  /// Returns true if the set grew.
  bool addLambda() {
    bool Grew = !Lambda;
    Lambda = true;
    return Grew;
  }

  /// Returns true if the set grew (subsumed predicates are not added).
  bool addPred(const TsPred &P) {
    if (coversPred(P))
      return false;
    Disjuncts.push_back(P);
    return true;
  }

  /// Returns true if the set grew.
  bool unionWith(const TsIgnoreSet &Other) {
    bool Grew = false;
    if (Other.Lambda)
      Grew |= addLambda();
    for (const TsPred &P : Other.Disjuncts)
      Grew |= addPred(P);
    return Grew;
  }

  /// Makes this set cover every input (the degraded "always fall back"
  /// summary guard).
  void makeAll() {
    Lambda = true;
    Disjuncts.clear();
    Disjuncts.push_back(TsPred()); // `true` covers every non-Lambda state.
  }

  bool empty() const { return !Lambda && Disjuncts.empty(); }
  size_t size() const { return Disjuncts.size() + (Lambda ? 1 : 0); }
  const std::vector<TsPred> &disjuncts() const { return Disjuncts; }

  /// Representation equality (used for fixpoint stabilization; the
  /// representation only changes when the set grows, so this is a sound
  /// change detector).
  friend bool operator==(const TsIgnoreSet &A, const TsIgnoreSet &B) {
    return A.Lambda == B.Lambda && A.Disjuncts == B.Disjuncts;
  }
  friend bool operator!=(const TsIgnoreSet &A, const TsIgnoreSet &B) {
    return !(A == B);
  }

private:
  bool Lambda = false;
  std::vector<TsPred> Disjuncts;
};

} // namespace swift

#endif // SWIFT_TYPESTATE_IGNORESET_H
