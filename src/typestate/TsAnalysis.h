//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The traits class plugging the typestate analysis pair (Figures 2-3 of
/// the paper, generalized to the evaluated 4-tuple form) into the generic
/// SWIFT framework. See framework/AnalysisTraits.h for the interface.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_TYPESTATE_TSANALYSIS_H
#define SWIFT_TYPESTATE_TSANALYSIS_H

#include "typestate/CallMapping.h"
#include "typestate/Context.h"
#include "typestate/IgnoreSet.h"
#include "typestate/RelCall.h"
#include "typestate/Relation.h"
#include "typestate/Transfer.h"

#include <optional>
#include <vector>

namespace swift {

struct TsAnalysis {
  using Context = TsContext;
  using State = TsAbstractState;
  using Rel = TsRelation;
  using Pred = TsPred;
  using Ignore = TsIgnoreSet;
  using Binding = CallBinding;

  // -- Top-down analysis --
  static State lambda() { return TsAbstractState::lambda(); }
  static bool isLambda(const State &S) { return S.isLambda(); }
  /// Interning hash: the value cached at state construction, so the
  /// tabulation solver's arena index never re-walks the path sets.
  static uint64_t stateHash(const State &S) { return S.hashValue(); }
  static std::vector<State> transfer(const Context &Ctx, ProcId P,
                                     const Command &Cmd, const State &S) {
    return tsTransfer(Ctx, P, Cmd, S);
  }
  static Binding makeBinding(const Context &Ctx, ProcId P,
                             const Command &Cmd) {
    return CallBinding(Ctx, P, Cmd);
  }
  static std::vector<State> enter(const Binding &B, const State &S) {
    return {tsEnter(B, S)};
  }
  /// Every typestate fact travels through the callee (the tracked object
  /// exists across the call), so there is no call-to-return bypass.
  static std::vector<State> callLocal(const Binding &B, const State &S) {
    (void)B;
    (void)S;
    return {};
  }
  static std::vector<State> combine(const Binding &B, const State &Frame,
                                    const State &Exit) {
    return {tsCombine(B, Frame, Exit)};
  }
  static std::vector<State> combineFresh(const Binding &B,
                                         const State &Exit) {
    return {tsCombineFresh(B, Exit)};
  }

  // -- Bottom-up analysis --
  struct SummaryView {
    const std::vector<Rel> *Rels = nullptr;
    const Ignore *Sigma = nullptr;
  };

  static Rel identityRel(const Context &Ctx) {
    return TsRelation::makeIdentity(Ctx.spec().numStates());
  }
  static std::vector<Rel> rtrans(const Context &Ctx, ProcId P,
                                 const Command &Cmd, const Rel &R) {
    return tsRtrans(Ctx, P, Cmd, R);
  }
  static std::vector<Rel> lambdaEmits(const Context &Ctx,
                                      const Command &Cmd) {
    return tsLambdaEmits(Ctx, Cmd);
  }
  static void composeCall(const Context &Ctx, const Binding &B, const Rel &R,
                          const SummaryView &Callee, std::vector<Rel> &Out,
                          Ignore &SigmaOut) {
    TsSummaryView V{Callee.Rels, Callee.Sigma};
    tsComposeCall(Ctx, B, R, V, Out, SigmaOut);
  }
  static void composeCallLambda(const Context &Ctx, const Binding &B,
                                const SummaryView &Callee,
                                std::vector<Rel> &Out, Ignore &SigmaOut) {
    TsSummaryView V{Callee.Rels, Callee.Sigma};
    tsComposeCallLambda(Ctx, B, V, Out, SigmaOut);
  }
  static std::optional<State> applyRel(const Context &Ctx, const Rel &R,
                                       const State &S) {
    return R.apply(Ctx, S);
  }

  // -- Observation support (error reporting through summaries) --
  /// Can \p R move a non-error input to the error state (or create a
  /// fresh object already in error)? Transitions *from* error don't count:
  /// error is absorbing, so an already-error input was reported where it
  /// first erred.
  static bool relMayObserve(const Context &Ctx, const Rel &R) {
    TState Err = Ctx.spec().errorState();
    if (R.isAlloc())
      return R.out().tstate() == Err;
    for (size_t T = 0; T != R.iota().size(); ++T)
      if (T != Err && R.iota()[T] == Err)
        return true;
    return false;
  }
  static bool stateObservable(const Context &Ctx, const State &S) {
    return !S.isLambda() && S.tstate() == Ctx.spec().errorState();
  }

  // -- Pruning support --
  static bool relIsPrunable(const Rel &R) { return !R.isAlloc(); }
  /// Tie-break key for equally ranked relations: fewer domain constraints
  /// means a more general relation, which is the better keep.
  static size_t relGenerality(const Rel &R) {
    if (R.isAlloc())
      return 0;
    return R.phi().apConstraints().size() + R.phi().mayConstraints().size();
  }
  static bool domContains(const Context &Ctx, const Rel &R,
                          const State &S) {
    return R.domContains(Ctx, S);
  }
  static void addDomToIgnore(const Rel &R, Ignore &Sigma) {
    if (R.isAlloc())
      Sigma.addLambda();
    else
      Sigma.addPred(R.phi());
  }
  static bool ignoreCoversDom(const Ignore &Sigma, const Rel &R) {
    if (R.isAlloc())
      return Sigma.containsLambda();
    return Sigma.coversPred(R.phi());
  }
  static void ignoreAll(Ignore &Sigma) { Sigma.makeAll(); }

  // -- Resource-governor memory instrumentation (optional traits) --
  /// Approximate heap footprint of one interned abstract state: the
  /// object plus its out-of-line must / must-not access-path storage.
  static uint64_t stateBytes(const State &S) {
    return sizeof(State) +
           (S.must().size() + S.mustNot().size()) * sizeof(AccessPath);
  }
  /// Approximate heap footprint of one abstract relation.
  static uint64_t relBytes(const Rel &R) {
    uint64_t N = sizeof(Rel);
    if (!R.isAlloc())
      N += R.iota().size() * sizeof(TState);
    return N;
  }
};

} // namespace swift

#endif // SWIFT_TYPESTATE_TSANALYSIS_H
