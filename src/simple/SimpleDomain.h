//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A verbatim transliteration of the paper's formalism section (Sections
/// 3.1-3.4, Figures 2-4): the simplified intraprocedural typestate
/// analysis used to *present* SWIFT, kept separate from the scaled
/// implementation in src/typestate so that readers can line code up with
/// the paper figure by figure.
///
///   Figure 2:  abstract states sigma = (h, t, a) with a a set of
///              variables (the must set); primitive commands v = new h,
///              v = w, v.m(); the trans transfer functions.
///   Figure 3:  abstract relations r in R = (S x Q) u (I x 2^V x 2^V x Q)
///              — constant relations (sigma, phi) and transformer
///              relations (iota, a0, a1, phi); rtrans; wp; rcomp.
///   Section 3.1: structured commands C ::= c | C+C | C;C | C* and the
///              top-down semantics [[C]] : 2^S -> 2^S.
///   Section 3.4: the pruned bottom-up semantics [[C]]^r over
///              D^r = {(R, Sigma)} with the prune operator built from
///              rank / best_theta / excl / clean.
///
/// Everything here is enumerable (small finite V, H, T), which the tests
/// exploit to check the coincidence theorem (Theorem 3.1) literally.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SIMPLE_SIMPLEDOMAIN_H
#define SWIFT_SIMPLE_SIMPLEDOMAIN_H

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace swift {
namespace simple {

/// The small finite vocabularies of the formalism. Variables, sites, and
/// typestates are dense indices; the typestate functions [m] are given
/// per method.
struct Vocabulary {
  unsigned NumVars = 2;
  unsigned NumSites = 2;
  unsigned NumStates = 3; ///< State 0 is init; the last state is error.
  /// [m] : T -> T for each method m.
  std::vector<std::vector<uint8_t>> Methods;

  uint8_t errorState() const {
    return static_cast<uint8_t>(NumStates - 1);
  }
};

/// Figure 2's abstract state (h, t, a); `a` is a bitset over variables.
struct State {
  uint8_t H = 0;
  uint8_t T = 0;
  uint32_t A = 0; ///< Bit v set: variable v is in the must set.

  friend bool operator==(const State &X, const State &Y) {
    return X.H == Y.H && X.T == Y.T && X.A == Y.A;
  }
  friend bool operator<(const State &X, const State &Y) {
    if (X.H != Y.H)
      return X.H < Y.H;
    if (X.T != Y.T)
      return X.T < Y.T;
    return X.A < Y.A;
  }
  std::string str() const;
};

/// Enumerates all of S.
std::vector<State> allStates(const Vocabulary &V);

//===----------------------------------------------------------------------===//
// Primitive and structured commands (Section 3.1)
//===----------------------------------------------------------------------===//

struct Prim {
  enum class Kind : uint8_t { New, Copy, Invoke } K = Kind::Copy;
  uint8_t V = 0;      ///< Defined variable / receiver.
  uint8_t W = 0;      ///< Copy source.
  uint8_t Site = 0;   ///< New.
  uint8_t Method = 0; ///< Invoke.

  static Prim makeNew(uint8_t V, uint8_t Site) {
    return Prim{Kind::New, V, 0, Site, 0};
  }
  static Prim makeCopy(uint8_t V, uint8_t W) {
    return Prim{Kind::Copy, V, W, 0, 0};
  }
  static Prim makeInvoke(uint8_t V, uint8_t Method) {
    return Prim{Kind::Invoke, V, 0, 0, Method};
  }
  std::string str() const;
};

/// C ::= c | C + C | C ; C | C*
class Cmd {
public:
  enum class Kind : uint8_t { Primitive, Choice, Seq, Star };

  static std::unique_ptr<Cmd> prim(Prim P) {
    auto C = std::make_unique<Cmd>();
    C->K = Kind::Primitive;
    C->P = P;
    return C;
  }
  static std::unique_ptr<Cmd> choice(std::unique_ptr<Cmd> L,
                                     std::unique_ptr<Cmd> R) {
    auto C = std::make_unique<Cmd>();
    C->K = Kind::Choice;
    C->L = std::move(L);
    C->R = std::move(R);
    return C;
  }
  static std::unique_ptr<Cmd> seq(std::unique_ptr<Cmd> L,
                                  std::unique_ptr<Cmd> R) {
    auto C = std::make_unique<Cmd>();
    C->K = Kind::Seq;
    C->L = std::move(L);
    C->R = std::move(R);
    return C;
  }
  static std::unique_ptr<Cmd> star(std::unique_ptr<Cmd> Body) {
    auto C = std::make_unique<Cmd>();
    C->K = Kind::Star;
    C->L = std::move(Body);
    return C;
  }

  Kind K = Kind::Primitive;
  Prim P;
  std::unique_ptr<Cmd> L, R;

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Figure 2: the top-down analysis
//===----------------------------------------------------------------------===//

/// trans(c) : S -> 2^S, exactly Figure 2.
std::vector<State> trans(const Vocabulary &V, const Prim &C,
                         const State &S);

/// [[C]](Sigma), Section 3.1 (lfix for Star).
std::set<State> evalTopDown(const Vocabulary &V, const Cmd &C,
                            const std::set<State> &Sigma);

//===----------------------------------------------------------------------===//
// Figure 3: the bottom-up analysis
//===----------------------------------------------------------------------===//

/// phi ::= true | phi ^ phi | have(v) | notHave(v), canonicalized to a
/// (have-set, notHave-set) pair of variable bitsets; overlapping sets are
/// unsatisfiable.
struct Pred {
  uint32_t Have = 0;
  uint32_t NotHave = 0;

  bool sat() const { return (Have & NotHave) == 0; }
  bool holds(const State &S) const {
    return (S.A & Have) == Have && (S.A & NotHave) == 0;
  }
  Pred conj(const Pred &O) const {
    return Pred{Have | O.Have, NotHave | O.NotHave};
  }
  friend bool operator==(const Pred &X, const Pred &Y) {
    return X.Have == Y.Have && X.NotHave == Y.NotHave;
  }
  friend bool operator<(const Pred &X, const Pred &Y) {
    if (X.Have != Y.Have)
      return X.Have < Y.Have;
    return X.NotHave < Y.NotHave;
  }
  std::string str() const;
};

/// An abstract relation r in R = (S x Q) u (I x 2^V x 2^V x Q):
/// either the constant relation (Out, Phi) relating every state
/// satisfying Phi to Out, or the transformer (Iota, A0, A1, Phi) mapping
/// (h, t, a) |-> (h, Iota(t), (a n A0) u A1) on states satisfying Phi.
struct Rel {
  enum class Kind : uint8_t { Const, Trans } K = Kind::Trans;
  // Const:
  State Out;
  // Trans:
  std::vector<uint8_t> Iota; ///< T -> T.
  uint32_t A0 = ~0u;         ///< Intersection mask.
  uint32_t A1 = 0;           ///< Union set.
  Pred Phi;

  static Rel identity(const Vocabulary &V);
  static Rel constant(State Out, Pred Phi) {
    Rel R;
    R.K = Kind::Const;
    R.Out = Out;
    R.Phi = Phi;
    return R;
  }

  bool domContains(const State &S) const { return Phi.holds(S); }
  /// gamma(r) applied to one input; nullptr-like via bool.
  bool apply(const State &In, State &Out_) const;

  friend bool operator==(const Rel &X, const Rel &Y) {
    if (X.K != Y.K)
      return false;
    if (X.K == Kind::Const)
      return X.Out == Y.Out && X.Phi == Y.Phi;
    return X.Iota == Y.Iota && X.A0 == Y.A0 && X.A1 == Y.A1 &&
           X.Phi == Y.Phi;
  }
  friend bool operator<(const Rel &X, const Rel &Y);
  std::string str() const;
};

bool operator<(const Rel &X, const Rel &Y);

/// rtrans(c)(r), exactly Figure 3.
std::vector<Rel> rtrans(const Vocabulary &V, const Prim &C, const Rel &R);

/// wp(r, phi): the weakest precondition of Figure 3's wp routine.
/// Returns false when the precondition is `false` (unsatisfiable).
bool wp(const Rel &R, const Pred &Post, Pred &PreOut);

/// rcomp(r, r'), exactly Figure 3 (empty result <-> the composition is
/// void).
std::vector<Rel> rcomp(const Rel &R1, const Rel &R2);

//===----------------------------------------------------------------------===//
// Section 3.4: pruning and the bottom-up semantics
//===----------------------------------------------------------------------===//

/// An element (R, Sigma) of D^r.
struct RelVal {
  std::set<Rel> Rels;
  std::set<State> Sigma;
};

/// The prune operator built from rank / best_theta / excl / clean, with
/// the frequency multiset M of observed incoming states. Theta = 0 means
/// no pruning.
RelVal prune(const Vocabulary &V, RelVal In, unsigned Theta,
             const std::map<State, unsigned> &M);

/// [[C]]^r (R, Sigma), Section 3.4 (fix for Star), pruning with Theta
/// against M at every step.
RelVal evalBottomUp(const Vocabulary &V, const Cmd &C, RelVal In,
                    unsigned Theta, const std::map<State, unsigned> &M);

/// gamma^dagger(R) applied to Sigma (the right-hand side of Theorem 3.1).
std::set<State> applyRels(const std::set<Rel> &Rels,
                          const std::set<State> &Sigma);

} // namespace simple
} // namespace swift

#endif // SWIFT_SIMPLE_SIMPLEDOMAIN_H
