//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "simple/SimpleDomain.h"

#include <algorithm>

using namespace swift;
using namespace swift::simple;

std::string simple::State::str() const {
  std::string S = "(h" + std::to_string(H) + ",t" + std::to_string(T) +
                  ",{";
  bool First = true;
  for (unsigned V = 0; V != 32; ++V)
    if (A & (1u << V)) {
      if (!First)
        S += ",";
      S += "v" + std::to_string(V);
      First = false;
    }
  return S + "})";
}

std::vector<State> simple::allStates(const Vocabulary &V) {
  std::vector<State> Out;
  for (uint8_t H = 0; H != V.NumSites; ++H)
    for (uint8_t T = 0; T != V.NumStates; ++T)
      for (uint32_t A = 0; A != (1u << V.NumVars); ++A)
        Out.push_back(State{H, T, A});
  return Out;
}

std::string Prim::str() const {
  switch (K) {
  case Kind::New:
    return "v" + std::to_string(V) + " = new h" + std::to_string(Site);
  case Kind::Copy:
    return "v" + std::to_string(V) + " = v" + std::to_string(W);
  case Kind::Invoke:
    return "v" + std::to_string(V) + ".m" + std::to_string(Method) + "()";
  }
  return "?";
}

std::string Cmd::str() const {
  switch (K) {
  case Kind::Primitive:
    return P.str();
  case Kind::Choice:
    return "(" + L->str() + " + " + R->str() + ")";
  case Kind::Seq:
    return "(" + L->str() + "; " + R->str() + ")";
  case Kind::Star:
    return "(" + L->str() + ")*";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Figure 2
//===----------------------------------------------------------------------===//

std::vector<State> simple::trans(const Vocabulary &V, const Prim &C,
                                 const State &S) {
  uint32_t VBit = 1u << C.V;
  switch (C.K) {
  case Prim::Kind::New:
    // {(h, t, a \ {v}), (h', init, {v})}
    return {State{S.H, S.T, S.A & ~VBit}, State{C.Site, 0, VBit}};
  case Prim::Kind::Copy:
    // if (w in a) then {(h, t, a u {v})} else {(h, t, a \ {v})}
    if (S.A & (1u << C.W))
      return {State{S.H, S.T, S.A | VBit}};
    return {State{S.H, S.T, S.A & ~VBit}};
  case Prim::Kind::Invoke:
    // if (v in a) then {(h, [m](t), a)} else {(h, error, a)}
    if (S.A & VBit)
      return {State{S.H, V.Methods[C.Method][S.T], S.A}};
    return {State{S.H, V.errorState(), S.A}};
  }
  return {};
}

namespace {

std::set<State> transAll(const Vocabulary &V, const Prim &C,
                         const std::set<State> &Sigma) {
  std::set<State> Out;
  for (const State &S : Sigma)
    for (const State &N : trans(V, C, S))
      Out.insert(N);
  return Out;
}

} // namespace

std::set<State> simple::evalTopDown(const Vocabulary &V, const Cmd &C,
                                    const std::set<State> &Sigma) {
  switch (C.K) {
  case Cmd::Kind::Primitive:
    return transAll(V, C.P, Sigma);
  case Cmd::Kind::Choice: {
    std::set<State> Out = evalTopDown(V, *C.L, Sigma);
    std::set<State> R = evalTopDown(V, *C.R, Sigma);
    Out.insert(R.begin(), R.end());
    return Out;
  }
  case Cmd::Kind::Seq:
    return evalTopDown(V, *C.R, evalTopDown(V, *C.L, Sigma));
  case Cmd::Kind::Star: {
    // lfix (lambda Sigma'. Sigma u [[C]](Sigma'))
    std::set<State> Cur = Sigma;
    for (;;) {
      std::set<State> Next = Sigma;
      std::set<State> Step = evalTopDown(V, *C.L, Cur);
      Next.insert(Step.begin(), Step.end());
      if (Next == Cur)
        return Cur;
      Cur = std::move(Next);
    }
  }
  }
  return {};
}

//===----------------------------------------------------------------------===//
// Figure 3
//===----------------------------------------------------------------------===//

std::string Pred::str() const {
  if (!Have && !NotHave)
    return "true";
  std::string S;
  for (unsigned V = 0; V != 32; ++V) {
    if (Have & (1u << V))
      S += (S.empty() ? "" : " & ") + std::string("have(v") +
           std::to_string(V) + ")";
    if (NotHave & (1u << V))
      S += (S.empty() ? "" : " & ") + std::string("notHave(v") +
           std::to_string(V) + ")";
  }
  return S;
}

Rel Rel::identity(const Vocabulary &V) {
  // id# = (lambda t. t, V, {}, true)
  Rel R;
  R.K = Kind::Trans;
  R.Iota.resize(V.NumStates);
  for (unsigned I = 0; I != V.NumStates; ++I)
    R.Iota[I] = static_cast<uint8_t>(I);
  R.A0 = (1u << V.NumVars) - 1;
  R.A1 = 0;
  return R;
}

bool Rel::apply(const State &In, State &Out_) const {
  if (!Phi.holds(In))
    return false;
  if (K == Kind::Const) {
    Out_ = Out;
    return true;
  }
  Out_ = State{In.H, Iota[In.T],
               static_cast<uint32_t>((In.A & A0) | A1)};
  return true;
}

bool swift::simple::operator<(const Rel &X, const Rel &Y) {
  if (X.K != Y.K)
    return X.K < Y.K;
  if (X.K == Rel::Kind::Const) {
    if (!(X.Out == Y.Out))
      return X.Out < Y.Out;
    return X.Phi < Y.Phi;
  }
  if (X.Iota != Y.Iota)
    return X.Iota < Y.Iota;
  if (X.A0 != Y.A0)
    return X.A0 < Y.A0;
  if (X.A1 != Y.A1)
    return X.A1 < Y.A1;
  return X.Phi < Y.Phi;
}

std::string Rel::str() const {
  if (K == Kind::Const)
    return "(" + Out.str() + ", " + Phi.str() + ")";
  std::string S = "(iota=[";
  for (size_t I = 0; I != Iota.size(); ++I) {
    if (I)
      S += ",";
    S += std::to_string(Iota[I]);
  }
  return S + "], a0=" + std::to_string(A0) + ", a1=" + std::to_string(A1) +
         ", " + Phi.str() + ")";
}

std::vector<Rel> simple::rtrans(const Vocabulary &V, const Prim &C,
                                const Rel &R) {
  uint32_t VBit = 1u << C.V;

  // rtrans(c)(sigma, phi) = {(sigma', phi) | sigma' in trans(c)(sigma)}
  if (R.K == Rel::Kind::Const) {
    std::vector<Rel> Out;
    for (const State &N : trans(V, C, R.Out))
      Out.push_back(Rel::constant(N, R.Phi));
    return Out;
  }

  switch (C.K) {
  case Prim::Kind::New: {
    // {(iota, a0 \ {v}, a1 \ {v}, phi), ((h, init, {v}), phi)}
    Rel Old = R;
    Old.A0 &= ~VBit;
    Old.A1 &= ~VBit;
    return {Old, Rel::constant(State{C.Site, 0, VBit}, R.Phi)};
  }
  case Prim::Kind::Copy: {
    uint32_t WBit = 1u << C.W;
    if (R.A1 & WBit) {
      // Always in the output must set.
      Rel N = R;
      N.A1 |= VBit;
      return {N};
    }
    if (!(R.A0 & WBit)) {
      // Never in the output must set.
      Rel N = R;
      N.A0 &= ~VBit;
      N.A1 &= ~VBit;
      return {N};
    }
    // Sometimes: split on have(w) / notHave(w).
    Rel Yes = R;
    Yes.A1 |= VBit;
    Yes.Phi = R.Phi.conj(Pred{WBit, 0});
    Rel No = R;
    No.A0 &= ~VBit;
    No.A1 &= ~VBit;
    No.Phi = R.Phi.conj(Pred{0, WBit});
    std::vector<Rel> Out;
    if (Yes.Phi.sat())
      Out.push_back(Yes);
    if (No.Phi.sat())
      Out.push_back(No);
    return Out;
  }
  case Prim::Kind::Invoke: {
    auto Compose = [&](bool Strong) {
      Rel N = R;
      for (size_t T = 0; T != N.Iota.size(); ++T)
        N.Iota[T] = Strong ? V.Methods[C.Method][R.Iota[T]]
                           : V.errorState();
      return N;
    };
    if (R.A1 & VBit)
      return {Compose(true)};
    if (!(R.A0 & VBit))
      return {Compose(false)};
    Rel Yes = Compose(true);
    Yes.Phi = R.Phi.conj(Pred{VBit, 0});
    Rel No = Compose(false);
    No.Phi = R.Phi.conj(Pred{0, VBit});
    std::vector<Rel> Out;
    if (Yes.Phi.sat())
      Out.push_back(Yes);
    if (No.Phi.sat())
      Out.push_back(No);
    return Out;
  }
  }
  return {};
}

bool simple::wp(const Rel &R, const Pred &Post, Pred &PreOut) {
  PreOut = Pred{};
  if (R.K == Rel::Kind::Const) {
    // wp((sigma, phi), lit) = sigma |= lit ? true : false
    if ((R.Out.A & Post.Have) != Post.Have)
      return false;
    if (R.Out.A & Post.NotHave)
      return false;
    return true;
  }
  // Figure 3's wp on transformer relations. Note: the published text
  // reads "if (v not-in a0) then have(v) else false" for the have case,
  // which transposes the last two arms; the output must set is
  // (a n a0) u a1, so outside a1, `v` can only be present when v in a0.
  for (unsigned Vi = 0; Vi != 32; ++Vi) {
    uint32_t Bit = 1u << Vi;
    if (Post.Have & Bit) {
      if (R.A1 & Bit)
        continue; // Always present.
      if (!(R.A0 & Bit))
        return false; // Never present.
      PreOut.Have |= Bit;
    }
    if (Post.NotHave & Bit) {
      if (R.A1 & Bit)
        return false; // Always present.
      if (!(R.A0 & Bit))
        continue; // Never present.
      PreOut.NotHave |= Bit;
    }
  }
  return PreOut.sat();
}

std::vector<Rel> simple::rcomp(const Rel &R1, const Rel &R2) {
  // if (wp(r, phi') <=> false) then {} else {(r; r', phi ^ wp(r, phi'))}
  Pred Pre;
  if (!wp(R1, R2.Phi, Pre))
    return {};
  Pred Phi = R1.Phi.conj(Pre);
  if (!Phi.sat())
    return {};

  if (R2.K == Rel::Kind::Const) {
    // r; (sigma', _) = sigma'
    return {Rel::constant(R2.Out, Phi)};
  }
  if (R1.K == Rel::Kind::Const) {
    // ((h,t,a), _); (iota', a0', a1', _) = (h, iota'(t), a n a0' u a1')
    State Out{R1.Out.H, R2.Iota[R1.Out.T],
              (R1.Out.A & R2.A0) | R2.A1};
    return {Rel::constant(Out, Phi)};
  }
  // (iota, a0, a1, _); (iota', a0', a1', _)
  //   = (iota' o iota, a0 n a0', (a1 n a0') u a1')
  Rel Out;
  Out.K = Rel::Kind::Trans;
  Out.Iota.resize(R1.Iota.size());
  for (size_t T = 0; T != R1.Iota.size(); ++T)
    Out.Iota[T] = R2.Iota[R1.Iota[T]];
  Out.A0 = R1.A0 & R2.A0;
  Out.A1 = (R1.A1 & R2.A0) | R2.A1;
  Out.Phi = Phi;
  return {Out};
}

//===----------------------------------------------------------------------===//
// Section 3.4
//===----------------------------------------------------------------------===//

namespace {

/// dom(r) enumerated.
std::vector<State> domOf(const Vocabulary &V, const Rel &R) {
  std::vector<State> Out;
  for (const State &S : allStates(V))
    if (R.domContains(S))
      Out.push_back(S);
  return Out;
}

bool domSubsetOf(const Vocabulary &V, const Rel &R,
                 const std::set<State> &Sigma) {
  for (const State &S : allStates(V))
    if (R.domContains(S) && !Sigma.count(S))
      return false;
  return true;
}

/// clean(R, Sigma) = (excl(R, Sigma), Sigma).
RelVal clean(const Vocabulary &V, RelVal In) {
  RelVal Out;
  Out.Sigma = std::move(In.Sigma);
  for (const Rel &R : In.Rels)
    if (!domSubsetOf(V, R, Out.Sigma))
      Out.Rels.insert(R);
  return Out;
}

RelVal join(const Vocabulary &V, RelVal A, const RelVal &B) {
  A.Rels.insert(B.Rels.begin(), B.Rels.end());
  A.Sigma.insert(B.Sigma.begin(), B.Sigma.end());
  return clean(V, std::move(A));
}

} // namespace

RelVal simple::prune(const Vocabulary &V, RelVal In, unsigned Theta,
                     const std::map<State, unsigned> &M) {
  In = clean(V, std::move(In));
  if (Theta == 0 || In.Rels.size() <= Theta)
    return In;

  // rank(r) = sum over sigma in dom(r) of #copies of sigma in M.
  std::vector<std::pair<unsigned, Rel>> Ranked;
  for (const Rel &R : In.Rels) {
    unsigned Rank = 0;
    for (const State &S : domOf(V, R)) {
      auto It = M.find(S);
      if (It != M.end())
        Rank += It->second;
    }
    Ranked.push_back({Rank, R});
  }
  std::sort(Ranked.begin(), Ranked.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first > B.first;
              return A.second < B.second;
            });

  // R' = best_theta(R); Sigma' = Sigma u U{dom(r) | r in R \ R'}.
  RelVal Out;
  Out.Sigma = std::move(In.Sigma);
  for (size_t I = Theta; I < Ranked.size(); ++I)
    for (const State &S : domOf(V, Ranked[I].second))
      Out.Sigma.insert(S);
  for (size_t I = 0; I < Theta && I < Ranked.size(); ++I)
    Out.Rels.insert(Ranked[I].second);
  // excl(R', Sigma').
  return clean(V, std::move(Out));
}

RelVal simple::evalBottomUp(const Vocabulary &V, const Cmd &C, RelVal In,
                            unsigned Theta,
                            const std::map<State, unsigned> &M) {
  switch (C.K) {
  case Cmd::Kind::Primitive: {
    RelVal Out;
    Out.Sigma = In.Sigma;
    for (const Rel &R : In.Rels)
      for (const Rel &N : rtrans(V, C.P, R))
        Out.Rels.insert(N);
    return prune(V, std::move(Out), Theta, M);
  }
  case Cmd::Kind::Choice: {
    RelVal A = evalBottomUp(V, *C.L, In, Theta, M);
    RelVal B = evalBottomUp(V, *C.R, std::move(In), Theta, M);
    return prune(V, join(V, std::move(A), B), Theta, M);
  }
  case Cmd::Kind::Seq:
    return evalBottomUp(V, *C.R,
                        evalBottomUp(V, *C.L, std::move(In), Theta, M),
                        Theta, M);
  case Cmd::Kind::Star: {
    // fix_(R, Sigma) F with F(X) = prune(X join [[C]]^r(X)).
    RelVal Cur = std::move(In);
    for (;;) {
      RelVal Step = evalBottomUp(V, *C.L, Cur, Theta, M);
      RelVal Next = prune(V, join(V, Cur, Step), Theta, M);
      if (Next.Rels == Cur.Rels && Next.Sigma == Cur.Sigma)
        return Cur;
      Cur = std::move(Next);
    }
  }
  }
  return {};
}

std::set<State> simple::applyRels(const std::set<Rel> &Rels,
                                  const std::set<State> &Sigma) {
  std::set<State> Out;
  for (const State &S : Sigma)
    for (const Rel &R : Rels) {
      State N;
      if (R.apply(S, N))
        Out.insert(N);
    }
  return Out;
}
