//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent JSON parser and compact serializer (see Json.h for
/// the supported subset).
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace swift {
namespace obs {
namespace json {

namespace {

constexpr int MaxDepth = 64;

class Parser {
public:
  explicit Parser(std::string_view Text) : T(Text) {}

  Value run() {
    Value V = parseValue(0);
    skipWs();
    if (Pos != T.size())
      fail("trailing garbage after JSON value");
    return V;
  }

private:
  [[noreturn]] void fail(const std::string &Msg) {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(Pos) + ": " + Msg);
  }

  void skipWs() {
    while (Pos < T.size() && (T[Pos] == ' ' || T[Pos] == '\t' ||
                              T[Pos] == '\n' || T[Pos] == '\r'))
      ++Pos;
  }

  char peek() {
    if (Pos >= T.size())
      fail("unexpected end of input");
    return T[Pos];
  }

  void expect(char C) {
    if (peek() != C)
      fail(std::string("expected '") + C + "'");
    ++Pos;
  }

  bool consumeLiteral(std::string_view Lit) {
    if (T.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  Value parseValue(int Depth) {
    if (Depth > MaxDepth)
      fail("nesting too deep");
    skipWs();
    char C = peek();
    Value V;
    switch (C) {
    case '{': {
      ++Pos;
      V.K = Value::Kind::Object;
      skipWs();
      if (peek() == '}') {
        ++Pos;
        return V;
      }
      for (;;) {
        skipWs();
        std::string Key = parseString();
        skipWs();
        expect(':');
        V.Obj.emplace_back(std::move(Key), parseValue(Depth + 1));
        skipWs();
        char D = peek();
        ++Pos;
        if (D == '}')
          return V;
        if (D != ',')
          fail("expected ',' or '}' in object");
      }
    }
    case '[': {
      ++Pos;
      V.K = Value::Kind::Array;
      skipWs();
      if (peek() == ']') {
        ++Pos;
        return V;
      }
      for (;;) {
        V.Arr.push_back(parseValue(Depth + 1));
        skipWs();
        char D = peek();
        ++Pos;
        if (D == ']')
          return V;
        if (D != ',')
          fail("expected ',' or ']' in array");
      }
    }
    case '"':
      V.K = Value::Kind::String;
      V.Str = parseString();
      return V;
    case 't':
      if (!consumeLiteral("true"))
        fail("bad literal");
      V.K = Value::Kind::Bool;
      V.B = true;
      return V;
    case 'f':
      if (!consumeLiteral("false"))
        fail("bad literal");
      V.K = Value::Kind::Bool;
      V.B = false;
      return V;
    case 'n':
      if (!consumeLiteral("null"))
        fail("bad literal");
      return V;
    default:
      return parseNumber();
    }
  }

  std::string parseString() {
    expect('"');
    std::string Out;
    for (;;) {
      if (Pos >= T.size())
        fail("unterminated string");
      char C = T[Pos++];
      if (C == '"')
        return Out;
      if (static_cast<unsigned char>(C) < 0x20)
        fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= T.size())
        fail("unterminated escape");
      char E = T[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > T.size())
          fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = T[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            fail("bad hex digit in \\u escape");
        }
        // UTF-8 encode (BMP only; a lone surrogate encodes as-is, which
        // round-trips our own output — we never emit surrogates).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        fail("unknown escape");
      }
    }
  }

  Value parseNumber() {
    size_t Start = Pos;
    if (Pos < T.size() && T[Pos] == '-')
      ++Pos;
    bool PureInt = Pos < T.size();
    while (Pos < T.size() &&
           (std::isdigit(static_cast<unsigned char>(T[Pos])) ||
            T[Pos] == '.' || T[Pos] == 'e' || T[Pos] == 'E' ||
            T[Pos] == '+' || T[Pos] == '-')) {
      if (!std::isdigit(static_cast<unsigned char>(T[Pos])))
        PureInt = false;
      ++Pos;
    }
    if (Pos == Start)
      fail("expected a value");
    std::string Num(T.substr(Start, Pos - Start));
    char *End = nullptr;
    // A pure-integer lexeme in u64/i64 range keeps the exact value:
    // doubles round above 2^53, and trace/bench ids and step counters
    // are full-width u64s. Out-of-range integers fall back to double.
    if (PureInt) {
      errno = 0;
      if (Num[0] == '-') {
        long long S = std::strtoll(Num.c_str(), &End, 10);
        if (errno == 0 && End == Num.c_str() + Num.size())
          return Value::i64(S);
      } else {
        unsigned long long Us = std::strtoull(Num.c_str(), &End, 10);
        if (errno == 0 && End == Num.c_str() + Num.size())
          return Value::u64(Us);
      }
    }
    double D = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      fail("malformed number '" + Num + "'");
    return Value::number(D);
  }

  std::string_view T;
  size_t Pos = 0;
};

void dumpString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void dumpInto(std::string &Out, const Value &V) {
  switch (V.K) {
  case Value::Kind::Null:
    Out += "null";
    return;
  case Value::Kind::Bool:
    Out += V.B ? "true" : "false";
    return;
  case Value::Kind::Number: {
    char Buf[40];
    double I;
    if (V.NR == Value::NumRep::U64)
      std::snprintf(Buf, sizeof(Buf), "%llu",
                    static_cast<unsigned long long>(V.U));
    else if (V.NR == Value::NumRep::I64)
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(V.I));
    else if (std::modf(V.Num, &I) == 0.0 && std::abs(V.Num) < 1e15)
      std::snprintf(Buf, sizeof(Buf), "%.0f", V.Num);
    else
      std::snprintf(Buf, sizeof(Buf), "%.17g", V.Num);
    Out += Buf;
    return;
  }
  case Value::Kind::String:
    dumpString(Out, V.Str);
    return;
  case Value::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Value &E : V.Arr) {
      if (!First)
        Out += ',';
      First = false;
      dumpInto(Out, E);
    }
    Out += ']';
    return;
  }
  case Value::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[K, E] : V.Obj) {
      if (!First)
        Out += ',';
      First = false;
      dumpString(Out, K);
      Out += ':';
      dumpInto(Out, E);
    }
    Out += '}';
    return;
  }
  }
}

} // namespace

const Value *Value::find(std::string_view Key) const {
  for (const auto &[K, V] : Obj)
    if (K == Key)
      return &V;
  return nullptr;
}

Value Value::u64(uint64_t V) {
  Value R;
  R.K = Kind::Number;
  R.NR = NumRep::U64;
  R.U = V;
  R.Num = static_cast<double>(V);
  return R;
}

Value Value::i64(int64_t V) {
  if (V >= 0)
    return u64(static_cast<uint64_t>(V));
  Value R;
  R.K = Kind::Number;
  R.NR = NumRep::I64;
  R.I = V;
  R.Num = static_cast<double>(V);
  return R;
}

Value Value::number(double D) {
  Value R;
  R.K = Kind::Number;
  R.Num = D;
  return R;
}

Value Value::str(std::string S) {
  Value R;
  R.K = Kind::String;
  R.Str = std::move(S);
  return R;
}

Value Value::boolean(bool V) {
  Value R;
  R.K = Kind::Bool;
  R.B = V;
  return R;
}

uint64_t Value::asU64() const {
  if (K != Kind::Number)
    return 0;
  if (NR == NumRep::U64)
    return U;
  if (NR == NumRep::I64)
    return 0; // I64 representation is negative by construction.
  if (Num < 0)
    return 0;
  return static_cast<uint64_t>(Num);
}

Value parse(std::string_view Text) { return Parser(Text).run(); }

std::string dump(const Value &V) {
  std::string Out;
  dumpInto(Out, V);
  return Out;
}

} // namespace json
} // namespace obs
} // namespace swift
