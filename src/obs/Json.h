//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal JSON value model + recursive-descent parser, just enough to
/// round-trip the trace and metrics files this repo emits (obs_test's
/// parse-validation and the swift-tracecat merger). Not a general-purpose
/// JSON library: numbers are doubles, no \uXXXX surrogate pairs beyond
/// the BMP, object key order is preserved.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_OBS_JSON_H
#define SWIFT_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swift {
namespace obs {
namespace json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj; ///< Insertion order.

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// First member with \p Key, or nullptr.
  const Value *find(std::string_view Key) const;

  /// Num truncated to uint64_t (0 for non-numbers or negatives).
  uint64_t asU64() const;
};

/// Parses \p Text (must be a single JSON value plus optional trailing
/// whitespace). Throws std::runtime_error with a byte offset on
/// malformed input; nesting is depth-limited.
Value parse(std::string_view Text);

/// Serializes \p V (compact, no insignificant whitespace). Integral
/// numbers print without a decimal point.
std::string dump(const Value &V);

} // namespace json
} // namespace obs
} // namespace swift

#endif // SWIFT_OBS_JSON_H
