//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal JSON value model + recursive-descent parser, just enough to
/// round-trip the trace and metrics files this repo emits (obs_test's
/// parse-validation, the swift-tracecat merger, swift-benchdiff, and the
/// swift-serve request protocol). Not a general-purpose JSON library: no
/// \uXXXX surrogate pairs beyond the BMP; object key order is preserved.
/// Numbers whose lexeme is a pure integer in u64/i64 range keep the exact
/// integer through parse -> dump (u64 step counters and ids above 2^53
/// would otherwise silently round to the nearest double), everything else
/// is a double.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_OBS_JSON_H
#define SWIFT_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swift {
namespace obs {
namespace json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  /// How a Number is stored exactly. Dbl is the general case; U64/I64
  /// mark integers held exactly in U/I (Num then carries the rounded
  /// double approximation for arithmetic consumers).
  enum class NumRep : uint8_t { Dbl, U64, I64 };

  Kind K = Kind::Null;
  NumRep NR = NumRep::Dbl;
  bool B = false;
  double Num = 0.0;
  uint64_t U = 0; ///< Exact value when NR == NumRep::U64.
  int64_t I = 0;  ///< Exact value when NR == NumRep::I64 (negative).
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj; ///< Insertion order.

  /// An exact unsigned-integer Number (round-trips any uint64_t).
  static Value u64(uint64_t V);
  /// An exact signed-integer Number.
  static Value i64(int64_t V);
  /// A general (double) Number.
  static Value number(double D);
  static Value str(std::string S);
  static Value boolean(bool V);

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// First member with \p Key, or nullptr.
  const Value *find(std::string_view Key) const;

  /// The number as uint64_t: exact for integer-represented values (the
  /// parser preserves pure-integer lexemes up to UINT64_MAX), otherwise
  /// Num truncated (0 for non-numbers or negatives).
  uint64_t asU64() const;
};

/// Parses \p Text (must be a single JSON value plus optional trailing
/// whitespace). Throws std::runtime_error with a byte offset on
/// malformed input; nesting is depth-limited.
Value parse(std::string_view Text);

/// Serializes \p V (compact, no insignificant whitespace). Integral
/// numbers print without a decimal point.
std::string dump(const Value &V);

} // namespace json
} // namespace obs
} // namespace swift

#endif // SWIFT_OBS_JSON_H
