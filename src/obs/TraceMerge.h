//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merging of several Chrome/Perfetto trace files (the per-process traces
/// of a sharded or crashtest run) into one. Each input keeps its events
/// but gets a distinct pid (input order, starting at 1) plus a
/// process_name metadata record, so the viewer shows one track group per
/// process.
///
/// The merged process name is the input's own embedded process_name
/// (workers set one via TraceRecorder::setProcessName) and falls back to
/// the caller-supplied label (tracecat passes the source path). Restarted
/// workers re-emit the *same* embedded name — each incarnation is a
/// separate trace file of the same logical shard — so duplicate names are
/// de-conflicted by suffixing the occurrence index (" #2", " #3", ...):
/// without that, the viewer silently folds distinct incarnations into one
/// track and a restart reads as one continuous process.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_OBS_TRACEMERGE_H
#define SWIFT_OBS_TRACEMERGE_H

#include <cstddef>
#include <string>
#include <vector>

namespace swift {
namespace obs {

/// One input trace: the raw JSON bytes plus a label used both in error
/// messages and as the process name when the trace has no embedded one.
struct TraceInput {
  std::string Label;
  std::string Json;
};

struct TraceMergeStats {
  size_t Events = 0;   ///< Events in the merged traceEvents array.
  size_t Renamed = 0;  ///< Inputs whose name needed an occurrence suffix.
};

/// Merges \p Inputs into one Chrome trace JSON document (with trailing
/// newline). Throws std::runtime_error naming the offending input's label
/// on malformed JSON or a missing traceEvents array — a silently dropped
/// trace would misread as "that process did nothing".
std::string mergeTraces(const std::vector<TraceInput> &Inputs,
                        TraceMergeStats *Stats = nullptr);

} // namespace obs
} // namespace swift

#endif // SWIFT_OBS_TRACEMERGE_H
