//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TraceRecorder internals: per-thread chunked event buffers with
/// single-writer plain stores and release-published counts, a global
/// registry (locked only at thread registration and serialization), and
/// the Chrome trace_event JSON serializer.
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "support/AtomicFile.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace swift {
namespace obs {

namespace detail {
std::atomic<bool> TraceOn{false};
} // namespace detail

namespace {

/// Fixed chunk capacity: 2048 events * 72 B ≈ 144 KiB per chunk. Chunks
/// are allocated by the writing thread only when tracing is enabled.
constexpr size_t ChunkCap = 2048;

struct Event {
  const char *Cat;
  const char *Name;
  const char *AName;
  const char *BName;
  uint64_t TsUs;
  uint64_t DurUs;
  uint64_t AVal;
  uint64_t BVal;
  char Phase;
};

struct Chunk {
  std::array<Event, ChunkCap> Events;
  /// Next chunk in the chain; release-published by the writer so a
  /// concurrent reader that acquired a Count past this chunk also sees
  /// the pointer.
  std::atomic<Chunk *> Next{nullptr};
};

/// One per registered thread. The writing thread owns WriteChunk/InChunk
/// (plain, unsynchronized); readers only follow Head/Next and load Count
/// with acquire, which pairs with the writer's release increment to make
/// the first Count events visible.
struct ThreadBuf {
  explicit ThreadBuf(uint32_t Tid) : Tid(Tid) {}
  ~ThreadBuf() {
    Chunk *C = Head.Next.load(std::memory_order_relaxed);
    while (C) {
      Chunk *N = C->Next.load(std::memory_order_relaxed);
      delete C;
      C = N;
    }
  }

  void push(const Event &E) {
    if (InChunk == ChunkCap) {
      Chunk *C = new Chunk;
      WriteChunk->Next.store(C, std::memory_order_release);
      WriteChunk = C;
      InChunk = 0;
    }
    WriteChunk->Events[InChunk++] = E;
    Count.fetch_add(1, std::memory_order_release);
  }

  const uint32_t Tid;
  Chunk Head;
  std::atomic<uint64_t> Count{0};
  Chunk *WriteChunk = &Head; ///< Writing thread only.
  size_t InChunk = 0;        ///< Writing thread only.
};

struct Registry {
  std::mutex M;
  std::vector<std::unique_ptr<ThreadBuf>> Bufs; ///< Guarded by M.
  /// Bumped by reset()/start() to invalidate cached thread-local buffer
  /// pointers from a previous recording generation.
  std::atomic<uint64_t> Epoch{1};
  std::chrono::steady_clock::time_point T0 =
      std::chrono::steady_clock::now();
  std::string ProcessName = "swift"; ///< Guarded by M.
};

Registry &registry() {
  static Registry R; // Leak-free: process-lifetime singleton.
  return R;
}

thread_local ThreadBuf *TlBuf = nullptr;
thread_local uint64_t TlEpoch = 0;

/// The calling thread's buffer for the current recording generation,
/// registering (under the lock, once per thread per generation) on first
/// use.
ThreadBuf *myBuf() {
  Registry &R = registry();
  uint64_t E = R.Epoch.load(std::memory_order_acquire);
  if (TlBuf && TlEpoch == E)
    return TlBuf;
  std::lock_guard<std::mutex> L(R.M);
  auto B = std::make_unique<ThreadBuf>(
      static_cast<uint32_t>(R.Bufs.size() + 1));
  TlBuf = B.get();
  TlEpoch = R.Epoch.load(std::memory_order_relaxed);
  R.Bufs.push_back(std::move(B));
  return TlBuf;
}

void appendEscaped(std::string &Out, const char *S) {
  for (; *S; ++S) {
    char C = *S;
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void appendU64(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(V));
  Out += Buf;
}

/// Serializes one event as a single JSON object line (no trailing comma).
void appendEventJson(std::string &Out, const Event &E, uint32_t Tid) {
  Out += "{\"name\":\"";
  appendEscaped(Out, E.Name);
  Out += "\",\"cat\":\"";
  appendEscaped(Out, E.Cat);
  Out += "\",\"ph\":\"";
  Out += E.Phase;
  Out += "\",\"ts\":";
  appendU64(Out, E.TsUs);
  if (E.Phase == 'X') {
    Out += ",\"dur\":";
    appendU64(Out, E.DurUs);
  }
  if (E.Phase == 'i')
    Out += ",\"s\":\"t\""; // Thread-scoped instant.
  Out += ",\"pid\":1,\"tid\":";
  appendU64(Out, Tid);
  if (E.AName || E.BName) {
    Out += ",\"args\":{";
    bool First = true;
    for (const auto &[N, V] :
         {std::pair{E.AName, E.AVal}, std::pair{E.BName, E.BVal}}) {
      if (!N)
        continue;
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      appendEscaped(Out, N);
      Out += "\":";
      appendU64(Out, V);
    }
    Out += '}';
  }
  Out += '}';
}

} // namespace

namespace detail {

uint64_t nowUs() {
  auto D = std::chrono::steady_clock::now() - registry().T0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(D).count());
}

void emit(char Phase, const char *Cat, const char *Name, uint64_t TsUs,
          uint64_t DurUs, TraceArg A, TraceArg B) {
  Event E;
  E.Cat = Cat;
  E.Name = Name;
  E.AName = A.Name;
  E.BName = B.Name;
  E.TsUs = TsUs;
  E.DurUs = DurUs;
  E.AVal = A.Value;
  E.BVal = B.Value;
  E.Phase = Phase;
  myBuf()->push(E);
}

} // namespace detail

TraceRecorder &TraceRecorder::instance() {
  static TraceRecorder R;
  return R;
}

void TraceRecorder::start() {
  reset();
  registry().T0 = std::chrono::steady_clock::now();
  detail::TraceOn.store(true, std::memory_order_relaxed);
}

void TraceRecorder::stop() {
  detail::TraceOn.store(false, std::memory_order_relaxed);
}

void TraceRecorder::reset() {
  stop();
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  // Invalidate every thread's cached buffer pointer before freeing the
  // buffers. Quiescence is the caller's contract; the epoch bump guards
  // against stale thread_local pointers on threads that emit *later*.
  R.Epoch.fetch_add(1, std::memory_order_release);
  R.Bufs.clear();
}

void TraceRecorder::setProcessName(std::string Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  R.ProcessName = std::move(Name);
}

uint64_t TraceRecorder::eventCount() const {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  uint64_t N = 0;
  for (const auto &B : R.Bufs)
    N += B->Count.load(std::memory_order_acquire);
  return N;
}

std::string TraceRecorder::toJson() const {
  struct Flat {
    Event E;
    uint32_t Tid;
  };
  std::vector<Flat> All;
  std::vector<uint32_t> Tids;
  std::string ProcName;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> L(R.M);
    ProcName = R.ProcessName;
    for (const auto &B : R.Bufs) {
      Tids.push_back(B->Tid);
      uint64_t N = B->Count.load(std::memory_order_acquire);
      const Chunk *C = &B->Head;
      for (uint64_t I = 0; I != N; ++I) {
        size_t InC = static_cast<size_t>(I % ChunkCap);
        if (I != 0 && InC == 0)
          C = C->Next.load(std::memory_order_acquire);
        All.push_back({C->Events[InC], B->Tid});
      }
    }
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const Flat &A, const Flat &B) {
                     return A.E.TsUs < B.E.TsUs;
                   });

  std::string Out;
  Out.reserve(All.size() * 96 + 256);
  Out += "{\"traceEvents\":[\n";
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"";
  appendEscaped(Out, ProcName.c_str());
  Out += "\"}}";
  for (uint32_t Tid : Tids) {
    Out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    appendU64(Out, Tid);
    Out += ",\"args\":{\"name\":\"thread-";
    appendU64(Out, Tid);
    Out += "\"}}";
  }
  for (const Flat &F : All) {
    Out += ",\n";
    appendEventJson(Out, F.E, F.Tid);
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

bool TraceRecorder::flushToFile(const std::string &Path, std::string *Err) {
  // Trace I/O must never take the analysis down with it: every failure —
  // serialization or the (throwing) atomic write — is converted into a
  // false return with the message in *Err.
  try {
    writeFileAtomic(Path, toJson(), "obs.flush");
    return true;
  } catch (const std::exception &E) {
    if (Err)
      *Err = E.what();
    return false;
  }
}

} // namespace obs
} // namespace swift
