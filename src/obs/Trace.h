//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead structured tracing for the hybrid solver, emitting
/// Chrome/Perfetto `trace_event` JSON (load the output at ui.perfetto.dev
/// or chrome://tracing). Three event kinds:
///
///   * duration spans ("ph":"X") via the RAII TraceSpan helper — nested
///     TD/BU phases, per-SCC wavefront work, pool tasks;
///   * instant events ("ph":"i") via instant() — k-trips, Sigma
///     fallbacks, governor ladder transitions;
///   * counter events ("ph":"C") via counterEvent() — path-edge growth,
///     queue depth, governor pressure timeline.
///
/// Overhead contract: when tracing is disabled (the default), every
/// emission point compiles down to ONE relaxed atomic load and a branch —
/// no allocation, no clock read, no locking (obs_test pins this with a
/// global operator-new counter). When enabled, each event is one POD
/// store into a per-thread chunked buffer: the writing thread owns the
/// chunk cursor (plain stores), publishes with a release increment of the
/// event count, and never takes a lock after its buffer is registered.
/// Event name/category/arg-name strings must have static storage duration
/// (string literals); only the pointer is recorded.
///
/// Concurrency contract: emission is lock-free and may run concurrently
/// with toJson()/flushToFile() (readers acquire the published count and
/// never touch the writer cursor). start() and reset() require quiescence
/// — no other thread may be emitting — because they drop the buffers.
///
/// Flushing goes through writeFileAtomic (failpoint prefix "obs.flush"):
/// a trace I/O failure is reported through the return value and must
/// never affect analysis results.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_OBS_TRACE_H
#define SWIFT_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace swift {
namespace obs {

/// An optional numeric argument attached to an event. \p Name must be a
/// static-lifetime string; a null Name means "absent".
struct TraceArg {
  const char *Name = nullptr;
  uint64_t Value = 0;
};

namespace detail {
/// The one global enable flag; relaxed loads on every emission point.
extern std::atomic<bool> TraceOn;

/// Microseconds since the recorder's start() epoch (steady clock).
uint64_t nowUs();

/// Records one event into the calling thread's buffer. Caller has already
/// checked tracingEnabled().
void emit(char Phase, const char *Cat, const char *Name, uint64_t TsUs,
          uint64_t DurUs, TraceArg A, TraceArg B);
} // namespace detail

/// One relaxed atomic load: the disabled-mode fast path.
inline bool tracingEnabled() {
  return detail::TraceOn.load(std::memory_order_relaxed);
}

/// Microseconds since trace start; 0 before the first start(). Exposed so
/// callers can timestamp their own bookkeeping (e.g. task enqueue times)
/// consistently with the trace timeline.
inline uint64_t nowMicros() { return detail::nowUs(); }

/// Emits an instant event (a vertical tick in the viewer).
inline void instant(const char *Cat, const char *Name, TraceArg A = {},
                    TraceArg B = {}) {
  if (!tracingEnabled())
    return;
  detail::emit('i', Cat, Name, detail::nowUs(), 0, A, B);
}

/// Emits a counter sample: a point on the named counter track. \p Series
/// names the value within the counter (the viewer stacks series).
inline void counterEvent(const char *Name, const char *Series,
                         uint64_t Value) {
  if (!tracingEnabled())
    return;
  detail::emit('C', "counter", Name, detail::nowUs(), 0, {Series, Value},
               {});
}

/// RAII duration span: captures the start time at construction, emits one
/// complete ("X") event at destruction (or close()). When tracing is
/// disabled at construction the destructor is a no-op — a span does not
/// straddle an enable/disable edge.
class TraceSpan {
public:
  TraceSpan(const char *Cat, const char *Name, TraceArg A = {},
            TraceArg B = {}) {
    if (!tracingEnabled())
      return;
    this->Cat = Cat;
    this->Name = Name;
    this->A = A;
    this->B = B;
    StartUs = detail::nowUs();
    Active = true;
  }
  ~TraceSpan() { close(); }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Ends the span early (idempotent).
  void close() {
    if (!Active)
      return;
    Active = false;
    detail::emit('X', Cat, Name, StartUs, detail::nowUs() - StartUs, A, B);
  }

  /// Attaches/overwrites the second argument before the span closes —
  /// for results only known at the end (e.g. summary relation counts).
  void setArg(const char *ArgName, uint64_t Value) {
    if (Active)
      B = {ArgName, Value};
  }

private:
  const char *Cat = nullptr;
  const char *Name = nullptr;
  TraceArg A, B;
  uint64_t StartUs = 0;
  bool Active = false;
};

/// The process-wide recorder. All emission goes through the free
/// functions above; this type manages lifecycle and serialization.
class TraceRecorder {
public:
  static TraceRecorder &instance();

  /// Drops any buffered events, re-zeroes the timeline, and enables
  /// tracing. Requires quiescence (no concurrent emitters).
  void start();

  /// Disables tracing; buffered events are retained for flushing.
  void stop();

  bool enabled() const { return tracingEnabled(); }

  /// Number of published events across all thread buffers.
  uint64_t eventCount() const;

  /// Names this process in the emitted trace (the process_name metadata
  /// record; default "swift"). Sharded workers set a per-shard name so a
  /// merged trace (obs/TraceMerge.h) shows one labelled track group per
  /// worker. Safe at any time; takes effect at the next toJson().
  void setProcessName(std::string Name);

  /// Serializes every published event as Chrome trace JSON
  /// ({"traceEvents":[...]}, one event per line, sorted by timestamp,
  /// with thread-name metadata events).
  std::string toJson() const;

  /// toJson() + writeFileAtomic under the "obs.flush" failpoint prefix.
  /// Returns false (with *Err set) on I/O failure; never throws.
  bool flushToFile(const std::string &Path, std::string *Err = nullptr);

  /// Disables tracing and drops all buffered events. Requires quiescence.
  void reset();

private:
  TraceRecorder() = default;
};

} // namespace obs
} // namespace swift

#endif // SWIFT_OBS_TRACE_H
