//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MetricsRegistry interning and the swift-metrics v1 JSON snapshot.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/AtomicFile.h"

#include <cstdio>

namespace swift {
namespace obs {

namespace detail {
std::atomic<bool> MetricsOn{false};
} // namespace detail

MetricsRegistry &MetricsRegistry::instance() {
  static MetricsRegistry R;
  return R;
}

Histogram *MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  auto &Slot = Hists[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return Slot.get();
}

Gauge *MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return Slot.get();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> L(M);
  for (auto &[Name, H] : Hists)
    H->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
}

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(C)));
      Out += Buf;
      continue;
    }
    Out += C;
  }
}

void appendU64(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(V));
  Out += Buf;
}

} // namespace

std::string MetricsRegistry::snapshotJson(const Stats *RunStats) const {
  std::string Out;
  Out += "{\"format\":\"swift-metrics\",\"version\":1";

  Out += ",\n\"counters\":{";
  if (RunStats) {
    bool First = true;
    for (const auto &[Name, Value] : RunStats->all()) {
      if (!First)
        Out += ',';
      First = false;
      Out += "\n\"";
      appendEscaped(Out, Name);
      Out += "\":";
      appendU64(Out, Value);
    }
  }
  Out += "}";

  std::lock_guard<std::mutex> L(M);

  Out += ",\n\"gauges\":{";
  {
    bool First = true;
    for (const auto &[Name, G] : Gauges) {
      if (!First)
        Out += ',';
      First = false;
      Out += "\n\"";
      appendEscaped(Out, Name);
      Out += "\":{\"value\":";
      appendU64(Out, G->value());
      Out += ",\"max\":";
      appendU64(Out, G->max());
      Out += '}';
    }
  }
  Out += "}";

  Out += ",\n\"histograms\":{";
  {
    bool First = true;
    for (const auto &[Name, H] : Hists) {
      if (!First)
        Out += ',';
      First = false;
      Out += "\n\"";
      appendEscaped(Out, Name);
      Out += "\":{\"count\":";
      appendU64(Out, H->count());
      Out += ",\"sum\":";
      appendU64(Out, H->sum());
      Out += ",\"min\":";
      appendU64(Out, H->min());
      Out += ",\"max\":";
      appendU64(Out, H->max());
      Out += ",\"buckets\":[";
      bool FirstB = true;
      for (unsigned I = 0; I != Histogram::NumBuckets; ++I) {
        uint64_t N = H->bucketCount(I);
        if (N == 0)
          continue;
        if (!FirstB)
          Out += ',';
        FirstB = false;
        Out += "{\"lo\":";
        appendU64(Out, Histogram::bucketLo(I));
        Out += ",\"hi\":";
        appendU64(Out, Histogram::bucketHi(I));
        Out += ",\"n\":";
        appendU64(Out, N);
        Out += '}';
      }
      Out += "]}";
    }
  }
  Out += "}\n}\n";
  return Out;
}

bool MetricsRegistry::writeSnapshot(const std::string &Path,
                                    const Stats *RunStats,
                                    std::string *Err) {
  // Metrics I/O must never take the analysis down with it.
  try {
    writeFileAtomic(Path, snapshotJson(RunStats), "obs.metrics");
    return true;
  } catch (const std::exception &E) {
    if (Err)
      *Err = E.what();
    return false;
  }
}

} // namespace obs
} // namespace swift
