//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchResult.h"

#include "obs/Json.h"
#include "support/AtomicFile.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>

using namespace swift;
using namespace swift::obs;
using namespace swift::obs::benchjson;

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

json::Value num(double V) {
  json::Value N;
  N.K = json::Value::Kind::Number;
  N.Num = V;
  return N;
}

json::Value str(std::string S) {
  json::Value V;
  V.K = json::Value::Kind::String;
  V.Str = std::move(S);
  return V;
}

json::Value boolean(bool B) {
  json::Value V;
  V.K = json::Value::Kind::Bool;
  V.B = B;
  return V;
}

json::Value
numObj(const std::vector<std::pair<std::string, double>> &Pairs) {
  json::Value O;
  O.K = json::Value::Kind::Object;
  for (const auto &[K, V] : Pairs)
    O.Obj.emplace_back(K, num(V));
  return O;
}

} // namespace

std::string benchjson::dumpReport(const Report &R) {
  json::Value Root;
  Root.K = json::Value::Kind::Object;
  Root.Obj.emplace_back("format", str(FormatName));
  Root.Obj.emplace_back("version", num(double(FormatVersion)));
  Root.Obj.emplace_back("bench", str(R.Bench));
  Root.Obj.emplace_back("context", numObj(R.Context));
  json::Value Rows;
  Rows.K = json::Value::Kind::Array;
  for (const Row &W : R.Rows) {
    json::Value JR;
    JR.K = json::Value::Kind::Object;
    JR.Obj.emplace_back("workload", str(W.Workload));
    JR.Obj.emplace_back("config", str(W.Config));
    JR.Obj.emplace_back("timeout", boolean(W.Timeout));
    JR.Obj.emplace_back("metrics", numObj(W.Metrics));
    Rows.Arr.push_back(std::move(JR));
  }
  Root.Obj.emplace_back("rows", std::move(Rows));
  return json::dump(Root) + "\n";
}

//===----------------------------------------------------------------------===//
// Parsing + schema validation
//===----------------------------------------------------------------------===//

namespace {

bool failParse(std::string *Err, std::string Msg) {
  if (Err)
    *Err = std::move(Msg);
  return false;
}

/// Reads an all-numeric object (context/metrics) into \p Out, rejecting
/// non-finite or negative values.
bool readNumObj(const json::Value &V, const char *What,
                std::vector<std::pair<std::string, double>> &Out,
                std::string *Err) {
  if (!V.isObject())
    return failParse(Err, std::string(What) + " is not an object");
  std::set<std::string> Seen;
  for (const auto &[K, E] : V.Obj) {
    if (!E.isNumber())
      return failParse(Err, std::string(What) + "." + K + " is not a number");
    if (!std::isfinite(E.Num) || E.Num < 0)
      return failParse(Err, std::string(What) + "." + K +
                                " is negative or non-finite");
    if (!Seen.insert(K).second)
      return failParse(Err, std::string(What) + " has duplicate key '" + K +
                                "'");
    Out.emplace_back(K, E.Num);
  }
  return true;
}

} // namespace

bool benchjson::parseReport(std::string_view Text, Report &R,
                            std::string *Err) {
  json::Value Root;
  try {
    Root = json::parse(Text);
  } catch (const std::runtime_error &E) {
    return failParse(Err, E.what());
  }
  if (!Root.isObject())
    return failParse(Err, "top level is not an object");

  const json::Value *Format = Root.find("format");
  if (!Format || !Format->isString() || Format->Str != FormatName)
    return failParse(Err, "missing or wrong \"format\" (want \"" +
                              std::string(FormatName) + "\")");
  const json::Value *Version = Root.find("version");
  if (!Version || !Version->isNumber() ||
      Version->asU64() != FormatVersion || Version->Num != FormatVersion)
    return failParse(Err, "missing or unsupported \"version\" (want " +
                              std::to_string(FormatVersion) + ")");
  const json::Value *Bench = Root.find("bench");
  if (!Bench || !Bench->isString() || Bench->Str.empty())
    return failParse(Err, "missing or empty \"bench\" name");

  Report Out;
  Out.Bench = Bench->Str;
  if (const json::Value *Ctx = Root.find("context"))
    if (!readNumObj(*Ctx, "context", Out.Context, Err))
      return false;

  const json::Value *Rows = Root.find("rows");
  if (!Rows || !Rows->isArray() || Rows->Arr.empty())
    return failParse(Err, "missing or empty \"rows\" array");

  std::set<std::string> Keys;
  for (size_t I = 0; I != Rows->Arr.size(); ++I) {
    const json::Value &JR = Rows->Arr[I];
    std::string Where = "rows[" + std::to_string(I) + "]";
    if (!JR.isObject())
      return failParse(Err, Where + " is not an object");
    const json::Value *Workload = JR.find("workload");
    const json::Value *Config = JR.find("config");
    const json::Value *Timeout = JR.find("timeout");
    const json::Value *Metrics = JR.find("metrics");
    if (!Workload || !Workload->isString() || Workload->Str.empty())
      return failParse(Err, Where + ": missing or empty \"workload\"");
    if (!Config || !Config->isString() || Config->Str.empty())
      return failParse(Err, Where + ": missing or empty \"config\"");
    if (!Timeout || !Timeout->isBool())
      return failParse(Err, Where + ": missing or non-bool \"timeout\"");
    if (!Metrics)
      return failParse(Err, Where + ": missing \"metrics\"");
    Row W;
    W.Workload = Workload->Str;
    W.Config = Config->Str;
    W.Timeout = Timeout->B;
    if (!readNumObj(*Metrics, (Where + ".metrics").c_str(), W.Metrics, Err))
      return false;
    if (W.Metrics.empty())
      return failParse(Err, Where + ".metrics is empty");
    if (!Keys.insert(W.key()).second)
      return failParse(Err, Where + ": duplicate row key '" + W.key() + "'");
    Out.Rows.push_back(std::move(W));
  }
  R = std::move(Out);
  return true;
}

bool benchjson::writeReport(const Report &R, const std::string &Path,
                            std::string *Err) {
  try {
    writeFileAtomic(Path, dumpReport(R), "obs.bench");
  } catch (const std::runtime_error &E) {
    return failParse(Err, E.what());
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Diffing
//===----------------------------------------------------------------------===//

namespace {

bool isTimeMetric(std::string_view Name) {
  if (Name == "seconds")
    return true;
  return Name.size() > 8 &&
         Name.substr(Name.size() - 8) == "_seconds";
}

bool wantMetric(std::string_view Name, DiffOptions::Filter F) {
  switch (F) {
  case DiffOptions::Filter::All:
    return true;
  case DiffOptions::Filter::TimeOnly:
    return isTimeMetric(Name);
  case DiffOptions::Filter::StepsOnly:
    return Name == "steps";
  }
  return true;
}

} // namespace

DiffResult benchjson::diffReports(const Report &Base, const Report &New,
                                  const DiffOptions &O) {
  DiffResult D;
  D.BenchNameMismatch = Base.Bench != New.Bench;
  for (const Row &B : Base.Rows) {
    const Row *N = New.findRow(B.key());
    if (!N) {
      D.OnlyBaseline.push_back(B.key());
      continue;
    }
    if (B.Timeout != N->Timeout) {
      (N->Timeout ? D.NewTimeouts : D.FixedTimeouts).push_back(B.key());
      continue; // Budget-truncated metrics are not comparable.
    }
    if (B.Timeout)
      continue; // Both truncated by the budget: nothing comparable.
    for (const auto &[Name, OldV] : B.Metrics) {
      if (!wantMetric(Name, O.Metric))
        continue;
      const double *NewV = N->find(Name);
      if (!NewV)
        continue; // Metric sets may evolve; only common ones compare.
      DiffEntry E;
      E.RowKey = B.key();
      E.Name = Name;
      E.Old = OldV;
      E.New = *NewV;
      double Floor = isTimeMetric(Name) ? O.MinSeconds : O.MinCount;
      double Delta = E.New - E.Old;
      if (Delta > OldV * O.Threshold && Delta > Floor)
        E.V = DiffEntry::Verdict::Regressed;
      else if (-Delta > OldV * O.Threshold && -Delta > Floor)
        E.V = DiffEntry::Verdict::Improved;
      D.Entries.push_back(std::move(E));
    }
  }
  for (const Row &N : New.Rows)
    if (!Base.findRow(N.key()))
      D.OnlyNew.push_back(N.key());
  return D;
}

std::string benchjson::formatDiff(const DiffResult &D,
                                  const DiffOptions &O) {
  std::string Out;
  char Buf[256];
  unsigned Regressed = 0, Improved = 0, Within = 0;
  for (const DiffEntry &E : D.Entries) {
    const char *Tag = "  within";
    if (E.V == DiffEntry::Verdict::Regressed) {
      Tag = "REGRESSED";
      ++Regressed;
    } else if (E.V == DiffEntry::Verdict::Improved) {
      Tag = "improved";
      ++Improved;
    } else {
      ++Within;
    }
    double Ratio = E.Old > 0 ? E.New / E.Old : (E.New > 0 ? HUGE_VAL : 1.0);
    std::snprintf(Buf, sizeof(Buf),
                  "%-9s %-28s %-12s %14g -> %-14g (%.2fx)\n", Tag,
                  E.RowKey.c_str(), E.Name.c_str(), E.Old, E.New, Ratio);
    Out += Buf;
  }
  for (const std::string &K : D.NewTimeouts)
    Out += "REGRESSED " + K + " completed in baseline, times out now\n";
  for (const std::string &K : D.FixedTimeouts)
    Out += "improved  " + K + " timed out in baseline, completes now\n";
  bool MissingFail = D.hasMissingRows() && !O.AllowMissingRows;
  for (const std::string &K : D.OnlyBaseline)
    Out += (MissingFail ? "MISSING   " : "note      ") + K +
           " only in baseline\n";
  for (const std::string &K : D.OnlyNew)
    Out += "note      " + K + " only in new result\n";
  if (D.BenchNameMismatch)
    Out += "note      bench names differ\n";
  const char *Tail = D.hasRegression() ? "REGRESSION"
                     : MissingFail     ? "MISSING ROWS"
                                       : "OK";
  std::snprintf(Buf, sizeof(Buf),
                "swift-benchdiff: %s — %u regressed, %u improved, %u "
                "within %.0f%% noise, %zu timeout flip(s), %zu missing "
                "row(s)\n",
                Tail, Regressed, Improved, Within, O.Threshold * 100,
                D.NewTimeouts.size() + D.FixedTimeouts.size(),
                D.OnlyBaseline.size());
  Out += Buf;
  return Out;
}
