//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "swift-bench" v1 machine-readable benchmark result format and the
/// comparison engine behind tools/swift-benchdiff. Every bench binary
/// emits this via --json-out= (bench/BenchCommon.h); the checked-in
/// BENCH_baseline.json files and the CI perf gate consume it.
///
/// Schema (all object keys appear in a fixed order, so byte-level diffs
/// of two snapshots are stable):
///
///   {"format": "swift-bench", "version": 1,
///    "bench": "<binary name>",
///    "context": {"budget_seconds": 15, ...},      // numeric, optional
///    "rows": [
///      {"workload": "jpat-p", "config": "td", "timeout": false,
///       "metrics": {"seconds": 0.42, "steps": 10120, ...}}]}
///
/// Rows are keyed by (workload, config); keys must be unique. Every
/// metric is a non-negative finite number where *lower is better*
/// (times, budget steps, summary/relation counts) — speedups and other
/// higher-is-better derived values stay out of the file by convention.
///
/// Comparison semantics (diffReports): rows are matched by key; metric
/// "seconds" (and any "*_seconds") is time-like and compared with both a
/// relative noise threshold and an absolute floor, every other metric is
/// a count and compared with the relative threshold plus a small count
/// floor. Budget-step counts are deterministic for a fixed solver at a
/// fixed thread count, so the CI gate compares steps only
/// (--metric=steps) and stays immune to runner-machine speed; local
/// trajectory checks compare wall time with the noise threshold.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_OBS_BENCHRESULT_H
#define SWIFT_OBS_BENCHRESULT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swift {
namespace obs {
namespace benchjson {

inline constexpr const char *FormatName = "swift-bench";
inline constexpr uint64_t FormatVersion = 1;

/// One benchmark run: a (workload, config) cell with its metrics.
struct Row {
  std::string Workload;
  std::string Config;
  bool Timeout = false;
  /// Insertion-ordered; names unique; values non-negative and finite.
  std::vector<std::pair<std::string, double>> Metrics;

  void set(std::string Name, double V) {
    for (auto &M : Metrics)
      if (M.first == Name) {
        M.second = V;
        return;
      }
    Metrics.emplace_back(std::move(Name), V);
  }
  const double *find(std::string_view Name) const {
    for (const auto &M : Metrics)
      if (M.first == Name)
        return &M.second;
    return nullptr;
  }
  std::string key() const { return Workload + "/" + Config; }
};

struct Report {
  std::string Bench;
  /// Run context (budget, threads, ...); numeric, insertion-ordered.
  std::vector<std::pair<std::string, double>> Context;
  std::vector<Row> Rows;

  Row &newRow(std::string Workload, std::string Config) {
    Rows.emplace_back();
    Rows.back().Workload = std::move(Workload);
    Rows.back().Config = std::move(Config);
    return Rows.back();
  }
  const Row *findRow(std::string_view Key) const {
    for (const Row &R : Rows)
      if (R.key() == Key)
        return &R;
    return nullptr;
  }
};

/// Serializes \p R as compact swift-bench v1 JSON (deterministic key
/// order: schema fields first, then context/metrics in insertion order).
std::string dumpReport(const Report &R);

/// Parses and schema-validates swift-bench v1 text. Returns false with a
/// diagnostic in \p Err on malformed JSON, wrong format/version, missing
/// or mistyped fields, non-finite/negative metrics, or duplicate
/// (workload, config) row keys.
bool parseReport(std::string_view Text, Report &R, std::string *Err);

/// dumpReport + writeFileAtomic (failpoint prefix "obs.bench"). Returns
/// false with the write error in \p Err.
bool writeReport(const Report &R, const std::string &Path,
                 std::string *Err);

struct DiffOptions {
  /// Relative regression threshold: new > old * (1 + Threshold) flags.
  double Threshold = 0.25;
  /// Absolute floor for time-like metrics: deltas under this many
  /// seconds are never regressions (scheduler noise on sub-50ms cells).
  double MinSeconds = 0.05;
  /// Absolute floor for count metrics (a 2 -> 3 step count is +50% but
  /// meaningless).
  double MinCount = 8.0;
  enum class Filter { All, TimeOnly, StepsOnly };
  Filter Metric = Filter::All;
  /// Accept rows that exist only in the baseline (a deliberately
  /// subsetted run, e.g. the CI gate's 3-workload sweep against the full
  /// baseline). Off by default: a silently shrunken bench set would
  /// otherwise pass the gate with whatever rows regressed conveniently
  /// absent.
  bool AllowMissingRows = false;
};

struct DiffEntry {
  enum class Verdict { Improved, Within, Regressed };
  std::string RowKey; ///< "workload/config"
  std::string Name;   ///< metric name
  double Old = 0.0;
  double New = 0.0;
  Verdict V = Verdict::Within;
};

struct DiffResult {
  /// Per-metric comparisons, in baseline row/metric order.
  std::vector<DiffEntry> Entries;
  /// Rows that newly time out (regressions) / newly complete.
  std::vector<std::string> NewTimeouts, FixedTimeouts;
  /// Row keys present on only one side. OnlyNew is informational;
  /// OnlyBaseline (removed/renamed workloads) is its own failing
  /// category unless DiffOptions::AllowMissingRows opted in — see
  /// hasMissingRows().
  std::vector<std::string> OnlyBaseline, OnlyNew;
  bool BenchNameMismatch = false;

  bool hasRegression() const {
    if (!NewTimeouts.empty())
      return true;
    for (const DiffEntry &E : Entries)
      if (E.V == DiffEntry::Verdict::Regressed)
        return true;
    return false;
  }

  /// Baseline rows with no counterpart in the new result: the bench set
  /// shrank. Distinct from hasRegression() so callers can exit with a
  /// dedicated code (swift-benchdiff exits 4).
  bool hasMissingRows() const { return !OnlyBaseline.empty(); }
};

/// Compares \p New against \p Base row by row. Rows where either side
/// timed out skip metric comparison (budget-truncated numbers are
/// machine-dependent); a completed->timeout flip is itself a regression.
DiffResult diffReports(const Report &Base, const Report &New,
                       const DiffOptions &O);

/// Human-readable rendering of a diff: one line per comparison plus a
/// summary tail ("swift-benchdiff: OK ..." or "... REGRESSION ...").
std::string formatDiff(const DiffResult &D, const DiffOptions &O);

} // namespace benchjson
} // namespace obs
} // namespace swift

#endif // SWIFT_OBS_BENCHRESULT_H
