//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MetricsRegistry: histograms and gauges layered on top of the flat
/// Stats counters, with a versioned JSON snapshot format ("swift-metrics"
/// version 1) consumed by the benches, swift-difftest, and EXPERIMENTS.md
/// tables.
///
///   * Histogram — log2-bucketed (bucket 0 holds exactly the value 0,
///     bucket i >= 1 holds [2^(i-1), 2^i)), with count/sum/min/max.
///     record() is lock-free: relaxed atomic adds only.
///   * Gauge — a last-value + running-max pair (queue depth, pressure).
///
/// Instruments are interned by name: histogram()/gauge() return pointers
/// that stay valid for the process lifetime, so hot paths resolve once
/// and then pay only metricsEnabled() (one relaxed load) plus a few
/// relaxed atomic ops per sample. Recording into an instrument while
/// another thread snapshots is safe; the snapshot is a consistent-enough
/// monotone view (counts may trail sums by in-flight samples).
///
/// Snapshot writes go through writeFileAtomic (failpoint prefix
/// "obs.metrics"); failure is reported via the return value, never an
/// exception — metrics I/O must not affect analysis results.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_OBS_METRICS_H
#define SWIFT_OBS_METRICS_H

#include "support/Stats.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace swift {
namespace obs {

namespace detail {
extern std::atomic<bool> MetricsOn;
} // namespace detail

/// One relaxed atomic load: the disabled-mode fast path.
inline bool metricsEnabled() {
  return detail::MetricsOn.load(std::memory_order_relaxed);
}

/// Log2-bucketed histogram over uint64_t samples. Thread-safe via
/// relaxed atomics; no locks anywhere on the record path.
class Histogram {
public:
  /// Bucket 0: the value 0. Bucket i in [1, 64]: values in [2^(i-1), 2^i).
  static constexpr unsigned NumBuckets = 65;

  static unsigned bucketOf(uint64_t V) {
    // std::bit_width(V) == 1 + floor(log2 V) for V > 0, and 0 for V == 0,
    // which is exactly the bucket index we want.
    return static_cast<unsigned>(std::bit_width(V));
  }

  /// Inclusive lower bound of bucket \p I.
  static uint64_t bucketLo(unsigned I) {
    return I < 2 ? static_cast<uint64_t>(I) : uint64_t{1} << (I - 1);
  }

  /// Inclusive upper bound of bucket \p I.
  static uint64_t bucketHi(unsigned I) {
    if (I == 0)
      return 0;
    if (I == 64)
      return UINT64_MAX;
    return (uint64_t{1} << I) - 1;
  }

  void record(uint64_t V) {
    Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    N.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    uint64_t Cur = Min.load(std::memory_order_relaxed);
    while (V < Cur &&
           !Min.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
    Cur = Max.load(std::memory_order_relaxed);
    while (V > Cur &&
           !Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t min() const {
    uint64_t V = Min.load(std::memory_order_relaxed);
    return V == UINT64_MAX && count() == 0 ? 0 : V;
  }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t bucketCount(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    N.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Min.store(UINT64_MAX, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// Last-value + running-max gauge (e.g. pool queue depth).
class Gauge {
public:
  void set(uint64_t V) {
    Val.store(V, std::memory_order_relaxed);
    uint64_t Cur = Mx.load(std::memory_order_relaxed);
    while (V > Cur &&
           !Mx.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return Val.load(std::memory_order_relaxed); }
  uint64_t max() const { return Mx.load(std::memory_order_relaxed); }
  void reset() {
    Val.store(0, std::memory_order_relaxed);
    Mx.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Val{0};
  std::atomic<uint64_t> Mx{0};
};

/// The process-wide instrument registry.
class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  void enable() { detail::MetricsOn.store(true, std::memory_order_relaxed); }
  void disable() {
    detail::MetricsOn.store(false, std::memory_order_relaxed);
  }

  /// Interns (creating on first use) the named instrument. The returned
  /// pointer is valid for the process lifetime; resolve once, sample many.
  Histogram *histogram(const std::string &Name);
  Gauge *gauge(const std::string &Name);

  /// Zeroes every instrument (names and pointers stay interned).
  void reset();

  /// The versioned snapshot:
  ///   {"format":"swift-metrics","version":1,
  ///    "counters":{...},            // from RunStats, when given
  ///    "gauges":{NAME:{"value":v,"max":m}},
  ///    "histograms":{NAME:{"count":c,"sum":s,"min":..,"max":..,
  ///                        "buckets":[{"lo":..,"hi":..,"n":..},...]}}}
  /// Only non-empty histogram buckets appear.
  std::string snapshotJson(const Stats *RunStats = nullptr) const;

  /// snapshotJson() + writeFileAtomic (failpoint prefix "obs.metrics").
  /// Returns false with *Err set on I/O failure; never throws.
  bool writeSnapshot(const std::string &Path,
                     const Stats *RunStats = nullptr,
                     std::string *Err = nullptr);

private:
  MetricsRegistry() = default;

  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Histogram>> Hists;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
};

} // namespace obs
} // namespace swift

#endif // SWIFT_OBS_METRICS_H
