//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceMerge.h"

#include "obs/Json.h"

#include <map>
#include <stdexcept>
#include <utility>

using namespace swift;
using namespace swift::obs;

namespace {

void setKey(json::Value &O, const std::string &K, json::Value V) {
  for (auto &[Key, Val] : O.Obj)
    if (Key == K) {
      Val = std::move(V);
      return;
    }
  O.Obj.emplace_back(K, std::move(V));
}

/// The name carried by an input's own process_name metadata record, or ""
/// when it has none (older traces, hand-written fixtures).
std::string embeddedProcessName(const json::Value &TraceEvents) {
  for (const json::Value &E : TraceEvents.Arr) {
    if (!E.isObject())
      continue;
    const json::Value *Name = E.find("name");
    if (!Name || !Name->isString() || Name->Str != "process_name")
      continue;
    const json::Value *Args = E.find("args");
    if (!Args || !Args->isObject())
      continue;
    const json::Value *N = Args->find("name");
    if (N && N->isString())
      return N->Str;
  }
  return "";
}

} // namespace

std::string obs::mergeTraces(const std::vector<TraceInput> &Inputs,
                             TraceMergeStats *Stats) {
  // Parse everything first so a malformed input aborts before any output
  // is assembled, and resolve each input's process name.
  std::vector<json::Value> Roots;
  std::vector<std::string> Names;
  Roots.reserve(Inputs.size());
  for (const TraceInput &In : Inputs) {
    json::Value Root;
    try {
      Root = json::parse(In.Json);
    } catch (const std::exception &E) {
      throw std::runtime_error(In.Label + ": " + E.what());
    }
    const json::Value *TraceEvents = Root.find("traceEvents");
    if (!Root.isObject() || !TraceEvents || !TraceEvents->isArray())
      throw std::runtime_error(
          In.Label + ": not a Chrome trace (no traceEvents array)");
    std::string Name = embeddedProcessName(*TraceEvents);
    Names.push_back(Name.empty() ? In.Label : Name);
    Roots.push_back(std::move(Root));
  }

  // De-conflict duplicates by occurrence: two incarnations of shard
  // worker "swift-shard-worker 2" become "... 2" and "... 2 #2" instead
  // of folding into one viewer track.
  std::map<std::string, size_t> Seen;
  TraceMergeStats Local;
  for (std::string &Name : Names) {
    size_t Occurrence = ++Seen[Name];
    if (Occurrence > 1) {
      Name += " #" + std::to_string(Occurrence);
      ++Local.Renamed;
    }
  }

  json::Value Merged;
  Merged.K = json::Value::Kind::Object;
  json::Value Events;
  Events.K = json::Value::Kind::Array;

  for (size_t I = 0; I != Roots.size(); ++I) {
    uint64_t Pid = I + 1;
    json::Value Meta;
    Meta.K = json::Value::Kind::Object;
    setKey(Meta, "name", json::Value::str("process_name"));
    setKey(Meta, "ph", json::Value::str("M"));
    setKey(Meta, "pid", json::Value::u64(Pid));
    setKey(Meta, "tid", json::Value::u64(0));
    json::Value Args;
    Args.K = json::Value::Kind::Object;
    setKey(Args, "name", json::Value::str(Names[I]));
    setKey(Meta, "args", std::move(Args));
    Events.Arr.push_back(std::move(Meta));

    for (const json::Value &E : Roots[I].find("traceEvents")->Arr) {
      if (!E.isObject())
        continue;
      const json::Value *Name = E.find("name");
      // Per-input process_name records are superseded by ours above.
      if (Name && Name->isString() && Name->Str == "process_name")
        continue;
      json::Value Copy = E;
      setKey(Copy, "pid", json::Value::u64(Pid));
      Events.Arr.push_back(std::move(Copy));
    }
  }

  Local.Events = Events.Arr.size();
  if (Stats)
    *Stats = Local;
  setKey(Merged, "traceEvents", std::move(Events));
  setKey(Merged, "displayTimeUnit", json::Value::str("ms"));
  return json::dump(Merged) + "\n";
}
