//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

#include <cmath>
#include <cstdio>

using namespace swift;

std::string swift::formatSeconds(double Seconds) {
  char Buf[64];
  if (Seconds >= 60.0) {
    int Minutes = static_cast<int>(Seconds / 60.0);
    int Rem = static_cast<int>(std::lround(Seconds - Minutes * 60.0));
    if (Rem == 60) {
      ++Minutes;
      Rem = 0;
    }
    std::snprintf(Buf, sizeof(Buf), "%dm%ds", Minutes, Rem);
  } else if (Seconds >= 10.0) {
    std::snprintf(Buf, sizeof(Buf), "%.1fs", Seconds);
  } else {
    std::snprintf(Buf, sizeof(Buf), "%.2fs", Seconds);
  }
  return Buf;
}
