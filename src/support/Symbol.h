//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned identifiers. A Symbol is a cheap, comparable handle to a string
/// owned by a SymbolTable. All IR names (variables, fields, procedures,
/// typestates, methods) are Symbols so that hot-path comparisons are integer
/// comparisons.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_SYMBOL_H
#define SWIFT_SUPPORT_SYMBOL_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace swift {

/// An interned string handle. Value 0 is reserved for the invalid symbol.
class Symbol {
public:
  Symbol() : Id(0) {}
  explicit Symbol(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != 0; }
  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  uint32_t Id;
};

/// Owns interned strings and hands out Symbols. Not thread-safe; each
/// Program owns exactly one table.
class SymbolTable {
public:
  SymbolTable() {
    // Reserve id 0 as the invalid symbol.
    Strings.push_back("");
  }

  /// Interns \p Text, returning the existing Symbol if already present.
  Symbol intern(std::string_view Text) {
    auto It = Index.find(std::string(Text));
    if (It != Index.end())
      return It->second;
    Symbol S(static_cast<uint32_t>(Strings.size()));
    Strings.emplace_back(Text);
    Index.emplace(Strings.back(), S);
    return S;
  }

  /// Returns the string for \p S. The reference stays valid for the table's
  /// lifetime.
  const std::string &text(Symbol S) const {
    assert(S.id() < Strings.size() && "symbol from a different table");
    return Strings[S.id()];
  }

  size_t size() const { return Strings.size() - 1; }

private:
  std::vector<std::string> Strings;
  std::unordered_map<std::string, Symbol> Index;
};

} // namespace swift

namespace std {
template <> struct hash<swift::Symbol> {
  size_t operator()(swift::Symbol S) const noexcept {
    return std::hash<uint32_t>()(S.id());
  }
};
} // namespace std

#endif // SWIFT_SUPPORT_SYMBOL_H
