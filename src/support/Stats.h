//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named statistic counters collected by the solvers: numbers of top-down
/// and bottom-up summaries, worklist pops, relation-domain operation counts,
/// and so on. These back the "# summaries" columns of the reproduced tables.
///
/// Counter names are interned once in a process-wide registry; the solvers
/// resolve a Stats::Counter handle per name at construction and bump
/// counters through it with a plain vector index. That keeps the hot paths
/// (one bump per propagated path edge / node visit) free of per-event
/// string map lookups, and — because handles are process-wide — lets
/// per-worker Stats instances be merged into a main one by index.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_STATS_H
#define SWIFT_SUPPORT_STATS_H

#include <cassert>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace swift {

/// A bag of named 64-bit counters.
///
/// Individual instances are not thread-safe; concurrent workers each own a
/// local Stats and the owner merge()s them when a worker finishes.
class Stats {
public:
  /// An interned counter handle: resolve once with Stats::id, bump through
  /// counter(Counter) at vector-index cost per event.
  ///
  /// Id 0 is reserved for the invalid (default-constructed) handle: real
  /// ids start at 1, so a handle that was never resolved can never silently
  /// bump whichever counter happened to be interned first.
  class Counter {
  public:
    Counter() = default;

    bool isValid() const { return Id != 0; }

    friend bool operator==(Counter A, Counter B) { return A.Id == B.Id; }
    friend bool operator!=(Counter A, Counter B) { return A.Id != B.Id; }

  private:
    friend class Stats;
    explicit Counter(uint32_t Id) : Id(Id) {}
    uint32_t Id = 0;
  };

  /// Interns \p Name in the process-wide registry (thread-safe). Call once
  /// per solver, not per event. The returned handle is always valid.
  static Counter id(const std::string &Name);

  uint64_t &counter(Counter C) {
    assert(C.isValid() && "bump through a default-constructed Counter");
    if (C.Id >= Values.size())
      Values.resize(C.Id + 1, 0);
    return Values[C.Id];
  }

  /// String-keyed access, kept for reporting and cold paths.
  uint64_t &counter(const std::string &Name) { return counter(id(Name)); }

  uint64_t get(const std::string &Name) const;

  void clear() { Values.clear(); }

  /// Adds every counter of \p Other into this one (per-worker stats merge).
  void merge(const Stats &Other);

  /// Snapshot of all non-zero counters by name.
  std::map<std::string, uint64_t> all() const;

  void print(std::ostream &OS) const;

  /// Formats a count the way the paper's Table 2 does: "6.5k", "1,357k".
  static std::string formatThousands(uint64_t N);

private:
  std::vector<uint64_t> Values; ///< Indexed by process-wide counter id.
};

} // namespace swift

#endif // SWIFT_SUPPORT_STATS_H
