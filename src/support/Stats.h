//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named statistic counters collected by the solvers: numbers of top-down
/// and bottom-up summaries, worklist pops, relation-domain operation counts,
/// and so on. These back the "# summaries" columns of the reproduced tables.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_STATS_H
#define SWIFT_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace swift {

/// A bag of named 64-bit counters.
class Stats {
public:
  uint64_t &counter(const std::string &Name) { return Counters[Name]; }

  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  void clear() { Counters.clear(); }

  const std::map<std::string, uint64_t> &all() const { return Counters; }

  void print(std::ostream &OS) const;

  /// Formats a count the way the paper's Table 2 does: "6.5k", "1,357k".
  static std::string formatThousands(uint64_t N);

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace swift

#endif // SWIFT_SUPPORT_STATS_H
