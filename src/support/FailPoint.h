//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection: named failpoints compiled into the I/O,
/// thread-pool, and governor paths, armed at runtime from a spec string
/// (the SWIFT_FAILPOINTS environment variable or a --failpoints= flag).
/// Disarmed — the production state — a failpoint costs one relaxed atomic
/// load; nothing is looked up and no counter is touched.
///
/// Spec grammar (';'-separated entries):
///
///   spec    := entry (';' entry)*
///   entry   := name '=' trigger ['!kill']
///   trigger := 'nth(' N ')'        fire exactly on the Nth hit (1-based)
///            | 'every(' N ')'      fire on hits N, 2N, 3N, ...
///            | 'prob(' P ',' S ')' fire each hit with probability P,
///                                  drawn from a PRNG seeded with S
///            | 'always'            fire on every hit
///
/// e.g. SWIFT_FAILPOINTS='ckpt.save.write=nth(3)!kill;pool.task=every(2)'
///
/// A firing failpoint either *fails* (the default: SWIFT_FAILPOINT(...)
/// evaluates to true and the instrumented site simulates the fault — a
/// short write, a task exception, a budget exhaustion) or *kills* the
/// process on the spot via _exit(KillExitCode), without flushing buffers
/// or running destructors — the crash the recovery harness provokes
/// mid-checkpoint-write. Triggers are evaluated under a lock in hit
/// order, so single-threaded sites fire deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_FAILPOINT_H
#define SWIFT_SUPPORT_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace swift {
namespace failpoint {

/// Exit code of a process killed by a '!kill' failpoint; distinguishes an
/// injected crash from both success and genuine failures in harnesses.
constexpr int KillExitCode = 85;

namespace detail {
/// True iff any failpoint is armed; the only state the fast path reads.
extern std::atomic<bool> AnyArmed;
/// Registry lookup + trigger evaluation; never returns if the failpoint
/// fires with the kill action.
bool shouldFailSlow(const char *Name);
} // namespace detail

/// True iff any failpoint is armed.
inline bool armed() {
  return detail::AnyArmed.load(std::memory_order_relaxed);
}

/// The instrumentation predicate: true iff failpoint \p Name is armed and
/// its trigger fires on this hit. Kill-action failpoints do not return.
inline bool shouldFail(const char *Name) {
  return armed() && detail::shouldFailSlow(Name);
}

/// Arms every entry of \p Spec (grammar above), merging with already
/// armed failpoints (an entry for an armed name replaces it and resets
/// its counters). Throws std::runtime_error on a malformed spec, and on
/// a name appearing twice within one spec (last-wins would silently drop
/// the earlier trigger).
void armSpec(std::string_view Spec);

/// Arms from the SWIFT_FAILPOINTS environment variable. Returns false if
/// the variable is unset or empty; throws like armSpec on malformed
/// content.
bool armFromEnv();

/// Disarms everything and discards all counters.
void disarmAll();

/// Times failpoint \p Name was evaluated / fired since it was armed
/// (0 for unknown names).
uint64_t hits(const std::string &Name);
uint64_t fires(const std::string &Name);

/// Names currently armed, sorted.
std::vector<std::string> armedNames();

/// RAII arming for tests and harness children: arms a spec on
/// construction, disarms *everything* on destruction.
struct ScopedArm {
  explicit ScopedArm(std::string_view Spec) { armSpec(Spec); }
  ~ScopedArm() { disarmAll(); }
  ScopedArm(const ScopedArm &) = delete;
  ScopedArm &operator=(const ScopedArm &) = delete;
};

} // namespace failpoint
} // namespace swift

/// The instrumentation macro. Reads as "did the named fault trigger?":
///
///   if (SWIFT_FAILPOINT("ckpt.save.write"))
///     ... simulate the write failure ...
#define SWIFT_FAILPOINT(NAME) (::swift::failpoint::shouldFail(NAME))

#endif // SWIFT_SUPPORT_FAILPOINT_H
