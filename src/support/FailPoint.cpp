//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#include "support/Rng.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <unistd.h>

using namespace swift;

namespace {

enum class Trigger { Nth, EveryNth, Prob };
enum class Action { Fail, Kill };

struct FailPoint {
  Trigger Trig = Trigger::Nth;
  uint64_t N = 1;      ///< nth / every parameter.
  double P = 0.0;      ///< prob parameter.
  Rng ProbRng{0};      ///< prob: seeded per-failpoint stream.
  Action Act = Action::Fail;
  uint64_t Hits = 0;
  uint64_t Fires = 0;
};

/// Registry guard. The fast path never takes it; arming and armed-site
/// evaluation (rare by construction — faults, not steady state) do.
std::mutex RegistryMutex;

std::map<std::string, FailPoint> &registry() {
  static std::map<std::string, FailPoint> R;
  return R;
}

[[noreturn]] void badSpec(std::string_view Spec, const std::string &Why) {
  throw std::runtime_error("malformed failpoint spec '" +
                           std::string(Spec) + "': " + Why);
}

/// Parses the parenthesized argument list of a trigger: "name(args" was
/// already split; returns the text between '(' and the closing ')'.
std::string_view parenArgs(std::string_view T, std::string_view Spec) {
  size_t Open = T.find('(');
  if (Open == std::string_view::npos || T.back() != ')')
    badSpec(Spec, "expected '" + std::string(T.substr(0, Open)) + "(...)'");
  return T.substr(Open + 1, T.size() - Open - 2);
}

uint64_t parseCount(std::string_view T, std::string_view Spec) {
  if (T.empty())
    badSpec(Spec, "empty count");
  uint64_t V = 0;
  for (char C : T) {
    if (C < '0' || C > '9')
      badSpec(Spec, "expected a number, got '" + std::string(T) + "'");
    if (V > UINT64_MAX / 10)
      badSpec(Spec, "count out of range");
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  if (V == 0)
    badSpec(Spec, "count must be positive");
  return V;
}

FailPoint parseEntry(std::string_view Entry, std::string_view Spec,
                     std::string &NameOut) {
  size_t Eq = Entry.find('=');
  if (Eq == std::string_view::npos || Eq == 0)
    badSpec(Spec, "expected 'name=trigger'");
  NameOut = std::string(Entry.substr(0, Eq));
  std::string_view T = Entry.substr(Eq + 1);

  FailPoint F;
  if (size_t Bang = T.rfind("!kill"); Bang != std::string_view::npos) {
    if (Bang + 5 != T.size())
      badSpec(Spec, "'!kill' must be the entry suffix");
    F.Act = Action::Kill;
    T = T.substr(0, Bang);
  }

  if (T == "always") {
    F.Trig = Trigger::EveryNth;
    F.N = 1;
  } else if (T.rfind("nth(", 0) == 0 || T.rfind("every(", 0) == 0) {
    F.Trig = T[0] == 'n' ? Trigger::Nth : Trigger::EveryNth;
    F.N = parseCount(parenArgs(T, Spec), Spec);
  } else if (T.rfind("prob(", 0) == 0) {
    std::string_view Args = parenArgs(T, Spec);
    size_t Comma = Args.find(',');
    if (Comma == std::string_view::npos)
      badSpec(Spec, "prob needs '(probability,seed)'");
    std::string PText(Args.substr(0, Comma));
    char *End = nullptr;
    F.P = std::strtod(PText.c_str(), &End);
    if (End != PText.c_str() + PText.size() || F.P < 0.0 || F.P > 1.0)
      badSpec(Spec, "probability must be a number in [0, 1]");
    F.Trig = Trigger::Prob;
    F.ProbRng = Rng(parseCount(Args.substr(Comma + 1), Spec));
  } else {
    badSpec(Spec, "unknown trigger '" + std::string(T) + "'");
  }
  return F;
}

} // namespace

std::atomic<bool> failpoint::detail::AnyArmed{false};

bool failpoint::detail::shouldFailSlow(const char *Name) {
  std::lock_guard<std::mutex> L(RegistryMutex);
  auto It = registry().find(Name);
  if (It == registry().end())
    return false;
  FailPoint &F = It->second;
  ++F.Hits;
  bool Fire = false;
  switch (F.Trig) {
  case Trigger::Nth:
    Fire = F.Hits == F.N;
    break;
  case Trigger::EveryNth:
    Fire = F.Hits % F.N == 0;
    break;
  case Trigger::Prob:
    Fire = F.ProbRng.unit() < F.P;
    break;
  }
  if (!Fire)
    return false;
  ++F.Fires;
  // An injected crash: no stream flush, no destructors, no atexit — the
  // process dies exactly as it would on a power cut or SIGKILL.
  if (F.Act == Action::Kill)
    ::_exit(KillExitCode);
  return true;
}

void failpoint::armSpec(std::string_view Spec) {
  // Parse every entry before touching the registry so a malformed spec
  // arms nothing.
  std::vector<std::pair<std::string, FailPoint>> Parsed;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Semi = Spec.find(';', Pos);
    if (Semi == std::string_view::npos)
      Semi = Spec.size();
    std::string_view Entry = Spec.substr(Pos, Semi - Pos);
    Pos = Semi + 1;
    if (Entry.empty())
      continue;
    std::string Name;
    FailPoint F = parseEntry(Entry, Spec, Name);
    for (const auto &[Seen, Ignored] : Parsed) {
      (void)Ignored;
      // Within one spec, last-wins would silently drop the earlier
      // trigger; a duplicate is always a harness bug, so reject it.
      if (Seen == Name)
        badSpec(Spec, "duplicate failpoint '" + Name + "'");
    }
    Parsed.emplace_back(std::move(Name), std::move(F));
  }
  if (Parsed.empty())
    return;
  std::lock_guard<std::mutex> L(RegistryMutex);
  for (auto &[Name, F] : Parsed)
    registry()[Name] = std::move(F);
  detail::AnyArmed.store(true, std::memory_order_relaxed);
}

bool failpoint::armFromEnv() {
  const char *Env = std::getenv("SWIFT_FAILPOINTS");
  if (!Env || !*Env)
    return false;
  armSpec(Env);
  return true;
}

void failpoint::disarmAll() {
  std::lock_guard<std::mutex> L(RegistryMutex);
  registry().clear();
  detail::AnyArmed.store(false, std::memory_order_relaxed);
}

uint64_t failpoint::hits(const std::string &Name) {
  std::lock_guard<std::mutex> L(RegistryMutex);
  auto It = registry().find(Name);
  return It == registry().end() ? 0 : It->second.Hits;
}

uint64_t failpoint::fires(const std::string &Name) {
  std::lock_guard<std::mutex> L(RegistryMutex);
  auto It = registry().find(Name);
  return It == registry().end() ? 0 : It->second.Fires;
}

std::vector<std::string> failpoint::armedNames() {
  std::lock_guard<std::mutex> L(RegistryMutex);
  std::vector<std::string> Names;
  for (const auto &[Name, F] : registry()) {
    (void)F;
    Names.push_back(Name);
  }
  return Names;
}
