//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 64-bit hash mixing and combining. The solvers key hash tables by small
/// packed id tuples; naive shift-xor packing silently aliases once ids
/// outgrow their assumed bit widths, which degrades the tables to
/// near-linear probing on large runs. mix64 is the splitmix64 finalizer
/// (full avalanche); hashCombine folds one value into a running seed so a
/// tuple hash depends on every bit of every field.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_HASHING_H
#define SWIFT_SUPPORT_HASHING_H

#include <cstdint>

namespace swift {

/// The splitmix64 finalizer: a bijective full-avalanche mix of all 64
/// bits.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Folds \p Value into \p Seed. Unlike xor-of-shifted-fields, distinct
/// tuples collide only at the ~2^-64 birthday rate regardless of the
/// fields' magnitudes.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return mix64(Seed ^ (mix64(Value) + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                       (Seed >> 2)));
}

} // namespace swift

#endif // SWIFT_SUPPORT_HASHING_H
