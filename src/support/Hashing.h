//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 64-bit hash mixing and combining. The solvers key hash tables by small
/// packed id tuples; naive shift-xor packing silently aliases once ids
/// outgrow their assumed bit widths, which degrades the tables to
/// near-linear probing on large runs. mix64 is the splitmix64 finalizer
/// (full avalanche); hashCombine folds one value into a running seed so a
/// tuple hash depends on every bit of every field.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_HASHING_H
#define SWIFT_SUPPORT_HASHING_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace swift {

/// The splitmix64 finalizer: a bijective full-avalanche mix of all 64
/// bits.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Folds \p Value into \p Seed. Unlike xor-of-shifted-fields, distinct
/// tuples collide only at the ~2^-64 birthday rate regardless of the
/// fields' magnitudes.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return mix64(Seed ^ (mix64(Value) + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                       (Seed >> 2)));
}

/// CRC-32 (IEEE 802.3 reflected polynomial, the zlib/PNG checksum) over
/// \p Size bytes, optionally continuing from a previous \p Seed. Used as
/// the corruption detector of the swift-ckpt v2 file framing — unlike
/// mix64-style hashes it has a fixed, documented value for any byte
/// string (crc32("123456789") == 0xCBF43926), so checkpoints written by
/// one build validate under any other.
inline uint32_t crc32(const void *Data, size_t Size, uint32_t Seed = 0) {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = ~Seed;
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Size; ++I)
    C = Table[(C ^ P[I]) & 0xff] ^ (C >> 8);
  return ~C;
}

} // namespace swift

#endif // SWIFT_SUPPORT_HASHING_H
