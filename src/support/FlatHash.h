//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flat, data-oriented hash containers for the tabulation hot path:
///
///  * HashIndex — an insert-only open-addressing index mapping a caller
///    supplied 64-bit hash to a 32-bit payload (typically a dense id into
///    a sibling arena vector). The index stores only (hash, value) pairs
///    in two parallel arrays; keys live in the caller's arena and are
///    compared through a caller-supplied equality callback. Growth
///    rehashes from the stored hashes, so keys are never re-hashed.
///
///  * FlatMap32<V> — a map from uint32_t keys to V built on HashIndex,
///    with insertion-order iteration over parallel Keys/Vals vectors.
///    Replaces per-procedure std::unordered_map<uint32_t, V> tables: one
///    probe sequence over contiguous memory instead of a node allocation
///    per entry.
///
///  * BitVec — a packed bit vector (std::vector<bool> without the proxy
///    iterator, plus word-at-a-time storage under the solver's control).
///
/// None of these containers support erase: tabulation only accumulates,
/// which is exactly what makes open addressing with tombstone-free
/// probing safe here.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_FLATHASH_H
#define SWIFT_SUPPORT_FLATHASH_H

#include "support/Hashing.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace swift {

/// Insert-only open-addressing index: 64-bit hash -> 32-bit payload.
/// Payload UINT32_MAX is reserved as the empty-slot sentinel.
class HashIndex {
public:
  static constexpr uint32_t Npos = UINT32_MAX;

  HashIndex() = default;

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  void clear() {
    Hashes.clear();
    Values.clear();
    Mask = 0;
    Count = 0;
  }

  /// Pre-sizes the table for \p N entries.
  void reserve(size_t N) {
    size_t Cap = 16;
    while (Cap * 7 < N * 8)
      Cap <<= 1;
    if (Cap > Mask + 1)
      rehash(Cap);
  }

  /// Returns the payload of the entry whose stored hash is \p Hash and
  /// for which \p Eq(payload) is true, or Npos. \p Eq receives the
  /// candidate payload and must compare the caller's key against the
  /// arena entry it denotes.
  template <typename EqFn> uint32_t find(uint64_t Hash, EqFn Eq) const {
    if (Count == 0)
      return Npos;
    for (size_t I = Hash & Mask;; I = (I + 1) & Mask) {
      if (Values[I] == Npos)
        return Npos;
      if (Hashes[I] == Hash && Eq(Values[I]))
        return Values[I];
    }
  }

  /// Inserts \p Value under \p Hash. The caller must have established
  /// absence (via find) first; duplicates are not detected here.
  void insert(uint64_t Hash, uint32_t Value) {
    assert(Value != Npos && "payload collides with the empty sentinel");
    if ((Count + 1) * 8 > (Mask + 1) * 7)
      rehash(Mask == 0 ? 16 : (Mask + 1) * 2);
    size_t I = Hash & Mask;
    while (Values[I] != Npos)
      I = (I + 1) & Mask;
    Hashes[I] = Hash;
    Values[I] = Value;
    ++Count;
  }

  /// find + insert in one probe sequence: returns {payload, false} when
  /// an equal entry exists, otherwise inserts \p Value and returns
  /// {Value, true}.
  template <typename EqFn>
  std::pair<uint32_t, bool> findOrInsert(uint64_t Hash, uint32_t Value,
                                         EqFn Eq) {
    assert(Value != Npos && "payload collides with the empty sentinel");
    if ((Count + 1) * 8 > (Mask + 1) * 7)
      rehash(Mask == 0 ? 16 : (Mask + 1) * 2);
    size_t I = Hash & Mask;
    for (;; I = (I + 1) & Mask) {
      if (Values[I] == Npos)
        break;
      if (Hashes[I] == Hash && Eq(Values[I]))
        return {Values[I], false};
    }
    Hashes[I] = Hash;
    Values[I] = Value;
    ++Count;
    return {Value, true};
  }

private:
  void rehash(size_t NewCap) {
    assert((NewCap & (NewCap - 1)) == 0 && "capacity must be a power of 2");
    std::vector<uint64_t> OldH = std::move(Hashes);
    std::vector<uint32_t> OldV = std::move(Values);
    Hashes.assign(NewCap, 0);
    Values.assign(NewCap, Npos);
    Mask = NewCap - 1;
    for (size_t I = 0; I != OldV.size(); ++I) {
      if (OldV[I] == Npos)
        continue;
      size_t J = OldH[I] & Mask;
      while (Values[J] != Npos)
        J = (J + 1) & Mask;
      Hashes[J] = OldH[I];
      Values[J] = OldV[I];
    }
  }

  std::vector<uint64_t> Hashes;
  std::vector<uint32_t> Values; ///< Npos = empty slot.
  size_t Mask = 0;              ///< Capacity - 1; 0 = unallocated.
  size_t Count = 0;
};

/// Map from uint32_t keys to V with insertion-order iteration. Entries
/// live in parallel Keys/Vals vectors; the HashIndex maps hashed keys to
/// their dense position. No erase.
template <typename V> class FlatMap32 {
public:
  size_t size() const { return Keys.size(); }
  bool empty() const { return Keys.empty(); }

  const std::vector<uint32_t> &keys() const { return Keys; }
  const std::vector<V> &vals() const { return Vals; }
  V &valAt(size_t I) { return Vals[I]; }
  const V &valAt(size_t I) const { return Vals[I]; }

  V *find(uint32_t Key) {
    uint32_t I = Idx.find(mix64(Key),
                          [&](uint32_t P) { return Keys[P] == Key; });
    return I == HashIndex::Npos ? nullptr : &Vals[I];
  }
  const V *find(uint32_t Key) const {
    return const_cast<FlatMap32 *>(this)->find(Key);
  }

  /// Returns the value for \p Key, default-constructing it on first use.
  V &getOrCreate(uint32_t Key) {
    auto [I, Inserted] =
        Idx.findOrInsert(mix64(Key), static_cast<uint32_t>(Keys.size()),
                         [&](uint32_t P) { return Keys[P] == Key; });
    if (Inserted) {
      Keys.push_back(Key);
      Vals.emplace_back();
    }
    return Vals[I];
  }

  /// Visits (key, value) pairs in insertion order.
  template <typename Fn> void forEach(Fn F) const {
    for (size_t I = 0; I != Keys.size(); ++I)
      F(Keys[I], Vals[I]);
  }

private:
  HashIndex Idx;
  std::vector<uint32_t> Keys;
  std::vector<V> Vals;
};

/// Packed bit vector with plain bool reads and word-backed storage.
class BitVec {
public:
  void assign(size_t N, bool Value) {
    Size = N;
    Words.assign((N + 63) / 64, Value ? ~uint64_t{0} : 0);
  }

  size_t size() const { return Size; }

  bool get(size_t I) const {
    assert(I < Size);
    return (Words[I >> 6] >> (I & 63)) & 1;
  }

  void set(size_t I) {
    assert(I < Size);
    Words[I >> 6] |= uint64_t{1} << (I & 63);
  }

private:
  std::vector<uint64_t> Words;
  size_t Size = 0;
};

} // namespace swift

#endif // SWIFT_SUPPORT_FLATHASH_H
