//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xoshiro256**) used by the workload generator
/// and the property tests. std::mt19937 is avoided so that generated
/// workloads are bit-identical across standard library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_RNG_H
#define SWIFT_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace swift {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded with splitmix64.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      // splitmix64 step.
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Bernoulli trial with probability \p Num / \p Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den > 0 && Num <= Den && "probability out of range");
    return below(Den) < Num;
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace swift

#endif // SWIFT_SUPPORT_RNG_H
