//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include "support/FailPoint.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace swift;

namespace {

/// Small chunks so a kill-failpoint on <prefix>.write can land at many
/// distinct positions inside even a few-KB checkpoint.
constexpr size_t WriteChunk = 512;
constexpr int MaxAttempts = 3;

std::string opError(const char *Op, const std::string &Path, int Err) {
  return std::string(Op) + " '" + Path + "': " + std::strerror(Err);
}

std::string fp(const char *Prefix, const char *Site) {
  return std::string(Prefix) + "." + Site;
}

/// One attempt: create/truncate the temp file, stream the bytes, fsync,
/// and close — verifying each step. Returns false with \p Err / \p ErrOp
/// set on any failure (simulated failures report EIO).
bool writeTempOnce(const std::string &Tmp, std::string_view Bytes,
                   const char *Prefix, std::string &Err,
                   std::string &ErrOp) {
  if (SWIFT_FAILPOINT(fp(Prefix, "open").c_str())) {
    Err = opError("open", Tmp, EIO) + " (injected)";
    ErrOp = "open";
    return false;
  }
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Err = opError("open", Tmp, errno);
    ErrOp = "open";
    return false;
  }
  auto Fail = [&](const char *Op, int E, bool Injected = false) {
    Err = opError(Op, Tmp, E) + (Injected ? " (injected)" : "");
    ErrOp = Op;
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return false;
  };

  const std::string WriteFp = fp(Prefix, "write");
  for (size_t Off = 0; Off != Bytes.size();) {
    if (SWIFT_FAILPOINT(WriteFp.c_str()))
      return Fail("write", EIO, /*Injected=*/true);
    size_t Want = std::min(WriteChunk, Bytes.size() - Off);
    ssize_t W = ::write(Fd, Bytes.data() + Off, Want);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return Fail("write", errno);
    }
    Off += static_cast<size_t>(W);
  }

  // Flush to stable storage, then close — checking both: a buffered
  // write error can surface only at fsync/close, and swallowing it would
  // report success for a file the kernel never persisted.
  if (SWIFT_FAILPOINT(fp(Prefix, "flush").c_str()))
    return Fail("fsync", EIO, /*Injected=*/true);
  if (::fsync(Fd) != 0)
    return Fail("fsync", errno);
  if (SWIFT_FAILPOINT(fp(Prefix, "close").c_str()))
    return Fail("close", EIO, /*Injected=*/true);
  if (::close(Fd) != 0) {
    Err = opError("close", Tmp, errno);
    ErrOp = "close";
    ::unlink(Tmp.c_str());
    return false;
  }
  return true;
}

/// Best-effort directory fsync so the rename itself is durable.
void syncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    ::fsync(Fd);
    ::close(Fd);
  }
}

} // namespace

void (*swift::atomicfile_detail::PreRenameTestHook)() = nullptr;

void swift::writeFileAtomic(const std::string &Path, std::string_view Bytes,
                            const char *FailPrefix) {
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  std::string Err, ErrOp;
  for (int Attempt = 0; Attempt != MaxAttempts; ++Attempt) {
    if (Attempt) // transient-fault backoff: 20 ms, then 40 ms
      std::this_thread::sleep_for(std::chrono::milliseconds(10 << Attempt));
    if (!writeTempOnce(Tmp, Bytes, FailPrefix, Err, ErrOp))
      continue;
    if (atomicfile_detail::PreRenameTestHook)
      atomicfile_detail::PreRenameTestHook();
    if (SWIFT_FAILPOINT(fp(FailPrefix, "rename").c_str())) {
      Err = opError("rename", Path, EIO) + " (injected)";
      ErrOp = "rename";
      continue;
    }
    if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
      Err = opError("rename", Path, errno);
      ErrOp = "rename";
      continue;
    }
    syncParentDir(Path);
    return;
  }
  ::unlink(Tmp.c_str());
  throw IoError(ErrOp, Path,
                "cannot write '" + Path + "' after " +
                    std::to_string(MaxAttempts) +
                    " attempts; last error: " + Err);
}

std::string swift::readWholeFile(const std::string &Path,
                                 const char *FailPrefix) {
  if (FailPrefix && SWIFT_FAILPOINT(fp(FailPrefix, "open").c_str()))
    throw IoError("open", Path, opError("open", Path, EIO) + " (injected)");
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    throw IoError("open", Path, opError("open", Path, errno));
  std::string Out;
  char Buf[1 << 16];
  for (;;) {
    if (FailPrefix && SWIFT_FAILPOINT(fp(FailPrefix, "read").c_str())) {
      ::close(Fd);
      throw IoError("read", Path, opError("read", Path, EIO) + " (injected)");
    }
    ssize_t R = ::read(Fd, Buf, sizeof(Buf));
    if (R < 0) {
      if (errno == EINTR)
        continue;
      int E = errno;
      ::close(Fd);
      throw IoError("read", Path, opError("read", Path, E));
    }
    if (R == 0)
      break;
    Out.append(Buf, static_cast<size_t>(R));
  }
  ::close(Fd);
  return Out;
}
