//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing and analysis budgets. The paper's evaluation uses a
/// 24-hour timeout and 16 GB memory cap; our benches substitute a
/// configurable wall-clock plus work-step budget so that "timeout" rows in
/// the reproduced tables are cheap and deterministic to produce.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_TIMER_H
#define SWIFT_SUPPORT_TIMER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace swift {

/// A simple wall-clock stopwatch.
class Timer {
public:
  using Clock = std::chrono::steady_clock;

  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Whole milliseconds in \p Elapsed, counted in integer clock ticks.
  /// Converting through seconds() would round through a double, which
  /// drops ticks near millisecond boundaries and loses integer precision
  /// entirely once the count exceeds 2^53. (Separated from millis() so
  /// the regression test can feed synthetic durations.)
  static uint64_t millisFor(Clock::duration Elapsed) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Elapsed)
            .count());
  }

  uint64_t millis() const { return millisFor(Clock::now() - Start); }

private:
  Clock::time_point Start;
};

/// Formats \p Seconds like the paper's tables ("4m44s", "20.4s", "0.91s").
std::string formatSeconds(double Seconds);

/// A combined step and wall-clock budget. Solvers call step() on every unit
/// of work; once the budget is exhausted every subsequent call returns
/// false and the solver aborts, reporting a timeout.
///
/// Thread-safe: one Budget may be shared between the top-down solver and
/// concurrent bottom-up workers, so the *total* work of a hybrid run is
/// bounded by one cap (asynchronous summary computation must not get a
/// second budget of its own). Under contention the step counter can
/// overshoot the cap by at most one step per racing thread.
class Budget {
public:
  /// An effectively unlimited budget.
  Budget() = default;

  Budget(uint64_t MaxSteps, double MaxSeconds)
      : MaxSteps(MaxSteps), MaxSeconds(MaxSeconds) {}

  Budget(const Budget &) = delete;
  Budget &operator=(const Budget &) = delete;

  /// Consumes one unit of work; returns false once the budget is exhausted.
  /// The wall clock is polled only every 4096 steps to keep this cheap.
  bool step() {
    if (Exhausted.load(std::memory_order_relaxed))
      return false;
    uint64_t S = Steps.fetch_add(1, std::memory_order_relaxed) + 1;
    if (S > MaxSteps) {
      Exhausted.store(true, std::memory_order_relaxed);
      return false;
    }
    if ((S & 4095) == 0 && Clock.seconds() > MaxSeconds) {
      Exhausted.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Marks the budget exhausted from the outside. The resource governor
  /// calls this when a limit the Budget itself cannot see — the memory
  /// estimate — is exceeded, so every solver sharing the budget aborts at
  /// its next step() exactly as it would on a step/wall exhaustion.
  void exhaust() { Exhausted.store(true, std::memory_order_relaxed); }

  bool exhausted() const { return Exhausted.load(std::memory_order_relaxed); }
  uint64_t steps() const { return Steps.load(std::memory_order_relaxed); }
  double seconds() const { return Clock.seconds(); }
  uint64_t maxSteps() const { return MaxSteps; }
  double maxSeconds() const { return MaxSeconds; }

private:
  uint64_t MaxSteps = UINT64_MAX;
  double MaxSeconds = 1e18;
  std::atomic<uint64_t> Steps{0};
  std::atomic<bool> Exhausted{false};
  Timer Clock;
};

} // namespace swift

#endif // SWIFT_SUPPORT_TIMER_H
