//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation. A CancelToken is a one-way latch: once
/// request()ed it stays requested. Long-running work (the bottom-up
/// relational solver, queued thread-pool tasks) polls requested() at loop
/// heads and unwinds cleanly, leaving whatever state it was building
/// uninstalled — the resource governor uses this to stop speculative
/// summary computation under memory/deadline pressure without tearing down
/// threads mid-write.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_CANCELLATION_H
#define SWIFT_SUPPORT_CANCELLATION_H

#include <atomic>

namespace swift {

/// A one-way cancellation latch shared between a requester and any number
/// of workers.
///
/// Memory ordering: request() uses release and requested() acquire so that
/// everything the requester wrote before requesting (e.g. the governor's
/// latched pressure level) is visible to a worker that observes the
/// cancellation. Workers only ever *read* the flag; the single false->true
/// transition makes stronger orderings unnecessary.
class CancelToken {
public:
  CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  void request() { Requested.store(true, std::memory_order_release); }

  bool requested() const {
    return Requested.load(std::memory_order_acquire);
  }

private:
  std::atomic<bool> Requested{false};
};

} // namespace swift

#endif // SWIFT_SUPPORT_CANCELLATION_H
