//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict command-line value parsing shared by the benchmark binaries and
/// the swift-difftest tool. Unlike atoi/atof these reject trailing junk,
/// negative values, overflow, and empty strings instead of silently
/// producing 0 (or, via a sign-extension round-trip, 4294967295 workers).
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_CLIPARSE_H
#define SWIFT_SUPPORT_CLIPARSE_H

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

namespace swift {
namespace cli {

/// Parses a non-negative decimal integer. The whole string must be digits;
/// rejects empty input, signs, junk, and values above \p Max.
inline bool parseU64(std::string_view Text, uint64_t &Out,
                     uint64_t Max = UINT64_MAX) {
  if (Text.empty())
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (V > (Max - Digit) / 10)
      return false; // overflow past Max
    V = V * 10 + Digit;
  }
  Out = V;
  return true;
}

/// Parses an unsigned int in [\p Min, \p Max].
inline bool parseUnsigned(std::string_view Text, unsigned &Out,
                          unsigned Min = 0, unsigned Max = UINT32_MAX) {
  uint64_t V;
  if (!parseU64(Text, V, Max) || V < Min)
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

/// Parses a non-negative, finite double. The whole string must be
/// consumed; rejects empty input, "abc", "1.5x", nan, inf, and negatives.
inline bool parseNonNegDouble(std::string_view Text, double &Out) {
  if (Text.empty())
    return false;
  std::string Buf(Text);
  char *End = nullptr;
  double V = std::strtod(Buf.c_str(), &End);
  if (End != Buf.c_str() + Buf.size())
    return false;
  if (!std::isfinite(V) || V < 0.0)
    return false;
  Out = V;
  return true;
}

/// If \p Arg begins with "NAME=" (e.g. "--budget="), returns true and
/// points \p Value at the remainder.
inline bool matchValueFlag(std::string_view Arg, std::string_view Name,
                           std::string_view &Value) {
  if (Arg.size() < Name.size() || Arg.substr(0, Name.size()) != Name)
    return false;
  Value = Arg.substr(Name.size());
  return true;
}

} // namespace cli
} // namespace swift

#endif // SWIFT_SUPPORT_CLIPARSE_H
