//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <cstdio>

using namespace swift;

void Stats::print(std::ostream &OS) const {
  for (const auto &[Name, Value] : Counters)
    OS << "  " << Name << " = " << Value << "\n";
}

std::string Stats::formatThousands(uint64_t N) {
  char Buf[64];
  if (N < 1000) {
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(N));
    return Buf;
  }
  double K = static_cast<double>(N) / 1000.0;
  if (K < 100.0) {
    std::snprintf(Buf, sizeof(Buf), "%.1fk", K);
    return Buf;
  }
  // Insert a thousands separator into the integral k count, e.g. "1,357k".
  unsigned long long Kk = static_cast<unsigned long long>(K + 0.5);
  if (Kk < 1000) {
    std::snprintf(Buf, sizeof(Buf), "%lluk", Kk);
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%llu,%03lluk", Kk / 1000, Kk % 1000);
  return Buf;
}
