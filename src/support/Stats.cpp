//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <cstdio>
#include <mutex>
#include <unordered_map>

using namespace swift;

namespace {

/// The process-wide counter-name registry backing Stats::Counter handles.
/// Slot 0 is a placeholder so that real counter ids start at 1 — id 0 is
/// the reserved invalid id of a default-constructed Stats::Counter.
struct Registry {
  Registry() { Names.push_back("<invalid>"); }
  std::mutex M;
  std::unordered_map<std::string, uint32_t> Ids;
  std::vector<std::string> Names;
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

Stats::Counter Stats::id(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  auto [It, Inserted] = R.Ids.emplace(Name, R.Names.size());
  if (Inserted)
    R.Names.push_back(Name);
  return Counter(It->second);
}

uint64_t Stats::get(const std::string &Name) const {
  Registry &R = registry();
  uint32_t Id;
  {
    std::lock_guard<std::mutex> L(R.M);
    auto It = R.Ids.find(Name);
    if (It == R.Ids.end())
      return 0;
    Id = It->second;
  }
  return Id < Values.size() ? Values[Id] : 0;
}

void Stats::merge(const Stats &Other) {
  if (Values.size() < Other.Values.size())
    Values.resize(Other.Values.size(), 0);
  for (size_t I = 0; I != Other.Values.size(); ++I)
    Values[I] += Other.Values[I];
}

std::map<std::string, uint64_t> Stats::all() const {
  Registry &R = registry();
  std::map<std::string, uint64_t> Out;
  std::lock_guard<std::mutex> L(R.M);
  for (size_t I = 0; I != Values.size(); ++I)
    if (Values[I] != 0)
      Out.emplace(R.Names[I], Values[I]);
  return Out;
}

void Stats::print(std::ostream &OS) const {
  for (const auto &[Name, Value] : all())
    OS << "  " << Name << " = " << Value << "\n";
}

std::string Stats::formatThousands(uint64_t N) {
  char Buf[64];
  if (N < 1000) {
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(N));
    return Buf;
  }
  double K = static_cast<double>(N) / 1000.0;
  if (K < 100.0) {
    std::snprintf(Buf, sizeof(Buf), "%.1fk", K);
    return Buf;
  }
  // Insert a thousands separator into the integral k count, e.g. "1,357k".
  unsigned long long Kk = static_cast<unsigned long long>(K + 0.5);
  if (Kk < 1000) {
    std::snprintf(Buf, sizeof(Buf), "%lluk", Kk);
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%llu,%03lluk", Kk / 1000, Kk % 1000);
  return Buf;
}
