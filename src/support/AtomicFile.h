//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe whole-file persistence shared by the checkpoint writer and
/// the IR dumper. writeFileAtomic streams the bytes into a temp file next
/// to the target, fsyncs, verifies every write *and* the close, and only
/// then renames over the target — so a reader never observes a torn
/// file: after a crash at any instruction the target is either the
/// complete old content or the complete new content. Transient failures
/// (including injected ones) are retried a bounded number of times with
/// backoff; persistent failure throws with the failing operation and
/// errno detail, leaving the old target untouched.
///
/// Both functions hit failpoints (support/FailPoint.h) named
/// <prefix>.open / .write (once per chunk) / .flush / .close / .rename
/// and <prefix>.open / .read respectively, which is how the crash-
/// recovery harness kills the process mid-write at a chosen position.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_ATOMICFILE_H
#define SWIFT_SUPPORT_ATOMICFILE_H

#include <stdexcept>
#include <string>
#include <string_view>

namespace swift {

/// Typed I/O failure from the atomic-file layer: carries the failing
/// operation ("open", "write", "rename", ...) and the target path in
/// addition to the human-readable what(). Callers that must distinguish
/// a vanished directory from a corrupt payload catch this instead of
/// string-matching a generic runtime_error.
class IoError : public std::runtime_error {
public:
  IoError(std::string Op, std::string Path, const std::string &What)
      : std::runtime_error(What), Operation(std::move(Op)),
        TargetPath(std::move(Path)) {}

  const std::string &op() const { return Operation; }
  const std::string &path() const { return TargetPath; }

private:
  std::string Operation;
  std::string TargetPath;
};

/// Atomically replaces \p Path with \p Bytes (temp file + fsync + rename,
/// bounded retry on transient errors). \p FailPrefix names the failpoints
/// instrumenting this write. Throws IoError with errno detail on
/// persistent failure (the temp file is unlinked); the previous content
/// of \p Path survives.
void writeFileAtomic(const std::string &Path, std::string_view Bytes,
                     const char *FailPrefix = "file.save");

/// Reads the whole file. Throws IoError with errno detail on any I/O
/// failure. \p FailPrefix, when given, names the failpoints
/// instrumenting the read.
std::string readWholeFile(const std::string &Path,
                          const char *FailPrefix = nullptr);

namespace atomicfile_detail {
/// Test-only seam: when set, invoked after the temp file is fully
/// written and fsynced but before the rename — the window a concurrent
/// actor could remove the destination directory in. Production never
/// sets it.
extern void (*PreRenameTestHook)();
} // namespace atomicfile_detail

} // namespace swift

#endif // SWIFT_SUPPORT_ATOMICFILE_H
