//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe whole-file persistence shared by the checkpoint writer and
/// the IR dumper. writeFileAtomic streams the bytes into a temp file next
/// to the target, fsyncs, verifies every write *and* the close, and only
/// then renames over the target — so a reader never observes a torn
/// file: after a crash at any instruction the target is either the
/// complete old content or the complete new content. Transient failures
/// (including injected ones) are retried a bounded number of times with
/// backoff; persistent failure throws with the failing operation and
/// errno detail, leaving the old target untouched.
///
/// Both functions hit failpoints (support/FailPoint.h) named
/// <prefix>.open / .write (once per chunk) / .flush / .close / .rename
/// and <prefix>.open / .read respectively, which is how the crash-
/// recovery harness kills the process mid-write at a chosen position.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_ATOMICFILE_H
#define SWIFT_SUPPORT_ATOMICFILE_H

#include <string>
#include <string_view>

namespace swift {

/// Atomically replaces \p Path with \p Bytes (temp file + fsync + rename,
/// bounded retry on transient errors). \p FailPrefix names the failpoints
/// instrumenting this write. Throws std::runtime_error with errno detail
/// on persistent failure; the previous content of \p Path survives.
void writeFileAtomic(const std::string &Path, std::string_view Bytes,
                     const char *FailPrefix = "file.save");

/// Reads the whole file. Throws std::runtime_error with errno detail on
/// any I/O failure. \p FailPrefix, when given, names the failpoints
/// instrumenting the read.
std::string readWholeFile(const std::string &Path,
                          const char *FailPrefix = nullptr);

} // namespace swift

#endif // SWIFT_SUPPORT_ATOMICFILE_H
