//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the bottom-up relational solver
/// to dispatch call-graph SCCs as a wavefront over the SCC DAG. Tasks may
/// submit further tasks (a finishing SCC enqueues the SCCs it unblocks);
/// wait() blocks — no spinning — until every task, including ones enqueued
/// by running tasks, has finished.
///
/// Robustness contracts:
///  * A task that throws never deadlocks wait(): the worker catches the
///    exception, still decrements the pending count, and wait() rethrows
///    the first captured exception once the queue has drained.
///  * With a CancelToken, tasks dequeued after cancellation is requested
///    are dropped without executing (their pending slot is still
///    released), so a governor can cut short speculative work that is
///    already queued.
///  * A worker that fails to start (std::thread throwing, or the
///    pool.worker.start failpoint) does not leak the workers already
///    running: the constructor joins them and rethrows.
///
/// Fault injection: pool.worker.start fires per worker construction and
/// makes it throw; pool.task fires per dequeued task and replaces its
/// body with a thrown injected fault (surfaced by the next wait()).
///
/// Observability (src/obs): when enabled, the pool maintains a
/// "pool.queue_depth" gauge + counter-event track, a
/// "pool.task_latency_us" histogram (submit-to-dequeue latency), and a
/// "pool.task" span around each executed task body. All of it reduces to
/// one relaxed atomic load per site when tracing/metrics are off.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SUPPORT_THREADPOOL_H
#define SWIFT_SUPPORT_THREADPOOL_H

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Cancellation.h"
#include "support/FailPoint.h"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace swift {

class ThreadPool {
public:
  /// \p Cancel, when given, is polled before each dequeued task runs;
  /// once requested, remaining queued tasks are dropped unexecuted.
  explicit ThreadPool(unsigned NumThreads,
                      const CancelToken *Cancel = nullptr)
      : Cancel(Cancel) {
    if (NumThreads == 0)
      NumThreads = 1;
    Workers.reserve(NumThreads);
    try {
      for (unsigned I = 0; I != NumThreads; ++I) {
        if (SWIFT_FAILPOINT("pool.worker.start"))
          throw std::runtime_error(
              "injected worker startup failure (pool.worker.start)");
        Workers.emplace_back([this] { workerLoop(); });
      }
    } catch (...) {
      // Don't leak the workers that did start: joining here (instead of
      // letting ~vector destroy joinable threads) turns a startup fault
      // into an ordinary exception rather than std::terminate.
      shutdownAndJoin();
      throw;
    }
  }

  /// Drains the queue (every submitted task runs), then joins. A pending
  /// task exception that was never observed via wait() is swallowed —
  /// destructors must not throw.
  ~ThreadPool() { shutdownAndJoin(); }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task. Safe to call from within a running task.
  void submit(std::function<void()> Task) {
    // Timestamp only when someone is watching; 0 means "not sampled" to
    // the dequeue side.
    uint64_t EnqueuedUs =
        (obs::metricsEnabled() || obs::tracingEnabled()) ? obs::nowMicros()
                                                         : 0;
    size_t Depth;
    {
      std::lock_guard<std::mutex> L(M);
      Queue.push_back({std::move(Task), EnqueuedUs});
      ++Pending;
      Depth = Queue.size();
    }
    if (EnqueuedUs) {
      QueueDepth->set(Depth);
      obs::counterEvent("pool.queue_depth", "depth", Depth);
    }
    HasWork.notify_one();
  }

  /// Blocks until every submitted task — including tasks submitted by
  /// other tasks after this call — has completed (or been dropped by
  /// cancellation). Rethrows the first exception any task threw since the
  /// last wait(); the queue is fully drained either way.
  void wait() {
    std::unique_lock<std::mutex> L(M);
    Idle.wait(L, [this] { return Pending == 0; });
    if (FirstError)
      std::rethrow_exception(std::exchange(FirstError, nullptr));
  }

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

private:
  void shutdownAndJoin() {
    {
      std::lock_guard<std::mutex> L(M);
      Stopping = true;
    }
    HasWork.notify_all();
    for (std::thread &W : Workers)
      W.join();
    Workers.clear();
  }

  void workerLoop() {
    std::unique_lock<std::mutex> L(M);
    for (;;) {
      HasWork.wait(L, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Item It = std::move(Queue.front());
      Queue.pop_front();
      L.unlock();
      if (It.EnqueuedUs && obs::metricsEnabled())
        TaskLatency->record(obs::nowMicros() - It.EnqueuedUs);
      // Dropping a cancelled task must still release its Pending slot
      // below, or wait() would block on work that will never run.
      if (!Cancel || !Cancel->requested()) {
        obs::TraceSpan Span("pool", "pool.task");
        try {
          if (SWIFT_FAILPOINT("pool.task"))
            throw std::runtime_error(
                "injected task failure (pool.task)");
          It.Fn();
        } catch (...) {
          std::lock_guard<std::mutex> EL(M);
          if (!FirstError)
            FirstError = std::current_exception();
        }
      }
      L.lock();
      if (--Pending == 0)
        Idle.notify_all();
    }
  }

  /// A queued task plus its enqueue timestamp (0 when observability was
  /// off at submit time).
  struct Item {
    std::function<void()> Fn;
    uint64_t EnqueuedUs = 0;
  };

  std::mutex M;
  std::condition_variable HasWork;
  std::condition_variable Idle;
  std::deque<Item> Queue;
  std::vector<std::thread> Workers;
  const CancelToken *Cancel;
  /// Resolved once here (interning takes the registry lock); sampled
  /// lock-free afterwards.
  obs::Gauge *QueueDepth =
      obs::MetricsRegistry::instance().gauge("pool.queue_depth");
  obs::Histogram *TaskLatency =
      obs::MetricsRegistry::instance().histogram("pool.task_latency_us");
  std::exception_ptr FirstError; ///< First task exception; guarded by M.
  size_t Pending = 0;            ///< Queued plus running tasks.
  bool Stopping = false;
};

} // namespace swift

#endif // SWIFT_SUPPORT_THREADPOOL_H
