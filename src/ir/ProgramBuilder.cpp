//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/ProgramBuilder.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

using namespace swift;

std::vector<NodeId> swift::detail::computeRpo(
    const std::vector<CfgNode> &Nodes, NodeId Entry) {
  std::vector<uint8_t> State(Nodes.size(), 0); // 0 new, 1 open, 2 done
  std::vector<NodeId> Post;
  // Iterative DFS with explicit stack of (node, next-successor-index).
  std::vector<std::pair<NodeId, size_t>> Stack;
  Stack.emplace_back(Entry, 0);
  State[Entry] = 1;
  while (!Stack.empty()) {
    auto &[N, I] = Stack.back();
    const std::vector<NodeId> &Succs = Nodes[N].Succs;
    if (I < Succs.size()) {
      NodeId S = Succs[I++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
    } else {
      State[N] = 2;
      Post.push_back(N);
      Stack.pop_back();
    }
  }
  return std::vector<NodeId>(Post.rbegin(), Post.rend());
}

ProgramBuilder::ProgramBuilder() : Prog(std::make_unique<Program>()) {
  Prog->RetVar = Prog->Syms.intern("$ret");
}

Symbol ProgramBuilder::sym(std::string_view S) {
  return Prog->Syms.intern(S);
}

Procedure &ProgramBuilder::cur() {
  assert(CurProc != InvalidProc && "no open procedure");
  return Prog->Procs[CurProc];
}

void ProgramBuilder::addTypestate(std::string_view Name,
                                  const std::vector<std::string> &States,
                                  std::string_view Init,
                                  std::string_view Error,
                                  const std::vector<Transition> &Transitions) {
  Symbol NameSym = sym(Name);
  if (Prog->SpecIndex.count(NameSym))
    throw std::runtime_error("duplicate typestate class: " +
                             std::string(Name));

  std::vector<Symbol> StateSyms;
  StateSyms.reserve(States.size());
  for (const std::string &S : States)
    StateSyms.push_back(sym(S));

  auto FindState = [&](std::string_view S) -> TState {
    Symbol Want = sym(S);
    for (size_t I = 0; I != StateSyms.size(); ++I)
      if (StateSyms[I] == Want)
        return static_cast<TState>(I);
    throw std::runtime_error("unknown typestate '" + std::string(S) +
                             "' in class " + std::string(Name));
  };

  TState InitT = FindState(Init);
  TState ErrorT = FindState(Error);
  std::vector<std::tuple<Symbol, TState, TState>> Resolved;
  Resolved.reserve(Transitions.size());
  for (const Transition &T : Transitions)
    Resolved.emplace_back(sym(T.Method), FindState(T.From), FindState(T.To));

  TypestateSpec Spec(NameSym, std::move(StateSyms), InitT, ErrorT);
  for (const auto &[M, From, To] : Resolved)
    Spec.addTransition(M, From, To);

  Prog->SpecIndex.emplace(NameSym, Prog->Specs.size());
  Prog->Specs.push_back(std::move(Spec));
}

void ProgramBuilder::beginProc(std::string_view Name,
                               const std::vector<std::string> &Params) {
  assert(CurProc == InvalidProc && "beginProc inside an open procedure");
  Symbol NameSym = sym(Name);
  if (Prog->ProcIndex.count(NameSym))
    throw std::runtime_error("duplicate procedure: " + std::string(Name));

  std::vector<Symbol> ParamSyms;
  ParamSyms.reserve(Params.size());
  for (const std::string &P : Params)
    ParamSyms.push_back(sym(P));

  ProcId Id = static_cast<ProcId>(Prog->Procs.size());
  Prog->ProcIndex.emplace(NameSym, Id);
  Prog->Procs.emplace_back(NameSym, Id, std::move(ParamSyms));
  CurProc = Id;

  Procedure &P = cur();
  P.Nodes.push_back(CfgNode{Command::makeNop(), {}});
  P.Entry = 0;
  P.Nodes.push_back(CfgNode{Command::makeNop(), {}});
  P.Exit = 1;
  CurNode = P.Entry;
  for (Symbol S : P.params())
    noteVar(S);
}

NodeId ProgramBuilder::emit(Command Cmd) {
  Procedure &P = cur();
  NodeId N = static_cast<NodeId>(P.Nodes.size());
  Cmd.Self = N;
  P.Nodes.push_back(CfgNode{std::move(Cmd), {}});
  P.Nodes[CurNode].Succs.push_back(N);
  CurNode = N;
  return N;
}

void ProgramBuilder::noteVar(Symbol V) {
  Procedure &P = cur();
  if (std::find(P.Vars.begin(), P.Vars.end(), V) == P.Vars.end())
    P.Vars.push_back(V);
}

void ProgramBuilder::noteDef(Symbol V) {
  noteVar(V);
  cur().Reassigned[V] = true;
}

void ProgramBuilder::alloc(std::string_view Dst, std::string_view Class) {
  Symbol ClassSym = sym(Class);
  if (!Prog->SpecIndex.count(ClassSym))
    throw std::runtime_error("allocation of undeclared class: " +
                             std::string(Class));
  SiteId Site = static_cast<SiteId>(Prog->Sites.size());
  Symbol DstSym = sym(Dst);
  NodeId N = emit(Command::makeAlloc(DstSym, ClassSym, Site));
  Prog->Sites.push_back(AllocSite{ClassSym, CurProc, N});
  noteDef(DstSym);
}

void ProgramBuilder::copy(std::string_view Dst, std::string_view Src) {
  Symbol DstSym = sym(Dst), SrcSym = sym(Src);
  emit(Command::makeCopy(DstSym, SrcSym));
  noteDef(DstSym);
  noteVar(SrcSym);
}

void ProgramBuilder::assignNull(std::string_view Dst) {
  Symbol DstSym = sym(Dst);
  emit(Command::makeAssignNull(DstSym));
  noteDef(DstSym);
}

void ProgramBuilder::load(std::string_view Dst, std::string_view Base,
                          std::string_view Field) {
  Symbol DstSym = sym(Dst), BaseSym = sym(Base);
  emit(Command::makeLoad(DstSym, BaseSym, sym(Field)));
  noteDef(DstSym);
  noteVar(BaseSym);
}

void ProgramBuilder::store(std::string_view Base, std::string_view Field,
                           std::string_view Src) {
  Symbol BaseSym = sym(Base), SrcSym = sym(Src);
  emit(Command::makeStore(BaseSym, sym(Field), SrcSym));
  noteVar(BaseSym);
  noteVar(SrcSym);
}

void ProgramBuilder::tsCall(std::string_view Receiver,
                            std::string_view Method) {
  Symbol RecvSym = sym(Receiver);
  emit(Command::makeTsCall(RecvSym, sym(Method)));
  noteVar(RecvSym);
}

void ProgramBuilder::call(std::string_view Callee,
                          const std::vector<std::string> &Args) {
  std::vector<Symbol> ArgSyms;
  ArgSyms.reserve(Args.size());
  for (const std::string &A : Args) {
    ArgSyms.push_back(sym(A));
    noteVar(ArgSyms.back());
  }
  NodeId N = emit(Command::makeCall(Symbol(), InvalidProc,
                                    std::move(ArgSyms)));
  Pending.push_back(PendingCall{CurProc, N, sym(Callee)});
}

void ProgramBuilder::callAssign(std::string_view Dst,
                                std::string_view Callee,
                                const std::vector<std::string> &Args) {
  std::vector<Symbol> ArgSyms;
  ArgSyms.reserve(Args.size());
  for (const std::string &A : Args) {
    ArgSyms.push_back(sym(A));
    noteVar(ArgSyms.back());
  }
  Symbol DstSym = sym(Dst);
  NodeId N = emit(Command::makeCall(DstSym, InvalidProc,
                                    std::move(ArgSyms)));
  Pending.push_back(PendingCall{CurProc, N, sym(Callee)});
  noteDef(DstSym);
}

void ProgramBuilder::beginIf() {
  // The branch point is the current node; the then-branch grows from it.
  ControlFrame F;
  F.IsLoop = false;
  F.If.Branch = CurNode;
  Control.push_back(F);
}

void ProgramBuilder::orElse() {
  assert(!Control.empty() && !Control.back().IsLoop && "orElse outside if");
  IfFrame &F = Control.back().If;
  assert(!F.InElse && "double orElse");
  F.ThenEnd = CurNode;
  F.InElse = true;
  CurNode = F.Branch;
}

void ProgramBuilder::endIf() {
  assert(!Control.empty() && !Control.back().IsLoop && "endIf outside if");
  IfFrame F = Control.back().If;
  Control.pop_back();

  Procedure &P = cur();
  NodeId Join = static_cast<NodeId>(P.Nodes.size());
  P.Nodes.push_back(CfgNode{Command::makeNop(), {}});
  // Either branch flows to the join; without an else the branch point
  // itself also flows there (the "skip" arm of C1 + C2).
  P.Nodes[CurNode].Succs.push_back(Join);
  NodeId Other = F.InElse ? F.ThenEnd : F.Branch;
  if (Other != CurNode)
    P.Nodes[Other].Succs.push_back(Join);
  CurNode = Join;
}

void ProgramBuilder::beginLoop() {
  NodeId Head = emit(Command::makeNop());
  ControlFrame F;
  F.IsLoop = true;
  F.Loop.Head = Head;
  Control.push_back(F);
}

void ProgramBuilder::endLoop() {
  assert(!Control.empty() && Control.back().IsLoop && "endLoop outside loop");
  LoopFrame F = Control.back().Loop;
  Control.pop_back();

  Procedure &P = cur();
  // Back edge: body end -> head.
  P.Nodes[CurNode].Succs.push_back(F.Head);
  // Loop exit: head -> fresh after-node (zero-or-more iterations).
  NodeId After = static_cast<NodeId>(P.Nodes.size());
  P.Nodes.push_back(CfgNode{Command::makeNop(), {}});
  P.Nodes[F.Head].Succs.push_back(After);
  CurNode = After;
}

void ProgramBuilder::ret(std::string_view Value) {
  Symbol V = sym(Value);
  noteVar(V);
  emit(Command::makeCopy(Prog->RetVar, V));
  Procedure &P = cur();
  P.Nodes[CurNode].Succs.push_back(P.Exit);
  // Code after a return is unreachable; grow it from a fresh dangling node.
  NodeId Dead = static_cast<NodeId>(P.Nodes.size());
  P.Nodes.push_back(CfgNode{Command::makeNop(), {}});
  CurNode = Dead;
}

void ProgramBuilder::ret() {
  emit(Command::makeAssignNull(Prog->RetVar));
  Procedure &P = cur();
  P.Nodes[CurNode].Succs.push_back(P.Exit);
  NodeId Dead = static_cast<NodeId>(P.Nodes.size());
  P.Nodes.push_back(CfgNode{Command::makeNop(), {}});
  CurNode = Dead;
}

void ProgramBuilder::endProc() {
  assert(Control.empty() && "unclosed if/loop at endProc");
  Procedure &P = cur();
  // Implicit fall-through return (returns null).
  if (CurNode != P.Exit) {
    emit(Command::makeAssignNull(Prog->RetVar));
    P.Nodes[CurNode].Succs.push_back(P.Exit);
  }
  CurProc = InvalidProc;
  CurNode = InvalidNode;
}

std::unique_ptr<Program>
ProgramBuilder::finish(std::string_view MainName) {
  assert(CurProc == InvalidProc && "finish with an open procedure");

  // Resolve call targets by name.
  for (const PendingCall &PC : Pending) {
    auto It = Prog->ProcIndex.find(PC.Callee);
    if (It == Prog->ProcIndex.end())
      throw std::runtime_error("call to undeclared procedure: " +
                               Prog->Syms.text(PC.Callee));
    Command &Cmd = Prog->Procs[PC.Proc].Nodes[PC.Node].Cmd;
    Cmd.Callee = It->second;
    if (Prog->Procs[It->second].params().size() != Cmd.Args.size())
      throw std::runtime_error("arity mismatch calling " +
                               Prog->Syms.text(PC.Callee));
  }
  Pending.clear();

  // Compute reachable reverse postorder per procedure.
  for (Procedure &P : Prog->Procs)
    P.Rpo = detail::computeRpo(P.Nodes, P.Entry);

  Symbol MainSym = Prog->Syms.intern(MainName);
  auto It = Prog->ProcIndex.find(MainSym);
  if (It == Prog->ProcIndex.end())
    throw std::runtime_error("no procedure named '" +
                             std::string(MainName) + "'");
  Prog->Main = It->second;
  if (!Prog->Procs[Prog->Main].params().empty())
    throw std::runtime_error("main procedure must take no parameters");

  return std::move(Prog);
}
