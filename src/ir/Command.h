//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Primitive commands of the analyzed language (Section 3.1 of the paper,
/// extended with fields and procedure calls as in the paper's evaluated
/// "full" analysis): allocation, copy, null assignment, field load/store,
/// typestate method call, and direct procedure call. Non-deterministic
/// choice and iteration are CFG structure, not commands. `return e` is
/// normalized by the builder into an assignment to the distinguished $ret
/// variable followed by a jump to the unique exit node.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_IR_COMMAND_H
#define SWIFT_IR_COMMAND_H

#include "support/Symbol.h"

#include <cstdint>
#include <string>
#include <vector>

namespace swift {

class Program;

/// Dense procedure identifier within a Program.
using ProcId = uint32_t;
/// Dense allocation-site identifier within a Program.
using SiteId = uint32_t;
/// Dense CFG node identifier within a Procedure.
using NodeId = uint32_t;

inline constexpr ProcId InvalidProc = static_cast<ProcId>(-1);
inline constexpr NodeId InvalidNode = static_cast<NodeId>(-1);

enum class CmdKind : uint8_t {
  Nop,        ///< Control-flow-only node (joins, branch points, entry/exit).
  Alloc,      ///< Dst = new Class @ Site
  Copy,       ///< Dst = Src
  AssignNull, ///< Dst = null
  Load,       ///< Dst = Src.Field
  Store,      ///< Dst.Field = Src
  TsCall,     ///< Src.Method()   (typestate method call on receiver Src)
  Call,       ///< [Dst =] proc Callee(Args...)
};

/// One primitive command. A plain aggregate; factory functions below build
/// well-formed instances.
struct Command {
  CmdKind Kind = CmdKind::Nop;
  Symbol Dst;    ///< Alloc/Copy/AssignNull/Load: defined var; Store: base
                 ///< var; Call: result var (may be invalid).
  Symbol Src;    ///< Copy: source; Load: base; Store: stored value;
                 ///< TsCall: receiver.
  Symbol Field;  ///< Load/Store.
  Symbol Method; ///< TsCall.
  Symbol Class;  ///< Alloc: typestate class of the allocated object.
  SiteId Site = 0;              ///< Alloc.
  ProcId Callee = InvalidProc;  ///< Call.
  std::vector<Symbol> Args;     ///< Call actuals.
  NodeId Self = InvalidNode;    ///< The CFG node holding this command.

  static Command makeNop() { return Command(); }

  static Command makeAlloc(Symbol Dst, Symbol Class, SiteId Site) {
    Command C;
    C.Kind = CmdKind::Alloc;
    C.Dst = Dst;
    C.Class = Class;
    C.Site = Site;
    return C;
  }

  static Command makeCopy(Symbol Dst, Symbol Src) {
    Command C;
    C.Kind = CmdKind::Copy;
    C.Dst = Dst;
    C.Src = Src;
    return C;
  }

  static Command makeAssignNull(Symbol Dst) {
    Command C;
    C.Kind = CmdKind::AssignNull;
    C.Dst = Dst;
    return C;
  }

  static Command makeLoad(Symbol Dst, Symbol Base, Symbol Field) {
    Command C;
    C.Kind = CmdKind::Load;
    C.Dst = Dst;
    C.Src = Base;
    C.Field = Field;
    return C;
  }

  static Command makeStore(Symbol Base, Symbol Field, Symbol Src) {
    Command C;
    C.Kind = CmdKind::Store;
    C.Dst = Base;
    C.Field = Field;
    C.Src = Src;
    return C;
  }

  static Command makeTsCall(Symbol Receiver, Symbol Method) {
    Command C;
    C.Kind = CmdKind::TsCall;
    C.Src = Receiver;
    C.Method = Method;
    return C;
  }

  static Command makeCall(Symbol Dst, ProcId Callee,
                          std::vector<Symbol> Args) {
    Command C;
    C.Kind = CmdKind::Call;
    C.Dst = Dst;
    C.Callee = Callee;
    C.Args = std::move(Args);
    return C;
  }

  bool isCall() const { return Kind == CmdKind::Call; }

  /// Renders the command as TSL-like source text.
  std::string str(const Program &Prog) const;
};

} // namespace swift

#endif // SWIFT_IR_COMMAND_H
