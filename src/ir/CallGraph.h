//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph over a Program's direct calls, with Tarjan SCCs and a
/// reverse-topological order over the SCC DAG. The bottom-up analysis
/// processes procedures in this order, iterating within each SCC until its
/// summaries stabilize (Section 3.5's fixpoint over the summary map).
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_IR_CALLGRAPH_H
#define SWIFT_IR_CALLGRAPH_H

#include "ir/Program.h"

#include <vector>

namespace swift {

class CallGraph {
public:
  explicit CallGraph(const Program &Prog);

  /// Deduplicated callees of \p P.
  const std::vector<ProcId> &callees(ProcId P) const { return Succs[P]; }
  /// Deduplicated callers of \p P.
  const std::vector<ProcId> &callers(ProcId P) const { return Preds[P]; }

  /// The SCC index of \p P. SCC indices are in reverse topological order:
  /// if P calls Q (and they are in different SCCs), scc(Q) < scc(P).
  size_t scc(ProcId P) const { return SccOf[P]; }
  size_t numSccs() const { return Sccs.size(); }
  /// Members of an SCC.
  const std::vector<ProcId> &sccMembers(size_t Scc) const {
    return Sccs[Scc];
  }
  /// True if \p P can (transitively) call itself.
  bool isRecursive(ProcId P) const { return Recursive[P]; }

  /// All procedures reachable from \p Root via call chains, including
  /// \p Root itself, in callee-before-caller (reverse topological) order.
  std::vector<ProcId> reachableFrom(ProcId Root) const;

private:
  std::vector<std::vector<ProcId>> Succs;
  std::vector<std::vector<ProcId>> Preds;
  std::vector<size_t> SccOf;
  std::vector<std::vector<ProcId>> Sccs;
  std::vector<bool> Recursive;
};

} // namespace swift

#endif // SWIFT_IR_CALLGRAPH_H
