//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typestate property specifications: a finite automaton over an object's
/// states with one total transformer [m] : T -> T per method (Figure 2 of
/// the paper). Calling an undeclared (state, method) pair drives the object
/// to the error state; calling a method the class does not declare at all
/// leaves the state unchanged (a "foreign" method).
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_IR_TYPESTATESPEC_H
#define SWIFT_IR_TYPESTATESPEC_H

#include "support/Symbol.h"

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace swift {

/// Index of a typestate within one TypestateSpec.
using TState = uint16_t;

/// A typestate automaton for one class.
class TypestateSpec {
public:
  TypestateSpec(Symbol Name, std::vector<Symbol> StateNames, TState Init,
                TState Error)
      : Name(Name), StateNames(std::move(StateNames)), Init(Init),
        Error(Error) {
    assert(Init < this->StateNames.size() && Error < this->StateNames.size());
  }

  Symbol name() const { return Name; }
  TState initState() const { return Init; }
  TState errorState() const { return Error; }
  size_t numStates() const { return StateNames.size(); }
  Symbol stateName(TState T) const { return StateNames[T]; }

  /// Declares that method \p M in state \p From moves the object to \p To.
  /// Undeclared (state, method) pairs of a declared method go to error.
  void addTransition(Symbol M, TState From, TState To) {
    assert(From < numStates() && To < numStates());
    auto [It, Inserted] = Methods.try_emplace(
        M, std::vector<TState>(numStates(), Error));
    (void)Inserted;
    It->second[From] = To;
  }

  bool hasMethod(Symbol M) const { return Methods.count(M) != 0; }

  /// The transformer [m]: the full T -> T map for method \p M. Must be a
  /// declared method.
  const std::vector<TState> &transformer(Symbol M) const {
    auto It = Methods.find(M);
    assert(It != Methods.end() && "transformer of undeclared method");
    return It->second;
  }

  /// Applies method \p M in state \p T; foreign methods are the identity.
  TState apply(Symbol M, TState T) const {
    auto It = Methods.find(M);
    if (It == Methods.end())
      return T;
    return It->second[T];
  }

  const std::unordered_map<Symbol, std::vector<TState>> &methods() const {
    return Methods;
  }

private:
  Symbol Name;
  std::vector<Symbol> StateNames;
  TState Init;
  TState Error;
  std::unordered_map<Symbol, std::vector<TState>> Methods;
};

} // namespace swift

#endif // SWIFT_IR_TYPESTATESPEC_H
