//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzed program: procedures with control-flow graphs of primitive
/// commands, typestate class specifications, and allocation sites. This is
/// the substrate standing in for Java bytecode + the Chord IR used by the
/// paper (see DESIGN.md, Section 2).
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_IR_PROGRAM_H
#define SWIFT_IR_PROGRAM_H

#include "ir/Command.h"
#include "ir/TypestateSpec.h"
#include "support/Symbol.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

namespace swift {

/// One CFG node: a primitive command plus successor edges. Facts live at
/// node entries; the command executes when flowing to successors.
struct CfgNode {
  Command Cmd;
  std::vector<NodeId> Succs;
};

namespace detail {
/// Reverse postorder of the nodes reachable from \p Entry. Shared by
/// ProgramBuilder::finish and the IR-text parser so both finalize
/// procedures identically.
std::vector<NodeId> computeRpo(const std::vector<CfgNode> &Nodes,
                               NodeId Entry);
} // namespace detail

/// A procedure: parameters, a CFG with unique entry and exit nodes, and the
/// set of variables it mentions. `return e` is normalized to an assignment
/// to the program's $ret variable followed by an edge to the exit node, so
/// the exit node is a Nop and every procedure has exactly one exit.
class Procedure {
public:
  Procedure(Symbol Name, ProcId Id, std::vector<Symbol> Params)
      : Name(Name), Id(Id), Params(std::move(Params)) {}

  Symbol name() const { return Name; }
  ProcId id() const { return Id; }
  const std::vector<Symbol> &params() const { return Params; }

  NodeId entry() const { return Entry; }
  NodeId exit() const { return Exit; }
  size_t numNodes() const { return Nodes.size(); }
  const CfgNode &node(NodeId N) const {
    assert(N < Nodes.size());
    return Nodes[N];
  }
  const std::vector<CfgNode> &nodes() const { return Nodes; }

  /// All variables referenced by the procedure (params included).
  const std::vector<Symbol> &vars() const { return Vars; }

  /// Nodes reachable from the entry, in reverse postorder. Computed once by
  /// the builder; solvers iterate this instead of all nodes so dead code
  /// after `return` is skipped.
  const std::vector<NodeId> &reachableRpo() const { return Rpo; }

  /// True if \p V is a parameter that is never reassigned in the body, so
  /// at procedure exit it still holds the caller's actual.
  bool isStableParam(Symbol V) const {
    for (Symbol P : Params)
      if (P == V)
        return !Reassigned.count(V);
    return false;
  }

private:
  friend class ProgramBuilder;
  friend class ProgramParser;

  Symbol Name;
  ProcId Id;
  std::vector<Symbol> Params;
  std::vector<CfgNode> Nodes;
  std::vector<Symbol> Vars;
  std::vector<NodeId> Rpo;
  std::unordered_map<Symbol, bool> Reassigned;
  NodeId Entry = InvalidNode;
  NodeId Exit = InvalidNode;
};

/// An allocation site: where it is, and what class it allocates.
struct AllocSite {
  Symbol Class;
  ProcId Proc = InvalidProc;
  NodeId Node = InvalidNode;
};

/// A whole program. Built via ProgramBuilder; immutable afterwards.
class Program {
public:
  SymbolTable &symbols() { return Syms; }
  const SymbolTable &symbols() const { return Syms; }

  /// The distinguished return-value variable ("$ret").
  Symbol retVar() const { return RetVar; }

  size_t numProcs() const { return Procs.size(); }
  const Procedure &proc(ProcId P) const {
    assert(P < Procs.size());
    return Procs[P];
  }
  ProcId procId(Symbol Name) const {
    auto It = ProcIndex.find(Name);
    return It == ProcIndex.end() ? InvalidProc : It->second;
  }
  ProcId mainProc() const { return Main; }

  size_t numSites() const { return Sites.size(); }
  const AllocSite &site(SiteId S) const {
    assert(S < Sites.size());
    return Sites[S];
  }

  size_t numSpecs() const { return Specs.size(); }
  const TypestateSpec &spec(size_t I) const { return Specs[I]; }
  const TypestateSpec *specFor(Symbol Class) const {
    auto It = SpecIndex.find(Class);
    return It == SpecIndex.end() ? nullptr : &Specs[It->second];
  }

  /// Total number of primitive commands (non-Nop CFG nodes).
  size_t numCommands() const;

  /// Total number of call edges (Call commands).
  size_t numCallCommands() const;

private:
  friend class ProgramBuilder;
  friend class ProgramParser;

  SymbolTable Syms;
  Symbol RetVar;
  std::vector<Procedure> Procs;
  std::unordered_map<Symbol, ProcId> ProcIndex;
  std::vector<AllocSite> Sites;
  std::vector<TypestateSpec> Specs;
  std::unordered_map<Symbol, size_t> SpecIndex;
  ProcId Main = InvalidProc;
};

} // namespace swift

#endif // SWIFT_IR_PROGRAM_H
