//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

using namespace swift;

size_t Program::numCommands() const {
  size_t N = 0;
  for (const Procedure &P : Procs)
    for (const CfgNode &Node : P.nodes())
      if (Node.Cmd.Kind != CmdKind::Nop)
        ++N;
  return N;
}

size_t Program::numCallCommands() const {
  size_t N = 0;
  for (const Procedure &P : Procs)
    for (const CfgNode &Node : P.nodes())
      if (Node.Cmd.Kind == CmdKind::Call)
        ++N;
  return N;
}

std::string Command::str(const Program &Prog) const {
  const SymbolTable &S = Prog.symbols();
  switch (Kind) {
  case CmdKind::Nop:
    return "nop";
  case CmdKind::Alloc:
    return S.text(Dst) + " = new " + S.text(Class) + "@h" +
           std::to_string(Site);
  case CmdKind::Copy:
    return S.text(Dst) + " = " + S.text(Src);
  case CmdKind::AssignNull:
    return S.text(Dst) + " = null";
  case CmdKind::Load:
    return S.text(Dst) + " = " + S.text(Src) + "." + S.text(Field);
  case CmdKind::Store:
    return S.text(Dst) + "." + S.text(Field) + " = " + S.text(Src);
  case CmdKind::TsCall:
    return S.text(Src) + "." + S.text(Method) + "()";
  case CmdKind::Call: {
    std::string Out;
    if (Dst.isValid())
      Out = S.text(Dst) + " = ";
    Out += Callee == InvalidProc ? std::string("<unresolved>")
                                 : S.text(Prog.proc(Callee).name());
    Out += "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += S.text(Args[I]);
    }
    Out += ")";
    return Out;
  }
  }
  return "<?>";
}
