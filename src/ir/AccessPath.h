//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Access paths of the form v, v.f, or v.f.g (at most two fields), the
/// alias-set elements of the "full" typestate analysis evaluated in the
/// paper (Section 6.1: "it allows tracking access path expressions formed
/// using variables and fields (upto two)").
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_IR_ACCESSPATH_H
#define SWIFT_IR_ACCESSPATH_H

#include "support/Symbol.h"

#include <cassert>
#include <functional>
#include <string>

namespace swift {

/// An access path: a base variable followed by zero, one, or two fields.
class AccessPath {
public:
  AccessPath() = default;

  explicit AccessPath(Symbol Base) : BaseVar(Base) {}
  AccessPath(Symbol Base, Symbol F1) : BaseVar(Base), Field1(F1) {}
  AccessPath(Symbol Base, Symbol F1, Symbol F2)
      : BaseVar(Base), Field1(F1), Field2(F2) {
    assert((!F2.isValid() || F1.isValid()) && "gap in access path fields");
  }

  bool isValid() const { return BaseVar.isValid(); }
  Symbol base() const { return BaseVar; }
  Symbol field1() const { return Field1; }
  Symbol field2() const { return Field2; }

  /// Number of field dereferences (0, 1, or 2).
  unsigned length() const {
    return (Field1.isValid() ? 1u : 0u) + (Field2.isValid() ? 1u : 0u);
  }

  bool isVar() const { return !Field1.isValid(); }

  /// True if any component of the path dereferences \p F.
  bool usesField(Symbol F) const { return Field1 == F || Field2 == F; }

  /// Returns this path with its base variable replaced by \p NewBase.
  AccessPath withBase(Symbol NewBase) const {
    AccessPath P = *this;
    P.BaseVar = NewBase;
    return P;
  }

  /// Returns the path extended by field \p F; only valid if length() < 2.
  AccessPath extend(Symbol F) const {
    assert(length() < 2 && "access paths track at most two fields");
    if (!Field1.isValid())
      return AccessPath(BaseVar, F);
    return AccessPath(BaseVar, Field1, F);
  }

  std::string str(const SymbolTable &Syms) const {
    std::string S = Syms.text(BaseVar);
    if (Field1.isValid())
      S += "." + Syms.text(Field1);
    if (Field2.isValid())
      S += "." + Syms.text(Field2);
    return S;
  }

  friend bool operator==(const AccessPath &A, const AccessPath &B) {
    return A.BaseVar == B.BaseVar && A.Field1 == B.Field1 &&
           A.Field2 == B.Field2;
  }
  friend bool operator!=(const AccessPath &A, const AccessPath &B) {
    return !(A == B);
  }
  friend bool operator<(const AccessPath &A, const AccessPath &B) {
    if (A.BaseVar != B.BaseVar)
      return A.BaseVar < B.BaseVar;
    if (A.Field1 != B.Field1)
      return A.Field1 < B.Field1;
    return A.Field2 < B.Field2;
  }

private:
  Symbol BaseVar;
  Symbol Field1;
  Symbol Field2;
};

} // namespace swift

namespace std {
template <> struct hash<swift::AccessPath> {
  size_t operator()(const swift::AccessPath &P) const noexcept {
    size_t H = 0xcbf29ce484222325ULL;
    auto Mix = [&H](uint32_t V) {
      H ^= V;
      H *= 0x100000001b3ULL;
    };
    Mix(P.base().id());
    Mix(P.field1().id());
    Mix(P.field2().id());
    return H;
  }
};
} // namespace std

#endif // SWIFT_IR_ACCESSPATH_H
