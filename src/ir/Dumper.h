//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual dump of a Program's CFGs for debugging, plus a source-size
/// estimate backing the "KLOC" column of the reproduced Table 1.
/// (Structured TSL text for generated workloads is emitted by the
/// generator itself, which knows the control structure; recovering
/// structure from an arbitrary CFG is out of scope.)
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_IR_DUMPER_H
#define SWIFT_IR_DUMPER_H

#include "ir/Program.h"

#include <ostream>

namespace swift {

/// Prints every procedure's CFG: one line per node with command and
/// successor list.
void dumpCfg(const Program &Prog, std::ostream &OS);

/// Estimated source line count: one line per primitive command plus
/// procedure header/footer and typestate declarations.
size_t sourceLineEstimate(const Program &Prog);

} // namespace swift

#endif // SWIFT_IR_DUMPER_H
