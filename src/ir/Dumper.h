//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual dump of a Program's CFGs for debugging, a source-size estimate
/// backing the "KLOC" column of the reproduced Table 1, and a
/// round-trippable serialization of whole Programs (the "swift-ir v1"
/// format). The serialization is CFG-level — unlike TSL it represents any
/// CFG, including the unstructured ones the test-case reducer produces —
/// and printProgramText / parseProgramText are exact inverses:
/// print(parse(print(P))) == print(P), and the parsed program analyzes
/// identically (same site numbering, node numbering, and edges). Used by
/// the differential-testing reproducers (src/difftest, tests/corpus).
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_IR_DUMPER_H
#define SWIFT_IR_DUMPER_H

#include "ir/Program.h"

#include <memory>
#include <ostream>
#include <string>
#include <string_view>

namespace swift {

/// Prints every procedure's CFG: one line per node with command and
/// successor list.
void dumpCfg(const Program &Prog, std::ostream &OS);

/// Estimated source line count: one line per primitive command plus
/// procedure header/footer and typestate declarations.
size_t sourceLineEstimate(const Program &Prog);

/// Serializes \p Prog in the round-trippable "swift-ir v1" text format.
/// Deterministic: equal programs print equal text (typestate methods are
/// emitted in name order, nodes in id order).
void printProgramText(const Program &Prog, std::ostream &OS);

/// printProgramText into a string.
std::string programToText(const Program &Prog);

/// Writes \p Prog as swift-ir v1 text to \p Path crash-safely: temp file
/// + fsync + atomic rename, every write and the close verified (a
/// buffered write error can surface only at close). Throws
/// std::runtime_error with errno detail; failpoints ir.save.*.
void saveProgramTextFile(const std::string &Path, const Program &Prog);

/// Parses text produced by printProgramText (lines starting with '#' are
/// comments). Throws std::runtime_error with a line number on malformed
/// input. The result reproduces the printed program exactly: node ids,
/// successor lists, allocation-site ids, entry/exit nodes.
std::unique_ptr<Program> parseProgramText(std::string_view Text);

} // namespace swift

#endif // SWIFT_IR_DUMPER_H
