//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Dumper.h"

#include "support/AtomicFile.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

using namespace swift;

void swift::dumpCfg(const Program &Prog, std::ostream &OS) {
  const SymbolTable &Syms = Prog.symbols();
  for (size_t P = 0; P != Prog.numProcs(); ++P) {
    const Procedure &Proc = Prog.proc(static_cast<ProcId>(P));
    OS << "proc " << Syms.text(Proc.name()) << "(";
    for (size_t I = 0; I != Proc.params().size(); ++I) {
      if (I)
        OS << ", ";
      OS << Syms.text(Proc.params()[I]);
    }
    OS << ")  entry=" << Proc.entry() << " exit=" << Proc.exit() << "\n";
    for (NodeId N : Proc.reachableRpo()) {
      const CfgNode &Node = Proc.node(N);
      OS << "  " << N << ": " << Node.Cmd.str(Prog) << "  ->";
      for (NodeId S : Node.Succs)
        OS << " " << S;
      OS << "\n";
    }
  }
}

size_t swift::sourceLineEstimate(const Program &Prog) {
  size_t Lines = 0;
  for (size_t I = 0; I != Prog.numSpecs(); ++I) {
    const TypestateSpec &Spec = Prog.spec(I);
    Lines += 2 + Spec.numStates();
    for (const auto &[M, Tr] : Spec.methods()) {
      (void)M;
      Lines += Tr.size();
    }
  }
  for (size_t P = 0; P != Prog.numProcs(); ++P) {
    Lines += 2; // header + closing brace
    for (const CfgNode &Node : Prog.proc(static_cast<ProcId>(P)).nodes())
      if (Node.Cmd.Kind != CmdKind::Nop)
        ++Lines;
  }
  return Lines;
}

//===----------------------------------------------------------------------===//
// Round-trippable "swift-ir v1" serialization.
//===----------------------------------------------------------------------===//

namespace {

/// Names are printed bare, so they must survive the tokenizer: no
/// whitespace, none of the structural characters, no '.', and not a
/// command keyword (a variable literally named "null" would make
/// `x = null` ambiguous). TSL and the fuzzer only produce plain
/// identifiers; anything else is a bug at the producer.
bool nameIsPrintable(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r' || C == '.' ||
        C == '(' || C == ')' || C == '{' || C == '}' || C == ':' ||
        C == '=' || C == '@' || C == '#')
      return false;
  return S != "null" && S != "new" && S != "call" && S != "nop" &&
         S != "->";
}

void printCommand(const Program &Prog, const Command &C, std::ostream &OS) {
  const SymbolTable &Syms = Prog.symbols();
  auto T = [&](Symbol S) -> const std::string & {
    const std::string &Text = Syms.text(S);
    assert(nameIsPrintable(Text) && "name not serializable");
    return Text;
  };
  switch (C.Kind) {
  case CmdKind::Nop:
    OS << "nop";
    break;
  case CmdKind::Alloc:
    OS << T(C.Dst) << " = new " << T(C.Class) << " @" << C.Site;
    break;
  case CmdKind::Copy:
    OS << T(C.Dst) << " = " << T(C.Src);
    break;
  case CmdKind::AssignNull:
    OS << T(C.Dst) << " = null";
    break;
  case CmdKind::Load:
    OS << T(C.Dst) << " = " << T(C.Src) << "." << T(C.Field);
    break;
  case CmdKind::Store:
    OS << T(C.Dst) << "." << T(C.Field) << " = " << T(C.Src);
    break;
  case CmdKind::TsCall:
    OS << T(C.Src) << "." << T(C.Method) << "()";
    break;
  case CmdKind::Call: {
    if (C.Dst.isValid())
      OS << T(C.Dst) << " = ";
    assert(C.Callee != InvalidProc && "unresolved call");
    OS << "call " << T(Prog.proc(C.Callee).name()) << "(";
    for (size_t I = 0; I != C.Args.size(); ++I) {
      if (I)
        OS << " ";
      OS << T(C.Args[I]);
    }
    OS << ")";
    break;
  }
  }
}

} // namespace

void swift::printProgramText(const Program &Prog, std::ostream &OS) {
  const SymbolTable &Syms = Prog.symbols();
  OS << "# swift-ir v1\n";

  for (size_t I = 0; I != Prog.numSpecs(); ++I) {
    const TypestateSpec &Spec = Prog.spec(I);
    OS << "typestate " << Syms.text(Spec.name()) << " {\n";
    OS << "  states";
    for (size_t S = 0; S != Spec.numStates(); ++S)
      OS << " " << Syms.text(Spec.stateName(static_cast<TState>(S)));
    OS << "\n";
    OS << "  init " << Syms.text(Spec.stateName(Spec.initState())) << "\n";
    OS << "  error " << Syms.text(Spec.stateName(Spec.errorState())) << "\n";
    // methods() is an unordered_map; sort by name text so equal programs
    // print equal text.
    std::vector<Symbol> Methods;
    for (const auto &[M, Tr] : Spec.methods()) {
      (void)Tr;
      Methods.push_back(M);
    }
    std::sort(Methods.begin(), Methods.end(), [&](Symbol A, Symbol B) {
      return Syms.text(A) < Syms.text(B);
    });
    for (Symbol M : Methods) {
      OS << "  method " << Syms.text(M) << " =";
      for (TState To : Spec.transformer(M))
        OS << " " << Syms.text(Spec.stateName(To));
      OS << "\n";
    }
    OS << "}\n";
  }

  for (size_t P = 0; P != Prog.numProcs(); ++P) {
    const Procedure &Proc = Prog.proc(static_cast<ProcId>(P));
    OS << "proc " << Syms.text(Proc.name()) << "(";
    for (size_t I = 0; I != Proc.params().size(); ++I) {
      if (I)
        OS << " ";
      OS << Syms.text(Proc.params()[I]);
    }
    OS << ") entry " << Proc.entry() << " exit " << Proc.exit() << " nodes "
       << Proc.numNodes() << " {\n";
    // Every node, dead ones included, so node ids (and thus allocation-site
    // positions and analysis results) survive the round trip exactly.
    for (NodeId N = 0; N != Proc.numNodes(); ++N) {
      const CfgNode &Node = Proc.node(N);
      OS << "  " << N << ": ";
      printCommand(Prog, Node.Cmd, OS);
      OS << " ->";
      for (NodeId S : Node.Succs)
        OS << " " << S;
      OS << "\n";
    }
    OS << "}\n";
  }

  assert(Prog.mainProc() != InvalidProc && "program without main");
  OS << "main " << Syms.text(Prog.proc(Prog.mainProc()).name()) << "\n";
}

std::string swift::programToText(const Program &Prog) {
  std::ostringstream OS;
  printProgramText(Prog, OS);
  return OS.str();
}

void swift::saveProgramTextFile(const std::string &Path,
                                const Program &Prog) {
  writeFileAtomic(Path, programToText(Prog), "ir.save");
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace swift {

/// Parser for the swift-ir v1 format. A friend of Program/Procedure: it
/// fills the same private fields ProgramBuilder does, but placing nodes at
/// explicit ids instead of growing structured control flow.
class ProgramParser {
public:
  explicit ProgramParser(std::string_view Text) : Text(Text) {}

  std::unique_ptr<Program> parse();

private:
  [[noreturn]] void fail(const std::string &Msg) const {
    throw std::runtime_error("swift-ir line " + std::to_string(LineNo) +
                             ": " + Msg);
  }

  /// Reads the next non-empty, non-comment line and tokenizes it.
  /// Structural characters (){}:=@ are single tokens, "->" is a token,
  /// anything else (including '.') accumulates into one word.
  bool nextLine();

  const std::string &tok(size_t I) const {
    if (I >= Toks.size())
      fail("unexpected end of line");
    return Toks[I];
  }
  void expect(size_t I, const char *Want) const {
    if (tok(I) != Want)
      fail("expected '" + std::string(Want) + "', got '" + tok(I) + "'");
  }
  void expectEnd(size_t I) const {
    if (I != Toks.size())
      fail("trailing tokens after '" + Toks[I - 1] + "'");
  }
  uint32_t number(const std::string &S) const;

  void parseTypestate();
  void parseProc();
  Command parseCommand(size_t &I);
  void finalize(Symbol MainName);

  std::string_view Text;
  size_t Pos = 0;
  size_t LineNo = 0;
  std::vector<std::string> Toks;
  std::unique_ptr<Program> Prog = std::make_unique<Program>();

  struct PendingCall {
    ProcId Proc;
    NodeId Node;
    Symbol Callee;
  };
  std::vector<PendingCall> Pending;
};

} // namespace swift

uint32_t ProgramParser::number(const std::string &S) const {
  if (S.empty())
    fail("expected a number");
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      fail("expected a number, got '" + S + "'");
    V = V * 10 + static_cast<uint64_t>(C - '0');
    if (V > UINT32_MAX)
      fail("number out of range: '" + S + "'");
  }
  return static_cast<uint32_t>(V);
}

bool ProgramParser::nextLine() {
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;

    Toks.clear();
    size_t I = 0;
    auto IsSpace = [](char C) {
      return C == ' ' || C == '\t' || C == '\r';
    };
    auto IsStructural = [](char C) {
      return C == '(' || C == ')' || C == '{' || C == '}' || C == ':' ||
             C == '=' || C == '@';
    };
    while (I < Line.size()) {
      char C = Line[I];
      if (IsSpace(C)) {
        ++I;
        continue;
      }
      if (C == '#')
        break; // comment to end of line
      if (IsStructural(C)) {
        Toks.emplace_back(1, C);
        ++I;
        continue;
      }
      if (C == '-' && I + 1 < Line.size() && Line[I + 1] == '>') {
        Toks.emplace_back("->");
        I += 2;
        continue;
      }
      size_t Start = I;
      while (I < Line.size() && !IsSpace(Line[I]) &&
             !IsStructural(Line[I]) && Line[I] != '#' &&
             !(Line[I] == '-' && I + 1 < Line.size() && Line[I + 1] == '>'))
        ++I;
      Toks.emplace_back(Line.substr(Start, I - Start));
    }
    if (!Toks.empty())
      return true;
  }
  return false;
}

void ProgramParser::parseTypestate() {
  // typestate <name> {
  Symbol Name = Prog->Syms.intern(tok(1));
  expect(2, "{");
  expectEnd(3);
  if (Prog->SpecIndex.count(Name))
    fail("duplicate typestate class '" + tok(1) + "'");

  // states <s...>
  if (!nextLine() || tok(0) != "states" || Toks.size() < 2)
    fail("expected 'states <name...>'");
  std::vector<Symbol> States;
  std::unordered_map<Symbol, TState> StateIdx;
  for (size_t I = 1; I != Toks.size(); ++I) {
    Symbol S = Prog->Syms.intern(Toks[I]);
    if (!StateIdx.emplace(S, static_cast<TState>(States.size())).second)
      fail("duplicate state '" + Toks[I] + "'");
    States.push_back(S);
  }
  auto FindState = [&](const std::string &S) -> TState {
    auto It = StateIdx.find(Prog->Syms.intern(S));
    if (It == StateIdx.end())
      fail("unknown state '" + S + "'");
    return It->second;
  };

  // init <s> / error <s>
  if (!nextLine() || tok(0) != "init")
    fail("expected 'init <state>'");
  TState Init = FindState(tok(1));
  expectEnd(2);
  if (!nextLine() || tok(0) != "error")
    fail("expected 'error <state>'");
  TState Error = FindState(tok(1));
  expectEnd(2);

  TypestateSpec Spec(Name, std::move(States), Init, Error);

  // method <m> = <to-state per from-state> ... then }
  for (;;) {
    if (!nextLine())
      fail("unterminated typestate block");
    if (tok(0) == "}") {
      expectEnd(1);
      break;
    }
    if (tok(0) != "method")
      fail("expected 'method' or '}'");
    Symbol M = Prog->Syms.intern(tok(1));
    if (Spec.hasMethod(M))
      fail("duplicate method '" + tok(1) + "'");
    expect(2, "=");
    if (Toks.size() != 3 + Spec.numStates())
      fail("method transformer must list one target state per state");
    for (size_t From = 0; From != Spec.numStates(); ++From)
      Spec.addTransition(M, static_cast<TState>(From),
                         FindState(tok(3 + From)));
  }

  Prog->SpecIndex.emplace(Name, Prog->Specs.size());
  Prog->Specs.push_back(std::move(Spec));
}

Command ProgramParser::parseCommand(size_t &I) {
  auto SplitDot = [&](const std::string &S) -> std::pair<Symbol, Symbol> {
    size_t Dot = S.find('.');
    if (Dot == 0 || Dot == std::string::npos || Dot + 1 == S.size())
      fail("malformed qualified name '" + S + "'");
    return {Prog->Syms.intern(S.substr(0, Dot)),
            Prog->Syms.intern(S.substr(Dot + 1))};
  };
  auto ParseCallTail = [&](Symbol Dst) -> Command {
    // call <name> ( <args...> )
    Symbol Callee = Prog->Syms.intern(tok(I + 1));
    expect(I + 2, "(");
    I += 3;
    std::vector<Symbol> Args;
    while (tok(I) != ")")
      Args.push_back(Prog->Syms.intern(Toks[I++]));
    ++I; // ')'
    Command C = Command::makeCall(Dst, InvalidProc, std::move(Args));
    Pending.push_back(
        PendingCall{static_cast<ProcId>(Prog->Procs.size() - 1),
                    static_cast<NodeId>(Prog->Procs.back().Nodes.size()),
                    Callee});
    return C;
  };

  const std::string &First = tok(I);
  if (First == "nop") {
    ++I;
    return Command::makeNop();
  }
  if (First == "call")
    return ParseCallTail(Symbol());
  if (First.find('.') != std::string::npos) {
    auto [Base, Member] = SplitDot(First);
    if (tok(I + 1) == "(") {
      // recv.method ( )
      expect(I + 2, ")");
      I += 3;
      Command C = Command::makeTsCall(Base, Member);
      return C;
    }
    // base.field = src
    expect(I + 1, "=");
    Symbol Src = Prog->Syms.intern(tok(I + 2));
    I += 3;
    return Command::makeStore(Base, Member, Src);
  }
  // <dst> = ...
  Symbol Dst = Prog->Syms.intern(First);
  expect(I + 1, "=");
  const std::string &Rhs = tok(I + 2);
  if (Rhs == "null") {
    I += 3;
    return Command::makeAssignNull(Dst);
  }
  if (Rhs == "new") {
    // dst = new <class> @ <site>
    Symbol Class = Prog->Syms.intern(tok(I + 3));
    expect(I + 4, "@");
    SiteId Site = number(tok(I + 5));
    I += 6;
    return Command::makeAlloc(Dst, Class, Site);
  }
  if (Rhs == "call") {
    I += 2;
    return ParseCallTail(Dst);
  }
  if (Rhs.find('.') != std::string::npos) {
    auto [Base, Field] = SplitDot(Rhs);
    I += 3;
    return Command::makeLoad(Dst, Base, Field);
  }
  Symbol Src = Prog->Syms.intern(Rhs);
  I += 3;
  return Command::makeCopy(Dst, Src);
}

void ProgramParser::parseProc() {
  // proc <name> ( <params...> ) entry <n> exit <n> nodes <n> {
  Symbol Name = Prog->Syms.intern(tok(1));
  if (Prog->ProcIndex.count(Name))
    fail("duplicate procedure '" + tok(1) + "'");
  expect(2, "(");
  size_t I = 3;
  std::vector<Symbol> Params;
  while (tok(I) != ")")
    Params.push_back(Prog->Syms.intern(Toks[I++]));
  ++I;
  expect(I, "entry");
  NodeId Entry = number(tok(I + 1));
  expect(I + 2, "exit");
  NodeId Exit = number(tok(I + 3));
  expect(I + 4, "nodes");
  uint32_t NumNodes = number(tok(I + 5));
  expect(I + 6, "{");
  expectEnd(I + 7);
  if (NumNodes == 0 || Entry >= NumNodes || Exit >= NumNodes)
    fail("entry/exit out of range");
  // Sanity limit before the reserve: every node occupies at least a
  // "N: nop ->" line, so a count beyond a quarter of the remaining bytes
  // is a mutated input — fail fast instead of reserving gigabytes.
  if (NumNodes > (Text.size() - std::min(Pos, Text.size())) / 4 + 1)
    fail("node count " + std::to_string(NumNodes) +
         " exceeds the remaining input size");

  ProcId Id = static_cast<ProcId>(Prog->Procs.size());
  Prog->ProcIndex.emplace(Name, Id);
  Prog->Procs.emplace_back(Name, Id, std::move(Params));
  Procedure &P = Prog->Procs.back();
  P.Entry = Entry;
  P.Exit = Exit;
  P.Nodes.reserve(NumNodes);

  // <id>: <command> -> <succs...>, node ids in order 0..NumNodes-1.
  for (NodeId N = 0; N != NumNodes; ++N) {
    if (!nextLine())
      fail("unterminated procedure body");
    if (number(tok(0)) != N)
      fail("expected node " + std::to_string(N) + ", got '" + tok(0) + "'");
    expect(1, ":");
    size_t Cur = 2;
    Command Cmd = parseCommand(Cur);
    Cmd.Self = N;
    expect(Cur, "->");
    ++Cur;
    std::vector<NodeId> Succs;
    for (; Cur != Toks.size(); ++Cur) {
      NodeId S = number(Toks[Cur]);
      if (S >= NumNodes)
        fail("successor out of range: " + Toks[Cur]);
      Succs.push_back(S);
    }
    P.Nodes.push_back(CfgNode{std::move(Cmd), std::move(Succs)});
  }

  if (!nextLine() || tok(0) != "}")
    fail("expected '}' closing procedure body");
  expectEnd(1);
}

void ProgramParser::finalize(Symbol MainName) {
  // Resolve call targets by name (procedures may call forward).
  for (const PendingCall &PC : Pending) {
    auto It = Prog->ProcIndex.find(PC.Callee);
    if (It == Prog->ProcIndex.end())
      fail("call to undeclared procedure '" + Prog->Syms.text(PC.Callee) +
           "'");
    Command &Cmd = Prog->Procs[PC.Proc].Nodes[PC.Node].Cmd;
    Cmd.Callee = It->second;
    if (Prog->Procs[It->second].params().size() != Cmd.Args.size())
      fail("arity mismatch calling " + Prog->Syms.text(PC.Callee));
  }

  // Rebuild the dense allocation-site table from the Alloc commands. Ids
  // must be exactly 0..N-1 with no duplicates, or the round trip (and every
  // analysis keyed on SiteId) would be skewed.
  std::vector<AllocSite> Sites;
  for (Procedure &P : Prog->Procs)
    for (CfgNode &Node : P.Nodes) {
      if (Node.Cmd.Kind != CmdKind::Alloc)
        continue;
      if (!Prog->SpecIndex.count(Node.Cmd.Class))
        fail("allocation of undeclared class '" +
             Prog->Syms.text(Node.Cmd.Class) + "'");
      SiteId S = Node.Cmd.Site;
      if (S >= Sites.size())
        Sites.resize(S + 1);
      if (Sites[S].Proc != InvalidProc)
        fail("duplicate allocation site @" + std::to_string(S));
      Sites[S] = AllocSite{Node.Cmd.Class, P.Id, Node.Cmd.Self};
    }
  for (size_t S = 0; S != Sites.size(); ++S)
    if (Sites[S].Proc == InvalidProc)
      fail("allocation-site ids not dense: missing @" + std::to_string(S));
  Prog->Sites = std::move(Sites);

  // Recompute the derived per-procedure data the builder tracks during
  // construction: reachable RPO, the variable list, and the reassigned set
  // ($ret is deliberately in neither, matching ProgramBuilder::ret).
  Symbol Ret = Prog->RetVar;
  for (Procedure &P : Prog->Procs) {
    P.Rpo = detail::computeRpo(P.Nodes, P.Entry);

    auto NoteVar = [&](Symbol V) {
      if (!V.isValid() || V == Ret)
        return;
      if (std::find(P.Vars.begin(), P.Vars.end(), V) == P.Vars.end())
        P.Vars.push_back(V);
    };
    auto NoteDef = [&](Symbol V) {
      NoteVar(V);
      if (V.isValid() && V != Ret)
        P.Reassigned[V] = true;
    };
    for (Symbol S : P.Params)
      NoteVar(S);
    for (const CfgNode &Node : P.Nodes) {
      const Command &C = Node.Cmd;
      switch (C.Kind) {
      case CmdKind::Nop:
        break;
      case CmdKind::Alloc:
      case CmdKind::AssignNull:
        NoteDef(C.Dst);
        break;
      case CmdKind::Copy:
      case CmdKind::Load:
        NoteDef(C.Dst);
        NoteVar(C.Src);
        break;
      case CmdKind::Store:
        NoteVar(C.Dst);
        NoteVar(C.Src);
        break;
      case CmdKind::TsCall:
        NoteVar(C.Src);
        break;
      case CmdKind::Call:
        for (Symbol A : C.Args)
          NoteVar(A);
        NoteDef(C.Dst);
        break;
      }
    }
  }

  auto It = Prog->ProcIndex.find(MainName);
  if (It == Prog->ProcIndex.end())
    fail("no procedure named '" + Prog->Syms.text(MainName) + "'");
  Prog->Main = It->second;
  if (!Prog->Procs[Prog->Main].params().empty())
    fail("main procedure must take no parameters");
}

std::unique_ptr<Program> ProgramParser::parse() {
  Prog->RetVar = Prog->Syms.intern("$ret");

  Symbol MainName;
  bool SawMain = false;
  while (nextLine()) {
    if (tok(0) == "typestate") {
      if (!Prog->Procs.empty())
        fail("typestate blocks must precede procedures");
      parseTypestate();
    } else if (tok(0) == "proc") {
      parseProc();
    } else if (tok(0) == "main") {
      MainName = Prog->Syms.intern(tok(1));
      expectEnd(2);
      SawMain = true;
      if (nextLine())
        fail("content after 'main' line");
      break;
    } else {
      fail("expected 'typestate', 'proc', or 'main', got '" + tok(0) + "'");
    }
  }
  if (!SawMain)
    fail("missing 'main <proc>' line");

  finalize(MainName);
  return std::move(Prog);
}

std::unique_ptr<Program> swift::parseProgramText(std::string_view Text) {
  ProgramParser P(Text);
  return P.parse();
}
