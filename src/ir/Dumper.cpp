//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Dumper.h"

using namespace swift;

void swift::dumpCfg(const Program &Prog, std::ostream &OS) {
  const SymbolTable &Syms = Prog.symbols();
  for (size_t P = 0; P != Prog.numProcs(); ++P) {
    const Procedure &Proc = Prog.proc(static_cast<ProcId>(P));
    OS << "proc " << Syms.text(Proc.name()) << "(";
    for (size_t I = 0; I != Proc.params().size(); ++I) {
      if (I)
        OS << ", ";
      OS << Syms.text(Proc.params()[I]);
    }
    OS << ")  entry=" << Proc.entry() << " exit=" << Proc.exit() << "\n";
    for (NodeId N : Proc.reachableRpo()) {
      const CfgNode &Node = Proc.node(N);
      OS << "  " << N << ": " << Node.Cmd.str(Prog) << "  ->";
      for (NodeId S : Node.Succs)
        OS << " " << S;
      OS << "\n";
    }
  }
}

size_t swift::sourceLineEstimate(const Program &Prog) {
  size_t Lines = 0;
  for (size_t I = 0; I != Prog.numSpecs(); ++I) {
    const TypestateSpec &Spec = Prog.spec(I);
    Lines += 2 + Spec.numStates();
    for (const auto &[M, Tr] : Spec.methods()) {
      (void)M;
      Lines += Tr.size();
    }
  }
  for (size_t P = 0; P != Prog.numProcs(); ++P) {
    Lines += 2; // header + closing brace
    for (const CfgNode &Node : Prog.proc(static_cast<ProcId>(P)).nodes())
      if (Node.Cmd.Kind != CmdKind::Nop)
        ++Lines;
  }
  return Lines;
}
