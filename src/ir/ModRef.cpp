//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/ModRef.h"

using namespace swift;

ModRef::ModRef(const Program &Prog, const CallGraph &CG) {
  size_t N = Prog.numProcs();
  ModFields.resize(N);

  // Direct stores.
  for (ProcId P = 0; P != N; ++P)
    for (const CfgNode &Node : Prog.proc(P).nodes())
      if (Node.Cmd.Kind == CmdKind::Store)
        ModFields[P].insert(Node.Cmd.Field);

  // Transitive closure over the call graph: process SCCs in reverse
  // topological order (callees first), iterating within an SCC until
  // stable.
  for (size_t Scc = 0; Scc != CG.numSccs(); ++Scc) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (ProcId P : CG.sccMembers(Scc)) {
        for (ProcId Q : CG.callees(P)) {
          for (Symbol F : ModFields[Q])
            if (ModFields[P].insert(F).second)
              Changed = true;
        }
      }
    }
  }
}
