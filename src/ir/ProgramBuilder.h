//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured construction of Programs. The builder exposes the paper's
/// command language — primitive commands, non-deterministic choice
/// (beginIf/orElse/endIf), iteration (beginLoop/endLoop) and procedure
/// calls — and lowers it to per-procedure CFGs with unique entry/exit
/// nodes. Used by the TSL frontend, the workload generator, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_IR_PROGRAMBUILDER_H
#define SWIFT_IR_PROGRAMBUILDER_H

#include "ir/Program.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace swift {

/// Builds one Program. Typestates must be declared before the procedures
/// that allocate them; procedures may call procedures declared later
/// (call targets are resolved by name in finish()).
class ProgramBuilder {
public:
  ProgramBuilder();

  //===--------------------------------------------------------------------===
  // Typestate declarations
  //===--------------------------------------------------------------------===

  /// One declared transition of a typestate automaton.
  struct Transition {
    std::string From;
    std::string Method;
    std::string To;
  };

  /// Declares class \p Name with the given states. \p Init and \p Error
  /// must appear in \p States. Declared methods move to error on undeclared
  /// (state, method) pairs.
  void addTypestate(std::string_view Name,
                    const std::vector<std::string> &States,
                    std::string_view Init, std::string_view Error,
                    const std::vector<Transition> &Transitions);

  //===--------------------------------------------------------------------===
  // Procedure construction
  //===--------------------------------------------------------------------===

  /// Starts a procedure. Only one procedure may be open at a time.
  void beginProc(std::string_view Name,
                 const std::vector<std::string> &Params);
  void endProc();

  void alloc(std::string_view Dst, std::string_view Class);
  void copy(std::string_view Dst, std::string_view Src);
  void assignNull(std::string_view Dst);
  void load(std::string_view Dst, std::string_view Base,
            std::string_view Field);
  void store(std::string_view Base, std::string_view Field,
             std::string_view Src);
  void tsCall(std::string_view Receiver, std::string_view Method);
  void call(std::string_view Callee,
            const std::vector<std::string> &Args);
  void callAssign(std::string_view Dst, std::string_view Callee,
                  const std::vector<std::string> &Args);

  /// Non-deterministic choice: if (*) { ... } [else { ... }].
  void beginIf();
  void orElse();
  void endIf();

  /// Non-deterministic iteration: while (*) { ... } — zero or more times.
  void beginLoop();
  void endLoop();

  /// `return v;` / `return;` — normalized to $ret assignment + exit edge.
  void ret(std::string_view Value);
  void ret();

  //===--------------------------------------------------------------------===
  // Finalization
  //===--------------------------------------------------------------------===

  /// Resolves call targets, computes reachable RPO and reassigned-parameter
  /// info, and returns the finished program. \p MainName must name a
  /// declared zero-parameter procedure. The builder is consumed.
  std::unique_ptr<Program> finish(std::string_view MainName = "main");

private:
  Symbol sym(std::string_view S);
  NodeId emit(Command Cmd);
  void noteVar(Symbol V);
  void noteDef(Symbol V);
  Procedure &cur();

  struct IfFrame {
    NodeId Branch;
    NodeId ThenEnd = InvalidNode;
    bool InElse = false;
  };
  struct LoopFrame {
    NodeId Head;
  };
  struct ControlFrame {
    bool IsLoop;
    IfFrame If;
    LoopFrame Loop;
  };

  struct PendingCall {
    ProcId Proc;
    NodeId Node;
    Symbol Callee;
  };

  std::unique_ptr<Program> Prog;
  ProcId CurProc = InvalidProc;
  NodeId CurNode = InvalidNode;
  std::vector<ControlFrame> Control;
  std::vector<PendingCall> Pending;
};

} // namespace swift

#endif // SWIFT_IR_PROGRAMBUILDER_H
