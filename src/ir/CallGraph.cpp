//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/CallGraph.h"

#include <algorithm>
#include <cassert>

using namespace swift;

CallGraph::CallGraph(const Program &Prog) {
  size_t N = Prog.numProcs();
  Succs.resize(N);
  Preds.resize(N);
  SccOf.assign(N, 0);
  Recursive.assign(N, false);

  for (ProcId P = 0; P != N; ++P) {
    for (const CfgNode &Node : Prog.proc(P).nodes()) {
      if (Node.Cmd.Kind != CmdKind::Call)
        continue;
      ProcId Q = Node.Cmd.Callee;
      assert(Q != InvalidProc && "unresolved call in finished program");
      if (std::find(Succs[P].begin(), Succs[P].end(), Q) == Succs[P].end()) {
        Succs[P].push_back(Q);
        Preds[Q].push_back(P);
      }
      if (P == Q)
        Recursive[P] = true;
    }
  }

  // Iterative Tarjan SCC. Tarjan emits SCCs in reverse topological order of
  // the condensation (all callees' SCCs before the caller's SCC).
  std::vector<uint32_t> Index(N, UINT32_MAX), Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<ProcId> Stack;
  uint32_t NextIndex = 0;

  struct Frame {
    ProcId P;
    size_t NextSucc;
  };
  std::vector<Frame> Dfs;

  for (ProcId Root = 0; Root != N; ++Root) {
    if (Index[Root] != UINT32_MAX)
      continue;
    Dfs.push_back(Frame{Root, 0});
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      if (F.NextSucc < Succs[F.P].size()) {
        ProcId Q = Succs[F.P][F.NextSucc++];
        if (Index[Q] == UINT32_MAX) {
          Index[Q] = Low[Q] = NextIndex++;
          Stack.push_back(Q);
          OnStack[Q] = true;
          Dfs.push_back(Frame{Q, 0});
        } else if (OnStack[Q]) {
          Low[F.P] = std::min(Low[F.P], Index[Q]);
        }
        continue;
      }
      // All successors done; maybe emit an SCC, then propagate lowlink.
      if (Low[F.P] == Index[F.P]) {
        size_t SccId = Sccs.size();
        Sccs.emplace_back();
        for (;;) {
          ProcId Q = Stack.back();
          Stack.pop_back();
          OnStack[Q] = false;
          SccOf[Q] = SccId;
          Sccs.back().push_back(Q);
          if (Q == F.P)
            break;
        }
        if (Sccs.back().size() > 1)
          for (ProcId Q : Sccs.back())
            Recursive[Q] = true;
      }
      ProcId Done = F.P;
      Dfs.pop_back();
      if (!Dfs.empty())
        Low[Dfs.back().P] = std::min(Low[Dfs.back().P], Low[Done]);
    }
  }
}

std::vector<ProcId> CallGraph::reachableFrom(ProcId Root) const {
  std::vector<bool> Seen(Succs.size(), false);
  std::vector<ProcId> Work{Root};
  Seen[Root] = true;
  std::vector<ProcId> Out;
  while (!Work.empty()) {
    ProcId P = Work.back();
    Work.pop_back();
    Out.push_back(P);
    for (ProcId Q : Succs[P])
      if (!Seen[Q]) {
        Seen[Q] = true;
        Work.push_back(Q);
      }
  }
  // Callee-before-caller: ascending SCC index (Tarjan emits callees first).
  std::sort(Out.begin(), Out.end(), [this](ProcId A, ProcId B) {
    if (SccOf[A] != SccOf[B])
      return SccOf[A] < SccOf[B];
    return A < B;
  });
  return Out;
}
