//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-procedure side-effect summaries: the set of fields a procedure may
/// (transitively) store to. The call-return mapping of the typestate
/// analysis uses this to decide which caller access paths survive a call —
/// a path mentioning a modified field may have been redirected by the
/// callee and is conservatively dropped from both the must and the
/// must-not set.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_IR_MODREF_H
#define SWIFT_IR_MODREF_H

#include "ir/CallGraph.h"
#include "ir/Program.h"

#include <unordered_set>
#include <vector>

namespace swift {

class ModRef {
public:
  ModRef(const Program &Prog, const CallGraph &CG);

  /// True if \p P may (transitively) store to field \p F.
  bool mayModField(ProcId P, Symbol F) const {
    return ModFields[P].count(F) != 0;
  }

  const std::unordered_set<Symbol> &modFields(ProcId P) const {
    return ModFields[P];
  }

private:
  std::vector<std::unordered_set<Symbol>> ModFields;
};

} // namespace swift

#endif // SWIFT_IR_MODREF_H
