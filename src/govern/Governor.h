//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource governor: staged, observable degradation instead of the
/// paper's hard 16 GB / 24 h cliff. It watches three resources at once —
/// the shared step Budget, the wall clock, and an instrumented memory
/// estimate (path-edge table plus relation-store footprints, charged by
/// the solvers) — and folds them into one pressure fraction, the maximum
/// utilization over the three. The fraction maps to a latched pressure
/// level:
///
///   Green  — normal operation.
///   Yellow — (fraction >= YellowAt) the hybrid degrades: newly triggered
///            synchronous bottom-up runs halve theta (smaller summaries,
///            larger Sigma, more top-down fallback — sound by the paper's
///            Theorem 3.1), and no new *asynchronous* bottom-up jobs are
///            minted (speculative summary work stops first).
///   Red    — (fraction >= RedAt) no bottom-up runs at all, installed
///            summary caches are shed to free memory, and in-flight
///            asynchronous jobs are cancelled through the CancelToken.
///
/// Levels only ratchet upward (the latch): degradation actions are
/// monotone, so a transient dip in the wall-clock fraction never re-grows
/// summary caches that were already shed. Exceeding the hard memory cap
/// exhausts the shared Budget, which makes every solver abort at its next
/// step() — the run then returns a *partial but sound* result instead of
/// nothing (see typestate/Runner.h's governed entry point).
///
/// Determinism: with step-only limits (no wall clock, no memory cap) the
/// pressure level observed at each top-down poll point is a pure function
/// of the deterministic step count, so governed synchronous runs are
/// reproducible at any thread count. Wall-clock and memory fractions are
/// inherently timing-dependent; they are best-effort degradation signals,
/// not part of the determinism contract.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_GOVERN_GOVERNOR_H
#define SWIFT_GOVERN_GOVERNOR_H

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Cancellation.h"
#include "support/FailPoint.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace swift {

enum class Pressure : int { Green = 0, Yellow = 1, Red = 2 };

inline const char *pressureName(Pressure P) {
  switch (P) {
  case Pressure::Green:
    return "green";
  case Pressure::Yellow:
    return "yellow";
  case Pressure::Red:
    return "red";
  }
  return "?";
}

inline bool pressureAtLeast(Pressure A, Pressure B) {
  return static_cast<int>(A) >= static_cast<int>(B);
}

/// Resource limits plus the degradation thresholds. Unlimited fields do
/// not contribute to the pressure fraction.
struct GovernorLimits {
  uint64_t MaxSteps = UINT64_MAX;
  double MaxSeconds = 1e18;
  uint64_t MaxMemoryBytes = UINT64_MAX;
  /// Utilization fractions at which Yellow / Red latch. Test hooks as
  /// much as tuning knobs: YellowAt = 0 forces degraded mode from the
  /// first poll.
  double YellowAt = 0.70;
  double RedAt = 0.90;
};

/// One governor per analysis run. Owns the run's Budget (shared by the
/// top-down solver and all bottom-up workers) and its CancelToken.
///
/// Thread-safety: charge()/release()/level()/cancelToken() may be called
/// from any thread; poll() must be called from a single thread (the
/// top-down solver's loop — it is the only writer of the throttle counter
/// and the cached fraction).
class ResourceGovernor {
public:
  explicit ResourceGovernor(const GovernorLimits &Limits)
      : Lim(Limits), Bud(Limits.MaxSteps, Limits.MaxSeconds) {}

  ResourceGovernor(const ResourceGovernor &) = delete;
  ResourceGovernor &operator=(const ResourceGovernor &) = delete;

  Budget &budget() { return Bud; }
  const Budget &budget() const { return Bud; }
  const CancelToken &cancelToken() const { return Cancel; }
  const GovernorLimits &limits() const { return Lim; }

  /// Adds \p Bytes to the memory estimate. Crossing the hard cap
  /// exhausts the shared Budget (every solver aborts at its next step),
  /// latches Red, and requests cancellation.
  void charge(uint64_t Bytes) {
    uint64_t Now = Mem.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
    uint64_t Pk = PeakMem.load(std::memory_order_relaxed);
    while (Now > Pk && !PeakMem.compare_exchange_weak(
                           Pk, Now, std::memory_order_relaxed)) {
    }
    if (Now > Lim.MaxMemoryBytes) {
      Bud.exhaust();
      latch(Pressure::Red);
    }
  }

  void release(uint64_t Bytes) {
    Mem.fetch_sub(Bytes, std::memory_order_relaxed);
  }

  uint64_t memoryBytes() const {
    return Mem.load(std::memory_order_relaxed);
  }
  uint64_t peakMemoryBytes() const {
    return PeakMem.load(std::memory_order_relaxed);
  }

  /// Recomputes the pressure fraction (throttled: the first call and then
  /// every 256th do real work; steps dominate between polls) and returns
  /// the latched level. Single-threaded caller only.
  Pressure poll() {
    if ((PollCount++ & 255) == 0)
      recompute();
    return level();
  }

  /// Unthrottled recompute. Single-threaded caller only.
  void recompute() {
    // Deterministic fault injection: a fired gov.tick failpoint is a
    // sudden resource exhaustion at this budget tick — the run must
    // degrade to a partial-but-sound result exactly as if a real limit
    // tripped.
    if (SWIFT_FAILPOINT("gov.tick")) {
      Bud.exhaust();
      latch(Pressure::Red);
      LastFraction = 1.0;
      samplePressure();
      return;
    }
    double F = 0.0;
    if (Lim.MaxSteps != UINT64_MAX && Lim.MaxSteps != 0)
      F = std::max(F, static_cast<double>(Bud.steps()) /
                          static_cast<double>(Lim.MaxSteps));
    if (Lim.MaxSeconds < 1e17 && Lim.MaxSeconds > 0)
      F = std::max(F, Bud.seconds() / Lim.MaxSeconds);
    if (Lim.MaxMemoryBytes != UINT64_MAX && Lim.MaxMemoryBytes != 0)
      F = std::max(F, static_cast<double>(memoryBytes()) /
                          static_cast<double>(Lim.MaxMemoryBytes));
    LastFraction = F;
    samplePressure();
    if (F >= Lim.RedAt)
      latch(Pressure::Red);
    else if (F >= Lim.YellowAt)
      latch(Pressure::Yellow);
  }

  /// Async-signal-safe interrupt: exhausts the shared Budget, ratchets
  /// the level to Red, and requests cancellation — every solver then
  /// winds down at its next step() / cancellation check exactly as if a
  /// hard limit tripped, yielding the partial-but-sound result path.
  /// Unlike latch() this emits no trace events (obs::instant allocates
  /// and locks), so a SIGINT/SIGTERM handler may call it directly.
  void interruptFromSignal() {
    Bud.exhaust();
    int Want = static_cast<int>(Pressure::Red);
    int Cur = Level.load(std::memory_order_relaxed);
    while (Cur < Want &&
           !Level.compare_exchange_weak(Cur, Want, std::memory_order_release,
                                        std::memory_order_relaxed)) {
    }
    Cancel.request();
  }

  /// The latched (maximum ever observed) pressure level.
  Pressure level() const {
    return static_cast<Pressure>(Level.load(std::memory_order_acquire));
  }

  /// Last computed utilization fraction (poll()ing thread's view).
  double fraction() const { return LastFraction; }

private:
  /// Emits one point on the governor pressure timeline (percent of the
  /// nearest limit) to the trace and the "gov.pressure_pct" gauge.
  void samplePressure() {
    uint64_t Pct = static_cast<uint64_t>(LastFraction * 100.0);
    if (obs::metricsEnabled())
      PressurePct->set(Pct);
    obs::counterEvent("gov.pressure", "pct", Pct);
  }

  /// Ratchets the level up to at least \p P; Red requests cancellation.
  /// Release ordering pairs with level()'s acquire so a worker seeing Red
  /// also sees every write the governor's thread made before latching.
  void latch(Pressure P) {
    int Want = static_cast<int>(P);
    int Cur = Level.load(std::memory_order_relaxed);
    bool Raised = false;
    while (Cur < Want) {
      if (Level.compare_exchange_weak(Cur, Want, std::memory_order_release,
                                      std::memory_order_relaxed)) {
        Raised = true;
        break;
      }
    }
    // The winning transition (not re-latches at the same level) is a
    // ladder instant in the trace.
    if (Raised)
      obs::instant("gov", "gov.latch",
                   {"level", static_cast<uint64_t>(Want)});
    if (P == Pressure::Red)
      Cancel.request();
  }

  GovernorLimits Lim;
  Budget Bud;
  CancelToken Cancel;
  std::atomic<uint64_t> Mem{0};
  std::atomic<uint64_t> PeakMem{0};
  std::atomic<int> Level{static_cast<int>(Pressure::Green)};
  uint64_t PollCount = 0;    ///< poll()ing thread only.
  double LastFraction = 0.0; ///< poll()ing thread only.
  /// Interned once; sampled lock-free by samplePressure().
  obs::Gauge *PressurePct =
      obs::MetricsRegistry::instance().gauge("gov.pressure_pct");
};

} // namespace swift

#endif // SWIFT_GOVERN_GOVERNOR_H
