//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint (de)serialization for budget-limited typestate runs: the
/// "swift-ckpt v1" text format. A checkpoint bundles everything a resume
/// needs to be self-contained: the analyzed program (embedded verbatim as
/// swift-ir v1 text, reusing the round-trip dumper), the run
/// configuration, and the tabulation snapshot (framework/TabSnapshot.h).
///
/// Name-based where ids could drift, id-based where the dumper guarantees
/// stability: procedures and typestates are referenced by name, abstract
/// states spell their access paths as dotted identifiers re-interned on
/// parse; allocation-site and CFG-node ids are numeric because
/// parseProgramText reproduces them exactly.
///
/// The resume guarantee (enforced by the checkpoint-resume oracle in
/// src/difftest): for a pure top-down run, save(exhausted run) -> load ->
/// resume with a sufficient budget yields results bit-identical to an
/// uninterrupted run. Hybrid runs drop bottom-up caches at checkpoint
/// (sound; see TabSnapshot.h) and coincide on error sites and main-exit
/// states.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_GOVERN_CHECKPOINT_H
#define SWIFT_GOVERN_CHECKPOINT_H

#include "typestate/Runner.h"

#include <memory>
#include <string>
#include <string_view>

namespace swift {

class Program;

/// One saved budget-exhausted run: configuration + snapshot. TrackedClass
/// names the typestate class the run analyzed (checkpoints are per
/// TsContext).
struct TsCheckpoint {
  SwiftRunConfig Config;
  std::string TrackedClass;
  uint64_t StepsConsumed = 0;
  TsTabSnapshot Snapshot;
};

/// Serializes \p C (a checkpoint of a run over \p Prog) as swift-ckpt v1
/// text. Deterministic: equal checkpoints print equal text.
std::string checkpointToText(const Program &Prog, const TsCheckpoint &C);

/// A parsed checkpoint owns its program (rebuilt from the embedded
/// swift-ir text; the snapshot's ids refer to it).
struct ParsedCheckpoint {
  std::unique_ptr<Program> Prog;
  TsCheckpoint Checkpoint;
};

/// Parses swift-ckpt v1 text. Throws std::runtime_error with a line
/// number on malformed input.
ParsedCheckpoint parseCheckpointText(std::string_view Text);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void saveCheckpointFile(const std::string &Path, const Program &Prog,
                        const TsCheckpoint &C);
ParsedCheckpoint loadCheckpointFile(const std::string &Path);

} // namespace swift

#endif // SWIFT_GOVERN_CHECKPOINT_H
