//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint (de)serialization for budget-limited typestate runs. A
/// checkpoint bundles everything a resume needs to be self-contained:
/// the analyzed program (embedded verbatim as swift-ir v1 text, reusing
/// the round-trip dumper), the run configuration, and the tabulation
/// snapshot (framework/TabSnapshot.h).
///
/// On disk a checkpoint is "swift-ckpt v2": a header line declaring the
/// payload byte count, the payload (the v1 text), and a CRC32 trailer —
/// so a loader can tell a truncated file from a bit-flipped one from a
/// version it does not speak, each reported as a typed
/// CheckpointLoadError instead of a bare runtime_error. Bare v1 files
/// (PR 3) still load. Saving goes through writeFileAtomic: temp file +
/// fsync + atomic rename, so a crash at any point leaves either the
/// complete old or the complete new checkpoint, never a torn mix — the
/// property tools/swift-crashtest proves under injected kills.
///
/// Name-based where ids could drift, id-based where the dumper guarantees
/// stability: procedures and typestates are referenced by name, abstract
/// states spell their access paths as dotted identifiers re-interned on
/// parse; allocation-site and CFG-node ids are numeric because
/// parseProgramText reproduces them exactly.
///
/// The resume guarantee (enforced by the checkpoint-resume oracle in
/// src/difftest): for a pure top-down run, save(exhausted run) -> load ->
/// resume with a sufficient budget yields results bit-identical to an
/// uninterrupted run. Hybrid runs drop bottom-up caches at checkpoint
/// (sound; see TabSnapshot.h) and coincide on error sites and main-exit
/// states.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_GOVERN_CHECKPOINT_H
#define SWIFT_GOVERN_CHECKPOINT_H

#include "typestate/Runner.h"

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

namespace swift {

class Program;

/// Why a checkpoint failed to load. Truncated and Corrupt are only
/// reliably distinguished for v2 files (v1 has no framing): a cut
/// anywhere in a v2 file reports Truncated, a flipped bit Corrupt.
enum class LoadErrorKind {
  IoError,         ///< open/read failed; message carries errno detail.
  Truncated,       ///< Shorter than its header/trailer framing declares.
  Corrupt,         ///< Framing present but CRC or payload invalid.
  VersionMismatch, ///< swift-ckpt magic with an unsupported version.
};

const char *loadErrorKindName(LoadErrorKind K);

/// Typed load failure: what() carries the human-readable detail, kind()
/// lets callers distinguish malformed input from environment trouble.
class CheckpointLoadError : public std::runtime_error {
public:
  CheckpointLoadError(LoadErrorKind Kind, const std::string &Msg)
      : std::runtime_error(Msg), K(Kind) {}
  LoadErrorKind kind() const { return K; }

private:
  LoadErrorKind K;
};

/// One saved budget-exhausted run: configuration + snapshot. TrackedClass
/// names the typestate class the run analyzed (checkpoints are per
/// TsContext).
struct TsCheckpoint {
  SwiftRunConfig Config;
  std::string TrackedClass;
  uint64_t StepsConsumed = 0;
  TsTabSnapshot Snapshot;
};

/// Serializes \p C (a checkpoint of a run over \p Prog) as swift-ckpt v1
/// text. Deterministic: equal checkpoints print equal text.
std::string checkpointToText(const Program &Prog, const TsCheckpoint &C);

/// A parsed checkpoint owns its program (rebuilt from the embedded
/// swift-ir text; the snapshot's ids refer to it).
struct ParsedCheckpoint {
  std::unique_ptr<Program> Prog;
  TsCheckpoint Checkpoint;
};

/// Parses bare swift-ckpt v1 text (the v2 payload). Throws
/// std::runtime_error with a line number on malformed input. Section
/// counts are sanity-checked against the remaining input size, so a
/// mutated count fails fast instead of reserving absurd memory.
ParsedCheckpoint parseCheckpointText(std::string_view Text);

/// Frames v1 payload text as a swift-ckpt v2 file image: header line
/// with the payload byte count, payload, CRC32 trailer.
std::string frameCheckpointV2(std::string_view Payload);

/// Parses a checkpoint *file image*: v2 framed (magic/version/length/CRC
/// validated) or bare legacy v1. Throws CheckpointLoadError.
ParsedCheckpoint parseCheckpointFile(std::string_view Text);

/// Writes \p C as a v2 file, crash-safely: temp file + fsync + atomic
/// rename with bounded retry (failpoints ckpt.save.*). Throws
/// std::runtime_error with errno detail on persistent failure; an
/// existing checkpoint at \p Path survives any failed or killed save.
void saveCheckpointFile(const std::string &Path, const Program &Prog,
                        const TsCheckpoint &C);

/// Reads and validates a checkpoint file (v2 or legacy v1; failpoints
/// ckpt.load.*). Throws CheckpointLoadError.
ParsedCheckpoint loadCheckpointFile(const std::string &Path);

} // namespace swift

#endif // SWIFT_GOVERN_CHECKPOINT_H
