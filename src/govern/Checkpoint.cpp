//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "govern/Checkpoint.h"

#include "framework/Tabulation.h"
#include "ir/Dumper.h"
#include "ir/Program.h"
#include "support/AtomicFile.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

using namespace swift;

namespace {

[[noreturn]] void fail(size_t Line, const std::string &Msg) {
  throw std::runtime_error("swift-ckpt line " + std::to_string(Line) + ": " +
                           Msg);
}

std::string pathStr(const AccessPath &P, const SymbolTable &Syms) {
  return P.str(Syms);
}

void printState(std::ostream &OS, const TsAbstractState &S,
                const Program &Prog, const TypestateSpec &Spec) {
  if (S.isLambda()) {
    OS << "s L\n";
    return;
  }
  const SymbolTable &Syms = Prog.symbols();
  OS << "s " << S.site() << ' ' << Syms.text(Spec.stateName(S.tstate()))
     << ' ' << S.must().size();
  for (const AccessPath &P : S.must())
    OS << ' ' << pathStr(P, Syms);
  OS << ' ' << S.mustNot().size();
  for (const AccessPath &P : S.mustNot())
    OS << ' ' << pathStr(P, Syms);
  OS << '\n';
}

/// Splits one line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Toks;
  std::istringstream IS(Line);
  std::string T;
  while (IS >> T)
    Toks.push_back(T);
  return Toks;
}

uint64_t parseU64(const std::string &T, size_t Line) {
  try {
    size_t Pos = 0;
    uint64_t V = std::stoull(T, &Pos);
    if (Pos != T.size())
      fail(Line, "trailing characters in number '" + T + "'");
    return V;
  } catch (const std::logic_error &) {
    fail(Line, "expected a number, got '" + T + "'");
  }
}

AccessPath parsePath(const std::string &T, Program &Prog, size_t Line) {
  // v, v.f, or v.f.g — dotted identifiers.
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Dot = T.find('.', Start);
    Parts.push_back(T.substr(Start, Dot - Start));
    if (Dot == std::string::npos)
      break;
    Start = Dot + 1;
  }
  if (Parts.empty() || Parts.size() > 3 || Parts[0].empty())
    fail(Line, "malformed access path '" + T + "'");
  SymbolTable &Syms = Prog.symbols();
  Symbol Base = Syms.intern(Parts[0]);
  if (Parts.size() == 1)
    return AccessPath(Base);
  if (Parts.size() == 2)
    return AccessPath(Base, Syms.intern(Parts[1]));
  return AccessPath(Base, Syms.intern(Parts[1]), Syms.intern(Parts[2]));
}

/// Line-oriented reader over the checkpoint text.
struct Reader {
  std::string_view Text;
  size_t Pos = 0;
  size_t Line = 0;

  /// Next line, '#' comments and blank lines skipped.
  bool next(std::string &Out) {
    while (Pos < Text.size()) {
      size_t End = Text.find('\n', Pos);
      if (End == std::string_view::npos)
        End = Text.size();
      Out.assign(Text.substr(Pos, End - Pos));
      Pos = End + 1;
      ++Line;
      if (!Out.empty() && Out.back() == '\r')
        Out.pop_back();
      size_t First = Out.find_first_not_of(" \t");
      if (First == std::string::npos || Out[First] == '#')
        continue;
      return true;
    }
    return false;
  }

  /// Next raw line (no skipping) — used inside the verbatim program block.
  bool nextRaw(std::string &Out) {
    if (Pos >= Text.size())
      return false;
    size_t End = Text.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Text.size();
    Out.assign(Text.substr(Pos, End - Pos));
    Pos = End + 1;
    ++Line;
    if (!Out.empty() && Out.back() == '\r')
      Out.pop_back();
    return true;
  }
};

ProcId procByName(Program &Prog, const std::string &Name, size_t Line) {
  ProcId P = Prog.procId(Prog.symbols().intern(Name));
  if (P == InvalidProc)
    fail(Line, "unknown procedure '" + Name + "'");
  return P;
}

TState stateByName(const TypestateSpec &Spec, const SymbolTable &Syms,
                   const std::string &Name, size_t Line) {
  for (size_t T = 0; T != Spec.numStates(); ++T)
    if (Syms.text(Spec.stateName(static_cast<TState>(T))) == Name)
      return static_cast<TState>(T);
  fail(Line, "unknown typestate '" + Name + "'");
}

/// Spec lookup by class name that works on a const Program (no interning).
const TypestateSpec *specByName(const Program &Prog,
                                const std::string &Class) {
  for (size_t I = 0; I != Prog.numSpecs(); ++I)
    if (Prog.symbols().text(Prog.spec(I).name()) == Class)
      return &Prog.spec(I);
  return nullptr;
}

} // namespace

std::string swift::checkpointToText(const Program &Prog,
                                    const TsCheckpoint &C) {
  const TypestateSpec *Spec = specByName(Prog, C.TrackedClass);
  if (!Spec)
    throw std::runtime_error("checkpointToText: no spec for class '" +
                             C.TrackedClass + "'");
  const SymbolTable &Syms = Prog.symbols();
  const TsTabSnapshot &S = C.Snapshot;
  std::ostringstream OS;
  OS << "swift-ckpt v1\n";
  OS << "tracked " << C.TrackedClass << '\n';
  OS << "config k ";
  if (C.Config.K == NoBuTrigger)
    OS << "td";
  else
    OS << C.Config.K;
  OS << " theta " << C.Config.Theta << " manifest "
     << (C.Config.ObservationManifest ? 1 : 0) << " async "
     << (C.Config.AsyncBu ? 1 : 0) << " threads " << C.Config.Threads
     << '\n';
  OS << "steps " << C.StepsConsumed << '\n';
  OS << "program begin\n";
  OS << programToText(Prog);
  OS << "program end\n";

  OS << "states " << S.States.size() << '\n';
  for (const TsAbstractState &St : S.States)
    printState(OS, St, Prog, *Spec);

  OS << "edges " << S.Edges.size() << '\n';
  for (const auto &E : S.Edges)
    OS << "e " << Syms.text(Prog.proc(E.Proc).name()) << ' ' << E.Node
       << ' ' << E.Entry << ' ' << E.Cur << '\n';

  OS << "work " << S.Work.size() << '\n';
  for (const auto &W : S.Work)
    OS << "w " << Syms.text(Prog.proc(W.Proc).name()) << ' ' << W.Node
       << ' ' << W.Entry << ' ' << W.Cur << '\n';

  OS << "summaries " << S.Summaries.size() << '\n';
  for (const auto &Row : S.Summaries) {
    OS << "y " << Syms.text(Prog.proc(Row.Proc).name()) << ' ' << Row.Entry
       << ' ' << Row.Exits.size();
    for (uint32_t X : Row.Exits)
      OS << ' ' << X;
    OS << '\n';
  }

  OS << "deps " << S.Dependents.size() << '\n';
  for (const auto &D : S.Dependents)
    OS << "d " << Syms.text(Prog.proc(D.Callee).name()) << ' ' << D.Entry
       << ' ' << Syms.text(Prog.proc(D.CallerProc).name()) << ' '
       << D.CallNode << ' ' << D.CallerEntry << ' ' << D.Frame << '\n';

  OS << "incoming " << S.Incoming.size() << '\n';
  for (const auto &I : S.Incoming)
    OS << "i " << Syms.text(Prog.proc(I.Proc).name()) << ' ' << I.Entry
       << ' ' << I.Count << '\n';

  OS << "evercalled " << S.EverCalled.size() << '\n';
  for (size_t P = 0; P != S.EverCalled.size(); ++P)
    OS << "c " << Syms.text(Prog.proc(static_cast<ProcId>(P)).name()) << ' '
       << (S.EverCalled[P] ? 1 : 0) << '\n';

  OS << "observed " << S.Observed.size() << '\n';
  for (const auto &O : S.Observed)
    OS << "o " << Syms.text(Prog.proc(O.Proc).name()) << ' ' << O.Node
       << ' ' << O.StateId << '\n';

  return OS.str();
}

ParsedCheckpoint swift::parseCheckpointText(std::string_view Text) {
  Reader R{Text};
  std::string L;

  if (!R.next(L) || L != "swift-ckpt v1")
    fail(R.Line, "expected 'swift-ckpt v1' header");

  ParsedCheckpoint PC;
  TsCheckpoint &C = PC.Checkpoint;

  if (!R.next(L))
    fail(R.Line, "unexpected end of file");
  {
    std::vector<std::string> T = tokenize(L);
    if (T.size() != 2 || T[0] != "tracked")
      fail(R.Line, "expected 'tracked <class>'");
    C.TrackedClass = T[1];
  }

  if (!R.next(L))
    fail(R.Line, "unexpected end of file");
  {
    std::vector<std::string> T = tokenize(L);
    if (T.size() != 11 || T[0] != "config" || T[1] != "k" ||
        T[3] != "theta" || T[5] != "manifest" || T[7] != "async" ||
        T[9] != "threads")
      fail(R.Line, "malformed config line");
    C.Config.K = T[2] == "td" ? NoBuTrigger : parseU64(T[2], R.Line);
    C.Config.Theta = parseU64(T[4], R.Line);
    C.Config.ObservationManifest = parseU64(T[6], R.Line) != 0;
    C.Config.AsyncBu = parseU64(T[8], R.Line) != 0;
    C.Config.Threads =
        static_cast<unsigned>(parseU64(T[10], R.Line));
  }

  if (!R.next(L))
    fail(R.Line, "unexpected end of file");
  {
    std::vector<std::string> T = tokenize(L);
    if (T.size() != 2 || T[0] != "steps")
      fail(R.Line, "expected 'steps <n>'");
    C.StepsConsumed = parseU64(T[1], R.Line);
  }

  if (!R.next(L) || L != "program begin")
    fail(R.Line, "expected 'program begin'");
  std::string ProgText;
  for (;;) {
    if (!R.nextRaw(L))
      fail(R.Line, "unterminated program block");
    if (L == "program end")
      break;
    ProgText += L;
    ProgText += '\n';
  }
  PC.Prog = parseProgramText(ProgText);
  Program &Prog = *PC.Prog;
  const TypestateSpec *Spec =
      Prog.specFor(Prog.symbols().intern(C.TrackedClass));
  if (!Spec)
    fail(R.Line, "program has no spec for tracked class '" +
                     C.TrackedClass + "'");

  auto expectSection = [&](const char *Name) -> uint64_t {
    if (!R.next(L))
      fail(R.Line, std::string("expected '") + Name + " <n>'");
    std::vector<std::string> T = tokenize(L);
    if (T.size() != 2 || T[0] != Name)
      fail(R.Line, std::string("expected '") + Name + " <n>', got '" + L +
                       "'");
    uint64_t N = parseU64(T[1], R.Line);
    // Sanity limit before any reserve: every row costs at least two
    // bytes of input, so a count beyond half the remaining text is a
    // mutation — fail fast instead of allocating for it.
    size_t Remaining = Text.size() - std::min(R.Pos, Text.size());
    if (N > Remaining / 2 + 1)
      fail(R.Line, std::string(Name) + " count " + T[1] +
                       " exceeds the remaining input size");
    return N;
  };
  auto row = [&](const char *Tag, size_t MinToks) -> std::vector<std::string> {
    if (!R.next(L))
      fail(R.Line, std::string("unexpected end of '") + Tag + "' row");
    std::vector<std::string> T = tokenize(L);
    if (T.size() < MinToks || T[0] != Tag)
      fail(R.Line, std::string("malformed '") + Tag + "' row: '" + L + "'");
    return T;
  };

  TsTabSnapshot &S = C.Snapshot;
  S.StepsConsumed = C.StepsConsumed;

  uint64_t N = expectSection("states");
  S.States.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::vector<std::string> T = row("s", 2);
    if (T[1] == "L") {
      if (T.size() != 2)
        fail(R.Line, "trailing tokens on Lambda state");
      S.States.push_back(TsAbstractState::lambda());
      continue;
    }
    if (T.size() < 4)
      fail(R.Line, "truncated state row");
    uint64_t Site = parseU64(T[1], R.Line);
    if (Site >= Prog.numSites())
      fail(R.Line, "allocation site out of range");
    TState TS = stateByName(*Spec, Prog.symbols(), T[2], R.Line);
    size_t Idx = 3;
    auto readPaths = [&]() -> ApSet {
      if (Idx >= T.size())
        fail(R.Line, "truncated state row");
      uint64_t Count = parseU64(T[Idx++], R.Line);
      std::vector<AccessPath> Paths;
      for (uint64_t K = 0; K != Count; ++K) {
        if (Idx >= T.size())
          fail(R.Line, "truncated access-path list");
        Paths.push_back(parsePath(T[Idx++], Prog, R.Line));
      }
      return ApSet(std::move(Paths));
    };
    ApSet Must = readPaths();
    ApSet MustNot = readPaths();
    if (Idx != T.size())
      fail(R.Line, "trailing tokens on state row");
    S.States.push_back(TsAbstractState(static_cast<SiteId>(Site), TS,
                                       std::move(Must),
                                       std::move(MustNot)));
  }
  auto checkStateId = [&](uint64_t Id) -> uint32_t {
    if (Id >= S.States.size())
      fail(R.Line, "state id out of range");
    return static_cast<uint32_t>(Id);
  };
  auto checkNode = [&](ProcId P, uint64_t Node) -> NodeId {
    if (Node >= Prog.proc(P).numNodes())
      fail(R.Line, "node id out of range");
    return static_cast<NodeId>(Node);
  };

  N = expectSection("edges");
  S.Edges.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::vector<std::string> T = row("e", 5);
    ProcId P = procByName(Prog, T[1], R.Line);
    S.Edges.push_back({P, checkNode(P, parseU64(T[2], R.Line)),
                       checkStateId(parseU64(T[3], R.Line)),
                       checkStateId(parseU64(T[4], R.Line))});
  }

  N = expectSection("work");
  S.Work.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::vector<std::string> T = row("w", 5);
    ProcId P = procByName(Prog, T[1], R.Line);
    S.Work.push_back({P, checkNode(P, parseU64(T[2], R.Line)),
                      checkStateId(parseU64(T[3], R.Line)),
                      checkStateId(parseU64(T[4], R.Line))});
  }

  N = expectSection("summaries");
  S.Summaries.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::vector<std::string> T = row("y", 4);
    TsTabSnapshot::SummaryRow Row;
    Row.Proc = procByName(Prog, T[1], R.Line);
    Row.Entry = checkStateId(parseU64(T[2], R.Line));
    uint64_t NumExits = parseU64(T[3], R.Line);
    // Bound before the arithmetic below: a near-2^64 count would wrap
    // 4 + NumExits and walk T out of bounds.
    if (NumExits > T.size() || T.size() != 4 + NumExits)
      fail(R.Line, "summary exit count mismatch");
    for (uint64_t K = 0; K != NumExits; ++K)
      Row.Exits.push_back(checkStateId(parseU64(T[4 + K], R.Line)));
    S.Summaries.push_back(std::move(Row));
  }

  N = expectSection("deps");
  S.Dependents.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::vector<std::string> T = row("d", 7);
    TsTabSnapshot::DependentRow D;
    D.Callee = procByName(Prog, T[1], R.Line);
    D.Entry = checkStateId(parseU64(T[2], R.Line));
    D.CallerProc = procByName(Prog, T[3], R.Line);
    D.CallNode = checkNode(D.CallerProc, parseU64(T[4], R.Line));
    D.CallerEntry = checkStateId(parseU64(T[5], R.Line));
    D.Frame = checkStateId(parseU64(T[6], R.Line));
    S.Dependents.push_back(D);
  }

  N = expectSection("incoming");
  S.Incoming.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::vector<std::string> T = row("i", 4);
    ProcId P = procByName(Prog, T[1], R.Line);
    S.Incoming.push_back(
        {P, checkStateId(parseU64(T[2], R.Line)), parseU64(T[3], R.Line)});
  }

  N = expectSection("evercalled");
  S.EverCalled.assign(Prog.numProcs(), 0);
  if (N != Prog.numProcs())
    fail(R.Line, "evercalled count does not match procedure count");
  for (uint64_t I = 0; I != N; ++I) {
    std::vector<std::string> T = row("c", 3);
    ProcId P = procByName(Prog, T[1], R.Line);
    S.EverCalled[P] = parseU64(T[2], R.Line) != 0 ? 1 : 0;
  }

  N = expectSection("observed");
  S.Observed.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::vector<std::string> T = row("o", 4);
    ProcId P = procByName(Prog, T[1], R.Line);
    S.Observed.push_back({P, checkNode(P, parseU64(T[2], R.Line)),
                          checkStateId(parseU64(T[3], R.Line))});
  }

  if (R.next(L))
    fail(R.Line, "trailing content after checkpoint: '" + L + "'");
  return PC;
}

//===----------------------------------------------------------------------===//
// v2 file framing: length header + CRC32 trailer around the v1 payload
//===----------------------------------------------------------------------===//

const char *swift::loadErrorKindName(LoadErrorKind K) {
  switch (K) {
  case LoadErrorKind::IoError:
    return "io-error";
  case LoadErrorKind::Truncated:
    return "truncated";
  case LoadErrorKind::Corrupt:
    return "corrupt";
  case LoadErrorKind::VersionMismatch:
    return "version-mismatch";
  }
  return "?";
}

namespace {

constexpr std::string_view MagicV1 = "swift-ckpt v1";
constexpr std::string_view HeaderV2 = "swift-ckpt v2 ";
constexpr std::string_view TrailerTag = "crc32 ";
/// Trailer: "crc32 " + 8 hex digits + '\n'.
constexpr size_t TrailerSize = TrailerTag.size() + 8 + 1;

[[noreturn]] void loadFail(LoadErrorKind K, const std::string &Msg) {
  throw CheckpointLoadError(K, "swift-ckpt: " + Msg + " [" +
                                   loadErrorKindName(K) + "]");
}

std::string hex8(uint32_t V) {
  char Buf[9];
  std::snprintf(Buf, sizeof(Buf), "%08x", V);
  return Buf;
}

bool parseHex8(std::string_view T, uint32_t &Out) {
  if (T.size() != 8)
    return false;
  uint32_t V = 0;
  for (char C : T) {
    uint32_t D;
    if (C >= '0' && C <= '9')
      D = static_cast<uint32_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = static_cast<uint32_t>(C - 'a') + 10;
    else
      return false;
    V = (V << 4) | D;
  }
  Out = V;
  return true;
}

} // namespace

std::string swift::frameCheckpointV2(std::string_view Payload) {
  std::string Out;
  Out.reserve(Payload.size() + 48);
  Out.append(HeaderV2);
  Out += std::to_string(Payload.size());
  Out += '\n';
  Out.append(Payload);
  Out.append(TrailerTag);
  Out += hex8(crc32(Payload.data(), Payload.size()));
  Out += '\n';
  return Out;
}

ParsedCheckpoint swift::parseCheckpointFile(std::string_view Text) {
  if (Text.empty())
    loadFail(LoadErrorKind::Truncated, "empty checkpoint file");

  // Legacy bare v1: the whole file is the payload, no framing to check.
  if (Text.substr(0, MagicV1.size()) == MagicV1) {
    try {
      return parseCheckpointText(Text);
    } catch (const std::exception &E) {
      loadFail(LoadErrorKind::Corrupt,
               std::string("invalid v1 checkpoint: ") + E.what());
    }
  }

  if (Text.substr(0, HeaderV2.size()) == HeaderV2) {
    size_t Eol = Text.find('\n');
    if (Eol == std::string_view::npos)
      loadFail(LoadErrorKind::Truncated, "v2 header line is cut short");
    std::string_view LenText = Text.substr(HeaderV2.size(),
                                           Eol - HeaderV2.size());
    uint64_t Len = 0;
    if (LenText.empty())
      loadFail(LoadErrorKind::Corrupt, "v2 header has no payload length");
    for (char C : LenText) {
      if (C < '0' || C > '9')
        loadFail(LoadErrorKind::Corrupt,
                 "malformed v2 payload length '" + std::string(LenText) +
                     "'");
      if (Len > UINT64_MAX / 10)
        loadFail(LoadErrorKind::Corrupt, "v2 payload length out of range");
      Len = Len * 10 + static_cast<uint64_t>(C - '0');
    }
    size_t Body = Eol + 1;
    if (Len > Text.size() - Body)
      loadFail(LoadErrorKind::Truncated,
               "payload truncated: header declares " + std::to_string(Len) +
                   " bytes, " + std::to_string(Text.size() - Body) +
                   " present");
    std::string_view Payload = Text.substr(Body, Len);
    std::string_view Rest = Text.substr(Body + Len);
    if (Rest.size() < TrailerSize)
      loadFail(LoadErrorKind::Truncated, "CRC trailer is missing or cut");
    if (Rest.size() > TrailerSize)
      loadFail(LoadErrorKind::Corrupt, "trailing data after CRC trailer");
    if (Rest.substr(0, TrailerTag.size()) != TrailerTag ||
        Rest.back() != '\n')
      loadFail(LoadErrorKind::Corrupt, "malformed CRC trailer");
    uint32_t Stored = 0;
    if (!parseHex8(Rest.substr(TrailerTag.size(), 8), Stored))
      loadFail(LoadErrorKind::Corrupt, "malformed CRC value");
    uint32_t Computed = crc32(Payload.data(), Payload.size());
    if (Computed != Stored)
      loadFail(LoadErrorKind::Corrupt, "CRC mismatch: stored " +
                                           hex8(Stored) + ", computed " +
                                           hex8(Computed));
    try {
      return parseCheckpointText(Payload);
    } catch (const std::exception &E) {
      // The frame validated but the payload does not parse: a producer
      // bug or a collision-rate event, not a torn file.
      loadFail(LoadErrorKind::Corrupt,
               std::string("invalid v2 payload: ") + E.what());
    }
  }

  if (Text.substr(0, 10) == "swift-ckpt") {
    size_t Eol = std::min(Text.find('\n'), Text.size());
    loadFail(LoadErrorKind::VersionMismatch,
             "unsupported checkpoint version '" +
                 std::string(Text.substr(0, std::min<size_t>(Eol, 32))) +
                 "' (this build reads v1 and v2)");
  }
  loadFail(LoadErrorKind::Corrupt, "not a swift-ckpt file");
}

void swift::saveCheckpointFile(const std::string &Path, const Program &Prog,
                               const TsCheckpoint &C) {
  writeFileAtomic(Path, frameCheckpointV2(checkpointToText(Prog, C)),
                  "ckpt.save");
}

ParsedCheckpoint swift::loadCheckpointFile(const std::string &Path) {
  std::string Bytes;
  try {
    Bytes = readWholeFile(Path, "ckpt.load");
  } catch (const std::exception &E) {
    throw CheckpointLoadError(LoadErrorKind::IoError,
                              std::string("swift-ckpt: ") + E.what() +
                                  " [io-error]");
  }
  return parseCheckpointFile(Bytes);
}
