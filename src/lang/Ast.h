//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree for TSL. The parser builds a Module; lowering
/// walks it into a ProgramBuilder. Statements are stored by value with
/// nested vectors for block structure, which keeps the tree cheap to build
/// and trivially copyable for tests.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_LANG_AST_H
#define SWIFT_LANG_AST_H

#include <cstdint>
#include <string>
#include <vector>

namespace swift {
namespace ast {

struct Stmt {
  enum class Kind : uint8_t {
    Alloc,      ///< A = new B;
    Copy,       ///< A = B;
    AssignNull, ///< A = null;
    Load,       ///< A = B.C;
    Store,      ///< A.C = B;
    TsCall,     ///< A.C();
    Call,       ///< [A =] B(Args...);
    If,         ///< if (*) { Then } [else { Else }]
    While,      ///< while (*) { Then }
    Return,     ///< return [A];
  };

  Kind K = Kind::Copy;
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::string A; ///< See per-kind comments above.
  std::string B;
  std::string C;
  std::vector<std::string> Args; ///< Call actuals.
  std::vector<Stmt> Then;        ///< If then-block / While body.
  std::vector<Stmt> Else;        ///< If else-block.
  bool HasValue = false;         ///< Return: 'return A;' vs 'return;'.
};

struct TransitionDecl {
  std::string From;
  std::string Method;
  std::string To;
};

struct TypestateDecl {
  std::string Name;
  std::vector<std::string> States; ///< Declaration order.
  std::string Start;
  std::string Error;
  std::vector<TransitionDecl> Transitions;
  uint32_t Line = 0;
  uint32_t Col = 0;
};

struct ProcDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<Stmt> Body;
  uint32_t Line = 0;
  uint32_t Col = 0;
};

struct Module {
  std::vector<TypestateDecl> Typestates;
  std::vector<ProcDecl> Procs;
};

} // namespace ast
} // namespace swift

#endif // SWIFT_LANG_AST_H
