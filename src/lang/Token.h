//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of TSL, the small typestate-program language this reproduction
/// uses in place of Java source (see DESIGN.md). Example:
///
/// \code
///   typestate File {
///     start closed; error err;
///     closed -open-> opened;
///     opened -close-> closed;
///   }
///   proc main() {
///     v1 = new File;
///     foo(v1);
///   }
///   proc foo(f) { f.open(); f.close(); }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_LANG_TOKEN_H
#define SWIFT_LANG_TOKEN_H

#include <cstdint>
#include <string>
#include <string_view>

namespace swift {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  // Keywords.
  KwTypestate,
  KwState,
  KwStart,
  KwError,
  KwProc,
  KwNew,
  KwNull,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  Semi,
  Comma,
  Dot,
  Equal,
  Star,
  Dash,   ///< '-' introducing a transition label.
  Arrow,  ///< '->' ending a transition label.
};

/// Returns a human-readable spelling for diagnostics.
std::string_view tokKindName(TokKind K);

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;  ///< Identifier spelling (Ident only).
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace swift

#endif // SWIFT_LANG_TOKEN_H
