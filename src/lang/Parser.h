//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for TSL. See Token.h for the grammar sketch.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_LANG_PARSER_H
#define SWIFT_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"

#include <string_view>

namespace swift {

class Parser {
public:
  /// Parses a whole TSL module. Throws SyntaxError on malformed input.
  static ast::Module parse(std::string_view Source);

private:
  explicit Parser(std::vector<Token> Toks) : Toks(std::move(Toks)) {}

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  Token eat(TokKind Expected);
  bool tryEat(TokKind K);
  [[noreturn]] void fail(const std::string &Message) const;

  ast::Module parseModule();
  ast::TypestateDecl parseTypestate();
  ast::ProcDecl parseProc();
  std::vector<ast::Stmt> parseBlock();
  ast::Stmt parseStmt();
  std::vector<std::string> parseArgList();

  std::vector<Token> Toks;
  size_t Pos = 0;
};

} // namespace swift

#endif // SWIFT_LANG_PARSER_H
