//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace swift;

SyntaxError::SyntaxError(std::string Message, uint32_t Line, uint32_t Col)
    : Line(Line), Col(Col) {
  Formatted = std::to_string(Line) + ":" + std::to_string(Col) + ": " +
              std::move(Message);
}

std::string_view swift::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::KwTypestate:
    return "'typestate'";
  case TokKind::KwState:
    return "'state'";
  case TokKind::KwStart:
    return "'start'";
  case TokKind::KwError:
    return "'error'";
  case TokKind::KwProc:
    return "'proc'";
  case TokKind::KwNew:
    return "'new'";
  case TokKind::KwNull:
    return "'null'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Equal:
    return "'='";
  case TokKind::Star:
    return "'*'";
  case TokKind::Dash:
    return "'-'";
  case TokKind::Arrow:
    return "'->'";
  }
  return "<token>";
}

void Lexer::advance() {
  if (Pos >= Source.size())
    return;
  if (Source[Pos] == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  ++Pos;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Out;
  for (;;) {
    Out.push_back(next());
    if (Out.back().Kind == TokKind::Eof)
      return Out;
  }
}

Token Lexer::next() {
  static const std::unordered_map<std::string_view, TokKind> Keywords = {
      {"typestate", TokKind::KwTypestate}, {"state", TokKind::KwState},
      {"start", TokKind::KwStart},         {"error", TokKind::KwError},
      {"proc", TokKind::KwProc},           {"new", TokKind::KwNew},
      {"null", TokKind::KwNull},           {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},           {"while", TokKind::KwWhile},
      {"return", TokKind::KwReturn},
  };

  // Skip whitespace and '//' comments.
  for (;;) {
    while (std::isspace(static_cast<unsigned char>(peek())))
      advance();
    if (peek() == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    break;
  }

  Token T;
  T.Line = Line;
  T.Col = Col;

  char C = peek();
  if (C == '\0') {
    T.Kind = TokKind::Eof;
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$') {
    std::string Text;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '_' || peek() == '$') {
      Text += peek();
      advance();
    }
    auto It = Keywords.find(Text);
    if (It != Keywords.end()) {
      T.Kind = It->second;
    } else {
      T.Kind = TokKind::Ident;
      T.Text = std::move(Text);
    }
    return T;
  }

  advance();
  switch (C) {
  case '{':
    T.Kind = TokKind::LBrace;
    return T;
  case '}':
    T.Kind = TokKind::RBrace;
    return T;
  case '(':
    T.Kind = TokKind::LParen;
    return T;
  case ')':
    T.Kind = TokKind::RParen;
    return T;
  case ';':
    T.Kind = TokKind::Semi;
    return T;
  case ',':
    T.Kind = TokKind::Comma;
    return T;
  case '.':
    T.Kind = TokKind::Dot;
    return T;
  case '=':
    T.Kind = TokKind::Equal;
    return T;
  case '*':
    T.Kind = TokKind::Star;
    return T;
  case '-':
    if (peek() == '>') {
      advance();
      T.Kind = TokKind::Arrow;
    } else {
      T.Kind = TokKind::Dash;
    }
    return T;
  default:
    throw SyntaxError(std::string("unexpected character '") + C + "'",
                      T.Line, T.Col);
  }
}
