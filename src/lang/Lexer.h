//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for TSL. Supports '//' line comments and tracks
/// line/column positions for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_LANG_LEXER_H
#define SWIFT_LANG_LEXER_H

#include "lang/Token.h"

#include <string>
#include <string_view>
#include <vector>

namespace swift {

/// A parse or lexical error with source position.
class SyntaxError : public std::exception {
public:
  SyntaxError(std::string Message, uint32_t Line, uint32_t Col);

  const char *what() const noexcept override { return Formatted.c_str(); }
  uint32_t line() const { return Line; }
  uint32_t col() const { return Col; }

private:
  std::string Formatted;
  uint32_t Line;
  uint32_t Col;
};

class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Lexes the whole input; the last token is always Eof.
  /// Throws SyntaxError on an unexpected character.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  void advance();

  std::string_view Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace swift

#endif // SWIFT_LANG_LEXER_H
