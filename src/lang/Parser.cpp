//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

using namespace swift;
using ast::Stmt;

Token Parser::eat(TokKind Expected) {
  if (peek().Kind != Expected)
    fail("expected " + std::string(tokKindName(Expected)) + ", found " +
         std::string(tokKindName(peek().Kind)));
  return Toks[Pos++];
}

bool Parser::tryEat(TokKind K) {
  if (peek().Kind != K)
    return false;
  ++Pos;
  return true;
}

void Parser::fail(const std::string &Message) const {
  throw SyntaxError(Message, peek().Line, peek().Col);
}

ast::Module Parser::parse(std::string_view Source) {
  Lexer L(Source);
  Parser P(L.lexAll());
  return P.parseModule();
}

ast::Module Parser::parseModule() {
  ast::Module M;
  for (;;) {
    switch (peek().Kind) {
    case TokKind::Eof:
      return M;
    case TokKind::KwTypestate:
      M.Typestates.push_back(parseTypestate());
      break;
    case TokKind::KwProc:
      M.Procs.push_back(parseProc());
      break;
    default:
      fail("expected 'typestate' or 'proc' at top level");
    }
  }
}

ast::TypestateDecl Parser::parseTypestate() {
  ast::TypestateDecl D;
  Token Kw = eat(TokKind::KwTypestate);
  D.Line = Kw.Line;
  D.Col = Kw.Col;
  D.Name = eat(TokKind::Ident).Text;
  eat(TokKind::LBrace);

  auto AddState = [&D](const std::string &Name) {
    for (const std::string &S : D.States)
      if (S == Name)
        return;
    D.States.push_back(Name);
  };

  while (!tryEat(TokKind::RBrace)) {
    switch (peek().Kind) {
    case TokKind::KwStart: {
      eat(TokKind::KwStart);
      std::string Name = eat(TokKind::Ident).Text;
      if (!D.Start.empty())
        fail("duplicate 'start' state in typestate " + D.Name);
      D.Start = Name;
      AddState(Name);
      eat(TokKind::Semi);
      break;
    }
    case TokKind::KwError: {
      eat(TokKind::KwError);
      std::string Name = eat(TokKind::Ident).Text;
      if (!D.Error.empty())
        fail("duplicate 'error' state in typestate " + D.Name);
      D.Error = Name;
      AddState(Name);
      eat(TokKind::Semi);
      break;
    }
    case TokKind::KwState: {
      eat(TokKind::KwState);
      AddState(eat(TokKind::Ident).Text);
      eat(TokKind::Semi);
      break;
    }
    case TokKind::Ident: {
      // from -method-> to ;
      ast::TransitionDecl T;
      T.From = eat(TokKind::Ident).Text;
      eat(TokKind::Dash);
      T.Method = eat(TokKind::Ident).Text;
      eat(TokKind::Arrow);
      T.To = eat(TokKind::Ident).Text;
      eat(TokKind::Semi);
      AddState(T.From);
      AddState(T.To);
      D.Transitions.push_back(std::move(T));
      break;
    }
    default:
      fail("expected state declaration or transition in typestate body");
    }
  }

  if (D.Start.empty())
    fail("typestate " + D.Name + " has no 'start' state");
  if (D.Error.empty())
    fail("typestate " + D.Name + " has no 'error' state");
  return D;
}

ast::ProcDecl Parser::parseProc() {
  ast::ProcDecl D;
  Token Kw = eat(TokKind::KwProc);
  D.Line = Kw.Line;
  D.Col = Kw.Col;
  D.Name = eat(TokKind::Ident).Text;
  eat(TokKind::LParen);
  if (peek().Kind != TokKind::RParen) {
    D.Params.push_back(eat(TokKind::Ident).Text);
    while (tryEat(TokKind::Comma))
      D.Params.push_back(eat(TokKind::Ident).Text);
  }
  eat(TokKind::RParen);
  D.Body = parseBlock();
  return D;
}

std::vector<Stmt> Parser::parseBlock() {
  eat(TokKind::LBrace);
  std::vector<Stmt> Stmts;
  while (!tryEat(TokKind::RBrace))
    Stmts.push_back(parseStmt());
  return Stmts;
}

std::vector<std::string> Parser::parseArgList() {
  eat(TokKind::LParen);
  std::vector<std::string> Args;
  if (peek().Kind != TokKind::RParen) {
    Args.push_back(eat(TokKind::Ident).Text);
    while (tryEat(TokKind::Comma))
      Args.push_back(eat(TokKind::Ident).Text);
  }
  eat(TokKind::RParen);
  return Args;
}

Stmt Parser::parseStmt() {
  Stmt S;
  S.Line = peek().Line;
  S.Col = peek().Col;

  switch (peek().Kind) {
  case TokKind::KwIf: {
    eat(TokKind::KwIf);
    eat(TokKind::LParen);
    eat(TokKind::Star);
    eat(TokKind::RParen);
    S.K = Stmt::Kind::If;
    S.Then = parseBlock();
    if (tryEat(TokKind::KwElse))
      S.Else = parseBlock();
    return S;
  }
  case TokKind::KwWhile: {
    eat(TokKind::KwWhile);
    eat(TokKind::LParen);
    eat(TokKind::Star);
    eat(TokKind::RParen);
    S.K = Stmt::Kind::While;
    S.Then = parseBlock();
    return S;
  }
  case TokKind::KwReturn: {
    eat(TokKind::KwReturn);
    S.K = Stmt::Kind::Return;
    if (peek().Kind == TokKind::Ident) {
      S.A = eat(TokKind::Ident).Text;
      S.HasValue = true;
    }
    eat(TokKind::Semi);
    return S;
  }
  case TokKind::Ident:
    break;
  default:
    fail("expected statement");
  }

  std::string First = eat(TokKind::Ident).Text;

  if (tryEat(TokKind::Dot)) {
    std::string Member = eat(TokKind::Ident).Text;
    if (peek().Kind == TokKind::LParen) {
      // First.Member();
      eat(TokKind::LParen);
      eat(TokKind::RParen);
      eat(TokKind::Semi);
      S.K = Stmt::Kind::TsCall;
      S.A = std::move(First);
      S.C = std::move(Member);
      return S;
    }
    // First.Member = Src;
    eat(TokKind::Equal);
    S.K = Stmt::Kind::Store;
    S.A = std::move(First);
    S.C = std::move(Member);
    S.B = eat(TokKind::Ident).Text;
    eat(TokKind::Semi);
    return S;
  }

  if (peek().Kind == TokKind::LParen) {
    // First(args);
    S.K = Stmt::Kind::Call;
    S.B = std::move(First);
    S.Args = parseArgList();
    eat(TokKind::Semi);
    return S;
  }

  eat(TokKind::Equal);
  switch (peek().Kind) {
  case TokKind::KwNew: {
    eat(TokKind::KwNew);
    S.K = Stmt::Kind::Alloc;
    S.A = std::move(First);
    S.B = eat(TokKind::Ident).Text;
    eat(TokKind::Semi);
    return S;
  }
  case TokKind::KwNull: {
    eat(TokKind::KwNull);
    S.K = Stmt::Kind::AssignNull;
    S.A = std::move(First);
    eat(TokKind::Semi);
    return S;
  }
  case TokKind::Ident: {
    std::string Second = eat(TokKind::Ident).Text;
    if (tryEat(TokKind::Dot)) {
      // First = Second.Field;
      S.K = Stmt::Kind::Load;
      S.A = std::move(First);
      S.B = std::move(Second);
      S.C = eat(TokKind::Ident).Text;
      eat(TokKind::Semi);
      return S;
    }
    if (peek().Kind == TokKind::LParen) {
      // First = Second(args);
      S.K = Stmt::Kind::Call;
      S.A = std::move(First);
      S.B = std::move(Second);
      S.Args = parseArgList();
      eat(TokKind::Semi);
      return S;
    }
    // First = Second;
    S.K = Stmt::Kind::Copy;
    S.A = std::move(First);
    S.B = std::move(Second);
    eat(TokKind::Semi);
    return S;
  }
  default:
    fail("expected 'new', 'null', or identifier after '='");
  }
}
