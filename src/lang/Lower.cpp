//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"

#include "ir/ProgramBuilder.h"
#include "lang/Parser.h"

using namespace swift;
using ast::Stmt;

static void lowerStmts(ProgramBuilder &B, const std::vector<Stmt> &Stmts) {
  for (const Stmt &S : Stmts) {
    switch (S.K) {
    case Stmt::Kind::Alloc:
      B.alloc(S.A, S.B);
      break;
    case Stmt::Kind::Copy:
      B.copy(S.A, S.B);
      break;
    case Stmt::Kind::AssignNull:
      B.assignNull(S.A);
      break;
    case Stmt::Kind::Load:
      B.load(S.A, S.B, S.C);
      break;
    case Stmt::Kind::Store:
      B.store(S.A, S.C, S.B);
      break;
    case Stmt::Kind::TsCall:
      B.tsCall(S.A, S.C);
      break;
    case Stmt::Kind::Call:
      if (S.A.empty())
        B.call(S.B, S.Args);
      else
        B.callAssign(S.A, S.B, S.Args);
      break;
    case Stmt::Kind::If:
      B.beginIf();
      lowerStmts(B, S.Then);
      if (!S.Else.empty()) {
        B.orElse();
        lowerStmts(B, S.Else);
      }
      B.endIf();
      break;
    case Stmt::Kind::While:
      B.beginLoop();
      lowerStmts(B, S.Then);
      B.endLoop();
      break;
    case Stmt::Kind::Return:
      if (S.HasValue)
        B.ret(S.A);
      else
        B.ret();
      break;
    }
  }
}

std::unique_ptr<Program> swift::lowerModule(const ast::Module &M,
                                            std::string_view MainName) {
  ProgramBuilder B;
  for (const ast::TypestateDecl &D : M.Typestates) {
    std::vector<ProgramBuilder::Transition> Trans;
    Trans.reserve(D.Transitions.size());
    for (const ast::TransitionDecl &T : D.Transitions)
      Trans.push_back(ProgramBuilder::Transition{T.From, T.Method, T.To});
    B.addTypestate(D.Name, D.States, D.Start, D.Error, Trans);
  }
  for (const ast::ProcDecl &P : M.Procs) {
    B.beginProc(P.Name, P.Params);
    lowerStmts(B, P.Body);
    B.endProc();
  }
  return B.finish(MainName);
}

std::unique_ptr<Program> swift::parseProgram(std::string_view Source,
                                             std::string_view MainName) {
  return lowerModule(Parser::parse(Source), MainName);
}
