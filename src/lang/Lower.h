//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering of TSL modules to the analysis IR: typestate declarations
/// become TypestateSpecs, statement blocks become CFGs via ProgramBuilder.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_LANG_LOWER_H
#define SWIFT_LANG_LOWER_H

#include "ir/Program.h"
#include "lang/Ast.h"

#include <memory>
#include <string_view>

namespace swift {

/// Lowers \p M to a Program with \p MainName as the root procedure.
/// Throws std::runtime_error on semantic errors (duplicate declarations,
/// undeclared callees, arity mismatches).
std::unique_ptr<Program> lowerModule(const ast::Module &M,
                                     std::string_view MainName = "main");

/// Convenience: parse + lower in one step.
std::unique_ptr<Program> parseProgram(std::string_view Source,
                                      std::string_view MainName = "main");

} // namespace swift

#endif // SWIFT_LANG_LOWER_H
