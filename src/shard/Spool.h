//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The summary spool: a crash-safe append-only exchange directory through
/// which sharded workers publish per-SCC relational summaries. One file
/// per SCC ("seg-<scc>.spool"), written via writeFileAtomic under the
/// "spool.save" failpoint prefix, framed exactly like the swift-ckpt v2 /
/// serve-store files ("swift-spool v1 " + decimal payload length +
/// payload + "crc32 " hex trailer) so a reader never observes a torn
/// segment: after a worker dies at any instruction, each segment is
/// either absent or a complete, CRC-valid publication.
///
/// The spool is a CACHE, never a source of truth — the same contract as
/// the serve store. Every segment embeds the 64-bit hash of (program
/// text, tracked class); consumers verify frame, CRC, hash, and member
/// set before adopting, and treat ANY mismatch as a miss: the consumer
/// then recomputes the summaries itself, which the solver's determinism
/// makes byte-identical to what the owner would have published. Nothing a
/// corrupt or stale spool can contain changes an analysis result.
///
/// Heartbeat files ("hb-<shard>") ride in the same directory: tiny
/// atomically-replaced records whose mtime the coordinator polls to
/// distinguish a wedged worker from a slow one.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SHARD_SPOOL_H
#define SWIFT_SHARD_SPOOL_H

#include "ir/Program.h"

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace swift {
namespace shard {

/// Typed load failure: truncated framing, CRC mismatch, malformed
/// payload. tryLoadSegment converts these into a cache miss; decode
/// surfaces them for tests and diagnostics.
class SpoolError : public std::runtime_error {
public:
  explicit SpoolError(const std::string &What) : std::runtime_error(What) {}
};

/// One procedure's published summary, as symbolic text (the serve-store
/// codec: names, never symbol ids, so segments are valid across
/// processes with different interning orders).
struct SegmentProc {
  std::string Name;
  std::string SummaryText;
};

/// One SCC's publication.
struct Segment {
  uint64_t ProgHash = 0; ///< programSpoolHash of the producing run.
  uint64_t Scc = 0;      ///< Condensation index.
  std::vector<SegmentProc> Procs;
};

/// Hash binding a spool to one (program, tracked class) configuration;
/// FNV-1a over the canonical program text and the tracked class name.
uint64_t programSpoolHash(const Program &Prog, std::string_view Tracked);

std::string segmentFileName(uint64_t Scc);
std::string segmentPath(const std::string &Dir, uint64_t Scc);

std::string encodeSegment(const Segment &S);
/// Throws SpoolError on any framing or payload defect.
Segment decodeSegment(std::string_view Bytes);

/// encodeSegment + writeFileAtomic (failpoint prefix "spool.save").
void saveSegment(const std::string &Dir, const Segment &S);

/// Verify-then-adopt: reads seg-<scc>, validates frame + CRC + program
/// hash + SCC index. Returns nullopt on ANY failure — missing file, I/O
/// error, corruption, stale hash — never throws. The caller still owns
/// member-set and summary-text validation (those need the Program).
std::optional<Segment> tryLoadSegment(const std::string &Dir, uint64_t Scc,
                                      uint64_t ExpectProgHash);

/// Atomically replaces this shard's heartbeat file (failpoint prefix
/// "shard.hb"). \p LastScc is the most recently published SCC (or ~0u
/// before the first). Heartbeat I/O failures are swallowed: liveness
/// reporting must never take a worker down.
void writeHeartbeat(const std::string &Dir, unsigned Shard, uint64_t Pid,
                    unsigned Incarnation, uint64_t LastScc);

std::string heartbeatPath(const std::string &Dir, unsigned Shard);

} // namespace shard
} // namespace swift

#endif // SWIFT_SHARD_SPOOL_H
