//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "shard/Coordinator.h"

#include "ir/Dumper.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "shard/Spool.h"
#include "shard/Worker.h"
#include "support/AtomicFile.h"
#include "support/FailPoint.h"
#include "typestate/Runner.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace swift;
using namespace swift::shard;

namespace {

using Clock = std::chrono::steady_clock;
using Millis = std::chrono::milliseconds;

enum class ShardState { Pending, Running, Done, Failed };

struct ShardSlot {
  ShardState State = ShardState::Pending;
  pid_t Pid = -1;
  unsigned Incarnation = 0; ///< Of the *next* launch.
  Clock::time_point LaunchedAt;
  Clock::time_point NotBefore = Clock::time_point::min(); ///< Backoff gate.
};

/// Heartbeat file mtime with nanosecond resolution (heartbeats turn over
/// far faster than once a second under test timeouts); nullopt when the
/// file does not exist yet.
std::optional<struct timespec> fileMtime(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return std::nullopt;
  return St.st_mtim;
}

double msSince(const struct timespec &T) {
  struct timespec Now;
  clock_gettime(CLOCK_REALTIME, &Now);
  return (Now.tv_sec - T.tv_sec) * 1e3 + (Now.tv_nsec - T.tv_nsec) / 1e6;
}

struct Launcher {
  const CoordinatorOptions &O;
  ShardRunReport &Report;

  /// fork/execs one worker for \p Shard; returns -1 if fork failed (the
  /// caller treats that like a crash and retries under backoff).
  pid_t launch(unsigned Shard, unsigned Incarnation) {
    std::vector<std::string> Args;
    Args.push_back(O.WorkerBin);
    Args.push_back("--program=" + O.ProgramPath);
    Args.push_back("--class=" + O.TrackedClass);
    Args.push_back("--shard=" + std::to_string(Shard));
    Args.push_back("--shards=" + std::to_string(O.NumShards));
    Args.push_back("--spool-dir=" + O.SpoolDir);
    if (O.WorkerMaxSteps != UINT64_MAX)
      Args.push_back("--max-steps=" + std::to_string(O.WorkerMaxSteps));
    Args.push_back("--incarnation=" + std::to_string(Incarnation));
    if (!O.WorkerFailpoints.empty() &&
        (Incarnation == 0 || O.FailpointsAllIncarnations))
      Args.push_back("--failpoints=" + O.WorkerFailpoints);
    if (!O.TraceDir.empty()) {
      std::string Trace = O.TraceDir + "/worker-" + std::to_string(Shard) +
                          "-inc" + std::to_string(Incarnation) + ".json";
      Args.push_back("--trace-out=" + Trace);
      Report.TraceFiles.push_back(Trace);
    }

    pid_t Pid = ::fork();
    if (Pid < 0)
      return -1;
    if (Pid == 0) {
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      ::execv(Argv[0], Argv.data());
      _exit(127); // exec failed: surfaces as a restartable crash
    }
    return Pid;
  }
};

void note(const CoordinatorOptions &O, const std::string &Msg) {
  if (O.Verbose)
    std::fprintf(stderr, "[shardrun] %s\n", Msg.c_str());
}

} // namespace

ShardRunReport shard::runCoordinator(const CoordinatorOptions &OIn) {
  // The coordinator's own copy of the program; workers re-parse the same
  // text, so planShards agrees across every process by determinism.
  std::unique_ptr<Program> ProgPtr =
      parseProgramText(readWholeFile(OIn.ProgramPath));
  Program &Prog = *ProgPtr;
  CoordinatorOptions O = OIn;
  if (O.TrackedClass.empty()) {
    if (Prog.numSpecs() == 0)
      throw std::runtime_error("program declares no typestate spec");
    // Workers get the resolved name on their command line, so every
    // process hashes the same (program, class) pair.
    O.TrackedClass = Prog.symbols().text(Prog.spec(0).name());
  }
  Symbol Tracked = Prog.symbols().intern(O.TrackedClass);
  if (!Prog.specFor(Tracked))
    throw std::runtime_error("no typestate spec for class '" +
                             O.TrackedClass + "'");
  TsContext Ctx(Prog, Tracked);
  ShardPlan Plan = planShards(Prog, Ctx.callGraph(), O.NumShards);
  uint64_t Hash = programSpoolHash(Prog, O.TrackedClass);
  {
    struct stat St;
    if (::stat(O.SpoolDir.c_str(), &St) != 0 || !S_ISDIR(St.st_mode))
      throw std::runtime_error("spool dir '" + O.SpoolDir +
                               "' does not exist");
  }

  ShardRunReport Report;
  Launcher L{O, Report};
  std::vector<ShardSlot> Slots(Plan.NumShards);
  std::vector<unsigned> RestartsLeft(Plan.NumShards, O.RestartBudget);
  unsigned RunningCount = 0;

  // Restart/fallback decisions used to be visible only in stderr notes;
  // counters + trace instants make them operable: a fleet dashboard can
  // alert on shard.restarts without scraping logs.
  auto Count = [](const char *Name) {
    if (obs::metricsEnabled())
      obs::MetricsRegistry::instance().histogram(Name)->record(1);
  };

  auto MarkFailed = [&](unsigned S, const char *Why) {
    Slots[S].State = ShardState::Failed;
    Report.FailedShards.insert(S);
    obs::instant("shard", "shard.failed", {"shard", S});
    Count("shard.failed");
    note(O, "shard " + std::to_string(S) + " failed: " + Why);
  };

  auto DepsDone = [&](unsigned S) {
    for (unsigned D : Plan.ShardDeps[S])
      if (Slots[D].State != ShardState::Done)
        return false;
    return true;
  };
  auto DepFailed = [&](unsigned S) {
    for (unsigned D : Plan.ShardDeps[S])
      if (Slots[D].State == ShardState::Failed)
        return true;
    return false;
  };

  for (;;) {
    // Cascade failures and launch every ready shard with a free slot.
    bool AnyPending = false;
    for (unsigned S = 0; S != Plan.NumShards; ++S) {
      if (Slots[S].State != ShardState::Pending)
        continue;
      if (DepFailed(S)) {
        MarkFailed(S, "dependency shard failed");
        continue;
      }
      AnyPending = true;
      if (RunningCount >= O.MaxWorkers || !DepsDone(S) ||
          Clock::now() < Slots[S].NotBefore)
        continue;
      pid_t Pid = L.launch(S, Slots[S].Incarnation);
      if (Pid < 0) {
        // fork failure: retry under the same backoff/budget as a crash.
        if (RestartsLeft[S] == 0) {
          MarkFailed(S, "fork failed and restart budget exhausted");
          continue;
        }
        --RestartsLeft[S];
        Slots[S].NotBefore = Clock::now() + Millis(O.BackoffBaseMs);
        continue;
      }
      note(O, "launched shard " + std::to_string(S) + " inc " +
                  std::to_string(Slots[S].Incarnation) + " pid " +
                  std::to_string(Pid));
      Slots[S].State = ShardState::Running;
      Slots[S].Pid = Pid;
      Slots[S].LaunchedAt = Clock::now();
      ++Slots[S].Incarnation;
      ++RunningCount;
    }

    if (RunningCount == 0) {
      if (!AnyPending)
        break; // every shard Done or Failed
      // Pending shards are only waiting on backoff gates; sleep past the
      // earliest one.
      ::usleep(1000 * std::max(1u, O.BackoffBaseMs / 2));
      continue;
    }

    // Reap any worker that exited.
    int Status = 0;
    pid_t Dead = ::waitpid(-1, &Status, WNOHANG);
    if (Dead > 0) {
      for (unsigned S = 0; S != Plan.NumShards; ++S) {
        if (Slots[S].State != ShardState::Running || Slots[S].Pid != Dead)
          continue;
        --RunningCount;
        Slots[S].Pid = -1;
        int Code = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
        if (Code == WorkerExitOk) {
          Slots[S].State = ShardState::Done;
          note(O, "shard " + std::to_string(S) + " done");
        } else if (Code == WorkerExitBudget) {
          // Deterministic: a restart would fail identically.
          MarkFailed(S, "worker budget exhausted");
        } else if (Code == WorkerExitUsage) {
          MarkFailed(S, "worker usage error");
        } else if (RestartsLeft[S] == 0) {
          MarkFailed(S, "restart budget exhausted");
        } else {
          // Crash (fault exit, failpoint kill, or signal): restart with
          // capped exponential backoff. Published segments are reused, so
          // the replacement re-does only the in-flight SCC.
          unsigned Attempt = O.RestartBudget - RestartsLeft[S];
          --RestartsLeft[S];
          uint64_t Delay = static_cast<uint64_t>(O.BackoffBaseMs)
                           << std::min(Attempt, 10u);
          Delay = std::min<uint64_t>(Delay, O.BackoffCapMs);
          Slots[S].State = ShardState::Pending;
          Slots[S].NotBefore = Clock::now() + Millis(Delay);
          ++Report.Restarts;
          obs::instant("shard", "shard.restart", {"shard", S},
                       {"attempt", Attempt + 1});
          Count("shard.restarts");
          note(O, "shard " + std::to_string(S) + " crashed (status " +
                      std::to_string(Status) + "); restarting in " +
                      std::to_string(Delay) + "ms");
        }
        break;
      }
      continue; // reap eagerly before sleeping again
    }

    // Stale-heartbeat detection: a worker that has neither exited nor
    // published for too long is wedged; SIGKILL it and let the reap path
    // above handle it as a crash.
    if (O.HeartbeatTimeoutMs > 0) {
      for (unsigned S = 0; S != Plan.NumShards; ++S) {
        if (Slots[S].State != ShardState::Running)
          continue;
        double SinceLaunchMs =
            std::chrono::duration_cast<Millis>(Clock::now() -
                                               Slots[S].LaunchedAt)
                .count();
        if (SinceLaunchMs < O.HeartbeatTimeoutMs)
          continue; // startup grace
        std::optional<struct timespec> Mtime =
            fileMtime(heartbeatPath(O.SpoolDir, S));
        if (Mtime && msSince(*Mtime) < O.HeartbeatTimeoutMs)
          continue;
        note(O, "shard " + std::to_string(S) + " heartbeat stale; killing");
        ::kill(Slots[S].Pid, SIGKILL);
        ++Report.HeartbeatKills;
        obs::instant("shard", "shard.heartbeat_kill", {"shard", S});
        Count("shard.heartbeat_kills");
      }
    }
    ::usleep(2000);
  }

  if (Report.FailedShards.empty()) {
    ShardedResult A = assembleFromSpool(Prog, Ctx, Plan, O.SpoolDir, Hash,
                                        /*DegradedShards=*/{},
                                        /*MaxSteps=*/UINT64_MAX);
    if (A.Complete) {
      Report.Complete = true;
      Report.ErrorSites = std::move(A.ErrorSites);
      Report.ErrorPoints = std::move(A.ErrorPoints);
      Report.Verdicts = std::move(A.Verdicts);
      return Report;
    }
    // Assembly could not finish (e.g. the spool vanished mid-assembly and
    // recomputation is unbounded here): degrade like a shard failure.
    note(O, "assembly incomplete; using governed fallback");
  }

  // Some shard failed (or assembly did): fall back to the governed hybrid
  // TD/theta analysis — exactly the PR 3 path, sound complete or partial.
  Report.UsedFallback = true;
  obs::instant("shard", "shard.fallback",
               {"failed_shards",
                static_cast<uint64_t>(Report.FailedShards.size())});
  Count("shard.fallback");
  GovernedRunOptions G;
  G.Limits.MaxSteps = O.FallbackMaxSteps;
  TsGovernedResult F = runTypestateGoverned(Ctx, G);
  Report.FallbackPartial = F.Partial;
  Report.ErrorSites = std::move(F.Run.ErrorSites);
  Report.ErrorPoints = std::move(F.Run.ErrorPoints);
  Report.Verdicts = std::move(F.Verdicts);
  return Report;
}
