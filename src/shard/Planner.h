//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic partitioning of the call-graph SCC condensation into K
/// shards for multi-process bottom-up analysis. SCC indices are in
/// reverse topological order (a callee's SCC index is lower than its
/// callers'), so any partition into contiguous ascending-index ranges
/// respects the DAG: every cross-shard call edge points from a shard to a
/// strictly earlier one. A shard is therefore runnable as soon as its
/// dependency shards have published their summaries, and the shard DAG is
/// a chain-free total order restricted to the edges that actually exist.
///
/// The partition is weight-balanced (sum of member CFG node counts, the
/// same proxy the wavefront scheduler's work is proportional to) and a
/// pure function of (program, K): the coordinator and every worker
/// compute it independently and agree, so no plan needs to be exchanged
/// or persisted.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SHARD_PLANNER_H
#define SWIFT_SHARD_PLANNER_H

#include "ir/CallGraph.h"
#include "ir/Program.h"

#include <vector>

namespace swift {
namespace shard {

struct ShardPlan {
  unsigned NumShards = 0;
  /// SCC index -> owning shard. Every SCC is owned by exactly one shard.
  std::vector<unsigned> ShardOfScc;
  /// Per shard: owned SCC indices, ascending (callee-first solve order).
  std::vector<std::vector<size_t>> ShardSccs;
  /// Per shard: owned procedures, sorted by ProcId.
  std::vector<std::vector<ProcId>> ShardProcs;
  /// Per shard: the strictly-earlier shards it has a call edge into,
  /// sorted ascending. A shard is ready once these are all complete.
  std::vector<std::vector<unsigned>> ShardDeps;

  unsigned shardOfProc(const CallGraph &CG, ProcId P) const {
    return ShardOfScc[CG.scc(P)];
  }
};

/// Partitions all of \p Prog's SCCs into min(RequestedShards, numSccs)
/// contiguous ascending ranges, greedily balanced by the sum of member
/// procedures' CFG node counts. Deterministic; every shard is non-empty.
ShardPlan planShards(const Program &Prog, const CallGraph &CG,
                     unsigned RequestedShards);

} // namespace shard
} // namespace swift

#endif // SWIFT_SHARD_PLANNER_H
