//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-process coordinator behind swift-shardrun: fork/execs one
/// swift-shard-worker per ready shard of the plan, supervises them, and
/// assembles the final verdicts from the spool they populate.
///
/// Supervision contract:
///   * Liveness is tracked through exit status (waitpid) and the
///     heartbeat file each worker atomically replaces per completed SCC;
///     a heartbeat stale past the timeout gets the worker SIGKILLed and
///     treated like any other crash.
///   * A crashed or killed worker is restarted with capped exponential
///     backoff. Restarts are cheap by construction: the replacement
///     adopts every segment its predecessor published and re-solves only
///     the in-flight SCC.
///   * Budget exhaustion (WorkerExitBudget) is deterministic — the same
///     shard would fail the same way again — so it consumes the whole
///     restart budget at once and marks the shard Failed.
///   * A shard whose restart budget is spent is Failed; shards depending
///     on it fail by cascade without being launched.
///
/// Degradation contract: with every shard Done, the assembly derives
/// pure-BU verdicts from the spool (exact, = runTypestateBu). With any
/// shard Failed, the coordinator falls back to the governed hybrid
/// TD/theta run of PR 3, whose verdicts are sound whether or not it
/// completes — Proved / ErrorReported / Unresolved never lie, whatever
/// the workers did.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SHARD_COORDINATOR_H
#define SWIFT_SHARD_COORDINATOR_H

#include "shard/Sharded.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace swift {
namespace shard {

struct CoordinatorOptions {
  std::string ProgramPath; ///< swift-ir v1 text; workers re-read it.
  std::string TrackedClass;
  std::string WorkerBin; ///< Path to the swift-shard-worker executable.
  unsigned NumShards = 2;
  unsigned MaxWorkers = 2; ///< Concurrent worker processes.
  std::string SpoolDir;    ///< Must exist; segments and heartbeats live here.
  uint64_t WorkerMaxSteps = UINT64_MAX;
  /// Restarts allowed per shard before it is marked Failed.
  unsigned RestartBudget = 3;
  unsigned BackoffBaseMs = 25; ///< Doubled per restart, capped below.
  unsigned BackoffCapMs = 1000;
  /// A running worker whose heartbeat mtime is older than this is
  /// SIGKILLed (grace-measured from launch). 0 disables the check.
  unsigned HeartbeatTimeoutMs = 30000;
  /// --failpoints= spec injected into workers (the crash campaign's
  /// lever). By default only incarnation 0 gets it, so a restarted worker
  /// runs clean; set AllIncarnations to drive restart-budget exhaustion.
  std::string WorkerFailpoints;
  bool FailpointsAllIncarnations = false;
  uint64_t FallbackMaxSteps = UINT64_MAX; ///< Governed TD/theta fallback.
  std::string TraceDir; ///< Per-worker trace JSON files; empty = off.
  bool Verbose = false; ///< Supervision narration on stderr.
};

struct ShardRunReport {
  /// Every shard Done and the pure-BU assembly finished: verdicts are the
  /// exact runTypestateBu results.
  bool Complete = false;
  bool UsedFallback = false;    ///< Some shard failed; verdicts are PR 3's.
  bool FallbackPartial = false; ///< The fallback itself ran out of budget.
  std::set<unsigned> FailedShards; ///< Root failures and cascades.
  std::set<SiteId> ErrorSites;
  std::set<TsError> ErrorPoints;
  std::vector<TsVerdict> Verdicts; ///< One per allocation site; never unsound.
  unsigned Restarts = 0; ///< Worker processes relaunched.
  unsigned HeartbeatKills = 0; ///< Workers SIGKILLed for stale heartbeats.
  std::vector<std::string> TraceFiles; ///< One per worker incarnation.
};

/// Runs the whole sharded analysis. Throws std::runtime_error on setup
/// errors (unreadable program, missing spool dir); worker failures never
/// throw — they degrade per the contract above.
ShardRunReport runCoordinator(const CoordinatorOptions &Opts);

} // namespace shard
} // namespace swift

#endif // SWIFT_SHARD_COORDINATOR_H
