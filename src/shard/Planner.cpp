//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "shard/Planner.h"

#include <algorithm>
#include <set>

using namespace swift;
using namespace swift::shard;

ShardPlan shard::planShards(const Program &Prog, const CallGraph &CG,
                            unsigned RequestedShards) {
  size_t N = CG.numSccs();
  ShardPlan Plan;
  Plan.NumShards = static_cast<unsigned>(
      std::max<size_t>(1, std::min<size_t>(RequestedShards, N)));
  Plan.ShardOfScc.assign(N, 0);
  Plan.ShardSccs.resize(Plan.NumShards);
  Plan.ShardProcs.resize(Plan.NumShards);
  Plan.ShardDeps.resize(Plan.NumShards);

  std::vector<uint64_t> Weight(N, 0);
  uint64_t Total = 0;
  for (size_t S = 0; S != N; ++S) {
    for (ProcId P : CG.sccMembers(S))
      Weight[S] += Prog.proc(P).numNodes();
    Total += Weight[S];
  }

  // Greedy contiguous split: each shard takes SCCs until it reaches the
  // ceiling of an even split of the *remaining* weight (so early
  // overshoot rebalances later shards), always leaving at least one SCC
  // per remaining shard. min(K, N) above guarantees that is satisfiable.
  unsigned K = Plan.NumShards;
  uint64_t TotalLeft = Total;
  size_t I = 0;
  for (unsigned S = 0; S != K; ++S) {
    uint64_t Target = (TotalLeft + (K - S) - 1) / (K - S);
    uint64_t Acc = 0;
    while (I != N && N - I > static_cast<size_t>(K - S - 1) &&
           (Plan.ShardSccs[S].empty() || Acc < Target)) {
      Plan.ShardOfScc[I] = S;
      Plan.ShardSccs[S].push_back(I);
      Acc += Weight[I];
      ++I;
    }
    TotalLeft -= Acc;
  }

  for (size_t S = 0; S != N; ++S) {
    unsigned Shard = Plan.ShardOfScc[S];
    for (ProcId P : CG.sccMembers(S))
      Plan.ShardProcs[Shard].push_back(P);
  }
  for (auto &Procs : Plan.ShardProcs)
    std::sort(Procs.begin(), Procs.end());

  std::vector<std::set<unsigned>> Deps(K);
  for (ProcId P = 0; P != Prog.numProcs(); ++P) {
    unsigned From = Plan.shardOfProc(CG, P);
    for (ProcId Q : CG.callees(P)) {
      unsigned To = Plan.shardOfProc(CG, Q);
      if (To != From)
        Deps[From].insert(To);
    }
  }
  for (unsigned S = 0; S != K; ++S)
    Plan.ShardDeps[S].assign(Deps[S].begin(), Deps[S].end());
  return Plan;
}
