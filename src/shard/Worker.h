//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shard worker: the process body behind swift-shard-worker, plus the
/// spool-aware solve preparation the coordinator's assembly phase and the
/// in-process sharded runner share with it.
///
/// A worker owns the SCCs its shard was assigned by planShards and runs a
/// pure bottom-up relational solve over them (NoPruning, no frequency
/// data — the same configuration as runTypestateBu, whose results are
/// deterministic at any thread count). Cross-shard callee summaries are
/// taken from the spool when a valid segment exists and recomputed
/// locally otherwise: the spool is a cache, and recomputation produces
/// byte-identical summaries, so a worker never blocks on another shard's
/// liveness for correctness — only for speed. Each own SCC completed is
/// published to the spool from the solver's SCC observer, so a crash
/// loses at most the in-flight SCC.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SHARD_WORKER_H
#define SWIFT_SHARD_WORKER_H

#include "framework/RelationalSolver.h"
#include "shard/Planner.h"
#include "shard/Spool.h"
#include "typestate/Context.h"
#include "typestate/TsAnalysis.h"

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace swift {
namespace shard {

/// Worker exit codes. The coordinator keys restart policy off these:
/// Fault and kill (failpoint::KillExitCode) are restartable; Budget is
/// deterministic and marks the shard permanently failed; Usage is a
/// harness bug.
constexpr int WorkerExitOk = 0;
constexpr int WorkerExitFault = 1;
constexpr int WorkerExitUsage = 2;
constexpr int WorkerExitBudget = 3;

/// What prepareSolve decided for every SCC needed to produce final
/// summaries for the target SCCs.
struct SolveSetup {
  /// SCCs whose summaries must be computed here, ascending.
  std::vector<size_t> SolveSccs;
  /// Members of SolveSccs, sorted — the argument for RelationalSolver::run
  /// (call-closed modulo the summaries prepareSolve installed).
  std::vector<ProcId> SolveProcs;
  size_t InstalledSccs = 0; ///< Adopted from the spool.
  size_t DegradedProcs = 0; ///< Soundly gave up (owner shard degraded).
};

/// Where candidate segments come from: the disk spool (tryLoadSegment) in
/// the worker and coordinator, an in-memory map in the in-process runner.
/// The source only fetches; verification (member set, summary parse) is
/// prepareSolve's.
using SegmentSource = std::function<std::optional<Segment>(size_t Scc)>;

/// Walks the callee closure of \p TargetSccs and, for each SCC reached:
/// degrades its members when its owning shard is in \p DegradedShards,
/// adopts a segment from \p Source when one exists and survives
/// verification (exact member set, every summary parses — any defect is a
/// cache miss), and otherwise schedules it for solving, recursing into
/// its callees. Installed and degraded summaries go directly into
/// \p Solver; the returned SolveProcs satisfy run()'s weakened
/// call-closure precondition. \p Prog must be the program \p Ctx and
/// \p Solver were built over (non-const: summary parsing interns).
SolveSetup prepareSolve(Program &Prog, const TsContext &Ctx,
                        const ShardPlan &Plan, const SegmentSource &Source,
                        const std::set<unsigned> &DegradedShards,
                        const std::vector<size_t> &TargetSccs,
                        RelationalSolver<TsAnalysis> &Solver);

/// Convenience overload: \p Source = the disk spool at \p SpoolDir
/// (skipped entirely when empty), validated against \p ProgHash.
SolveSetup prepareSolve(Program &Prog, const TsContext &Ctx,
                        const ShardPlan &Plan, const std::string &SpoolDir,
                        uint64_t ProgHash,
                        const std::set<unsigned> &DegradedShards,
                        const std::vector<size_t> &TargetSccs,
                        RelationalSolver<TsAnalysis> &Solver);

struct WorkerOptions {
  std::string ProgramPath; ///< swift-ir v1 text file.
  std::string TrackedClass;
  unsigned Shard = 0;
  unsigned NumShards = 1;
  std::string SpoolDir;
  uint64_t MaxSteps = UINT64_MAX;
  /// Which incarnation of this shard this process is (0 first launch);
  /// recorded in the heartbeat and the trace process name.
  unsigned Incarnation = 0;
  /// Shards to treat as permanently failed: their SCCs are degraded
  /// instead of loaded or recomputed. Publishing is disabled when
  /// non-empty — degraded inputs change own summaries, and the spool must
  /// only ever hold the bytes an uninterrupted clean run would write.
  std::set<unsigned> DegradedShards;
  std::string TraceOut; ///< Per-worker Chrome trace JSON; empty = off.
};

/// Runs one shard to completion in this process. Returns a WorkerExit*
/// code; on Fault/Usage, \p Err (if non-null) receives the reason. Does
/// not install signal handlers or arm failpoints — the caller (tool main)
/// owns process-level setup.
int runWorker(const WorkerOptions &Opts, std::string *Err = nullptr);

} // namespace shard
} // namespace swift

#endif // SWIFT_SHARD_WORKER_H
