//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "shard/Sharded.h"

#include "serve/Store.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <map>

using namespace swift;
using namespace swift::shard;

namespace {

RelationalSolver<TsAnalysis> makeBuSolver(const TsContext &Ctx, Budget &Bud,
                                          Stats &Stat) {
  // The runTypestateBu configuration: no pruning, no frequency data, the
  // observation manifest on — the solver every shard role must agree with
  // byte for byte.
  return RelationalSolver<TsAnalysis>(
      Ctx, Ctx.program(), Ctx.callGraph(), NoPruning,
      [](ProcId) -> const std::unordered_map<TsAbstractState, uint64_t> * {
        return nullptr;
      },
      Bud, Stat, DefaultMaxRelsPerPoint, /*CollectObservations=*/true,
      /*NumThreads=*/1);
}

/// Instantiates main's summary on the initial Lambda state and derives
/// per-site verdicts — the runTypestateBu harvest, plus the governed
/// runner's verdict discipline under degradation.
void deriveOutcome(const TsContext &Ctx,
                   const RelationalSolver<TsAnalysis> &Solver, bool Degraded,
                   ShardedResult &R) {
  const Program &Prog = Ctx.program();
  const auto &Main = Solver.summary(Prog.mainProc());
  TState Error = Ctx.spec().errorState();
  NodeId MainExitNode = Prog.proc(Prog.mainProc()).exit();
  if (Main.LambdaExit)
    R.MainExit.insert(TsAbstractState::lambda());
  for (const auto &Rel : Main.Rels)
    if (std::optional<TsAbstractState> Out =
            Rel.apply(Ctx, TsAbstractState::lambda()))
      R.MainExit.insert(*Out);
  for (const TsAbstractState &S : R.MainExit)
    if (!S.isLambda() && S.tstate() == Error) {
      R.ErrorSites.insert(S.site());
      R.ErrorPoints.insert(TsError{S.site(), Prog.mainProc(), MainExitNode});
    }
  for (const auto &Rel : Main.ObsRels)
    if (std::optional<TsAbstractState> Out =
            Rel.apply(Ctx, TsAbstractState::lambda()))
      if (!Out->isLambda() && Out->tstate() == Error) {
        R.ErrorSites.insert(Out->site());
        R.ErrorPoints.insert(
            TsError{Out->site(), Prog.mainProc(), MainExitNode});
      }

  // A degraded run must not claim absence of errors it soundly gave up
  // looking for; reported errors stay exact (degraded summaries only ever
  // suppress relations, never invent them).
  R.Verdicts.assign(Prog.numSites(), TsVerdict::Proved);
  for (uint32_t S = 0; S != Prog.numSites(); ++S) {
    if (!Ctx.isTrackedSite(S))
      continue;
    if (R.ErrorSites.count(S))
      R.Verdicts[S] = TsVerdict::ErrorReported;
    else if (Degraded)
      R.Verdicts[S] = TsVerdict::Unresolved;
  }
}

ShardedResult assembleCore(Program &Prog, const TsContext &Ctx,
                           const ShardPlan &Plan,
                           const SegmentSource &Source,
                           const std::set<unsigned> &DegradedShards,
                           uint64_t MaxSteps) {
  ShardedResult R;
  Budget Bud(MaxSteps, 1e18);
  Stats Stat;
  RelationalSolver<TsAnalysis> Solver = makeBuSolver(Ctx, Bud, Stat);
  std::vector<size_t> Target{Ctx.callGraph().scc(Prog.mainProc())};
  SolveSetup Setup = prepareSolve(Prog, Ctx, Plan, Source, DegradedShards,
                                  Target, Solver);
  R.Degraded = Setup.DegradedProcs != 0;
  bool Finished = Solver.run(Setup.SolveProcs);
  R.Steps = Bud.steps();
  if (!Finished)
    return R; // Complete stays false; results stay empty
  R.Complete = true;
  deriveOutcome(Ctx, Solver, R.Degraded, R);
  return R;
}

} // namespace

ShardedResult shard::assembleFromSpool(Program &Prog, const TsContext &Ctx,
                                       const ShardPlan &Plan,
                                       const std::string &SpoolDir,
                                       uint64_t ProgHash,
                                       const std::set<unsigned> &DegradedShards,
                                       uint64_t MaxSteps) {
  SegmentSource Source;
  if (!SpoolDir.empty())
    Source = [&SpoolDir, ProgHash](size_t S) {
      return tryLoadSegment(SpoolDir, S, ProgHash);
    };
  return assembleCore(Prog, Ctx, Plan, Source, DegradedShards, MaxSteps);
}

ShardedResult shard::runShardedInProcess(Program &Prog,
                                         const std::string &TrackedClass,
                                         const ShardedOptions &Opts) {
  Symbol Tracked = Prog.symbols().intern(TrackedClass);
  TsContext Ctx(Prog, Tracked);
  const CallGraph &CG = Ctx.callGraph();
  ShardPlan Plan = planShards(Prog, CG, Opts.NumShards);
  uint64_t Hash = programSpoolHash(Prog, TrackedClass);

  std::map<size_t, std::string> SegBytes; // the in-memory "spool"
  SegmentSource Source = [&SegBytes, Hash](size_t S) -> std::optional<Segment> {
    auto It = SegBytes.find(S);
    if (It == SegBytes.end())
      return std::nullopt;
    try {
      Segment Seg = decodeSegment(It->second);
      if (Seg.ProgHash != Hash || Seg.Scc != S)
        return std::nullopt;
      return Seg;
    } catch (const std::exception &) {
      return std::nullopt;
    }
  };

  uint64_t Steps = 0;
  // Workers publish nothing under degradation, so with degraded shards
  // the simulation adds no segments — skip straight to the assembly,
  // which recomputes with the degraded SCCs soundly ignored.
  if (Opts.DegradedShards.empty()) {
    for (unsigned Sh = 0; Sh != Plan.NumShards; ++Sh) {
      Budget Bud(Opts.MaxSteps, 1e18);
      Stats Stat;
      RelationalSolver<TsAnalysis> Solver = makeBuSolver(Ctx, Bud, Stat);
      Solver.setSccObserver([&](const std::vector<ProcId> &Members) {
        size_t Scc = CG.scc(Members.front());
        if (Plan.ShardOfScc[Scc] != Sh)
          return;
        Segment Seg;
        Seg.ProgHash = Hash;
        Seg.Scc = Scc;
        for (ProcId P : Members)
          Seg.Procs.push_back(
              {Prog.symbols().text(Prog.proc(P).name()),
               serve::summaryToText(Prog, Solver.summary(P))});
        SegBytes[Scc] = encodeSegment(Seg);
      });
      SolveSetup Setup = prepareSolve(Prog, Ctx, Plan, Source, {},
                                      Plan.ShardSccs[Sh], Solver);
      bool Finished = Solver.run(Setup.SolveProcs);
      Steps += Bud.steps();
      if (!Finished) {
        ShardedResult R;
        R.Steps = Steps;
        return R;
      }
    }
  }

  ShardedResult R = assembleCore(Prog, Ctx, Plan, Source,
                                 Opts.DegradedShards, Opts.MaxSteps);
  R.Steps += Steps;
  return R;
}
