//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "shard/Spool.h"

#include "ir/Dumper.h"
#include "support/AtomicFile.h"
#include "support/Hashing.h"

#include <cinttypes>
#include <cstdio>
#include <unistd.h>

using namespace swift;
using namespace swift::shard;

namespace {

constexpr std::string_view Magic = "swift-spool v1 ";

std::string hex(uint64_t V, int Digits) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%0*" PRIx64, Digits, V);
  return Buf;
}

[[noreturn]] void bad(const std::string &Why) { throw SpoolError(Why); }

/// Sequential reader over the payload with line/byte primitives; every
/// primitive validates and throws SpoolError on malformed input.
struct Reader {
  std::string_view Text;
  size_t Pos = 0;

  std::string_view line() {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string_view::npos)
      bad("spool segment truncated: missing newline");
    std::string_view L = Text.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    return L;
  }

  std::string_view bytes(size_t N) {
    if (Text.size() - Pos < N)
      bad("spool segment truncated: short byte run");
    std::string_view B = Text.substr(Pos, N);
    Pos += N;
    return B;
  }

  bool atEnd() const { return Pos == Text.size(); }
};

uint64_t parseDec(std::string_view T, const char *What) {
  if (T.empty())
    bad(std::string("spool segment: empty ") + What);
  uint64_t V = 0;
  for (char C : T) {
    if (C < '0' || C > '9')
      bad(std::string("spool segment: malformed ") + What);
    if (V > UINT64_MAX / 10)
      bad(std::string("spool segment: ") + What + " out of range");
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  return V;
}

uint64_t parseHex(std::string_view T, const char *What) {
  if (T.empty() || T.size() > 16)
    bad(std::string("spool segment: malformed ") + What);
  uint64_t V = 0;
  for (char C : T) {
    int D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else
      bad(std::string("spool segment: malformed ") + What);
    V = V * 16 + static_cast<uint64_t>(D);
  }
  return V;
}

/// Splits \p L at single spaces into exactly \p N fields.
std::vector<std::string_view> fields(std::string_view L, size_t N,
                                     const char *What) {
  std::vector<std::string_view> F;
  size_t Pos = 0;
  while (F.size() + 1 < N) {
    size_t Sp = L.find(' ', Pos);
    if (Sp == std::string_view::npos)
      bad(std::string("spool segment: malformed ") + What + " line");
    F.push_back(L.substr(Pos, Sp - Pos));
    Pos = Sp + 1;
  }
  F.push_back(L.substr(Pos));
  return F;
}

} // namespace

uint64_t shard::programSpoolHash(const Program &Prog,
                                 std::string_view Tracked) {
  // FNV-1a: a fixed, documented byte-string hash (like the framing CRC,
  // and unlike mix64 chains whose constants this repo could re-tune), so
  // spools written by one build validate under another.
  uint64_t H = 1469598103934665603ULL;
  auto Eat = [&H](std::string_view Bytes) {
    for (unsigned char C : Bytes) {
      H ^= C;
      H *= 1099511628211ULL;
    }
  };
  Eat(programToText(Prog));
  Eat("\x1f");
  Eat(Tracked);
  return H;
}

std::string shard::segmentFileName(uint64_t Scc) {
  return "seg-" + std::to_string(Scc) + ".spool";
}

std::string shard::segmentPath(const std::string &Dir, uint64_t Scc) {
  return Dir + "/" + segmentFileName(Scc);
}

std::string shard::encodeSegment(const Segment &S) {
  std::string P;
  P += "prog " + hex(S.ProgHash, 16) + "\n";
  P += "scc " + std::to_string(S.Scc) + "\n";
  P += "procs " + std::to_string(S.Procs.size()) + "\n";
  for (const SegmentProc &Pr : S.Procs) {
    P += "proc " + Pr.Name + " " + std::to_string(Pr.SummaryText.size()) +
         "\n";
    P += Pr.SummaryText;
  }
  std::string Out;
  Out += Magic;
  Out += std::to_string(P.size());
  Out += '\n';
  Out += P;
  Out += "crc32 " + hex(crc32(P.data(), P.size()), 8) + "\n";
  return Out;
}

Segment shard::decodeSegment(std::string_view Bytes) {
  if (Bytes.substr(0, Magic.size()) != Magic)
    bad("spool segment: bad magic");
  Reader Frame{Bytes, Magic.size()};
  uint64_t Len = parseDec(Frame.line(), "payload length");
  std::string_view Payload = Frame.bytes(Len);
  std::vector<std::string_view> Trailer =
      fields(Frame.line(), 2, "crc trailer");
  if (Trailer[0] != "crc32")
    bad("spool segment: missing crc trailer");
  if (!Frame.atEnd())
    bad("spool segment: trailing bytes after crc");
  uint32_t Want = static_cast<uint32_t>(parseHex(Trailer[1], "crc"));
  if (crc32(Payload.data(), Payload.size()) != Want)
    bad("spool segment: crc mismatch");

  Reader R{Payload, 0};
  Segment S;
  std::vector<std::string_view> F = fields(R.line(), 2, "prog");
  if (F[0] != "prog")
    bad("spool segment: expected prog line");
  S.ProgHash = parseHex(F[1], "program hash");
  F = fields(R.line(), 2, "scc");
  if (F[0] != "scc")
    bad("spool segment: expected scc line");
  S.Scc = parseDec(F[1], "scc index");
  F = fields(R.line(), 2, "procs");
  if (F[0] != "procs")
    bad("spool segment: expected procs line");
  uint64_t N = parseDec(F[1], "proc count");
  for (uint64_t I = 0; I != N; ++I) {
    F = fields(R.line(), 3, "proc");
    if (F[0] != "proc" || F[1].empty())
      bad("spool segment: expected proc line");
    SegmentProc Pr;
    Pr.Name = std::string(F[1]);
    Pr.SummaryText =
        std::string(R.bytes(parseDec(F[2], "summary length")));
    S.Procs.push_back(std::move(Pr));
  }
  if (!R.atEnd())
    bad("spool segment: trailing payload bytes");
  return S;
}

void shard::saveSegment(const std::string &Dir, const Segment &S) {
  writeFileAtomic(segmentPath(Dir, S.Scc), encodeSegment(S), "spool.save");
}

std::optional<Segment> shard::tryLoadSegment(const std::string &Dir,
                                             uint64_t Scc,
                                             uint64_t ExpectProgHash) {
  try {
    Segment S = decodeSegment(readWholeFile(segmentPath(Dir, Scc)));
    if (S.ProgHash != ExpectProgHash || S.Scc != Scc)
      return std::nullopt; // stale spool from another program/run shape
    return S;
  } catch (const std::exception &) {
    // Missing, unreadable, torn, or corrupt: all the same cache miss.
    return std::nullopt;
  }
}

std::string shard::heartbeatPath(const std::string &Dir, unsigned Shard) {
  return Dir + "/hb-" + std::to_string(Shard);
}

void shard::writeHeartbeat(const std::string &Dir, unsigned Shard,
                           uint64_t Pid, unsigned Incarnation,
                           uint64_t LastScc) {
  std::string Body = "pid " + std::to_string(Pid) + " inc " +
                     std::to_string(Incarnation) + " scc " +
                     std::to_string(LastScc) + "\n";
  try {
    writeFileAtomic(heartbeatPath(Dir, Shard), Body, "shard.hb");
  } catch (const std::exception &) {
    // Liveness telemetry only; the worker carries on and the coordinator
    // falls back to exit-status detection.
  }
}
