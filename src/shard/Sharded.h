//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sharded pure-bottom-up analysis without processes: the same planner,
/// codec, and exchange discipline as the multi-process coordinator, but
/// with every "worker" simulated sequentially in one process and segments
/// exchanged through an in-memory map (still through encodeSegment /
/// decodeSegment, so the codec path is exercised end to end). This is the
/// reference the difftest oracle uses to pin shard-count invariance —
/// K in {1, 2, 4} must produce identical error sites and verdicts — and
/// what the coordinator's final assembly over a populated disk spool
/// shares its derivation with.
///
/// Solver determinism makes this exact: every shard's summaries, and
/// therefore the assembled verdicts, are the same values runTypestateBu
/// computes, whatever K is.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SHARD_SHARDED_H
#define SWIFT_SHARD_SHARDED_H

#include "shard/Worker.h"
#include "typestate/Runner.h"

#include <cstdint>
#include <set>
#include <string>

namespace swift {
namespace shard {

struct ShardedOptions {
  unsigned NumShards = 1;
  uint64_t MaxSteps = UINT64_MAX; ///< Per simulated worker and assembly.
  /// Shards forced to behave as permanently failed (their SCCs degrade).
  std::set<unsigned> DegradedShards;
};

/// Result of a sharded pure-BU run. The verdict contract matches the
/// governed runner's: a complete non-degraded run proves every tracked
/// site without a reported error; any degradation downgrades unproved
/// tracked sites whose resolution could have depended on a degraded
/// summary to Unresolved (never to an unsound Proved).
struct ShardedResult {
  bool Complete = false; ///< Every solve finished within its budget.
  bool Degraded = false; ///< Degraded summaries entered the assembly.
  std::set<SiteId> ErrorSites;
  std::set<TsError> ErrorPoints;
  std::set<TsAbstractState> MainExit;
  std::vector<TsVerdict> Verdicts; ///< One per allocation site.
  uint64_t Steps = 0;              ///< Summed across all solves.
};

/// Runs the full sharded pipeline in-process: plan K shards, simulate
/// each non-degraded worker in ascending shard order (publishing into an
/// in-memory spool), then assemble main's closure from the published
/// segments and derive verdicts. When \p Opts.DegradedShards is
/// non-empty, the per-shard simulation is skipped (workers publish
/// nothing under degradation) and the assembly solves everything itself
/// with the degraded SCCs' summaries soundly ignored. On budget
/// exhaustion returns Complete = false with empty results — like the
/// ungoverned runners, a partial pure-BU run reports only the failure.
ShardedResult runShardedInProcess(Program &Prog,
                                  const std::string &TrackedClass,
                                  const ShardedOptions &Opts);

/// The coordinator's final step: one solver over \p Prog targeting main's
/// SCC, adopting every valid segment in \p SpoolDir, solving whatever is
/// missing, and deriving pure-BU verdicts. \p DegradedShards marks shards
/// whose segments must not be trusted even if present (their SCCs
/// degrade). Exact under solver determinism regardless of how much of the
/// spool survived.
ShardedResult assembleFromSpool(Program &Prog, const TsContext &Ctx,
                                const ShardPlan &Plan,
                                const std::string &SpoolDir,
                                uint64_t ProgHash,
                                const std::set<unsigned> &DegradedShards,
                                uint64_t MaxSteps);

} // namespace shard
} // namespace swift

#endif // SWIFT_SHARD_SHARDED_H
