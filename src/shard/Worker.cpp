//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "shard/Worker.h"

#include "ir/Dumper.h"
#include "obs/Trace.h"
#include "serve/Store.h"
#include "shard/Spool.h"
#include "support/AtomicFile.h"
#include "support/FailPoint.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unistd.h>

using namespace swift;
using namespace swift::shard;

namespace {

/// All-or-nothing adoption of one verified segment: every member parses
/// or nothing is installed (a half-installed SCC would not be a summary
/// any run could have produced).
bool tryInstallSegment(Program &Prog, const std::vector<ProcId> &Members,
                       const Segment &Seg,
                       RelationalSolver<TsAnalysis> &Solver) {
  if (Seg.Procs.size() != Members.size())
    return false;
  std::map<std::string, ProcId> Expect;
  for (ProcId P : Members)
    Expect.emplace(Prog.symbols().text(Prog.proc(P).name()), P);
  std::vector<std::pair<ProcId, serve::TsSummary>> Parsed;
  try {
    for (const SegmentProc &SP : Seg.Procs) {
      auto It = Expect.find(SP.Name);
      if (It == Expect.end())
        return false; // wrong member set
      Parsed.emplace_back(It->second,
                          serve::parseSummaryText(Prog, SP.SummaryText));
      Expect.erase(It);
    }
  } catch (const std::exception &) {
    return false; // malformed summary text: a cache miss like any other
  }
  if (!Expect.empty())
    return false;
  for (auto &[P, S] : Parsed)
    Solver.installSummary(P, std::move(S));
  return true;
}

} // namespace

SolveSetup shard::prepareSolve(Program &Prog, const TsContext &Ctx,
                               const ShardPlan &Plan,
                               const SegmentSource &Source,
                               const std::set<unsigned> &DegradedShards,
                               const std::vector<size_t> &TargetSccs,
                               RelationalSolver<TsAnalysis> &Solver) {
  const CallGraph &CG = Ctx.callGraph();
  SolveSetup R;
  std::set<size_t> Visited;
  std::set<size_t> SolveSet;
  std::vector<size_t> Stack(TargetSccs.begin(), TargetSccs.end());
  while (!Stack.empty()) {
    size_t S = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(S).second)
      continue;
    const std::vector<ProcId> &Members = CG.sccMembers(S);
    if (DegradedShards.count(Plan.ShardOfScc[S])) {
      for (ProcId P : Members)
        Solver.degrade(P);
      R.DegradedProcs += Members.size();
      continue; // an ignore-all summary needs no callees
    }
    if (Source) {
      if (std::optional<Segment> Seg = Source(S)) {
        if (tryInstallSegment(Prog, Members, *Seg, Solver)) {
          ++R.InstalledSccs;
          continue; // final summary adopted; callees not needed
        }
      }
    }
    SolveSet.insert(S);
    for (ProcId P : Members)
      for (ProcId Q : CG.callees(P))
        if (CG.scc(Q) != S)
          Stack.push_back(CG.scc(Q));
  }
  R.SolveSccs.assign(SolveSet.begin(), SolveSet.end());
  for (size_t S : R.SolveSccs)
    for (ProcId P : CG.sccMembers(S))
      R.SolveProcs.push_back(P);
  std::sort(R.SolveProcs.begin(), R.SolveProcs.end());
  return R;
}

SolveSetup shard::prepareSolve(Program &Prog, const TsContext &Ctx,
                               const ShardPlan &Plan,
                               const std::string &SpoolDir,
                               uint64_t ProgHash,
                               const std::set<unsigned> &DegradedShards,
                               const std::vector<size_t> &TargetSccs,
                               RelationalSolver<TsAnalysis> &Solver) {
  SegmentSource Source;
  if (!SpoolDir.empty())
    Source = [&SpoolDir, ProgHash](size_t S) {
      return tryLoadSegment(SpoolDir, S, ProgHash);
    };
  return prepareSolve(Prog, Ctx, Plan, Source, DegradedShards, TargetSccs,
                      Solver);
}

int shard::runWorker(const WorkerOptions &O, std::string *Err) {
  auto Fail = [Err](int Code, const std::string &What) {
    if (Err)
      *Err = What;
    return Code;
  };
  try {
    std::unique_ptr<Program> ProgPtr =
        parseProgramText(readWholeFile(O.ProgramPath));
    Program &Prog = *ProgPtr;
    if (O.TrackedClass.empty() && Prog.numSpecs() == 0)
      return Fail(WorkerExitUsage, "program declares no typestate spec");
    std::string TrackedName =
        O.TrackedClass.empty() ? Prog.symbols().text(Prog.spec(0).name())
                               : O.TrackedClass;
    Symbol Tracked = Prog.symbols().intern(TrackedName);
    if (!Prog.specFor(Tracked))
      return Fail(WorkerExitUsage,
                  "no typestate spec for class '" + TrackedName + "'");
    TsContext Ctx(Prog, Tracked);
    const CallGraph &CG = Ctx.callGraph();
    ShardPlan Plan = planShards(Prog, CG, O.NumShards);
    if (O.Shard >= Plan.NumShards)
      return Fail(WorkerExitUsage,
                  "shard " + std::to_string(O.Shard) + " out of range (plan has " +
                      std::to_string(Plan.NumShards) + ")");
    uint64_t Hash = programSpoolHash(Prog, TrackedName);

    obs::TraceRecorder &Rec = obs::TraceRecorder::instance();
    if (!O.TraceOut.empty()) {
      Rec.setProcessName("swift-shard-worker " + std::to_string(O.Shard) +
                         " inc " + std::to_string(O.Incarnation));
      Rec.start();
    }
    if (!O.SpoolDir.empty())
      writeHeartbeat(O.SpoolDir, O.Shard, static_cast<uint64_t>(getpid()),
                     O.Incarnation, UINT64_MAX);

    Budget Bud(O.MaxSteps, 1e18);
    Stats Stat;
    RelationalSolver<TsAnalysis> Solver(
        Ctx, Prog, CG, NoPruning,
        [](ProcId) -> const std::unordered_map<TsAbstractState, uint64_t> * {
          return nullptr;
        },
        Bud, Stat, DefaultMaxRelsPerPoint, /*CollectObservations=*/true,
        /*NumThreads=*/1);

    // Degraded inputs would leak into own summaries; the spool must only
    // ever hold clean-run bytes, so degraded-mode runs publish nothing.
    bool Publish = O.DegradedShards.empty() && !O.SpoolDir.empty();
    Solver.setSccObserver([&](const std::vector<ProcId> &Members) {
      size_t Scc = CG.scc(Members.front());
      if (Plan.ShardOfScc[Scc] != O.Shard)
        return; // recomputed on behalf of another shard: not ours to publish
      if (Publish) {
        if (SWIFT_FAILPOINT("worker.scc.solve"))
          throw std::runtime_error("injected worker fault (worker.scc.solve)");
        Segment Seg;
        Seg.ProgHash = Hash;
        Seg.Scc = Scc;
        for (ProcId P : Members)
          Seg.Procs.push_back(
              {Prog.symbols().text(Prog.proc(P).name()),
               serve::summaryToText(Prog, Solver.summary(P))});
        saveSegment(O.SpoolDir, Seg);
      }
      if (!O.SpoolDir.empty())
        writeHeartbeat(O.SpoolDir, O.Shard, static_cast<uint64_t>(getpid()),
                       O.Incarnation, Scc);
    });

    SolveSetup Setup =
        prepareSolve(Prog, Ctx, Plan, O.SpoolDir, Hash, O.DegradedShards,
                     Plan.ShardSccs[O.Shard], Solver);
    bool Finished = Solver.run(Setup.SolveProcs);

    if (!O.TraceOut.empty()) {
      Rec.stop();
      Rec.flushToFile(O.TraceOut); // advisory; failure must not fail the run
    }
    return Finished ? WorkerExitOk : WorkerExitBudget;
  } catch (const std::exception &E) {
    return Fail(WorkerExitFault, E.what());
  }
}
