//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "difftest/Reducer.h"

#include "ir/Dumper.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <vector>

using namespace swift;
using namespace swift::difftest;

namespace {

/// One candidate shrink, expressed against the current baseline program
/// and applied while re-rendering it to swift-ir text.
struct Mutation {
  std::set<ProcId> DropProcs;                       ///< Omit these bodies.
  std::set<std::pair<ProcId, NodeId>> NopNodes;     ///< Command -> nop.
  std::set<std::tuple<ProcId, NodeId, size_t>> DropEdges; ///< By succ index.
  std::map<std::pair<ProcId, Symbol>, Symbol> VarRename;  ///< Per-proc.
  std::map<Symbol, Symbol> FieldRename;                   ///< Global.
};

/// Renders \p Prog with \p Mut applied. Calls to dropped procedures become
/// nops; allocation sites renumber densely in emission order, so the text
/// always re-parses.
std::string renderMutated(const Program &Prog, const Mutation &Mut) {
  const SymbolTable &Syms = Prog.symbols();
  std::ostringstream OS;
  OS << "# swift-ir v1 (reduced)\n";

  for (size_t I = 0; I != Prog.numSpecs(); ++I) {
    const TypestateSpec &Spec = Prog.spec(I);
    OS << "typestate " << Syms.text(Spec.name()) << " {\n  states";
    for (size_t S = 0; S != Spec.numStates(); ++S)
      OS << " " << Syms.text(Spec.stateName(static_cast<TState>(S)));
    OS << "\n  init " << Syms.text(Spec.stateName(Spec.initState()))
       << "\n  error " << Syms.text(Spec.stateName(Spec.errorState()))
       << "\n";
    std::vector<Symbol> Methods;
    for (const auto &[M, Tr] : Spec.methods()) {
      (void)Tr;
      Methods.push_back(M);
    }
    std::sort(Methods.begin(), Methods.end(), [&](Symbol A, Symbol B) {
      return Syms.text(A) < Syms.text(B);
    });
    for (Symbol M : Methods) {
      OS << "  method " << Syms.text(M) << " =";
      for (TState To : Spec.transformer(M))
        OS << " " << Syms.text(Spec.stateName(To));
      OS << "\n";
    }
    OS << "}\n";
  }

  SiteId NextSite = 0;
  for (size_t PI = 0; PI != Prog.numProcs(); ++PI) {
    ProcId P = static_cast<ProcId>(PI);
    if (Mut.DropProcs.count(P))
      continue;
    const Procedure &Proc = Prog.proc(P);

    auto Var = [&](Symbol V) -> const std::string & {
      auto It = Mut.VarRename.find({P, V});
      return Syms.text(It == Mut.VarRename.end() ? V : It->second);
    };
    auto Field = [&](Symbol F) -> const std::string & {
      auto It = Mut.FieldRename.find(F);
      return Syms.text(It == Mut.FieldRename.end() ? F : It->second);
    };

    OS << "proc " << Syms.text(Proc.name()) << "(";
    for (size_t I = 0; I != Proc.params().size(); ++I)
      OS << (I ? " " : "") << Syms.text(Proc.params()[I]);
    OS << ") entry " << Proc.entry() << " exit " << Proc.exit()
       << " nodes " << Proc.numNodes() << " {\n";

    for (NodeId N = 0; N != Proc.numNodes(); ++N) {
      const Command &C = Proc.node(N).Cmd;
      OS << "  " << N << ": ";
      bool Nopped = Mut.NopNodes.count({P, N}) ||
                    (C.Kind == CmdKind::Call &&
                     Mut.DropProcs.count(C.Callee));
      if (Nopped) {
        OS << "nop";
      } else {
        switch (C.Kind) {
        case CmdKind::Nop:
          OS << "nop";
          break;
        case CmdKind::Alloc:
          OS << Var(C.Dst) << " = new " << Syms.text(C.Class) << " @"
             << NextSite++;
          break;
        case CmdKind::Copy:
          OS << Var(C.Dst) << " = " << Var(C.Src);
          break;
        case CmdKind::AssignNull:
          OS << Var(C.Dst) << " = null";
          break;
        case CmdKind::Load:
          OS << Var(C.Dst) << " = " << Var(C.Src) << "." << Field(C.Field);
          break;
        case CmdKind::Store:
          OS << Var(C.Dst) << "." << Field(C.Field) << " = " << Var(C.Src);
          break;
        case CmdKind::TsCall:
          OS << Var(C.Src) << "." << Syms.text(C.Method) << "()";
          break;
        case CmdKind::Call:
          if (C.Dst.isValid())
            OS << Var(C.Dst) << " = ";
          OS << "call " << Syms.text(Prog.proc(C.Callee).name()) << "(";
          for (size_t I = 0; I != C.Args.size(); ++I)
            OS << (I ? " " : "") << Var(C.Args[I]);
          OS << ")";
          break;
        }
      }
      OS << " ->";
      const std::vector<NodeId> &Succs = Proc.node(N).Succs;
      for (size_t I = 0; I != Succs.size(); ++I)
        if (!Mut.DropEdges.count({P, N, I}))
          OS << " " << Succs[I];
      OS << "\n";
    }
    OS << "}\n";
  }

  OS << "main " << Syms.text(Prog.proc(Prog.mainProc()).name()) << "\n";
  return OS.str();
}

/// The interpreter and the analyses both assume structured-ish CFGs: every
/// entry-reachable node can still reach the exit and never gets stuck.
/// Edge dropping can break that; such candidates are rejected outright.
bool cfgSane(const Program &Prog) {
  for (size_t PI = 0; PI != Prog.numProcs(); ++PI) {
    const Procedure &P = Prog.proc(static_cast<ProcId>(PI));
    std::vector<uint8_t> Fwd(P.numNodes(), 0);
    std::vector<NodeId> Work{P.entry()};
    Fwd[P.entry()] = 1;
    while (!Work.empty()) {
      NodeId N = Work.back();
      Work.pop_back();
      if (N != P.exit() && P.node(N).Succs.empty())
        return false; // stuck state
      for (NodeId S : P.node(N).Succs)
        if (!Fwd[S]) {
          Fwd[S] = 1;
          Work.push_back(S);
        }
    }
    if (!Fwd[P.exit()])
      return false;
    // Backward reachability from exit, restricted to forward-reachable
    // nodes: every reachable node must have a path to the exit.
    std::vector<std::vector<NodeId>> Preds(P.numNodes());
    for (NodeId N = 0; N != P.numNodes(); ++N)
      if (Fwd[N])
        for (NodeId S : P.node(N).Succs)
          Preds[S].push_back(N);
    std::vector<uint8_t> Bwd(P.numNodes(), 0);
    Work.push_back(P.exit());
    Bwd[P.exit()] = 1;
    while (!Work.empty()) {
      NodeId N = Work.back();
      Work.pop_back();
      for (NodeId Q : Preds[N])
        if (!Bwd[Q]) {
          Bwd[Q] = 1;
          Work.push_back(Q);
        }
    }
    for (NodeId N = 0; N != P.numNodes(); ++N)
      if (Fwd[N] && !Bwd[N])
        return false;
  }
  return true;
}

size_t countStmts(const Program &Prog) {
  size_t N = 0;
  for (size_t P = 0; P != Prog.numProcs(); ++P)
    for (const CfgNode &Node : Prog.proc(static_cast<ProcId>(P)).nodes())
      if (Node.Cmd.Kind != CmdKind::Nop)
        ++N;
  return N;
}

class Reducer {
public:
  Reducer(std::function<bool(const Program &)> Pred, size_t MaxRounds,
          size_t MaxRuns)
      : Pred(std::move(Pred)), MaxRounds(MaxRounds), MaxRuns(MaxRuns) {}

  ReduceResult run(const Program &Seed);

private:
  /// True if the candidate parses, is CFG-sane, and still satisfies the
  /// interestingness predicate. Counts one predicate run.
  bool stillFails(const std::string &Text,
                  std::unique_ptr<Program> &ParsedOut);
  /// Tries \p Mut against the baseline; on success installs the result as
  /// the new baseline.
  bool tryMutation(const Mutation &Mut);

  bool phaseDropProcs();
  bool phaseNopStmts();
  bool phaseDropEdges();
  bool phaseMergeVars();
  bool phaseMergeFields();

  bool budgetLeft() const { return OracleRuns < MaxRuns; }

  std::function<bool(const Program &)> Pred;
  size_t MaxRounds;
  size_t MaxRuns;
  std::unique_ptr<Program> Cur;
  std::string CurText;
  size_t OracleRuns = 0;
};

bool Reducer::stillFails(const std::string &Text,
                         std::unique_ptr<Program> &ParsedOut) {
  if (!budgetLeft())
    return false;
  std::unique_ptr<Program> P;
  try {
    P = parseProgramText(Text);
  } catch (const std::exception &) {
    return false;
  }
  if (!cfgSane(*P))
    return false;
  ++OracleRuns;
  if (Pred(*P)) {
    ParsedOut = std::move(P);
    return true;
  }
  return false;
}

bool Reducer::tryMutation(const Mutation &Mut) {
  std::string Text = renderMutated(*Cur, Mut);
  std::unique_ptr<Program> P;
  if (!stillFails(Text, P))
    return false;
  Cur = std::move(P);
  CurText = std::move(Text);
  return true;
}

// NOTE for all phases: a successful tryMutation REPLACES *Cur, so every
// Procedure reference and every Symbol captured from the old baseline is
// dead (re-parsing even re-interns symbols in a new table). Phases
// therefore rebuild their candidate list from Cur on every iteration and
// only keep a plain index across acceptances: after an acceptance the
// index stays (the candidate there was consumed), after a rejection it
// advances.

bool Reducer::phaseDropProcs() {
  bool Any = false;
  size_t Idx = 0;
  while (budgetLeft()) {
    std::vector<ProcId> Cands;
    for (size_t PI = 0; PI != Cur->numProcs(); ++PI)
      if (static_cast<ProcId>(PI) != Cur->mainProc())
        Cands.push_back(static_cast<ProcId>(PI));
    if (Idx >= Cands.size())
      break;
    Mutation M;
    M.DropProcs.insert(Cands[Idx]);
    if (tryMutation(M))
      Any = true;
    else
      ++Idx;
  }
  return Any;
}

bool Reducer::phaseNopStmts() {
  bool Any = false;
  auto Targets = [&] {
    std::vector<std::pair<ProcId, NodeId>> T;
    for (size_t PI = 0; PI != Cur->numProcs(); ++PI) {
      const Procedure &Proc = Cur->proc(static_cast<ProcId>(PI));
      for (NodeId N = 0; N != Proc.numNodes(); ++N)
        if (Proc.node(N).Cmd.Kind != CmdKind::Nop)
          T.emplace_back(static_cast<ProcId>(PI), N);
    }
    return T;
  };

  // ddmin-style: nop whole chunks of the statement list, halving the chunk
  // size when no chunk can be removed.
  std::vector<std::pair<ProcId, NodeId>> T = Targets();
  size_t Chunk = std::max<size_t>(1, T.size() / 2);
  while (budgetLeft() && !T.empty()) {
    bool Progress = false;
    for (size_t Start = 0; Start < T.size() && budgetLeft();
         Start += Chunk) {
      Mutation M;
      for (size_t I = Start; I < std::min(Start + Chunk, T.size()); ++I)
        M.NopNodes.insert(T[I]);
      if (tryMutation(M)) {
        Any = Progress = true;
        T = Targets();
        if (Start >= T.size())
          break;
      }
    }
    if (!Progress) {
      if (Chunk == 1)
        break;
      Chunk = std::max<size_t>(1, Chunk / 2);
    }
  }
  return Any;
}

bool Reducer::phaseDropEdges() {
  bool Any = false;
  size_t Idx = 0;
  while (budgetLeft()) {
    std::vector<std::tuple<ProcId, NodeId, size_t>> Cands;
    for (size_t PI = 0; PI != Cur->numProcs(); ++PI) {
      const Procedure &Proc = Cur->proc(static_cast<ProcId>(PI));
      for (NodeId N = 0; N != Proc.numNodes(); ++N)
        if (Proc.node(N).Succs.size() >= 2)
          for (size_t I = 0; I != Proc.node(N).Succs.size(); ++I)
            Cands.emplace_back(static_cast<ProcId>(PI), N, I);
    }
    if (Idx >= Cands.size())
      break;
    Mutation M;
    M.DropEdges.insert(Cands[Idx]);
    if (tryMutation(M))
      Any = true;
    else
      ++Idx;
  }
  return Any;
}

bool Reducer::phaseMergeVars() {
  bool Any = false;
  size_t Idx = 0;
  while (budgetLeft()) {
    std::vector<Mutation> Cands;
    for (size_t PI = 0; PI != Cur->numProcs(); ++PI) {
      ProcId P = static_cast<ProcId>(PI);
      const Procedure &Proc = Cur->proc(P);
      if (Proc.vars().empty())
        continue;
      Symbol Rep = Proc.vars().front();
      for (Symbol V : Proc.vars()) {
        if (V == Rep)
          continue;
        // Params stay: renaming them would duplicate header names.
        if (std::find(Proc.params().begin(), Proc.params().end(), V) !=
            Proc.params().end())
          continue;
        Mutation M;
        M.VarRename.emplace(std::pair<ProcId, Symbol>{P, V}, Rep);
        Cands.push_back(std::move(M));
      }
    }
    if (Idx >= Cands.size())
      break;
    if (tryMutation(Cands[Idx]))
      Any = true;
    else
      ++Idx;
  }
  return Any;
}

bool Reducer::phaseMergeFields() {
  bool Any = false;
  size_t Idx = 0;
  while (budgetLeft()) {
    std::set<Symbol> Fields;
    for (size_t PI = 0; PI != Cur->numProcs(); ++PI)
      for (const CfgNode &Node :
           Cur->proc(static_cast<ProcId>(PI)).nodes())
        if (Node.Cmd.Kind == CmdKind::Load ||
            Node.Cmd.Kind == CmdKind::Store)
          Fields.insert(Node.Cmd.Field);
    if (Fields.size() < 2)
      break;
    std::vector<Symbol> Cands(std::next(Fields.begin()), Fields.end());
    if (Idx >= Cands.size())
      break;
    Mutation M;
    M.FieldRename.emplace(Cands[Idx], *Fields.begin());
    if (tryMutation(M))
      Any = true;
    else
      ++Idx;
  }
  return Any;
}

ReduceResult Reducer::run(const Program &Seed) {
  CurText = programToText(Seed);
  // Re-parse the seed so Cur is owned here and the baseline went through
  // the same print/parse pipe every candidate does.
  std::unique_ptr<Program> P;
  if (!stillFails(CurText, P)) {
    // The input does not (reproducibly) fail the target check; return it
    // unreduced rather than shrinking toward a different bug.
    ReduceResult R;
    R.Text = CurText;
    R.NumProcs = Seed.numProcs();
    R.NumStmts = countStmts(Seed);
    R.OracleRuns = OracleRuns;
    return R;
  }
  Cur = std::move(P);

  for (size_t Round = 0; Round != MaxRounds && budgetLeft(); ++Round) {
    bool Any = false;
    Any |= phaseDropProcs();
    Any |= phaseNopStmts();
    Any |= phaseDropEdges();
    Any |= phaseMergeVars();
    Any |= phaseMergeFields();
    if (!Any)
      break;
  }

  ReduceResult R;
  R.Text = CurText;
  R.NumProcs = Cur->numProcs();
  R.NumStmts = countStmts(*Cur);
  R.OracleRuns = OracleRuns;
  return R;
}

} // namespace

ReduceResult swift::difftest::reduceViolation(const Program &Prog,
                                              CheckKind Kind,
                                              const ReduceOptions &Opts) {
  return reducePredicate(
      Prog,
      [&](const Program &Cand) {
        OracleResult R = runOracle(Cand, Opts.Oracle);
        for (const Violation &V : R.Violations)
          if (V.Kind == Kind)
            return true;
        return false;
      },
      Opts.MaxRounds, Opts.MaxOracleRuns);
}

ReduceResult swift::difftest::reducePredicate(
    const Program &Prog,
    const std::function<bool(const Program &)> &StillFails,
    size_t MaxRounds, size_t MaxRuns) {
  Reducer R(StillFails, MaxRounds, MaxRuns);
  return R.run(Prog);
}
