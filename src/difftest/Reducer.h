//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging reducer for oracle violations: given a program on which
/// the differential oracle fails, it greedily shrinks the program — drop
/// whole procedures, nop statements in ddmin-style chunks, prune branch
/// and loop edges, and merge the variable/field pools — re-checking after
/// every candidate that the oracle still reports a violation of the same
/// kind. Candidates are produced by re-rendering the program in the
/// swift-ir text format (allocation sites renumber densely in the
/// process) and re-parsing, so every accepted step is a well-formed,
/// self-contained reproducer.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_DIFFTEST_REDUCER_H
#define SWIFT_DIFFTEST_REDUCER_H

#include "difftest/Oracle.h"
#include "ir/Program.h"

#include <cstddef>
#include <functional>
#include <string>

namespace swift {
namespace difftest {

struct ReduceOptions {
  /// Oracle configuration used by the interestingness test. Keep the
  /// limits small: the oracle runs once per candidate.
  OracleOptions Oracle;
  /// Passes over all mutation phases; each pass runs every phase to a
  /// greedy fixpoint, so a couple of rounds normally suffice.
  size_t MaxRounds = 4;
  /// Hard cap on oracle evaluations (the expensive part).
  size_t MaxOracleRuns = 400;
};

struct ReduceResult {
  std::string Text;     ///< Reduced program, swift-ir v1 format.
  size_t NumProcs = 0;  ///< Procedures in the reduced program.
  size_t NumStmts = 0;  ///< Non-nop commands in the reduced program.
  size_t OracleRuns = 0;
};

/// Shrinks \p Prog while runOracle keeps reporting a violation of kind
/// \p Kind. \p Prog itself must exhibit such a violation; if it does not,
/// the input is returned unreduced.
ReduceResult reduceViolation(const Program &Prog, CheckKind Kind,
                             const ReduceOptions &Opts);

/// The generic core behind reduceViolation: shrinks \p Prog while
/// \p StillFails keeps returning true on the candidate. The predicate is
/// the expensive part; \p MaxRuns caps its evaluations and \p MaxRounds
/// the passes over the mutation phases. Candidates that fail to re-parse
/// or are not CFG-sane are rejected without consuming a run. Used by the
/// per-domain oracle campaign, whose interestingness test is a domain
/// check rather than the typestate oracle.
ReduceResult
reducePredicate(const Program &Prog,
                const std::function<bool(const Program &)> &StillFails,
                size_t MaxRounds = 4, size_t MaxRuns = 400);

} // namespace difftest
} // namespace swift

#endif // SWIFT_DIFFTEST_REDUCER_H
