//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "difftest/Difftest.h"

#include "ir/Dumper.h"
#include "support/AtomicFile.h"
#include "support/Timer.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

using namespace swift;
using namespace swift::difftest;

FuzzConfig swift::difftest::fuzzConfigForSeed(uint64_t Seed) {
  FuzzConfig FC;
  FC.Seed = Seed;
  FC.NumProcs = 2 + Seed % 5;        // 2..6 procedures besides main
  FC.StmtsPerProc = 6 + Seed % 11;   // 6..16
  FC.NumVars = 3 + Seed % 3;         // 3..5
  FC.NumFields = 1 + Seed % 2;       // 1..2
  FC.MaxDepth = 1 + Seed % 3;        // 1..3
  return FC;
}

std::string swift::difftest::writeReproducer(const std::string &OutDir,
                                             uint64_t Seed,
                                             const Violation &V,
                                             const std::string &ProgramText) {
  std::error_code EC;
  std::filesystem::create_directories(OutDir, EC);
  if (EC)
    return "";
  std::string Path =
      OutDir + "/seed" + std::to_string(Seed) + ".swiftir";
  std::ostringstream OS;
  OS << "# swift-difftest reproducer\n";
  OS << "# violation: " << checkKindName(V.Kind) << " config=" << V.Config
     << "\n";
  OS << "# detail: " << V.Detail << "\n";
  OS << "# fuzz seed: " << Seed << "\n";
  OS << ProgramText;
  // Atomic + write/flush/close-checked: a reproducer that exists is
  // complete, and a failed write never leaves a half-written decoy.
  try {
    writeFileAtomic(Path, OS.str(), "repro.save");
  } catch (const std::exception &) {
    return "";
  }
  return Path;
}

OracleResult swift::difftest::replayFile(const std::string &Path,
                                         const OracleOptions &Opts) {
  std::ifstream IS(Path);
  if (!IS)
    throw std::runtime_error("cannot open '" + Path + "'");
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  std::unique_ptr<Program> Prog = parseProgramText(Buf.str());
  return runOracle(*Prog, Opts);
}

CampaignResult swift::difftest::runCampaign(const CampaignOptions &Opts,
                                            std::ostream &Log) {
  CampaignResult Res;
  Timer Wall;

  for (uint64_t Seed = Opts.FirstSeed;
       Seed != Opts.FirstSeed + Opts.NumSeeds; ++Seed) {
    if (Wall.seconds() > Opts.BudgetSeconds) {
      Res.StoppedOnBudget = true;
      break;
    }
    std::unique_ptr<Program> Prog =
        generateFuzzProgram(fuzzConfigForSeed(Seed));
    OracleOptions OO = Opts.Oracle;
    OO.InterpSeed = Seed * 1013 + 1; // decorrelate from the fuzz seed
    OracleResult OR = runOracle(*Prog, OO);
    ++Res.SeedsRun;
    if (OR.ReferenceTimedOut)
      ++Res.ExhaustedSeeds;
    if (OR.clean())
      continue;

    SeedReport Rep;
    Rep.Seed = Seed;
    Rep.First = OR.Violations.front();
    Rep.NumViolations = OR.Violations.size();
    Log << "seed " << Seed << ": " << OR.Violations.size()
        << " violation(s); first: [" << checkKindName(Rep.First.Kind)
        << "] " << Rep.First.Config << ": " << Rep.First.Detail << "\n";

    std::string Text;
    if (Opts.ReduceViolations) {
      ReduceOptions RO = Opts.Reduce;
      RO.Oracle = OO;
      ReduceResult RR = reduceViolation(*Prog, Rep.First.Kind, RO);
      Text = std::move(RR.Text);
      Rep.ReducedProcs = RR.NumProcs;
      Rep.ReducedStmts = RR.NumStmts;
      Log << "  reduced to " << RR.NumProcs << " proc(s), " << RR.NumStmts
          << " stmt(s) in " << RR.OracleRuns << " oracle runs\n";
    } else {
      Text = programToText(*Prog);
      Rep.ReducedProcs = Prog->numProcs();
    }

    if (!Opts.OutDir.empty()) {
      Rep.ReproPath = writeReproducer(Opts.OutDir, Seed, Rep.First, Text);
      if (!Rep.ReproPath.empty())
        Log << "  reproducer: " << Rep.ReproPath << "\n";
      else
        Log << "  failed to write reproducer under " << Opts.OutDir << "\n";
    }
    Res.BadSeeds.push_back(std::move(Rep));
  }
  return Res;
}
