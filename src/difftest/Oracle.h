//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-testing oracle: runs the concrete interpreter as
/// ground truth and the whole analysis-mode matrix (TD, pure BU, SWIFT
/// sync/async at several (k, theta), thread counts, manifest on/off) on
/// one program, then checks every relation the paper guarantees:
///
///  * Soundness — every allocation site that concretely reaches the error
///    state is reported by every complete manifest-on run.
///  * TD coincidence (Theorem 3.1) — SWIFT's error sites and main-exit
///    states equal TD's at every (k, theta, threads, async).
///  * Error-point containment — a SWIFT error point is a TD error point
///    unless it sits at a call command (the observation manifest reports
///    errors inside summary-served callees at the serving call site).
///  * BU agreement — the unpruned bottom-up analysis, instantiated on the
///    initial state, matches TD's error sites and main-exit states.
///  * Manifest-off ablation — value results still coincide; error sites
///    may only under-approximate TD's, never over-approximate.
///  * Thread determinism — synchronous runs differing only in worker
///    count are identical in every result field.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_DIFFTEST_ORACLE_H
#define SWIFT_DIFFTEST_ORACLE_H

#include "ir/Program.h"
#include "typestate/Runner.h"

#include <set>
#include <string>
#include <vector>

namespace swift {
namespace difftest {

enum class CheckKind {
  Soundness,
  TdCoincidence,
  ErrorPointSubset,
  BuAgreement,
  ManifestOff,
  ThreadDeterminism,
  /// Budget-limited governed runs return a sound subset: partial error
  /// sites are TD error sites, partial verdicts never claim Proved for a
  /// tracked-but-unresolved site, and a governed run that completes
  /// coincides with TD exactly.
  PartialSoundness,
  /// A run checkpointed at budget exhaustion and resumed (through a full
  /// checkpoint-text round trip) with an unlimited budget is bit-identical
  /// to the uninterrupted run — summaries, relations, error sites, error
  /// points, and main-exit states.
  CheckpointResume,
  /// The incremental serve engine, replaying a deterministic sequence of
  /// procedure-replacement edits with dependency-driven summary reuse,
  /// ends with exactly the error sites and per-site verdicts of a
  /// from-scratch solve of the final program (and its initial solve
  /// coincides with the TD reference).
  IncrementalCoincidence,
  /// The sharded pure-BU pipeline is shard-count invariant: K in
  /// {1, 2, 4} produce identical error sites, error points, main-exit
  /// states, and verdicts, all coinciding with the TD reference's error
  /// sites; and a run with a shard forced into permanent failure stays
  /// sound — its errors are TD errors and no tracked site whose
  /// resolution touched a degraded summary is claimed Proved.
  ShardInvariance,
};

const char *checkKindName(CheckKind K);

/// One oracle failure: which guarantee broke, on which configuration.
struct Violation {
  CheckKind Kind;
  std::string Config; ///< runAllConfigs name, e.g. "swift/k1/th2/async".
  std::string Detail;
};

struct OracleOptions {
  /// Budget per analysis run. A run that times out is skipped by every
  /// check rather than reported (timeouts are resource facts, not bugs).
  RunLimits Limits{2'000'000, 10.0};
  /// Concrete interpreter schedules unioned into the ground truth.
  unsigned Schedules = 8;
  uint64_t InterpSeed = 1;
  uint64_t InterpMaxSteps = 20'000;
  AllConfigsOptions Configs;
  /// Typestate class under verification; empty selects the program's
  /// first spec (fuzz programs declare exactly one, "File").
  std::string TrackedClass;
  /// Run the governed partial-soundness checks (budget-limited runs at
  /// fractions of the reference run's step count).
  bool CheckPartial = true;
  /// Run the checkpoint/resume bit-identity check.
  bool CheckCheckpoint = true;
  /// Run the incremental-vs-from-scratch edit-replay check.
  bool CheckIncremental = true;
  /// Edits replayed per program by the incremental check.
  unsigned IncrementalEdits = 3;
  /// Run the shard-count-invariance and forced-degradation checks.
  bool CheckShard = true;
};

struct OracleResult {
  std::vector<Violation> Violations;
  std::set<SiteId> ConcreteErrors;
  unsigned RunsDone = 0;
  unsigned RunsTimedOut = 0;
  /// The TD reference run itself exhausted its budget: the checks needing
  /// a completed reference (coincidence, partial-soundness,
  /// checkpoint-resume) were skipped, not failed. Tools report such runs
  /// with a distinct resource-exhausted exit code.
  bool ReferenceTimedOut = false;
  bool clean() const { return Violations.empty(); }
};

/// Runs the full matrix and all checks on \p Prog. Throws
/// std::runtime_error if the program declares no typestate spec.
OracleResult runOracle(const Program &Prog, const OracleOptions &Opts);

} // namespace difftest
} // namespace swift

#endif // SWIFT_DIFFTEST_ORACLE_H
