//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-testing campaign: generate fuzz programs over a range
/// of seeds (reusing genprog's chaotic fuzzer with per-seed size knobs),
/// run the oracle on each, and on a violation reduce the program and write
/// a self-contained reproducer — the swift-ir text plus the violation
/// header — under an output directory. Reproducers replay with
/// swift-difftest --replay=FILE or via the tests/corpus ctest target.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_DIFFTEST_DIFFTEST_H
#define SWIFT_DIFFTEST_DIFFTEST_H

#include "difftest/Oracle.h"
#include "difftest/Reducer.h"
#include "genprog/Fuzzer.h"

#include <ostream>
#include <string>
#include <vector>

namespace swift {
namespace difftest {

struct CampaignOptions {
  uint64_t FirstSeed = 1;
  uint64_t NumSeeds = 50;
  OracleOptions Oracle;
  ReduceOptions Reduce;
  bool ReduceViolations = true;
  /// Where reproducers are written; created if missing. Empty disables
  /// writing.
  std::string OutDir = "results/repros";
  /// Soft wall-clock cap for the whole campaign; the seed loop stops when
  /// exceeded (the seed in flight finishes).
  double BudgetSeconds = 1e18;
};

struct SeedReport {
  uint64_t Seed = 0;
  Violation First;              ///< First violation on this seed.
  size_t NumViolations = 0;
  std::string ReproPath;        ///< Empty if writing was disabled/failed.
  size_t ReducedProcs = 0;
  size_t ReducedStmts = 0;
};

struct CampaignResult {
  uint64_t SeedsRun = 0;
  std::vector<SeedReport> BadSeeds;
  bool StoppedOnBudget = false;
  /// Seeds whose TD reference run exhausted its budget: their reference-
  /// dependent checks were skipped (not failed). A campaign with such
  /// seeds and no violations is clean but resource-limited; tools report
  /// it with a distinct exit code.
  uint64_t ExhaustedSeeds = 0;
  bool clean() const { return BadSeeds.empty(); }
};

/// The per-seed fuzzer shape: sizes cycle with the seed so the campaign
/// covers small dense programs and wider call graphs alike.
FuzzConfig fuzzConfigForSeed(uint64_t Seed);

/// Runs the campaign, logging one line per violating seed to \p Log.
CampaignResult runCampaign(const CampaignOptions &Opts, std::ostream &Log);

/// Writes a self-contained reproducer (violation header as comments +
/// swift-ir text) and returns its path; empty string on I/O failure.
std::string writeReproducer(const std::string &OutDir, uint64_t Seed,
                            const Violation &V,
                            const std::string &ProgramText);

/// Replays a reproducer (or any swift-ir file): parses it and runs the
/// oracle. Throws std::runtime_error on unreadable/malformed input.
OracleResult replayFile(const std::string &Path,
                        const OracleOptions &Opts);

} // namespace difftest
} // namespace swift

#endif // SWIFT_DIFFTEST_DIFFTEST_H
