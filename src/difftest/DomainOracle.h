//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-domain differential oracle: the client-domain counterpart of
/// difftest/Oracle.h. For one registered analysis domain (taint,
/// nullderef, reachdefs, interval) it runs the domain's concrete witness
/// machine as ground truth and the solver-mode matrix (pure TD reference,
/// SWIFT at several (k, theta, threads), pure BU at several thread
/// counts), then checks:
///
///  * Soundness — every witness report site is reported by the TD
///    reference, and (when a schedule completes through main's exit) the
///    witness exit facts are a subset of the reference's. Coincidence
///    transfers this to every other complete configuration.
///  * TD coincidence (Theorem 3.1) — SWIFT's report sites and main-exit
///    facts equal the reference's at every (k, theta, threads).
///  * BU agreement — the unpruned bottom-up run, instantiated on Lambda,
///    matches the reference's report sites and main-exit facts.
///  * Thread determinism — runs differing only in worker count agree in
///    report sites, exit facts, and summary/relation counts.
///
/// Reuses difftest's Violation/CheckKind vocabulary and CampaignResult
/// shape, so reproducers, reduction, and tooling handle both oracles
/// uniformly; violating campaign seeds reduce through reducePredicate with
/// this oracle as the interestingness test.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_DIFFTEST_DOMAINORACLE_H
#define SWIFT_DIFFTEST_DOMAINORACLE_H

#include "clients/Registry.h"
#include "difftest/Difftest.h"
#include "difftest/Oracle.h"
#include "ir/Program.h"

#include <ostream>
#include <string>
#include <vector>

namespace swift {
namespace difftest {

struct DomainOracleOptions {
  /// Budget per analysis run; timed-out runs are skipped, not failed.
  clients::DomainRunLimits Limits{2'000'000, 10.0};
  /// Concrete witness schedules unioned into the ground truth.
  unsigned Schedules = 8;
  uint64_t InterpSeed = 1;
  uint64_t InterpMaxSteps = 20'000;
};

struct DomainOracleResult {
  std::vector<Violation> Violations;
  unsigned RunsDone = 0;
  unsigned RunsTimedOut = 0;
  /// The TD reference itself timed out; every check was skipped.
  bool ReferenceTimedOut = false;
  bool clean() const { return Violations.empty(); }
};

/// Runs the matrix and all checks for \p Domain on \p Prog. Throws
/// std::runtime_error for an unregistered domain.
DomainOracleResult runDomainOracle(const std::string &Domain,
                                   const Program &Prog,
                                   const DomainOracleOptions &Opts);

struct DomainCampaignOptions {
  std::string Domain = "taint";
  uint64_t FirstSeed = 1;
  uint64_t NumSeeds = 40;
  DomainOracleOptions Oracle;
  bool ReduceViolations = true;
  size_t ReduceMaxRounds = 4;
  size_t ReduceMaxRuns = 200;
  /// Where reproducers are written; empty disables writing.
  std::string OutDir = "results/repros";
  double BudgetSeconds = 1e18;
};

/// Fuzz-campaign over \p Opts.NumSeeds seeds (the same fuzzConfigForSeed
/// shapes as the typestate campaign), one line per violating seed to
/// \p Log. Violation config strings (and thus reproducer headers) begin
/// with the domain name ("taint/swift/k1/theta2/th4"), so a reproducer
/// records which domain to replay it under.
CampaignResult runDomainCampaign(const DomainCampaignOptions &Opts,
                                 std::ostream &Log);

/// Replays a reproducer (or any swift-ir file) under \p Domain's oracle.
/// Throws std::runtime_error on unreadable/malformed input.
DomainOracleResult replayDomainFile(const std::string &Path,
                                    const std::string &Domain,
                                    const DomainOracleOptions &Opts);

} // namespace difftest
} // namespace swift

#endif // SWIFT_DIFFTEST_DOMAINORACLE_H
