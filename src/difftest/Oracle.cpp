//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "difftest/Oracle.h"

#include "concrete/Interpreter.h"
#include "framework/Tabulation.h"
#include "govern/Checkpoint.h"
#include "ir/Dumper.h"
#include "serve/EditGen.h"
#include "serve/Engine.h"
#include "shard/Sharded.h"
#include "typestate/Context.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

using namespace swift;
using namespace swift::difftest;

const char *swift::difftest::checkKindName(CheckKind K) {
  switch (K) {
  case CheckKind::Soundness:
    return "soundness";
  case CheckKind::TdCoincidence:
    return "td-coincidence";
  case CheckKind::ErrorPointSubset:
    return "error-point-subset";
  case CheckKind::BuAgreement:
    return "bu-agreement";
  case CheckKind::ManifestOff:
    return "manifest-off";
  case CheckKind::ThreadDeterminism:
    return "thread-determinism";
  case CheckKind::PartialSoundness:
    return "partial-soundness";
  case CheckKind::CheckpointResume:
    return "checkpoint-resume";
  case CheckKind::IncrementalCoincidence:
    return "incremental-coincidence";
  case CheckKind::ShardInvariance:
    return "shard-invariance";
  }
  return "?";
}

namespace {

std::string siteSetStr(const std::set<SiteId> &S) {
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (SiteId Id : S) {
    OS << (First ? "" : " ") << "@" << Id;
    First = false;
  }
  OS << "}";
  return OS.str();
}

std::string errorPointStr(const Program &Prog, const TsError &E) {
  std::ostringstream OS;
  OS << "@" << E.Site << " at "
     << Prog.symbols().text(Prog.proc(E.Proc).name()) << ":" << E.Node;
  return OS.str();
}

std::string mainExitStr(const Program &Prog,
                        const std::set<TsAbstractState> &S) {
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (const TsAbstractState &St : S) {
    OS << (First ? "" : "; ") << St.str(Prog);
    First = false;
  }
  OS << "}";
  return OS.str();
}

/// The first few elements of A \ B, for readable diffs.
template <typename T>
std::vector<T> setMinus(const std::set<T> &A, const std::set<T> &B,
                        size_t Limit = 4) {
  std::vector<T> Out;
  for (const T &X : A) {
    if (!B.count(X)) {
      Out.push_back(X);
      if (Out.size() == Limit)
        break;
    }
  }
  return Out;
}

bool isCallNode(const Program &Prog, ProcId P, NodeId N) {
  return Prog.proc(P).node(N).Cmd.Kind == CmdKind::Call;
}

class OracleRun {
public:
  OracleRun(const Program &Prog, const OracleOptions &Opts)
      : Prog(Prog), Opts(Opts) {}

  OracleResult run();

private:
  void addViolation(CheckKind Kind, const std::string &Config,
                    std::string Detail) {
    Res.Violations.push_back(Violation{Kind, Config, std::move(Detail)});
  }

  void checkSoundness(const TsConfigRun &R);
  void checkAgainstTd(const TsConfigRun &R, const TsRunResult &Td);
  void checkThreadDeterminism(const std::vector<TsConfigRun> &Runs);
  void checkPartialSoundness(const TsContext &Ctx, const TsRunResult &Td);
  void checkCheckpointResume(const TsContext &Ctx, Symbol Tracked,
                             const TsRunResult &Td);
  void checkIncremental(Symbol Tracked, const TsRunResult &Td);
  void checkShardInvariance(const TsContext &Ctx, Symbol Tracked,
                            const TsRunResult &Td);

  const Program &Prog;
  const OracleOptions &Opts;
  OracleResult Res;
};

void OracleRun::checkSoundness(const TsConfigRun &R) {
  std::vector<SiteId> Missed =
      setMinus(Res.ConcreteErrors, R.Result.ErrorSites);
  if (Missed.empty())
    return;
  std::ostringstream OS;
  OS << "concretely erroring sites not reported:";
  for (SiteId S : Missed)
    OS << " @" << S;
  OS << "; reported " << siteSetStr(R.Result.ErrorSites);
  addViolation(CheckKind::Soundness, R.Name, OS.str());
}

void OracleRun::checkAgainstTd(const TsConfigRun &R, const TsRunResult &Td) {
  const TsRunResult &Rr = R.Result;

  if (R.Kind == TsConfigRun::Mode::Bu) {
    if (Rr.ErrorSites != Td.ErrorSites)
      addViolation(CheckKind::BuAgreement, R.Name,
                   "error sites " + siteSetStr(Rr.ErrorSites) +
                       " != td " + siteSetStr(Td.ErrorSites));
    if (Rr.MainExit != Td.MainExit)
      addViolation(CheckKind::BuAgreement, R.Name,
                   "main-exit states " + mainExitStr(Prog, Rr.MainExit) +
                       " != td " + mainExitStr(Prog, Td.MainExit));
    return;
  }

  if (!R.Swift.ObservationManifest) {
    // Ablation: the manifest only affects error *reporting*; value results
    // must still coincide, and reporting may only under-approximate.
    if (Rr.MainExit != Td.MainExit)
      addViolation(CheckKind::ManifestOff, R.Name,
                   "main-exit states " + mainExitStr(Prog, Rr.MainExit) +
                       " != td " + mainExitStr(Prog, Td.MainExit));
    std::vector<SiteId> Extra = setMinus(Rr.ErrorSites, Td.ErrorSites);
    if (!Extra.empty()) {
      std::ostringstream OS;
      OS << "error sites not reported by td:";
      for (SiteId S : Extra)
        OS << " @" << S;
      addViolation(CheckKind::ManifestOff, R.Name, OS.str());
    }
    return;
  }

  // Theorem 3.1: exact coincidence of error sites and main-exit states.
  if (Rr.ErrorSites != Td.ErrorSites)
    addViolation(CheckKind::TdCoincidence, R.Name,
                 "error sites " + siteSetStr(Rr.ErrorSites) + " != td " +
                     siteSetStr(Td.ErrorSites));
  if (Rr.MainExit != Td.MainExit)
    addViolation(CheckKind::TdCoincidence, R.Name,
                 "main-exit states " + mainExitStr(Prog, Rr.MainExit) +
                     " != td " + mainExitStr(Prog, Td.MainExit));

  // Error points: SWIFT may move a point to the serving call site, but a
  // point at a non-call node must be one TD computed too.
  for (const TsError &E : Rr.ErrorPoints) {
    if (Td.ErrorPoints.count(E) || isCallNode(Prog, E.Proc, E.Node))
      continue;
    addViolation(CheckKind::ErrorPointSubset, R.Name,
                 "error point " + errorPointStr(Prog, E) +
                     " is at a non-call node and td never computed it");
  }
}

void OracleRun::checkThreadDeterminism(const std::vector<TsConfigRun> &Runs) {
  // Group synchronous runs by everything except the worker count; results
  // must be bit-identical within a group. Async runs are excluded: the
  // summary install point depends on scheduling, so summary counts and
  // error-point placement may differ run to run (sites and exit states may
  // not, which checkAgainstTd already enforces).
  std::map<std::string, const TsConfigRun *> Rep;
  for (const TsConfigRun &R : Runs) {
    if (R.Result.Timeout)
      continue;
    std::string Key;
    if (R.Kind == TsConfigRun::Mode::Bu)
      Key = "bu";
    else if (R.Kind == TsConfigRun::Mode::Swift && !R.Swift.AsyncBu)
      Key = "swift/k" + std::to_string(R.Swift.K) + "/th" +
            std::to_string(R.Swift.Theta) +
            (R.Swift.ObservationManifest ? "" : "/nomanifest");
    else
      continue;

    auto [It, Inserted] = Rep.emplace(Key, &R);
    if (Inserted)
      continue;
    const TsConfigRun &First = *It->second;
    const TsRunResult &A = First.Result, &B = R.Result;
    auto Mismatch = [&](const char *What) {
      addViolation(CheckKind::ThreadDeterminism, R.Name,
                   std::string(What) + " differs from " + First.Name);
    };
    if (A.ErrorSites != B.ErrorSites)
      Mismatch("error sites");
    if (A.ErrorPoints != B.ErrorPoints)
      Mismatch("error points");
    if (A.MainExit != B.MainExit)
      Mismatch("main-exit states");
    if (A.TdSummaries != B.TdSummaries ||
        A.TdSummariesPerProc != B.TdSummariesPerProc)
      Mismatch("td-summary counts");
    if (A.BuRelations != B.BuRelations)
      Mismatch("bu-relation counts");
  }
}

/// Budget-limited governed runs at fractions of the reference run's step
/// count must return sound subsets: partial error sites are TD error
/// sites, partial verdicts never claim Proved for an unresolved tracked
/// site, and a governed run that happens to complete coincides with TD.
void OracleRun::checkPartialSoundness(const TsContext &Ctx,
                                      const TsRunResult &Td) {
  struct Probe {
    const char *Name;
    SwiftRunConfig Config;
    uint64_t MaxSteps;
  };
  uint64_t Quarter = std::max<uint64_t>(20, Td.Steps / 4);
  uint64_t Half = std::max<uint64_t>(20, Td.Steps / 2);
  SwiftRunConfig TdCfg;
  TdCfg.K = NoBuTrigger;
  TdCfg.Theta = 1;
  SwiftRunConfig HybridCfg;
  HybridCfg.K = 1;
  HybridCfg.Theta = 1;
  const Probe Probes[] = {
      {"governed-td/quarter", TdCfg, Quarter},
      {"governed-td/half", TdCfg, Half},
      {"governed-swift/half", HybridCfg, Half},
  };

  for (const Probe &P : Probes) {
    GovernedRunOptions GO;
    GO.Config = P.Config;
    GO.Limits.MaxSteps = P.MaxSteps;
    TsGovernedResult G = runTypestateGoverned(Ctx, GO);

    // Partial or complete, reported error sites must be TD error sites.
    std::vector<SiteId> Extra = setMinus(G.Run.ErrorSites, Td.ErrorSites);
    if (!Extra.empty()) {
      std::ostringstream OS;
      OS << "partial run reports error sites td does not:";
      for (SiteId S : Extra)
        OS << " @" << S;
      addViolation(CheckKind::PartialSoundness, P.Name, OS.str());
    }

    for (uint32_t S = 0; S != G.Verdicts.size(); ++S) {
      TsVerdict V = G.Verdicts[S];
      if (V == TsVerdict::ErrorReported && !Td.ErrorSites.count(S))
        addViolation(CheckKind::PartialSoundness, P.Name,
                     "verdict for @" + std::to_string(S) +
                         " is error but td never reports it");
      if (V == TsVerdict::Proved && G.Partial && Ctx.isTrackedSite(S))
        addViolation(CheckKind::PartialSoundness, P.Name,
                     "partial run claims Proved for tracked site @" +
                         std::to_string(S));
      if (V == TsVerdict::Proved && !G.Partial && Td.ErrorSites.count(S))
        addViolation(CheckKind::PartialSoundness, P.Name,
                     "complete governed run claims Proved for @" +
                         std::to_string(S) + " but td reports it");
    }

    if (!G.Partial) {
      // A completed governed run is an ordinary run; full coincidence.
      if (G.Run.ErrorSites != Td.ErrorSites)
        addViolation(CheckKind::PartialSoundness, P.Name,
                     "complete governed run's error sites " +
                         siteSetStr(G.Run.ErrorSites) + " != td " +
                         siteSetStr(Td.ErrorSites));
      if (G.Run.MainExit != Td.MainExit)
        addViolation(CheckKind::PartialSoundness, P.Name,
                     "complete governed run's main-exit states " +
                         mainExitStr(Prog, G.Run.MainExit) + " != td " +
                         mainExitStr(Prog, Td.MainExit));
    }
  }
}

/// Exhaust a governed TD run at half the reference step count, serialize
/// the checkpoint, parse it back, resume with an unlimited budget, and
/// demand bit-identity with the uninterrupted reference in every result
/// field.
void OracleRun::checkCheckpointResume(const TsContext &Ctx, Symbol Tracked,
                                      const TsRunResult &Td) {
  const char *Name = "checkpoint-resume/td-half";
  SwiftRunConfig TdCfg;
  TdCfg.K = NoBuTrigger;
  TdCfg.Theta = 1;

  TsTabSnapshot Snap;
  GovernedRunOptions GO;
  GO.Config = TdCfg;
  GO.Limits.MaxSteps = std::max<uint64_t>(20, Td.Steps / 2);
  GO.CheckpointOut = &Snap;
  TsGovernedResult G = runTypestateGoverned(Ctx, GO);

  if (!G.Partial) {
    // Tiny program: nothing was checkpointed, the run just completed —
    // the coincidence half of the contract still applies.
    if (G.Run.ErrorSites != Td.ErrorSites || G.Run.MainExit != Td.MainExit)
      addViolation(CheckKind::CheckpointResume, Name,
                   "governed run completed under the limited budget but "
                   "does not coincide with td");
    return;
  }

  // Serialize, parse, and resume on the *parsed* program — the round trip
  // itself is under test.
  TsCheckpoint C;
  C.Config = TdCfg;
  C.TrackedClass = Prog.symbols().text(Tracked);
  C.StepsConsumed = Snap.StepsConsumed;
  C.Snapshot = std::move(Snap);

  ParsedCheckpoint PC;
  try {
    PC = parseCheckpointText(checkpointToText(Prog, C));
  } catch (const std::exception &E) {
    addViolation(CheckKind::CheckpointResume, Name,
                 std::string("checkpoint text round trip failed: ") +
                     E.what());
    return;
  }

  TsContext ResumedCtx(*PC.Prog, PC.Prog->symbols().intern(
                                     PC.Checkpoint.TrackedClass));
  GovernedRunOptions RO;
  RO.Config = PC.Checkpoint.Config;
  RO.ResumeFrom = &PC.Checkpoint.Snapshot;
  TsGovernedResult R = runTypestateGoverned(ResumedCtx, RO);

  if (R.Partial) {
    addViolation(CheckKind::CheckpointResume, Name,
                 "resumed run with unlimited budget did not complete");
    return;
  }
  auto Mismatch = [&](const char *What, const std::string &Detail) {
    addViolation(CheckKind::CheckpointResume, Name,
                 std::string(What) + " of resumed run differs from the "
                                     "uninterrupted run: " +
                     Detail);
  };
  if (R.Run.ErrorSites != Td.ErrorSites)
    Mismatch("error sites", siteSetStr(R.Run.ErrorSites) + " != " +
                                siteSetStr(Td.ErrorSites));
  if (R.Run.ErrorPoints != Td.ErrorPoints)
    Mismatch("error points", "set contents differ");
  // The resumed run lives in the re-parsed program's symbol-id space:
  // site, proc, and node ids survive the checkpoint text round trip by
  // construction, but symbols re-intern in textual order, which need not
  // match the original program's interning order (a generator-built
  // program interns in generation order). Abstract states carry access
  // paths — Symbols — so they must be compared by rendered text through
  // each run's own symbol table; comparing raw ids flags identical states
  // as different (and prints them with swapped names) whenever the two
  // orders disagree.
  auto RenderExit = [](const Program &P,
                       const std::set<TsAbstractState> &S) {
    std::set<std::string> Out;
    for (const TsAbstractState &St : S)
      Out.insert(St.str(P));
    return Out;
  };
  if (RenderExit(*PC.Prog, R.Run.MainExit) != RenderExit(Prog, Td.MainExit))
    Mismatch("main-exit states", mainExitStr(*PC.Prog, R.Run.MainExit) +
                                     " != " + mainExitStr(Prog, Td.MainExit));
  if (R.Run.TdSummaries != Td.TdSummaries)
    Mismatch("td-summary count",
             std::to_string(R.Run.TdSummaries) + " != " +
                 std::to_string(Td.TdSummaries));
  if (R.Run.TdSummariesPerProc != Td.TdSummariesPerProc)
    Mismatch("per-procedure td-summary counts", "vectors differ");
  if (R.Run.BuRelations != Td.BuRelations)
    Mismatch("bu-relation count",
             std::to_string(R.Run.BuRelations) + " != " +
                 std::to_string(Td.BuRelations));
}

/// Replay a deterministic procedure-replacement edit sequence on the
/// incremental serve engine and demand its final verdicts coincide with a
/// from-scratch solve of the final program text. Blow-ups — the serve
/// engine's per-request step budget or its per-point relation cap — are
/// resource facts, not bugs: the check skips the program, mirroring how
/// the other checks skip timed-out runs. The relation cap is deliberately
/// tight so unprunable fuzz programs fail fast instead of stalling the
/// seed loop.
void OracleRun::checkIncremental(Symbol Tracked, const TsRunResult &Td) {
  const char *Name = "incremental/edit-replay";
  serve::EngineOptions EO;
  EO.TrackedClass = Prog.symbols().text(Tracked);
  EO.MaxStepsPerRequest = Opts.Limits.MaxSteps;
  EO.MaxRelsPerPoint = 1 << 12;

  std::unique_ptr<serve::ServeEngine> Inc;
  try {
    Inc = std::make_unique<serve::ServeEngine>(programToText(Prog), EO);
  } catch (const std::exception &E) {
    addViolation(CheckKind::IncrementalCoincidence, Name,
                 std::string("engine rejected canonical program text: ") +
                     E.what());
    return;
  }
  if (!Inc->solveInitial().Ok)
    return; // Budget or relation-cap exhaustion: skip, don't fail.

  // The cold solve is an unpruned BU run; its error sites must coincide
  // with the TD reference (site ids survive the text round trip).
  if (Inc->errorSites() != Td.ErrorSites) {
    addViolation(CheckKind::IncrementalCoincidence, Name,
                 "initial serve solve's error sites " +
                     siteSetStr(Inc->errorSites()) + " != td " +
                     siteSetStr(Td.ErrorSites));
    return;
  }

  // Replay edits. A budget-exhausted edit is transactional and skipped;
  // any other rejection of a generated edit is a generator/engine bug.
  unsigned Applied = 0;
  for (uint64_t K = 0;
       K != 2 * Opts.IncrementalEdits && Applied != Opts.IncrementalEdits;
       ++K) {
    std::optional<serve::FuzzEdit> E =
        serve::makeFuzzEdit(Inc->programText(), Opts.InterpSeed, K);
    if (!E)
      break; // Nothing editable (e.g. every command is an allocation).
    serve::EditResult R = Inc->applyEdit(E->ProcName, E->Body);
    if (R.BudgetExhausted)
      continue;
    if (!R.Ok) {
      addViolation(CheckKind::IncrementalCoincidence, Name,
                   "generated edit #" + std::to_string(K) + " on '" +
                       E->ProcName + "' rejected: " + R.Error);
      return;
    }
    ++Applied;
  }
  if (Applied == 0)
    return;

  serve::ServeEngine Fresh(Inc->programText(), EO);
  if (!Fresh.solveInitial().Ok)
    return; // The edited program blew up from scratch: skip.

  if (Fresh.errorSites() != Inc->errorSites()) {
    addViolation(CheckKind::IncrementalCoincidence, Name,
                 "after " + std::to_string(Applied) +
                     " edits, incremental error sites " +
                     siteSetStr(Inc->errorSites()) + " != from-scratch " +
                     siteSetStr(Fresh.errorSites()));
    return;
  }
  for (SiteId S = 0; S != Fresh.program().numSites(); ++S)
    if (Fresh.verdict(S) != Inc->verdict(S)) {
      addViolation(CheckKind::IncrementalCoincidence, Name,
                   "after " + std::to_string(Applied) +
                       " edits, verdict for @" + std::to_string(S) +
                       " differs: incremental " +
                       tsVerdictName(Inc->verdict(S)) + " != from-scratch " +
                       tsVerdictName(Fresh.verdict(S)));
      return;
    }

  // Journal-replay coincidence: walk the same deterministic edit
  // sequence through a *journaled* engine (fsync'd WAL append before
  // every commit), then recover crash-style — verified store plus
  // journal tail — into a third engine. The recovered state must equal
  // the resident incremental engine's exactly.
  namespace fs = std::filesystem;
  std::string Base =
      (fs::temp_directory_path() /
       ("swift-oracle-journal-" + std::to_string(::getpid()) + "-" +
        std::to_string(Opts.InterpSeed)))
          .string();
  std::string StPath = Base + ".swiftstore";
  std::string JPath = Base + ".swiftjournal";
  auto Cleanup = [&] {
    std::error_code EC;
    fs::remove(StPath, EC);
    fs::remove(JPath, EC);
  };
  try {
    serve::EngineOptions JEO = EO;
    JEO.StorePath = StPath;
    JEO.JournalPath = JPath;
    serve::ServeEngine J(programToText(Prog), JEO);
    if (!J.solveInitial().Ok) {
      Cleanup();
      return;
    }
    J.resetJournal();
    unsigned JApplied = 0;
    for (uint64_t K = 0;
         K != 2 * Opts.IncrementalEdits && JApplied != Opts.IncrementalEdits;
         ++K) {
      std::optional<serve::FuzzEdit> E =
          serve::makeFuzzEdit(J.programText(), Opts.InterpSeed, K);
      if (!E)
        break;
      serve::EditResult R = J.applyEdit(E->ProcName, E->Body);
      if (R.BudgetExhausted)
        continue;
      if (!R.Ok)
        break;
      ++JApplied;
    }
    if (JApplied != Applied || J.programText() != Inc->programText()) {
      addViolation(CheckKind::IncrementalCoincidence, Name,
                   "journaled engine diverged from the in-memory edit "
                   "sequence (same generator, same caps)");
      Cleanup();
      return;
    }
    serve::ServeEngine Rec(serve::ServeEngine::FromStore{StPath}, JEO);
    size_t Replayed = 0;
    if (!Rec.solveInitial().Ok || !Rec.replayJournal(&Replayed).Ok) {
      addViolation(CheckKind::IncrementalCoincidence, Name,
                   "store+journal recovery failed to re-solve edits the "
                   "journaled engine had accepted");
      Cleanup();
      return;
    }
    bool Same = Replayed == JApplied &&
                Rec.programText() == Inc->programText() &&
                Rec.errorSites() == Inc->errorSites();
    for (SiteId S = 0; Same && S != Rec.program().numSites(); ++S)
      Same = Rec.verdict(S) == Inc->verdict(S);
    if (!Same)
      addViolation(CheckKind::IncrementalCoincidence, Name,
                   "store+journal recovery diverges from the resident "
                   "incremental engine after " +
                       std::to_string(JApplied) + " journaled edits");
  } catch (const std::exception &E) {
    addViolation(CheckKind::IncrementalCoincidence, Name,
                 std::string("journal-replay coincidence check failed: ") +
                     E.what());
  }
  Cleanup();
}

/// Shard-count invariance: the sharded pure-BU pipeline (plan, worker
/// simulation, segment exchange through the spool codec, assembly) must
/// produce identical results at K = 1, 2, and 4 — and their error sites
/// must be TD's, since each sharded run is runTypestateBu by another
/// route. A forced permanent failure of shard 0 must keep the remaining
/// verdicts sound: reported errors are TD errors, and no tracked site
/// whose resolution touched a degraded summary is claimed Proved.
void OracleRun::checkShardInvariance(const TsContext &Ctx, Symbol Tracked,
                                     const TsRunResult &Td) {
  // The sharded runner adopts summaries back through the text codec,
  // which interns symbols — it needs a mutable program. Run it on a
  // private text round trip; site ids survive the round trip, so error
  // sites and verdict vectors compare directly against TD's.
  std::unique_ptr<Program> Copy;
  try {
    Copy = parseProgramText(programToText(Prog));
  } catch (const std::exception &E) {
    addViolation(CheckKind::ShardInvariance, "shard/setup",
                 std::string("program text round trip failed: ") + E.what());
    return;
  }
  std::string Class = Prog.symbols().text(Tracked);

  shard::ShardedOptions SO;
  SO.MaxSteps = Opts.Limits.MaxSteps;
  std::optional<shard::ShardedResult> Ref;
  std::string RefName;
  for (unsigned K : {1u, 2u, 4u}) {
    SO.NumShards = K;
    shard::ShardedResult R = shard::runShardedInProcess(*Copy, Class, SO);
    if (!R.Complete)
      return; // budget exhaustion is a resource fact: skip, don't fail
    std::string KName = "shard/k" + std::to_string(K);
    if (R.ErrorSites != Td.ErrorSites)
      addViolation(CheckKind::ShardInvariance, KName,
                   "error sites " + siteSetStr(R.ErrorSites) + " != td " +
                       siteSetStr(Td.ErrorSites));
    if (!Ref) {
      Ref = std::move(R);
      RefName = KName;
      continue;
    }
    auto Mismatch = [&](const char *What) {
      addViolation(CheckKind::ShardInvariance, KName,
                   std::string(What) + " differ from " + RefName);
    };
    if (R.ErrorSites != Ref->ErrorSites)
      Mismatch("error sites");
    if (R.ErrorPoints != Ref->ErrorPoints)
      Mismatch("error points");
    if (R.MainExit != Ref->MainExit)
      Mismatch("main-exit states");
    if (R.Verdicts != Ref->Verdicts)
      Mismatch("verdicts");
  }

  // Forced permanent failure of shard 0 of 2 — the deepest callees'
  // summaries degrade to ignore-all.
  SO.NumShards = 2;
  SO.DegradedShards = {0};
  shard::ShardedResult D = shard::runShardedInProcess(*Copy, Class, SO);
  if (!D.Complete)
    return;
  const char *DName = "shard/k2-degraded0";
  std::vector<SiteId> Extra = setMinus(D.ErrorSites, Td.ErrorSites);
  if (!Extra.empty()) {
    std::ostringstream OS;
    OS << "degraded run reports error sites td does not:";
    for (SiteId S : Extra)
      OS << " @" << S;
    addViolation(CheckKind::ShardInvariance, DName, OS.str());
  }
  if (D.Degraded) {
    for (uint32_t S = 0; S != D.Verdicts.size(); ++S)
      if (D.Verdicts[S] == TsVerdict::Proved && Ctx.isTrackedSite(S))
        addViolation(CheckKind::ShardInvariance, DName,
                     "degraded run claims Proved for tracked site @" +
                         std::to_string(S));
  } else if (D.ErrorSites != Td.ErrorSites) {
    // Shard 0 fell outside main's closure, so the run was full after all
    // and owes exact coincidence.
    addViolation(CheckKind::ShardInvariance, DName,
                 "error sites " + siteSetStr(D.ErrorSites) + " != td " +
                     siteSetStr(Td.ErrorSites));
  }
}

OracleResult OracleRun::run() {
  if (Prog.numSpecs() == 0)
    throw std::runtime_error("difftest oracle: program has no typestate spec");
  const TypestateSpec *Spec = nullptr;
  if (Opts.TrackedClass.empty()) {
    Spec = &Prog.spec(0);
  } else {
    for (size_t I = 0; I != Prog.numSpecs() && !Spec; ++I)
      if (Prog.symbols().text(Prog.spec(I).name()) == Opts.TrackedClass)
        Spec = &Prog.spec(I);
    if (!Spec)
      throw std::runtime_error("difftest oracle: no typestate spec for '" +
                               Opts.TrackedClass + "'");
  }
  Symbol Tracked = Spec->name();

  // Ground truth: union of the error sites seen by several concrete
  // schedules. Errors recorded before a budget exhaustion are still real
  // executions, so incomplete runs contribute too.
  for (unsigned I = 0; I != Opts.Schedules; ++I) {
    InterpConfig IC;
    IC.Seed = Opts.InterpSeed + I;
    IC.MaxSteps = Opts.InterpMaxSteps;
    // Alternate loop appetites so both quick exits and deep iteration get
    // explored.
    IC.LoopContinuePerMille = (I % 2) ? 700 : 300;
    InterpResult IR = interpret(Prog, IC);
    for (SiteId S : IR.ErrorSites)
      Res.ConcreteErrors.insert(S);
  }

  TsContext Ctx(Prog, Tracked);
  std::vector<TsConfigRun> Runs = runAllConfigs(Ctx, Opts.Limits,
                                                Opts.Configs);
  for (const TsConfigRun &R : Runs) {
    ++Res.RunsDone;
    if (R.Result.Timeout)
      ++Res.RunsTimedOut;
  }

  const TsConfigRun &Td = Runs.front();
  bool TdOk = !Td.Result.Timeout;
  // A timed-out reference is a resource fact, not a bug: reference-
  // dependent checks are skipped, and the flag lets tools exit with the
  // distinct resource-exhausted code instead of silently passing.
  Res.ReferenceTimedOut = !TdOk;

  for (const TsConfigRun &R : Runs) {
    if (R.Result.Timeout)
      continue;
    // The concrete semantics only enters error states the manifest-on
    // analyses are required to report.
    if (R.Kind != TsConfigRun::Mode::Swift || R.Swift.ObservationManifest)
      checkSoundness(R);
    if (TdOk && &R != &Td)
      checkAgainstTd(R, Td.Result);
  }
  checkThreadDeterminism(Runs);

  if (TdOk && Opts.CheckPartial)
    checkPartialSoundness(Ctx, Td.Result);
  if (TdOk && Opts.CheckCheckpoint)
    checkCheckpointResume(Ctx, Tracked, Td.Result);
  if (TdOk && Opts.CheckIncremental)
    checkIncremental(Tracked, Td.Result);
  if (TdOk && Opts.CheckShard)
    checkShardInvariance(Ctx, Tracked, Td.Result);

  return std::move(Res);
}

} // namespace

OracleResult swift::difftest::runOracle(const Program &Prog,
                                        const OracleOptions &Opts) {
  OracleRun R(Prog, Opts);
  return R.run();
}
