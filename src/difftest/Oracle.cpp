//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "difftest/Oracle.h"

#include "concrete/Interpreter.h"
#include "typestate/Context.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

using namespace swift;
using namespace swift::difftest;

const char *swift::difftest::checkKindName(CheckKind K) {
  switch (K) {
  case CheckKind::Soundness:
    return "soundness";
  case CheckKind::TdCoincidence:
    return "td-coincidence";
  case CheckKind::ErrorPointSubset:
    return "error-point-subset";
  case CheckKind::BuAgreement:
    return "bu-agreement";
  case CheckKind::ManifestOff:
    return "manifest-off";
  case CheckKind::ThreadDeterminism:
    return "thread-determinism";
  }
  return "?";
}

namespace {

std::string siteSetStr(const std::set<SiteId> &S) {
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (SiteId Id : S) {
    OS << (First ? "" : " ") << "@" << Id;
    First = false;
  }
  OS << "}";
  return OS.str();
}

std::string errorPointStr(const Program &Prog, const TsError &E) {
  std::ostringstream OS;
  OS << "@" << E.Site << " at "
     << Prog.symbols().text(Prog.proc(E.Proc).name()) << ":" << E.Node;
  return OS.str();
}

std::string mainExitStr(const Program &Prog,
                        const std::set<TsAbstractState> &S) {
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (const TsAbstractState &St : S) {
    OS << (First ? "" : "; ") << St.str(Prog);
    First = false;
  }
  OS << "}";
  return OS.str();
}

/// The first few elements of A \ B, for readable diffs.
template <typename T>
std::vector<T> setMinus(const std::set<T> &A, const std::set<T> &B,
                        size_t Limit = 4) {
  std::vector<T> Out;
  for (const T &X : A) {
    if (!B.count(X)) {
      Out.push_back(X);
      if (Out.size() == Limit)
        break;
    }
  }
  return Out;
}

bool isCallNode(const Program &Prog, ProcId P, NodeId N) {
  return Prog.proc(P).node(N).Cmd.Kind == CmdKind::Call;
}

class OracleRun {
public:
  OracleRun(const Program &Prog, const OracleOptions &Opts)
      : Prog(Prog), Opts(Opts) {}

  OracleResult run();

private:
  void addViolation(CheckKind Kind, const std::string &Config,
                    std::string Detail) {
    Res.Violations.push_back(Violation{Kind, Config, std::move(Detail)});
  }

  void checkSoundness(const TsConfigRun &R);
  void checkAgainstTd(const TsConfigRun &R, const TsRunResult &Td);
  void checkThreadDeterminism(const std::vector<TsConfigRun> &Runs);

  const Program &Prog;
  const OracleOptions &Opts;
  OracleResult Res;
};

void OracleRun::checkSoundness(const TsConfigRun &R) {
  std::vector<SiteId> Missed =
      setMinus(Res.ConcreteErrors, R.Result.ErrorSites);
  if (Missed.empty())
    return;
  std::ostringstream OS;
  OS << "concretely erroring sites not reported:";
  for (SiteId S : Missed)
    OS << " @" << S;
  OS << "; reported " << siteSetStr(R.Result.ErrorSites);
  addViolation(CheckKind::Soundness, R.Name, OS.str());
}

void OracleRun::checkAgainstTd(const TsConfigRun &R, const TsRunResult &Td) {
  const TsRunResult &Rr = R.Result;

  if (R.Kind == TsConfigRun::Mode::Bu) {
    if (Rr.ErrorSites != Td.ErrorSites)
      addViolation(CheckKind::BuAgreement, R.Name,
                   "error sites " + siteSetStr(Rr.ErrorSites) +
                       " != td " + siteSetStr(Td.ErrorSites));
    if (Rr.MainExit != Td.MainExit)
      addViolation(CheckKind::BuAgreement, R.Name,
                   "main-exit states " + mainExitStr(Prog, Rr.MainExit) +
                       " != td " + mainExitStr(Prog, Td.MainExit));
    return;
  }

  if (!R.Swift.ObservationManifest) {
    // Ablation: the manifest only affects error *reporting*; value results
    // must still coincide, and reporting may only under-approximate.
    if (Rr.MainExit != Td.MainExit)
      addViolation(CheckKind::ManifestOff, R.Name,
                   "main-exit states " + mainExitStr(Prog, Rr.MainExit) +
                       " != td " + mainExitStr(Prog, Td.MainExit));
    std::vector<SiteId> Extra = setMinus(Rr.ErrorSites, Td.ErrorSites);
    if (!Extra.empty()) {
      std::ostringstream OS;
      OS << "error sites not reported by td:";
      for (SiteId S : Extra)
        OS << " @" << S;
      addViolation(CheckKind::ManifestOff, R.Name, OS.str());
    }
    return;
  }

  // Theorem 3.1: exact coincidence of error sites and main-exit states.
  if (Rr.ErrorSites != Td.ErrorSites)
    addViolation(CheckKind::TdCoincidence, R.Name,
                 "error sites " + siteSetStr(Rr.ErrorSites) + " != td " +
                     siteSetStr(Td.ErrorSites));
  if (Rr.MainExit != Td.MainExit)
    addViolation(CheckKind::TdCoincidence, R.Name,
                 "main-exit states " + mainExitStr(Prog, Rr.MainExit) +
                     " != td " + mainExitStr(Prog, Td.MainExit));

  // Error points: SWIFT may move a point to the serving call site, but a
  // point at a non-call node must be one TD computed too.
  for (const TsError &E : Rr.ErrorPoints) {
    if (Td.ErrorPoints.count(E) || isCallNode(Prog, E.Proc, E.Node))
      continue;
    addViolation(CheckKind::ErrorPointSubset, R.Name,
                 "error point " + errorPointStr(Prog, E) +
                     " is at a non-call node and td never computed it");
  }
}

void OracleRun::checkThreadDeterminism(const std::vector<TsConfigRun> &Runs) {
  // Group synchronous runs by everything except the worker count; results
  // must be bit-identical within a group. Async runs are excluded: the
  // summary install point depends on scheduling, so summary counts and
  // error-point placement may differ run to run (sites and exit states may
  // not, which checkAgainstTd already enforces).
  std::map<std::string, const TsConfigRun *> Rep;
  for (const TsConfigRun &R : Runs) {
    if (R.Result.Timeout)
      continue;
    std::string Key;
    if (R.Kind == TsConfigRun::Mode::Bu)
      Key = "bu";
    else if (R.Kind == TsConfigRun::Mode::Swift && !R.Swift.AsyncBu)
      Key = "swift/k" + std::to_string(R.Swift.K) + "/th" +
            std::to_string(R.Swift.Theta) +
            (R.Swift.ObservationManifest ? "" : "/nomanifest");
    else
      continue;

    auto [It, Inserted] = Rep.emplace(Key, &R);
    if (Inserted)
      continue;
    const TsConfigRun &First = *It->second;
    const TsRunResult &A = First.Result, &B = R.Result;
    auto Mismatch = [&](const char *What) {
      addViolation(CheckKind::ThreadDeterminism, R.Name,
                   std::string(What) + " differs from " + First.Name);
    };
    if (A.ErrorSites != B.ErrorSites)
      Mismatch("error sites");
    if (A.ErrorPoints != B.ErrorPoints)
      Mismatch("error points");
    if (A.MainExit != B.MainExit)
      Mismatch("main-exit states");
    if (A.TdSummaries != B.TdSummaries ||
        A.TdSummariesPerProc != B.TdSummariesPerProc)
      Mismatch("td-summary counts");
    if (A.BuRelations != B.BuRelations)
      Mismatch("bu-relation counts");
  }
}

OracleResult OracleRun::run() {
  if (Prog.numSpecs() == 0)
    throw std::runtime_error("difftest oracle: program has no typestate spec");
  const TypestateSpec *Spec = nullptr;
  if (Opts.TrackedClass.empty()) {
    Spec = &Prog.spec(0);
  } else {
    for (size_t I = 0; I != Prog.numSpecs() && !Spec; ++I)
      if (Prog.symbols().text(Prog.spec(I).name()) == Opts.TrackedClass)
        Spec = &Prog.spec(I);
    if (!Spec)
      throw std::runtime_error("difftest oracle: no typestate spec for '" +
                               Opts.TrackedClass + "'");
  }
  Symbol Tracked = Spec->name();

  // Ground truth: union of the error sites seen by several concrete
  // schedules. Errors recorded before a budget exhaustion are still real
  // executions, so incomplete runs contribute too.
  for (unsigned I = 0; I != Opts.Schedules; ++I) {
    InterpConfig IC;
    IC.Seed = Opts.InterpSeed + I;
    IC.MaxSteps = Opts.InterpMaxSteps;
    // Alternate loop appetites so both quick exits and deep iteration get
    // explored.
    IC.LoopContinuePerMille = (I % 2) ? 700 : 300;
    InterpResult IR = interpret(Prog, IC);
    for (SiteId S : IR.ErrorSites)
      Res.ConcreteErrors.insert(S);
  }

  TsContext Ctx(Prog, Tracked);
  std::vector<TsConfigRun> Runs = runAllConfigs(Ctx, Opts.Limits,
                                                Opts.Configs);
  for (const TsConfigRun &R : Runs) {
    ++Res.RunsDone;
    if (R.Result.Timeout)
      ++Res.RunsTimedOut;
  }

  const TsConfigRun &Td = Runs.front();
  bool TdOk = !Td.Result.Timeout;

  for (const TsConfigRun &R : Runs) {
    if (R.Result.Timeout)
      continue;
    // The concrete semantics only enters error states the manifest-on
    // analyses are required to report.
    if (R.Kind != TsConfigRun::Mode::Swift || R.Swift.ObservationManifest)
      checkSoundness(R);
    if (TdOk && &R != &Td)
      checkAgainstTd(R, Td.Result);
  }
  checkThreadDeterminism(Runs);

  return std::move(Res);
}

} // namespace

OracleResult swift::difftest::runOracle(const Program &Prog,
                                        const OracleOptions &Opts) {
  OracleRun R(Prog, Opts);
  return R.run();
}
