//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "difftest/DomainOracle.h"

#include "clients/Concrete.h"
#include "ir/Dumper.h"
#include "support/Timer.h"

#include <fstream>
#include <optional>
#include <sstream>

using namespace swift;
using namespace swift::difftest;
using clients::DomainMode;
using clients::DomainRunResult;

namespace {

using Site = std::pair<ProcId, NodeId>;

std::string siteStr(const Program &Prog, const Site &S) {
  return Prog.symbols().text(Prog.proc(S.first).name()) + ":" +
         std::to_string(S.second);
}

std::string describeSites(const Program &Prog, const std::set<Site> &S,
                          size_t Max = 4) {
  std::ostringstream OS;
  OS << "{";
  size_t I = 0;
  for (const Site &E : S) {
    if (I == Max) {
      OS << " ...";
      break;
    }
    OS << (I ? " " : "") << siteStr(Prog, E);
    ++I;
  }
  OS << "}";
  return OS.str();
}

std::string describeFacts(const std::set<std::string> &S, size_t Max = 4) {
  std::ostringstream OS;
  OS << "{";
  size_t I = 0;
  for (const std::string &E : S) {
    if (I == Max) {
      OS << " ...";
      break;
    }
    OS << (I ? " " : "") << E;
    ++I;
  }
  OS << "}";
  return OS.str();
}

template <typename T>
std::set<T> setMinus(const std::set<T> &A, const std::set<T> &B) {
  std::set<T> Out;
  for (const T &E : A)
    if (!B.count(E))
      Out.insert(E);
  return Out;
}

/// Checks result equality between \p Got and the reference \p Ref,
/// appending one violation per differing component.
void checkAgainstRef(const Program &Prog, const DomainRunResult &Ref,
                     const DomainRunResult &Got, CheckKind Kind,
                     const std::string &Config,
                     std::vector<Violation> &Out) {
  if (Got.Reports != Ref.Reports) {
    std::ostringstream D;
    D << "report sites diverge from the TD reference: missing="
      << describeSites(Prog, setMinus(Ref.Reports, Got.Reports))
      << " extra="
      << describeSites(Prog, setMinus(Got.Reports, Ref.Reports));
    Out.push_back({Kind, Config, D.str()});
  }
  if (Got.ExitFacts != Ref.ExitFacts) {
    std::ostringstream D;
    D << "main-exit facts diverge from the TD reference: missing="
      << describeFacts(setMinus(Ref.ExitFacts, Got.ExitFacts)) << " extra="
      << describeFacts(setMinus(Got.ExitFacts, Ref.ExitFacts));
    Out.push_back({Kind, Config, D.str()});
  }
}

void checkDeterminism(const Program &Prog, const DomainRunResult &Base,
                      const std::string &BaseConfig,
                      const DomainRunResult &Got, const std::string &Config,
                      std::vector<Violation> &Out) {
  auto Mismatch = [&](const std::string &What) {
    Out.push_back({CheckKind::ThreadDeterminism, Config,
                   What + " differ from " + BaseConfig +
                       " (same configuration, different worker count)"});
  };
  if (Got.Reports != Base.Reports)
    Mismatch("report sites");
  else if (Got.ExitFacts != Base.ExitFacts)
    Mismatch("main-exit facts");
  else if (Got.TdSummaries != Base.TdSummaries)
    Mismatch("TD summary counts");
  else if (Got.BuRelations != Base.BuRelations)
    Mismatch("BU relation counts");
  (void)Prog;
}

} // namespace

DomainOracleResult
swift::difftest::runDomainOracle(const std::string &Domain,
                                 const Program &Prog,
                                 const DomainOracleOptions &Opts) {
  DomainOracleResult R;

  auto run = [&](DomainMode Mode, uint64_t K, uint64_t Theta,
                 unsigned Threads) -> std::optional<DomainRunResult> {
    DomainRunResult RR = clients::runClientDomain(Domain, Prog, Mode, K,
                                                  Theta, Threads,
                                                  Opts.Limits);
    ++R.RunsDone;
    if (RR.Timeout) {
      ++R.RunsTimedOut;
      return std::nullopt;
    }
    return RR;
  };

  std::optional<DomainRunResult> Ref =
      run(DomainMode::Td, /*K=*/0, /*Theta=*/1, /*Threads=*/1);
  if (!Ref) {
    R.ReferenceTimedOut = true;
    return R;
  }

  // Soundness: witness schedules against the TD reference. One violation
  // per schedule and component at most — the first miss names the
  // schedule, further misses on the same schedule add no information.
  for (unsigned S = 0; S != Opts.Schedules; ++S) {
    clients::WitnessConfig WC;
    WC.Seed = Opts.InterpSeed + S;
    WC.MaxSteps = Opts.InterpMaxSteps;
    clients::WitnessResult W = clients::runClientWitness(Domain, Prog, WC);
    std::string Config = Domain + "/td/schedule" + std::to_string(S);
    for (const Site &E : W.Events)
      if (!Ref->Reports.count(E)) {
        R.Violations.push_back(
            {CheckKind::Soundness, Config,
             "concrete report at " + siteStr(Prog, E) +
                 " missing from the TD reference's report sites"});
        break;
      }
    if (W.ExitFactsValid)
      for (const std::string &F : W.ExitFacts)
        if (!Ref->ExitFacts.count(F)) {
          R.Violations.push_back(
              {CheckKind::Soundness, Config,
               "concrete exit fact '" + F +
                   "' missing from the TD reference's main-exit facts"});
          break;
        }
  }

  // SWIFT matrix: coincidence with TD at every (k, theta, threads), and
  // determinism across thread counts at fixed (k, theta).
  for (uint64_t K : {uint64_t(1), uint64_t(3)})
    for (uint64_t Theta : {uint64_t(1), uint64_t(2)}) {
      std::optional<DomainRunResult> Base;
      std::string BaseConfig;
      for (unsigned Th : {1u, 2u, 4u}) {
        std::optional<DomainRunResult> Got = run(DomainMode::Swift, K,
                                                 Theta, Th);
        if (!Got)
          continue;
        std::string Config = Domain + "/swift/k" + std::to_string(K) +
                             "/theta" + std::to_string(Theta) + "/th" +
                             std::to_string(Th);
        checkAgainstRef(Prog, *Ref, *Got, CheckKind::TdCoincidence, Config,
                        R.Violations);
        if (!Base) {
          Base = std::move(Got);
          BaseConfig = Config;
        } else {
          checkDeterminism(Prog, *Base, BaseConfig, *Got, Config,
                           R.Violations);
        }
      }
    }

  // Pure BU: agreement with TD, and determinism across worker counts.
  {
    std::optional<DomainRunResult> Base;
    std::string BaseConfig;
    for (unsigned Th : {1u, 2u, 4u}) {
      std::optional<DomainRunResult> Got =
          run(DomainMode::Bu, /*K=*/0, /*Theta=*/0, Th);
      if (!Got)
        continue;
      std::string Config = Domain + "/bu/th" + std::to_string(Th);
      checkAgainstRef(Prog, *Ref, *Got, CheckKind::BuAgreement, Config,
                      R.Violations);
      if (!Base) {
        Base = std::move(Got);
        BaseConfig = Config;
      } else {
        checkDeterminism(Prog, *Base, BaseConfig, *Got, Config,
                         R.Violations);
      }
    }
  }

  return R;
}

CampaignResult
swift::difftest::runDomainCampaign(const DomainCampaignOptions &Opts,
                                   std::ostream &Log) {
  CampaignResult Res;
  Timer Wall;

  for (uint64_t Seed = Opts.FirstSeed;
       Seed != Opts.FirstSeed + Opts.NumSeeds; ++Seed) {
    if (Wall.seconds() > Opts.BudgetSeconds) {
      Res.StoppedOnBudget = true;
      break;
    }
    std::unique_ptr<Program> Prog =
        generateFuzzProgram(fuzzConfigForSeed(Seed));
    DomainOracleOptions OO = Opts.Oracle;
    OO.InterpSeed = Seed * 1013 + 1; // decorrelate from the fuzz seed
    DomainOracleResult OR = runDomainOracle(Opts.Domain, *Prog, OO);
    ++Res.SeedsRun;
    if (OR.ReferenceTimedOut)
      ++Res.ExhaustedSeeds;
    if (OR.clean())
      continue;

    SeedReport Rep;
    Rep.Seed = Seed;
    Rep.First = OR.Violations.front();
    Rep.NumViolations = OR.Violations.size();
    Log << "seed " << Seed << ": " << OR.Violations.size()
        << " violation(s); first: [" << checkKindName(Rep.First.Kind)
        << "] " << Rep.First.Config << ": " << Rep.First.Detail << "\n";

    std::string Text;
    if (Opts.ReduceViolations) {
      CheckKind Kind = Rep.First.Kind;
      ReduceResult RR = reducePredicate(
          *Prog,
          [&](const Program &Cand) {
            DomainOracleResult C = runDomainOracle(Opts.Domain, Cand, OO);
            for (const Violation &V : C.Violations)
              if (V.Kind == Kind)
                return true;
            return false;
          },
          Opts.ReduceMaxRounds, Opts.ReduceMaxRuns);
      Text = std::move(RR.Text);
      Rep.ReducedProcs = RR.NumProcs;
      Rep.ReducedStmts = RR.NumStmts;
      Log << "  reduced to " << RR.NumProcs << " proc(s), " << RR.NumStmts
          << " stmt(s) in " << RR.OracleRuns << " oracle runs\n";
    } else {
      Text = programToText(*Prog);
      Rep.ReducedProcs = Prog->numProcs();
    }

    if (!Opts.OutDir.empty()) {
      Rep.ReproPath = writeReproducer(Opts.OutDir, Seed, Rep.First, Text);
      if (!Rep.ReproPath.empty())
        Log << "  reproducer: " << Rep.ReproPath << "\n";
      else
        Log << "  failed to write reproducer under " << Opts.OutDir << "\n";
    }
    Res.BadSeeds.push_back(std::move(Rep));
  }
  return Res;
}

DomainOracleResult
swift::difftest::replayDomainFile(const std::string &Path,
                                  const std::string &Domain,
                                  const DomainOracleOptions &Opts) {
  std::ifstream IS(Path);
  if (!IS)
    throw std::runtime_error("cannot open '" + Path + "'");
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  std::unique_ptr<Program> Prog = parseProgramText(Buf.str());
  return runDomainOracle(Domain, *Prog, Opts);
}
