//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "concrete/Interpreter.h"

#include "support/Rng.h"

#include <unordered_map>
#include <vector>

using namespace swift;

namespace {

using ObjRef = int; // Index into the object store; -1 is null.

struct Object {
  SiteId Site;
  const TypestateSpec *Spec; // Null for classes without a spec.
  TState T = 0;
  std::unordered_map<Symbol, ObjRef> Fields;
};

class Interp {
public:
  Interp(const Program &Prog, const InterpConfig &Cfg)
      : Prog(Prog), Cfg(Cfg), R(Cfg.Seed) {}

  InterpResult run() {
    runProc(Prog.mainProc(), {}, 0);
    Result.Completed = !Dead;
    Result.Steps = Steps;
    Result.ObjectsAllocated = Objects.size();
    return Result;
  }

private:
  using Env = std::unordered_map<Symbol, ObjRef>;

  ObjRef lookup(const Env &E, Symbol V) const {
    auto It = E.find(V);
    return It == E.end() ? -1 : It->second;
  }

  /// Executes \p P with \p Args; returns the $ret value (-1 if none).
  ObjRef runProc(ProcId P, const std::vector<ObjRef> &Args, unsigned Depth) {
    if (Depth > Cfg.MaxDepth) {
      Dead = true;
      return -1;
    }
    const Procedure &Proc = Prog.proc(P);
    Env E;
    for (size_t I = 0; I != Proc.params().size(); ++I)
      E[Proc.params()[I]] = I < Args.size() ? Args[I] : -1;

    NodeId Cur = Proc.entry();
    while (!Dead && !Halted && Cur != Proc.exit()) {
      if (++Steps > Cfg.MaxSteps) {
        Dead = true;
        break;
      }
      const CfgNode &Node = Proc.node(Cur);
      exec(P, Node.Cmd, E, Depth);
      if (Node.Succs.empty())
        break; // Dangling dead node; treat as termination.
      if (Node.Succs.size() == 1) {
        Cur = Node.Succs[0];
      } else if (Node.Succs.size() == 2) {
        // Biased choice: loop heads continue with the configured rate.
        Cur = Node.Succs[R.below(1000) < Cfg.LoopContinuePerMille ? 0 : 1];
      } else {
        Cur = Node.Succs[R.below(Node.Succs.size())];
      }
    }
    return lookup(E, Prog.retVar());
  }

  void exec(ProcId P, const Command &C, Env &E, unsigned Depth) {
    (void)P;
    switch (C.Kind) {
    case CmdKind::Nop:
      return;

    case CmdKind::Alloc: {
      ObjRef O = static_cast<ObjRef>(Objects.size());
      Objects.push_back(
          Object{C.Site, Prog.specFor(C.Class),
                 Prog.specFor(C.Class) ? Prog.specFor(C.Class)->initState()
                                       : TState(0),
                 {}});
      E[C.Dst] = O;
      return;
    }

    case CmdKind::Copy:
      E[C.Dst] = lookup(E, C.Src);
      return;

    case CmdKind::AssignNull:
      E[C.Dst] = -1;
      return;

    case CmdKind::Load: {
      ObjRef Base = lookup(E, C.Src);
      if (Base < 0) {
        Halted = true; // Null dereference terminates the run (Java NPE).
        return;
      }
      auto It = Objects[Base].Fields.find(C.Field);
      E[C.Dst] = It == Objects[Base].Fields.end() ? -1 : It->second;
      return;
    }

    case CmdKind::Store: {
      ObjRef Base = lookup(E, C.Dst);
      if (Base < 0) {
        Halted = true;
        return;
      }
      Objects[Base].Fields[C.Field] = lookup(E, C.Src);
      return;
    }

    case CmdKind::TsCall: {
      ObjRef Recv = lookup(E, C.Src);
      if (Recv < 0) {
        Halted = true;
        return;
      }
      Object &O = Objects[Recv];
      if (!O.Spec || !O.Spec->hasMethod(C.Method))
        return; // Foreign method: no typestate effect.
      TState Err = O.Spec->errorState();
      if (O.T == Err)
        return; // Error is absorbing.
      TState Next = O.Spec->apply(C.Method, O.T);
      if (Next == Err)
        Result.ErrorSites.insert(O.Site);
      O.T = Next;
      return;
    }

    case CmdKind::Call: {
      std::vector<ObjRef> Args;
      Args.reserve(C.Args.size());
      for (Symbol A : C.Args)
        Args.push_back(lookup(E, A));
      ObjRef Ret = runProc(C.Callee, Args, Depth + 1);
      if (C.Dst.isValid())
        E[C.Dst] = Ret;
      return;
    }
    }
  }

  const Program &Prog;
  const InterpConfig &Cfg;
  Rng R;
  InterpResult Result;
  std::vector<Object> Objects;
  uint64_t Steps = 0;
  bool Dead = false;
  bool Halted = false; ///< Normal early termination (null dereference).
};

} // namespace

InterpResult swift::interpret(const Program &Prog, const InterpConfig &Cfg) {
  return Interp(Prog, Cfg).run();
}
