//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete interpreter for the analyzed language: objects with a
/// per-object typestate, a heap of field values, and randomly resolved
/// non-deterministic choices. Used as ground truth by the soundness
/// property tests (every concrete protocol violation must be reported by
/// the static analyses) and by the example programs.
///
/// Concrete semantics choices (mirrored by the analyses):
///  * uninitialized variables and missing returns are null,
///  * any null dereference (load, store, or method call on null) terminates
///    the run, like an uncaught NullPointerException — this pairing is what
///    makes the analysis's must-alias gens across stores sound,
///  * calling a method a class does not declare is a no-op,
///  * the error typestate is absorbing; entering it is recorded but
///    execution continues.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CONCRETE_INTERPRETER_H
#define SWIFT_CONCRETE_INTERPRETER_H

#include "ir/Program.h"

#include <cstdint>
#include <set>

namespace swift {

struct InterpConfig {
  uint64_t Seed = 1;
  uint64_t MaxSteps = 100000; ///< Commands executed before giving up.
  unsigned MaxDepth = 64;     ///< Call-stack depth bound.
  /// Per-mille probability of taking another loop iteration at each
  /// while(*) head.
  unsigned LoopContinuePerMille = 400;
};

struct InterpResult {
  /// Allocation sites whose objects entered the error typestate.
  std::set<SiteId> ErrorSites;
  /// False if the step or depth budget was exhausted mid-run.
  bool Completed = false;
  uint64_t Steps = 0;
  uint64_t ObjectsAllocated = 0;
};

/// Executes one schedule of \p Prog (one resolution of all choices).
InterpResult interpret(const Program &Prog, const InterpConfig &Cfg);

} // namespace swift

#endif // SWIFT_CONCRETE_INTERPRETER_H
