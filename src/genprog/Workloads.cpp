//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "genprog/Workloads.h"

using namespace swift;

namespace {

GenConfig make(uint64_t Seed, unsigned Layers, unsigned ProcsPerLayer,
               unsigned Drivers, unsigned Objects, unsigned Branches,
               unsigned Calls, unsigned FieldPm, unsigned RecPm,
               unsigned LoopPm, unsigned MixedPm, unsigned GnarlyPm = 125) {
  GenConfig C;
  C.Seed = Seed;
  C.Layers = Layers;
  C.ProcsPerLayer = ProcsPerLayer;
  C.NumDrivers = Drivers;
  C.ObjectsPerDriver = Objects;
  C.BranchesPerProc = Branches;
  C.CallsPerProc = Calls;
  C.FieldSegmentPerMille = FieldPm;
  C.RecursionPerMille = RecPm;
  C.LoopPerMille = LoopPm;
  C.MixedCallPerMille = MixedPm;
  C.GnarlyPerMille = GnarlyPm;
  C.BugPerMille = 0;
  return C;
}

std::vector<NamedWorkload> build() {
  std::vector<NamedWorkload> W;
  // The two smallest: shallow, few contexts — the bottom-up baseline
  // finishes here (paper: jpat-p, elevator are BU's only successes).
  W.push_back({"jpat-p", "protein analysis tools",
               make(101, 1, 3, 2, 2, 1, 1, 100, 0, 100, 0, 0)});
  W.push_back({"elevator", "discrete event simulator",
               make(102, 2, 3, 2, 3, 1, 1, 150, 0, 200, 100, 0)});
  // Mid-size: TD finishes but slowly; BU blows up on case splits.
  W.push_back({"toba-s", "java bytecode to C compiler",
               make(103, 3, 8, 12, 14, 2, 2, 250, 50, 200, 100, 350)});
  W.push_back({"javasrc-p", "java source to HTML translator",
               make(104, 3, 10, 14, 15, 2, 2, 250, 50, 200, 100, 420)});
  W.push_back({"hedc", "web crawler from ETH",
               make(105, 3, 10, 16, 16, 2, 2, 300, 100, 200, 100, 350)});
  W.push_back({"antlr", "parser/translator generator",
               make(106, 3, 14, 22, 17, 2, 2, 300, 100, 250, 120, 300)});
  W.push_back({"luindex", "document indexing and search tool",
               make(107, 3, 16, 24, 18, 3, 2, 300, 100, 250, 120, 240)});
  W.push_back({"lusearch", "text indexing and search tool",
               make(108, 3, 16, 24, 19, 3, 2, 300, 100, 250, 120, 320)});
  W.push_back({"kawa-c", "scheme to java bytecode compiler",
               make(109, 4, 14, 24, 18, 3, 2, 300, 100, 250, 120, 240)});
  // The largest three: TD exhausts the budget (paper: avrora, rhino-a,
  // sablecc-j time out under TD).
  W.push_back({"avrora", "microcontroller simulator/analyzer",
               make(110, 4, 24, 36, 22, 3, 3, 350, 150, 300, 150, 150)});
  W.push_back({"rhino-a", "JavaScript interpreter",
               make(111, 4, 22, 32, 22, 3, 3, 350, 150, 300, 150, 110)});
  W.push_back({"sablecc-j", "parser generator",
               make(112, 4, 24, 38, 23, 3, 3, 350, 150, 300, 150, 130)});
  return W;
}

} // namespace

const std::vector<NamedWorkload> &swift::benchmarkWorkloads() {
  static const std::vector<NamedWorkload> W = build();
  return W;
}

const NamedWorkload *swift::findWorkload(const std::string &Name) {
  for (const NamedWorkload &W : benchmarkWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}
