//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chaotic random-program generator for property-based testing. Unlike
/// the workload generator it makes no attempt to respect the typestate
/// protocol or to be realistic: it samples arbitrary command sequences,
/// nested branches/loops, recursive calls, duplicate and self arguments,
/// parameter reassignment, use-before-def — everything the analyses must
/// handle. Used by the coincidence (Theorem 3.1) and soundness property
/// tests.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_GENPROG_FUZZER_H
#define SWIFT_GENPROG_FUZZER_H

#include "ir/Program.h"

#include <memory>

namespace swift {

struct FuzzConfig {
  uint64_t Seed = 1;
  unsigned NumProcs = 4;       ///< Besides main.
  unsigned StmtsPerProc = 10;  ///< Approximate body length.
  unsigned NumVars = 4;        ///< Local variable pool size.
  unsigned NumFields = 2;
  unsigned MaxDepth = 2;       ///< Max if/loop nesting.
};

/// Generates a random program over a 3-state File protocol (open / close /
/// reset). Deterministic in the seed.
std::unique_ptr<Program> generateFuzzProgram(const FuzzConfig &Cfg);

} // namespace swift

#endif // SWIFT_GENPROG_FUZZER_H
