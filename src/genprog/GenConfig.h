//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the synthetic workload generator that stands in for
/// the paper's 12 Java benchmarks (see DESIGN.md Section 2). The knobs map
/// directly onto the structural properties the evaluation depends on:
///
///  * NumDrivers / ObjectsPerDriver / Layers / ProcsPerLayer control how
///    many distinct calling contexts reach each shared utility procedure —
///    the top-down analysis's summary blow-up.
///  * BranchesPerProc / ParamsPerProc / FieldSegments control the
///    case-splitting pressure on the bottom-up analysis.
///  * MixedCallRate adds call sites whose argument has unknown aliasing
///    (neither must nor must-not), diversifying incoming states.
///  * BugRate injects genuine protocol violations.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_GENPROG_GENCONFIG_H
#define SWIFT_GENPROG_GENCONFIG_H

#include <cstdint>
#include <string>

namespace swift {

struct GenConfig {
  uint64_t Seed = 1;

  /// Utility-procedure layers: procedures in layer i call layer i+1.
  unsigned Layers = 3;
  unsigned ProcsPerLayer = 8;
  unsigned ParamsPerProc = 2;
  /// Outgoing calls per utility procedure.
  unsigned CallsPerProc = 2;
  /// Balanced open/close branch segments per utility procedure.
  unsigned BranchesPerProc = 2;
  /// Flavour mix of utility procedures (per mille): Gnarly procedures
  /// case-split on both parameters (bottom-up blow-up pressure), Branchy
  /// ones hide their single-parameter use behind if(*), Straight ones use
  /// it unconditionally, and the remainder is plumbing that never touches
  /// tracked objects.
  unsigned GnarlyPerMille = 125;
  unsigned BranchyPerMille = 125;
  unsigned StraightPerMille = 250;
  /// Field store/load/op segments per utility procedure (in per mille of
  /// procedures that get one).
  unsigned FieldSegmentPerMille = 300;
  /// Fraction (per mille) of utility procedures with a self-recursive call.
  unsigned RecursionPerMille = 100;
  /// Fraction (per mille) of utility procedures containing a loop segment.
  unsigned LoopPerMille = 200;

  /// Driver procedures called from main; each allocates objects and feeds
  /// them into layer-0 utilities.
  unsigned NumDrivers = 6;
  unsigned ObjectsPerDriver = 4;
  /// Per-mille of driver call sites whose argument is an if(*)-merged
  /// variable (unknown aliasing).
  unsigned MixedCallPerMille = 150;
  /// Per-mille of drivers that contain a protocol violation.
  unsigned BugPerMille = 0;

  unsigned NumFields = 3;
};

struct GenStats {
  size_t Procs = 0;
  size_t Commands = 0;
  size_t Calls = 0;
  size_t Sites = 0;
  size_t SourceLines = 0;
};

} // namespace swift

#endif // SWIFT_GENPROG_GENCONFIG_H
