//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "genprog/Fuzzer.h"

#include "ir/ProgramBuilder.h"
#include "support/Rng.h"

using namespace swift;

namespace {

class Fuzzer {
public:
  Fuzzer(const FuzzConfig &Cfg) : Cfg(Cfg), R(Cfg.Seed) {}

  std::unique_ptr<Program> run() {
    B.addTypestate("File", {"closed", "opened", "err"}, "closed", "err",
                   {{"closed", "open", "opened"},
                    {"opened", "close", "closed"},
                    {"closed", "reset", "closed"},
                    {"opened", "reset", "closed"}});

    // Random arity (0-2) per procedure, decided up front so call sites can
    // be generated before the callee body.
    for (unsigned P = 0; P != Cfg.NumProcs; ++P)
      Arity.push_back(static_cast<unsigned>(R.below(3)));

    for (unsigned P = 0; P != Cfg.NumProcs; ++P) {
      std::vector<std::string> Params;
      for (unsigned I = 0; I != Arity[P]; ++I)
        Params.push_back("p" + std::to_string(I));
      B.beginProc(procName(P), Params);
      emitBlock(Cfg.StmtsPerProc, 0, Arity[P]);
      if (R.chance(1, 2))
        B.ret(randomVar(Arity[P]));
      B.endProc();
    }

    B.beginProc("main", {});
    emitBlock(Cfg.StmtsPerProc, 0, 0);
    B.endProc();
    return B.finish("main");
  }

private:
  static std::string procName(unsigned P) {
    return "q" + std::to_string(P);
  }

  /// A random variable: a local from the pool or (sometimes) a parameter.
  std::string randomVar(unsigned NumParams) {
    if (NumParams && R.chance(1, 3))
      return "p" + std::to_string(R.below(NumParams));
    return "v" + std::to_string(R.below(Cfg.NumVars));
  }

  std::string randomField() {
    return "g" + std::to_string(R.below(std::max(1u, Cfg.NumFields)));
  }

  std::string randomMethod() {
    const char *Methods[] = {"open", "close", "reset"};
    return Methods[R.below(3)];
  }

  void emitBlock(unsigned Budget, unsigned Depth, unsigned NumParams) {
    for (unsigned S = 0; S != Budget; ++S) {
      switch (R.below(Depth < Cfg.MaxDepth ? 10 : 8)) {
      case 0:
        B.alloc(randomVar(NumParams), "File");
        break;
      case 1:
        B.copy(randomVar(NumParams), randomVar(NumParams));
        break;
      case 2:
        B.assignNull(randomVar(NumParams));
        break;
      case 3:
        B.load(randomVar(NumParams), randomVar(NumParams), randomField());
        break;
      case 4:
        B.store(randomVar(NumParams), randomField(), randomVar(NumParams));
        break;
      case 5:
        B.tsCall(randomVar(NumParams), randomMethod());
        break;
      case 6:
      case 7: {
        unsigned Callee = static_cast<unsigned>(R.below(Cfg.NumProcs));
        std::vector<std::string> Args;
        for (unsigned I = 0; I != Arity[Callee]; ++I)
          Args.push_back(randomVar(NumParams));
        if (R.chance(1, 2))
          B.callAssign(randomVar(NumParams), procName(Callee), Args);
        else
          B.call(procName(Callee), Args);
        break;
      }
      case 8: {
        B.beginIf();
        emitBlock(Budget / 2, Depth + 1, NumParams);
        if (R.chance(2, 3)) {
          B.orElse();
          emitBlock(Budget / 2, Depth + 1, NumParams);
        }
        B.endIf();
        break;
      }
      case 9: {
        B.beginLoop();
        emitBlock(Budget / 3, Depth + 1, NumParams);
        B.endLoop();
        break;
      }
      }
    }
  }

  const FuzzConfig &Cfg;
  Rng R;
  ProgramBuilder B;
  std::vector<unsigned> Arity;
};

} // namespace

std::unique_ptr<Program> swift::generateFuzzProgram(const FuzzConfig &Cfg) {
  return Fuzzer(Cfg).run();
}
