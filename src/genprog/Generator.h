//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic-workload generator (see GenConfig.h and
/// DESIGN.md Section 2). The same seed and configuration always produce
/// the same program, whether emitted as IR or as TSL text.
///
/// Generated shape: `main` calls NumDrivers driver procedures; each driver
/// allocates tracked objects and feeds them into a layered DAG of shared
/// utility procedures. Utilities perform balanced (protocol-respecting)
/// typestate operations on their parameters behind branches, loops, field
/// traffic, and further calls — the structure that separates the TD, BU,
/// and SWIFT regimes.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_GENPROG_GENERATOR_H
#define SWIFT_GENPROG_GENERATOR_H

#include "genprog/GenConfig.h"
#include "genprog/GenSink.h"

#include <memory>
#include <string>

namespace swift {

/// Drives \p Sink with the workload described by \p Cfg.
void emitWorkload(const GenConfig &Cfg, GenSink &Sink);

/// Generates the workload as a Program; fills \p Stats if non-null.
std::unique_ptr<Program> generateWorkload(const GenConfig &Cfg,
                                          GenStats *Stats = nullptr);

/// Generates the workload as TSL source text.
std::string generateWorkloadTsl(const GenConfig &Cfg);

} // namespace swift

#endif // SWIFT_GENPROG_GENERATOR_H
