//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 12 benchmark configurations of the reproduced evaluation, named
/// after the paper's Ashes/DaCapo benchmarks (Table 1). Each is a
/// deterministic synthetic workload (see DESIGN.md Section 2 for the
/// substitution argument) scaled so the paper's three regimes reproduce:
/// the bottom-up baseline only finishes on the two smallest, the top-down
/// baseline exhausts its budget on the largest three, SWIFT finishes on
/// all.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_GENPROG_WORKLOADS_H
#define SWIFT_GENPROG_WORKLOADS_H

#include "genprog/GenConfig.h"

#include <string>
#include <vector>

namespace swift {

struct NamedWorkload {
  std::string Name;
  std::string Description;
  GenConfig Config;
};

/// The 12 configurations in the paper's Table 1 order.
const std::vector<NamedWorkload> &benchmarkWorkloads();

/// Looks a workload up by name; nullptr if unknown.
const NamedWorkload *findWorkload(const std::string &Name);

} // namespace swift

#endif // SWIFT_GENPROG_WORKLOADS_H
