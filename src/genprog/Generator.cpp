//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "genprog/Generator.h"

#include "ir/Dumper.h"
#include "support/Rng.h"

using namespace swift;

namespace {

class WorkloadGenerator {
public:
  WorkloadGenerator(const GenConfig &Cfg, GenSink &Sink)
      : Cfg(Cfg), Sink(Sink), R(Cfg.Seed) {}

  void run() {
    emitTypestate();
    for (unsigned L = 0; L != Cfg.Layers; ++L)
      for (unsigned I = 0; I != Cfg.ProcsPerLayer; ++I)
        emitUtility(L, I);
    for (unsigned D = 0; D != Cfg.NumDrivers; ++D)
      emitDriver(D);
    emitMain();
  }

private:
  static std::string utilName(unsigned Layer, unsigned Idx) {
    return "u" + std::to_string(Layer) + "_" + std::to_string(Idx);
  }
  static std::string driverName(unsigned Idx) {
    return "driver" + std::to_string(Idx);
  }
  std::string fieldName(unsigned Idx) const {
    return "fld" + std::to_string(Idx % std::max(1u, Cfg.NumFields));
  }
  std::string randomField() {
    return fieldName(static_cast<unsigned>(R.below(
        std::max(1u, Cfg.NumFields))));
  }
  bool perMille(unsigned Rate) { return R.below(1000) < Rate; }

  void emitTypestate() {
    Sink.typestate("File", {"closed", "opened", "err"}, "closed", "err",
                   {{"closed", "open", "opened"},
                    {"opened", "close", "closed"},
                    {"closed", "reset", "closed"},
                    {"opened", "reset", "closed"}});
    // An untracked auxiliary class: most generated procedures manipulate
    // Data objects only, so tracked File tuples flow through them as pure
    // identities — the dominant real-world structure behind the paper's
    // observation that "the identity function with a certain precondition
    // was the dominating case".
    Sink.typestate("Data", {"fresh", "errd"}, "fresh", "errd",
                   {{"fresh", "touch", "fresh"}});
  }

  /// A balanced open/close on \p V — net identity on the typestate.
  void useObject(const std::string &V) {
    Sink.tsCall(V, "open");
    Sink.tsCall(V, "close");
  }

  /// A call to a random procedure in \p Layer passing \p Args.
  void callLayer(unsigned Layer, const std::vector<std::string> &Args) {
    std::vector<std::string> A = Args;
    A.resize(Cfg.ParamsPerProc, Args.empty() ? "nil" : Args.back());
    Sink.call(utilName(Layer,
                       static_cast<unsigned>(R.below(Cfg.ProcsPerLayer))),
              A);
  }

  /// Workers operate on a *single* parameter: one case family, with a
  /// dominating case — the structure under which the paper found theta=1
  /// effective ("the identity function with a certain precondition was
  /// the dominating case"). Plumbing procedures never touch typestates;
  /// their summaries are pure identities that serve every context. The
  /// unpruned bottom-up analysis still blows up: plumbing composes the
  /// case families of several callees over distinct arguments, which
  /// multiplies across layers.
  void emitUtility(unsigned Layer, unsigned Idx) {
    std::vector<std::string> Params;
    for (unsigned P = 0; P != Cfg.ParamsPerProc; ++P)
      Params.push_back("f" + std::to_string(P));
    Sink.beginProc(utilName(Layer, Idx), Params);

    // Three procedure flavours, in decreasing frequency:
    //  * plumbing: manipulates untracked Data objects only; File tuples
    //    flow through as identities,
    //  * straight workers: an unconditional balanced use of the first
    //    parameter; their case families partition the input space, so
    //    theta = 1 keeps the dominating case,
    //  * branchy workers: the use sits behind if(*); the skip arm's
    //    identity overlaps the use cases, so these need theta >= 2 to be
    //    servable (the effect behind the paper's Table 4).
    enum class Flavour { Plumbing, Straight, Branchy, Gnarly };
    uint64_t Draw = R.below(1000);
    Flavour F =
        Draw < Cfg.GnarlyPerMille ? Flavour::Gnarly
        : Draw < Cfg.GnarlyPerMille + Cfg.BranchyPerMille ? Flavour::Branchy
        : Draw < Cfg.GnarlyPerMille + Cfg.BranchyPerMille +
                     Cfg.StraightPerMille
            ? Flavour::Straight
            : Flavour::Plumbing;
    if (Layer + 1 == Cfg.Layers && F == Flavour::Plumbing)
      F = Flavour::Straight; // Leaves always do something.

    switch (F) {
    case Flavour::Plumbing: {
      Sink.alloc("d", "Data");
      Sink.tsCall("d", "touch");
      std::string Fld = randomField();
      Sink.store("d", Fld, "d");
      Sink.load("e", "d", Fld);
      Sink.tsCall("e", "touch");
      break;
    }
    case Flavour::Straight:
      useObject(Params[0]);
      if (perMille(Cfg.LoopPerMille)) {
        Sink.beginLoop();
        useObject(Params[0]);
        Sink.endLoop();
      }
      break;
    case Flavour::Branchy:
      for (unsigned B = 0; B != Cfg.BranchesPerProc; ++B) {
        Sink.beginIf();
        useObject(Params[0]);
        Sink.endIf();
      }
      break;
    case Flavour::Gnarly:
      // Distinct typestate effects on *both* parameters behind nested
      // branches: the unpruned bottom-up analysis must track the full
      // product of cases (the exponential growth of Section 2.2), while
      // the pruned analysis keeps theta of them and falls back for the
      // rest.
      for (unsigned B = 0; B != std::max(1u, Cfg.BranchesPerProc); ++B) {
        Sink.beginIf();
        useObject(Params[0]);
        Sink.orElse();
        Sink.tsCall(Params[B % Params.size()], "reset");
        Sink.beginIf();
        useObject(Params[(B + 1) % Params.size()]);
        Sink.endIf();
        Sink.endIf();
      }
      break;
    }

    // Field segment: stash a fresh tracked object in a field of a
    // parameter, read it back, use it. Exercises load/store transfer
    // functions and the mod-ref framing at call boundaries.
    if (F != Flavour::Plumbing && perMille(Cfg.FieldSegmentPerMille)) {
      std::string Fld = randomField();
      Sink.alloc("x", "File");
      Sink.store(Params[0], Fld, "x");
      Sink.load("y", Params[0], Fld);
      useObject("y");
    }

    // Calls into the next layer. The first call passes parameters
    // straight through (keeping incoming profiles uniform — the common
    // case in real code); later calls rotate them, which diversifies the
    // callee's argument bindings and is the composition pressure that
    // blows up the unpruned bottom-up analysis.
    if (Layer + 1 != Cfg.Layers) {
      for (unsigned C = 0; C != Cfg.CallsPerProc; ++C) {
        std::vector<std::string> Args;
        unsigned Rot = C <= 1 ? 0 : C - 1;
        for (unsigned P = 0; P != Cfg.ParamsPerProc; ++P)
          Args.push_back(Params[(P + Rot) % Params.size()]);
        callLayer(Layer + 1, Args);
      }
    }

    // Guarded self-recursion (same argument order, as recursive helpers
    // overwhelmingly do; reversing arguments makes the relational
    // fixpoint enumerate argument-permutation cases).
    if (perMille(Cfg.RecursionPerMille)) {
      Sink.beginIf();
      Sink.call(utilName(Layer, Idx), Params);
      Sink.endIf();
    }

    Sink.ret(Params[0]);
    Sink.endProc();
  }

  void emitDriver(unsigned Idx) {
    (void)Idx;
    Sink.beginProc(driverName(Idx), {});
    std::vector<std::string> Objects;
    for (unsigned J = 0; J != Cfg.ObjectsPerDriver; ++J) {
      std::string V = "v" + std::to_string(J);
      Sink.alloc(V, "File");
      Objects.push_back(V);
      // Feed the fresh object into the top utility layer. Distinct
      // allocation sites and growing must-not sets give each call a
      // distinct incoming abstract state — the top-down analysis's
      // context blow-up. Occasionally an older object rides along, which
      // diversifies the secondary-argument profile.
      std::vector<std::string> Args{V};
      if (J > 0 && R.chance(1, 8))
        Args.push_back(Objects[static_cast<size_t>(R.below(J))]);
      callLayer(0, Args);
    }

    // A merged variable with unknown aliasing (neither must nor must-not):
    // exercises the may-alias weak-update cases B3/B4.
    if (Objects.size() >= 2 && perMille(Cfg.MixedCallPerMille)) {
      Sink.beginIf();
      Sink.copy("m", Objects[0]);
      Sink.orElse();
      Sink.copy("m", Objects[1]);
      Sink.endIf();
      callLayer(0, {"m", Objects[0]});
    }

    // A genuine protocol violation: double open.
    if (!Objects.empty() && perMille(Cfg.BugPerMille)) {
      Sink.tsCall(Objects[0], "open");
      Sink.tsCall(Objects[0], "open");
    }

    // A loop allocating at a fixed site: the classic converging context.
    Sink.beginLoop();
    Sink.alloc("w", "File");
    callLayer(0, {"w"});
    Sink.endLoop();

    Sink.ret();
    Sink.endProc();
  }

  void emitMain() {
    Sink.beginProc("main", {});
    for (unsigned D = 0; D != Cfg.NumDrivers; ++D)
      Sink.call(driverName(D), {});
    Sink.endProc();
  }

  const GenConfig &Cfg;
  GenSink &Sink;
  Rng R;
};

} // namespace

void swift::emitWorkload(const GenConfig &Cfg, GenSink &Sink) {
  WorkloadGenerator(Cfg, Sink).run();
}

std::unique_ptr<Program> swift::generateWorkload(const GenConfig &Cfg,
                                                 GenStats *Stats) {
  BuilderSink Sink;
  emitWorkload(Cfg, Sink);
  std::unique_ptr<Program> Prog = Sink.finish("main");
  if (Stats) {
    Stats->Procs = Prog->numProcs();
    Stats->Commands = Prog->numCommands();
    Stats->Calls = Prog->numCallCommands();
    Stats->Sites = Prog->numSites();
    Stats->SourceLines = sourceLineEstimate(*Prog);
  }
  return Prog;
}

std::string swift::generateWorkloadTsl(const GenConfig &Cfg) {
  TslSink Sink;
  emitWorkload(Cfg, Sink);
  return Sink.text();
}
