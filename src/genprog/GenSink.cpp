//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "genprog/GenSink.h"

using namespace swift;

std::string TslSink::joinArgs(const std::vector<std::string> &A) {
  std::string S;
  for (size_t I = 0; I != A.size(); ++I) {
    if (I)
      S += ", ";
    S += A[I];
  }
  return S;
}

void TslSink::line(const std::string &S) {
  for (unsigned I = 0; I != Indent; ++I)
    Out += "  ";
  Out += S;
  Out += "\n";
  ++Lines;
}

void TslSink::typestate(const std::string &Name,
                        const std::vector<std::string> &States,
                        const std::string &Init, const std::string &Error,
                        const std::vector<ProgramBuilder::Transition> &Ts) {
  line("typestate " + Name + " {");
  ++Indent;
  line("start " + Init + ";");
  line("error " + Error + ";");
  for (const std::string &S : States)
    if (S != Init && S != Error)
      line("state " + S + ";");
  for (const ProgramBuilder::Transition &T : Ts)
    line(T.From + " -" + T.Method + "-> " + T.To + ";");
  --Indent;
  line("}");
}

void TslSink::beginProc(const std::string &Name,
                        const std::vector<std::string> &Params) {
  line("proc " + Name + "(" + joinArgs(Params) + ") {");
  ++Indent;
}

void TslSink::endProc() {
  --Indent;
  line("}");
}
