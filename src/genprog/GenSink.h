//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Output interface of the workload generator. The generator drives a
/// GenSink with structured program-construction events; one sink builds
/// the IR directly, another renders TSL source text (used to measure
/// workload KLOC for the Table 1 reproduction and to persist generated
/// programs).
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_GENPROG_GENSINK_H
#define SWIFT_GENPROG_GENSINK_H

#include "ir/ProgramBuilder.h"

#include <memory>
#include <string>
#include <vector>

namespace swift {

class GenSink {
public:
  virtual ~GenSink() = default;

  virtual void typestate(const std::string &Name,
                         const std::vector<std::string> &States,
                         const std::string &Init, const std::string &Error,
                         const std::vector<ProgramBuilder::Transition> &Ts) = 0;
  virtual void beginProc(const std::string &Name,
                         const std::vector<std::string> &Params) = 0;
  virtual void endProc() = 0;
  virtual void alloc(const std::string &Dst, const std::string &Class) = 0;
  virtual void copy(const std::string &Dst, const std::string &Src) = 0;
  virtual void assignNull(const std::string &Dst) = 0;
  virtual void load(const std::string &Dst, const std::string &Base,
                    const std::string &Field) = 0;
  virtual void store(const std::string &Base, const std::string &Field,
                     const std::string &Src) = 0;
  virtual void tsCall(const std::string &Recv, const std::string &M) = 0;
  virtual void call(const std::string &Callee,
                    const std::vector<std::string> &Args) = 0;
  virtual void callAssign(const std::string &Dst, const std::string &Callee,
                          const std::vector<std::string> &Args) = 0;
  virtual void beginIf() = 0;
  virtual void orElse() = 0;
  virtual void endIf() = 0;
  virtual void beginLoop() = 0;
  virtual void endLoop() = 0;
  virtual void ret(const std::string &V) = 0;
  virtual void ret() = 0;
};

/// Builds the IR via ProgramBuilder.
class BuilderSink : public GenSink {
public:
  BuilderSink() = default;

  /// Finalizes and returns the program. Call once, after generation.
  std::unique_ptr<Program> finish(const std::string &MainName) {
    return B.finish(MainName);
  }

  void typestate(const std::string &Name,
                 const std::vector<std::string> &States,
                 const std::string &Init, const std::string &Error,
                 const std::vector<ProgramBuilder::Transition> &Ts) override {
    B.addTypestate(Name, States, Init, Error, Ts);
  }
  void beginProc(const std::string &Name,
                 const std::vector<std::string> &Params) override {
    B.beginProc(Name, Params);
  }
  void endProc() override { B.endProc(); }
  void alloc(const std::string &D, const std::string &C) override {
    B.alloc(D, C);
  }
  void copy(const std::string &D, const std::string &S) override {
    B.copy(D, S);
  }
  void assignNull(const std::string &D) override { B.assignNull(D); }
  void load(const std::string &D, const std::string &Ba,
            const std::string &F) override {
    B.load(D, Ba, F);
  }
  void store(const std::string &Ba, const std::string &F,
             const std::string &S) override {
    B.store(Ba, F, S);
  }
  void tsCall(const std::string &R, const std::string &M) override {
    B.tsCall(R, M);
  }
  void call(const std::string &C,
            const std::vector<std::string> &A) override {
    B.call(C, A);
  }
  void callAssign(const std::string &D, const std::string &C,
                  const std::vector<std::string> &A) override {
    B.callAssign(D, C, A);
  }
  void beginIf() override { B.beginIf(); }
  void orElse() override { B.orElse(); }
  void endIf() override { B.endIf(); }
  void beginLoop() override { B.beginLoop(); }
  void endLoop() override { B.endLoop(); }
  void ret(const std::string &V) override { B.ret(V); }
  void ret() override { B.ret(); }

private:
  ProgramBuilder B;
};

/// Renders TSL source text.
class TslSink : public GenSink {
public:
  const std::string &text() const { return Out; }
  size_t lines() const { return Lines; }

  void typestate(const std::string &Name,
                 const std::vector<std::string> &States,
                 const std::string &Init, const std::string &Error,
                 const std::vector<ProgramBuilder::Transition> &Ts) override;
  void beginProc(const std::string &Name,
                 const std::vector<std::string> &Params) override;
  void endProc() override;
  void alloc(const std::string &D, const std::string &C) override {
    line(D + " = new " + C + ";");
  }
  void copy(const std::string &D, const std::string &S) override {
    line(D + " = " + S + ";");
  }
  void assignNull(const std::string &D) override { line(D + " = null;"); }
  void load(const std::string &D, const std::string &Ba,
            const std::string &F) override {
    line(D + " = " + Ba + "." + F + ";");
  }
  void store(const std::string &Ba, const std::string &F,
             const std::string &S) override {
    line(Ba + "." + F + " = " + S + ";");
  }
  void tsCall(const std::string &R, const std::string &M) override {
    line(R + "." + M + "();");
  }
  void call(const std::string &C,
            const std::vector<std::string> &A) override {
    line(C + "(" + joinArgs(A) + ");");
  }
  void callAssign(const std::string &D, const std::string &C,
                  const std::vector<std::string> &A) override {
    line(D + " = " + C + "(" + joinArgs(A) + ");");
  }
  void beginIf() override {
    line("if (*) {");
    ++Indent;
  }
  void orElse() override {
    --Indent;
    line("} else {");
    ++Indent;
  }
  void endIf() override {
    --Indent;
    line("}");
  }
  void beginLoop() override {
    line("while (*) {");
    ++Indent;
  }
  void endLoop() override {
    --Indent;
    line("}");
  }
  void ret(const std::string &V) override { line("return " + V + ";"); }
  void ret() override { line("return;"); }

private:
  static std::string joinArgs(const std::vector<std::string> &A);
  void line(const std::string &S);

  std::string Out;
  size_t Lines = 0;
  unsigned Indent = 0;
};

} // namespace swift

#endif // SWIFT_GENPROG_GENSINK_H
