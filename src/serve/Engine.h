//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental summary engine behind swift-serve: keeps one swift-ir
/// program resident with a complete set of bottom-up relational summaries,
/// and on a procedure-replacement edit re-analyzes only the summaries the
/// edit can actually change, reusing everything else.
///
/// Invalidation is dependency-driven and oracle-aware. During every solve
/// the engine records summary->callee read edges via the solver's dep
/// recorder. Per procedure it also keeps
///
///  * a body hash over the procedure's canonical text block, and
///  * an *oracle fingerprint*: a hash over every whole-program oracle
///    answer the procedure's own analysis can consume — the may-alias
///    points-to set of each of its variables and the mod-field set of
///    each of its direct callees (both keyed by name, since symbol ids
///    shift across a re-parse).
///
/// After an edit the seeds are the procedures whose body hash *or*
/// fingerprint changed; the invalidated set is their upward closure over
/// the recorded dependency edges (edges within a call-graph SCC are
/// cyclic, so SCCs invalidate atomically). Every retained summary is
/// translated into the new program's symbol vocabulary through the store
/// codec, installed into a fresh solver, and only the procedures that are
/// reachable from main and not still valid are re-run. The fingerprint is
/// what makes reuse sound: a retained summary's every oracle query is
/// guaranteed to answer identically in the new program, so it equals what
/// re-analysis would recompute (inductively, callee-first).
///
/// Edits are transactional: a rejected edit (parse error, wrong name,
/// budget exhaustion under the per-request governor) leaves the engine
/// exactly as it was.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SERVE_ENGINE_H
#define SWIFT_SERVE_ENGINE_H

#include "serve/Journal.h"
#include "serve/Store.h"
#include "typestate/Runner.h"

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace swift {
namespace serve {

struct EngineOptions {
  /// Typestate class under analysis; empty selects the program's first
  /// spec.
  std::string TrackedClass;
  /// Per-request solver budget (each solve gets a fresh governor with
  /// this step cap, so one pathological edit cannot wedge the server).
  uint64_t MaxStepsPerRequest = 200'000'000;
  /// Per-program-point relation cap handed to the relational solver.
  /// Exceeding it fails the request like budget exhaustion (it models
  /// running out of memory); batch callers that sweep many programs
  /// lower it to fail fast on relation blow-ups.
  uint64_t MaxRelsPerPoint = DefaultMaxRelsPerPoint;
  /// Warm-start store path; empty disables persistence. The initial
  /// solve auto-saves when set; so does every successful edit *unless* a
  /// journal is configured — with a journal, durability comes from the
  /// fsync'd append and the store is only rewritten by compact().
  std::string StorePath;
  /// Write-ahead journal path; empty disables journaling. When set,
  /// every accepted edit is framed, appended, and fsync'd before the
  /// engine commits it (so before any success response can be sent).
  std::string JournalPath;
  /// Default per-request wall-clock deadline in milliseconds; 0 means no
  /// deadline. Mapped onto the per-request governor budget, so a solve
  /// that overruns it fails like budget exhaustion — transactionally,
  /// with the result flagged Degraded.
  uint64_t RequestDeadlineMs = 0;
};

/// Outcome of solveInitial / applyEdit. On !Ok the engine state is
/// untouched.
struct EditResult {
  bool Ok = false;
  bool BudgetExhausted = false; ///< The per-request governor went Red.
  /// The request ran under a deadline and exhausted its budget: the
  /// engine's retained (pre-edit) verdicts are the sound partial answer
  /// the caller should serve. Implies BudgetExhausted && !Ok.
  bool Degraded = false;
  std::string Error;            ///< Empty iff Ok.
  std::string Warning;          ///< Non-fatal (e.g. store auto-save failed).
  size_t Invalidated = 0;       ///< Summaries dropped by the edit.
  size_t Reanalyzed = 0;        ///< Procedures the solver re-ran.
  size_t Reused = 0;            ///< Valid summaries carried across.
};

class ServeEngine {
public:
  /// Parses \p ProgramText and prepares (but does not run) the analysis.
  /// Throws std::runtime_error on parse errors or a missing typestate
  /// spec for the tracked class.
  ServeEngine(std::string_view ProgramText, EngineOptions Opts);

  /// Warm-start tag: distinguishes the store-path constructor from the
  /// program-text one (a std::string argument would otherwise bind to
  /// either).
  struct FromStore {
    std::string Path;
  };

  /// Warm start: loads a store file, adopts its program and every
  /// hash/fingerprint-verified summary. Call solveInitial() afterwards to
  /// fill any gaps (a verbatim warm start re-analyzes nothing). Throws on
  /// unreadable/corrupt stores.
  ServeEngine(const FromStore &Store, EngineOptions Opts);

  ~ServeEngine();

  /// Brings the summary set to completeness over the procedures reachable
  /// from main, reusing whatever valid summaries are present (all of
  /// them, on a warm start). Idempotent once solved.
  EditResult solveInitial();

  /// Replaces procedure \p ProcName's block with \p BodyText (a full
  /// `proc ...` block in swift-ir syntax), re-validates, invalidates, and
  /// incrementally re-solves. Transactional; see file header. When a
  /// journal is configured the accepted edit is appended + fsync'd
  /// *before* commit (append failure rejects the edit). \p DeadlineMs
  /// overrides EngineOptions::RequestDeadlineMs for this request only;
  /// 0 keeps the configured default.
  EditResult applyEdit(const std::string &ProcName,
                       std::string_view BodyText, uint64_t DeadlineMs = 0);

  /// True iff a write-ahead journal is configured.
  bool journaling() const { return Jrnl != nullptr; }

  /// Replays every valid journal record against the current state (a
  /// torn tail is truncated off the file first — see
  /// Journal::replayAndRepair). Replay is idempotent: a record whose
  /// body already matches the resident block seeds nothing and reuses
  /// everything. Replayed edits are not re-appended and never auto-save.
  /// Returns the first failure (budget exhaustion, corrupt record) or
  /// Ok; \p NumReplayed (optional) receives the number of records
  /// applied so far.
  EditResult replayJournal(size_t *NumReplayed = nullptr);

  /// Resets the journal to the fresh magic header (no-op without one).
  void resetJournal();

  /// Compaction: snapshot the current state into the configured store
  /// (atomically), then reset the journal — the crash contract is that
  /// store+journal recovery coincides with the pre-compaction state at
  /// every kill position. Throws on I/O failure (journal left intact if
  /// the store save fails).
  void compact();

  /// True once summaries cover every procedure reachable from main.
  bool solved() const { return Complete; }

  const Program &program() const { return *Prog; }
  /// Canonical program text (printProgramText form; edits splice here).
  const std::string &programText() const { return Text; }
  const std::string &trackedClass() const { return TrackedName; }

  /// Verdict for one allocation site. Untracked sites are Proved; tracked
  /// sites are Unresolved until the engine is solved.
  TsVerdict verdict(SiteId S) const;
  const std::set<SiteId> &errorSites() const { return Errors; }
  /// True iff \p S is an allocation site of the tracked class.
  bool trackedSite(SiteId S) const;

  size_t numProcs() const;
  size_t numSummaries() const;

  /// Persists the current state (only meaningful once solved). Throws on
  /// I/O failure; failpoint prefix "serve.save".
  void saveStore(const std::string &Path) const;
  void saveStore() const; ///< To EngineOptions::StorePath.

private:
  struct ProcState {
    uint64_t BodyHash = 0;
    uint64_t OracleFp = 0;
    bool Valid = false;
    TsSummary Sum;
    std::vector<ProcId> Deps; ///< Recorded callee reads, sorted unique.
  };

  /// Solves `Need` procedures on (NewProg, NewCtx) with the still-valid
  /// summaries pre-installed, then commits everything on success. Shared
  /// by solveInitial and applyEdit. \p DeadlineMs bounds the solve's
  /// wall clock (0 = none); on overrun the result is Degraded. \p Rec,
  /// when non-null, is journal-appended after a successful solve and
  /// *before* commit — durable-then-visible. \p AutoSave controls the
  /// store auto-save (suppressed under journaling and during replay).
  EditResult solveAndCommit(std::unique_ptr<Program> NewProg,
                            std::unique_ptr<TsContext> NewCtx,
                            std::string NewText,
                            std::vector<ProcState> NewPS,
                            size_t Invalidated, uint64_t DeadlineMs,
                            const Journal::Record *Rec, bool AutoSave);

  /// applyEdit minus the journal-append/auto-save policy decisions;
  /// replayJournal uses it with \p JournalAppend = false.
  EditResult applyEditImpl(const std::string &ProcName,
                           std::string_view BodyText, uint64_t DeadlineMs,
                           bool JournalAppend);

  void deriveErrors();
  uint64_t fingerprint(const TsContext &Ctx, ProcId P) const;

  EngineOptions Opt;
  std::unique_ptr<Journal> Jrnl; ///< Null unless Opt.JournalPath is set.
  std::string TrackedName;
  std::string Text; ///< Always the canonical printProgramText output.
  std::unique_ptr<Program> Prog;
  std::unique_ptr<TsContext> Ctx;
  std::vector<ProcState> PS; ///< Indexed by ProcId.
  std::set<SiteId> Errors;
  bool Complete = false;
};

//===----------------------------------------------------------------------===//
// Canonical-text block utilities (shared with EditGen)
//===----------------------------------------------------------------------===//

/// One `proc` block of canonical program text.
struct ProcBlock {
  std::string Name;
  size_t Begin = 0; ///< Offset of the `proc` header line.
  size_t End = 0;   ///< Offset one past the closing `}` line's newline.
};

/// Splits canonical (printProgramText) output into its procedure blocks,
/// in textual order. Non-proc regions (typestate blocks, the main line)
/// are not returned.
std::vector<ProcBlock> procBlocks(std::string_view CanonText);

} // namespace serve
} // namespace swift

#endif // SWIFT_SERVE_ENGINE_H
