//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "serve/Engine.h"

#include "framework/RelationalSolver.h"
#include "ir/Dumper.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Hashing.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>

using namespace swift;
using namespace swift::serve;

//===----------------------------------------------------------------------===//
// Canonical-text utilities
//===----------------------------------------------------------------------===//

std::vector<ProcBlock> serve::procBlocks(std::string_view CanonText) {
  std::vector<ProcBlock> Out;
  size_t Pos = 0;
  while (Pos < CanonText.size()) {
    size_t Eol = CanonText.find('\n', Pos);
    size_t LineEnd = Eol == std::string_view::npos ? CanonText.size()
                                                   : Eol + 1;
    std::string_view Line = CanonText.substr(Pos, LineEnd - Pos);
    if (Line.substr(0, 5) == "proc ") {
      ProcBlock B;
      B.Begin = Pos;
      size_t NameEnd = Line.find('(', 5);
      if (NameEnd == std::string_view::npos)
        NameEnd = Line.size();
      B.Name = std::string(Line.substr(5, NameEnd - 5));
      // The block runs through the next column-0 "}" line.
      size_t Close = CanonText.find("\n}\n", Pos);
      size_t End = Close == std::string_view::npos ? CanonText.size()
                                                   : Close + 3;
      B.End = End;
      Out.push_back(std::move(B));
      Pos = End;
      continue;
    }
    Pos = LineEnd;
  }
  return Out;
}

namespace {

/// FNV-1a over a byte range, finalized with mix64 so block hashes and
/// fingerprint hashes live in the same well-mixed space.
uint64_t hashBytes(std::string_view Bytes) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : Bytes)
    H = (H ^ static_cast<unsigned char>(C)) * 0x100000001b3ULL;
  return mix64(H);
}

/// Per-proc body hashes over the canonical text, keyed by name.
std::unordered_map<std::string, uint64_t>
blockHashes(std::string_view CanonText) {
  std::unordered_map<std::string, uint64_t> Out;
  for (const ProcBlock &B : procBlocks(CanonText))
    Out[B.Name] = hashBytes(CanonText.substr(B.Begin, B.End - B.Begin));
  return Out;
}

Symbol resolveTracked(Program &Prog, const std::string &Name) {
  if (Prog.numSpecs() == 0)
    throw std::runtime_error("swift-serve: program declares no typestate "
                             "spec");
  Symbol Tracked = Name.empty() ? Prog.spec(0).name()
                                : Prog.symbols().intern(Name);
  if (!Prog.specFor(Tracked))
    throw std::runtime_error("swift-serve: no typestate spec for class '" +
                             Prog.symbols().text(Tracked) + "'");
  return Tracked;
}

} // namespace

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

/// Hashes every whole-program oracle answer procedure \p P's own analysis
/// can consume: pointsTo(P, v) for each of its variables (the may-alias
/// oracle is a pure function of these site sets) and modFields(G) for
/// each direct callee G (the mod-ref oracle behind call composition).
/// Everything is keyed by *name* — symbol ids shift across a re-parse of
/// an edited program, names do not. Oracle facts consumed transitively
/// (through a callee's summary) are covered by that callee's own
/// fingerprint plus the recorded dependency edge, so invalidation
/// composes exactly like summary construction does.
uint64_t ServeEngine::fingerprint(const TsContext &C, ProcId P) const {
  const Program &Pr = C.program();
  const SymbolTable &Syms = Pr.symbols();
  const Procedure &Proc = Pr.proc(P);
  uint64_t H = 0x5eedf1f0;
  for (Symbol V : Proc.vars()) {
    H = hashCombine(H, hashBytes(Syms.text(V)));
    for (SiteId S : C.aliases().pointsTo(P, V))
      H = hashCombine(H, S);
    H = hashCombine(H, 0xa11a5);
  }
  for (ProcId G : C.callGraph().callees(P)) {
    H = hashCombine(H, hashBytes(Syms.text(Pr.proc(G).name())));
    std::vector<std::string> Fields;
    for (Symbol F : C.modRef().modFields(G))
      Fields.push_back(Syms.text(F));
    std::sort(Fields.begin(), Fields.end());
    for (const std::string &F : Fields)
      H = hashCombine(H, hashBytes(F));
    H = hashCombine(H, 0xca11ee);
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

ServeEngine::ServeEngine(std::string_view ProgramText, EngineOptions Opts)
    : Opt(std::move(Opts)) {
  if (!Opt.JournalPath.empty())
    Jrnl = std::make_unique<Journal>(Opt.JournalPath);
  Prog = parseProgramText(ProgramText);
  Symbol Tracked = resolveTracked(*Prog, Opt.TrackedClass);
  TrackedName = Prog->symbols().text(Tracked);
  Ctx = std::make_unique<TsContext>(*Prog, Tracked);
  Text = programToText(*Prog);
  std::unordered_map<std::string, uint64_t> Hashes = blockHashes(Text);
  PS.resize(Prog->numProcs());
  for (ProcId P = 0; P != Prog->numProcs(); ++P) {
    PS[P].BodyHash = Hashes.at(Prog->symbols().text(Prog->proc(P).name()));
    PS[P].OracleFp = fingerprint(*Ctx, P);
  }
}

ServeEngine::ServeEngine(const FromStore &From, EngineOptions Opts)
    : Opt(std::move(Opts)) {
  if (!Opt.JournalPath.empty())
    Jrnl = std::make_unique<Journal>(Opt.JournalPath);
  ParsedStore Store = loadStoreFile(From.Path);
  if (!Opt.TrackedClass.empty() && Opt.TrackedClass != Store.TrackedClass)
    throw StoreError("swift-serve-store: store tracks class '" +
                     Store.TrackedClass + "', requested '" +
                     Opt.TrackedClass + "'");
  Prog = std::move(Store.Prog);
  Symbol Tracked = resolveTracked(*Prog, Store.TrackedClass);
  TrackedName = Prog->symbols().text(Tracked);
  Ctx = std::make_unique<TsContext>(*Prog, Tracked);
  Text = programToText(*Prog);
  std::unordered_map<std::string, uint64_t> Hashes = blockHashes(Text);
  PS.resize(Prog->numProcs());
  std::vector<uint8_t> Seen(Prog->numProcs(), 0);
  for (StoredProc &SP : Store.Procs) {
    ProcId P = Prog->procId(Prog->symbols().intern(SP.Name));
    if (Seen[P])
      throw StoreError("swift-serve-store: duplicate record for "
                       "procedure '" +
                       SP.Name + "'");
    Seen[P] = 1;
    PS[P].BodyHash = Hashes.at(SP.Name);
    PS[P].OracleFp = fingerprint(*Ctx, P);
    // Adopt the stored summary only when the stored hash and fingerprint
    // match what this build computes over the embedded program — a store
    // from a different codec epoch silently degrades to a cold start
    // instead of serving stale facts.
    if (!SP.HasSummary || SP.BodyHash != PS[P].BodyHash ||
        SP.OracleFp != PS[P].OracleFp)
      continue;
    std::vector<ProcId> Deps;
    bool DepsOk = true;
    for (const std::string &D : SP.Deps) {
      ProcId G = Prog->procId(Prog->symbols().intern(D));
      if (G == InvalidProc) {
        DepsOk = false;
        break;
      }
      Deps.push_back(G);
    }
    if (!DepsOk)
      continue;
    std::sort(Deps.begin(), Deps.end());
    Deps.erase(std::unique(Deps.begin(), Deps.end()), Deps.end());
    PS[P].Valid = true;
    PS[P].Sum = std::move(SP.Sum);
    PS[P].Deps = std::move(Deps);
  }
}

ServeEngine::~ServeEngine() = default;

//===----------------------------------------------------------------------===//
// Solving
//===----------------------------------------------------------------------===//

EditResult ServeEngine::solveAndCommit(std::unique_ptr<Program> NewProg,
                                       std::unique_ptr<TsContext> NewCtx,
                                       std::string NewText,
                                       std::vector<ProcState> NewPS,
                                       size_t Invalidated, uint64_t DeadlineMs,
                                       const Journal::Record *Rec,
                                       bool AutoSave) {
  const Program &Pr = *NewProg;
  const TsContext &C = *NewCtx;
  EditResult R;
  R.Invalidated = Invalidated;

  std::vector<ProcId> Reach = C.callGraph().reachableFrom(Pr.mainProc());
  std::vector<ProcId> Need;
  for (ProcId P : Reach)
    if (!NewPS[P].Valid)
      Need.push_back(P);
  R.Reused = Reach.size() - Need.size();
  R.Reanalyzed = Need.size();

  if (!Need.empty()) {
    obs::TraceSpan Span("serve", "serve.solve",
                        {"need", static_cast<uint64_t>(Need.size())});
    GovernorLimits Limits;
    Limits.MaxSteps = Opt.MaxStepsPerRequest;
    // A request deadline rides the same budget the step cap does: the
    // solver's periodic wall-clock poll trips it, the solve fails
    // transactionally, and the caller serves the retained verdicts as a
    // sound-but-stale degraded answer.
    if (DeadlineMs != 0)
      Limits.MaxSeconds = static_cast<double>(DeadlineMs) / 1000.0;
    ResourceGovernor Gov(Limits);
    Stats Stat;
    RelationalSolver<TsAnalysis> Solver(
        C, Pr, C.callGraph(), NoPruning,
        [](ProcId) -> const std::unordered_map<TsAbstractState, uint64_t> * {
          return nullptr;
        },
        Gov.budget(), Stat, Opt.MaxRelsPerPoint,
        /*CollectObservations=*/true, /*NumThreads=*/1, &Gov);
    for (ProcId P = 0; P != Pr.numProcs(); ++P)
      if (NewPS[P].Valid)
        Solver.installSummary(P, NewPS[P].Sum);
    // Threads=1, so the recorder needs no synchronization.
    std::vector<std::vector<ProcId>> RecDeps(Pr.numProcs());
    Solver.setDepRecorder([&RecDeps](ProcId Caller, ProcId Callee) {
      RecDeps[Caller].push_back(Callee);
    });
    if (!Solver.run(Need)) {
      R.BudgetExhausted = true;
      R.Degraded = DeadlineMs != 0;
      if (R.Degraded)
        R.Error = "request deadline (" + std::to_string(DeadlineMs) +
                  " ms) or resource budget exceeded after " +
                  std::to_string(Gov.budget().steps()) +
                  " steps; state unchanged, pre-edit verdicts remain "
                  "the sound answer";
      else
        R.Error = "per-request resource budget exhausted (step or "
                  "relation cap) after " +
                  std::to_string(Gov.budget().steps()) +
                  " steps; state unchanged";
      return R;
    }
    for (ProcId P : Need) {
      NewPS[P].Valid = true;
      NewPS[P].Sum = Solver.summary(P);
      std::vector<ProcId> &D = RecDeps[P];
      std::sort(D.begin(), D.end());
      D.erase(std::unique(D.begin(), D.end()), D.end());
      NewPS[P].Deps = std::move(D);
    }
  }

  // Durable-then-visible: the journal record hits stable storage before
  // the commit below, so every state a client was ever told about is
  // reconstructible from store + journal. An append failure rejects the
  // edit with the engine untouched.
  if (Rec) {
    try {
      Jrnl->append(*Rec);
    } catch (const std::exception &E) {
      R.Ok = false;
      R.Error = std::string("journal append failed; edit rejected: ") +
                E.what();
      return R;
    }
  }

  // Commit. Destroy the old context before the old program (the context
  // holds references into it): the moves below run in exactly that order.
  Ctx = std::move(NewCtx);
  Prog = std::move(NewProg);
  Text = std::move(NewText);
  PS = std::move(NewPS);
  Complete = true;
  deriveErrors();
  R.Ok = true;

  if (obs::metricsEnabled()) {
    static obs::Histogram *Reanalyzed =
        obs::MetricsRegistry::instance().histogram("serve.reanalyzed_procs");
    static obs::Histogram *Reused =
        obs::MetricsRegistry::instance().histogram("serve.reused_procs");
    static obs::Histogram *Invd =
        obs::MetricsRegistry::instance().histogram("serve.invalidated_procs");
    Reanalyzed->record(R.Reanalyzed);
    Reused->record(R.Reused);
    Invd->record(R.Invalidated);
  }

  if (AutoSave && !Opt.StorePath.empty()) {
    try {
      saveStore();
    } catch (const std::exception &E) {
      R.Warning = std::string("store auto-save failed: ") + E.what();
    }
  }
  return R;
}

EditResult ServeEngine::solveInitial() {
  if (Complete) {
    EditResult R;
    R.Ok = true;
    R.Reused = PS.size();
    return R;
  }
  // Re-parse our own canonical text so the new Program/Context pair can be
  // committed wholesale by the shared path; summaries (from a warm start)
  // must be translated into the fresh symbol table like any retained set.
  std::unique_ptr<Program> NewProg = parseProgramText(Text);
  Symbol Tracked = NewProg->symbols().intern(TrackedName);
  auto NewCtx = std::make_unique<TsContext>(*NewProg, Tracked);
  std::vector<ProcState> NewPS(PS.size());
  for (ProcId P = 0; P != PS.size(); ++P) {
    NewPS[P].BodyHash = PS[P].BodyHash;
    NewPS[P].OracleFp = PS[P].OracleFp;
    if (!PS[P].Valid)
      continue;
    NewPS[P].Valid = true;
    NewPS[P].Deps = PS[P].Deps;
    NewPS[P].Sum = parseSummaryText(*NewProg, summaryToText(*Prog, PS[P].Sum));
  }
  // The initial solve is startup, not client traffic: no deadline, no
  // journal record, and it does auto-save (it establishes the baseline
  // store the journal is replayed on top of).
  return solveAndCommit(std::move(NewProg), std::move(NewCtx), Text,
                        std::move(NewPS), /*Invalidated=*/0,
                        /*DeadlineMs=*/0, /*Rec=*/nullptr,
                        /*AutoSave=*/true);
}

//===----------------------------------------------------------------------===//
// Edits
//===----------------------------------------------------------------------===//

namespace {

EditResult editError(std::string Msg) {
  EditResult R;
  R.Error = std::move(Msg);
  return R;
}

} // namespace

EditResult ServeEngine::applyEdit(const std::string &ProcName,
                                  std::string_view BodyText,
                                  uint64_t DeadlineMs) {
  return applyEditImpl(ProcName, BodyText,
                       DeadlineMs != 0 ? DeadlineMs : Opt.RequestDeadlineMs,
                       /*JournalAppend=*/true);
}

EditResult ServeEngine::applyEditImpl(const std::string &ProcName,
                                      std::string_view BodyText,
                                      uint64_t DeadlineMs,
                                      bool JournalAppend) {
  if (!Complete)
    return editError("engine is not solved yet; run the initial solve "
                     "before editing");
  obs::TraceSpan Span("serve", "serve.edit");

  // Locate the block to replace in the canonical text.
  std::vector<ProcBlock> Blocks = procBlocks(Text);
  const ProcBlock *Target = nullptr;
  for (const ProcBlock &B : Blocks)
    if (B.Name == ProcName)
      Target = &B;
  if (!Target)
    return editError("unknown procedure '" + ProcName + "'");

  // The replacement must be a single block for the same procedure.
  std::string Body(BodyText);
  while (!Body.empty() && (Body.back() == '\n' || Body.back() == ' '))
    Body.pop_back();
  Body += '\n';
  std::vector<ProcBlock> BodyBlocks = procBlocks(Body);
  if (BodyBlocks.size() != 1 || BodyBlocks[0].Begin != 0 ||
      BodyBlocks[0].End != Body.size())
    return editError("edit body must be exactly one `proc` block");
  if (BodyBlocks[0].Name != ProcName)
    return editError("edit body declares procedure '" + BodyBlocks[0].Name +
                     "', expected '" + ProcName + "'");

  std::string Spliced = Text.substr(0, Target->Begin) + Body +
                        Text.substr(Target->End);
  std::unique_ptr<Program> NewProg;
  try {
    NewProg = parseProgramText(Spliced);
  } catch (const std::exception &E) {
    return editError(std::string("edit rejected: ") + E.what());
  }
  if (NewProg->numProcs() != Prog->numProcs() ||
      NewProg->numSpecs() != Prog->numSpecs())
    return editError("edit rejected: procedure replacement must not add or "
                     "remove procedures or typestate specs");
  for (ProcId P = 0; P != Prog->numProcs(); ++P)
    if (NewProg->symbols().text(NewProg->proc(P).name()) !=
        Prog->symbols().text(Prog->proc(P).name()))
      return editError("edit rejected: procedure order changed");

  Symbol Tracked = NewProg->symbols().intern(TrackedName);
  if (!NewProg->specFor(Tracked))
    return editError("edit rejected: tracked class spec disappeared");
  auto NewCtx = std::make_unique<TsContext>(*NewProg, Tracked);
  std::string NewText = programToText(*NewProg);

  // New body hashes and oracle fingerprints; seeds are the procedures
  // whose summary inputs changed in any way the solver could observe.
  std::unordered_map<std::string, uint64_t> Hashes = blockHashes(NewText);
  std::vector<ProcState> NewPS(Prog->numProcs());
  std::vector<uint8_t> Still(Prog->numProcs(), 0);
  std::deque<ProcId> Queue;
  for (ProcId P = 0; P != Prog->numProcs(); ++P) {
    NewPS[P].BodyHash =
        Hashes.at(NewProg->symbols().text(NewProg->proc(P).name()));
    NewPS[P].OracleFp = fingerprint(*NewCtx, P);
    Still[P] = PS[P].Valid && NewPS[P].BodyHash == PS[P].BodyHash &&
               NewPS[P].OracleFp == PS[P].OracleFp;
    if (PS[P].Valid && !Still[P])
      Queue.push_back(P);
  }

  // Upward closure over the recorded dependency edges: reverse adjacency
  // (callee -> callers whose summaries read it), then BFS from the seeds.
  std::vector<std::vector<ProcId>> Rev(Prog->numProcs());
  for (ProcId P = 0; P != Prog->numProcs(); ++P)
    if (PS[P].Valid)
      for (ProcId G : PS[P].Deps)
        Rev[G].push_back(P);
  while (!Queue.empty()) {
    ProcId G = Queue.front();
    Queue.pop_front();
    for (ProcId P : Rev[G])
      if (Still[P]) {
        Still[P] = 0;
        Queue.push_back(P);
      }
  }

  size_t Invalidated = 0;
  for (ProcId P = 0; P != Prog->numProcs(); ++P) {
    if (PS[P].Valid && !Still[P])
      ++Invalidated;
    if (!Still[P])
      continue;
    NewPS[P].Valid = true;
    NewPS[P].Deps = PS[P].Deps; // ProcIds are stable across an edit.
    try {
      NewPS[P].Sum =
          parseSummaryText(*NewProg, summaryToText(*Prog, PS[P].Sum));
    } catch (const std::exception &E) {
      // A retained summary that fails translation indicates a codec bug,
      // not a bad edit; refuse rather than re-analyze around it.
      return editError(std::string("internal: summary translation for '") +
                       Prog->symbols().text(Prog->proc(P).name()) +
                       "' failed: " + E.what());
    }
  }

  // The journal logs the *normalized* body (the exact bytes spliced), so
  // replay reconstructs the same canonical text byte for byte. Replayed
  // records (JournalAppend = false) are already durable and never
  // re-appended; auto-save stays off whenever a journal exists —
  // durability is the append's job and the store only moves on compact().
  Journal::Record Rec{ProcName, Body};
  bool Append = JournalAppend && Jrnl != nullptr;
  return solveAndCommit(std::move(NewProg), std::move(NewCtx),
                        std::move(NewText), std::move(NewPS), Invalidated,
                        DeadlineMs, Append ? &Rec : nullptr,
                        /*AutoSave=*/JournalAppend && !Jrnl);
}

//===----------------------------------------------------------------------===//
// Journal
//===----------------------------------------------------------------------===//

EditResult ServeEngine::replayJournal(size_t *NumReplayed) {
  if (NumReplayed)
    *NumReplayed = 0;
  EditResult R;
  R.Ok = true;
  if (!Jrnl)
    return R;
  std::vector<Journal::Record> Recs = Jrnl->replayAndRepair();
  for (const Journal::Record &Rec : Recs) {
    // No deadline: a logged edit was accepted once and must be accepted
    // again (the step cap still guards against pathological blow-ups).
    R = applyEditImpl(Rec.ProcName, Rec.Body, /*DeadlineMs=*/0,
                      /*JournalAppend=*/false);
    if (!R.Ok) {
      R.Error = "journal replay: record for '" + Rec.ProcName +
                "' failed: " + R.Error;
      return R;
    }
    if (NumReplayed)
      ++*NumReplayed;
  }
  return R;
}

void ServeEngine::resetJournal() {
  if (Jrnl)
    Jrnl->reset();
}

void ServeEngine::compact() {
  // Order matters for the crash contract: the store snapshot must be
  // durably in place (writeFileAtomic) before the log that reproduces it
  // is emptied. A kill between the two leaves store = new + journal =
  // old, and replay onto the new store is idempotent (every record's
  // body already matches, so nothing seeds).
  saveStore();
  resetJournal();
}

//===----------------------------------------------------------------------===//
// Verdicts
//===----------------------------------------------------------------------===//

/// Instantiates main's summary (relations and observation manifest) on
/// the initial Lambda state — the verdict derivation of runTypestateBu,
/// reading the engine's retained summary instead of a fresh solver's.
void ServeEngine::deriveErrors() {
  Errors.clear();
  const TsSummary &Main = PS[Prog->mainProc()].Sum;
  TState Error = Ctx->spec().errorState();
  std::set<TsAbstractState> MainExit;
  if (Main.LambdaExit)
    MainExit.insert(TsAbstractState::lambda());
  for (const TsRelation &Rel : Main.Rels)
    if (std::optional<TsAbstractState> Out =
            Rel.apply(*Ctx, TsAbstractState::lambda()))
      MainExit.insert(*Out);
  for (const TsAbstractState &S : MainExit)
    if (!S.isLambda() && S.tstate() == Error)
      Errors.insert(S.site());
  for (const TsRelation &Rel : Main.ObsRels)
    if (std::optional<TsAbstractState> Out =
            Rel.apply(*Ctx, TsAbstractState::lambda()))
      if (!Out->isLambda() && Out->tstate() == Error)
        Errors.insert(Out->site());
}

TsVerdict ServeEngine::verdict(SiteId S) const {
  if (S >= Prog->numSites() || !Ctx->isTrackedSite(S))
    return TsVerdict::Proved;
  if (Errors.count(S))
    return TsVerdict::ErrorReported;
  return Complete ? TsVerdict::Proved : TsVerdict::Unresolved;
}

bool ServeEngine::trackedSite(SiteId S) const {
  return S < Prog->numSites() && Ctx->isTrackedSite(S);
}

size_t ServeEngine::numProcs() const { return Prog->numProcs(); }

size_t ServeEngine::numSummaries() const {
  size_t N = 0;
  for (const ProcState &P : PS)
    N += P.Valid ? 1 : 0;
  return N;
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//

void ServeEngine::saveStore(const std::string &Path) const {
  std::vector<StoredProc> Procs;
  Procs.reserve(PS.size());
  for (ProcId P = 0; P != PS.size(); ++P) {
    StoredProc SP;
    SP.Name = Prog->symbols().text(Prog->proc(P).name());
    SP.BodyHash = PS[P].BodyHash;
    SP.OracleFp = PS[P].OracleFp;
    SP.HasSummary = PS[P].Valid;
    if (PS[P].Valid) {
      SP.Sum = PS[P].Sum;
      for (ProcId G : PS[P].Deps)
        SP.Deps.push_back(Prog->symbols().text(Prog->proc(G).name()));
    }
    Procs.push_back(std::move(SP));
  }
  saveStoreFile(Path, *Prog, TrackedName, Procs);
}

void ServeEngine::saveStore() const {
  if (Opt.StorePath.empty())
    throw std::runtime_error("swift-serve: no store path configured");
  saveStore(Opt.StorePath);
}
