//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The swift-serve request loop: line-delimited JSON over an istream /
/// ostream pair (stdin/stdout in the daemon, stringstreams in tests).
/// One request per line, one response per line; a malformed request gets
/// an {"ok":false,"code":"...","error":"..."} response and the loop keeps
/// serving. Failure codes are machine-readable: "parse" (not JSON),
/// "bad_request" (wrong shape), "unknown_op", "io" (persistence failure),
/// and "oversized_line" — a request line longer than 64 KiB is rejected
/// without ever being buffered whole, the rest of the line is drained,
/// and the session continues with the next line. EOF or a shutdown
/// request ends the loop.
///
/// Requests (field order free; unknown fields ignored):
///   {"op":"query","site":N}      -> {"ok":true,"site":N,
///                                    "verdict":"proved|error|unresolved",
///                                    "tracked":bool}
///   {"op":"query_all"}           -> {"ok":true,"num_sites":N,
///                                    "error_sites":[...]}
///   {"op":"edit","proc":"p","body":"proc p(...) ... {...}"}
///                                -> {"ok":true,"invalidated":I,
///                                    "reanalyzed":R,"reused":U} or
///                                   {"ok":false,"error":"...",
///                                    "budget_exhausted":bool}
///   {"op":"stats"}               -> {"ok":true,"procs":N,"summaries":N,
///                                    "solved":bool}
///   {"op":"save"[,"path":"f"]}   -> {"ok":true} (engine store path when
///                                    no explicit path is given)
///   {"op":"shutdown"}            -> {"ok":true} and the loop returns
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SERVE_SERVER_H
#define SWIFT_SERVE_SERVER_H

#include <iosfwd>

namespace swift {
namespace serve {

class ServeEngine;

/// Serves requests from \p In to \p Out until EOF or shutdown. Returns 0
/// on a clean exit (shutdown or EOF), non-zero only on an unwritable
/// output stream. The engine must already be solved; requests arriving
/// before that report unresolved verdicts but are still answered.
int serveLines(ServeEngine &Engine, std::istream &In, std::ostream &Out);

} // namespace serve
} // namespace swift

#endif // SWIFT_SERVE_SERVER_H
