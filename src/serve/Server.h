//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The swift-serve request loop: line-delimited JSON over an istream /
/// ostream pair (stdin/stdout in the daemon, stringstreams in tests).
/// One request per line, one response per line; a malformed request gets
/// an {"ok":false,"code":"...","error":"..."} response and the loop keeps
/// serving. Failure codes are machine-readable: "parse" (not JSON),
/// "bad_request" (wrong shape), "unknown_op", "io" (persistence failure),
/// and "oversized_line" — a request line longer than 64 KiB is rejected
/// without ever being buffered whole, the rest of the line is drained,
/// and the session continues with the next line. EOF or a shutdown
/// request ends the loop.
///
/// Requests (field order free; unknown fields ignored):
///   {"op":"query","site":N}      -> {"ok":true,"site":N,
///                                    "verdict":"proved|error|unresolved",
///                                    "tracked":bool}
///   {"op":"query_all"}           -> {"ok":true,"num_sites":N,
///                                    "error_sites":[...]}
///   {"op":"edit","proc":"p","body":"proc p(...) ... {...}"
///        [,"deadline_ms":D]}     -> {"ok":true,"invalidated":I,
///                                    "reanalyzed":R,"reused":U} or
///                                   {"ok":false,"error":"...",
///                                    "budget_exhausted":bool,
///                                    "degraded":bool}
///   {"op":"fuzz_edit","seed":S,"k":K[,"deadline_ms":D]}
///                                -> edit response + "proc" (the edit is
///                                    makeFuzzEdit(text, S, K), derived
///                                    server-side — the soak harness's
///                                    way of editing without shipping
///                                    program text through JSON)
///   {"op":"stats"}               -> {"ok":true,"procs":N,"summaries":N,
///                                    "solved":bool}
///   {"op":"dump"}                -> {"ok":true,"program":"..."}
///                                    (canonical text, for scratch checks)
///   {"op":"save"[,"path":"f"]}   -> {"ok":true}; with no explicit path
///                                    and a journal configured this is
///                                    compaction: store snapshot, then
///                                    journal reset
///   {"op":"shutdown"}            -> {"ok":true} and the loop returns
///
/// Overload protection: when ServeLimits arms it, edit-class requests
/// (edit/fuzz_edit) are shed with code "retry" while the previous edit's
/// budget exhaustion cools down or while input-queue pressure exceeds the
/// bound. Queries are never shed — answering from retained summaries is
/// cheap and always sound.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SERVE_SERVER_H
#define SWIFT_SERVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <iosfwd>

namespace swift {
namespace serve {

class ServeEngine;

/// Request-loop policy knobs; default-constructed = PR-7 behavior (no
/// shedding, no drain coordination).
struct ServeLimits {
  /// After an edit exhausts its budget/deadline, shed further edit-class
  /// requests with code "retry" until this many milliseconds pass (the
  /// governor latched Red once; give the operator's retry loop backoff
  /// instead of grinding). 0 disables the latch.
  uint64_t ShedCooldownMs = 0;
  /// Shed edit-class requests while more than this many bytes are
  /// already buffered on \p In (queue pressure: clients are pipelining
  /// faster than re-analysis drains). 0 disables the check.
  uint64_t MaxPendingBytes = 0;
  /// Graceful-drain flag, set by an async-signal-safe SIGTERM/SIGINT
  /// handler (which also closes the input fd to unblock the read). When
  /// observed, the loop finishes the in-flight request, emits one final
  /// {"ok":true,"drain":true,...} stats line, and returns 0. A partial
  /// line cut off by the close is discarded, never half-parsed.
  std::atomic<bool> *Drain = nullptr;
};

/// Serves requests from \p In to \p Out until EOF, shutdown, or drain.
/// Returns 0 on a clean exit, non-zero only on an unwritable output
/// stream. The engine must already be solved; requests arriving before
/// that report unresolved verdicts but are still answered.
int serveLines(ServeEngine &Engine, std::istream &In, std::ostream &Out,
               const ServeLimits &Limits = {});

} // namespace serve
} // namespace swift

#endif // SWIFT_SERVE_SERVER_H
