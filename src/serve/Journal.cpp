//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Append-only edit journal (see Journal.h). Appends are chunked like
/// writeFileAtomic's temp-file writes so a kill failpoint can land at
/// many byte positions inside one record — the torn tails those kills
/// produce are exactly what replayAndRepair's truncation contract is
/// tested against.
///
//===----------------------------------------------------------------------===//

#include "serve/Journal.h"

#include "support/AtomicFile.h"
#include "support/FailPoint.h"
#include "support/Hashing.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace swift;
using namespace swift::serve;

namespace {

/// Small append chunks for the same reason AtomicFile uses 512-byte
/// ones: kill schedules on journal.append.write must reach positions
/// *inside* a record, not just before it.
constexpr size_t AppendChunk = 256;

constexpr std::string_view TrailerTag = "crc32 ";

std::string hex8(uint32_t V) {
  char Buf[9];
  std::snprintf(Buf, sizeof(Buf), "%08x", V);
  return Buf;
}

std::string opError(const char *Op, const std::string &Path, int Err) {
  return std::string(Op) + " '" + Path + "': " + std::strerror(Err);
}

bool parseHex8(std::string_view T, uint32_t &Out) {
  if (T.size() != 8)
    return false;
  uint32_t V = 0;
  for (char C : T) {
    uint32_t D;
    if (C >= '0' && C <= '9')
      D = static_cast<uint32_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = static_cast<uint32_t>(C - 'a') + 10;
    else
      return false;
    V = (V << 4) | D;
  }
  Out = V;
  return true;
}

/// Parses "edit <namelen> <bodylen>" (no trailing newline). Returns
/// false on any malformation — which replay treats as a torn tail.
bool parseRecordHeader(std::string_view Line, size_t &NameLen,
                       size_t &BodyLen) {
  constexpr std::string_view Tag = "edit ";
  if (Line.substr(0, Tag.size()) != Tag)
    return false;
  Line.remove_prefix(Tag.size());
  size_t Sp = Line.find(' ');
  if (Sp == std::string_view::npos)
    return false;
  auto Dec = [](std::string_view V, size_t &Out) {
    if (V.empty() || V.size() > 12) // sanity cap: no record field is GBs
      return false;
    size_t N = 0;
    for (char C : V) {
      if (C < '0' || C > '9')
        return false;
      N = N * 10 + static_cast<size_t>(C - '0');
    }
    Out = N;
    return true;
  };
  return Dec(Line.substr(0, Sp), NameLen) &&
         Dec(Line.substr(Sp + 1), BodyLen);
}

} // namespace

std::string Journal::encodeRecord(const Record &R) {
  std::string Header = "edit " + std::to_string(R.ProcName.size()) + " " +
                       std::to_string(R.Body.size()) + "\n";
  std::string Covered = Header + R.ProcName + R.Body;
  std::string Out = std::move(Covered);
  Out.append(TrailerTag);
  Out += hex8(crc32(Out.data(), Out.size() - TrailerTag.size()));
  Out += '\n';
  return Out;
}

void Journal::append(const Record &R) {
  if (SWIFT_FAILPOINT("journal.append.open"))
    throw IoError("open", Path,
                  opError("open", Path, EIO) + " (injected)");
  int Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (Fd < 0)
    throw IoError("open", Path, opError("open", Path, errno));
  auto Fail = [&](const char *Op, int E, bool Injected = false) {
    std::string Msg = opError(Op, Path, E) + (Injected ? " (injected)" : "");
    ::close(Fd);
    throw IoError(Op, Path, Msg);
  };

  // A freshly created (empty) file gets the magic line first; the record
  // is appended behind it in the same fd so O_APPEND keeps ordering.
  std::string Bytes;
  struct stat St;
  if (::fstat(Fd, &St) != 0)
    Fail("stat", errno);
  if (St.st_size == 0)
    Bytes.append(Magic);
  Bytes += encodeRecord(R);

  for (size_t Off = 0; Off != Bytes.size();) {
    if (SWIFT_FAILPOINT("journal.append.write"))
      Fail("write", EIO, /*Injected=*/true);
    size_t Want = std::min(AppendChunk, Bytes.size() - Off);
    ssize_t W = ::write(Fd, Bytes.data() + Off, Want);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      Fail("write", errno);
    }
    Off += static_cast<size_t>(W);
  }

  // Durability point: the success response must not be sent before the
  // record is on stable storage.
  if (SWIFT_FAILPOINT("journal.append.flush"))
    Fail("fsync", EIO, /*Injected=*/true);
  if (::fsync(Fd) != 0)
    Fail("fsync", errno);
  if (SWIFT_FAILPOINT("journal.append.close"))
    Fail("close", EIO, /*Injected=*/true);
  if (::close(Fd) != 0)
    throw IoError("close", Path, opError("close", Path, errno));
}

std::vector<Journal::Record> Journal::replayAndRepair() const {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0) {
    if (errno == ENOENT)
      return {}; // no journal yet: nothing to replay
    throw IoError("stat", Path, opError("stat", Path, errno));
  }
  std::string Bytes = readWholeFile(Path, "journal.replay");
  if (Bytes.size() < Magic.size() ||
      std::string_view(Bytes).substr(0, Magic.size()) != Magic)
    throw JournalLoadError("swift-serve-journal: '" + Path +
                           "' has no journal magic line; refusing to "
                           "replay (wrong file?)");

  std::vector<Record> Out;
  size_t Pos = Magic.size();
  size_t Good = Pos; // end of the last fully validated record
  std::string_view T(Bytes);
  for (;;) {
    if (Pos == T.size())
      break;
    size_t Eol = T.find('\n', Pos);
    if (Eol == std::string_view::npos)
      break; // header line torn mid-write
    size_t NameLen = 0, BodyLen = 0;
    if (!parseRecordHeader(T.substr(Pos, Eol - Pos), NameLen, BodyLen))
      break;
    size_t PayloadBegin = Eol + 1;
    size_t TrailerBegin = PayloadBegin + NameLen + BodyLen;
    size_t RecordEnd = TrailerBegin + TrailerTag.size() + 8 + 1;
    if (RecordEnd > T.size())
      break; // payload or trailer torn
    if (T.substr(TrailerBegin, TrailerTag.size()) != TrailerTag ||
        T[RecordEnd - 1] != '\n')
      break;
    uint32_t Stored = 0;
    if (!parseHex8(T.substr(TrailerBegin + TrailerTag.size(), 8), Stored))
      break;
    uint32_t Computed =
        crc32(T.data() + Pos, TrailerBegin - Pos);
    if (Computed != Stored)
      break; // bit rot or a torn rewrite: stop at the last good record
    Record R;
    R.ProcName = std::string(T.substr(PayloadBegin, NameLen));
    R.Body = std::string(T.substr(PayloadBegin + NameLen, BodyLen));
    Out.push_back(std::move(R));
    Pos = Good = RecordEnd;
  }

  if (Good != Bytes.size()) {
    // Cut the torn tail so the next append starts at a record boundary —
    // otherwise every future record would be unreachable behind it.
    if (SWIFT_FAILPOINT("journal.replay.truncate"))
      throw IoError("truncate", Path,
                    opError("truncate", Path, EIO) + " (injected)");
    if (::truncate(Path.c_str(), static_cast<off_t>(Good)) != 0)
      throw IoError("truncate", Path, opError("truncate", Path, errno));
  }
  return Out;
}

void Journal::reset() const {
  writeFileAtomic(Path, Magic, "journal.compact");
}
