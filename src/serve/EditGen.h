//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic procedure-replacement edit generator for the incremental
/// oracle: given canonical (printProgramText) program text, produces a
/// small semantic edit — nop out one non-allocation command, or swap one
/// typestate method call for another declared method. Both edit kinds
/// keep the program parseable under the engine's edit validation rules:
/// node ids, allocation sites, the proc list, and the spec blocks are all
/// untouched, only one command changes.
///
/// Edits are pure functions of (text, seed, k): the difftest oracle and
/// the CI smoke job replay the exact same edit sequence on both the
/// incremental engine and the from-scratch baseline.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SERVE_EDITGEN_H
#define SWIFT_SERVE_EDITGEN_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace swift {
namespace serve {

/// One generated edit: replace procedure \p ProcName's whole block with
/// \p Body (a full `proc ... { ... }` block, engine-splice ready).
struct FuzzEdit {
  std::string ProcName;
  std::string Body;
};

/// Derives the \p K'th edit of seed \p Seed against \p CanonText. Returns
/// nullopt when the program offers no editable command (e.g. every
/// command is an allocation). Deterministic; never touches alloc lines,
/// spec blocks, or node structure, so the result always re-parses with
/// identical sites and proc order.
std::optional<FuzzEdit> makeFuzzEdit(std::string_view CanonText,
                                     uint64_t Seed, uint64_t K);

} // namespace serve
} // namespace swift

#endif // SWIFT_SERVE_EDITGEN_H
