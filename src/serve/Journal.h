//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-durable edit journal behind swift-serve: an append-only
/// write-ahead log of accepted procedure-replacement edits. The summary
/// store (Store.h) is a *snapshot* — everything accepted after the last
/// explicit save used to be lost on a crash. The journal closes that
/// window: every accepted edit is framed, appended, and fsync'd *before*
/// the engine commits it (and thus before the client ever sees the
/// success response), so a warm start that loads the store and replays
/// the journal tail reconstructs exactly the accepted-edit prefix the
/// daemon had acknowledged.
///
/// File layout (one magic line, then records):
///
///   swift-serve-journal v1
///   edit <namelen> <bodylen>\n<name><body>crc32 <hex8>\n
///   ...
///
/// Each record's CRC covers its header line, the procedure name, and the
/// body — the ckpt-v2 trailer framing of Store.h applied per record, so
/// a reader can stop at the first record whose frame does not validate.
/// A torn or corrupt *trailing* record is exactly what a kill mid-append
/// leaves behind; replay truncates it off and keeps everything before it
/// (truncate-don't-fail). A file whose magic line is wrong is a
/// different animal — nothing in it can be trusted — and raises the
/// typed JournalLoadError instead.
///
/// Appends go through chunked write + fsync with failpoints
/// journal.append.open / .write (per chunk) / .flush / .close, which is
/// how the crash harness kills the daemon mid-append at a chosen byte
/// position. reset() — the compaction step after the store snapshot has
/// been atomically replaced — rewrites the fresh magic header through
/// writeFileAtomic (failpoint prefix "journal.compact"), so the journal
/// survivor of a mid-compaction crash is either the complete old log or
/// the fresh empty one, never a torn mix.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SERVE_JOURNAL_H
#define SWIFT_SERVE_JOURNAL_H

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace swift {
namespace serve {

/// Thrown when the journal file is unusable as a whole (bad magic line):
/// unlike a torn tail, which replay silently truncates, this means the
/// path does not hold a journal at all and replaying would be unsound.
class JournalLoadError : public std::runtime_error {
public:
  explicit JournalLoadError(const std::string &What)
      : std::runtime_error(What) {}
};

/// The append-only write-ahead log. One instance owns one path; the
/// engine holds it for the life of the session.
class Journal {
public:
  /// First line of every journal file, including the newline.
  static constexpr std::string_view Magic = "swift-serve-journal v1\n";

  /// One logged edit: the same (procedure, whole-block body) pair
  /// ServeEngine::applyEdit accepts.
  struct Record {
    std::string ProcName;
    std::string Body;
  };

  explicit Journal(std::string Path) : Path(std::move(Path)) {}

  const std::string &path() const { return Path; }

  /// The exact bytes append() writes for \p R (header line + name + body
  /// + CRC trailer). Exposed so harnesses can predict journal contents
  /// byte for byte.
  static std::string encodeRecord(const Record &R);

  /// Frames \p R, appends it to the file (creating it with the magic
  /// line if absent), and fsyncs before returning — the record is
  /// durable when this returns. Throws IoError on any I/O failure;
  /// nothing before the new record is disturbed either way. Failpoints:
  /// journal.append.open / .write (per 256-byte chunk) / .flush /
  /// .close.
  void append(const Record &R);

  /// Loads the journal and returns every complete, CRC-valid record in
  /// order. A missing file is an empty journal. A torn or corrupt
  /// trailing record — the signature of a kill mid-append — is cut off
  /// the file (::truncate to the last valid record boundary) and the
  /// records before it are returned; corruption that is *not* confined
  /// to the tail cannot happen under append-only writes, so any invalid
  /// frame ends the scan the same way. A wrong magic line throws
  /// JournalLoadError; truncate/read failures throw IoError. Failpoints:
  /// journal.replay.open / .read (via readWholeFile) and
  /// journal.replay.truncate.
  std::vector<Record> replayAndRepair() const;

  /// Resets the log to the fresh magic header, atomically (the
  /// compaction step: call after the store snapshot has been saved).
  /// Failpoint prefix "journal.compact" (open/write/flush/close/rename).
  void reset() const;

private:
  std::string Path;
};

} // namespace serve
} // namespace swift

#endif // SWIFT_SERVE_JOURNAL_H
