//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "serve/EditGen.h"

#include "serve/Engine.h"
#include "support/Hashing.h"

#include <vector>

using namespace swift;
using namespace swift::serve;

namespace {

/// splitmix64 stream seeded from (Seed, K); support::mix64 is the
/// finalizer, so successive draws are well-distributed even for dense
/// seed/k grids.
class Rng {
public:
  Rng(uint64_t Seed, uint64_t K)
      : State(mix64(Seed ^ mix64(K + 0x9e3779b97f4a7c15ULL))) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    return mix64(State);
  }
  size_t below(size_t N) { return static_cast<size_t>(next() % N); }

private:
  uint64_t State;
};

/// A command line inside a proc block that an edit may rewrite.
struct Candidate {
  size_t Block;    ///< Index into the procBlocks vector.
  size_t CmdBegin; ///< Absolute offset of the command text.
  size_t CmdEnd;   ///< One past the command text (before " ->").
  bool IsTsCall;   ///< `v.m()` form; eligible for method swap.
};

/// True for `v.m()` / `v.f.m()` receiver-call commands: single token (no
/// spaces — rules out `call p(...)` and every assignment), a '.', and the
/// trailing call parens.
bool isTsCallCmd(std::string_view Cmd) {
  if (Cmd.size() < 5 || Cmd.substr(Cmd.size() - 2) != "()")
    return false;
  if (Cmd.find(' ') != std::string_view::npos)
    return false;
  return Cmd.find('.') != std::string_view::npos;
}

} // namespace

std::optional<FuzzEdit> swift::serve::makeFuzzEdit(std::string_view Text,
                                                   uint64_t Seed,
                                                   uint64_t K) {
  std::vector<ProcBlock> Blocks = procBlocks(Text);
  if (Blocks.empty())
    return std::nullopt;

  // Declared methods, from every `  method <name> =` spec line. Swapping
  // in a method of a *different* class is still a valid edit: undeclared
  // methods are identity in both the abstract transfer (Spec::apply) and
  // the concrete interpreter ("foreign method"), so the two oracle sides
  // keep coinciding.
  std::vector<std::string> Methods;
  for (size_t Pos = 0; Pos < Text.size();) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string_view::npos)
      Eol = Text.size();
    std::string_view Line = Text.substr(Pos, Eol - Pos);
    constexpr std::string_view Key = "  method ";
    if (Line.substr(0, Key.size()) == Key) {
      std::string_view Rest = Line.substr(Key.size());
      size_t End = Rest.find(' ');
      if (End != std::string_view::npos && End > 0)
        Methods.emplace_back(Rest.substr(0, End));
    }
    Pos = Eol + 1;
  }

  // Collect every rewritable command line: "  <N>: <cmd> -> <succs>".
  // Alloc lines are off-limits (they carry @site ids the engine's edit
  // validation pins); nop lines offer nothing to remove.
  std::vector<Candidate> Cands;
  for (size_t BI = 0; BI != Blocks.size(); ++BI) {
    const ProcBlock &B = Blocks[BI];
    size_t Pos = B.Begin;
    while (Pos < B.End) {
      size_t Eol = Text.find('\n', Pos);
      if (Eol == std::string_view::npos || Eol >= B.End)
        break;
      std::string_view Line = Text.substr(Pos, Eol - Pos);
      size_t Colon = Line.find(": ");
      if (Line.size() > 2 && Line[0] == ' ' && Line[1] == ' ' &&
          Colon != std::string_view::npos && Line[2] >= '0' &&
          Line[2] <= '9') {
        size_t Arrow = Line.rfind(" ->");
        if (Arrow != std::string_view::npos && Arrow > Colon + 2) {
          std::string_view Cmd = Line.substr(Colon + 2, Arrow - Colon - 2);
          bool IsAlloc = Cmd.find(" = new ") != std::string_view::npos;
          bool IsNop = Cmd == "nop";
          if (!IsAlloc && !IsNop) {
            Candidate C;
            C.Block = BI;
            C.CmdBegin = Pos + Colon + 2;
            C.CmdEnd = Pos + Arrow;
            C.IsTsCall = isTsCallCmd(Cmd);
            Cands.push_back(C);
          }
        }
      }
      Pos = Eol + 1;
    }
  }
  if (Cands.empty())
    return std::nullopt;

  Rng R(Seed, K);
  const Candidate &C = Cands[R.below(Cands.size())];
  std::string_view Cmd = Text.substr(C.CmdBegin, C.CmdEnd - C.CmdBegin);

  // Prefer a method swap when the picked line is a receiver call and a
  // different declared method exists; otherwise nop the command out.
  std::string NewCmd = "nop";
  if (C.IsTsCall && Methods.size() > 1 && (R.next() & 1)) {
    size_t Dot = Cmd.rfind('.');
    std::string_view Cur = Cmd.substr(Dot + 1, Cmd.size() - Dot - 3);
    std::vector<const std::string *> Others;
    for (const std::string &M : Methods)
      if (M != Cur)
        Others.push_back(&M);
    if (!Others.empty())
      NewCmd = std::string(Cmd.substr(0, Dot + 1)) +
               *Others[R.below(Others.size())] + "()";
  }

  const ProcBlock &B = Blocks[C.Block];
  std::string Body;
  Body.reserve(B.End - B.Begin + NewCmd.size());
  Body.append(Text.substr(B.Begin, C.CmdBegin - B.Begin));
  Body.append(NewCmd);
  Body.append(Text.substr(C.CmdEnd, B.End - C.CmdEnd));
  return FuzzEdit{B.Name, std::move(Body)};
}
