//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "obs/Json.h"
#include "serve/EditGen.h"
#include "serve/Engine.h"

#include <chrono>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>

using namespace swift;
using namespace swift::serve;
namespace json = swift::obs::json;

namespace {

json::Value makeObj() {
  json::Value V;
  V.K = json::Value::Kind::Object;
  return V;
}

json::Value makeArr() {
  json::Value V;
  V.K = json::Value::Kind::Array;
  return V;
}

void put(json::Value &Obj, const char *Key, json::Value V) {
  Obj.Obj.emplace_back(Key, std::move(V));
}

/// Every failure response carries a machine-readable "code" alongside the
/// human-readable "error": clients dispatch on the code, never on message
/// text. Codes: "parse" (not JSON), "bad_request" (JSON but wrong shape),
/// "unknown_op", "io" (engine-side persistence failure),
/// "oversized_line" (request exceeded the line cap), and "retry" (the
/// admission gate shed an edit-class request; back off and resend).
json::Value errorResp(const char *Code, const std::string &Msg) {
  json::Value R = makeObj();
  put(R, "ok", json::Value::boolean(false));
  put(R, "code", json::Value::str(Code));
  put(R, "error", json::Value::str(Msg));
  return R;
}

const char *verdictName(TsVerdict V) {
  switch (V) {
  case TsVerdict::Proved:
    return "proved";
  case TsVerdict::ErrorReported:
    return "error";
  case TsVerdict::Unresolved:
    return "unresolved";
  }
  return "unresolved";
}

json::Value editResp(const EditResult &R) {
  json::Value Resp = makeObj();
  put(Resp, "ok", json::Value::boolean(R.Ok));
  if (!R.Ok) {
    put(Resp, "error", json::Value::str(R.Error));
    put(Resp, "budget_exhausted", json::Value::boolean(R.BudgetExhausted));
    // degraded=true is the deadline contract: the edit was not applied,
    // but the engine's retained pre-edit verdicts are still served and
    // still sound — a partial answer, not a wedge.
    put(Resp, "degraded", json::Value::boolean(R.Degraded));
    return Resp;
  }
  put(Resp, "invalidated", json::Value::u64(R.Invalidated));
  put(Resp, "reanalyzed", json::Value::u64(R.Reanalyzed));
  put(Resp, "reused", json::Value::u64(R.Reused));
  if (!R.Warning.empty())
    put(Resp, "warning", json::Value::str(R.Warning));
  return Resp;
}

/// Per-session admission-gate state. The latch arms when an edit
/// exhausts its budget (the governor went Red at least once this
/// cooldown window); queue pressure is read fresh off the input stream's
/// buffer each time.
struct Session {
  const ServeLimits &Limits;
  std::istream &In;
  bool ShedLatched = false;
  std::chrono::steady_clock::time_point ShedUntil{};

  /// True when an edit-class request should be shed with code "retry".
  bool shouldShed() {
    if (Limits.ShedCooldownMs != 0 && ShedLatched) {
      if (std::chrono::steady_clock::now() < ShedUntil)
        return true;
      ShedLatched = false;
    }
    if (Limits.MaxPendingBytes != 0) {
      std::streamsize Avail = In.rdbuf()->in_avail();
      if (Avail > 0 &&
          static_cast<uint64_t>(Avail) > Limits.MaxPendingBytes)
        return true;
    }
    return false;
  }

  /// Called with every edit outcome; budget exhaustion arms the latch.
  void noteEdit(const EditResult &R) {
    if (R.BudgetExhausted && Limits.ShedCooldownMs != 0) {
      ShedLatched = true;
      ShedUntil = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(Limits.ShedCooldownMs);
    }
  }
};

json::Value shedResp() {
  return errorResp("retry",
                   "server overloaded (recent budget exhaustion or "
                   "queue pressure); retry after backoff");
}

/// Optional numeric "deadline_ms" field; 0 = absent = engine default.
uint64_t deadlineField(const json::Value &Req) {
  const json::Value *D = Req.find("deadline_ms");
  return D && D->isNumber() ? D->asU64() : 0;
}

json::Value handle(ServeEngine &E, const std::string &Line,
                   bool &Shutdown, Session &S) {
  json::Value Req;
  try {
    Req = json::parse(Line);
  } catch (const std::runtime_error &Err) {
    return errorResp("parse", std::string("bad request: ") + Err.what());
  }
  if (!Req.isObject())
    return errorResp("bad_request", "bad request: not a JSON object");
  const json::Value *Op = Req.find("op");
  if (!Op || !Op->isString())
    return errorResp("bad_request",
                     "bad request: missing string field 'op'");

  if (Op->Str == "query") {
    const json::Value *Site = Req.find("site");
    if (!Site || !Site->isNumber())
      return errorResp("bad_request", "query: missing numeric field 'site'");
    SiteId S = static_cast<SiteId>(Site->asU64());
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    put(R, "site", json::Value::u64(S));
    put(R, "verdict", json::Value::str(verdictName(E.verdict(S))));
    put(R, "tracked", json::Value::boolean(E.trackedSite(S)));
    return R;
  }

  if (Op->Str == "query_all") {
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    put(R, "num_sites", json::Value::u64(E.program().numSites()));
    json::Value Sites = makeArr();
    for (SiteId S : E.errorSites())
      Sites.Arr.push_back(json::Value::u64(S));
    put(R, "error_sites", std::move(Sites));
    return R;
  }

  if (Op->Str == "edit") {
    const json::Value *Proc = Req.find("proc");
    const json::Value *Body = Req.find("body");
    if (!Proc || !Proc->isString())
      return errorResp("bad_request", "edit: missing string field 'proc'");
    if (!Body || !Body->isString())
      return errorResp("bad_request", "edit: missing string field 'body'");
    if (S.shouldShed())
      return shedResp();
    EditResult R = E.applyEdit(Proc->Str, Body->Str, deadlineField(Req));
    S.noteEdit(R);
    return editResp(R);
  }

  if (Op->Str == "fuzz_edit") {
    const json::Value *Seed = Req.find("seed");
    const json::Value *K = Req.find("k");
    if (!Seed || !Seed->isNumber())
      return errorResp("bad_request",
                       "fuzz_edit: missing numeric field 'seed'");
    if (!K || !K->isNumber())
      return errorResp("bad_request",
                       "fuzz_edit: missing numeric field 'k'");
    if (S.shouldShed())
      return shedResp();
    std::optional<FuzzEdit> FE =
        makeFuzzEdit(E.programText(), Seed->asU64(), K->asU64());
    if (!FE)
      return errorResp("bad_request",
                       "fuzz_edit: program has no editable command");
    EditResult R = E.applyEdit(FE->ProcName, FE->Body, deadlineField(Req));
    S.noteEdit(R);
    json::Value Resp = editResp(R);
    put(Resp, "proc", json::Value::str(FE->ProcName));
    return Resp;
  }

  if (Op->Str == "stats") {
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    put(R, "procs", json::Value::u64(E.numProcs()));
    put(R, "summaries", json::Value::u64(E.numSummaries()));
    put(R, "solved", json::Value::boolean(E.solved()));
    return R;
  }

  if (Op->Str == "dump") {
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    put(R, "program", json::Value::str(E.programText()));
    return R;
  }

  if (Op->Str == "save") {
    const json::Value *Path = Req.find("path");
    try {
      if (Path && Path->isString()) {
        // An explicit path is an export: the journal keeps covering the
        // configured store, so it stays intact.
        E.saveStore(Path->Str);
      } else if (E.journaling()) {
        E.compact();
      } else {
        E.saveStore();
      }
    } catch (const std::exception &Err) {
      return errorResp("io", std::string("save failed: ") + Err.what());
    }
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    return R;
  }

  if (Op->Str == "shutdown") {
    Shutdown = true;
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    return R;
  }

  return errorResp("unknown_op", "unknown op '" + Op->Str + "'");
}

/// Hard cap on one request line. Far above any legitimate request (an
/// edit body is bounded by procedure size), far below what an unbounded
/// std::getline would buffer from a runaway or hostile client.
constexpr size_t MaxRequestLine = 64 * 1024;

enum class LineRead { Ok, Oversized, Eof };

/// Reads one newline-terminated line into \p Line, never buffering more
/// than MaxRequestLine bytes. On overflow the rest of the line is drained
/// (not stored) so the session stays line-synchronized and the *next*
/// request is served normally.
LineRead readBoundedLine(std::istream &In, std::string &Line) {
  Line.clear();
  using Traits = std::istream::traits_type;
  bool Any = false;
  for (;;) {
    int C = In.get();
    if (Traits::eq_int_type(C, Traits::eof()))
      return Any ? LineRead::Ok : LineRead::Eof;
    Any = true;
    if (C == '\n')
      return LineRead::Ok;
    if (Line.size() == MaxRequestLine) {
      do {
        C = In.get();
      } while (!Traits::eq_int_type(C, Traits::eof()) && C != '\n');
      return LineRead::Oversized;
    }
    Line += static_cast<char>(C);
  }
}

} // namespace

int swift::serve::serveLines(ServeEngine &Engine, std::istream &In,
                             std::ostream &Out,
                             const ServeLimits &Limits) {
  Session S{Limits, In};
  auto DrainRequested = [&Limits] {
    return Limits.Drain != nullptr && Limits.Drain->load();
  };
  // The final line of a drained session: a self-identifying stats object
  // so an operator's log shows what state the daemon carried out the
  // door. Journal durability needs no work here — every append fsync'd.
  auto EmitDrain = [&] {
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    put(R, "drain", json::Value::boolean(true));
    put(R, "procs", json::Value::u64(Engine.numProcs()));
    put(R, "summaries", json::Value::u64(Engine.numSummaries()));
    put(R, "solved", json::Value::boolean(Engine.solved()));
    Out << json::dump(R) << '\n';
    Out.flush();
  };
  std::string Line;
  for (;;) {
    LineRead R = readBoundedLine(In, Line);
    if (R == LineRead::Eof) {
      if (DrainRequested())
        EmitDrain();
      return 0;
    }
    // The drain handler closes the input fd; a line the close cut short
    // (no terminating newline, eofbit set) was never fully sent and is
    // discarded rather than half-parsed. A fully buffered line is the
    // in-flight request and is finished below.
    if (R == LineRead::Ok && In.eof() && DrainRequested()) {
      EmitDrain();
      return 0;
    }
    json::Value Resp;
    bool Shutdown = false;
    if (R == LineRead::Oversized) {
      Resp = errorResp("oversized_line",
                       "request line exceeds " +
                           std::to_string(MaxRequestLine) + " bytes");
    } else {
      bool OnlySpace = true;
      for (char C : Line)
        if (C != ' ' && C != '\t' && C != '\r')
          OnlySpace = false;
      if (OnlySpace)
        continue;
      Resp = handle(Engine, Line, Shutdown, S);
    }
    Out << json::dump(Resp) << '\n';
    Out.flush();
    if (!Out)
      return 1;
    if (Shutdown)
      break;
    if (DrainRequested()) {
      EmitDrain();
      return 0;
    }
  }
  return 0;
}
