//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "obs/Json.h"
#include "serve/Engine.h"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

using namespace swift;
using namespace swift::serve;
namespace json = swift::obs::json;

namespace {

json::Value makeObj() {
  json::Value V;
  V.K = json::Value::Kind::Object;
  return V;
}

json::Value makeArr() {
  json::Value V;
  V.K = json::Value::Kind::Array;
  return V;
}

void put(json::Value &Obj, const char *Key, json::Value V) {
  Obj.Obj.emplace_back(Key, std::move(V));
}

/// Every failure response carries a machine-readable "code" alongside the
/// human-readable "error": clients dispatch on the code, never on message
/// text. Codes: "parse" (not JSON), "bad_request" (JSON but wrong shape),
/// "unknown_op", "io" (engine-side persistence failure),
/// "oversized_line" (request exceeded the line cap).
json::Value errorResp(const char *Code, const std::string &Msg) {
  json::Value R = makeObj();
  put(R, "ok", json::Value::boolean(false));
  put(R, "code", json::Value::str(Code));
  put(R, "error", json::Value::str(Msg));
  return R;
}

const char *verdictName(TsVerdict V) {
  switch (V) {
  case TsVerdict::Proved:
    return "proved";
  case TsVerdict::ErrorReported:
    return "error";
  case TsVerdict::Unresolved:
    return "unresolved";
  }
  return "unresolved";
}

json::Value editResp(const EditResult &R) {
  json::Value Resp = makeObj();
  put(Resp, "ok", json::Value::boolean(R.Ok));
  if (!R.Ok) {
    put(Resp, "error", json::Value::str(R.Error));
    put(Resp, "budget_exhausted", json::Value::boolean(R.BudgetExhausted));
    return Resp;
  }
  put(Resp, "invalidated", json::Value::u64(R.Invalidated));
  put(Resp, "reanalyzed", json::Value::u64(R.Reanalyzed));
  put(Resp, "reused", json::Value::u64(R.Reused));
  if (!R.Warning.empty())
    put(Resp, "warning", json::Value::str(R.Warning));
  return Resp;
}

json::Value handle(ServeEngine &E, const std::string &Line,
                   bool &Shutdown) {
  json::Value Req;
  try {
    Req = json::parse(Line);
  } catch (const std::runtime_error &Err) {
    return errorResp("parse", std::string("bad request: ") + Err.what());
  }
  if (!Req.isObject())
    return errorResp("bad_request", "bad request: not a JSON object");
  const json::Value *Op = Req.find("op");
  if (!Op || !Op->isString())
    return errorResp("bad_request",
                     "bad request: missing string field 'op'");

  if (Op->Str == "query") {
    const json::Value *Site = Req.find("site");
    if (!Site || !Site->isNumber())
      return errorResp("bad_request", "query: missing numeric field 'site'");
    SiteId S = static_cast<SiteId>(Site->asU64());
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    put(R, "site", json::Value::u64(S));
    put(R, "verdict", json::Value::str(verdictName(E.verdict(S))));
    put(R, "tracked", json::Value::boolean(E.trackedSite(S)));
    return R;
  }

  if (Op->Str == "query_all") {
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    put(R, "num_sites", json::Value::u64(E.program().numSites()));
    json::Value Sites = makeArr();
    for (SiteId S : E.errorSites())
      Sites.Arr.push_back(json::Value::u64(S));
    put(R, "error_sites", std::move(Sites));
    return R;
  }

  if (Op->Str == "edit") {
    const json::Value *Proc = Req.find("proc");
    const json::Value *Body = Req.find("body");
    if (!Proc || !Proc->isString())
      return errorResp("bad_request", "edit: missing string field 'proc'");
    if (!Body || !Body->isString())
      return errorResp("bad_request", "edit: missing string field 'body'");
    return editResp(E.applyEdit(Proc->Str, Body->Str));
  }

  if (Op->Str == "stats") {
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    put(R, "procs", json::Value::u64(E.numProcs()));
    put(R, "summaries", json::Value::u64(E.numSummaries()));
    put(R, "solved", json::Value::boolean(E.solved()));
    return R;
  }

  if (Op->Str == "save") {
    const json::Value *Path = Req.find("path");
    try {
      if (Path && Path->isString())
        E.saveStore(Path->Str);
      else
        E.saveStore();
    } catch (const std::exception &Err) {
      return errorResp("io", std::string("save failed: ") + Err.what());
    }
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    return R;
  }

  if (Op->Str == "shutdown") {
    Shutdown = true;
    json::Value R = makeObj();
    put(R, "ok", json::Value::boolean(true));
    return R;
  }

  return errorResp("unknown_op", "unknown op '" + Op->Str + "'");
}

/// Hard cap on one request line. Far above any legitimate request (an
/// edit body is bounded by procedure size), far below what an unbounded
/// std::getline would buffer from a runaway or hostile client.
constexpr size_t MaxRequestLine = 64 * 1024;

enum class LineRead { Ok, Oversized, Eof };

/// Reads one newline-terminated line into \p Line, never buffering more
/// than MaxRequestLine bytes. On overflow the rest of the line is drained
/// (not stored) so the session stays line-synchronized and the *next*
/// request is served normally.
LineRead readBoundedLine(std::istream &In, std::string &Line) {
  Line.clear();
  using Traits = std::istream::traits_type;
  bool Any = false;
  for (;;) {
    int C = In.get();
    if (Traits::eq_int_type(C, Traits::eof()))
      return Any ? LineRead::Ok : LineRead::Eof;
    Any = true;
    if (C == '\n')
      return LineRead::Ok;
    if (Line.size() == MaxRequestLine) {
      do {
        C = In.get();
      } while (!Traits::eq_int_type(C, Traits::eof()) && C != '\n');
      return LineRead::Oversized;
    }
    Line += static_cast<char>(C);
  }
}

} // namespace

int swift::serve::serveLines(ServeEngine &Engine, std::istream &In,
                             std::ostream &Out) {
  std::string Line;
  for (;;) {
    LineRead R = readBoundedLine(In, Line);
    if (R == LineRead::Eof)
      return 0;
    json::Value Resp;
    bool Shutdown = false;
    if (R == LineRead::Oversized) {
      Resp = errorResp("oversized_line",
                       "request line exceeds " +
                           std::to_string(MaxRequestLine) + " bytes");
    } else {
      bool OnlySpace = true;
      for (char C : Line)
        if (C != ' ' && C != '\t' && C != '\r')
          OnlySpace = false;
      if (OnlySpace)
        continue;
      Resp = handle(Engine, Line, Shutdown);
    }
    Out << json::dump(Resp) << '\n';
    Out.flush();
    if (!Out)
      return 1;
    if (Shutdown)
      break;
  }
  return 0;
}
