//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary text codec and framed store files (see Store.h). The codec is a
/// whitespace-separated token stream: every count-prefixed sequence makes
/// the grammar self-delimiting, and symbolic entities travel as names so
/// the parse side can intern them into *any* program — that one property
/// is both the warm-start path and the cross-edit summary translator.
///
//===----------------------------------------------------------------------===//

#include "serve/Store.h"

#include "ir/Dumper.h"
#include "support/AtomicFile.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace swift;
using namespace swift::serve;

//===----------------------------------------------------------------------===//
// Token writer / reader
//===----------------------------------------------------------------------===//

namespace {

[[noreturn]] void fail(const std::string &Msg) {
  throw StoreError("swift-serve-store: " + Msg);
}

class TokenWriter {
public:
  void tok(std::string_view T) {
    if (!Out.empty() && Out.back() != '\n')
      Out += ' ';
    Out.append(T);
  }
  void num(uint64_t N) { tok(std::to_string(N)); }
  void nl() {
    if (Out.empty() || Out.back() != '\n')
      Out += '\n';
  }
  std::string take() {
    nl();
    return std::move(Out);
  }

private:
  std::string Out;
};

class TokenReader {
public:
  explicit TokenReader(std::string_view Text) : T(Text) {}

  bool atEnd() {
    skipWs();
    return Pos == T.size();
  }

  std::string_view tok() {
    skipWs();
    if (Pos == T.size())
      fail("unexpected end of summary text");
    size_t Start = Pos;
    while (Pos < T.size() && !isWs(T[Pos]))
      ++Pos;
    return T.substr(Start, Pos - Start);
  }

  /// Consumes a token and demands it equals \p Want (a grammar keyword).
  void expect(std::string_view Want) {
    std::string_view Got = tok();
    if (Got != Want)
      fail("expected '" + std::string(Want) + "', got '" + std::string(Got) +
           "'");
  }

  uint64_t num() {
    std::string_view V = tok();
    uint64_t N = 0;
    if (V.empty())
      fail("empty number");
    for (char C : V) {
      if (C < '0' || C > '9')
        fail("malformed number '" + std::string(V) + "'");
      if (N > UINT64_MAX / 10)
        fail("number out of range '" + std::string(V) + "'");
      N = N * 10 + static_cast<uint64_t>(C - '0');
    }
    return N;
  }

  bool flag() {
    uint64_t N = num();
    if (N > 1)
      fail("expected 0 or 1, got " + std::to_string(N));
    return N != 0;
  }

private:
  static bool isWs(char C) {
    return C == ' ' || C == '\n' || C == '\t' || C == '\r';
  }
  void skipWs() {
    while (Pos < T.size() && isWs(T[Pos]))
      ++Pos;
  }

  std::string_view T;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Encoders (names, never Symbol ids)
//===----------------------------------------------------------------------===//

void writePath(TokenWriter &W, const SymbolTable &Syms, const AccessPath &P) {
  std::string T = Syms.text(P.base());
  if (P.field1().isValid())
    T += "." + Syms.text(P.field1());
  if (P.field2().isValid())
    T += "." + Syms.text(P.field2());
  W.tok(T);
}

void writeApSet(TokenWriter &W, const SymbolTable &Syms, const ApSet &S) {
  W.num(S.size());
  for (const AccessPath &P : S)
    writePath(W, Syms, P);
}

void writeKill(TokenWriter &W, const SymbolTable &Syms, const KillSpec &K) {
  W.tok("kb");
  W.num(K.bases().size());
  for (Symbol B : K.bases())
    W.tok(Syms.text(B));
  W.tok("kd");
  W.num(K.defaultFields().size());
  for (Symbol F : K.defaultFields())
    W.tok(Syms.text(F));
  W.tok("kbb");
  W.num(K.byBase().size());
  for (const auto &[Base, Fields] : K.byBase()) {
    W.tok(Syms.text(Base));
    W.num(Fields.size());
    for (Symbol F : Fields)
      W.tok(Syms.text(F));
  }
}

void writePred(TokenWriter &W, const Program &Prog, const TsPred &P) {
  const SymbolTable &Syms = Prog.symbols();
  W.tok("ap");
  W.num(P.apConstraints().size());
  for (const TsPred::ApConstraint &C : P.apConstraints()) {
    writePath(W, Syms, C.Path);
    W.num(static_cast<uint64_t>(C.InMust));
    W.num(static_cast<uint64_t>(C.InNot));
  }
  W.tok("may");
  W.num(P.mayConstraints().size());
  for (const TsPred::MayConstraint &C : P.mayConstraints()) {
    W.tok(Syms.text(Prog.proc(C.Proc).name()));
    W.tok(Syms.text(C.Var));
    W.num(C.Want ? 1 : 0);
  }
}

void writeState(TokenWriter &W, const SymbolTable &Syms,
                const TsAbstractState &S) {
  if (S.isLambda())
    fail("cannot serialize a Lambda alloc output");
  W.num(S.site());
  W.num(S.tstate());
  writeApSet(W, Syms, S.must());
  writeApSet(W, Syms, S.mustNot());
}

void writeRel(TokenWriter &W, const Program &Prog, const TsRelation &R) {
  const SymbolTable &Syms = Prog.symbols();
  if (R.isAlloc()) {
    W.tok("A");
    writeState(W, Syms, R.out());
    return;
  }
  W.tok("T");
  W.tok("iota");
  W.num(R.iota().size());
  for (TState T : R.iota())
    W.num(T);
  W.tok("killa");
  writeKill(W, Syms, R.killA());
  W.tok("gena");
  writeApSet(W, Syms, R.genA());
  W.tok("killn");
  writeKill(W, Syms, R.killN());
  W.tok("genn");
  writeApSet(W, Syms, R.genN());
  W.tok("phi");
  writePred(W, Prog, R.phi());
}

void writeIgnore(TokenWriter &W, const Program &Prog, const char *Key,
                 const TsIgnoreSet &S) {
  W.tok(Key);
  W.num(S.containsLambda() ? 1 : 0);
  W.num(S.disjuncts().size());
  for (const TsPred &P : S.disjuncts())
    writePred(W, Prog, P);
}

//===----------------------------------------------------------------------===//
// Decoders (interning into the target program)
//===----------------------------------------------------------------------===//

AccessPath readPath(TokenReader &R, Program &Prog) {
  std::string_view T = R.tok();
  size_t D1 = T.find('.');
  SymbolTable &Syms = Prog.symbols();
  if (D1 == std::string_view::npos)
    return AccessPath(Syms.intern(T));
  size_t D2 = T.find('.', D1 + 1);
  if (D1 == 0 || D1 + 1 == T.size())
    fail("malformed access path '" + std::string(T) + "'");
  Symbol Base = Syms.intern(T.substr(0, D1));
  if (D2 == std::string_view::npos)
    return AccessPath(Base, Syms.intern(T.substr(D1 + 1)));
  if (D2 + 1 == T.size() || T.find('.', D2 + 1) != std::string_view::npos)
    fail("malformed access path '" + std::string(T) + "'");
  return AccessPath(Base, Syms.intern(T.substr(D1 + 1, D2 - D1 - 1)),
                    Syms.intern(T.substr(D2 + 1)));
}

ApSet readApSet(TokenReader &R, Program &Prog) {
  uint64_t N = R.num();
  std::vector<AccessPath> Paths;
  Paths.reserve(N);
  for (uint64_t I = 0; I != N; ++I)
    Paths.push_back(readPath(R, Prog));
  return ApSet(std::move(Paths));
}

KillSpec readKill(TokenReader &R, Program &Prog) {
  SymbolTable &Syms = Prog.symbols();
  R.expect("kb");
  uint64_t NB = R.num();
  std::vector<Symbol> Bases;
  for (uint64_t I = 0; I != NB; ++I)
    Bases.push_back(Syms.intern(R.tok()));
  R.expect("kd");
  uint64_t ND = R.num();
  std::vector<Symbol> Defaults;
  for (uint64_t I = 0; I != ND; ++I)
    Defaults.push_back(Syms.intern(R.tok()));
  R.expect("kbb");
  uint64_t NBB = R.num();
  std::vector<std::pair<Symbol, std::vector<Symbol>>> ByBase;
  for (uint64_t I = 0; I != NBB; ++I) {
    Symbol Base = Syms.intern(R.tok());
    uint64_t NF = R.num();
    std::vector<Symbol> Fields;
    for (uint64_t J = 0; J != NF; ++J)
      Fields.push_back(Syms.intern(R.tok()));
    ByBase.emplace_back(Base, std::move(Fields));
  }
  // Replay order matters: defaults first (ByBase is still empty, so
  // addFieldEverywhere touches only Default), then the per-base overrides
  // with their exact stored field sets, then whole-base kills (the stored
  // spec never has a ByBase entry for a killed base, so nothing is lost).
  KillSpec K;
  for (Symbol F : Defaults)
    K.addFieldEverywhere(F);
  for (auto &[Base, Fields] : ByBase)
    K.setBaseFields(Base, std::move(Fields));
  for (Symbol B : Bases)
    K.addBase(B);
  return K;
}

TsPred readPred(TokenReader &R, Program &Prog) {
  TsPred P;
  R.expect("ap");
  uint64_t NA = R.num();
  for (uint64_t I = 0; I != NA; ++I) {
    AccessPath Path = readPath(R, Prog);
    uint64_t InMust = R.num(), InNot = R.num();
    if (InMust > 2 || InNot > 2)
      fail("three-valued constraint out of range");
    // Stored predicates are satisfiable by construction, so a failing
    // replay means the text was corrupted, not that the edit is bad.
    if (InMust != 0 &&
        !P.requireMust(Path, InMust == uint64_t(ThreeVal::Yes)))
      fail("unsatisfiable replayed must constraint");
    if (InNot != 0 && !P.requireNot(Path, InNot == uint64_t(ThreeVal::Yes)))
      fail("unsatisfiable replayed must-not constraint");
  }
  R.expect("may");
  uint64_t NM = R.num();
  for (uint64_t I = 0; I != NM; ++I) {
    std::string_view ProcName = R.tok();
    ProcId Proc = Prog.procId(Prog.symbols().intern(ProcName));
    if (Proc == InvalidProc)
      fail("may-alias constraint names unknown procedure '" +
           std::string(ProcName) + "'");
    Symbol Var = Prog.symbols().intern(R.tok());
    bool Want = R.flag();
    if (!P.requireMay(Proc, Var, Want))
      fail("unsatisfiable replayed may-alias constraint");
  }
  return P;
}

TsAbstractState readState(TokenReader &R, Program &Prog) {
  uint64_t Site = R.num();
  if (Site >= Prog.numSites())
    fail("allocation site @" + std::to_string(Site) + " out of range");
  uint64_t T = R.num();
  ApSet Must = readApSet(R, Prog);
  ApSet MustNot = readApSet(R, Prog);
  return TsAbstractState(static_cast<SiteId>(Site), static_cast<TState>(T),
                         std::move(Must), std::move(MustNot));
}

TsRelation readRel(TokenReader &R, Program &Prog) {
  std::string_view Kind = R.tok();
  if (Kind == "A")
    return TsRelation::makeAlloc(readState(R, Prog));
  if (Kind != "T")
    fail("unknown relation kind '" + std::string(Kind) + "'");
  R.expect("iota");
  uint64_t NI = R.num();
  std::vector<TState> Iota;
  Iota.reserve(NI);
  for (uint64_t I = 0; I != NI; ++I)
    Iota.push_back(static_cast<TState>(R.num()));
  R.expect("killa");
  KillSpec KillA = readKill(R, Prog);
  R.expect("gena");
  ApSet GenA = readApSet(R, Prog);
  R.expect("killn");
  KillSpec KillN = readKill(R, Prog);
  R.expect("genn");
  ApSet GenN = readApSet(R, Prog);
  R.expect("phi");
  TsPred Phi = readPred(R, Prog);
  return TsRelation::makeTrans(std::move(Iota), std::move(KillA),
                               std::move(GenA), std::move(KillN),
                               std::move(GenN), std::move(Phi));
}

std::vector<TsRelation> readRels(TokenReader &R, Program &Prog,
                                 const char *Key) {
  R.expect(Key);
  uint64_t N = R.num();
  std::vector<TsRelation> Rels;
  Rels.reserve(N);
  for (uint64_t I = 0; I != N; ++I)
    Rels.push_back(readRel(R, Prog));
  // Relation order follows symbol ids, which shift across programs; the
  // solver's sorted-unique invariant must hold in the *target* program.
  std::sort(Rels.begin(), Rels.end());
  Rels.erase(std::unique(Rels.begin(), Rels.end()), Rels.end());
  return Rels;
}

TsIgnoreSet readIgnore(TokenReader &R, Program &Prog, const char *Key) {
  R.expect(Key);
  TsIgnoreSet S;
  if (R.flag())
    S.addLambda();
  uint64_t N = R.num();
  for (uint64_t I = 0; I != N; ++I)
    (void)S.addPred(readPred(R, Prog)); // In-order replay; see header.
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Summary codec entry points
//===----------------------------------------------------------------------===//

std::string serve::summaryToText(const Program &Prog, const TsSummary &S) {
  TokenWriter W;
  W.tok("rels");
  W.num(S.Rels.size());
  W.nl();
  for (const TsRelation &R : S.Rels) {
    writeRel(W, Prog, R);
    W.nl();
  }
  W.tok("obsrels");
  W.num(S.ObsRels.size());
  W.nl();
  for (const TsRelation &R : S.ObsRels) {
    writeRel(W, Prog, R);
    W.nl();
  }
  writeIgnore(W, Prog, "sigma", S.Sigma);
  W.nl();
  writeIgnore(W, Prog, "sigmaall", S.SigmaAll);
  W.nl();
  W.tok("lambdaexit");
  W.num(S.LambdaExit ? 1 : 0);
  return W.take();
}

TsSummary serve::parseSummaryText(Program &Prog, std::string_view Text) {
  TokenReader R(Text);
  TsSummary S;
  S.Rels = readRels(R, Prog, "rels");
  S.ObsRels = readRels(R, Prog, "obsrels");
  S.Sigma = readIgnore(R, Prog, "sigma");
  S.SigmaAll = readIgnore(R, Prog, "sigmaall");
  R.expect("lambdaexit");
  S.LambdaExit = R.flag();
  if (!R.atEnd())
    fail("trailing tokens after summary");
  return S;
}

//===----------------------------------------------------------------------===//
// Store files
//===----------------------------------------------------------------------===//

namespace {

constexpr std::string_view StoreHeader = "swift-serve-store v1 ";
constexpr std::string_view TrailerTag = "crc32 ";
constexpr size_t TrailerSize = TrailerTag.size() + 8 + 1;
constexpr std::string_view ProgramBegin = "program-begin";
constexpr std::string_view ProgramEnd = "program-end";

std::string hex8(uint32_t V) {
  char Buf[9];
  std::snprintf(Buf, sizeof(Buf), "%08x", V);
  return Buf;
}

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

bool parseHexU(std::string_view T, uint64_t &Out) {
  if (T.empty() || T.size() > 16)
    return false;
  uint64_t V = 0;
  for (char C : T) {
    uint64_t D;
    if (C >= '0' && C <= '9')
      D = static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = static_cast<uint64_t>(C - 'a') + 10;
    else
      return false;
    V = (V << 4) | D;
  }
  Out = V;
  return true;
}

} // namespace

std::string serve::encodeStore(const Program &Prog,
                               const std::string &TrackedClass,
                               const std::vector<StoredProc> &Procs) {
  std::string Payload;
  Payload += "tracked " + TrackedClass + "\n";
  // The program travels verbatim inside the store: a warm start must
  // solve exactly the program the summaries were computed against, and
  // the dense-length framing keeps the embedded text unambiguous.
  std::string ProgText = programToText(Prog);
  Payload.append(ProgramBegin);
  Payload += ' ';
  Payload += std::to_string(ProgText.size());
  Payload += '\n';
  Payload += ProgText;
  Payload.append(ProgramEnd);
  Payload += '\n';
  Payload += "procs " + std::to_string(Procs.size()) + "\n";
  for (const StoredProc &P : Procs) {
    Payload += "proc " + P.Name + " hash " + hex16(P.BodyHash) + " fp " +
               hex16(P.OracleFp) + " valid " + (P.HasSummary ? "1" : "0") +
               " deps " + std::to_string(P.Deps.size());
    for (const std::string &D : P.Deps)
      Payload += " " + D;
    Payload += '\n';
    if (P.HasSummary) {
      std::string Sum = summaryToText(Prog, P.Sum);
      Payload += "summary " + std::to_string(Sum.size()) + "\n";
      Payload += Sum;
    }
  }

  std::string Out;
  Out.reserve(Payload.size() + 48);
  Out.append(StoreHeader);
  Out += std::to_string(Payload.size());
  Out += '\n';
  Out += Payload;
  Out.append(TrailerTag);
  Out += hex8(crc32(Payload.data(), Payload.size()));
  Out += '\n';
  return Out;
}

namespace {

/// Line-oriented reader over the (already CRC-validated) payload.
class LineReader {
public:
  explicit LineReader(std::string_view Text) : T(Text) {}

  std::string_view line() {
    if (Pos >= T.size())
      fail("unexpected end of store payload");
    size_t Eol = T.find('\n', Pos);
    if (Eol == std::string_view::npos)
      fail("unterminated line in store payload");
    std::string_view L = T.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    return L;
  }

  std::string_view bytes(size_t N) {
    if (N > T.size() - Pos)
      fail("store payload section truncated");
    std::string_view B = T.substr(Pos, N);
    Pos += N;
    return B;
  }

  bool atEnd() const { return Pos == T.size(); }

private:
  std::string_view T;
  size_t Pos = 0;
};

uint64_t parseDec(std::string_view V) {
  uint64_t N = 0;
  if (V.empty())
    fail("empty decimal field");
  for (char C : V) {
    if (C < '0' || C > '9')
      fail("malformed decimal field '" + std::string(V) + "'");
    if (N > UINT64_MAX / 10)
      fail("decimal field out of range");
    N = N * 10 + static_cast<uint64_t>(C - '0');
  }
  return N;
}

/// Splits a line into whitespace-separated fields.
std::vector<std::string_view> fields(std::string_view L) {
  std::vector<std::string_view> Out;
  size_t I = 0;
  while (I < L.size()) {
    while (I < L.size() && L[I] == ' ')
      ++I;
    size_t Start = I;
    while (I < L.size() && L[I] != ' ')
      ++I;
    if (I > Start)
      Out.push_back(L.substr(Start, I - Start));
  }
  return Out;
}

} // namespace

ParsedStore serve::decodeStore(std::string_view Bytes) {
  if (Bytes.substr(0, StoreHeader.size()) != StoreHeader)
    fail("missing store magic");
  size_t Eol = Bytes.find('\n');
  if (Eol == std::string_view::npos)
    fail("header line is cut short");
  uint64_t Len = parseDec(Bytes.substr(StoreHeader.size(),
                                       Eol - StoreHeader.size()));
  size_t Body = Eol + 1;
  if (Len > Bytes.size() - Body)
    fail("payload truncated: header declares " + std::to_string(Len) +
         " bytes, " + std::to_string(Bytes.size() - Body) + " present");
  std::string_view Payload = Bytes.substr(Body, Len);
  std::string_view Rest = Bytes.substr(Body + Len);
  if (Rest.size() < TrailerSize)
    fail("CRC trailer is missing or cut");
  if (Rest.size() > TrailerSize)
    fail("trailing data after CRC trailer");
  if (Rest.substr(0, TrailerTag.size()) != TrailerTag || Rest.back() != '\n')
    fail("malformed CRC trailer");
  uint64_t Stored = 0;
  if (!parseHexU(Rest.substr(TrailerTag.size(), 8), Stored) ||
      Rest.substr(TrailerTag.size(), 8).size() != 8)
    fail("malformed CRC value");
  uint32_t Computed = crc32(Payload.data(), Payload.size());
  if (Computed != static_cast<uint32_t>(Stored))
    fail("CRC mismatch: stored " + hex8(static_cast<uint32_t>(Stored)) +
         ", computed " + hex8(Computed));

  LineReader R(Payload);
  std::vector<std::string_view> F = fields(R.line());
  if (F.size() != 2 || F[0] != "tracked")
    fail("malformed tracked-class line");
  ParsedStore PS;
  PS.TrackedClass = std::string(F[1]);

  F = fields(R.line());
  if (F.size() != 2 || F[0] != ProgramBegin)
    fail("malformed program-begin line");
  std::string_view ProgText = R.bytes(parseDec(F[1]));
  if (R.line() != ProgramEnd)
    fail("malformed program-end line");
  try {
    PS.Prog = parseProgramText(ProgText);
  } catch (const std::exception &E) {
    fail(std::string("embedded program does not parse: ") + E.what());
  }

  F = fields(R.line());
  if (F.size() != 2 || F[0] != "procs")
    fail("malformed procs line");
  uint64_t NumProcs = parseDec(F[1]);
  if (NumProcs != PS.Prog->numProcs())
    fail("store lists " + std::to_string(NumProcs) +
         " procedures, embedded program has " +
         std::to_string(PS.Prog->numProcs()));
  for (uint64_t I = 0; I != NumProcs; ++I) {
    F = fields(R.line());
    if (F.size() < 9 || F[0] != "proc" || F[2] != "hash" || F[4] != "fp" ||
        F[6] != "valid" || F[8] != "deps")
      fail("malformed proc line");
    StoredProc P;
    P.Name = std::string(F[1]);
    if (!parseHexU(F[3], P.BodyHash) || !parseHexU(F[5], P.OracleFp))
      fail("malformed proc hash field");
    uint64_t Valid = parseDec(F[7]);
    if (Valid > 1)
      fail("malformed valid flag");
    P.HasSummary = Valid != 0;
    if (F.size() < 10)
      fail("malformed proc line (missing dep count)");
    uint64_t ND = parseDec(F[9]);
    if (F.size() != 10 + ND)
      fail("proc line dep count does not match fields");
    for (uint64_t D = 0; D != ND; ++D)
      P.Deps.emplace_back(F[10 + D]);
    if (PS.Prog->procId(PS.Prog->symbols().intern(P.Name)) == InvalidProc)
      fail("store names unknown procedure '" + P.Name + "'");
    if (P.HasSummary) {
      std::vector<std::string_view> SF = fields(R.line());
      if (SF.size() != 2 || SF[0] != "summary")
        fail("malformed summary header line");
      std::string_view SumText = R.bytes(parseDec(SF[1]));
      P.Sum = parseSummaryText(*PS.Prog, SumText);
    }
    PS.Procs.push_back(std::move(P));
  }
  if (!R.atEnd())
    fail("trailing data after last procedure record");
  return PS;
}

void serve::saveStoreFile(const std::string &Path, const Program &Prog,
                          const std::string &TrackedClass,
                          const std::vector<StoredProc> &Procs) {
  writeFileAtomic(Path, encodeStore(Prog, TrackedClass, Procs),
                  "serve.save");
}

ParsedStore serve::loadStoreFile(const std::string &Path) {
  return decodeStore(readWholeFile(Path, "serve.load"));
}
