//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The warm-start summary store behind swift-serve: a crash-safe on-disk
/// snapshot of the incremental engine's per-procedure state (body hash,
/// oracle fingerprint, recorded summary->callee dependency edges, and the
/// full relational summary), plus the summary text codec the engine also
/// uses to translate retained summaries across a program edit.
///
/// Summaries are symbolic: every variable, field, procedure, and class is
/// written by *name*, never by Symbol id — a re-parse after an edit interns
/// symbols in a different order, and the codec's parse side takes the
/// target Program and re-interns, so decode(encode(S, OldProg), NewProg)
/// is exactly the old summary expressed in the new program's vocabulary.
/// Typestate indices and allocation-site ids are written numerically: the
/// spec block is not editable through procedure replacement, and the
/// parser's dense-site-id invariant pins every site id across any edit
/// that parses.
///
/// The file framing mirrors the PR 3/4 checkpoint ("swift-serve-store v1 "
/// + decimal payload length + payload + crc32 trailer) and goes to disk
/// through writeFileAtomic with failpoint prefix "serve.save", so the
/// crashtest kill campaign covers the store the same way it covers
/// checkpoints: the survivor of a mid-save crash is always a complete,
/// CRC-valid old or new snapshot.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_SERVE_STORE_H
#define SWIFT_SERVE_STORE_H

#include "framework/RelationalSolver.h"
#include "typestate/Context.h"
#include "typestate/TsAnalysis.h"

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace swift {
namespace serve {

using TsSummary = RelationalSolver<TsAnalysis>::Summary;

/// Thrown on any malformed store file or summary text: truncated framing,
/// CRC mismatch, unknown names, unsatisfiable replayed predicates.
class StoreError : public std::runtime_error {
public:
  explicit StoreError(const std::string &What) : std::runtime_error(What) {}
};

/// One procedure's persisted incremental state.
struct StoredProc {
  std::string Name;
  uint64_t BodyHash = 0;
  uint64_t OracleFp = 0;
  bool HasSummary = false;
  /// Names of callees whose summaries this procedure's summary read
  /// (recorded by the solver's dep recorder); meaningful iff HasSummary.
  std::vector<std::string> Deps;
  TsSummary Sum; ///< Meaningful iff HasSummary.
};

/// A decoded store: the program it was saved against plus per-proc state
/// (summaries already interned into *Prog's symbol table).
struct ParsedStore {
  std::unique_ptr<Program> Prog;
  std::string TrackedClass;
  std::vector<StoredProc> Procs;
};

//===----------------------------------------------------------------------===//
// Summary text codec
//===----------------------------------------------------------------------===//

/// Serializes \p S against \p Prog's symbol table (names, not ids).
std::string summaryToText(const Program &Prog, const TsSummary &S);

/// Parses \p Text, interning every name into \p Prog. Throws StoreError on
/// malformed input or names that do not resolve (procedure names in may-
/// alias constraints must exist in \p Prog). Relation vectors are
/// re-sorted after interning: symbol ids order relations, and ids shift
/// across programs.
TsSummary parseSummaryText(Program &Prog, std::string_view Text);

//===----------------------------------------------------------------------===//
// Store files
//===----------------------------------------------------------------------===//

/// Serializes a full store (program text embedded verbatim) and frames it
/// with the length header + crc32 trailer.
std::string encodeStore(const Program &Prog, const std::string &TrackedClass,
                        const std::vector<StoredProc> &Procs);

/// Validates the framing and decodes everything. Throws StoreError.
ParsedStore decodeStore(std::string_view Bytes);

/// encodeStore + writeFileAtomic (failpoint prefix "serve.save").
void saveStoreFile(const std::string &Path, const Program &Prog,
                   const std::string &TrackedClass,
                   const std::vector<StoredProc> &Procs);

/// readWholeFile + decodeStore. Throws StoreError / std::runtime_error.
ParsedStore loadStoreFile(const std::string &Path);

} // namespace serve
} // namespace swift

#endif // SWIFT_SERVE_STORE_H
