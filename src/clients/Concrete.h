//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete witness machines for the client domains — the ground truth of
/// the per-domain differential oracle, playing the role the typestate
/// interpreter (concrete/Interpreter.h) plays for the built-in analysis.
/// One reference machine serves the three IFDS-shaped clients (taint,
/// null-deref, reaching-defs); a separate by-value counter machine serves
/// the interval domain, whose concretization differs (counters copy,
/// fields are a global store, method calls on null are no-ops).
///
/// Reference-machine semantics mirror concrete/Interpreter.cpp exactly:
/// uninitialized variables and missing returns are null, and any
/// dereference of null (load, store base, or method receiver) terminates
/// the run. On top of that it tracks the three domains' observables:
///  * taint: objects allocated at source classes are tainted; a sink
///    method invoked on a tainted receiver is a leak event,
///  * null-deref: null values carry an "explicitly assigned" provenance
///    bit; a halt caused by dereferencing an *explicit* null is a deref
///    event (uninitialized nulls halt silently — the analysis only claims
///    to cover explicit-null flows, see NullDerefProblem.h),
///  * reaching-defs: the latest direct-def site per frame variable and
///    every executed store site; compared as main-exit facts.
///
/// Events are valid for any run prefix (a sound analysis covers every
/// prefix); exit facts are valid only for runs that complete through
/// main's exit (ExitFactsValid).
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CLIENTS_CONCRETE_H
#define SWIFT_CLIENTS_CONCRETE_H

#include "ir/Program.h"

#include <cstdint>
#include <set>
#include <string>
#include <utility>

namespace swift {
namespace clients {

struct WitnessConfig {
  uint64_t Seed = 1;
  uint64_t MaxSteps = 20000;
  unsigned MaxDepth = 64;
  /// Per-mille probability of taking another loop iteration at each
  /// while(*) head (mirrors InterpConfig).
  unsigned LoopContinuePerMille = 400;
};

struct WitnessResult {
  /// Report sites hit by this schedule: (proc, node), keyed exactly like
  /// the abstract domains' report facts.
  std::set<std::pair<ProcId, NodeId>> Events;
  /// Non-report facts holding at main's exit, rendered in the abstract
  /// domain's factText format. Only meaningful when ExitFactsValid.
  std::set<std::string> ExitFacts;
  /// The run reached main's exit normally (no halt, budget not
  /// exhausted); exit facts may be compared against the analysis.
  bool ExitFactsValid = false;
  /// False if the step or depth budget was exhausted mid-run. Events are
  /// still valid (they happened on a real prefix).
  bool Completed = false;
  uint64_t Steps = 0;
};

/// Executes one schedule of \p Prog under the witness machine of
/// \p Domain ("taint", "nullderef", "reachdefs", or "interval").
/// Taint uses the registry's source/sink convention (see Registry.h).
WitnessResult runClientWitness(const std::string &Domain,
                               const Program &Prog,
                               const WitnessConfig &Cfg);

} // namespace clients
} // namespace swift

#endif // SWIFT_CLIENTS_CONCRETE_H
