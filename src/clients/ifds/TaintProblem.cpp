//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "clients/ifds/TaintProblem.h"

#include "clients/TestHooks.h"

#include <algorithm>

using namespace swift;
using namespace swift::ifds;

TaintProblem::TaintProblem(const Program &Prog,
                           std::set<Symbol> SourceClasses,
                           std::set<Symbol> SinkMethods)
    : IfdsProblem(Prog), Sources(std::move(SourceClasses)),
      Sinks(std::move(SinkMethods)) {
  Info.push_back({}); // Fact 0: Lambda.

  std::set<Symbol> Vars, Fields;
  Vars.insert(Prog.retVar());
  for (ProcId P = 0; P != Prog.numProcs(); ++P) {
    const Procedure &Proc = Prog.proc(P);
    for (Symbol V : Proc.vars())
      Vars.insert(V);
    for (const CfgNode &Node : Proc.nodes())
      if (Node.Cmd.Kind == CmdKind::Load ||
          Node.Cmd.Kind == CmdKind::Store)
        Fields.insert(Node.Cmd.Field);
  }
  for (Symbol V : Vars) {
    VarIds.emplace(V, static_cast<FactId>(Info.size()));
    Info.push_back({Kind::Var, V, InvalidProc, InvalidNode});
  }
  for (Symbol F : Fields) {
    FieldIds.emplace(F, static_cast<FactId>(Info.size()));
    AllFieldFacts.push_back(static_cast<FactId>(Info.size()));
    Info.push_back({Kind::Field, F, InvalidProc, InvalidNode});
  }
  for (ProcId P = 0; P != Prog.numProcs(); ++P) {
    const Procedure &Proc = Prog.proc(P);
    for (NodeId N : Proc.reachableRpo()) {
      const Command &Cmd = Proc.node(N).Cmd;
      if (Cmd.Kind == CmdKind::TsCall && Sinks.count(Cmd.Method)) {
        LeakIds.emplace(std::make_pair(P, N),
                        static_cast<FactId>(Info.size()));
        Info.push_back({Kind::Leak, Symbol(), P, N});
      }
    }
  }
}

std::string TaintProblem::factText(FactId F) const {
  const SymbolTable &Syms = program().symbols();
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    return "(lambda)";
  case Kind::Var:
    return "taint(" + Syms.text(I.Sym) + ")";
  case Kind::Field:
    return "taint(*." + Syms.text(I.Sym) + ")";
  case Kind::Leak:
    return "leak@" + Syms.text(program().proc(I.P).name()) + ":" +
           std::to_string(I.N);
  }
  return "<?>";
}

void TaintProblem::transfer(ProcId P, const Command &Cmd, FactId F,
                            std::vector<FactId> &Out) const {
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    assert(false && "the adapter handles Lambda");
    return;

  case Kind::Var: {
    Symbol V = I.Sym;
    switch (Cmd.Kind) {
    case CmdKind::Nop:
      Out.push_back(F);
      return;
    case CmdKind::Alloc:
    case CmdKind::AssignNull:
      if (Cmd.Dst != V)
        Out.push_back(F);
      return;
    case CmdKind::Copy:
      if (Cmd.Src == V) {
        Out.push_back(F);
        if (Cmd.Dst != V)
          Out.push_back(varId(Cmd.Dst));
        return;
      }
      if (Cmd.Dst != V)
        Out.push_back(F);
      return;
    case CmdKind::Load:
      // The loaded value's taint comes from the Field fact; v's old
      // taint is overwritten.
      if (Cmd.Dst != V)
        Out.push_back(F);
      return;
    case CmdKind::Store:
      Out.push_back(F);
      if (Cmd.Src == V && !clients::test::InjectTaintStoreBug.load())
        Out.push_back(fieldId(Cmd.Field));
      return;
    case CmdKind::TsCall:
      Out.push_back(F);
      if (Cmd.Src == V && Sinks.count(Cmd.Method))
        Out.push_back(leakId(P, Cmd.Self));
      return;
    case CmdKind::Call:
      break;
    }
    break;
  }

  case Kind::Field:
    Out.push_back(F);
    if (Cmd.Kind == CmdKind::Load && Cmd.Field == I.Sym)
      Out.push_back(varId(Cmd.Dst));
    return;

  case Kind::Leak:
    Out.push_back(F); // Absorbing observation.
    return;
  }
  assert(false && "calls are handled by the solver");
}

void TaintProblem::affected(const Command &Cmd,
                            std::vector<FactId> &Out) const {
  switch (Cmd.Kind) {
  case CmdKind::Nop:
    return;
  case CmdKind::Alloc:
  case CmdKind::AssignNull:
    Out.push_back(varId(Cmd.Dst));
    return;
  case CmdKind::Copy:
    if (Cmd.Dst == Cmd.Src)
      return;
    Out.push_back(varId(Cmd.Dst));
    Out.push_back(varId(Cmd.Src));
    return;
  case CmdKind::Load:
    Out.push_back(varId(Cmd.Dst));
    Out.push_back(fieldId(Cmd.Field));
    return;
  case CmdKind::Store:
    Out.push_back(varId(Cmd.Src));
    return;
  case CmdKind::TsCall:
    if (Sinks.count(Cmd.Method))
      Out.push_back(varId(Cmd.Src));
    return;
  case CmdKind::Call:
    break;
  }
  assert(false && "calls have no kill/gen footprint");
}

void TaintProblem::lambdaGen(ProcId P, const Command &Cmd,
                             std::vector<FactId> &Out) const {
  (void)P;
  if (Cmd.Kind == CmdKind::Alloc && Sources.count(Cmd.Class))
    Out.push_back(varId(Cmd.Dst));
}

void TaintProblem::enter(const clients::Binding &B, FactId F,
                         std::vector<FactId> &Out) const {
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    return;
  case Kind::Var:
    for (Symbol Formal : B.formalsOf(I.Sym))
      Out.push_back(varId(Formal));
    return;
  case Kind::Field:
    Out.push_back(F); // Heap facts are global.
    return;
  case Kind::Leak:
    return; // Observations stay in the frame (callLocal).
  }
}

void TaintProblem::callLocal(const clients::Binding &B, FactId F,
                             std::vector<FactId> &Out) const {
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    return;
  case Kind::Var:
    if (I.Sym == B.resultVar() && B.resultVar().isValid())
      return; // The result variable is rebound by the call.
    Out.push_back(F);
    return;
  case Kind::Field:
    return; // Heap facts travel through the callee.
  case Kind::Leak:
    Out.push_back(F);
    return;
  }
}

void TaintProblem::combineExit(const clients::Binding &B, FactId F,
                               std::vector<FactId> &Out) const {
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    return;
  case Kind::Var: {
    if (I.Sym == B.retVar()) {
      if (B.resultVar().isValid())
        Out.push_back(varId(B.resultVar()));
      return;
    }
    Symbol Actual = B.actualOf(I.Sym);
    // A tainted formal means the caller's actual holds a tainted value
    // only if the callee did not rebind the formal.
    if (Actual.isValid() && Actual != B.resultVar() &&
        B.isStableFormal(I.Sym))
      Out.push_back(varId(Actual));
    return;
  }
  case Kind::Field:
  case Kind::Leak:
    Out.push_back(F); // Globals and observations propagate to callers.
    return;
  }
}

void TaintProblem::callFootprint(const clients::Binding &B,
                                 std::vector<FactId> &Out) const {
  if (B.resultVar().isValid())
    Out.push_back(varId(B.resultVar()));
  for (const auto &[Actual, Formals] : B.bindings()) {
    (void)Formals;
    Out.push_back(varId(Actual));
  }
  Out.insert(Out.end(), AllFieldFacts.begin(), AllFieldFacts.end());
}

bool TaintProblem::isReport(FactId F) const {
  return Info[F].K == Kind::Leak;
}

bool TaintProblem::reportSite(FactId F, ProcId &P, NodeId &N) const {
  if (Info[F].K != Kind::Leak)
    return false;
  P = Info[F].P;
  N = Info[F].N;
  return true;
}
