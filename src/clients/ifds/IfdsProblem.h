//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The problem interface of the generic IFDS adapter: any distributive
/// kill/gen dataflow problem over atomic facts describes itself through
/// this interface — a dense, pre-enumerated fact universe and per-fact
/// flow functions for the four IFDS edge kinds (normal, call, return,
/// call-to-return) — and `IfdsAnalysis` lowers it onto the framework's
/// `AnalysisTraits` contract so the unchanged SWIFT solvers
/// (`Tabulation.h`, `RelationalSolver.h`) run it: the top-down side uses
/// the flow functions directly, and the bottom-up side is synthesized
/// exactly as the paper's Section 5 describes for the kill/gen family
/// (identity-except relations plus single summary edges, extended by
/// composing with each command's kill/gen footprint).
///
/// Facts are dense 32-bit ids; id 0 is Lambda (the IFDS zero fact, always
/// present — seed facts are expressed as Lambda-flow at the commands that
/// create them, via `lambdaGen`). Dense ids are what lets the
/// data-oriented tabulation core (state interning, memoized transfer /
/// enter / combine over `support/FlatHash.h`) apply to every client with
/// no per-domain hashing cost: the state hash IS the fact id.
///
/// Contract (see docs/DOMAINS.md for the worked guide):
///  * `transfer` must be a pure function of (command, fact) — facts not in
///    `affected(cmd)` must map to exactly {themselves}.
///  * `lambdaGen(p, cmd)` lists the facts a command creates from nothing;
///    they are the image of Lambda minus Lambda itself.
///  * Report facts (`isReport`) must be absorbing: every command and every
///    return mapping passes them through unchanged, and `callLocal` keeps
///    them in the caller frame (they are observations in the paper's
///    sense; the solvers surface them through the observation manifest
///    even when the creating callee ran bottom-up).
///  * `callFootprint(b)` lists every fact whose flow across call site `b`
///    differs from plain frame survival — the call-level analogue of
///    `affected`.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CLIENTS_IFDS_IFDSPROBLEM_H
#define SWIFT_CLIENTS_IFDS_IFDSPROBLEM_H

#include "clients/Binding.h"
#include "ir/Program.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace swift {
namespace ifds {

/// Dense fact id into the problem's pre-enumerated universe.
using FactId = uint32_t;

/// Id 0 is always Lambda, the IFDS zero fact.
inline constexpr FactId LambdaFact = 0;

/// One distributive kill/gen IFDS problem over a fixed program. Instances
/// are immutable after construction and shared by concurrent solver
/// threads; every method must be const and thread-safe.
class IfdsProblem {
public:
  explicit IfdsProblem(const Program &Prog) : Prog(Prog) {
    for (ProcId P = 0; P != Prog.numProcs(); ++P) {
      const Procedure &Proc = Prog.proc(P);
      for (NodeId N : Proc.reachableRpo())
        CmdSite.emplace(&Proc.node(N).Cmd, std::make_pair(P, N));
    }
  }
  virtual ~IfdsProblem() = default;

  const Program &program() const { return Prog; }

  /// Short machine-readable domain name, e.g. "taint".
  virtual std::string name() const = 0;

  /// Size of the fact universe, Lambda included.
  virtual uint32_t numFacts() const = 0;

  /// Canonical rendering of a fact (used for result comparison across
  /// configurations and for reporting).
  virtual std::string factText(FactId F) const = 0;

  /// Normal-edge flow: the successors of non-Lambda fact \p F across the
  /// non-call command \p Cmd, appended to \p Out. An empty append kills
  /// the fact.
  virtual void transfer(ProcId P, const Command &Cmd, FactId F,
                        std::vector<FactId> &Out) const = 0;

  /// The kill/gen footprint: every fact whose `transfer` under \p Cmd is
  /// not exactly {itself}.
  virtual void affected(const Command &Cmd,
                        std::vector<FactId> &Out) const = 0;

  /// Facts created from nothing by \p Cmd (the image of Lambda minus
  /// Lambda).
  virtual void lambdaGen(ProcId P, const Command &Cmd,
                         std::vector<FactId> &Out) const = 0;

  /// Call-edge flow: \p F mapped into the callee's entry scope.
  virtual void enter(const clients::Binding &B, FactId F,
                     std::vector<FactId> &Out) const = 0;

  /// Call-to-return flow: the part of \p F that bypasses the callee and
  /// survives in the caller frame.
  virtual void callLocal(const clients::Binding &B, FactId F,
                         std::vector<FactId> &Out) const = 0;

  /// Return-edge flow: callee exit fact \p F mapped back to the caller.
  virtual void combineExit(const clients::Binding &B, FactId F,
                           std::vector<FactId> &Out) const = 0;

  /// Every fact whose flow across call site \p B is not plain frame
  /// survival (killed, entering the callee, or rebound by the result).
  virtual void callFootprint(const clients::Binding &B,
                             std::vector<FactId> &Out) const = 0;

  /// True for absorbing report facts ("a finding at a program point").
  virtual bool isReport(FactId F) const = 0;

  /// The program point a report fact denotes; false for non-reports.
  virtual bool reportSite(FactId F, ProcId &P, NodeId &N) const = 0;

protected:
  /// (proc, node) of a command, recoverable because solvers always pass
  /// commands by reference into the immutable Program's CFG storage.
  /// Lets `lambdaGen` mint point-stamped facts (defs, reports) without a
  /// ProcId parameter on the framework's Lambda-emission hook.
  std::pair<ProcId, NodeId> siteOf(const Command &Cmd) const {
    auto It = CmdSite.find(&Cmd);
    assert(It != CmdSite.end() && "command not in this program's CFG");
    return It->second;
  }

private:
  const Program &Prog;
  std::unordered_map<const Command *, std::pair<ProcId, NodeId>> CmdSite;
};

} // namespace ifds
} // namespace swift

#endif // SWIFT_CLIENTS_IFDS_IFDSPROBLEM_H
