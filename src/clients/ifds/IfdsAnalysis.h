//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic IFDS adapter: lowers any `IfdsProblem` onto the
/// framework's duck-typed `AnalysisTraits` contract. One template-free
/// traits type serves every client — the problem is runtime state carried
/// by the context — so `TabulationSolver<IfdsAnalysis>` and
/// `RelationalSolver<IfdsAnalysis>` instantiate once and run null-deref,
/// reaching-defs, taint, or any future kill/gen problem unchanged.
///
/// The bottom-up side is synthesized from the fact-level flow exactly as
/// `KgAnalysis` does for the built-in taint instance (the paper's Section
/// 5 recipe): relations are the identity on the universe minus an
/// explicit exclusion set, or a single summary edge (from, to); `rtrans`
/// peels each command's kill/gen footprint off the identity into explicit
/// edges, and `composeCall` routes edges through callee summaries via
/// enter / combine with Sigma pullbacks for pruned inputs.
///
/// States are single dense fact ids, so the data-oriented core's interned
/// state table degenerates to the identity map and the memoized
/// transfer/enter/combine tables hit at full per-fact granularity.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CLIENTS_IFDS_IFDSANALYSIS_H
#define SWIFT_CLIENTS_IFDS_IFDSANALYSIS_H

#include "clients/ifds/IfdsProblem.h"
#include "ir/CallGraph.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>

namespace swift {
namespace ifds {

/// One adapter state: a dense fact id. Id 0 is Lambda.
struct IfdsFact {
  FactId Id = LambdaFact;

  static IfdsFact lambda() { return IfdsFact(); }
  static IfdsFact of(FactId F) { return IfdsFact{F}; }
  bool isLambda() const { return Id == LambdaFact; }

  friend bool operator==(const IfdsFact &A, const IfdsFact &B) {
    return A.Id == B.Id;
  }
  friend bool operator!=(const IfdsFact &A, const IfdsFact &B) {
    return A.Id != B.Id;
  }
  friend bool operator<(const IfdsFact &A, const IfdsFact &B) {
    return A.Id < B.Id;
  }
};

/// Environment of one adapter run: the program, its call graph, and the
/// problem instance under analysis.
class IfdsContext {
public:
  IfdsContext(const Program &Prog, const IfdsProblem &Problem)
      : Prog(Prog), CG(std::make_unique<CallGraph>(Prog)),
        Problem(Problem) {}

  const Program &program() const { return Prog; }
  const CallGraph &callGraph() const { return *CG; }
  const IfdsProblem &problem() const { return Problem; }

private:
  const Program &Prog;
  std::unique_ptr<CallGraph> CG;
  const IfdsProblem &Problem;
};

/// A bottom-up relation of the kill/gen family over dense fact ids.
struct IfdsRel {
  enum class Kind : uint8_t {
    IdentityExcept, ///< {(d, d) | d not in Excl, d != Lambda}
    Edge,           ///< {(From, To)}; From may be Lambda.
  };

  Kind K = Kind::IdentityExcept;
  std::vector<FactId> Excl; ///< Sorted, unique (IdentityExcept).
  FactId From = LambdaFact, To = LambdaFact; ///< Edge.

  static IfdsRel identity() { return IfdsRel(); }
  static IfdsRel identityExcept(std::vector<FactId> X) {
    IfdsRel R;
    std::sort(X.begin(), X.end());
    X.erase(std::unique(X.begin(), X.end()), X.end());
    R.Excl = std::move(X);
    return R;
  }
  static IfdsRel edge(FactId From, FactId To) {
    IfdsRel R;
    R.K = Kind::Edge;
    R.From = From;
    R.To = To;
    return R;
  }

  bool excludes(FactId F) const {
    return std::binary_search(Excl.begin(), Excl.end(), F);
  }

  friend bool operator==(const IfdsRel &A, const IfdsRel &B) {
    return A.K == B.K && A.Excl == B.Excl && A.From == B.From &&
           A.To == B.To;
  }
  friend bool operator<(const IfdsRel &A, const IfdsRel &B) {
    if (A.K != B.K)
      return A.K < B.K;
    if (A.K == Kind::IdentityExcept)
      return A.Excl < B.Excl;
    if (A.From != B.From)
      return A.From < B.From;
    return A.To < B.To;
  }
};

/// Ignored inputs (Sigma): an explicit fact-id set; domains of pruned
/// edges are singletons.
class IfdsIgnore {
public:
  bool containsLambda() const { return Lambda || All; }
  bool containsFact(const IfdsFact &F) const {
    if (All)
      return true;
    if (F.isLambda())
      return Lambda;
    return Facts.count(F.Id) != 0;
  }
  void makeAll() {
    All = true;
    Lambda = true;
    Facts.clear();
  }
  bool contains(const IfdsContext &Ctx, const IfdsFact &F) const {
    (void)Ctx;
    return containsFact(F);
  }
  bool addLambda() {
    bool Grew = !Lambda;
    Lambda = true;
    return Grew;
  }
  bool add(const IfdsFact &F) {
    if (F.isLambda())
      return addLambda();
    return Facts.insert(F.Id).second;
  }
  bool unionWith(const IfdsIgnore &Other) {
    if (All)
      return false;
    if (Other.All) {
      makeAll();
      return true;
    }
    bool Grew = false;
    if (Other.Lambda)
      Grew |= addLambda();
    for (FactId F : Other.Facts)
      Grew |= Facts.insert(F).second;
    return Grew;
  }
  friend bool operator==(const IfdsIgnore &A, const IfdsIgnore &B) {
    return A.All == B.All && A.Lambda == B.Lambda && A.Facts == B.Facts;
  }
  friend bool operator!=(const IfdsIgnore &A, const IfdsIgnore &B) {
    return !(A == B);
  }
  size_t size() const { return Facts.size() + (Lambda ? 1 : 0); }

private:
  bool All = false;
  bool Lambda = false;
  std::set<FactId> Facts;
};

/// Call-site binding: the generic IR-level binding plus nothing — all
/// domain interpretation lives in the problem.
struct IfdsBinding {
  IfdsBinding(const IfdsContext &Ctx, const Command &Cmd)
      : B(Ctx.program(), Cmd), Problem(&Ctx.problem()) {}
  clients::Binding B;
  const IfdsProblem *Problem;
};

struct IfdsAnalysis {
  using Context = IfdsContext;
  using State = IfdsFact;
  using Rel = IfdsRel;
  using Ignore = IfdsIgnore;
  using Binding = IfdsBinding;

  static std::vector<State> wrap(const std::vector<FactId> &Ids) {
    std::vector<State> Out;
    Out.reserve(Ids.size());
    for (FactId F : Ids)
      Out.push_back(IfdsFact::of(F));
    return Out;
  }

  // -- Top-down analysis --
  static State lambda() { return IfdsFact::lambda(); }
  static bool isLambda(const State &S) { return S.isLambda(); }
  static uint64_t stateHash(const State &S) {
    uint64_t X = S.Id + 0x9e3779b97f4a7c15ULL;
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdULL;
    X ^= X >> 33;
    return X;
  }
  static std::vector<State> transfer(const Context &Ctx, ProcId P,
                                     const Command &Cmd, const State &S) {
    std::vector<FactId> Out;
    if (S.isLambda()) {
      Out.push_back(LambdaFact);
      Ctx.problem().lambdaGen(P, Cmd, Out);
    } else {
      Ctx.problem().transfer(P, Cmd, S.Id, Out);
    }
    return wrap(Out);
  }
  static Binding makeBinding(const Context &Ctx, ProcId P,
                             const Command &Cmd) {
    (void)P;
    return IfdsBinding(Ctx, Cmd);
  }
  static std::vector<State> enter(const Binding &B, const State &S) {
    if (S.isLambda())
      return {S};
    std::vector<FactId> Out;
    B.Problem->enter(B.B, S.Id, Out);
    return wrap(Out);
  }
  static std::vector<State> callLocal(const Binding &B, const State &S) {
    if (S.isLambda())
      return {}; // Lambda travels through the callee.
    std::vector<FactId> Out;
    B.Problem->callLocal(B.B, S.Id, Out);
    return wrap(Out);
  }
  static std::vector<State> combine(const Binding &B, const State &Frame,
                                    const State &Exit) {
    (void)Frame; // Atomic may-facts need no frame merge.
    return combineFresh(B, Exit);
  }
  static std::vector<State> combineFresh(const Binding &B,
                                         const State &Exit) {
    if (Exit.isLambda())
      return {Exit};
    std::vector<FactId> Out;
    B.Problem->combineExit(B.B, Exit.Id, Out);
    return wrap(Out);
  }

  // -- Bottom-up analysis (synthesized from the fact-level flow) --
  struct SummaryView {
    const std::vector<Rel> *Rels = nullptr;
    const Ignore *Sigma = nullptr;
  };

  static Rel identityRel(const Context &Ctx) {
    (void)Ctx;
    return IfdsRel::identity();
  }

  static std::vector<Rel> rtrans(const Context &Ctx, ProcId P,
                                 const Command &Cmd, const Rel &R) {
    const IfdsProblem &Pb = Ctx.problem();
    std::vector<Rel> Out;
    std::vector<FactId> Next;
    if (R.K == IfdsRel::Kind::Edge) {
      if (R.To == LambdaFact) {
        // Lambda-to-Lambda edges are implicit; edges never target Lambda.
        Out.push_back(R);
        return Out;
      }
      Pb.transfer(P, Cmd, R.To, Next);
      for (FactId F : Next)
        Out.push_back(IfdsRel::edge(R.From, F));
      return Out;
    }
    // Identity-except: facts in the command's footprint peel off into
    // explicit edges; the rest stay in the identity.
    std::vector<FactId> Affected;
    Pb.affected(Cmd, Affected);
    std::vector<FactId> NewExcl = R.Excl;
    for (FactId D : Affected) {
      if (R.excludes(D))
        continue;
      NewExcl.push_back(D);
      Next.clear();
      Pb.transfer(P, Cmd, D, Next);
      for (FactId F : Next)
        Out.push_back(IfdsRel::edge(D, F));
    }
    Out.push_back(IfdsRel::identityExcept(std::move(NewExcl)));
    return Out;
  }

  static std::vector<Rel> lambdaEmits(const Context &Ctx,
                                      const Command &Cmd) {
    std::vector<Rel> Out;
    std::vector<FactId> Gen;
    // The emission point's procedure is recovered by the problem from the
    // command's identity (see IfdsProblem::siteOf); pass InvalidProc to
    // make accidental use visible.
    Ctx.problem().lambdaGen(InvalidProc, Cmd, Gen);
    for (FactId F : Gen)
      Out.push_back(IfdsRel::edge(LambdaFact, F));
    return Out;
  }

  /// Composes one output fact of a caller relation through the call.
  static void composeFactThroughCall(const Context &Ctx, const Binding &B,
                                     FactId From, FactId Mid,
                                     const SummaryView &Callee,
                                     std::vector<Rel> &Out,
                                     Ignore &SigmaOut) {
    const IfdsProblem &Pb = Ctx.problem();
    std::vector<FactId> Local, Entered, Combined;
    Pb.callLocal(B.B, Mid, Local);
    for (FactId L : Local)
      Out.push_back(IfdsRel::edge(From, L));
    Pb.enter(B.B, Mid, Entered);
    for (FactId E : Entered) {
      if (Callee.Sigma->contains(Ctx, IfdsFact::of(E))) {
        SigmaOut.add(IfdsFact::of(From));
        continue;
      }
      for (const Rel &CR : *Callee.Rels) {
        if (CR.K == IfdsRel::Kind::Edge) {
          if (CR.From != E)
            continue;
          Combined.clear();
          Pb.combineExit(B.B, CR.To, Combined);
          for (FactId C : Combined)
            Out.push_back(IfdsRel::edge(From, C));
        } else if (E != LambdaFact && !CR.excludes(E)) {
          Combined.clear();
          Pb.combineExit(B.B, E, Combined);
          for (FactId C : Combined)
            Out.push_back(IfdsRel::edge(From, C));
        }
      }
    }
  }

  static void composeCall(const Context &Ctx, const Binding &B,
                          const Rel &R, const SummaryView &Callee,
                          std::vector<Rel> &Out, Ignore &SigmaOut) {
    if (R.K == IfdsRel::Kind::Edge) {
      composeFactThroughCall(Ctx, B, R.From, R.To, Callee, Out, SigmaOut);
      return;
    }
    // Identity-except through a call: facts with a non-trivial call
    // transfer peel off; the rest stay identical.
    std::vector<FactId> Footprint;
    Ctx.problem().callFootprint(B.B, Footprint);
    std::sort(Footprint.begin(), Footprint.end());
    Footprint.erase(std::unique(Footprint.begin(), Footprint.end()),
                    Footprint.end());

    std::vector<FactId> NewExcl = R.Excl;
    for (FactId D : Footprint) {
      if (R.excludes(D))
        continue;
      NewExcl.push_back(D);
      composeFactThroughCall(Ctx, B, D, D, Callee, Out, SigmaOut);
    }
    Out.push_back(IfdsRel::identityExcept(std::move(NewExcl)));
  }

  static void composeCallLambda(const Context &Ctx, const Binding &B,
                                const SummaryView &Callee,
                                std::vector<Rel> &Out, Ignore &SigmaOut) {
    if (Callee.Sigma->containsLambda()) {
      SigmaOut.addLambda();
      return;
    }
    std::vector<FactId> Combined;
    for (const Rel &CR : *Callee.Rels) {
      if (CR.K != IfdsRel::Kind::Edge || CR.From != LambdaFact)
        continue;
      Combined.clear();
      Ctx.problem().combineExit(B.B, CR.To, Combined);
      for (FactId C : Combined)
        Out.push_back(IfdsRel::edge(LambdaFact, C));
    }
  }

  static std::optional<State> applyRel(const Context &Ctx, const Rel &R,
                                       const State &S) {
    (void)Ctx;
    if (R.K == IfdsRel::Kind::Edge)
      return R.From == S.Id ? std::optional<State>(IfdsFact::of(R.To))
                            : std::nullopt;
    if (S.isLambda() || R.excludes(S.Id))
      return std::nullopt;
    return S;
  }

  // -- Observation support --
  static bool relMayObserve(const Context &Ctx, const Rel &R) {
    return R.K == IfdsRel::Kind::Edge && Ctx.problem().isReport(R.To);
  }
  static bool stateObservable(const Context &Ctx, const State &S) {
    return Ctx.problem().isReport(S.Id);
  }

  // -- Pruning support --
  static bool relIsPrunable(const Rel &R) {
    // Only edges from real facts are pruned; the identity is the
    // dominating general case and Lambda edges are bounded by gens.
    return R.K == IfdsRel::Kind::Edge && R.From != LambdaFact;
  }
  static size_t relGenerality(const Rel &R) {
    return R.K == IfdsRel::Kind::IdentityExcept ? 0 : 1;
  }
  static bool domContains(const Context &Ctx, const Rel &R,
                          const State &S) {
    (void)Ctx;
    if (R.K == IfdsRel::Kind::Edge)
      return R.From == S.Id;
    return !S.isLambda() && !R.excludes(S.Id);
  }
  static void addDomToIgnore(const Rel &R, Ignore &Sigma) {
    assert(R.K == IfdsRel::Kind::Edge && "only edges are pruned");
    Sigma.add(IfdsFact::of(R.From));
  }
  static bool ignoreCoversDom(const Ignore &Sigma, const Rel &R) {
    if (R.K == IfdsRel::Kind::Edge)
      return Sigma.containsFact(IfdsFact::of(R.From));
    return false;
  }
  static void ignoreAll(Ignore &Sigma) { Sigma.makeAll(); }
};

} // namespace ifds
} // namespace swift

namespace std {
template <> struct hash<swift::ifds::IfdsFact> {
  size_t operator()(const swift::ifds::IfdsFact &F) const noexcept {
    return static_cast<size_t>(
        swift::ifds::IfdsAnalysis::stateHash(F));
  }
};
} // namespace std

#endif // SWIFT_CLIENTS_IFDS_IFDSANALYSIS_H
