//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Null-pointer-dereference analysis as an `IfdsProblem`. `x = null`
/// makes x may-null; may-nullness propagates through copies, the heap
/// (field-insensitively, one NullField fact per field symbol), and calls;
/// dereferencing a may-null base — a load, a store, or a typestate method
/// call on it — is a report fact Deref(p, n).
///
/// The concrete witness (clients/Concrete.h) distinguishes explicit nulls
/// (assigned by `x = null`, directly or via copies/heap/calls) from
/// ambient nulls (uninitialized variables, never-written fields): only a
/// dereference of an *explicit* null is a witnessed event, and every null
/// dereference terminates the run (mirroring the repo's concrete-semantics
/// choice for typestate). The soundness obligation is therefore: every
/// witnessed explicit-null dereference is an abstract Deref report. The
/// analysis does not model ambient nulls, which keeps the fact universe
/// aligned with what `x = null` seeds — the IFDS shape of the problem.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CLIENTS_IFDS_NULLDEREFPROBLEM_H
#define SWIFT_CLIENTS_IFDS_NULLDEREFPROBLEM_H

#include "clients/ifds/IfdsProblem.h"

#include <map>
#include <unordered_map>

namespace swift {
namespace ifds {

class NullDerefProblem : public IfdsProblem {
public:
  explicit NullDerefProblem(const Program &Prog);

  std::string name() const override { return "nullderef"; }
  uint32_t numFacts() const override {
    return static_cast<uint32_t>(Info.size());
  }
  std::string factText(FactId F) const override;

  void transfer(ProcId P, const Command &Cmd, FactId F,
                std::vector<FactId> &Out) const override;
  void affected(const Command &Cmd,
                std::vector<FactId> &Out) const override;
  void lambdaGen(ProcId P, const Command &Cmd,
                 std::vector<FactId> &Out) const override;
  void enter(const clients::Binding &B, FactId F,
             std::vector<FactId> &Out) const override;
  void callLocal(const clients::Binding &B, FactId F,
                 std::vector<FactId> &Out) const override;
  void combineExit(const clients::Binding &B, FactId F,
                   std::vector<FactId> &Out) const override;
  void callFootprint(const clients::Binding &B,
                     std::vector<FactId> &Out) const override;
  bool isReport(FactId F) const override;
  bool reportSite(FactId F, ProcId &P, NodeId &N) const override;

private:
  enum class Kind : uint8_t { Lambda, MayNull, NullField, Deref };
  struct FactInfo {
    Kind K = Kind::Lambda;
    Symbol Sym;             ///< MayNull / NullField.
    ProcId P = InvalidProc; ///< Deref.
    NodeId N = InvalidNode; ///< Deref.
  };

  FactId varId(Symbol V) const {
    auto It = VarIds.find(V);
    assert(It != VarIds.end() && "unenumerated variable");
    return It->second;
  }
  FactId fieldId(Symbol F) const {
    auto It = FieldIds.find(F);
    assert(It != FieldIds.end() && "unenumerated field");
    return It->second;
  }
  FactId derefId(ProcId P, NodeId N) const {
    auto It = DerefIds.find({P, N});
    assert(It != DerefIds.end() && "unenumerated deref node");
    return It->second;
  }

  std::vector<FactInfo> Info;
  std::unordered_map<Symbol, FactId> VarIds;
  std::unordered_map<Symbol, FactId> FieldIds;
  std::map<std::pair<ProcId, NodeId>, FactId> DerefIds;
  std::vector<FactId> AllFieldFacts;
};

} // namespace ifds
} // namespace swift

#endif // SWIFT_CLIENTS_IFDS_NULLDEREFPROBLEM_H
