//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "clients/ifds/ReachingDefsProblem.h"

#include "clients/TestHooks.h"

using namespace swift;
using namespace swift::ifds;

ReachingDefsProblem::ReachingDefsProblem(const Program &Prog)
    : IfdsProblem(Prog) {
  Info.push_back({}); // Fact 0: Lambda.
  for (ProcId P = 0; P != Prog.numProcs(); ++P) {
    const Procedure &Proc = Prog.proc(P);
    for (NodeId N : Proc.reachableRpo()) {
      const Command &Cmd = Proc.node(N).Cmd;
      if (isDirectDef(Cmd)) {
        FactId F = static_cast<FactId>(Info.size());
        SiteIds.emplace(std::make_pair(P, N), F);
        VarDefs[Cmd.Dst].push_back(F);
        Info.push_back({Kind::Def, Cmd.Dst, P, N});
      } else if (Cmd.Kind == CmdKind::Store) {
        FactId F = static_cast<FactId>(Info.size());
        SiteIds.emplace(std::make_pair(P, N), F);
        AllFieldDefs.push_back(F);
        Info.push_back({Kind::DefF, Cmd.Field, P, N});
      }
    }
  }
}

std::string ReachingDefsProblem::factText(FactId F) const {
  const SymbolTable &Syms = program().symbols();
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    return "(lambda)";
  case Kind::Def:
    return "def(" + Syms.text(I.Sym) + "@" +
           Syms.text(program().proc(I.P).name()) + ":" +
           std::to_string(I.N) + ")";
  case Kind::DefF:
    return "def(*." + Syms.text(I.Sym) + "@" +
           Syms.text(program().proc(I.P).name()) + ":" +
           std::to_string(I.N) + ")";
  }
  return "<?>";
}

void ReachingDefsProblem::transfer(ProcId P, const Command &Cmd, FactId F,
                                   std::vector<FactId> &Out) const {
  (void)P;
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    assert(false && "the adapter handles Lambda");
    return;
  case Kind::Def:
    // A direct assignment to the same variable supersedes this def.
    if (isDirectDef(Cmd) && Cmd.Dst == I.Sym)
      return;
    Out.push_back(F);
    return;
  case Kind::DefF:
    Out.push_back(F); // Weak heap defs are never killed.
    return;
  }
}

void ReachingDefsProblem::affected(const Command &Cmd,
                                   std::vector<FactId> &Out) const {
  if (!isDirectDef(Cmd))
    return;
  auto It = VarDefs.find(Cmd.Dst);
  if (It != VarDefs.end())
    Out.insert(Out.end(), It->second.begin(), It->second.end());
}

void ReachingDefsProblem::lambdaGen(ProcId P, const Command &Cmd,
                                    std::vector<FactId> &Out) const {
  (void)P;
  if (Cmd.Kind == CmdKind::Store &&
      clients::test::InjectReachDefsStoreBug.load())
    return;
  if (isDirectDef(Cmd) || Cmd.Kind == CmdKind::Store) {
    auto Site = siteOf(Cmd);
    Out.push_back(SiteIds.at(Site));
  }
}

void ReachingDefsProblem::enter(const clients::Binding &B, FactId F,
                                std::vector<FactId> &Out) const {
  (void)B;
  // Variable defs are procedure-local; field defs are global.
  if (Info[F].K == Kind::DefF)
    Out.push_back(F);
}

void ReachingDefsProblem::callLocal(const clients::Binding &B, FactId F,
                                    std::vector<FactId> &Out) const {
  const FactInfo &I = Info[F];
  if (I.K == Kind::DefF)
    return; // Travels through the callee.
  // The call untracks its result variable: its def set empties.
  if (I.Sym == B.resultVar() && B.resultVar().isValid())
    return;
  Out.push_back(F);
}

void ReachingDefsProblem::combineExit(const clients::Binding &B, FactId F,
                                      std::vector<FactId> &Out) const {
  (void)B;
  // Callee variable defs die at the return; field defs flow back.
  if (Info[F].K == Kind::DefF)
    Out.push_back(F);
}

void ReachingDefsProblem::callFootprint(const clients::Binding &B,
                                        std::vector<FactId> &Out) const {
  // The result variable's defs are killed by the call, and field defs
  // travel *through* the callee (enter/combineExit), so both must peel
  // off the bottom-up identity. Field defs are never killed, but leaving
  // them on the identity would let them skip the callee entirely and
  // survive calls to procedures whose exit is unreachable (unconditional
  // recursion) — which the top-down least fixpoint correctly rules out.
  // Other variables' defs survive in the caller frame untouched.
  if (B.resultVar().isValid()) {
    auto It = VarDefs.find(B.resultVar());
    if (It != VarDefs.end())
      Out.insert(Out.end(), It->second.begin(), It->second.end());
  }
  Out.insert(Out.end(), AllFieldDefs.begin(), AllFieldDefs.end());
}
