//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reaching definitions as an `IfdsProblem` — the classic IFDS textbook
/// example, and the worked example of docs/DOMAINS.md. A fact Def(v@p:n)
/// says the direct assignment to v at node n of procedure p may be v's
/// most recent assignment; DefF(f@p:n) says the store at (p, n) may reach
/// through field f (weak — field defs are never killed, matching the
/// may-alias heap treatment of the other clients).
///
/// Variable definitions are procedure-local: they neither enter callees
/// nor survive a return (a callee's defs are its own business), and a call
/// "untracks" its result variable — the call kills Def(result@*) and gens
/// nothing, so at any point the Def set for v lists exactly the *direct*
/// assignments that may be v's latest. Field definitions are global and
/// travel through calls like the heap facts of the other clients. The
/// client has no report facts; the difftest oracle compares the full fact
/// set at main's exit instead, which the bottom-up mode reproduces by
/// applying main's summary relations to Lambda.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CLIENTS_IFDS_REACHINGDEFSPROBLEM_H
#define SWIFT_CLIENTS_IFDS_REACHINGDEFSPROBLEM_H

#include "clients/ifds/IfdsProblem.h"

#include <map>
#include <unordered_map>

namespace swift {
namespace ifds {

class ReachingDefsProblem : public IfdsProblem {
public:
  explicit ReachingDefsProblem(const Program &Prog);

  std::string name() const override { return "reachdefs"; }
  uint32_t numFacts() const override {
    return static_cast<uint32_t>(Info.size());
  }
  std::string factText(FactId F) const override;

  void transfer(ProcId P, const Command &Cmd, FactId F,
                std::vector<FactId> &Out) const override;
  void affected(const Command &Cmd,
                std::vector<FactId> &Out) const override;
  void lambdaGen(ProcId P, const Command &Cmd,
                 std::vector<FactId> &Out) const override;
  void enter(const clients::Binding &B, FactId F,
             std::vector<FactId> &Out) const override;
  void callLocal(const clients::Binding &B, FactId F,
                 std::vector<FactId> &Out) const override;
  void combineExit(const clients::Binding &B, FactId F,
                   std::vector<FactId> &Out) const override;
  void callFootprint(const clients::Binding &B,
                     std::vector<FactId> &Out) const override;
  bool isReport(FactId) const override { return false; }
  bool reportSite(FactId F, ProcId &P, NodeId &N) const override {
    (void)F;
    (void)P;
    (void)N;
    return false;
  }

private:
  enum class Kind : uint8_t { Lambda, Def, DefF };
  struct FactInfo {
    Kind K = Kind::Lambda;
    Symbol Sym; ///< Defined variable / stored-through field.
    ProcId P = InvalidProc;
    NodeId N = InvalidNode;
  };

  /// True if \p Cmd directly assigns a variable (Call excluded: calls
  /// untrack their result instead of defining it).
  static bool isDirectDef(const Command &Cmd) {
    return Cmd.Kind == CmdKind::Alloc || Cmd.Kind == CmdKind::Copy ||
           Cmd.Kind == CmdKind::AssignNull || Cmd.Kind == CmdKind::Load;
  }

  std::vector<FactInfo> Info;
  std::map<std::pair<ProcId, NodeId>, FactId> SiteIds; ///< Def and DefF.
  /// All Def facts per defined variable (the kill set of an assignment).
  std::unordered_map<Symbol, std::vector<FactId>> VarDefs;
  /// Every DefF fact: the heap part of the call footprint.
  std::vector<FactId> AllFieldDefs;
};

} // namespace ifds
} // namespace swift

#endif // SWIFT_CLIENTS_IFDS_REACHINGDEFSPROBLEM_H
