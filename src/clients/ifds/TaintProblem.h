//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Taint reachability as an `IfdsProblem`: the same analysis as the
/// hand-written killgen instantiation (`killgen/KgDomain.h`), re-expressed
/// through the generic adapter. Objects allocated at designated source
/// classes are tainted; taint propagates through copies, loads, stores
/// (field-insensitively, via a global per-field fact), and calls; invoking
/// a designated sink method on a tainted receiver is a leak. Because the
/// semantics are fact-for-fact identical to KgDomain, this client doubles
/// as the adapter's differential test: the adapter run must report exactly
/// the leak sites of the native killgen run on every program.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CLIENTS_IFDS_TAINTPROBLEM_H
#define SWIFT_CLIENTS_IFDS_TAINTPROBLEM_H

#include "clients/ifds/IfdsProblem.h"

#include <map>
#include <set>
#include <unordered_map>

namespace swift {
namespace ifds {

class TaintProblem : public IfdsProblem {
public:
  TaintProblem(const Program &Prog, std::set<Symbol> SourceClasses,
               std::set<Symbol> SinkMethods);

  std::string name() const override { return "taint"; }
  uint32_t numFacts() const override {
    return static_cast<uint32_t>(Info.size());
  }
  std::string factText(FactId F) const override;

  void transfer(ProcId P, const Command &Cmd, FactId F,
                std::vector<FactId> &Out) const override;
  void affected(const Command &Cmd,
                std::vector<FactId> &Out) const override;
  void lambdaGen(ProcId P, const Command &Cmd,
                 std::vector<FactId> &Out) const override;
  void enter(const clients::Binding &B, FactId F,
             std::vector<FactId> &Out) const override;
  void callLocal(const clients::Binding &B, FactId F,
                 std::vector<FactId> &Out) const override;
  void combineExit(const clients::Binding &B, FactId F,
                   std::vector<FactId> &Out) const override;
  void callFootprint(const clients::Binding &B,
                     std::vector<FactId> &Out) const override;
  bool isReport(FactId F) const override;
  bool reportSite(FactId F, ProcId &P, NodeId &N) const override;

private:
  enum class Kind : uint8_t { Lambda, Var, Field, Leak };
  struct FactInfo {
    Kind K = Kind::Lambda;
    Symbol Sym;                ///< Var / Field.
    ProcId P = InvalidProc;    ///< Leak.
    NodeId N = InvalidNode;    ///< Leak.
  };

  FactId varId(Symbol V) const {
    auto It = VarIds.find(V);
    assert(It != VarIds.end() && "unenumerated variable");
    return It->second;
  }
  FactId fieldId(Symbol F) const {
    auto It = FieldIds.find(F);
    assert(It != FieldIds.end() && "unenumerated field");
    return It->second;
  }
  FactId leakId(ProcId P, NodeId N) const {
    auto It = LeakIds.find({P, N});
    assert(It != LeakIds.end() && "unenumerated sink node");
    return It->second;
  }

  std::set<Symbol> Sources;
  std::set<Symbol> Sinks;
  std::vector<FactInfo> Info;
  std::unordered_map<Symbol, FactId> VarIds;
  std::unordered_map<Symbol, FactId> FieldIds;
  std::map<std::pair<ProcId, NodeId>, FactId> LeakIds;
  std::vector<FactId> AllFieldFacts; ///< For call footprints.
};

} // namespace ifds
} // namespace swift

#endif // SWIFT_CLIENTS_IFDS_TAINTPROBLEM_H
