//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "clients/ifds/NullDerefProblem.h"

#include "clients/TestHooks.h"

#include <set>

using namespace swift;
using namespace swift::ifds;

NullDerefProblem::NullDerefProblem(const Program &Prog)
    : IfdsProblem(Prog) {
  Info.push_back({}); // Fact 0: Lambda.

  std::set<Symbol> Vars, Fields;
  Vars.insert(Prog.retVar());
  for (ProcId P = 0; P != Prog.numProcs(); ++P) {
    const Procedure &Proc = Prog.proc(P);
    for (Symbol V : Proc.vars())
      Vars.insert(V);
    for (const CfgNode &Node : Proc.nodes())
      if (Node.Cmd.Kind == CmdKind::Load ||
          Node.Cmd.Kind == CmdKind::Store)
        Fields.insert(Node.Cmd.Field);
  }
  for (Symbol V : Vars) {
    VarIds.emplace(V, static_cast<FactId>(Info.size()));
    Info.push_back({Kind::MayNull, V, InvalidProc, InvalidNode});
  }
  for (Symbol F : Fields) {
    FieldIds.emplace(F, static_cast<FactId>(Info.size()));
    AllFieldFacts.push_back(static_cast<FactId>(Info.size()));
    Info.push_back({Kind::NullField, F, InvalidProc, InvalidNode});
  }
  for (ProcId P = 0; P != Prog.numProcs(); ++P) {
    const Procedure &Proc = Prog.proc(P);
    for (NodeId N : Proc.reachableRpo()) {
      CmdKind K = Proc.node(N).Cmd.Kind;
      if (K == CmdKind::Load || K == CmdKind::Store ||
          K == CmdKind::TsCall) {
        DerefIds.emplace(std::make_pair(P, N),
                         static_cast<FactId>(Info.size()));
        Info.push_back({Kind::Deref, Symbol(), P, N});
      }
    }
  }
}

std::string NullDerefProblem::factText(FactId F) const {
  const SymbolTable &Syms = program().symbols();
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    return "(lambda)";
  case Kind::MayNull:
    return "maynull(" + Syms.text(I.Sym) + ")";
  case Kind::NullField:
    return "maynull(*." + Syms.text(I.Sym) + ")";
  case Kind::Deref:
    return "deref@" + Syms.text(program().proc(I.P).name()) + ":" +
           std::to_string(I.N);
  }
  return "<?>";
}

void NullDerefProblem::transfer(ProcId P, const Command &Cmd, FactId F,
                                std::vector<FactId> &Out) const {
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    assert(false && "the adapter handles Lambda");
    return;

  case Kind::MayNull: {
    Symbol V = I.Sym;
    switch (Cmd.Kind) {
    case CmdKind::Nop:
      Out.push_back(F);
      return;
    case CmdKind::Alloc:
      if (Cmd.Dst != V)
        Out.push_back(F);
      return;
    case CmdKind::AssignNull:
      Out.push_back(F); // Still null after re-nulling.
      return;
    case CmdKind::Copy:
      if (Cmd.Src == V) {
        Out.push_back(F);
        if (Cmd.Dst != V)
          Out.push_back(varId(Cmd.Dst));
        return;
      }
      if (Cmd.Dst != V)
        Out.push_back(F);
      return;
    case CmdKind::Load:
      // Dereferences the base; the loaded value overwrites Dst.
      if (Cmd.Src == V) {
        if (Cmd.Dst != V)
          Out.push_back(F);
        Out.push_back(derefId(P, Cmd.Self));
        return;
      }
      if (Cmd.Dst != V)
        Out.push_back(F);
      return;
    case CmdKind::Store:
      Out.push_back(F);
      if (Cmd.Dst == V) // Base dereference.
        Out.push_back(derefId(P, Cmd.Self));
      if (Cmd.Src == V && !clients::test::InjectNullStoreBug.load())
        Out.push_back(fieldId(Cmd.Field));
      return;
    case CmdKind::TsCall:
      Out.push_back(F);
      if (Cmd.Src == V) // Receiver dereference.
        Out.push_back(derefId(P, Cmd.Self));
      return;
    case CmdKind::Call:
      break;
    }
    break;
  }

  case Kind::NullField:
    Out.push_back(F); // Weak heap fact, never killed.
    if (Cmd.Kind == CmdKind::Load && Cmd.Field == I.Sym)
      Out.push_back(varId(Cmd.Dst));
    return;

  case Kind::Deref:
    Out.push_back(F); // Absorbing observation.
    return;
  }
  assert(false && "calls are handled by the solver");
}

void NullDerefProblem::affected(const Command &Cmd,
                                std::vector<FactId> &Out) const {
  switch (Cmd.Kind) {
  case CmdKind::Nop:
  case CmdKind::AssignNull: // MayNull(dst) maps to itself; Lambda gens it.
    return;
  case CmdKind::Alloc:
    Out.push_back(varId(Cmd.Dst));
    return;
  case CmdKind::Copy:
    if (Cmd.Dst == Cmd.Src)
      return;
    Out.push_back(varId(Cmd.Dst));
    Out.push_back(varId(Cmd.Src));
    return;
  case CmdKind::Load:
    Out.push_back(varId(Cmd.Dst));
    if (Cmd.Src != Cmd.Dst)
      Out.push_back(varId(Cmd.Src));
    Out.push_back(fieldId(Cmd.Field));
    return;
  case CmdKind::Store:
    Out.push_back(varId(Cmd.Dst));
    if (Cmd.Src != Cmd.Dst)
      Out.push_back(varId(Cmd.Src));
    return;
  case CmdKind::TsCall:
    Out.push_back(varId(Cmd.Src));
    return;
  case CmdKind::Call:
    break;
  }
  assert(false && "calls have no kill/gen footprint");
}

void NullDerefProblem::lambdaGen(ProcId P, const Command &Cmd,
                                 std::vector<FactId> &Out) const {
  (void)P;
  if (Cmd.Kind == CmdKind::AssignNull)
    Out.push_back(varId(Cmd.Dst));
}

void NullDerefProblem::enter(const clients::Binding &B, FactId F,
                             std::vector<FactId> &Out) const {
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    return;
  case Kind::MayNull:
    for (Symbol Formal : B.formalsOf(I.Sym))
      Out.push_back(varId(Formal));
    return;
  case Kind::NullField:
    Out.push_back(F); // Heap facts are global.
    return;
  case Kind::Deref:
    return; // Observations stay in the frame (callLocal).
  }
}

void NullDerefProblem::callLocal(const clients::Binding &B, FactId F,
                                 std::vector<FactId> &Out) const {
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    return;
  case Kind::MayNull:
    if (I.Sym == B.resultVar() && B.resultVar().isValid())
      return; // The result variable is rebound by the call.
    Out.push_back(F);
    return;
  case Kind::NullField:
    return; // Heap facts travel through the callee.
  case Kind::Deref:
    Out.push_back(F);
    return;
  }
}

void NullDerefProblem::combineExit(const clients::Binding &B, FactId F,
                                   std::vector<FactId> &Out) const {
  const FactInfo &I = Info[F];
  switch (I.K) {
  case Kind::Lambda:
    return;
  case Kind::MayNull: {
    if (I.Sym == B.retVar()) {
      if (B.resultVar().isValid())
        Out.push_back(varId(B.resultVar()));
      return;
    }
    Symbol Actual = B.actualOf(I.Sym);
    // A may-null stable formal still holds the caller's actual's value.
    if (Actual.isValid() && Actual != B.resultVar() &&
        B.isStableFormal(I.Sym))
      Out.push_back(varId(Actual));
    return;
  }
  case Kind::NullField:
  case Kind::Deref:
    Out.push_back(F); // Globals and observations propagate to callers.
    return;
  }
}

void NullDerefProblem::callFootprint(const clients::Binding &B,
                                     std::vector<FactId> &Out) const {
  if (B.resultVar().isValid())
    Out.push_back(varId(B.resultVar()));
  for (const auto &[Actual, Formals] : B.bindings()) {
    (void)Formals;
    Out.push_back(varId(Actual));
  }
  Out.insert(Out.end(), AllFieldFacts.begin(), AllFieldFacts.end());
}

bool NullDerefProblem::isReport(FactId F) const {
  return Info[F].K == Kind::Deref;
}

bool NullDerefProblem::reportSite(FactId F, ProcId &P, NodeId &N) const {
  if (Info[F].K != Kind::Deref)
    return false;
  P = Info[F].P;
  N = Info[F].N;
  return true;
}
