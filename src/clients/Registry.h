//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client-domain registry: a single string-keyed entry point running
/// any registered analysis domain — the three IFDS-shaped clients (taint,
/// null-deref, reaching-defs, all instances of `IfdsProblem` lowered
/// through the generic adapter) and the relational interval domain — in
/// any of the three solver modes (pure top-down, SWIFT hybrid, pure
/// bottom-up) on an unmodified `TabulationSolver` / `RelationalSolver`.
///
/// Results are normalized across domains: report sites as (proc, node)
/// pairs keyed by the *originating* command (fact-embedded sites plus the
/// observation manifest, so they coincide across modes per Theorem 3.1),
/// and the non-report facts at main's exit as strings in the domain's
/// factText format. Report facts are excluded from the exit set on
/// purpose: under SWIFT they surface through the manifest rather than the
/// caller's fact table, so only their sites — not their presence at
/// main's exit — are mode-invariant.
///
/// Taint convention: source classes are those named "File" or "Source";
/// sink methods are those named "open" or "sink". This makes the fuzzer's
/// single File protocol a rich taint workload and keeps the client
/// differentially comparable with the built-in killgen instantiation.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CLIENTS_REGISTRY_H
#define SWIFT_CLIENTS_REGISTRY_H

#include "ir/Program.h"
#include "support/Stats.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace swift {
namespace clients {

enum class DomainMode { Td, Swift, Bu };

struct DomainRunLimits {
  uint64_t MaxSteps = UINT64_MAX;
  double MaxSeconds = 1e18;
};

struct DomainRunResult {
  bool Timeout = false;
  double Seconds = 0;
  uint64_t Steps = 0;
  uint64_t TdSummaries = 0;
  uint64_t BuRelations = 0;
  /// Report sites: (proc, node) of the originating command, mode- and
  /// thread-invariant.
  std::set<std::pair<ProcId, NodeId>> Reports;
  /// Non-report facts at main's exit, in the domain's factText format.
  std::set<std::string> ExitFacts;
  Stats Stat;
};

/// The registered domain names, in presentation order:
/// taint, nullderef, reachdefs, interval.
const std::vector<std::string> &clientDomainNames();
bool isClientDomain(const std::string &Domain);

/// The taint client's source/sink convention (also used by its witness).
std::set<Symbol> taintSourceClasses(const Program &Prog);
std::set<Symbol> taintSinkMethods(const Program &Prog);

/// Runs \p Domain on \p Prog. \p K and \p Theta configure the SWIFT
/// trigger and pruning (ignored for Td and Bu); \p Threads is the solver
/// worker count (BU wavefront workers in Swift/Bu modes). Throws
/// std::runtime_error for an unregistered domain.
DomainRunResult runClientDomain(const std::string &Domain,
                                const Program &Prog, DomainMode Mode,
                                uint64_t K, uint64_t Theta,
                                unsigned Threads,
                                DomainRunLimits Limits = {});

} // namespace clients
} // namespace swift

#endif // SWIFT_CLIENTS_REGISTRY_H
