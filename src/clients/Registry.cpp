//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "clients/Registry.h"

#include "clients/ifds/IfdsAnalysis.h"
#include "clients/ifds/NullDerefProblem.h"
#include "clients/ifds/ReachingDefsProblem.h"
#include "clients/ifds/TaintProblem.h"
#include "clients/interval/IntervalAnalysis.h"
#include "framework/RelationalSolver.h"
#include "framework/Tabulation.h"
#include "support/Timer.h"

#include <memory>
#include <stdexcept>

using namespace swift;
using namespace swift::clients;

const std::vector<std::string> &clients::clientDomainNames() {
  static const std::vector<std::string> Names{"taint", "nullderef",
                                             "reachdefs", "interval"};
  return Names;
}

bool clients::isClientDomain(const std::string &Domain) {
  for (const std::string &N : clientDomainNames())
    if (N == Domain)
      return true;
  return false;
}

namespace {

/// Const-safe symbol lookup: scans the table instead of interning.
Symbol findSymbol(const SymbolTable &Syms, const std::string &Text) {
  for (uint32_t I = 1; I <= Syms.size(); ++I)
    if (Syms.text(Symbol(I)) == Text)
      return Symbol(I);
  return Symbol();
}

std::set<Symbol> findAll(const SymbolTable &Syms,
                         std::initializer_list<const char *> Names) {
  std::set<Symbol> Out;
  for (const char *N : Names)
    if (Symbol S = findSymbol(Syms, N); S.isValid())
      Out.insert(S);
  return Out;
}

using Site = std::pair<ProcId, NodeId>;

/// Shared tabulating path (pure TD and SWIFT): run, then normalize
/// reports (fact-embedded sites + observation manifest) and main-exit
/// facts. \p RS maps a state to its report site (nullopt for non-report
/// states); \p FS renders a non-report, non-Lambda state.
template <typename AN, typename ReportSiteFn, typename FactStrFn>
DomainRunResult runTabulatingT(const typename AN::Context &Ctx, uint64_t K,
                               uint64_t Theta, unsigned Threads,
                               DomainRunLimits Limits, ReportSiteFn RS,
                               FactStrFn FS) {
  const Program &Prog = Ctx.program();
  Budget Bud(Limits.MaxSteps, Limits.MaxSeconds);
  Stats Stat;
  typename TabulationSolver<AN>::Config Cfg;
  Cfg.K = K;
  Cfg.Theta = Theta;
  Cfg.BuThreads = Threads;
  TabulationSolver<AN> Solver(Ctx, Prog, Ctx.callGraph(), Cfg, Bud, Stat);
  bool Finished = Solver.run();

  DomainRunResult R;
  R.Timeout = !Finished;
  R.Seconds = Bud.seconds();
  R.Steps = Bud.steps();
  R.Stat = std::move(Stat);
  R.TdSummaries = Solver.totalTdSummaries();
  R.BuRelations = Solver.totalBuRelations();

  const NodeId ExitN = Prog.proc(Prog.mainProc()).exit();
  Solver.forEachFact([&](ProcId P, NodeId N, const typename AN::State &E,
                         const typename AN::State &Cur) {
    (void)E;
    if (std::optional<Site> S = RS(Cur)) {
      R.Reports.insert(*S);
      return;
    }
    if (P == Prog.mainProc() && N == ExitN && !AN::isLambda(Cur))
      R.ExitFacts.insert(FS(Cur));
  });
  Solver.forEachObserved(
      [&](ProcId P, NodeId N, const typename AN::State &S) {
        (void)P;
        (void)N;
        if (std::optional<Site> Where = RS(S))
          R.Reports.insert(*Where);
      });
  return R;
}

/// Pure bottom-up path: unpruned summaries for everything reachable from
/// main, then instantiate main's summary on Lambda.
template <typename AN, typename ReportSiteFn, typename FactStrFn>
DomainRunResult runBuT(const typename AN::Context &Ctx, unsigned Threads,
                       DomainRunLimits Limits, ReportSiteFn RS,
                       FactStrFn FS) {
  const Program &Prog = Ctx.program();
  Budget Bud(Limits.MaxSteps, Limits.MaxSeconds);
  Stats Stat;
  RelationalSolver<AN> Solver(
      Ctx, Prog, Ctx.callGraph(), NoPruning,
      [](ProcId) -> const std::unordered_map<typename AN::State,
                                             uint64_t> * {
        return nullptr;
      },
      Bud, Stat, DefaultMaxRelsPerPoint, /*CollectObservations=*/true,
      Threads);

  std::vector<ProcId> All = Ctx.callGraph().reachableFrom(Prog.mainProc());
  bool Finished = Solver.run(All);

  DomainRunResult R;
  R.Timeout = !Finished;
  R.Seconds = Bud.seconds();
  R.Steps = Bud.steps();
  R.Stat = std::move(Stat);
  R.BuRelations = Solver.totalRelations();
  if (!Finished)
    return R;

  const auto &Main = Solver.summary(Prog.mainProc());
  for (const typename AN::Rel &Rel : Main.Rels)
    if (std::optional<typename AN::State> Out =
            AN::applyRel(Ctx, Rel, AN::lambda())) {
      if (std::optional<Site> S = RS(*Out))
        R.Reports.insert(*S);
      else if (!AN::isLambda(*Out))
        R.ExitFacts.insert(FS(*Out));
    }
  // Observation relations reach *internal* points, so only their
  // observable outputs count (as reports), never as exit facts.
  for (const typename AN::Rel &Rel : Main.ObsRels)
    if (std::optional<typename AN::State> Out =
            AN::applyRel(Ctx, Rel, AN::lambda()))
      if (std::optional<Site> S = RS(*Out))
        R.Reports.insert(*S);
  return R;
}

template <typename AN, typename ReportSiteFn, typename FactStrFn>
DomainRunResult runModeT(const typename AN::Context &Ctx, DomainMode Mode,
                         uint64_t K, uint64_t Theta, unsigned Threads,
                         DomainRunLimits Limits, ReportSiteFn RS,
                         FactStrFn FS) {
  switch (Mode) {
  case DomainMode::Td:
    return runTabulatingT<AN>(Ctx, NoBuTrigger, 1, Threads, Limits, RS,
                              FS);
  case DomainMode::Swift:
    return runTabulatingT<AN>(Ctx, K, Theta, Threads, Limits, RS, FS);
  case DomainMode::Bu:
    return runBuT<AN>(Ctx, Threads, Limits, RS, FS);
  }
  return {};
}

std::unique_ptr<ifds::IfdsProblem> makeProblem(const std::string &Domain,
                                               const Program &Prog) {
  if (Domain == "taint")
    return std::make_unique<ifds::TaintProblem>(
        Prog, taintSourceClasses(Prog), taintSinkMethods(Prog));
  if (Domain == "nullderef")
    return std::make_unique<ifds::NullDerefProblem>(Prog);
  if (Domain == "reachdefs")
    return std::make_unique<ifds::ReachingDefsProblem>(Prog);
  return nullptr;
}

} // namespace

std::set<Symbol> clients::taintSourceClasses(const Program &Prog) {
  return findAll(Prog.symbols(), {"File", "Source"});
}

std::set<Symbol> clients::taintSinkMethods(const Program &Prog) {
  return findAll(Prog.symbols(), {"open", "sink"});
}

DomainRunResult clients::runClientDomain(const std::string &Domain,
                                         const Program &Prog,
                                         DomainMode Mode, uint64_t K,
                                         uint64_t Theta, unsigned Threads,
                                         DomainRunLimits Limits) {
  if (Domain == "interval") {
    interval::IvContext Ctx(Prog);
    auto RS = [](const interval::IvFact &F) -> std::optional<Site> {
      if (F.K == interval::IvFact::Kind::Under)
        return Site{F.P, F.N};
      return std::nullopt;
    };
    auto FS = [&Prog](const interval::IvFact &F) { return F.str(Prog); };
    return runModeT<interval::IvAnalysis>(Ctx, Mode, K, Theta, Threads,
                                          Limits, RS, FS);
  }

  std::unique_ptr<ifds::IfdsProblem> Pb = makeProblem(Domain, Prog);
  if (!Pb)
    throw std::runtime_error("unknown analysis domain '" + Domain + "'");
  ifds::IfdsContext Ctx(Prog, *Pb);
  auto RS = [&Pb](const ifds::IfdsFact &F) -> std::optional<Site> {
    ProcId P;
    NodeId N;
    if (Pb->reportSite(F.Id, P, N))
      return Site{P, N};
    return std::nullopt;
  };
  auto FS = [&Pb](const ifds::IfdsFact &F) { return Pb->factText(F.Id); };
  return runModeT<ifds::IfdsAnalysis>(Ctx, Mode, K, Theta, Threads, Limits,
                                      RS, FS);
}
